#!/usr/bin/env python3
"""Shared inline-waiver machinery for droute's source checkers.

Both checkers use the same marker grammar, distinguished by tool prefix:

    ... // lint: allow(raw-new) — private ctor, owned by unique_ptr
    ... // analyze: allow(coroutine-ref-capture) — joined before captures die

A waiver suppresses one rule on the line that carries the marker. The
reason text after the rule (introduced by an em/en dash or hyphen, or just
trailing words) is kept so reports can show *why* a site was waived.

Staleness: a waiver is only "used" when its rule actually fired on that
line and was suppressed. After a run, `stale()` returns every waiver that
suppressed nothing — the code moved or was fixed and the marker rotted.
Both lint.py and tools/analyze/run.py report stale waivers as errors so
waivers cannot silently accumulate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

# Marker grammar. The rule name allows lint's kebab names and the
# analyzer's kebab names alike; the reason is everything after the closing
# paren, minus a leading dash of any flavor.
_WAIVER_RE = re.compile(
    r"(?P<tool>lint|analyze):\s*allow\((?P<rule>[a-z][a-z0-9_.-]*)\)"
    r"[ \t]*(?:[—–-]+[ \t]*)?(?P<reason>.*?)\s*(?:(?://|/\*|\*/).*)?$"
)


@dataclass
class Waiver:
    line_no: int
    rule: str
    reason: str
    used: bool = field(default=False, compare=False)


class WaiverSet:
    """All waivers of one tool in one file, with use tracking."""

    def __init__(self, waivers: Iterable[Waiver] = ()):
        self._by_key: dict[tuple[int, str], Waiver] = {
            (w.line_no, w.rule): w for w in waivers
        }

    @classmethod
    def parse(cls, lines: Iterable[str], tool: str) -> "WaiverSet":
        waivers = []
        for idx, line in enumerate(lines):
            for match in _WAIVER_RE.finditer(line):
                if match.group("tool") != tool:
                    continue
                waivers.append(
                    Waiver(
                        line_no=idx + 1,
                        rule=match.group("rule"),
                        reason=match.group("reason").strip(),
                    )
                )
        return cls(waivers)

    def allows(self, line_no: int, rule: str) -> bool:
        """True (and marks the waiver used) iff `rule` is waived on this line."""
        waiver = self._by_key.get((line_no, rule))
        if waiver is None:
            return False
        waiver.used = True
        return True

    def get(self, line_no: int, rule: str) -> Waiver | None:
        return self._by_key.get((line_no, rule))

    def all(self) -> list[Waiver]:
        return sorted(self._by_key.values(), key=lambda w: (w.line_no, w.rule))

    def stale(self) -> list[Waiver]:
        """Waivers that suppressed nothing in this run."""
        return [w for w in self.all() if not w.used]

    def missing_reason(self) -> list[Waiver]:
        """Waivers with no stated reason (reported by the analyzer)."""
        return [w for w in self.all() if not w.reason]

    def __len__(self) -> int:
        return len(self._by_key)
