#!/usr/bin/env python3
"""droute house-rules linter (registered as the `lint.house_rules` ctest).

Rules, all scoped to src/:

  pragma-once   every header starts its preprocessor life with #pragma once.
  raw-new       no raw `new` / `delete` expressions; ownership lives in
                containers and smart pointers. (`= delete`d special members
                are fine.)
  time-eq       no direct `==` / `!=` on sim::Time expressions — exact
                float equality on a simulated clock is a latent bug. Use
                sim::time_eq / sim::time_ne (sim/simulator.h, which is
                exempt as the approved-helper home).
  nodiscard     every declaration returning util::Result<T> or util::Status
                in a header carries [[nodiscard]] (same line or the line
                above). The types are class-level [[nodiscard]] too; the
                per-function attribute keeps the contract visible at the
                declaration site and survives type aliasing.
  metric-name   obs metric name literals follow the `subsystem.noun_verb`
                convention (lowercase dotted segments): counters end in
                `_total`, histograms end in a unit suffix (_s, _bytes,
                _mbps, _ratio), gauges carry neither. Checked at every
                counter()/gauge()/histogram()/count() call site so exported
                dumps stay greppable (DESIGN.md §9).
  metric-prefix a metric registered under src/<subsystem>/ names that
                subsystem as its first dotted segment (src/ctrl/ registers
                `ctrl.*`, src/net/ registers `net.*`, ...). Exported dumps
                mix every subsystem into one namespace; the prefix is what
                keeps `grep '^ctrl\\.'` equal to "everything the control
                plane emits".
  job-state     (src/transfer/ only) no `std::make_shared<...Job...>`
                callback-era job state. Transfer control flow lives in
                sim::Task<T> coroutines (DESIGN.md §10); shared-state job
                structs threaded through callbacks are the pattern this
                repo migrated away from.

One rule is scoped to bench/:

  bench-unit    every DROUTE_BENCH registration declares its reporting unit
                as a non-empty string literal (e.g. "ms"). BENCH_*.json
                consumers chart medians across commits; a case without a
                unit makes the axis unlabeled and the trend unreadable.

One rule is scoped to tests/corpus/ instead:

  corpus-header every checked-in replay case (tests/corpus/*.case) opens
                with provenance headers: `# seed: N` (matching its `case N`
                body line) and `# violated: <property>` naming the property
                the case was minimized against (DESIGN.md §11). A corpus
                without provenance can't be triaged when it regresses.

A line can waive one rule with an inline marker, stating the reason:
    ... // lint: allow(raw-new) — private ctor, owned by unique_ptr

The marker machinery is shared with tools/analyze (tools/waivers.py): a
waiver only counts when its rule actually fired on that line, and a waiver
that suppressed nothing is reported as a `waiver-stale` violation so
markers cannot rot in place.

Usage: tools/lint.py [repo-root]
Exits non-zero iff violations were found.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from waivers import WaiverSet  # noqa: E402

# Expressions whose comparison with == / != almost certainly means "compare
# simulated times exactly", which the fluid model never guarantees.
TIME_EXPR = r"(?:\bnow\(\)|\bnext_event_time\(\)|\b[A-Za-z_]\w*\.(?:start_time|end_time)\b|\blast_advance_\b|\bkTimeInfinity\b)"
TIME_EQ_RE = re.compile(
    rf"{TIME_EXPR}\s*[=!]=|[=!]=\s*{TIME_EXPR}"
)
# Approved helper home: defines time_eq/time_ne themselves.
TIME_EQ_EXEMPT = {Path("src/sim/simulator.h")}

NODISCARD_DECL_RE = re.compile(
    r"^\s*(?:static\s+)?(?:util::)?(?:Result<.*>|Status)\s+\w+\s*\(?"
)
DECL_EXCLUDE_RE = re.compile(
    r"\b(?:class|struct|using|typedef|return)\b|=\s*(?:default|delete)\s*;"
)

NEW_DELETE_RE = re.compile(r"\bnew\b|\bdelete\b")

# Callback-era shared job state in the transfer layer: a heap-allocated
# *Job* struct captured by every continuation. The coroutine migration
# (DESIGN.md §10) made these frames implicit; new ones should not appear.
JOB_STATE_RE = re.compile(r"\bmake_shared\s*<\s*\w*Job\w*\s*>")
JOB_STATE_SCOPE = ("src", "transfer")

# The callback-shim header died with the batched TransferEngine rewrite
# (DESIGN.md §15): every engine entry point inlines its one-line on_done
# fold over the coroutine form. No include may resurrect the header.
TASK_SHIM_RE = re.compile(r"#\s*include\s*[\"<][^\">]*task_shim\.h[\">]")

# Metric-name literals at instrument call sites. Runs on RAW lines (names
# live inside string literals, which strip_code removes).
METRIC_CALL_RE = re.compile(
    r"(?:obs::|\.|->)(?P<kind>counter|gauge|histogram|count)\s*\(\s*"
    r"\"(?P<name>[^\"]*)\""
)
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)+$")
HISTOGRAM_UNIT_SUFFIXES = ("_s", "_bytes", "_mbps", "_ratio")

# Bench-case registrations. The unit operand must be a non-empty string
# literal so BENCH_*.json always carries a labeled axis. The macro's own
# #define in bench/harness.h is skipped by the directive check.
BENCH_CASE_RE = re.compile(r"\bDROUTE_BENCH\s*\(\s*(?P<name>\w+)\s*,\s*(?P<unit>[^)]*)\)")
BENCH_UNIT_OK_RE = re.compile(r'^"[^"]+"$')

# Replay-corpus provenance headers (written by proptest's shrinker; kept by
# hand-authored cases too). `violated` names a run_case property or "none".
CORPUS_SEED_RE = re.compile(r"^#\s*seed:\s*(?P<seed>\d+)\s*$")
CORPUS_VIOLATED_RE = re.compile(r"^#\s*violated:\s*[a-z][a-z0-9_]*\s*$")
CORPUS_CASE_RE = re.compile(r"^case\s+(?P<seed>\d+)\s*$")


def strip_code(line: str) -> str:
    """Removes string/char literals and trailing // comments (single line).

    Block comments are handled by the caller via a running state flag.
    """
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            i += 1
            out.append(quote + quote)  # keep token boundaries
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.violations: list[str] = []
        # WaiverSet for the file currently being linted; report() consults
        # it so every check detects first and suppresses second (which is
        # what lets stale waivers be noticed at all).
        self._waivers = WaiverSet()

    def report(self, path: Path, line_no: int, rule: str, message: str) -> None:
        if self._waivers.allows(line_no, rule):
            return
        rel = path.relative_to(self.root)
        self.violations.append(f"{rel}:{line_no}: [{rule}] {message}")

    def report_stale_waivers(self, path: Path) -> None:
        for waiver in self._waivers.stale():
            rel = path.relative_to(self.root)
            self.violations.append(
                f"{rel}:{waiver.line_no}: [waiver-stale] "
                f"`lint: allow({waiver.rule})` suppresses nothing — the "
                "violation moved or was fixed; delete the marker"
            )
        self._waivers = WaiverSet()

    def lint_file(self, path: Path) -> None:
        rel = path.relative_to(self.root)
        text = path.read_text(encoding="utf-8")
        raw_lines = text.splitlines()
        self._waivers = WaiverSet.parse(raw_lines, "lint")

        if path.suffix == ".h":
            self.check_pragma_once(path, raw_lines)

        # Build comment-stripped lines (tracking /* */ state across lines).
        stripped: list[str] = []
        in_block = False
        for line in raw_lines:
            if in_block:
                end = line.find("*/")
                if end == -1:
                    stripped.append("")
                    continue
                line = line[end + 2:]
                in_block = False
            code = strip_code(line)
            while True:
                start = code.find("/*")
                if start == -1:
                    break
                end = code.find("*/", start + 2)
                if end == -1:
                    code = code[:start]
                    in_block = True
                    break
                code = code[:start] + " " + code[end + 2:]
            stripped.append(code)

        in_transfer = rel.parts[: len(JOB_STATE_SCOPE)] == JOB_STATE_SCOPE
        for idx, code in enumerate(stripped):
            line_no = idx + 1
            self.check_raw_new(path, line_no, code)
            if rel not in TIME_EQ_EXEMPT:
                self.check_time_eq(path, line_no, code)
            self.check_metric_name(path, line_no, raw_lines[idx])
            self.check_task_shim(path, line_no, raw_lines[idx])
            if in_transfer:
                self.check_job_state(path, line_no, code)
        if path.suffix == ".h":
            self.check_nodiscard(path, stripped)
        self.report_stale_waivers(path)

    def check_pragma_once(self, path: Path, lines: list[str]) -> None:
        for line in lines:
            text = line.strip()
            if text == "#pragma once":
                return
            if text.startswith("#") and not text.startswith("#pragma"):
                break  # some other directive came first
        self.report(path, 1, "pragma-once", "header is missing #pragma once")

    def check_raw_new(self, path: Path, line_no: int, code: str) -> None:
        # `= delete`d special members are declarations, not deallocations.
        code = re.sub(r"=\s*delete\b", "", code)
        if NEW_DELETE_RE.search(code):
            self.report(
                path, line_no, "raw-new",
                "raw new/delete — use containers or smart pointers "
                "(waive with `lint: allow(raw-new)` and a reason)",
            )

    def check_job_state(self, path: Path, line_no: int, code: str) -> None:
        if JOB_STATE_RE.search(code):
            self.report(
                path, line_no, "job-state",
                "shared-state *Job* allocation — write the pipeline as a "
                "sim::Task<T> coroutine instead (DESIGN.md §10; waive with "
                "`lint: allow(job-state)` and a reason)",
            )

    def check_task_shim(self, path: Path, line_no: int, raw: str) -> None:
        if TASK_SHIM_RE.search(raw):
            self.report(
                path, line_no, "task-shim",
                "include of the deleted transfer/task_shim.h — inline the "
                "on_done fold over the engine's coroutine entry point "
                "instead (DESIGN.md §15)",
            )

    def check_time_eq(self, path: Path, line_no: int, code: str) -> None:
        if TIME_EQ_RE.search(code):
            self.report(
                path, line_no, "time-eq",
                "direct ==/!= on a sim::Time expression — use sim::time_eq "
                "or sim::time_ne with an explicit epsilon",
            )

    def check_metric_name(self, path: Path, line_no: int, raw: str) -> None:
        rel = path.relative_to(self.root)
        subsystem = (
            rel.parts[1]
            if len(rel.parts) > 2 and rel.parts[0] == "src"
            else None
        )
        for match in METRIC_CALL_RE.finditer(raw):
            kind = match.group("kind")
            name = match.group("name")
            if not METRIC_NAME_RE.match(name):
                self.report(
                    path, line_no, "metric-name",
                    f'"{name}" is not `subsystem.noun_verb` '
                    "(lowercase dotted segments)",
                )
                continue
            if subsystem is not None and not name.startswith(subsystem + "."):
                self.report(
                    path, line_no, "metric-prefix",
                    f'"{name}" registered under src/{subsystem}/ must be '
                    f"named {subsystem}.*",
                )
            if kind in ("counter", "count") and not name.endswith("_total"):
                self.report(
                    path, line_no, "metric-name",
                    f'counter "{name}" must end in _total',
                )
            elif kind == "gauge" and name.endswith("_total"):
                self.report(
                    path, line_no, "metric-name",
                    f'gauge "{name}" must not end in _total',
                )
            elif kind == "histogram" and not name.endswith(
                HISTOGRAM_UNIT_SUFFIXES
            ):
                self.report(
                    path, line_no, "metric-name",
                    f'histogram "{name}" must end in a unit suffix '
                    f"({', '.join(HISTOGRAM_UNIT_SUFFIXES)})",
                )

    def check_nodiscard(self, path: Path, lines: list[str]) -> None:
        for idx, code in enumerate(lines):
            if not NODISCARD_DECL_RE.match(code):
                continue
            if "(" not in code or DECL_EXCLUDE_RE.search(code):
                continue
            here = "[[nodiscard]]" in code
            above = idx > 0 and "[[nodiscard]]" in lines[idx - 1]
            if not (here or above):
                self.report(
                    path, idx + 1, "nodiscard",
                    "Result/Status-returning declaration lacks [[nodiscard]]",
                )

    def check_bench_file(self, path: Path) -> None:
        raw_lines = path.read_text(encoding="utf-8").splitlines()
        self._waivers = WaiverSet.parse(raw_lines, "lint")
        for idx, raw in enumerate(raw_lines):
            if raw.lstrip().startswith("#"):
                continue  # the macro's own #define in harness.h
            for match in BENCH_CASE_RE.finditer(raw):
                unit = match.group("unit").strip()
                if not BENCH_UNIT_OK_RE.match(unit):
                    self.report(
                        path, idx + 1, "bench-unit",
                        f"bench case `{match.group('name')}` must declare its "
                        "unit as a non-empty string literal (got "
                        f"{unit or 'nothing'})",
                    )
        self.report_stale_waivers(path)

    def check_corpus_case(self, path: Path) -> None:
        lines = path.read_text(encoding="utf-8").splitlines()
        header_seed = None
        body_seed = None
        has_violated = False
        for line in lines:
            if m := CORPUS_SEED_RE.match(line):
                header_seed = m.group("seed")
            elif CORPUS_VIOLATED_RE.match(line):
                has_violated = True
            elif m := CORPUS_CASE_RE.match(line):
                body_seed = m.group("seed")
        if header_seed is None:
            self.report(
                path, 1, "corpus-header",
                "replay case is missing its `# seed: N` provenance header",
            )
        if not has_violated:
            self.report(
                path, 1, "corpus-header",
                "replay case is missing its `# violated: <property>` header "
                "(use `none` for hand-written cases)",
            )
        if (
            header_seed is not None
            and body_seed is not None
            and header_seed != body_seed
        ):
            self.report(
                path, 1, "corpus-header",
                f"`# seed: {header_seed}` disagrees with `case {body_seed}`",
            )

    def run(self) -> int:
        src = self.root / "src"
        for path in sorted(src.rglob("*")):
            if path.suffix in (".h", ".cpp"):
                self.lint_file(path)
        bench = self.root / "bench"
        if bench.is_dir():
            for path in sorted(bench.rglob("*")):
                if path.suffix in (".h", ".cpp"):
                    self.check_bench_file(path)
        corpus = self.root / "tests" / "corpus"
        if corpus.is_dir():
            for path in sorted(corpus.glob("*.case")):
                self.check_corpus_case(path)
        if self.violations:
            print(f"lint: {len(self.violations)} violation(s)")
            for v in self.violations:
                print(" ", v)
            return 1
        print("lint: clean")
        return 0


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path.cwd()
    root = root.resolve()
    if not (root / "src").is_dir():
        print(f"lint: no src/ under {root}", file=sys.stderr)
        return 2
    return Linter(root).run()


if __name__ == "__main__":
    sys.exit(main())
