#!/usr/bin/env python3
"""Validates a Chrome trace_event JSON file produced by droute::obs.

Checks the subset of the trace_event spec our exporter emits (and that
chrome://tracing / Perfetto require to render anything):

  * the file parses as JSON with a non-empty `traceEvents` list;
  * every event has a `ph` phase; only "X" (complete) and "M" (metadata)
    phases are expected from the exporter;
  * "X" events carry name / ts / dur / pid / tid, with numeric ts, a
    non-negative dur, and a `subsystem.noun_verb` span name;
  * "M" events are `process_name` records with a string args.name;
  * every pid referenced by a span has a process_name record (Perfetto
    renders unnamed tracks, but an unnamed track means the campaign
    track-allocation plumbing broke).

Usage: tools/validate_trace.py <trace.json>
Exits non-zero iff the trace is invalid; prints a one-line summary when OK.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

SPAN_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)+$")


def validate(path: Path) -> list[str]:
    errors: list[str] = []
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot parse {path}: {exc}"]

    if not isinstance(document, dict):
        return ["top level must be a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    if not events:
        return ["traceEvents is empty — nothing was recorded"]

    named_pids: set[int] = set()
    span_pids: set[int] = set()
    spans = 0
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: event must be an object")
            continue
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") != "process_name":
                errors.append(f"{where}: unexpected metadata {event.get('name')!r}")
                continue
            args = event.get("args")
            if not isinstance(args, dict) or not isinstance(args.get("name"), str):
                errors.append(f"{where}: process_name needs args.name string")
                continue
            named_pids.add(event.get("pid"))
        elif phase == "X":
            spans += 1
            name = event.get("name")
            if not isinstance(name, str) or not SPAN_NAME_RE.match(name):
                errors.append(
                    f"{where}: span name {name!r} is not subsystem.noun_verb"
                )
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    errors.append(f"{where}: {key} must be numeric")
            if isinstance(event.get("dur"), (int, float)) and event["dur"] < 0:
                errors.append(f"{where}: negative dur {event['dur']}")
            for key in ("pid", "tid"):
                if not isinstance(event.get(key), int):
                    errors.append(f"{where}: {key} must be an integer")
            if isinstance(event.get("pid"), int):
                span_pids.add(event["pid"])
            args = event.get("args")
            if args is not None and not isinstance(args, dict):
                errors.append(f"{where}: args must be an object")
        else:
            errors.append(f"{where}: unexpected phase {phase!r}")

    if spans == 0:
        errors.append("trace contains metadata but no spans")
    for pid in sorted(span_pids - named_pids):
        errors.append(f"pid {pid} has spans but no process_name record")

    if not errors:
        print(
            f"{path}: OK — {spans} span(s) across "
            f"{len(span_pids)} track(s), {len(events)} event(s) total"
        )
    return errors


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors = validate(Path(sys.argv[1]))
    for error in errors:
        print(f"validate_trace: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
