#!/usr/bin/env python3
"""Fixture self-test for the droute analyzer.

Runs the full analyze() pipeline in fixture mode over
tools/analyze/fixtures/{bad,good} and asserts exact agreement with the
inline `// expect: <rule>[, <rule>...]` markers:

  * every marked (file, line, rule) triple must be reported unwaived,
  * nothing unmarked may be reported,
  * good/ fixtures carry no markers, so they must come back fully clean.

The comparison is an exact set equality, so the corpus pins both rule
recall (bad fixtures keep firing) and precision (clean idioms and waived
sites stay quiet). Registered in ctest as `analyze.ast_rules`; CI re-runs
it with `--engine clang` so the libclang augmentation stays consistent
with the built-in syntax engine.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from run import analyze, rel_path  # noqa: E402

_EXPECT_RE = re.compile(r"//\s*expect:\s*(?P<rules>[a-z][a-z0-9_,\s-]*)")


def expected_markers(root: Path, fixture: Path) -> set[tuple[str, int, str]]:
    out: set[tuple[str, int, str]] = set()
    rel = rel_path(root, fixture, fixture_mode=True)
    for idx, line in enumerate(
        fixture.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = _EXPECT_RE.search(line)
        if match is None:
            continue
        for rule in match.group("rules").split(","):
            rule = rule.strip()
            if rule:
                out.add((rel, idx, rule))
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--engine",
        choices=("auto", "clang", "syntax"),
        default="syntax",
        help="syntax (default, hermetic) or clang (CI, needs libclang)",
    )
    parser.add_argument(
        "--root",
        default=str(Path(__file__).resolve().parent.parent.parent),
        help="repo root (default: two levels above this script)",
    )
    args = parser.parse_args()

    root = Path(args.root).resolve()
    fixtures_dir = Path(__file__).resolve().parent / "fixtures"
    bad = sorted((fixtures_dir / "bad").glob("*.cpp"))
    good = sorted((fixtures_dir / "good").glob("*.cpp"))
    if not bad or not good:
        print("selftest: fixture corpus missing", file=sys.stderr)
        return 2

    expected: set[tuple[str, int, str]] = set()
    for fixture in bad + good:
        expected |= expected_markers(root, fixture)
    for fixture in good:
        if expected_markers(root, fixture):
            print(f"selftest: good fixture {fixture.name} carries expect "
                  "markers — move it to bad/", file=sys.stderr)
            return 2

    try:
        diagnostics, warnings, engine_used, _ = analyze(
            root, bad + good, args.engine, None, fixture_mode=True
        )
    except EnvironmentError as exc:
        print(f"selftest: {exc}", file=sys.stderr)
        return 3

    for warning in warnings:
        print(f"selftest: warning: {warning}", file=sys.stderr)

    actual = {
        (d.file, d.line, d.rule) for d in diagnostics if not d.waived
    }

    missing = sorted(expected - actual)
    surplus = sorted(actual - expected)
    for file, line, rule in missing:
        print(f"MISSED   {file}:{line}: [{rule}] expected but not reported")
    for file, line, rule in surplus:
        print(f"SPURIOUS {file}:{line}: [{rule}] reported but not expected")

    if missing or surplus:
        print(
            f"selftest: FAIL — {len(missing)} missed, {len(surplus)} spurious "
            f"({engine_used} engine, {len(bad)} bad + {len(good)} good fixtures)"
        )
        return 1
    print(
        f"selftest: OK — {len(expected)} expected diagnostics matched exactly "
        f"({engine_used} engine, {len(bad)} bad + {len(good)} good fixtures)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
