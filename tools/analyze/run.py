#!/usr/bin/env python3
"""droute-analyze: AST-level determinism & coroutine-lifetime analyzer.

Scans src/ (or the given paths) with the rule plugins in rules/ against
the structural model in model.py, optionally augmented with real resolved
types via libclang + compile_commands.json (engine_clang.py).

Exit codes:
    0  clean (every diagnostic waived, no stale waivers)
    1  unwaived diagnostics, stale waivers, or waivers missing a reason
    2  usage / environment error
    3  --engine clang requested but libclang is unavailable

Waivers: `// analyze: allow(<rule>) — reason` on the diagnosed line.
A waiver that suppresses nothing is itself an error (it rotted), and a
waiver without a reason is reported as rule `waiver-missing-reason` — the
policy lives in DESIGN.md §13.

Typical invocations:
    tools/analyze/run.py --root . --compile-commands build/compile_commands.json
    tools/analyze/run.py --engine clang --json report.json   # CI
    tools/analyze/run.py --list-rules
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import engine_clang  # noqa: E402
from model import build_model, FileModel  # noqa: E402
from rules import AnalysisContext, Diagnostic, all_rules  # noqa: E402

REPORT_SCHEMA = "droute-analyze-v1"
RULE_STALE_WAIVER = "waiver-stale"
RULE_MISSING_REASON = "waiver-missing-reason"

# Subdirectories of the repo scanned by default. tests/ and bench/ are
# intentionally out of the default net for now: the rules encode src/
# contracts (tests exercise rvalue-await edge cases on purpose).
DEFAULT_SCAN_DIRS = ("src",)


def collect_files(root: Path, paths: list[str]) -> list[Path]:
    if paths:
        out: list[Path] = []
        for raw in paths:
            p = Path(raw)
            if not p.is_absolute():
                p = root / p
            if p.is_dir():
                out.extend(sorted(p.rglob("*.h")) + sorted(p.rglob("*.cpp")))
            elif p.exists():
                out.append(p)
            else:
                print(f"analyze: no such path: {raw}", file=sys.stderr)
        return sorted(set(out))
    files: list[Path] = []
    for sub in DEFAULT_SCAN_DIRS:
        base = root / sub
        if base.is_dir():
            files.extend(base.rglob("*.h"))
            files.extend(base.rglob("*.cpp"))
    return sorted(files)


def rel_path(root: Path, path: Path, fixture_mode: bool) -> str:
    """Repo-relative path used for rule scoping. In fixture mode a file
    named fixtures/{good,bad}/<subsystem>__<name>.cpp is scoped as if it
    lived at src/<subsystem>/<name>.cpp, so fixtures can exercise the
    deterministic-subsystem rules without living in src/."""
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.name
    if fixture_mode and "__" in path.stem:
        subsystem, name = path.stem.split("__", 1)
        return f"src/{subsystem}/{name}{path.suffix}"
    return rel


def analyze(
    root: Path,
    files: list[Path],
    engine: str,
    compile_commands: Path | None,
    fixture_mode: bool = False,
) -> tuple[list[Diagnostic], list[str], str, list[FileModel]]:
    """Returns (diagnostics, warnings, engine_used, models)."""
    warnings: list[str] = []
    engine_used = "syntax"

    clang_ok = False
    if engine in ("auto", "clang"):
        clang_ok, why = engine_clang.available()
        if not clang_ok:
            msg = f"libclang unavailable ({why}); using built-in syntax engine"
            if engine == "clang":
                raise EnvironmentError(msg)
            warnings.append(msg)

    commands: dict[str, list[str]] = {}
    if clang_ok and compile_commands is not None and compile_commands.exists():
        commands = engine_clang.load_compile_commands(compile_commands)
    default_args = ["-std=c++20", f"-I{root / 'src'}"]

    # Pass 1: build every model (and augment with resolved types).
    models: list[FileModel] = []
    for path in files:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            warnings.append(f"{path}: unreadable: {exc}")
            continue
        model = build_model(path, rel_path(root, path, fixture_mode), text)
        if clang_ok:
            args = commands.get(str(path.resolve()), default_args)
            warnings.extend(engine_clang.augment_model(model, args, []))
            engine_used = "clang"
        models.append(model)

    # Cross-file context: task-returning functions and unordered members
    # are declared in headers but used in .cpp files.
    ctx = AnalysisContext()
    for model in models:
        ctx.task_functions |= model.task_functions
        ctx.unordered_vars |= model.unordered_vars

    # Pass 2: run the rules, apply waivers, then report waiver hygiene.
    rules = [rule_cls() for rule_cls in all_rules()]
    diagnostics: list[Diagnostic] = []
    for model in models:
        for rule in rules:
            for diag in rule.check(model, ctx):
                if model.waivers.allows(diag.line, diag.rule):
                    waiver = model.waivers.get(diag.line, diag.rule)
                    diag.waived = True
                    diag.waiver_reason = waiver.reason if waiver else ""
                diagnostics.append(diag)
        for waiver in model.waivers.stale():
            diagnostics.append(
                Diagnostic(
                    file=model.rel,
                    line=waiver.line_no,
                    rule=RULE_STALE_WAIVER,
                    message=(
                        f"waiver `analyze: allow({waiver.rule})` suppresses "
                        "nothing — the violation moved or was fixed; delete "
                        "the marker"
                    ),
                )
            )
        for waiver in model.waivers.missing_reason():
            if not waiver.used:
                continue  # already reported as stale
            diagnostics.append(
                Diagnostic(
                    file=model.rel,
                    line=waiver.line_no,
                    rule=RULE_MISSING_REASON,
                    message=(
                        f"waiver `analyze: allow({waiver.rule})` states no "
                        "reason — add `— why` so the next reader can audit it"
                    ),
                )
            )
    diagnostics.sort(key=lambda d: (d.file, d.line, d.rule))
    return diagnostics, warnings, engine_used, models


def write_report(
    out_path: Path,
    root: Path,
    engine_used: str,
    files: list[Path],
    diagnostics: list[Diagnostic],
    warnings: list[str],
) -> None:
    unwaived = [d for d in diagnostics if not d.waived]
    report = {
        "schema": REPORT_SCHEMA,
        "engine": engine_used,
        "root": str(root),
        "files_scanned": len(files),
        "rules": [
            {"name": rule_cls.name, "summary": " ".join(rule_cls.summary.split())}
            for rule_cls in all_rules()
        ],
        "diagnostics": [
            {
                "file": d.file,
                "line": d.line,
                "rule": d.rule,
                "message": d.message,
                "waived": d.waived,
                **({"waiver_reason": d.waiver_reason} if d.waived else {}),
            }
            for d in diagnostics
        ],
        "warnings": warnings,
        "summary": {
            "violations": len(unwaived),
            "waived": sum(1 for d in diagnostics if d.waived),
        },
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", help="files/dirs (default: src/)")
    parser.add_argument("--root", default=".", help="repo root")
    parser.add_argument(
        "--compile-commands",
        default=None,
        help="compile_commands.json for the clang engine "
        "(default: <root>/build/compile_commands.json when present)",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "clang", "syntax"),
        default="auto",
        help="auto: clang when importable, else syntax (with a warning)",
    )
    parser.add_argument("--json", default=None, help="write a JSON report")
    parser.add_argument(
        "--fixture-mode",
        action="store_true",
        help="scope fixtures/<dir>/<subsystem>__<name>.cpp as "
        "src/<subsystem>/<name>.cpp (used by selftest.py)",
    )
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule_cls in all_rules():
            print(f"{rule_cls.name}\n    {' '.join(rule_cls.summary.split())}")
        return 0

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"analyze: no such root: {args.root}", file=sys.stderr)
        return 2

    compile_commands = None
    if args.compile_commands:
        compile_commands = Path(args.compile_commands)
    elif (root / "build" / "compile_commands.json").exists():
        compile_commands = root / "build" / "compile_commands.json"

    files = collect_files(root, args.paths)
    if not files:
        print("analyze: nothing to scan", file=sys.stderr)
        return 2

    try:
        diagnostics, warnings, engine_used, _ = analyze(
            root, files, args.engine, compile_commands, args.fixture_mode
        )
    except EnvironmentError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 3

    for warning in warnings:
        print(f"analyze: warning: {warning}", file=sys.stderr)

    if args.json:
        write_report(
            Path(args.json), root, engine_used, files, diagnostics, warnings
        )

    unwaived = [d for d in diagnostics if not d.waived]
    waived = [d for d in diagnostics if d.waived]
    for diag in unwaived:
        print(f"{diag.file}:{diag.line}: [{diag.rule}] {diag.message}")
    if unwaived:
        print(
            f"analyze: {len(unwaived)} violation(s), {len(waived)} waived "
            f"({engine_used} engine, {len(files)} files)"
        )
        return 1
    print(
        f"analyze: clean — {len(files)} files, {len(waived)} waived "
        f"({engine_used} engine)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
