"""A small C++ lexer: identifiers, numbers, string/char literals (collapsed),
punctuators, with 1-based line numbers. Comments and whitespace are dropped;
preprocessor directives are kept as a single `pp` token per logical line so
structural scans can skip them.

This is not a full C++ tokenizer — it is exactly enough for the structural
model in model.py: balanced-bracket scanning, capture lists, template
argument lists, statement boundaries. Raw strings, line continuations, and
digit separators are handled; trigraphs and UCNs are not (the repo has
none).
"""

from __future__ import annotations

from dataclasses import dataclass

_PUNCT3 = ("<<=", ">>=", "...", "->*", "<=>")
_PUNCT2 = (
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", ".*", "##",
)

_ID_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$"
)
_ID_CONT = _ID_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


@dataclass(frozen=True)
class Token:
    kind: str  # "id" | "num" | "str" | "chr" | "punct" | "pp"
    text: str
    line: int


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    n = len(text)
    line = 1
    at_line_start = True  # only whitespace seen since the last newline

    def skip_line_continuations(j: int) -> int:
        nonlocal line
        while j + 1 < n and text[j] == "\\" and text[j + 1] == "\n":
            line += 1
            j += 2
        return j

    while i < n:
        c = text[i]

        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue

        # Comments.
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                while i < n and text[i] != "\n":
                    i += 1
                continue
            if text[i + 1] == "*":
                i += 2
                while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                    if text[i] == "\n":
                        line += 1
                    i += 1
                i = min(i + 2, n)
                continue

        # Preprocessor directive: swallow the logical line (with \-splices).
        if c == "#" and at_line_start:
            start_line = line
            j = i
            while j < n and text[j] != "\n":
                if text[j] == "\\" and j + 1 < n and text[j + 1] == "\n":
                    line += 1
                    j += 2
                    continue
                j += 1
            tokens.append(Token("pp", text[i:j], start_line))
            i = j
            continue

        at_line_start = False

        # Raw string literal R"delim( ... )delim".
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            j = i + 2
            while j < n and text[j] not in "(\n" and (j - i - 2) < 16:
                j += 1
            if j < n and text[j] == "(":
                delim = text[i + 2 : j]
                close = ")" + delim + '"'
                end = text.find(close, j + 1)
                if end == -1:
                    end = n - len(close)
                line += text.count("\n", i, end + len(close))
                tokens.append(Token("str", '""', line))
                i = end + len(close)
                continue

        # String/char literal (prefixes like u8"", L'' arrive as id + literal,
        # which is fine for our scans).
        if c in "\"'":
            quote = c
            start_line = line
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == "\n":  # unterminated; bail at line end
                    break
                if text[j] == quote:
                    j += 1
                    break
                j += 1
            tokens.append(
                Token("str" if quote == '"' else "chr", quote + quote, start_line)
            )
            i = j
            continue

        # Identifier / keyword.
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue

        # Number (incl. hex, floats, digit separators, exponent signs).
        if c in _DIGITS or (c == "." and i + 1 < n and text[i + 1] in _DIGITS):
            j = i + 1
            while j < n:
                ch = text[j]
                if ch in _ID_CONT or ch in "'.":
                    j += 1
                    continue
                if ch in "+-" and text[j - 1] in "eEpP":
                    j += 1
                    continue
                break
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue

        # Punctuators, longest match first.
        i = skip_line_continuations(i)
        for group in (_PUNCT3, _PUNCT2):
            tok = text[i : i + len(group[0])]
            if tok in group:
                tokens.append(Token("punct", tok, line))
                i += len(tok)
                break
        else:
            tokens.append(Token("punct", c, line))
            i += 1

    return tokens
