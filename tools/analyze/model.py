"""The per-file semantic model that every analyzer rule consumes, plus the
token-level structural builder that produces it.

Two engines fill this model:

  * the built-in syntactic engine (this module): a real tokenizer plus
    balanced-bracket structure — lambdas with parsed capture lists,
    co_await sites with operand shape, range-for statements, lock-guard
    scopes, reference-to-temporary declarations, class-scope fields, and
    declared-type tracking for unordered containers and Task-returning
    functions. It needs nothing beyond the Python stdlib, so the analyzer
    always runs (ctest entries analyze.ast_rules / analyze.src_clean).

  * engine_clang.py: when clang.cindex + libclang are importable it parses
    each TU with the flags recorded in compile_commands.json and *augments*
    the same model with resolved canonical types (variables whose deduced
    or aliased type is an unordered container, functions whose return type
    is sim::Task, pointer-keyed ordered containers behind typedefs). Rules
    never know which engine filled the model.

Scoping: determinism rules apply to the sim-deterministic subsystems
(DETERMINISTIC_SUBSYSTEMS); everything else in src/ gets the weaker
sink-sensitive variant. See DESIGN.md §13.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from waivers import WaiverSet  # noqa: E402

from cpptokens import Token, tokenize  # noqa: E402

# Subsystems whose event order, digests, and serialized output must be a
# pure function of the seed (DESIGN.md §13). Paths are src/-relative
# first components.
DETERMINISTIC_SUBSYSTEMS = frozenset(
    {"sim", "net", "transfer", "cloud", "chaos", "scenario", "ctrl"}
)

UNORDERED_CONTAINERS = frozenset(
    {"unordered_map", "unordered_set", "unordered_multimap",
     "unordered_multiset"}
)
ORDERED_CONTAINERS = frozenset({"map", "set", "multimap", "multiset"})
LOCK_TYPES = frozenset(
    {"lock_guard", "unique_lock", "scoped_lock", "shared_lock"}
)
COROUTINE_KEYWORDS = frozenset({"co_await", "co_yield", "co_return"})


@dataclass
class LambdaInfo:
    line: int
    intro: int                 # token index of the '['
    captures: list[str]        # normalized: "&", "&x", "this", "x", "=", "*this"
    body: tuple[int, int]      # token index span [open '{', close '}']
    is_coroutine: bool = False


@dataclass
class AwaitSite:
    line: int
    index: int                 # token index of the co_await keyword
    operand_is_call: bool      # co_await <id-chain>(...): awaits a temporary
    callee: str = ""           # qualified callee ("sim::delay", "notify.wait")


@dataclass
class RangeForInfo:
    line: int
    range_text: str
    range_tokens: list[Token]
    body: tuple[int, int]      # token span of the loop body (brace or stmt)


@dataclass
class ScopedDecl:
    """A declaration plus the token index where its scope ends."""
    line: int
    index: int
    scope_end: int
    detail: str = ""           # lock type, or ref-decl callee


@dataclass
class PointerKeyDecl:
    line: int
    type_text: str


@dataclass
class TaskField:
    line: int
    text: str


@dataclass
class FileModel:
    path: Path
    rel: str                   # repo-relative posix path, used for scoping
    raw_lines: list[str]
    tokens: list[Token]
    waivers: WaiverSet
    lambdas: list[LambdaInfo] = field(default_factory=list)
    awaits: list[AwaitSite] = field(default_factory=list)
    range_fors: list[RangeForInfo] = field(default_factory=list)
    lock_decls: list[ScopedDecl] = field(default_factory=list)
    ref_decls: list[ScopedDecl] = field(default_factory=list)
    pointer_key_decls: list[PointerKeyDecl] = field(default_factory=list)
    task_fields: list[TaskField] = field(default_factory=list)
    unordered_vars: set[str] = field(default_factory=set)
    unordered_types: set[str] = field(default_factory=set)
    task_functions: set[str] = field(default_factory=set)
    engine: str = "syntax"

    def subsystem(self) -> str:
        parts = Path(self.rel).parts
        if len(parts) >= 2 and parts[0] == "src":
            return parts[1]
        return ""

    def is_deterministic_scope(self) -> bool:
        return self.subsystem() in DETERMINISTIC_SUBSYSTEMS


# ---------------------------------------------------------------------------
# Structural scanning helpers


def _bracket_maps(tokens: list[Token]) -> tuple[dict[int, int], list[int]]:
    """Returns (open<->close match map for (){}[], innermost enclosing
    '{' index per token, or -1)."""
    match: dict[int, int] = {}
    encl: list[int] = [-1] * len(tokens)
    stack: list[tuple[str, int]] = []
    brace_stack: list[int] = []
    pairs = {")": "(", "}": "{", "]": "["}
    for i, tok in enumerate(tokens):
        encl[i] = brace_stack[-1] if brace_stack else -1
        if tok.kind != "punct":
            continue
        if tok.text in "({[":
            stack.append((tok.text, i))
            if tok.text == "{":
                brace_stack.append(i)
        elif tok.text in ")}]":
            want = pairs[tok.text]
            # tolerate mismatches from macro soup: pop until match
            while stack and stack[-1][0] != want:
                opened, j = stack.pop()
                if opened == "{" and brace_stack and brace_stack[-1] == j:
                    brace_stack.pop()
            if stack:
                _, j = stack.pop()
                match[j] = i
                match[i] = j
                if tok.text == "}" and brace_stack and brace_stack[-1] == j:
                    brace_stack.pop()
    return match, encl


def _skip_template_args(tokens: list[Token], i: int, limit: int = 400) -> int:
    """If tokens[i] is '<' opening a template argument list, returns the
    index just past the matching '>'; otherwise returns i. '>>' closes two
    levels. Gives up (returns i) when no close is found before `limit`
    tokens or a ';' — then it was a comparison, not a template list."""
    if i >= len(tokens) or tokens[i].text != "<":
        return i
    depth = 0
    j = i
    end = min(len(tokens), i + limit)
    while j < end:
        text = tokens[j].text
        if text == "<":
            depth += 1
        elif text == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif text == ">>":
            depth -= 2
            if depth <= 0:
                return j + 1
        elif text in (";", "{", "}"):
            return i
        j += 1
    return i


def _qualified_chain(tokens: list[Token], i: int) -> tuple[str, int]:
    """Parses `id(::id)*` (with optional template args on the last
    segment) starting at i. Returns (joined text, index just past)."""
    if i >= len(tokens) or tokens[i].kind != "id":
        return "", i
    parts = [tokens[i].text]
    j = i + 1
    while (
        j + 1 < len(tokens)
        and tokens[j].text == "::"
        and tokens[j + 1].kind == "id"
    ):
        parts.append(tokens[j + 1].text)
        j += 2
    j = _skip_template_args(tokens, j)
    return "::".join(parts), j


_STMT_BOUNDARY = frozenset({";", "{", "}"})


def _statement_start(tokens: list[Token], match: dict[int, int], i: int) -> int:
    """Walks a member-access chain leftwards from token i (an identifier)
    to the first token of the expression statement it belongs to."""
    j = i
    for _ in range(64):  # chain-length guard
        if j == 0:
            return j
        prev = tokens[j - 1]
        if prev.text in (".", "->", "::"):
            k = j - 2
            if k >= 0 and tokens[k].text in (")", "]") and k in match:
                # (...)  or  [...]  — jump to its opener, then keep walking
                j = match[k]
                continue
            if k >= 0 and (tokens[k].kind == "id" or tokens[k].text == "this"):
                j = k
                continue
            return j
        return j
    return j


# ---------------------------------------------------------------------------
# Model builder


def build_model(path: Path, rel: str, text: str) -> FileModel:
    raw_lines = text.splitlines()
    tokens = tokenize(text)
    model = FileModel(
        path=path,
        rel=rel,
        raw_lines=raw_lines,
        tokens=tokens,
        waivers=WaiverSet.parse(raw_lines, "analyze"),
    )
    match, encl = _bracket_maps(tokens)
    _scan_lambdas(model, match)
    _scan_awaits(model)
    _mark_coroutine_lambdas(model)
    _scan_range_fors(model, match)
    _scan_container_decls(model)
    _scan_lock_decls(model, match, encl)
    _scan_ref_decls(model, match, encl)
    _scan_task_decls(model, match, encl)
    model._match = match  # type: ignore[attr-defined]
    model._encl = encl    # type: ignore[attr-defined]
    return model


_LAMBDA_PREV_PUNCT = frozenset(
    {"(", ",", "{", "}", ";", "=", "&&", "||", "!", "?", ":", "<", ">",
     "+", "-", "*", "/"}
)
_LAMBDA_PREV_ID = frozenset(
    {"return", "co_return", "co_yield", "co_await", "case", "else", "do"}
)


def _scan_lambdas(model: FileModel, match: dict[int, int]) -> None:
    tokens = model.tokens
    for i, tok in enumerate(tokens):
        if tok.text != "[" or i not in match:
            continue
        nxt = tokens[i + 1] if i + 1 < len(tokens) else None
        if nxt is not None and nxt.text == "[":
            continue  # [[attribute]]
        prev = tokens[i - 1] if i > 0 else None
        if prev is not None:
            if prev.text == "[":
                continue
            if prev.kind == "id" and prev.text not in _LAMBDA_PREV_ID:
                continue  # subscript: var[...]
            if prev.kind == "punct" and prev.text not in _LAMBDA_PREV_PUNCT:
                continue
            if prev.kind in ("num", "str", "chr"):
                continue
        close = match[i]
        captures = _parse_captures(tokens[i + 1 : close])
        # after ']': optional (params), specifiers, -> type, then '{'
        j = close + 1
        if j < len(tokens) and tokens[j].text == "(" and j in match:
            j = match[j] + 1
        body = None
        for _ in range(60):
            if j >= len(tokens):
                break
            text = tokens[j].text
            if text == "{":
                body = (j, match.get(j, j))
                break
            if text in (";", ")", ",", "]", "}"):
                break  # not a lambda after all (or a declaration trick)
            if text == "<":
                j = max(_skip_template_args(model.tokens, j), j + 1)
                continue
            j += 1
        if body is None:
            continue
        model.lambdas.append(
            LambdaInfo(line=tok.line, intro=i, captures=captures, body=body)
        )


def _parse_captures(tokens: list[Token]) -> list[str]:
    captures: list[str] = []
    depth = 0
    current: list[str] = []

    def flush() -> None:
        if not current:
            return
        item = current[0]
        if item == "&" and len(current) > 1 and current[1] not in (",",):
            item = "&" + current[1]
        elif item == "*" and len(current) > 1:
            item = "*" + current[1]
        captures.append(item)
        current.clear()

    for tok in tokens:
        if tok.text in "([{<":
            depth += 1
        elif tok.text in ")]}>":
            depth -= 1
        if tok.text == "," and depth == 0:
            flush()
            continue
        if tok.text == "=" and depth == 0 and current:
            # init capture `x = expr` / `&x = expr`: name already collected
            flush()
            current.append("\0seen")  # swallow the initializer
            continue
        if current and current[0] == "\0seen":
            continue
        current.append(tok.text)
    if current and current[0] != "\0seen":
        flush()
    return captures


def _scan_awaits(model: FileModel) -> None:
    tokens = model.tokens
    for i, tok in enumerate(tokens):
        if tok.text != "co_await" or tok.kind != "id":
            continue
        site = AwaitSite(line=tok.line, index=i, operand_is_call=False)
        j = i + 1
        # `co_await (expr)` — peel one paren for shape detection
        chain_parts: list[str] = []
        while j < len(tokens):
            name, k = _qualified_chain(tokens, j)
            if not name:
                break
            chain_parts.append(name)
            if k < len(tokens) and tokens[k].text in (".", "->"):
                j = k + 1
                continue
            if k < len(tokens) and tokens[k].text == "(":
                site.operand_is_call = True
                site.callee = ".".join(chain_parts)
            break
        model.awaits.append(site)


def _mark_coroutine_lambdas(model: FileModel) -> None:
    spans = [lam.body for lam in model.lambdas]
    kw_positions = [
        i for i, t in enumerate(model.tokens)
        if t.kind == "id" and t.text in COROUTINE_KEYWORDS
    ]
    for lam in model.lambdas:
        lo, hi = lam.body
        nested = [s for s in spans if s[0] > lo and s[1] < hi]
        for pos in kw_positions:
            if not lo < pos < hi:
                continue
            if any(n[0] < pos < n[1] for n in nested):
                continue
            lam.is_coroutine = True
            break


def _scan_range_fors(model: FileModel, match: dict[int, int]) -> None:
    tokens = model.tokens
    for i, tok in enumerate(tokens):
        if tok.text != "for" or tok.kind != "id":
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
            continue
        open_paren = i + 1
        close_paren = match.get(open_paren)
        if close_paren is None:
            continue
        colon = None
        depth = 0
        for j in range(open_paren + 1, close_paren):
            text = tokens[j].text
            if text in "([{":
                depth += 1
            elif text in ")]}":
                depth -= 1
            elif text == ";" and depth == 0:
                colon = None
                break  # classic for(;;)
            elif text == ":" and depth == 0 and colon is None:
                colon = j
        if colon is None:
            continue
        range_tokens = tokens[colon + 1 : close_paren]
        body_open = close_paren + 1
        if body_open < len(tokens) and tokens[body_open].text == "{":
            body = (body_open, match.get(body_open, body_open))
        else:
            # single-statement body: up to the terminating ';'
            j = body_open
            depth = 0
            while j < len(tokens):
                text = tokens[j].text
                if text in "([{":
                    depth += 1
                elif text in ")]}":
                    depth -= 1
                elif text == ";" and depth == 0:
                    break
                j += 1
            body = (body_open, j)
        model.range_fors.append(
            RangeForInfo(
                line=tok.line,
                range_text=" ".join(t.text for t in range_tokens),
                range_tokens=list(range_tokens),
                body=body,
            )
        )


def _scan_container_decls(model: FileModel) -> None:
    """Collects declared unordered-container variable names + aliases, and
    pointer-keyed ordered-container declarations."""
    tokens = model.tokens
    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        if tok.text in UNORDERED_CONTAINERS:
            end = _skip_template_args(tokens, i + 1)
            if end == i + 1:
                continue  # no template args — a bare mention
            j = end
            while j < len(tokens) and tokens[j].text in ("&", "*", "const"):
                j += 1
            if j < len(tokens) and tokens[j].kind == "id":
                name = tokens[j].text
                after = tokens[j + 1].text if j + 1 < len(tokens) else ""
                if after != "(":  # a '(', would be a function returning one
                    model.unordered_vars.add(name)
            # alias:  using Foo = std::unordered_map<...>;
            back = i - 1
            while back > 0 and tokens[back].text in ("::", "std"):
                back -= 1
            if back >= 1 and tokens[back].text == "=" and tokens[back - 1].kind == "id":
                if back >= 2 and tokens[back - 2].text in ("using",):
                    model.unordered_types.add(tokens[back - 1].text)
        elif tok.text in model.unordered_types:
            j = i + 1
            while j < len(tokens) and tokens[j].text in ("&", "*", "const"):
                j += 1
            if j < len(tokens) and tokens[j].kind == "id":
                after = tokens[j + 1].text if j + 1 < len(tokens) else ""
                if after != "(":
                    model.unordered_vars.add(tokens[j].text)
        elif tok.text in ORDERED_CONTAINERS:
            # require std:: qualification so plain identifiers named `map`
            # don't match
            if i < 2 or tokens[i - 1].text != "::" or tokens[i - 2].text != "std":
                continue
            if i + 1 >= len(tokens) or tokens[i + 1].text != "<":
                continue
            end = _skip_template_args(tokens, i + 1)
            if end == i + 1:
                continue
            first_arg_last = None
            depth = 0
            for j in range(i + 2, end - 1):
                text = tokens[j].text
                if text == "<":
                    depth += 1
                elif text in (">", ">>"):
                    depth -= 1 if text == ">" else 2
                elif text == "," and depth == 0:
                    break
                first_arg_last = tokens[j]
            if first_arg_last is not None and first_arg_last.text == "*":
                type_text = " ".join(
                    t.text for t in tokens[i - 2 : min(end, i + 14)]
                )
                model.pointer_key_decls.append(
                    PointerKeyDecl(line=tok.line, type_text=type_text)
                )


def _scan_lock_decls(
    model: FileModel, match: dict[int, int], encl: list[int]
) -> None:
    tokens = model.tokens
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in LOCK_TYPES:
            continue
        j = _skip_template_args(tokens, i + 1)
        if j < len(tokens) and tokens[j].kind == "id":
            nxt = tokens[j + 1].text if j + 1 < len(tokens) else ""
            if nxt not in ("(", "{", ";", "="):
                continue  # not a declaration (e.g. a type in a signature)
            open_brace = encl[i]
            scope_end = match.get(open_brace, len(tokens) - 1)
            model.lock_decls.append(
                ScopedDecl(
                    line=tok.line, index=i, scope_end=scope_end,
                    detail=tok.text,
                )
            )


def _scan_ref_decls(
    model: FileModel, match: dict[int, int], encl: list[int]
) -> None:
    """Reference declarations bound directly to a free-function call:
    `const auto& x = make_thing(...);` — the classic
    reference-to-temporary. Member/method calls on named objects are
    skipped (they usually return references to stable storage)."""
    tokens = model.tokens
    for i, tok in enumerate(tokens):
        if tok.text != "&" or i + 3 >= len(tokens):
            continue
        name_tok = tokens[i + 1]
        if name_tok.kind != "id" or tokens[i + 2].text != "=":
            continue
        prev = tokens[i - 1] if i > 0 else None
        if prev is None or prev.kind != "id" or prev.text in ("return", "co_return"):
            continue  # need a type-ish token before '&'
        callee, k = _qualified_chain(tokens, i + 3)
        if not callee or k >= len(tokens) or tokens[k].text != "(":
            continue
        close = match.get(k)
        if close is None or close + 1 >= len(tokens):
            continue
        if tokens[close + 1].text != ";":
            continue  # e.g. a default argument, or a longer expression
        open_brace = encl[i]
        if open_brace < 0:
            continue  # namespace scope: not our concern
        scope_end = match.get(open_brace, len(tokens) - 1)
        model.ref_decls.append(
            ScopedDecl(line=tok.line, index=i, scope_end=scope_end, detail=callee)
        )


def _is_class_body(tokens: list[Token], match: dict[int, int], open_brace: int) -> bool:
    """True when `open_brace` opens a class/struct/union body: walk back to
    the statement head and look for the class keyword."""
    j = open_brace - 1
    for _ in range(64):
        if j < 0:
            return False
        text = tokens[j].text
        if text in ("class", "struct", "union"):
            return True
        if text in (";", "{", "}", ")") or tokens[j].kind == "pp":
            return False
        j -= 1
    return False


def _scan_task_decls(
    model: FileModel, match: dict[int, int], encl: list[int]
) -> None:
    """Finds (a) functions declared to return sim::Task<T> (fed into the
    discarded-task rule's symbol table) and (b) Task-typed data members at
    class scope (the task-field lifetime rule)."""
    tokens = model.tokens
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text != "Task":
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "<":
            continue
        end = _skip_template_args(tokens, i + 1)
        if end == i + 1:
            continue
        # Function returning Task<...>: `Task<...> name (`
        if (
            end + 1 < len(tokens)
            and tokens[end].kind == "id"
            and tokens[end + 1].text == "("
        ):
            model.task_functions.add(tokens[end].text)
            continue
        # `Task<T>*` / `Task<T>&` members are non-owning views: they do not
        # extend the frame's lifetime, so the field rule skips them (the
        # capture rules own that hazard).
        if end < len(tokens) and tokens[end].text in ("*", "&"):
            continue
        # Otherwise: is this Task mention part of a class-scope data member?
        open_brace = encl[i]
        if open_brace < 0 or not _is_class_body(tokens, match, open_brace):
            continue
        # Walk back to the statement head; skip aliases/friends/usings.
        head = i
        skip = False
        for j in range(i - 1, max(-1, i - 48), -1):
            text = tokens[j].text
            if text in (";", "{", "}", ":") or tokens[j].kind == "pp":
                break
            if text in ("using", "typedef", "friend"):
                skip = True
                break
            head = j
        if skip:
            continue
        # Scan forward to ';'; a '(' before any '=' means a member function
        # declaration, not a field.
        is_field = True
        seen_eq = False
        stmt_end = i
        j = end
        depth = 0
        while j < len(tokens):
            text = tokens[j].text
            if text == "<":
                depth += 1
            elif text in (">", ">>"):
                depth -= 1 if text == ">" else 2
            elif depth <= 0:
                if text == ";":
                    stmt_end = j
                    break
                if text == "=":
                    seen_eq = True
                if text == "(" and not seen_eq:
                    is_field = False
                    break
                if text in ("{", "}"):
                    # default member init with braces is fine; a brace body
                    # means we ran into a function definition
                    if not seen_eq:
                        is_field = False
                    break
            j += 1
        if is_field:
            text = " ".join(
                t.text for t in tokens[head : min(stmt_end + 1, head + 16)]
            )
            model.task_fields.append(TaskField(line=tok.line, text=text))
