"""Determinism rules: byte-identical same-seed replay is the contract every
bench figure, the fabric-equivalence suite, and the chaos replay corpus
stand on (DESIGN.md §13). These rules catch the three classic ways C++
code goes nondeterministic without failing a single test locally:

  * wall-clock / ambient randomness in a simulated subsystem,
  * iteration over hash containers feeding digests/serialization/schedules,
  * ordered containers keyed by pointer (address-space layout order).
"""

from __future__ import annotations

from . import AnalysisContext, Diagnostic, register
from model import FileModel  # noqa: E402  (sys.path set up by run.py)

RULE_WALL_CLOCK = "determinism-wall-clock"
RULE_UNORDERED_ITER = "determinism-unordered-iter"
RULE_POINTER_KEY = "determinism-pointer-key"

# Identifiers that read ambient time or entropy. Matched as whole tokens,
# never inside member access on an object (obj.rand() is someone's API).
_BANNED_IDS = frozenset(
    {
        "system_clock", "steady_clock", "high_resolution_clock",
        "random_device", "srand", "gettimeofday", "timespec_get",
        "clock_gettime", "localtime", "gmtime", "mktime",
    }
)
# Banned only as free-function calls (the bare names are common words).
_BANNED_CALLS = frozenset({"rand", "time", "clock"})

# Tokens in a loop body that mean "this iteration's order escapes": digest
# accumulation, serialization / text export, metric export, or event
# scheduling. Extend the list when a new sink family appears.
_ORDER_SINKS = frozenset(
    {
        "digest", "fnv1a", "hash", "hash_combine", "update", "md5", "sha1",
        "sha256", "checksum", "write", "print", "printf", "snprintf",
        "format", "serialize", "render", "dump", "csv", "json",
        "schedule", "schedule_in", "schedule_at", "call_at",
        "counter", "gauge", "histogram", "count", "push_back",
        "emplace_back", "append", "insert",
    }
)


@register
class WallClockRule:
    name = RULE_WALL_CLOCK
    summary = (
        "no wall-clock or ambient randomness (system_clock, steady_clock, "
        "rand(), std::random_device, ...) inside sim-deterministic "
        "subsystems (src/{sim,net,transfer,cloud,chaos,scenario})"
    )

    def check(self, model: FileModel, ctx: AnalysisContext) -> list[Diagnostic]:
        if not model.is_deterministic_scope():
            return []
        out: list[Diagnostic] = []
        tokens = model.tokens
        for i, tok in enumerate(tokens):
            if tok.kind != "id":
                continue
            prev = tokens[i - 1] if i > 0 else None
            if prev is not None and prev.text in (".", "->"):
                continue  # member named like a banned symbol: not ambient
            if prev is not None and prev.text == "::":
                qualifier = tokens[i - 2] if i >= 2 else None
                # `foo::rand` is someone's own namespace; `std::`, `chrono::`
                # and the global `::rand` are the ambient ones.
                if (
                    qualifier is not None
                    and qualifier.kind == "id"
                    and qualifier.text not in ("std", "chrono")
                ):
                    continue
            hit = tok.text in _BANNED_IDS
            if not hit and tok.text in _BANNED_CALLS:
                nxt = tokens[i + 1] if i + 1 < len(tokens) else None
                hit = nxt is not None and nxt.text == "("
            if hit:
                out.append(
                    Diagnostic(
                        file=model.rel,
                        line=tok.line,
                        rule=self.name,
                        message=(
                            f"`{tok.text}` reads ambient time/entropy inside "
                            f"sim-deterministic subsystem "
                            f"`{model.subsystem()}` — thread sim::Time or "
                            "util::Rng through instead"
                        ),
                    )
                )
        return out


@register
class UnorderedIterRule:
    name = RULE_UNORDERED_ITER
    summary = (
        "no range-iteration over unordered_{map,set} in sim-deterministic "
        "subsystems; elsewhere, none whose loop body feeds a digest, "
        "serialization, metric export, or event schedule"
    )

    def check(self, model: FileModel, ctx: AnalysisContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        known = model.unordered_vars | ctx.unordered_vars
        deterministic = model.is_deterministic_scope()
        for loop in model.range_fors:
            over_unordered = any(
                t.kind == "id" and (t.text in known or "unordered_" in t.text)
                for t in loop.range_tokens
            )
            if not over_unordered:
                continue
            lo, hi = loop.body
            sinks = sorted(
                {
                    t.text
                    for t in model.tokens[lo : hi + 1]
                    if (t.kind == "id" and t.text in _ORDER_SINKS)
                    or t.text == "<<"
                }
            )
            if not deterministic and not sinks:
                continue
            if deterministic:
                why = (
                    "hash-order iteration inside sim-deterministic "
                    f"subsystem `{model.subsystem()}`"
                )
            else:
                why = (
                    "hash-order iteration feeds order-sensitive sink(s): "
                    + ", ".join(s if s != "<<" else "operator<<" for s in sinks)
                )
            out.append(
                Diagnostic(
                    file=model.rel,
                    line=loop.line,
                    rule=self.name,
                    message=(
                        f"range-for over unordered container "
                        f"(`{loop.range_text}`): {why} — iterate a std::map/"
                        "sorted vector, or sort keys first"
                    ),
                )
            )
        return out


@register
class PointerKeyRule:
    name = RULE_POINTER_KEY
    summary = (
        "no std::map/std::set keyed by pointer — iteration order follows "
        "allocator addresses, which differ run to run"
    )

    def check(self, model: FileModel, ctx: AnalysisContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for decl in model.pointer_key_decls:
            out.append(
                Diagnostic(
                    file=model.rel,
                    line=decl.line,
                    rule=self.name,
                    message=(
                        f"ordered container keyed by pointer "
                        f"(`{decl.type_text}`) — key by a stable id, or use "
                        "an unordered container if iteration order never "
                        "escapes"
                    ),
                )
            )
        return out
