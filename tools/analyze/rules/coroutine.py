"""Coroutine-lifetime rules. The repo-wide contracts these enforce are
documented prose in DESIGN.md §10 — a Task must not outlive its Simulator,
awaitables are awaited as lvalues (GCC PR 99576), and a coroutine frame
only borrows what is guaranteed to outlive its last suspension. The rules
turn each contract into a diagnostic.
"""

from __future__ import annotations

from . import AnalysisContext, Diagnostic, register
from model import FileModel  # noqa: E402

RULE_REF_CAPTURE = "coroutine-ref-capture"
RULE_DISCARDED_TASK = "coroutine-discarded-task"
RULE_RVALUE_AWAIT = "coroutine-rvalue-await"
RULE_TASK_FIELD = "coroutine-task-field"

# Awaitable factories documented rvalue-safe: their awaiter methods are not
# &-qualified and the object completes within the co_await expression
# (sim/task.h). Matched against the last segment of the callee chain.
RVALUE_SAFE_AWAITABLES = frozenset(
    {"delay", "delay_until", "cancellation_requested"}
)


def _last_segment(callee: str) -> str:
    for sep in (".", "::"):
        if sep in callee:
            callee = callee.rsplit(sep, 1)[1]
    return callee


@register
class RefCaptureRule:
    name = RULE_REF_CAPTURE
    summary = (
        "no coroutine lambda capturing by reference or capturing `this` — "
        "the frame outlives the capturing scope's stack; waive only with a "
        "documented lifetime argument"
    )

    def check(self, model: FileModel, ctx: AnalysisContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for lam in model.lambdas:
            if not lam.is_coroutine:
                continue
            bad = [
                c for c in lam.captures
                if c == "&" or c.startswith("&") or c == "this"
            ]
            if not bad:
                continue
            out.append(
                Diagnostic(
                    file=model.rel,
                    line=lam.line,
                    rule=self.name,
                    message=(
                        f"coroutine lambda captures [{', '.join(bad)}] — the "
                        "frame suspends past the capturing scope; capture by "
                        "value (or `*this`), or waive with the lifetime "
                        "argument"
                    ),
                )
            )
        return out


@register
class DiscardedTaskRule:
    name = RULE_DISCARDED_TASK
    summary = (
        "no discarded Task<T> temporaries: calling a task coroutine as a "
        "bare statement drops the only handle while the body keeps running "
        "in the simulator"
    )

    def check(self, model: FileModel, ctx: AnalysisContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        tokens = model.tokens
        match = getattr(model, "_match", {})
        known = ctx.task_functions | model.task_functions
        for i, tok in enumerate(tokens):
            if tok.kind != "id" or tok.text not in known:
                continue
            j = i + 1
            # skip explicit template args: foo<T>(...)
            from model import _skip_template_args  # local import, no cycle
            j = _skip_template_args(tokens, j)
            if j >= len(tokens) or tokens[j].text != "(":
                continue
            close = match.get(j)
            if close is None or close + 1 >= len(tokens):
                continue
            if tokens[close + 1].text != ";":
                continue  # result is consumed (assigned, awaited, chained)
            from model import _statement_start
            start = _statement_start(tokens, match, i)
            prev = tokens[start - 1] if start > 0 else None
            starts_statement = (
                prev is None
                or prev.kind == "pp"
                or prev.text in (";", "{", "}", "else", "do")
            )
            if not starts_statement and prev is not None and prev.text == ")":
                # `if (cond) task();` — a control-clause close-paren also
                # begins a discarded statement (but a ternary/call does not)
                open_idx = match.get(start - 1)
                if open_idx is not None and open_idx > 0:
                    head = tokens[open_idx - 1].text
                    starts_statement = head in ("if", "while", "for", "switch")
            if not starts_statement:
                continue
            out.append(
                Diagnostic(
                    file=model.rel,
                    line=tok.line,
                    rule=self.name,
                    message=(
                        f"result of task coroutine `{tok.text}(...)` is "
                        "discarded — bind it and join (co_await / on_done / "
                        "cancel) so the frame cannot outlive its inputs"
                    ),
                )
            )
        return out


@register
class RvalueAwaitRule:
    name = RULE_RVALUE_AWAIT
    summary = (
        "awaitables must be lvalues: `co_await make_x()` awaits a "
        "temporary (GCC PR 99576 miscompiles the frame slot) — bind to a "
        "local first; sim::delay/delay_until/cancellation_requested are "
        "documented rvalue-safe"
    )

    def check(self, model: FileModel, ctx: AnalysisContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for site in model.awaits:
            if not site.operand_is_call:
                continue
            if _last_segment(site.callee) in RVALUE_SAFE_AWAITABLES:
                continue
            out.append(
                Diagnostic(
                    file=model.rel,
                    line=site.line,
                    rule=self.name,
                    message=(
                        f"`co_await {site.callee}(...)` awaits a temporary — "
                        "bind the awaitable to a local, then co_await the "
                        "lvalue (GCC PR 99576; sim/task.h header note)"
                    ),
                )
            )
        return out


@register
class TaskFieldRule:
    name = RULE_TASK_FIELD
    summary = (
        "no Task<T> data members outside src/sim: a stored task's pending "
        "resume lives in the simulator queue, so the owning type silently "
        "inherits the must-not-outlive-Simulator contract"
    )

    def check(self, model: FileModel, ctx: AnalysisContext) -> list[Diagnostic]:
        if model.subsystem() == "sim":
            return []
        out: list[Diagnostic] = []
        for fld in model.task_fields:
            out.append(
                Diagnostic(
                    file=model.rel,
                    line=fld.line,
                    rule=self.name,
                    message=(
                        f"Task-typed data member (`{fld.text}`) — the owner "
                        "now must not outlive the Simulator; prefer joining "
                        "tasks in the scope that spawned them, or waive with "
                        "the teardown-order argument"
                    ),
                )
            )
        return out
