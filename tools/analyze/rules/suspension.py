"""Suspension-safety rules: what must not be live across a co_await.

A co_await can park the frame for unbounded simulated time (and, in a
future sharded simulator, can resume on another worker). Two things must
never span that gap: a held mutex (other tasks in the same event loop
deadlock or race), and a reference bound to a temporary whose full
expression already ended when the frame resumes.
"""

from __future__ import annotations

from . import AnalysisContext, Diagnostic, register
from model import FileModel  # noqa: E402

RULE_LOCK_ACROSS_AWAIT = "suspend-lock-across-await"
RULE_REF_TO_TEMPORARY = "suspend-ref-to-temporary"

# Free functions that return references *into their arguments* (no
# temporary is created), so binding a reference to their result is safe.
_REF_RETURNING_SAFE = frozenset(
    {"min", "max", "clamp", "get", "as_const", "forward", "move", "at"}
)


def _last_segment(callee: str) -> str:
    for sep in (".", "::"):
        if sep in callee:
            callee = callee.rsplit(sep, 1)[1]
    return callee


@register
class LockAcrossAwaitRule:
    name = RULE_LOCK_ACROSS_AWAIT
    summary = (
        "no lock_guard/unique_lock/scoped_lock held across co_await — the "
        "frame parks with the mutex held for unbounded simulated time"
    )

    def check(self, model: FileModel, ctx: AnalysisContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for lock in model.lock_decls:
            for site in model.awaits:
                if lock.index < site.index <= lock.scope_end:
                    out.append(
                        Diagnostic(
                            file=model.rel,
                            line=site.line,
                            rule=self.name,
                            message=(
                                f"co_await while a std::{lock.detail} "
                                f"declared at line {lock.line} is still in "
                                "scope — release before suspending (scope "
                                "the lock in a block, or restructure)"
                            ),
                        )
                    )
                    break  # one diagnostic per lock is enough
        return out


@register
class RefToTemporaryRule:
    name = RULE_REF_TO_TEMPORARY
    summary = (
        "no reference bound to a free-function temporary live across "
        "co_await — lifetime extension ends with the frame's suspension "
        "scope, not the resumed one"
    )

    def check(self, model: FileModel, ctx: AnalysisContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for decl in model.ref_decls:
            if _last_segment(decl.detail) in _REF_RETURNING_SAFE:
                continue
            for site in model.awaits:
                if decl.index < site.index <= decl.scope_end:
                    out.append(
                        Diagnostic(
                            file=model.rel,
                            line=decl.line,
                            rule=self.name,
                            message=(
                                f"reference bound to `{decl.detail}(...)` "
                                f"temporary is live across the co_await at "
                                f"line {site.line} — copy into a value, or "
                                "shorten the reference's scope"
                            ),
                        )
                    )
                    break
        return out
