"""Rule-plugin registry for droute-analyze.

A rule is a class with:

    name        kebab-case rule id (what waivers name)
    summary     one-line description for --list-rules and the JSON report
    check(model, ctx) -> list[Diagnostic]

Register with @register. Rules are pure functions of the FileModel (filled
by either engine) plus the cross-file AnalysisContext, so adding a rule
never touches the engines. See DESIGN.md §13 "How to add a rule".
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Diagnostic:
    file: str          # repo-relative path
    line: int
    rule: str
    message: str
    waived: bool = False
    waiver_reason: str = ""


@dataclass
class AnalysisContext:
    """Cross-file facts collected in the first pass over every model."""
    task_functions: set[str] = field(default_factory=set)
    unordered_vars: set[str] = field(default_factory=set)


_RULES: list[type] = []


def register(rule_cls: type) -> type:
    _RULES.append(rule_cls)
    return rule_cls


def all_rules() -> list[type]:
    # import for side effect of registration
    from . import coroutine, determinism, suspension  # noqa: F401
    return sorted(_RULES, key=lambda r: r.name)
