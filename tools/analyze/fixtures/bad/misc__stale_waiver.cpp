// Fixture: a waiver that suppresses nothing. The rand() it once excused
// was deleted, the marker stayed behind — the analyzer reports the rotted
// waiver itself as an error so markers cannot silently accumulate.

namespace droute::analyze_fixture {

inline int stable_value() {
  // analyze: allow(determinism-wall-clock) — excused a rand() that no longer exists  // expect: waiver-stale
  return 42;
}

}  // namespace droute::analyze_fixture
