// Fixture: a waiver that works (it suppresses a real wall-clock hit in a
// deterministic subsystem) but states no reason. The suppressed rule stays
// quiet; the reason-less marker is reported so every waiver stays auditable.
#include <cstdlib>

namespace droute::analyze_fixture {

inline int noisy_value() {
  return std::rand();  // analyze: allow(determinism-wall-clock)  // expect: waiver-missing-reason
}

}  // namespace droute::analyze_fixture
