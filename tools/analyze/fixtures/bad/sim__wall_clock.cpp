// Fixture: ambient time/entropy inside a sim-deterministic subsystem.
// File name maps to src/sim/wall_clock.cpp under --fixture-mode, so the
// determinism rules treat it as simulator code.
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace droute::analyze_fixture {

double wall_clock_sample() {
  const auto t0 = std::chrono::steady_clock::now();  // expect: determinism-wall-clock
  (void)t0;
  return static_cast<double>(std::rand());  // expect: determinism-wall-clock
}

long seed_from_entropy() {
  return static_cast<long>(::time(nullptr));  // expect: determinism-wall-clock
}

}  // namespace droute::analyze_fixture
