// Fixture: a Task<T> data member outside src/sim. The stored task's
// pending resume lives in the simulator queue, so the owning type silently
// inherits the must-not-outlive-Simulator contract from DESIGN.md §10.
#include <utility>

#include "sim/task.h"

namespace droute::analyze_fixture {

struct SyncSession {
  explicit SyncSession(sim::Task<int> task) : inflight(std::move(task)) {}

  sim::Task<int> inflight;  // expect: coroutine-task-field
  sim::Task<bool>* watcher = nullptr;  // non-owning view: clean
};

}  // namespace droute::analyze_fixture
