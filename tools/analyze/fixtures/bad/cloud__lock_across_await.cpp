// Fixture: a mutex held across co_await. The frame parks with the lock
// held for unbounded simulated time; every other task sharing the mutex
// in the same event loop wedges. Scoping the guard in a block is clean.
#include <mutex>

#include "sim/simulator.h"
#include "sim/task.h"

namespace droute::analyze_fixture {

struct Cache {
  std::mutex mu;
  int hits = 0;
};

sim::Task<void> refresh_held(sim::Simulator& simulator, Cache& cache) {
  std::lock_guard<std::mutex> guard(cache.mu);
  ++cache.hits;
  auto wait = sim::delay(simulator, 0.5);
  co_await wait;  // expect: suspend-lock-across-await
  ++cache.hits;
}

sim::Task<void> refresh_scoped(sim::Simulator& simulator, Cache& cache) {
  {
    std::lock_guard<std::mutex> guard(cache.mu);
    ++cache.hits;
  }
  auto wait = sim::delay(simulator, 0.5);
  co_await wait;  // lock released before suspension: clean
}

}  // namespace droute::analyze_fixture
