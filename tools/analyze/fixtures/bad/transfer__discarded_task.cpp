// Fixture: calling a task coroutine as a bare statement drops the only
// handle while the body keeps running inside the simulator — nothing can
// join, cancel, or even observe it finish.
#include "sim/simulator.h"
#include "sim/task.h"

namespace droute::analyze_fixture {

sim::Task<void> heartbeat(sim::Simulator& simulator) {
  auto tick = sim::delay(simulator, 1.0);
  co_await tick;
}

void fire_and_forget(sim::Simulator& simulator) {
  heartbeat(simulator);  // expect: coroutine-discarded-task
  if (simulator.now() > 0.0) heartbeat(simulator);  // expect: coroutine-discarded-task
  auto held = heartbeat(simulator);  // bound handle: clean
  held.cancel();
}

}  // namespace droute::analyze_fixture
