// Fixture: outside the deterministic subsystems the unordered-iteration
// rule is sink-sensitive — only loops whose body feeds serialization,
// digests, metric export, or event scheduling are flagged.
#include <sstream>
#include <string>
#include <unordered_map>

namespace droute::analyze_fixture {

std::string export_cells(
    const std::unordered_map<std::string, double>& cells) {
  std::ostringstream out;
  for (const auto& [key, value] : cells) {  // expect: determinism-unordered-iter
    out << key << "," << value << "\n";
  }
  double total = 0.0;
  for (const auto& [key, value] : cells) {  // order-insensitive fold: clean
    (void)key;
    total += value;
  }
  out << total << "\n";
  return out.str();
}

}  // namespace droute::analyze_fixture
