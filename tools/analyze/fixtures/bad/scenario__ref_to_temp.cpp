// Fixture: a reference bound to a free-function temporary that stays live
// across co_await. Lifetime extension ties the temporary to the reference's
// scope, but a parked coroutine frame resumes in a different activation —
// copy into a value instead.
#include <string>

#include "sim/simulator.h"
#include "sim/task.h"

namespace droute::analyze_fixture {

inline std::string provider_label(int id) {
  return "provider-" + std::to_string(id);
}

sim::Task<void> announce(sim::Simulator& simulator, int id) {
  const std::string& label = provider_label(id);  // expect: suspend-ref-to-temporary
  auto wait = sim::delay(simulator, 1.0);
  co_await wait;
  (void)label;
}

sim::Task<void> announce_by_value(sim::Simulator& simulator, int id) {
  const std::string label = provider_label(id);  // value copy: clean
  auto wait = sim::delay(simulator, 1.0);
  co_await wait;
  (void)label;
}

}  // namespace droute::analyze_fixture
