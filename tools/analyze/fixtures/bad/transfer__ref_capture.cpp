// Fixture: coroutine lambdas borrowing their enclosing stack frame. The
// frame suspends past the scope that owns the captures, so `[&]` and
// `[this]` are flagged; value captures are stack-safe and stay clean.
#include "sim/task.h"

namespace droute::analyze_fixture {

struct Retrier {
  int budget = 3;

  void spawn_all() {
    auto by_ref = [&]() -> sim::Task<> {  // expect: coroutine-ref-capture
      ++budget;
      co_return;
    };
    auto by_this = [this]() -> sim::Task<> {  // expect: coroutine-ref-capture
      --budget;
      co_return;
    };
    const int snapshot = budget;
    auto by_value = [snapshot]() -> sim::Task<int> {  // value capture: clean
      co_return snapshot;
    };
    auto plain = [&] { return budget; };  // not a coroutine: clean
    (void)by_ref;
    (void)by_this;
    (void)by_value;
    (void)plain;
  }
};

}  // namespace droute::analyze_fixture
