// Fixture: hash-order iteration inside a sim-deterministic subsystem. In
// deterministic scope (src/net here) any range-for over an unordered
// container is flagged — the digest in the body just makes it vivid.
#include <cstdint>
#include <unordered_map>

namespace droute::analyze_fixture {

inline std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  return (hash ^ value) * 1099511628211ULL;
}

std::uint64_t digest_flows(const std::unordered_map<int, double>& rates) {
  std::uint64_t digest = 14695981039346656037ULL;
  for (const auto& [id, rate] : rates) {  // expect: determinism-unordered-iter
    (void)rate;
    digest = fnv1a(digest, static_cast<std::uint64_t>(id));
  }
  return digest;
}

}  // namespace droute::analyze_fixture
