// Fixture: awaiting a temporary. ReadyProbe deliberately has rvalue-safe
// (non-&-qualified) awaiter methods so the temporary form still compiles;
// the analyzer flags it anyway because only the documented factories in
// sim/task.h (delay, delay_until, cancellation_requested) are known safe —
// GCC PR 99576 miscompiles the frame slot for awaited temporaries.
#include <coroutine>

#include "sim/simulator.h"
#include "sim/task.h"

namespace droute::analyze_fixture {

struct ReadyProbe {
  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  int await_resume() const noexcept { return 1; }
};

inline ReadyProbe make_probe() { return {}; }

sim::Task<int> probe_twice(sim::Simulator& simulator) {
  int first = co_await make_probe();  // expect: coroutine-rvalue-await
  ReadyProbe probe;
  int second = co_await probe;  // lvalue: clean
  int slept = co_await sim::delay(simulator, 0.1) ? 1 : 0;  // documented rvalue-safe
  co_return first + second + slept;
}

}  // namespace droute::analyze_fixture
