// Fixture: ordered containers keyed by pointer iterate in allocator
// address order, which differs run to run — the one nondeterminism ASan
// tends to *hide* (its quarantine changes the addresses).
#include <map>
#include <set>

namespace droute::analyze_fixture {

struct Node {
  int id = 0;
};

struct Scheduler {
  std::map<Node*, double> deadline_by_node;  // expect: determinism-pointer-key
  std::set<const Node*> visited;             // expect: determinism-pointer-key
  std::map<int, Node*> node_by_id;           // pointer value, int key: clean
};

}  // namespace droute::analyze_fixture
