// Fixture: a violation waived with a stated reason. The rule stays quiet,
// the waiver is "used" (so not stale), and the reason survives into the
// JSON report for auditors.
#include "sim/simulator.h"
#include "sim/task.h"

namespace droute::analyze_fixture {

sim::Task<void> beacon(sim::Simulator& simulator) {
  auto wait = sim::delay(simulator, 5.0);
  co_await wait;
}

void detach_beacon(sim::Simulator& simulator) {
  beacon(simulator);  // analyze: allow(coroutine-discarded-task) — fixture models a daemon joined by Simulator teardown
}

}  // namespace droute::analyze_fixture
