// Fixture: unordered containers used for membership and lookup only. No
// iteration order ever escapes, so this is clean even inside a
// sim-deterministic subsystem (src/net under fixture mapping).
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace droute::analyze_fixture {

struct LinkTable {
  std::unordered_map<std::string, int> index_by_name;
  std::unordered_set<int> active;

  int lookup(const std::string& name) const {
    auto it = index_by_name.find(name);
    return it == index_by_name.end() ? -1 : it->second;
  }

  bool is_active(int id) const { return active.count(id) != 0; }
};

}  // namespace droute::analyze_fixture
