// Fixture: idiomatic task code that every rule must leave alone — bound
// handles, lvalue awaits (or the documented rvalue-safe factories), value
// captures, sim-time only.
#include "sim/simulator.h"
#include "sim/task.h"

namespace droute::analyze_fixture {

sim::Task<int> ping(sim::Simulator& simulator, int rounds) {
  int completed = 0;
  for (int i = 0; i < rounds; ++i) {
    const bool ran = co_await sim::delay(simulator, 0.25);
    if (!ran) co_return completed;  // cancelled mid-sleep
    ++completed;
  }
  co_return completed;
}

sim::Task<int> run_pair(sim::Simulator& simulator) {
  auto first = ping(simulator, 2);
  auto second = ping(simulator, 3);
  auto first_result = co_await first;
  auto second_result = co_await second;
  co_return first_result.value_or(0) + second_result.value_or(0);
}

}  // namespace droute::analyze_fixture
