"""libclang augmentation engine.

When clang.cindex + a libclang shared library are importable, each file is
additionally parsed as a real translation unit with the exact flags
recorded in the CMake-emitted compile_commands.json. The AST is used to
*augment* the token-level model with resolved types — the cases a purely
syntactic scan cannot see:

  * variables/fields whose canonical type is an unordered container but
    whose declared spelling is `auto` or an alias two headers away;
  * functions whose canonical result type is sim::Task<T> under any alias;
  * ordered containers pointer-keyed behind a typedef.

The control-flow facts (lambda captures, co_await sites, lock scopes) come
from the shared structural builder either way, so the fixture corpus in
tools/analyze/fixtures/ exercises both engines identically — CI runs the
selftest with --engine clang to keep this file honest.

Import failures are reported, not raised: run.py degrades to the syntax
engine with a warning locally, and CI passes --engine clang to make
libclang mandatory there.
"""

from __future__ import annotations

import json
import re
import shlex
from pathlib import Path

from model import FileModel

_AVAILABLE: bool | None = None
_IMPORT_ERROR = ""


def available() -> tuple[bool, str]:
    """(usable, why-not). Probes the import and a trivial parse once."""
    global _AVAILABLE, _IMPORT_ERROR
    if _AVAILABLE is not None:
        return _AVAILABLE, _IMPORT_ERROR
    try:
        import clang.cindex as cindex  # noqa: F401

        index = cindex.Index.create()
        del index
        _AVAILABLE = True
    except Exception as exc:  # ImportError or LibclangError
        _AVAILABLE = False
        _IMPORT_ERROR = f"{type(exc).__name__}: {exc}"
    return _AVAILABLE, _IMPORT_ERROR


def load_compile_commands(path: Path) -> dict[str, list[str]]:
    """Maps absolute source path -> sanitized compiler args."""
    try:
        entries = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}
    commands: dict[str, list[str]] = {}
    for entry in entries:
        file_path = str(Path(entry.get("directory", ".")) / entry["file"])
        file_path = str(Path(file_path).resolve())
        if "arguments" in entry:
            argv = list(entry["arguments"])
        else:
            argv = shlex.split(entry.get("command", ""))
        commands[file_path] = _sanitize_args(argv, entry.get("directory", "."))
    return commands


def _sanitize_args(argv: list[str], directory: str) -> list[str]:
    """Keeps -I/-D/-std/-f flags, drops compiler/input/output operands, and
    absolutizes relative include paths against the recorded directory."""
    out: list[str] = []
    skip_next = False
    for i, arg in enumerate(argv):
        if i == 0:  # the compiler itself
            continue
        if skip_next:
            skip_next = False
            continue
        if arg in ("-c", "-MD", "-MMD", "-pipe", "-g"):
            continue
        if arg in ("-o", "-MF", "-MT", "-MQ", "--driver-mode"):
            skip_next = True
            continue
        if arg.startswith(("-I", "-isystem", "-D", "-std=", "-f", "-W")):
            if arg in ("-I", "-isystem", "-D"):
                # separated form: keep flag and its operand
                out.append(arg)
                if i + 1 < len(argv):
                    out.append(_absolutize(argv[i + 1], directory))
                skip_next = True
                continue
            if arg.startswith("-I"):
                out.append("-I" + _absolutize(arg[2:], directory))
                continue
            out.append(arg)
            continue
        # everything else (positional inputs, warnings-as-errors, etc.)
    return out


def _absolutize(path_text: str, directory: str) -> str:
    p = Path(path_text)
    return str(p if p.is_absolute() else Path(directory) / p)


_UNORDERED_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\b")
_TASK_RESULT_RE = re.compile(r"\bTask<")
_PTR_KEY_RE = re.compile(
    r"\bstd::(?:map|set|multimap|multiset)<[^,<>]*\*\s*[,>]"
)


def augment_model(
    model: FileModel,
    args: list[str],
    extra_args: list[str],
) -> list[str]:
    """Parses model.path as a TU and folds resolved-type facts into the
    model. Returns human-readable parse warnings (never raises once
    available() said yes)."""
    import clang.cindex as cindex

    warnings: list[str] = []
    index = cindex.Index.create()
    try:
        tu = index.parse(str(model.path), args=args + extra_args)
    except cindex.TranslationUnitLoadError as exc:
        return [f"{model.rel}: libclang failed to parse: {exc}"]

    fatal = [
        d for d in tu.diagnostics
        if d.severity >= cindex.Diagnostic.Error
    ]
    for diag in fatal[:5]:
        warnings.append(f"{model.rel}: clang: {diag.spelling}")

    main_file = str(model.path)

    def walk(cursor) -> None:
        for child in cursor.get_children():
            loc = child.location
            if loc.file is None or str(loc.file) != main_file:
                # still recurse into same-file contexts only
                continue
            _classify(child)
            walk(child)

    def _classify(cursor) -> None:
        kind = cursor.kind
        try:
            if kind in (
                cindex.CursorKind.VAR_DECL,
                cindex.CursorKind.FIELD_DECL,
            ):
                canon = cursor.type.get_canonical().spelling
                if _UNORDERED_RE.search(canon):
                    model.unordered_vars.add(cursor.spelling)
                if _PTR_KEY_RE.search(canon):
                    from model import PointerKeyDecl

                    line = cursor.location.line
                    if not any(
                        d.line == line for d in model.pointer_key_decls
                    ):
                        model.pointer_key_decls.append(
                            PointerKeyDecl(line=line, type_text=canon[:80])
                        )
            elif kind in (
                cindex.CursorKind.FUNCTION_DECL,
                cindex.CursorKind.CXX_METHOD,
                cindex.CursorKind.FUNCTION_TEMPLATE,
            ):
                result = cursor.result_type.get_canonical().spelling
                if _TASK_RESULT_RE.search(result):
                    model.task_functions.add(cursor.spelling)
        except ValueError:
            # unknown cursor kind in this libclang build — skip, the
            # structural model already covers the file
            pass

    walk(tu.cursor)
    model.engine = "clang"
    return warnings
