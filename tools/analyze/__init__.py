"""droute-analyze: AST-level determinism & coroutine-lifetime analyzer.

Package layout:
    cpptokens.py     lossless-enough C++ lexer (comments/strings stripped,
                     line numbers kept)
    model.py         the per-file semantic model every rule consumes, plus
                     the token-level structural builder
    engine_clang.py  libclang (clang.cindex) augmentation: resolves real
                     types from compile_commands.json when available
    rules/           rule plugins (determinism, coroutine, suspension)
    run.py           CLI driver + JSON report
    selftest.py      fixture-corpus assertions (ctest: analyze.ast_rules)
"""
