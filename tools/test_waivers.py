#!/usr/bin/env python3
"""Unit tests for tools/waivers.py — the inline-waiver machinery shared by
lint.py and tools/analyze/run.py. The contract under test:

  * both marker grammars parse (lint's bare reason, analyze's dashed one),
  * a waiver suppresses exactly its (line, rule) pair,
  * a waiver nothing fired on is reported stale — the rot-detection that
    keeps markers from accumulating,
  * a reason-less waiver is surfaced by missing_reason(),
  * the two tools' markers never bleed into each other's sets.

Registered in ctest as `analyze.waivers`.
"""

from __future__ import annotations

import sys
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from waivers import WaiverSet


SOURCE = """\
int* p = new int(7);  // lint: allow(raw-new) private ctor, owned by unique_ptr
auto t = now();  // analyze: allow(determinism-wall-clock) — replay harness stamps real time
spawn();  // analyze: allow(coroutine-discarded-task)
clean_line();
// analyze: allow(determinism-pointer-key) — excused a map that was deleted
""".splitlines()


class ParseTest(unittest.TestCase):
    def test_tools_are_separated(self):
        lint = WaiverSet.parse(SOURCE, "lint")
        analyze = WaiverSet.parse(SOURCE, "analyze")
        self.assertEqual([w.rule for w in lint.all()], ["raw-new"])
        self.assertEqual(
            [w.rule for w in analyze.all()],
            [
                "determinism-wall-clock",
                "coroutine-discarded-task",
                "determinism-pointer-key",
            ],
        )

    def test_reason_with_and_without_dash(self):
        lint = WaiverSet.parse(SOURCE, "lint")
        analyze = WaiverSet.parse(SOURCE, "analyze")
        # lint's historical grammar: reason follows the paren with no dash.
        self.assertEqual(
            lint.get(1, "raw-new").reason,
            "private ctor, owned by unique_ptr",
        )
        # analyze's grammar: em-dash introducer is stripped.
        self.assertEqual(
            analyze.get(2, "determinism-wall-clock").reason,
            "replay harness stamps real time",
        )

    def test_reason_stops_before_trailing_comment(self):
        ws = WaiverSet.parse(
            ["x();  // analyze: allow(some-rule) — real reason  // expect: some-rule"],
            "analyze",
        )
        self.assertEqual(ws.get(1, "some-rule").reason, "real reason")

    def test_trailing_comment_alone_is_not_a_reason(self):
        ws = WaiverSet.parse(
            ["x();  // analyze: allow(some-rule)  // expect: some-rule"],
            "analyze",
        )
        self.assertEqual(ws.get(1, "some-rule").reason, "")


class SuppressionTest(unittest.TestCase):
    def test_allows_exact_line_and_rule_only(self):
        ws = WaiverSet.parse(SOURCE, "analyze")
        self.assertTrue(ws.allows(2, "determinism-wall-clock"))
        self.assertFalse(ws.allows(2, "coroutine-discarded-task"))
        self.assertFalse(ws.allows(3, "determinism-wall-clock"))

    def test_stale_waiver_is_reported_as_error(self):
        ws = WaiverSet.parse(SOURCE, "analyze")
        # The checker fires on lines 2 and 3 but nothing ever fires on the
        # pointer-key waiver at line 5 — that marker rotted.
        ws.allows(2, "determinism-wall-clock")
        ws.allows(3, "coroutine-discarded-task")
        stale = ws.stale()
        self.assertEqual(
            [(w.line_no, w.rule) for w in stale],
            [(5, "determinism-pointer-key")],
        )

    def test_all_stale_when_nothing_fires(self):
        ws = WaiverSet.parse(SOURCE, "analyze")
        self.assertEqual(len(ws.stale()), 3)


class MissingReasonTest(unittest.TestCase):
    def test_missing_reason_surfaced(self):
        ws = WaiverSet.parse(SOURCE, "analyze")
        self.assertEqual(
            [(w.line_no, w.rule) for w in ws.missing_reason()],
            [(3, "coroutine-discarded-task")],
        )


if __name__ == "__main__":
    unittest.main(verbosity=2)
