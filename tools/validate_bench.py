#!/usr/bin/env python3
"""Validates a droute-bench-v1 JSON report produced by droute::bench.

Schema (emitted by bench/harness.cpp, consumed by the nightly CI bench job):

  * top level: object with schema == "droute-bench-v1", a string `binary`,
    a boolean `quick`, and a non-empty `cases` list;
  * every case: string `name` (unique within the file) and non-empty string
    `unit`; integer `warmup` >= 0 and `repeats` >= 1; `samples_ms` a list of
    exactly `repeats` non-negative finite numbers;
  * summary stats `median_ms` / `p95_ms` / `mean_ms` / `min_ms` / `max_ms`
    finite, with min <= median <= p95 <= max and all of them inside the
    sample range;
  * `events` >= 0 and `events_per_sec` >= 0 (0 when events is 0);
  * `extras` an object mapping string keys to finite numbers.

Usage: tools/validate_bench.py [--against BASELINE.json] <BENCH_*.json>...
Exits non-zero iff any report is invalid; prints a summary line per file.

With --against, every report is additionally diffed case-by-case against
the committed baseline (bench/baselines/): a case regresses when its
median exceeds the baseline median by more than the regression budget —
15 %, widened to the baseline's own relative sample spread when that is
larger, so a case whose baseline run was noisy does not gate on noise.
A case present in the baseline but missing from the new report is an
error (a silently dropped benchmark is how coverage rots); a new case
absent from the baseline is reported informationally.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

SCHEMA = "droute-bench-v1"
STAT_KEYS = ("median_ms", "p95_ms", "mean_ms", "min_ms", "max_ms")

# A median may drift this much above baseline before the diff fails, unless
# the baseline's own samples spread wider (then the spread is the budget).
REGRESSION_BUDGET = 0.15


def finite_number(value: object) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def validate_case(case: object, where: str, errors: list[str]) -> str | None:
    """Appends errors for one case entry; returns its name when present."""
    if not isinstance(case, dict):
        errors.append(f"{where}: case must be an object")
        return None
    name = case.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}: missing case name")
        name = None
    else:
        where = f"{where} ({name})"
    unit = case.get("unit")
    if not isinstance(unit, str) or not unit:
        errors.append(f"{where}: unit must be a non-empty string")

    warmup = case.get("warmup")
    repeats = case.get("repeats")
    if not isinstance(warmup, int) or isinstance(warmup, bool) or warmup < 0:
        errors.append(f"{where}: warmup must be an integer >= 0")
    if not isinstance(repeats, int) or isinstance(repeats, bool) or repeats < 1:
        errors.append(f"{where}: repeats must be an integer >= 1")
        repeats = None

    samples = case.get("samples_ms")
    if not isinstance(samples, list) or not all(
        finite_number(s) and s >= 0 for s in samples
    ):
        errors.append(f"{where}: samples_ms must list non-negative numbers")
        samples = None
    elif repeats is not None and len(samples) != repeats:
        errors.append(
            f"{where}: {len(samples)} sample(s) but repeats={repeats}"
        )

    stats = {}
    for key in STAT_KEYS:
        value = case.get(key)
        if not finite_number(value):
            errors.append(f"{where}: {key} must be a finite number")
        else:
            stats[key] = value
    if len(stats) == len(STAT_KEYS):
        ordered = (
            stats["min_ms"] <= stats["median_ms"] <= stats["p95_ms"]
            <= stats["max_ms"]
        )
        if not ordered:
            errors.append(f"{where}: min <= median <= p95 <= max violated")
        if samples:
            if stats["min_ms"] != min(samples) or stats["max_ms"] != max(samples):
                errors.append(f"{where}: min/max do not match samples_ms")

    events = case.get("events")
    rate = case.get("events_per_sec")
    if not finite_number(events) or events < 0:
        errors.append(f"{where}: events must be a number >= 0")
    if not finite_number(rate) or rate < 0:
        errors.append(f"{where}: events_per_sec must be a number >= 0")
    elif finite_number(events) and events == 0 and rate != 0:
        errors.append(f"{where}: events_per_sec nonzero with events == 0")

    extras = case.get("extras")
    if not isinstance(extras, dict) or not all(
        isinstance(k, str) and finite_number(v) for k, v in extras.items()
    ):
        errors.append(f"{where}: extras must map strings to finite numbers")
    return name


def validate(path: Path) -> list[str]:
    errors: list[str] = []
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot parse {path}: {exc}"]

    if not isinstance(document, dict):
        return ["top level must be a JSON object"]
    if document.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {document.get('schema')!r}")
    if not isinstance(document.get("binary"), str):
        errors.append("binary must be a string")
    if not isinstance(document.get("quick"), bool):
        errors.append("quick must be a boolean")

    cases = document.get("cases")
    if not isinstance(cases, list) or not cases:
        errors.append("cases must be a non-empty list")
        return errors

    seen: set[str] = set()
    for index, case in enumerate(cases):
        name = validate_case(case, f"cases[{index}]", errors)
        if name is not None:
            if name in seen:
                errors.append(f"cases[{index}]: duplicate case name {name!r}")
            seen.add(name)

    if not errors:
        print(f"{path}: OK — {len(cases)} case(s)")
    return errors


def _cases_by_name(path: Path) -> dict[str, dict] | None:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    cases = document.get("cases") if isinstance(document, dict) else None
    if not isinstance(cases, list):
        return None
    return {
        c["name"]: c
        for c in cases
        if isinstance(c, dict) and isinstance(c.get("name"), str)
    }


def diff_against(baseline_path: Path, report_path: Path) -> list[str]:
    """Compares report medians to the committed baseline, case by case."""
    errors: list[str] = []
    baseline = _cases_by_name(baseline_path)
    report = _cases_by_name(report_path)
    if baseline is None:
        return [f"cannot read baseline {baseline_path}"]
    if report is None:
        return [f"cannot read report {report_path}"]

    for name in sorted(baseline):
        base = baseline[name]
        new = report.get(name)
        if new is None:
            errors.append(
                f"case {name!r} is in the baseline but missing from the new "
                "report — a dropped benchmark must be removed from the "
                "baseline explicitly"
            )
            continue
        base_median = base.get("median_ms")
        new_median = new.get("median_ms")
        if not finite_number(base_median) or not finite_number(new_median):
            errors.append(f"case {name!r}: median_ms missing or non-finite")
            continue
        if base_median <= 0:
            print(f"  {name}: baseline median is 0 ms — skipped")
            continue
        regression = (new_median - base_median) / base_median
        # The baseline run's own relative spread is its noise band; a case
        # that jittered 40% when the baseline was recorded cannot be gated
        # at 15%.
        spread = 0.0
        if finite_number(base.get("min_ms")) and finite_number(base.get("max_ms")):
            spread = (base["max_ms"] - base["min_ms"]) / base_median
        budget = max(REGRESSION_BUDGET, spread)
        verdict = "OK"
        if regression > budget:
            verdict = "REGRESSED"
            errors.append(
                f"case {name!r}: median {new_median:.6g} ms is "
                f"{regression * 100:+.1f}% vs baseline {base_median:.6g} ms "
                f"(budget {budget * 100:.0f}%)"
            )
        print(
            f"  {name}: {base_median:.6g} -> {new_median:.6g} ms "
            f"({regression * 100:+.1f}%, budget {budget * 100:.0f}%) {verdict}"
        )
    for name in sorted(set(report) - set(baseline)):
        print(f"  {name}: new case, not in baseline (informational)")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Validate droute-bench-v1 reports"
    )
    parser.add_argument("reports", nargs="+", metavar="BENCH.json")
    parser.add_argument(
        "--against",
        metavar="BASELINE.json",
        default=None,
        help="also diff each report's medians against this baseline",
    )
    args = parser.parse_args()

    status = 0
    for arg in args.reports:
        errors = validate(Path(arg))
        if not errors and args.against:
            print(f"{arg}: diff against {args.against}")
            errors = diff_against(Path(args.against), Path(arg))
        for error in errors:
            print(f"validate_bench: {arg}: {error}", file=sys.stderr)
        if errors:
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
