# Empty dependencies file for droute_bench_common.
# This may be replaced when dependencies are built.
