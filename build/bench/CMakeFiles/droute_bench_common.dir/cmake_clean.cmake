file(REMOVE_RECURSE
  "../lib/libdroute_bench_common.a"
  "../lib/libdroute_bench_common.pdb"
  "CMakeFiles/droute_bench_common.dir/common.cpp.o"
  "CMakeFiles/droute_bench_common.dir/common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droute_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
