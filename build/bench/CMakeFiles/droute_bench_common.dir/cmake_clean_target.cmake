file(REMOVE_RECURSE
  "../lib/libdroute_bench_common.a"
)
