# Empty compiler generated dependencies file for bench_table3_purdue_gdrive.
# This may be replaced when dependencies are built.
