file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_download.dir/bench_ext_download.cpp.o"
  "CMakeFiles/bench_ext_download.dir/bench_ext_download.cpp.o.d"
  "bench_ext_download"
  "bench_ext_download.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
