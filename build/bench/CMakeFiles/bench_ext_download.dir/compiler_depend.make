# Empty compiler generated dependencies file for bench_ext_download.
# This may be replaced when dependencies are built.
