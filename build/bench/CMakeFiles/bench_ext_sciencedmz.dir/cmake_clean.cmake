file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sciencedmz.dir/bench_ext_sciencedmz.cpp.o"
  "CMakeFiles/bench_ext_sciencedmz.dir/bench_ext_sciencedmz.cpp.o.d"
  "bench_ext_sciencedmz"
  "bench_ext_sciencedmz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sciencedmz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
