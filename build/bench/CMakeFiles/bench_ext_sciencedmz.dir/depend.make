# Empty dependencies file for bench_ext_sciencedmz.
# This may be replaced when dependencies are built.
