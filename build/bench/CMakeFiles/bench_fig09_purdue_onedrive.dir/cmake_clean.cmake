file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_purdue_onedrive.dir/bench_fig09_purdue_onedrive.cpp.o"
  "CMakeFiles/bench_fig09_purdue_onedrive.dir/bench_fig09_purdue_onedrive.cpp.o.d"
  "bench_fig09_purdue_onedrive"
  "bench_fig09_purdue_onedrive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_purdue_onedrive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
