# Empty compiler generated dependencies file for bench_fig09_purdue_onedrive.
# This may be replaced when dependencies are built.
