file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_ubc_dropbox.dir/bench_fig04_ubc_dropbox.cpp.o"
  "CMakeFiles/bench_fig04_ubc_dropbox.dir/bench_fig04_ubc_dropbox.cpp.o.d"
  "bench_fig04_ubc_dropbox"
  "bench_fig04_ubc_dropbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_ubc_dropbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
