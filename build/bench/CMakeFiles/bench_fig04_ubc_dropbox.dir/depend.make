# Empty dependencies file for bench_fig04_ubc_dropbox.
# This may be replaced when dependencies are built.
