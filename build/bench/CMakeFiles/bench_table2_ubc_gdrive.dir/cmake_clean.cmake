file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ubc_gdrive.dir/bench_table2_ubc_gdrive.cpp.o"
  "CMakeFiles/bench_table2_ubc_gdrive.dir/bench_table2_ubc_gdrive.cpp.o.d"
  "bench_table2_ubc_gdrive"
  "bench_table2_ubc_gdrive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ubc_gdrive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
