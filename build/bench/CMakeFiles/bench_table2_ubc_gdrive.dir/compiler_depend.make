# Empty compiler generated dependencies file for bench_table2_ubc_gdrive.
# This may be replaced when dependencies are built.
