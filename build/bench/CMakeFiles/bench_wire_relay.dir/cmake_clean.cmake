file(REMOVE_RECURSE
  "CMakeFiles/bench_wire_relay.dir/bench_wire_relay.cpp.o"
  "CMakeFiles/bench_wire_relay.dir/bench_wire_relay.cpp.o.d"
  "bench_wire_relay"
  "bench_wire_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wire_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
