# Empty compiler generated dependencies file for bench_wire_relay.
# This may be replaced when dependencies are built.
