# Empty dependencies file for bench_abl_rsync_delta.
# This may be replaced when dependencies are built.
