# Empty compiler generated dependencies file for bench_fig11_ucla_dropbox.
# This may be replaced when dependencies are built.
