file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_ucla_dropbox.dir/bench_fig11_ucla_dropbox.cpp.o"
  "CMakeFiles/bench_fig11_ucla_dropbox.dir/bench_fig11_ucla_dropbox.cpp.o.d"
  "bench_fig11_ucla_dropbox"
  "bench_fig11_ucla_dropbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_ucla_dropbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
