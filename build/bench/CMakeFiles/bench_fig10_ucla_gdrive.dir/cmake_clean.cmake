file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ucla_gdrive.dir/bench_fig10_ucla_gdrive.cpp.o"
  "CMakeFiles/bench_fig10_ucla_gdrive.dir/bench_fig10_ucla_gdrive.cpp.o.d"
  "bench_fig10_ucla_gdrive"
  "bench_fig10_ucla_gdrive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ucla_gdrive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
