# Empty compiler generated dependencies file for bench_fig10_ucla_gdrive.
# This may be replaced when dependencies are built.
