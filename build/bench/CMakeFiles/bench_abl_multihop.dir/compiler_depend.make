# Empty compiler generated dependencies file for bench_abl_multihop.
# This may be replaced when dependencies are built.
