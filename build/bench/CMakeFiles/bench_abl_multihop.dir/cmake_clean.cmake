file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_multihop.dir/bench_abl_multihop.cpp.o"
  "CMakeFiles/bench_abl_multihop.dir/bench_abl_multihop.cpp.o.d"
  "bench_abl_multihop"
  "bench_abl_multihop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_multihop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
