file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_pipeline.dir/bench_abl_pipeline.cpp.o"
  "CMakeFiles/bench_abl_pipeline.dir/bench_abl_pipeline.cpp.o.d"
  "bench_abl_pipeline"
  "bench_abl_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
