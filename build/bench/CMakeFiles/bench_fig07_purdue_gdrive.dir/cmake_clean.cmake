file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_purdue_gdrive.dir/bench_fig07_purdue_gdrive.cpp.o"
  "CMakeFiles/bench_fig07_purdue_gdrive.dir/bench_fig07_purdue_gdrive.cpp.o.d"
  "bench_fig07_purdue_gdrive"
  "bench_fig07_purdue_gdrive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_purdue_gdrive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
