# Empty compiler generated dependencies file for bench_fig07_purdue_gdrive.
# This may be replaced when dependencies are built.
