# Empty compiler generated dependencies file for bench_table4_purdue_stddev.
# This may be replaced when dependencies are built.
