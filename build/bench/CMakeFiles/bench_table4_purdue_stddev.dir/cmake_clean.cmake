file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_purdue_stddev.dir/bench_table4_purdue_stddev.cpp.o"
  "CMakeFiles/bench_table4_purdue_stddev.dir/bench_table4_purdue_stddev.cpp.o.d"
  "bench_table4_purdue_stddev"
  "bench_table4_purdue_stddev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_purdue_stddev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
