file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_advisor.dir/bench_abl_advisor.cpp.o"
  "CMakeFiles/bench_abl_advisor.dir/bench_abl_advisor.cpp.o.d"
  "bench_abl_advisor"
  "bench_abl_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
