# Empty compiler generated dependencies file for bench_abl_advisor.
# This may be replaced when dependencies are built.
