file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_georoutes.dir/bench_table5_georoutes.cpp.o"
  "CMakeFiles/bench_table5_georoutes.dir/bench_table5_georoutes.cpp.o.d"
  "bench_table5_georoutes"
  "bench_table5_georoutes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_georoutes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
