# Empty compiler generated dependencies file for bench_fig08_purdue_dropbox.
# This may be replaced when dependencies are built.
