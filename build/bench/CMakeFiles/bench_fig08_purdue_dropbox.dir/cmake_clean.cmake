file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_purdue_dropbox.dir/bench_fig08_purdue_dropbox.cpp.o"
  "CMakeFiles/bench_fig08_purdue_dropbox.dir/bench_fig08_purdue_dropbox.cpp.o.d"
  "bench_fig08_purdue_dropbox"
  "bench_fig08_purdue_dropbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_purdue_dropbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
