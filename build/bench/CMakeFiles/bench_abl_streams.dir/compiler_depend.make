# Empty compiler generated dependencies file for bench_abl_streams.
# This may be replaced when dependencies are built.
