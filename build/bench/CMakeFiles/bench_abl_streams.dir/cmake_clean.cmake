file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_streams.dir/bench_abl_streams.cpp.o"
  "CMakeFiles/bench_abl_streams.dir/bench_abl_streams.cpp.o.d"
  "bench_abl_streams"
  "bench_abl_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
