# Empty dependencies file for bench_fig03_locations.
# This may be replaced when dependencies are built.
