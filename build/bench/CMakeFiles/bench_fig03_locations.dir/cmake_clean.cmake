file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_locations.dir/bench_fig03_locations.cpp.o"
  "CMakeFiles/bench_fig03_locations.dir/bench_fig03_locations.cpp.o.d"
  "bench_fig03_locations"
  "bench_fig03_locations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_locations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
