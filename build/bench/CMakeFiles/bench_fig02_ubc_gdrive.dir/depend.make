# Empty dependencies file for bench_fig02_ubc_gdrive.
# This may be replaced when dependencies are built.
