# Empty dependencies file for bench_fig06_traceroute_ualberta.
# This may be replaced when dependencies are built.
