file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_traceroute_ualberta.dir/bench_fig06_traceroute_ualberta.cpp.o"
  "CMakeFiles/bench_fig06_traceroute_ualberta.dir/bench_fig06_traceroute_ualberta.cpp.o.d"
  "bench_fig06_traceroute_ualberta"
  "bench_fig06_traceroute_ualberta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_traceroute_ualberta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
