file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_traceroute_ubc.dir/bench_fig05_traceroute_ubc.cpp.o"
  "CMakeFiles/bench_fig05_traceroute_ubc.dir/bench_fig05_traceroute_ubc.cpp.o.d"
  "bench_fig05_traceroute_ubc"
  "bench_fig05_traceroute_ubc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_traceroute_ubc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
