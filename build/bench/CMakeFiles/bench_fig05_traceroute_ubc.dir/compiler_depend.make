# Empty compiler generated dependencies file for bench_fig05_traceroute_ubc.
# This may be replaced when dependencies are built.
