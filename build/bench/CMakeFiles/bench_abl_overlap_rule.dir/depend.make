# Empty dependencies file for bench_abl_overlap_rule.
# This may be replaced when dependencies are built.
