file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_overlap_rule.dir/bench_abl_overlap_rule.cpp.o"
  "CMakeFiles/bench_abl_overlap_rule.dir/bench_abl_overlap_rule.cpp.o.d"
  "bench_abl_overlap_rule"
  "bench_abl_overlap_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_overlap_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
