
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wire/client.cpp" "src/wire/CMakeFiles/droute_wire.dir/client.cpp.o" "gcc" "src/wire/CMakeFiles/droute_wire.dir/client.cpp.o.d"
  "/root/repo/src/wire/rate_limiter.cpp" "src/wire/CMakeFiles/droute_wire.dir/rate_limiter.cpp.o" "gcc" "src/wire/CMakeFiles/droute_wire.dir/rate_limiter.cpp.o.d"
  "/root/repo/src/wire/relay.cpp" "src/wire/CMakeFiles/droute_wire.dir/relay.cpp.o" "gcc" "src/wire/CMakeFiles/droute_wire.dir/relay.cpp.o.d"
  "/root/repo/src/wire/rsync_pipe.cpp" "src/wire/CMakeFiles/droute_wire.dir/rsync_pipe.cpp.o" "gcc" "src/wire/CMakeFiles/droute_wire.dir/rsync_pipe.cpp.o.d"
  "/root/repo/src/wire/sink.cpp" "src/wire/CMakeFiles/droute_wire.dir/sink.cpp.o" "gcc" "src/wire/CMakeFiles/droute_wire.dir/sink.cpp.o.d"
  "/root/repo/src/wire/socket.cpp" "src/wire/CMakeFiles/droute_wire.dir/socket.cpp.o" "gcc" "src/wire/CMakeFiles/droute_wire.dir/socket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rsyncx/CMakeFiles/droute_rsyncx.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
