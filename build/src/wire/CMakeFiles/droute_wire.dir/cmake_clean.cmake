file(REMOVE_RECURSE
  "CMakeFiles/droute_wire.dir/client.cpp.o"
  "CMakeFiles/droute_wire.dir/client.cpp.o.d"
  "CMakeFiles/droute_wire.dir/rate_limiter.cpp.o"
  "CMakeFiles/droute_wire.dir/rate_limiter.cpp.o.d"
  "CMakeFiles/droute_wire.dir/relay.cpp.o"
  "CMakeFiles/droute_wire.dir/relay.cpp.o.d"
  "CMakeFiles/droute_wire.dir/rsync_pipe.cpp.o"
  "CMakeFiles/droute_wire.dir/rsync_pipe.cpp.o.d"
  "CMakeFiles/droute_wire.dir/sink.cpp.o"
  "CMakeFiles/droute_wire.dir/sink.cpp.o.d"
  "CMakeFiles/droute_wire.dir/socket.cpp.o"
  "CMakeFiles/droute_wire.dir/socket.cpp.o.d"
  "libdroute_wire.a"
  "libdroute_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droute_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
