file(REMOVE_RECURSE
  "libdroute_wire.a"
)
