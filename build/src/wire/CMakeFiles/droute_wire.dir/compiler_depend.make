# Empty compiler generated dependencies file for droute_wire.
# This may be replaced when dependencies are built.
