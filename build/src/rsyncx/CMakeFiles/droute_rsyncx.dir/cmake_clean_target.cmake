file(REMOVE_RECURSE
  "libdroute_rsyncx.a"
)
