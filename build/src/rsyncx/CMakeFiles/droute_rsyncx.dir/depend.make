# Empty dependencies file for droute_rsyncx.
# This may be replaced when dependencies are built.
