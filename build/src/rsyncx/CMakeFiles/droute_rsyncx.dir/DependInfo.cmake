
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rsyncx/checksum.cpp" "src/rsyncx/CMakeFiles/droute_rsyncx.dir/checksum.cpp.o" "gcc" "src/rsyncx/CMakeFiles/droute_rsyncx.dir/checksum.cpp.o.d"
  "/root/repo/src/rsyncx/delta.cpp" "src/rsyncx/CMakeFiles/droute_rsyncx.dir/delta.cpp.o" "gcc" "src/rsyncx/CMakeFiles/droute_rsyncx.dir/delta.cpp.o.d"
  "/root/repo/src/rsyncx/md5.cpp" "src/rsyncx/CMakeFiles/droute_rsyncx.dir/md5.cpp.o" "gcc" "src/rsyncx/CMakeFiles/droute_rsyncx.dir/md5.cpp.o.d"
  "/root/repo/src/rsyncx/patch.cpp" "src/rsyncx/CMakeFiles/droute_rsyncx.dir/patch.cpp.o" "gcc" "src/rsyncx/CMakeFiles/droute_rsyncx.dir/patch.cpp.o.d"
  "/root/repo/src/rsyncx/session.cpp" "src/rsyncx/CMakeFiles/droute_rsyncx.dir/session.cpp.o" "gcc" "src/rsyncx/CMakeFiles/droute_rsyncx.dir/session.cpp.o.d"
  "/root/repo/src/rsyncx/signature.cpp" "src/rsyncx/CMakeFiles/droute_rsyncx.dir/signature.cpp.o" "gcc" "src/rsyncx/CMakeFiles/droute_rsyncx.dir/signature.cpp.o.d"
  "/root/repo/src/rsyncx/wire_format.cpp" "src/rsyncx/CMakeFiles/droute_rsyncx.dir/wire_format.cpp.o" "gcc" "src/rsyncx/CMakeFiles/droute_rsyncx.dir/wire_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/droute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
