file(REMOVE_RECURSE
  "CMakeFiles/droute_rsyncx.dir/checksum.cpp.o"
  "CMakeFiles/droute_rsyncx.dir/checksum.cpp.o.d"
  "CMakeFiles/droute_rsyncx.dir/delta.cpp.o"
  "CMakeFiles/droute_rsyncx.dir/delta.cpp.o.d"
  "CMakeFiles/droute_rsyncx.dir/md5.cpp.o"
  "CMakeFiles/droute_rsyncx.dir/md5.cpp.o.d"
  "CMakeFiles/droute_rsyncx.dir/patch.cpp.o"
  "CMakeFiles/droute_rsyncx.dir/patch.cpp.o.d"
  "CMakeFiles/droute_rsyncx.dir/session.cpp.o"
  "CMakeFiles/droute_rsyncx.dir/session.cpp.o.d"
  "CMakeFiles/droute_rsyncx.dir/signature.cpp.o"
  "CMakeFiles/droute_rsyncx.dir/signature.cpp.o.d"
  "CMakeFiles/droute_rsyncx.dir/wire_format.cpp.o"
  "CMakeFiles/droute_rsyncx.dir/wire_format.cpp.o.d"
  "libdroute_rsyncx.a"
  "libdroute_rsyncx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droute_rsyncx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
