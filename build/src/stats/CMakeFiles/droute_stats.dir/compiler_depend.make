# Empty compiler generated dependencies file for droute_stats.
# This may be replaced when dependencies are built.
