file(REMOVE_RECURSE
  "libdroute_stats.a"
)
