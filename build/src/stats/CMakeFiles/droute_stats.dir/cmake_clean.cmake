file(REMOVE_RECURSE
  "CMakeFiles/droute_stats.dir/descriptive.cpp.o"
  "CMakeFiles/droute_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/droute_stats.dir/histogram.cpp.o"
  "CMakeFiles/droute_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/droute_stats.dir/overlap.cpp.o"
  "CMakeFiles/droute_stats.dir/overlap.cpp.o.d"
  "CMakeFiles/droute_stats.dir/regression.cpp.o"
  "CMakeFiles/droute_stats.dir/regression.cpp.o.d"
  "libdroute_stats.a"
  "libdroute_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droute_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
