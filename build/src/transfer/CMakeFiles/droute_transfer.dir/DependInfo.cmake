
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transfer/api_download.cpp" "src/transfer/CMakeFiles/droute_transfer.dir/api_download.cpp.o" "gcc" "src/transfer/CMakeFiles/droute_transfer.dir/api_download.cpp.o.d"
  "/root/repo/src/transfer/api_upload.cpp" "src/transfer/CMakeFiles/droute_transfer.dir/api_upload.cpp.o" "gcc" "src/transfer/CMakeFiles/droute_transfer.dir/api_upload.cpp.o.d"
  "/root/repo/src/transfer/detour.cpp" "src/transfer/CMakeFiles/droute_transfer.dir/detour.cpp.o" "gcc" "src/transfer/CMakeFiles/droute_transfer.dir/detour.cpp.o.d"
  "/root/repo/src/transfer/detour_download.cpp" "src/transfer/CMakeFiles/droute_transfer.dir/detour_download.cpp.o" "gcc" "src/transfer/CMakeFiles/droute_transfer.dir/detour_download.cpp.o.d"
  "/root/repo/src/transfer/file_spec.cpp" "src/transfer/CMakeFiles/droute_transfer.dir/file_spec.cpp.o" "gcc" "src/transfer/CMakeFiles/droute_transfer.dir/file_spec.cpp.o.d"
  "/root/repo/src/transfer/parallel.cpp" "src/transfer/CMakeFiles/droute_transfer.dir/parallel.cpp.o" "gcc" "src/transfer/CMakeFiles/droute_transfer.dir/parallel.cpp.o.d"
  "/root/repo/src/transfer/rsync_engine.cpp" "src/transfer/CMakeFiles/droute_transfer.dir/rsync_engine.cpp.o" "gcc" "src/transfer/CMakeFiles/droute_transfer.dir/rsync_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/droute_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/droute_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/rsyncx/CMakeFiles/droute_rsyncx.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/droute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/droute_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
