file(REMOVE_RECURSE
  "CMakeFiles/droute_transfer.dir/api_download.cpp.o"
  "CMakeFiles/droute_transfer.dir/api_download.cpp.o.d"
  "CMakeFiles/droute_transfer.dir/api_upload.cpp.o"
  "CMakeFiles/droute_transfer.dir/api_upload.cpp.o.d"
  "CMakeFiles/droute_transfer.dir/detour.cpp.o"
  "CMakeFiles/droute_transfer.dir/detour.cpp.o.d"
  "CMakeFiles/droute_transfer.dir/detour_download.cpp.o"
  "CMakeFiles/droute_transfer.dir/detour_download.cpp.o.d"
  "CMakeFiles/droute_transfer.dir/file_spec.cpp.o"
  "CMakeFiles/droute_transfer.dir/file_spec.cpp.o.d"
  "CMakeFiles/droute_transfer.dir/parallel.cpp.o"
  "CMakeFiles/droute_transfer.dir/parallel.cpp.o.d"
  "CMakeFiles/droute_transfer.dir/rsync_engine.cpp.o"
  "CMakeFiles/droute_transfer.dir/rsync_engine.cpp.o.d"
  "libdroute_transfer.a"
  "libdroute_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droute_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
