file(REMOVE_RECURSE
  "libdroute_transfer.a"
)
