# Empty compiler generated dependencies file for droute_transfer.
# This may be replaced when dependencies are built.
