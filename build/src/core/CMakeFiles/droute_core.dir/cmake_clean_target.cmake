file(REMOVE_RECURSE
  "libdroute_core.a"
)
