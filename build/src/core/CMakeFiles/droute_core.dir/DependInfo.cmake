
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cpp" "src/core/CMakeFiles/droute_core.dir/advisor.cpp.o" "gcc" "src/core/CMakeFiles/droute_core.dir/advisor.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/droute_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/droute_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/multihop.cpp" "src/core/CMakeFiles/droute_core.dir/multihop.cpp.o" "gcc" "src/core/CMakeFiles/droute_core.dir/multihop.cpp.o.d"
  "/root/repo/src/core/overlay.cpp" "src/core/CMakeFiles/droute_core.dir/overlay.cpp.o" "gcc" "src/core/CMakeFiles/droute_core.dir/overlay.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/droute_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/droute_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/droute_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/droute_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/tiv.cpp" "src/core/CMakeFiles/droute_core.dir/tiv.cpp.o" "gcc" "src/core/CMakeFiles/droute_core.dir/tiv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/measure/CMakeFiles/droute_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/droute_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
