file(REMOVE_RECURSE
  "CMakeFiles/droute_core.dir/advisor.cpp.o"
  "CMakeFiles/droute_core.dir/advisor.cpp.o.d"
  "CMakeFiles/droute_core.dir/monitor.cpp.o"
  "CMakeFiles/droute_core.dir/monitor.cpp.o.d"
  "CMakeFiles/droute_core.dir/multihop.cpp.o"
  "CMakeFiles/droute_core.dir/multihop.cpp.o.d"
  "CMakeFiles/droute_core.dir/overlay.cpp.o"
  "CMakeFiles/droute_core.dir/overlay.cpp.o.d"
  "CMakeFiles/droute_core.dir/planner.cpp.o"
  "CMakeFiles/droute_core.dir/planner.cpp.o.d"
  "CMakeFiles/droute_core.dir/scheduler.cpp.o"
  "CMakeFiles/droute_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/droute_core.dir/tiv.cpp.o"
  "CMakeFiles/droute_core.dir/tiv.cpp.o.d"
  "libdroute_core.a"
  "libdroute_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droute_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
