# Empty compiler generated dependencies file for droute_core.
# This may be replaced when dependencies are built.
