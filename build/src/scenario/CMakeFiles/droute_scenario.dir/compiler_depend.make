# Empty compiler generated dependencies file for droute_scenario.
# This may be replaced when dependencies are built.
