file(REMOVE_RECURSE
  "CMakeFiles/droute_scenario.dir/north_america.cpp.o"
  "CMakeFiles/droute_scenario.dir/north_america.cpp.o.d"
  "CMakeFiles/droute_scenario.dir/science_dmz.cpp.o"
  "CMakeFiles/droute_scenario.dir/science_dmz.cpp.o.d"
  "libdroute_scenario.a"
  "libdroute_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droute_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
