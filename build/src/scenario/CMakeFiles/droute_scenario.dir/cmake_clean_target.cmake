file(REMOVE_RECURSE
  "libdroute_scenario.a"
)
