file(REMOVE_RECURSE
  "libdroute_sim.a"
)
