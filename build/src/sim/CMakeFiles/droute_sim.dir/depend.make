# Empty dependencies file for droute_sim.
# This may be replaced when dependencies are built.
