file(REMOVE_RECURSE
  "CMakeFiles/droute_sim.dir/simulator.cpp.o"
  "CMakeFiles/droute_sim.dir/simulator.cpp.o.d"
  "libdroute_sim.a"
  "libdroute_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droute_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
