file(REMOVE_RECURSE
  "CMakeFiles/droute_measure.dir/campaign.cpp.o"
  "CMakeFiles/droute_measure.dir/campaign.cpp.o.d"
  "CMakeFiles/droute_measure.dir/workload.cpp.o"
  "CMakeFiles/droute_measure.dir/workload.cpp.o.d"
  "libdroute_measure.a"
  "libdroute_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droute_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
