# Empty compiler generated dependencies file for droute_measure.
# This may be replaced when dependencies are built.
