file(REMOVE_RECURSE
  "libdroute_measure.a"
)
