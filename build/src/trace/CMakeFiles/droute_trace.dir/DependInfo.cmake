
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/route_monitor.cpp" "src/trace/CMakeFiles/droute_trace.dir/route_monitor.cpp.o" "gcc" "src/trace/CMakeFiles/droute_trace.dir/route_monitor.cpp.o.d"
  "/root/repo/src/trace/traceroute.cpp" "src/trace/CMakeFiles/droute_trace.dir/traceroute.cpp.o" "gcc" "src/trace/CMakeFiles/droute_trace.dir/traceroute.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/droute_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/droute_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/droute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
