file(REMOVE_RECURSE
  "CMakeFiles/droute_trace.dir/route_monitor.cpp.o"
  "CMakeFiles/droute_trace.dir/route_monitor.cpp.o.d"
  "CMakeFiles/droute_trace.dir/traceroute.cpp.o"
  "CMakeFiles/droute_trace.dir/traceroute.cpp.o.d"
  "libdroute_trace.a"
  "libdroute_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droute_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
