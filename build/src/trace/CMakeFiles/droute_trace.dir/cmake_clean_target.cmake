file(REMOVE_RECURSE
  "libdroute_trace.a"
)
