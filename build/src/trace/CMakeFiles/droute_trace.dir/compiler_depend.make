# Empty compiler generated dependencies file for droute_trace.
# This may be replaced when dependencies are built.
