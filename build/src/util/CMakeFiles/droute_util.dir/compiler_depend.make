# Empty compiler generated dependencies file for droute_util.
# This may be replaced when dependencies are built.
