file(REMOVE_RECURSE
  "CMakeFiles/droute_util.dir/logging.cpp.o"
  "CMakeFiles/droute_util.dir/logging.cpp.o.d"
  "CMakeFiles/droute_util.dir/rng.cpp.o"
  "CMakeFiles/droute_util.dir/rng.cpp.o.d"
  "CMakeFiles/droute_util.dir/table.cpp.o"
  "CMakeFiles/droute_util.dir/table.cpp.o.d"
  "CMakeFiles/droute_util.dir/thread_pool.cpp.o"
  "CMakeFiles/droute_util.dir/thread_pool.cpp.o.d"
  "libdroute_util.a"
  "libdroute_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droute_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
