file(REMOVE_RECURSE
  "libdroute_util.a"
)
