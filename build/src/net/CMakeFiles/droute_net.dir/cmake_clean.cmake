file(REMOVE_RECURSE
  "CMakeFiles/droute_net.dir/cross_traffic.cpp.o"
  "CMakeFiles/droute_net.dir/cross_traffic.cpp.o.d"
  "CMakeFiles/droute_net.dir/fabric.cpp.o"
  "CMakeFiles/droute_net.dir/fabric.cpp.o.d"
  "CMakeFiles/droute_net.dir/routing.cpp.o"
  "CMakeFiles/droute_net.dir/routing.cpp.o.d"
  "CMakeFiles/droute_net.dir/tcp_model.cpp.o"
  "CMakeFiles/droute_net.dir/tcp_model.cpp.o.d"
  "CMakeFiles/droute_net.dir/topology.cpp.o"
  "CMakeFiles/droute_net.dir/topology.cpp.o.d"
  "CMakeFiles/droute_net.dir/topology_io.cpp.o"
  "CMakeFiles/droute_net.dir/topology_io.cpp.o.d"
  "libdroute_net.a"
  "libdroute_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droute_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
