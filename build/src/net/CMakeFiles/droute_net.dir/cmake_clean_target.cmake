file(REMOVE_RECURSE
  "libdroute_net.a"
)
