
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cross_traffic.cpp" "src/net/CMakeFiles/droute_net.dir/cross_traffic.cpp.o" "gcc" "src/net/CMakeFiles/droute_net.dir/cross_traffic.cpp.o.d"
  "/root/repo/src/net/fabric.cpp" "src/net/CMakeFiles/droute_net.dir/fabric.cpp.o" "gcc" "src/net/CMakeFiles/droute_net.dir/fabric.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/net/CMakeFiles/droute_net.dir/routing.cpp.o" "gcc" "src/net/CMakeFiles/droute_net.dir/routing.cpp.o.d"
  "/root/repo/src/net/tcp_model.cpp" "src/net/CMakeFiles/droute_net.dir/tcp_model.cpp.o" "gcc" "src/net/CMakeFiles/droute_net.dir/tcp_model.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/droute_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/droute_net.dir/topology.cpp.o.d"
  "/root/repo/src/net/topology_io.cpp" "src/net/CMakeFiles/droute_net.dir/topology_io.cpp.o" "gcc" "src/net/CMakeFiles/droute_net.dir/topology_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/droute_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/droute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
