# Empty dependencies file for droute_net.
# This may be replaced when dependencies are built.
