
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/oauth.cpp" "src/cloud/CMakeFiles/droute_cloud.dir/oauth.cpp.o" "gcc" "src/cloud/CMakeFiles/droute_cloud.dir/oauth.cpp.o.d"
  "/root/repo/src/cloud/provider.cpp" "src/cloud/CMakeFiles/droute_cloud.dir/provider.cpp.o" "gcc" "src/cloud/CMakeFiles/droute_cloud.dir/provider.cpp.o.d"
  "/root/repo/src/cloud/storage_server.cpp" "src/cloud/CMakeFiles/droute_cloud.dir/storage_server.cpp.o" "gcc" "src/cloud/CMakeFiles/droute_cloud.dir/storage_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rsyncx/CMakeFiles/droute_rsyncx.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/droute_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droute_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
