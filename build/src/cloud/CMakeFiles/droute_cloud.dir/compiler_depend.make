# Empty compiler generated dependencies file for droute_cloud.
# This may be replaced when dependencies are built.
