file(REMOVE_RECURSE
  "CMakeFiles/droute_cloud.dir/oauth.cpp.o"
  "CMakeFiles/droute_cloud.dir/oauth.cpp.o.d"
  "CMakeFiles/droute_cloud.dir/provider.cpp.o"
  "CMakeFiles/droute_cloud.dir/provider.cpp.o.d"
  "CMakeFiles/droute_cloud.dir/storage_server.cpp.o"
  "CMakeFiles/droute_cloud.dir/storage_server.cpp.o.d"
  "libdroute_cloud.a"
  "libdroute_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droute_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
