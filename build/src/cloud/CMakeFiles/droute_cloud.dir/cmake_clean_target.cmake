file(REMOVE_RECURSE
  "libdroute_cloud.a"
)
