file(REMOVE_RECURSE
  "libdroute_geo.a"
)
