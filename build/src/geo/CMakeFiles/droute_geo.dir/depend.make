# Empty dependencies file for droute_geo.
# This may be replaced when dependencies are built.
