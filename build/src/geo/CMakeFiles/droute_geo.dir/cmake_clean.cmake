file(REMOVE_RECURSE
  "CMakeFiles/droute_geo.dir/geo.cpp.o"
  "CMakeFiles/droute_geo.dir/geo.cpp.o.d"
  "CMakeFiles/droute_geo.dir/registry.cpp.o"
  "CMakeFiles/droute_geo.dir/registry.cpp.o.d"
  "libdroute_geo.a"
  "libdroute_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droute_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
