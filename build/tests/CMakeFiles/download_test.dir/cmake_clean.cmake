file(REMOVE_RECURSE
  "CMakeFiles/download_test.dir/download_test.cpp.o"
  "CMakeFiles/download_test.dir/download_test.cpp.o.d"
  "download_test"
  "download_test.pdb"
  "download_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/download_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
