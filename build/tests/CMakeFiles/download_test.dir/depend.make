# Empty dependencies file for download_test.
# This may be replaced when dependencies are built.
