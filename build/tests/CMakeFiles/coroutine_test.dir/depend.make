# Empty dependencies file for coroutine_test.
# This may be replaced when dependencies are built.
