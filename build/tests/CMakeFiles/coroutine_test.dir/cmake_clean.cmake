file(REMOVE_RECURSE
  "CMakeFiles/coroutine_test.dir/coroutine_test.cpp.o"
  "CMakeFiles/coroutine_test.dir/coroutine_test.cpp.o.d"
  "coroutine_test"
  "coroutine_test.pdb"
  "coroutine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coroutine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
