# Empty dependencies file for route_monitor_test.
# This may be replaced when dependencies are built.
