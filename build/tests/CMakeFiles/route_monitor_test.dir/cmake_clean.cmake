file(REMOVE_RECURSE
  "CMakeFiles/route_monitor_test.dir/route_monitor_test.cpp.o"
  "CMakeFiles/route_monitor_test.dir/route_monitor_test.cpp.o.d"
  "route_monitor_test"
  "route_monitor_test.pdb"
  "route_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
