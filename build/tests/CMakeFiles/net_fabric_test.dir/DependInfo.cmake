
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_fabric_test.cpp" "tests/CMakeFiles/net_fabric_test.dir/net_fabric_test.cpp.o" "gcc" "tests/CMakeFiles/net_fabric_test.dir/net_fabric_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/droute_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/droute_core.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/droute_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/droute_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/transfer/CMakeFiles/droute_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/droute_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/rsyncx/CMakeFiles/droute_rsyncx.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/droute_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/droute_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/droute_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/droute_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droute_util.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/droute_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
