file(REMOVE_RECURSE
  "CMakeFiles/topology_io_test.dir/topology_io_test.cpp.o"
  "CMakeFiles/topology_io_test.dir/topology_io_test.cpp.o.d"
  "topology_io_test"
  "topology_io_test.pdb"
  "topology_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
