# Empty compiler generated dependencies file for science_dmz_test.
# This may be replaced when dependencies are built.
