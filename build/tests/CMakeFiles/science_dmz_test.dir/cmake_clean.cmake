file(REMOVE_RECURSE
  "CMakeFiles/science_dmz_test.dir/science_dmz_test.cpp.o"
  "CMakeFiles/science_dmz_test.dir/science_dmz_test.cpp.o.d"
  "science_dmz_test"
  "science_dmz_test.pdb"
  "science_dmz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/science_dmz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
