# Empty dependencies file for rsync_pipe_test.
# This may be replaced when dependencies are built.
