file(REMOVE_RECURSE
  "CMakeFiles/rsync_pipe_test.dir/rsync_pipe_test.cpp.o"
  "CMakeFiles/rsync_pipe_test.dir/rsync_pipe_test.cpp.o.d"
  "rsync_pipe_test"
  "rsync_pipe_test.pdb"
  "rsync_pipe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsync_pipe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
