# Empty dependencies file for rsyncx_test.
# This may be replaced when dependencies are built.
