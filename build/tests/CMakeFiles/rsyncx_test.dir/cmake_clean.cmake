file(REMOVE_RECURSE
  "CMakeFiles/rsyncx_test.dir/rsyncx_test.cpp.o"
  "CMakeFiles/rsyncx_test.dir/rsyncx_test.cpp.o.d"
  "rsyncx_test"
  "rsyncx_test.pdb"
  "rsyncx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsyncx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
