# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/rsyncx_test[1]_include.cmake")
include("/root/repo/build/tests/net_topology_test[1]_include.cmake")
include("/root/repo/build/tests/net_routing_test[1]_include.cmake")
include("/root/repo/build/tests/net_fabric_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/cloud_test[1]_include.cmake")
include("/root/repo/build/tests/transfer_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/measure_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/wire_format_test[1]_include.cmake")
include("/root/repo/build/tests/download_test[1]_include.cmake")
include("/root/repo/build/tests/rsync_pipe_test[1]_include.cmake")
include("/root/repo/build/tests/multihop_test[1]_include.cmake")
include("/root/repo/build/tests/route_monitor_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
include("/root/repo/build/tests/policy_property_test[1]_include.cmake")
include("/root/repo/build/tests/topology_io_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/throttle_test[1]_include.cmake")
include("/root/repo/build/tests/science_dmz_test[1]_include.cmake")
include("/root/repo/build/tests/coroutine_test[1]_include.cmake")
