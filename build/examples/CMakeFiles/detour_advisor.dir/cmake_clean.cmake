file(REMOVE_RECURSE
  "CMakeFiles/detour_advisor.dir/detour_advisor.cpp.o"
  "CMakeFiles/detour_advisor.dir/detour_advisor.cpp.o.d"
  "detour_advisor"
  "detour_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detour_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
