# Empty compiler generated dependencies file for detour_advisor.
# This may be replaced when dependencies are built.
