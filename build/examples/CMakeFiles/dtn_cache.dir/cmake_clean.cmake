file(REMOVE_RECURSE
  "CMakeFiles/dtn_cache.dir/dtn_cache.cpp.o"
  "CMakeFiles/dtn_cache.dir/dtn_cache.cpp.o.d"
  "dtn_cache"
  "dtn_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtn_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
