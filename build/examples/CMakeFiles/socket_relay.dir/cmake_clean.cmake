file(REMOVE_RECURSE
  "CMakeFiles/socket_relay.dir/socket_relay.cpp.o"
  "CMakeFiles/socket_relay.dir/socket_relay.cpp.o.d"
  "socket_relay"
  "socket_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socket_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
