# Empty compiler generated dependencies file for socket_relay.
# This may be replaced when dependencies are built.
