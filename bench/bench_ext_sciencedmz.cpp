// Extension experiment: the Science-DMZ pattern as a routing detour (the
// paper's cited motivation [2] and stated future work). A campus firewall
// inspects every flow at ~6 Mbps; the DMZ DTN bypasses it. The detour here
// is *on-campus* — same mechanism as the paper's WAN detour, different
// bottleneck.
#include <cstdio>

#include "scenario/science_dmz.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace droute;
  std::printf("=== Extension: Science DMZ — bypassing the campus firewall ===\n");
  std::printf("Firewall inspects at 6 Mbps/flow; the DMZ DTN skips it.\n\n");

  util::TextTable table({"File size (MB)", "through firewall (s)",
                         "via DMZ DTN (s)", "speedup"});
  for (const std::uint64_t mb : {10, 50, 100, 500}) {
    auto direct_world = scenario::ScienceDmzWorld::create();
    auto direct = direct_world->run_upload(
        scenario::ScienceDmzWorld::Path::kThroughFirewall, mb * util::kMB);
    auto dtn_world = scenario::ScienceDmzWorld::create();
    auto detour = dtn_world->run_upload(
        scenario::ScienceDmzWorld::Path::kViaDtn, mb * util::kMB);
    if (!direct.ok() || !detour.ok()) {
      std::fprintf(stderr, "upload failed\n");
      return 1;
    }
    table.add_row({std::to_string(mb), util::fmt_seconds(direct.value()),
                   util::fmt_seconds(detour.value()),
                   util::fmt_double(direct.value() / detour.value(), 1) +
                       "x"});
  }
  std::printf("%s\n", table.render().c_str());

  // Ablation: the gain tracks the firewall's inspection ceiling.
  std::printf("Firewall ceiling ablation (100 MB):\n");
  util::TextTable ablation({"firewall Mbps/flow", "through firewall (s)",
                            "via DMZ DTN (s)"});
  for (const double mbps : {2.0, 6.0, 20.0, 100.0}) {
    scenario::ScienceDmzConfig config;
    config.firewall_per_flow_mbps = mbps;
    auto w1 = scenario::ScienceDmzWorld::create(config);
    auto w2 = scenario::ScienceDmzWorld::create(config);
    ablation.add_row(
        {util::fmt_double(mbps, 0),
         util::fmt_seconds(
             w1->run_upload(scenario::ScienceDmzWorld::Path::kThroughFirewall,
                            100 * util::kMB)
                 .value()),
         util::fmt_seconds(
             w2->run_upload(scenario::ScienceDmzWorld::Path::kViaDtn,
                            100 * util::kMB)
                 .value())});
  }
  std::printf("%s\n", ablation.render().c_str());
  std::printf("Same mitigation as the paper's WAN detour: move the bulk\n"
              "flow onto a path whose middleboxes you control. Dart et al.'s\n"
              "DTN design pattern *is* a routing detour.\n");
  return 0;
}
