// Fig 8: Purdue -> Dropbox — direct generally competitive, size-dependent
// crossovers, large error bars (the paper's overlap discussion).
#include "common.h"

int main() {
  using namespace droute;
  const auto series =
      bench::measure_figure(scenario::Client::kPurdue,
                            cloud::ProviderKind::kDropbox,
                            scenario::paper_file_sizes_bytes());
  bench::print_figure("=== Fig 8: Purdue -> Dropbox ===",
                      scenario::Client::kPurdue, cloud::ProviderKind::kDropbox,
                      series);
  std::printf("Paper's qualitative result: detours are generally no better\n"
              "than direct here, with file-size-dependent exceptions and\n"
              "overlapping error bars (see bench_table4 for the analysis).\n");
  return 0;
}
