// Macro perf cases over the calibrated scenario stack -> BENCH_campaign.json.
//
// These time whole subsystems end to end: the paper's measurement campaign,
// scaled fleets of concurrent uploads inside one World (10x and 100x the
// paper's ~6 concurrent flows), and the chaos proptest pipeline. Together
// with the fabric micro cases they pin the perf trajectory of the repo's
// two hot loops: water-filling and the event queue.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "chaos/scenario.h"
#include "cloud/provider.h"
#include "harness.h"
#include "measure/campaign.h"
#include "scenario/north_america.h"
#include "util/units.h"

namespace droute::bench {
namespace {

// Starts `fleet_flows` concurrent uploads spread over every client x
// provider pair of a fresh calibrated World and runs the simulator until all
// of them drain. Exercises the incremental allocator on the paper topology
// (shared bottlenecks, policers, live cross traffic) rather than synthetic
// pods.
void run_fleet(std::uint64_t seed, int fleet_flows) {
  scenario::WorldConfig config;
  config.seed = seed;
  auto world = scenario::World::create(config);
  // Cross-traffic warm-up, same budget as run_upload's internal warm-up.
  world->simulator().run_until(config.warmup_s);

  const std::vector<scenario::Client> clients = scenario::all_clients();
  const std::vector<cloud::ProviderKind> providers = cloud::all_providers();
  net::FlowOptions options;
  options.charge_slow_start = false;
  options.label = "bench.fleet";
  auto remaining = std::make_shared<int>(fleet_flows);
  for (int i = 0; i < fleet_flows; ++i) {
    const net::NodeId src =
        world->client_node(clients[static_cast<std::size_t>(i) %
                                   clients.size()]);
    const net::NodeId dst = world->provider_node(
        providers[(static_cast<std::size_t>(i) / clients.size()) %
                  providers.size()]);
    const std::uint64_t bytes = (10 + 5 * (i % 7)) * util::kMB;
    auto flow = world->fabric().start_flow(
        src, dst, bytes, [remaining](const net::FlowStats&) { --*remaining; },
        options);
    if (!flow.ok()) {
      std::fprintf(stderr, "fleet start_flow failed: %s\n",
                   flow.error().message.c_str());
      std::exit(1);
    }
  }
  // Cross-traffic sources schedule events forever, so the queue never
  // drains; advance in slices until the fleet itself completes.
  double horizon_s = config.warmup_s;
  while (*remaining > 0) {
    horizon_s += 60.0;
    if (horizon_s > 1e6) {
      std::fprintf(stderr, "fleet stalled with %d flow(s) unfinished\n",
                   *remaining);
      std::exit(1);
    }
    world->simulator().run_until(horizon_s);
  }
}

DROUTE_BENCH(paper_campaign, "ms") {
  // The paper's Sec II protocol end to end: UBC -> Google Drive over all
  // three route choices. Quick mode trims the grid to one cell per route.
  const std::vector<std::uint64_t> sizes =
      ctx.quick() ? std::vector<std::uint64_t>{10 * util::kMB}
                  : scenario::paper_file_sizes_bytes();
  measure::Protocol protocol;
  if (ctx.quick()) {
    protocol.total_runs = 2;
    protocol.keep_last = 1;
  }
  auto campaign = std::make_shared<measure::Campaign>(2016);
  for (const scenario::RouteChoice route : scenario::all_routes()) {
    campaign->add_route(scenario::route_name(route),
                        scenario::make_transfer_fn(
                            scenario::Client::kUBC,
                            cloud::ProviderKind::kGoogleDrive, route));
  }
  const double cells =
      static_cast<double>(sizes.size() * campaign->route_keys().size());
  ctx.set_events(cells * protocol.total_runs);  // one event per measured run
  ctx.extra("grid_cells", cells);
  ctx.set_work([campaign, sizes, protocol] {
    const auto grid = campaign->run_grid(sizes, protocol, /*pool=*/nullptr);
    if (grid.empty()) std::exit(1);
  });
}

DROUTE_BENCH(fleet_10x, "ms") {
  const int fleet_flows = 60;  // 10x the paper's ~6 concurrent flows
  ctx.set_events(fleet_flows);
  ctx.extra("fleet_flows", fleet_flows);
  ctx.set_work([fleet_flows] { run_fleet(2016, fleet_flows); });
}

DROUTE_BENCH(fleet_100x, "ms") {
  const int fleet_flows = ctx.quick() ? 60 : 600;
  ctx.set_events(fleet_flows);
  ctx.extra("fleet_flows", fleet_flows);
  ctx.set_work([fleet_flows] { run_fleet(2016, fleet_flows); });
}

DROUTE_BENCH(proptest_throughput, "ms") {
  // Chaos pipeline throughput: generate + run random cases, the inner loop
  // of the fuzz/shrink workflow. Events = completed scenario runs.
  const int cases = ctx.quick() ? 3 : 40;
  ctx.set_events(cases);
  ctx.set_work([cases] {
    for (int i = 0; i < cases; ++i) {
      const chaos::Case c =
          chaos::random_case(1000 + static_cast<std::uint64_t>(i));
      const chaos::RunReport report = chaos::run_case(c);
      if (!report.ok()) {
        std::fprintf(stderr, "proptest case seed=%d violated '%s': %s\n",
                     1000 + i, report.violated.c_str(),
                     report.detail.c_str());
        std::exit(1);
      }
    }
  });
}

}  // namespace
}  // namespace droute::bench

int main(int argc, char** argv) {
  return droute::bench::bench_main(argc, argv, "BENCH_campaign.json");
}
