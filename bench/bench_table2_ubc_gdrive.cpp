// Table II: UBC -> Google Drive average transfer times with relative
// gain/loss percentages for the detours.
#include "common.h"

int main() {
  using namespace droute;
  const auto series =
      bench::measure_figure(scenario::Client::kUBC,
                            cloud::ProviderKind::kGoogleDrive,
                            scenario::paper_file_sizes_bytes());
  bench::print_percent_table(
      "=== Table II: UBC -> Google Drive transfer times (gain vs direct) ===",
      series);
  bench::print_paper_comparison(
      "Paper values vs this reproduction:",
      {{10, 9.46, 6.47, 15.41},
       {20, 18.61, 8.27, 27.71},
       {30, 28.66, 13.85, 39.14},
       {40, 36.86, 17.4, 51.87},
       {50, 42.26, 19.41, 63.68},
       {60, 51.11, 21.99, 80.71},
       {100, 86.92, 35.79, 132.17}},
      series);
  std::printf("Paper's headline: the UAlberta detour saves >50%% for most\n"
              "sizes; the UMich detour always loses from UBC.\n");
  return 0;
}
