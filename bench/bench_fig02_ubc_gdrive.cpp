// Fig 2: Upload performance from UBC to Google Drive (direct vs detours).
#include "common.h"
#include "util/units.h"

int main() {
  using namespace droute;
  const auto series =
      bench::measure_figure(scenario::Client::kUBC,
                            cloud::ProviderKind::kGoogleDrive,
                            scenario::paper_file_sizes_bytes());
  bench::print_figure("=== Fig 2: UBC -> Google Drive ===",
                      scenario::Client::kUBC,
                      cloud::ProviderKind::kGoogleDrive, series);
  bench::print_paper_comparison(
      "Paper (Table II) vs this reproduction:",
      {{10, 9.46, 6.47, 15.41},
       {20, 18.61, 8.27, 27.71},
       {30, 28.66, 13.85, 39.14},
       {40, 36.86, 17.4, 51.87},
       {50, 42.26, 19.41, 63.68},
       {60, 51.11, 21.99, 80.71},
       {100, 86.92, 35.79, 132.17}},
      series);
  return 0;
}
