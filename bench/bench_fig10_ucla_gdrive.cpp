// Fig 10: UCLA -> Google Drive — last-mile bottleneck, no detour helps.
#include "common.h"

int main() {
  using namespace droute;
  const auto series =
      bench::measure_figure(scenario::Client::kUCLA,
                            cloud::ProviderKind::kGoogleDrive,
                            scenario::paper_file_sizes_bytes());
  bench::print_figure("=== Fig 10: UCLA -> Google Drive ===",
                      scenario::Client::kUCLA,
                      cloud::ProviderKind::kGoogleDrive, series);
  std::printf("Paper's qualitative result: the UCLA PlanetLab node's outgoing\n"
              "bandwidth is the bottleneck; every route is slow and the\n"
              "direct route is fastest (detours only add a second leg).\n");
  return 0;
}
