#include "harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>

namespace droute::bench {

std::vector<BenchCase>& registry() {
  static std::vector<BenchCase> cases;
  return cases;
}

bool register_case(BenchCase c) {
  registry().push_back(std::move(c));
  return true;
}

BenchStats summarize(std::vector<double> samples_ms) {
  BenchStats stats;
  if (samples_ms.empty()) return stats;
  std::sort(samples_ms.begin(), samples_ms.end());
  const std::size_t n = samples_ms.size();
  stats.min_ms = samples_ms.front();
  stats.max_ms = samples_ms.back();
  stats.mean_ms =
      std::accumulate(samples_ms.begin(), samples_ms.end(), 0.0) /
      static_cast<double>(n);
  stats.median_ms = n % 2 == 1
                        ? samples_ms[n / 2]
                        : 0.5 * (samples_ms[n / 2 - 1] + samples_ms[n / 2]);
  // Nearest-rank p95: smallest sample >= 95% of the distribution.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(0.95 * static_cast<double>(n)));
  stats.p95_ms = samples_ms[rank == 0 ? 0 : rank - 1];
  stats.samples_ms = std::move(samples_ms);
  return stats;
}

namespace {

struct Options {
  bool list = false;
  bool quick = false;
  int repeats = 5;
  int warmup = 1;
  std::string filter;
  std::string json_path;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list] [--quick] [--filter SUBSTR]\n"
               "          [--repeats N] [--warmup N] [--json PATH]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      options->list = true;
    } else if (arg == "--quick") {
      options->quick = true;
    } else if (arg == "--filter") {
      const char* v = next();
      if (v == nullptr) return false;
      options->filter = v;
    } else if (arg == "--repeats") {
      const char* v = next();
      if (v == nullptr) return false;
      options->repeats = std::atoi(v);
    } else if (arg == "--warmup") {
      const char* v = next();
      if (v == nullptr) return false;
      options->warmup = std::atoi(v);
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return false;
      options->json_path = v;
    } else {
      return false;
    }
  }
  return options->repeats > 0 && options->warmup >= 0;
}

std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// %.17g round-trips doubles; JSON needs non-finite values spelled out of
// band, but bench samples are always finite wall-clock durations.
std::string json_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

struct CaseReport {
  const BenchCase* c = nullptr;
  BenchStats stats;
  int warmup = 0;
  double events = 0.0;
  double events_per_sec = 0.0;
  std::map<std::string, double> extras;
};

}  // namespace

int bench_main(int argc, char** argv, const std::string& default_json) {
  Options options;
  if (!parse_args(argc, argv, &options)) return usage(argv[0]);
  if (options.json_path.empty()) options.json_path = default_json;
  if (options.quick) {
    options.repeats = 1;
    options.warmup = 0;
  }

  if (options.list) {
    for (const BenchCase& c : registry()) {
      std::printf("%-40s %s\n", c.name.c_str(), c.unit.c_str());
    }
    return 0;
  }

  using clock = std::chrono::steady_clock;
  std::vector<CaseReport> reports;
  for (const BenchCase& c : registry()) {
    if (!options.filter.empty() &&
        c.name.find(options.filter) == std::string::npos) {
      continue;
    }
    BenchContext ctx(options.quick);
    c.body(ctx);
    if (!ctx.work_) {
      std::fprintf(stderr, "bench %s never called set_work()\n",
                   c.name.c_str());
      return 1;
    }
    for (int i = 0; i < options.warmup; ++i) ctx.work_();
    std::vector<double> samples_ms;
    samples_ms.reserve(static_cast<std::size_t>(options.repeats));
    for (int i = 0; i < options.repeats; ++i) {
      const auto t0 = clock::now();
      ctx.work_();
      const auto t1 = clock::now();
      samples_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }

    CaseReport report;
    report.c = &c;
    report.stats = summarize(std::move(samples_ms));
    report.warmup = options.warmup;
    report.events = ctx.events_;
    if (ctx.events_ > 0.0 && report.stats.median_ms > 0.0) {
      report.events_per_sec = ctx.events_ / (report.stats.median_ms / 1e3);
    }
    report.extras = std::move(ctx.extras_);
    reports.push_back(std::move(report));

    std::printf("%-40s median %12.3f %-12s p95 %12.3f", c.name.c_str(),
                reports.back().stats.median_ms, c.unit.c_str(),
                reports.back().stats.p95_ms);
    if (reports.back().events_per_sec > 0.0) {
      std::printf("  %12.0f events/s", reports.back().events_per_sec);
    }
    for (const auto& [key, value] : reports.back().extras) {
      std::printf("  %s=%g", key.c_str(), value);
    }
    std::printf("\n");
  }

  if (reports.empty()) {
    std::fprintf(stderr, "no bench case matches filter '%s'\n",
                 options.filter.c_str());
    return 1;
  }

  std::FILE* out = std::fopen(options.json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", options.json_path.c_str());
    return 1;
  }
  std::string json = "{\n  \"schema\": \"droute-bench-v1\",\n  \"binary\": \"";
  json += json_escape(argv[0] != nullptr ? argv[0] : "bench");
  json += "\",\n  \"quick\": ";
  json += options.quick ? "true" : "false";
  json += ",\n  \"cases\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const CaseReport& r = reports[i];
    json += i == 0 ? "\n" : ",\n";
    json += "    {\"name\": \"" + json_escape(r.c->name) + "\", \"unit\": \"" +
            json_escape(r.c->unit) + "\",\n     \"warmup\": " +
            std::to_string(r.warmup) + ", \"repeats\": " +
            std::to_string(r.stats.samples_ms.size()) +
            ", \"samples_ms\": [";
    for (std::size_t s = 0; s < r.stats.samples_ms.size(); ++s) {
      if (s > 0) json += ", ";
      json += json_number(r.stats.samples_ms[s]);
    }
    json += "],\n     \"median_ms\": " + json_number(r.stats.median_ms) +
            ", \"p95_ms\": " + json_number(r.stats.p95_ms) +
            ", \"mean_ms\": " + json_number(r.stats.mean_ms) +
            ", \"min_ms\": " + json_number(r.stats.min_ms) +
            ", \"max_ms\": " + json_number(r.stats.max_ms) +
            ",\n     \"events\": " + json_number(r.events) +
            ", \"events_per_sec\": " + json_number(r.events_per_sec) +
            ",\n     \"extras\": {";
    bool first = true;
    for (const auto& [key, value] : r.extras) {
      if (!first) json += ", ";
      first = false;
      json += '"';
      json += json_escape(key);
      json += "\": ";
      json += json_number(value);
    }
    json += "}}";
  }
  json += "\n  ]\n}\n";
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  if (written != json.size()) {
    std::fprintf(stderr, "short write to %s\n", options.json_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu case(s))\n", options.json_path.c_str(),
              reports.size());
  return 0;
}

}  // namespace droute::bench
