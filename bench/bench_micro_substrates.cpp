// google-benchmark microbenchmarks for the substrates: event kernel
// throughput, rolling checksum / MD5 / delta scan rates, max-min allocator
// cost, and BGP table construction.
#include <benchmark/benchmark.h>

#include "net/fabric.h"
#include "rsyncx/checksum.h"
#include "rsyncx/delta.h"
#include "rsyncx/md5.h"
#include "rsyncx/signature.h"
#include "scenario/north_america.h"
#include "sim/simulator.h"
#include "util/blob.h"
#include "util/rng.h"
#include "util/units.h"

namespace {

using namespace droute;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const auto events = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    for (std::uint64_t i = 0; i < events; ++i) {
      simulator.schedule_at(static_cast<double>(i % 97), [] {});
    }
    simulator.run();
    benchmark::DoNotOptimize(simulator.executed_events());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(100000);

void BM_RollingChecksum(benchmark::State& state) {
  util::Rng rng(1);
  const util::Blob data =
      util::make_random_blob(rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    rsyncx::RollingChecksum rc(
        std::span<const std::uint8_t>(data).subspan(0, 700));
    std::uint32_t accum = 0;
    for (std::size_t i = 0; i + 700 < data.size(); ++i) {
      rc.roll(data[i], data[i + 700]);
      accum ^= rc.digest();
    }
    benchmark::DoNotOptimize(accum);
  }
  state.SetBytesProcessed(state.range(0) * state.iterations());
}
BENCHMARK(BM_RollingChecksum)->Arg(1 << 20);

void BM_Md5(benchmark::State& state) {
  util::Rng rng(2);
  const util::Blob data =
      util::make_random_blob(rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsyncx::Md5::hash(data));
  }
  state.SetBytesProcessed(state.range(0) * state.iterations());
}
BENCHMARK(BM_Md5)->Arg(1 << 20);

void BM_DeltaScanIdentical(benchmark::State& state) {
  util::Rng rng(3);
  const util::Blob file =
      util::make_random_blob(rng, static_cast<std::size_t>(state.range(0)));
  const auto block = rsyncx::recommended_block_size(file.size());
  const auto sig = rsyncx::compute_signature(file, block);
  const rsyncx::SignatureIndex index(sig);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsyncx::compute_delta(file, index));
  }
  state.SetBytesProcessed(state.range(0) * state.iterations());
}
BENCHMARK(BM_DeltaScanIdentical)->Arg(1 << 20);

void BM_ScenarioWorldBuild(benchmark::State& state) {
  for (auto _ : state) {
    scenario::WorldConfig config;
    config.cross_traffic = false;
    benchmark::DoNotOptimize(scenario::World::create(config));
  }
}
BENCHMARK(BM_ScenarioWorldBuild);

void BM_ScenarioUpload(benchmark::State& state) {
  // Cost of a full simulated 100 MB direct upload (world build + run):
  // the unit of work every measurement campaign repeats hundreds of times.
  for (auto _ : state) {
    scenario::WorldConfig config;
    config.cross_traffic = true;
    config.seed = 42;
    auto world = scenario::World::create(config);
    benchmark::DoNotOptimize(
        world->run_upload(scenario::Client::kPurdue,
                          cloud::ProviderKind::kGoogleDrive,
                          scenario::RouteChoice::kDirect, 100 * util::kMB));
  }
}
BENCHMARK(BM_ScenarioUpload);

}  // namespace

BENCHMARK_MAIN();
