// Fig 7: Upload performance from Purdue to Google Drive — both detours win.
#include "common.h"

int main() {
  using namespace droute;
  const auto series =
      bench::measure_figure(scenario::Client::kPurdue,
                            cloud::ProviderKind::kGoogleDrive,
                            scenario::paper_file_sizes_bytes());
  bench::print_figure("=== Fig 7: Purdue -> Google Drive ===",
                      scenario::Client::kPurdue,
                      cloud::ProviderKind::kGoogleDrive, series);
  bench::print_paper_comparison(
      "Paper (Table III) vs this reproduction:",
      {{10, 98.89, 17.57, 30.59},
       {20, 288.23, 70.55, 83.62},
       {30, 480.95, 120.69, 111.37},
       {40, 585.54, 94.43, 173.53},
       {50, 557.9, 138.03, 126.82},
       {60, 610.88, 142.15, 183.85},
       {100, 748.03, 195.88, 184.07}},
      series);
  return 0;
}
