// Sharded-allocator perf cases -> BENCH_shard.json.
//
// The churn storm from bench_perf_fabric scaled to a 100k-flow fleet and run
// under AllocMode::kSharded at 1/4/8 workers (DESIGN.md §16). Two gates:
//
//   * determinism (always): the outcome digest must be byte-identical at
//     every worker count — a bench that benchmarks divergent runs is
//     benchmarking a bug, so it exits 1 instead of reporting;
//   * speedup (only on >= 8-way hardware): the fills are embarrassingly
//     parallel across pods, so 8 workers must beat 1 by >= 3x. On smaller
//     machines (CI smoke runners are often 1-2 cores) the ratio is still
//     reported in extras but not gated — wall-clock there measures the
//     scheduler, not the discipline.
//
// The per-worker wall times ride along as extras (single_ms / w4_ms / w8_ms,
// speedup_vs_single_w4 / _w8); tools/validate_bench.py --against diffs only
// median_ms, so the committed baseline stays honest about the machine it was
// captured on without turning hardware variance into CI failures.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "net/fabric.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/units.h"

namespace droute::bench {
namespace {

// Independent dumbbell pods (same shape as bench_perf_fabric's fleet): each
// pod is its own sharing component, which is exactly the decomposition the
// sharded mode parallelizes over.
struct PodFleet {
  net::Topology topo;
  net::RouteTable routes{nullptr};
  sim::Simulator simulator;
  std::unique_ptr<net::Fabric> fabric;
  std::vector<net::NodeId> a, b;

  PodFleet(int pods, int pairs_per_pod, int shard_workers) {
    net::Topology::Builder builder;
    const net::AsId as = builder.add_as("BENCH");
    a.reserve(static_cast<std::size_t>(pods) * pairs_per_pod);
    b.reserve(static_cast<std::size_t>(pods) * pairs_per_pod);
    for (int p = 0; p < pods; ++p) {
      const std::string tag = std::to_string(p);
      const net::NodeId left = builder.add_router(as, "l" + tag, {40, -100});
      const net::NodeId right = builder.add_router(as, "r" + tag, {40, -99});
      for (int h = 0; h < pairs_per_pod; ++h) {
        const std::string host_tag = tag + "_" + std::to_string(h);
        const net::NodeId ah = builder.add_host(as, "a" + host_tag, {40, -100});
        const net::NodeId bh = builder.add_host(as, "b" + host_tag, {40, -99});
        builder.add_duplex(ah, left, 10000, 0.0005);
        builder.add_duplex(right, bh, 10000, 0.0005);
        a.push_back(ah);
        b.push_back(bh);
      }
      builder.add_duplex(left, right, 1000, 0.01);
    }
    auto built = std::move(builder).build();
    if (!built.ok()) {
      std::fprintf(stderr, "pod fleet build failed: %s\n",
                   built.error().message.c_str());
      std::exit(1);
    }
    topo = std::move(built).value();
    routes = net::RouteTable(&topo);
    fabric = std::make_unique<net::Fabric>(&simulator, &topo, &routes);
    fabric->set_alloc_mode(net::Fabric::AllocMode::kSharded);
    fabric->set_shard_workers(shard_workers);
  }
};

// Closed-loop storm (one in-flight flow per pair, next generation starts on
// completion) with periodic fleet-wide capacity rewrites — the rewrite +
// reallocate_now dirties *every* pod at once, producing the widest
// multi-component fill batches the sharded mode can fan out.
struct Storm {
  PodFleet* fleet = nullptr;
  int generations = 0;
  std::uint64_t digest = 0xcbf29ce484222325ull;
  std::uint64_t done = 0;
  std::vector<util::Rng> pair_rng;

  void start_next(std::size_t pair, int generation) {
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(pair_rng[pair].uniform_int(10, 40)) *
        util::kMB;
    net::FlowOptions options;
    options.charge_slow_start = false;
    auto flow = fleet->fabric->start_flow(
        fleet->a[pair], fleet->b[pair], bytes,
        [this, pair, generation](const net::FlowStats& stats) {
          const double duration = stats.duration_s();
          const unsigned char* raw =
              reinterpret_cast<const unsigned char*>(&duration);
          for (std::size_t i = 0; i < sizeof duration; ++i) {
            digest ^= raw[i];
            digest *= 0x100000001b3ull;
          }
          ++done;
          if (generation + 1 < generations) start_next(pair, generation + 1);
        },
        options);
    if (!flow.ok()) {
      std::fprintf(stderr, "storm start_flow failed: %s\n",
                   flow.error().message.c_str());
      std::exit(1);
    }
  }
};

std::uint64_t run_storm(PodFleet& fleet, int generations, int storm_rounds,
                        std::uint64_t* completed) {
  util::Rng rng(7);
  Storm storm;
  storm.fleet = &fleet;
  storm.generations = generations;
  storm.pair_rng.reserve(fleet.a.size());
  for (std::size_t pair = 0; pair < fleet.a.size(); ++pair) {
    storm.pair_rng.push_back(rng.fork(pair));
    fleet.simulator.schedule_at(rng.uniform(0.0, 2.0), [&storm, pair] {
      storm.start_next(pair, 0);
    });
  }
  // Fleet-wide capacity storms: rewrite every pod bottleneck, then one
  // reallocate_now — a dense all-components batch per round.
  util::Rng storm_rng = rng.fork(~0ull);
  const std::size_t link_count = fleet.topo.link_count();
  for (int round = 0; round < storm_rounds; ++round) {
    const double at = 2.0 + 3.0 * round;
    fleet.simulator.schedule_at(at, [&fleet, &storm_rng, link_count] {
      // Pod bottlenecks are the last duplex added per pod; perturbing a
      // deterministic sample of all links is simpler and hits them too.
      for (std::size_t l = 0; l < link_count; l += 97) {
        const double capacity = storm_rng.uniform(500.0, 2000.0);
        (void)fleet.topo.set_link_capacity(static_cast<net::LinkId>(l),
                                           capacity);
      }
      fleet.fabric->reallocate_now();
    });
  }
  fleet.simulator.run();
  *completed = storm.done;
  return storm.digest;
}

struct StormResult {
  double wall_ms = 0.0;
  std::uint64_t digest = 0;
  std::uint64_t completed = 0;
};

StormResult timed_storm(int pods, int pairs, int generations, int rounds,
                        int workers) {
  const auto t0 = std::chrono::steady_clock::now();
  PodFleet fleet(pods, pairs, workers);
  StormResult result;
  result.digest = run_storm(fleet, generations, rounds, &result.completed);
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

DROUTE_BENCH(churn_storm_shard_100k, "ms") {
  // 100k concurrent flows: 1000 independent pods x 100 closed-loop pairs.
  const int pods = ctx.quick() ? 20 : 1000;
  const int pairs = ctx.quick() ? 10 : 100;
  const int generations = 2;
  const int rounds = ctx.quick() ? 2 : 4;

  const StormResult single = timed_storm(pods, pairs, generations, rounds, 1);
  const StormResult w4 = timed_storm(pods, pairs, generations, rounds, 4);
  const StormResult w8 = timed_storm(pods, pairs, generations, rounds, 8);

  // Hard gate, every machine: worker count must not change results.
  if (w4.digest != single.digest || w8.digest != single.digest ||
      w4.completed != single.completed || w8.completed != single.completed) {
    std::fprintf(stderr,
                 "sharded churn storm diverged across worker counts "
                 "(w1 %016llx, w4 %016llx, w8 %016llx)\n",
                 static_cast<unsigned long long>(single.digest),
                 static_cast<unsigned long long>(w4.digest),
                 static_cast<unsigned long long>(w8.digest));
    std::exit(1);
  }

  const double speedup_w4 =
      w4.wall_ms > 0.0 ? single.wall_ms / w4.wall_ms : 0.0;
  const double speedup_w8 =
      w8.wall_ms > 0.0 ? single.wall_ms / w8.wall_ms : 0.0;
  const unsigned cores = std::thread::hardware_concurrency();
  // Speedup gate only where the hardware can express it; a 1-2 core smoke
  // runner measures contention, not the merge discipline.
  if (!ctx.quick() && cores >= 8 && speedup_w8 < 3.0) {
    std::fprintf(stderr,
                 "sharded storm speedup regressed: w8 %.2fx (need >= 3x on "
                 "%u-way hardware; w1 %.1f ms, w8 %.1f ms)\n",
                 speedup_w8, cores, single.wall_ms, w8.wall_ms);
    std::exit(1);
  }

  ctx.set_events(static_cast<double>(single.completed));
  ctx.extra("fleet_flows", static_cast<double>(pods) * pairs);
  ctx.extra("hardware_threads", static_cast<double>(cores));
  ctx.extra("single_ms", single.wall_ms);
  ctx.extra("w4_ms", w4.wall_ms);
  ctx.extra("w8_ms", w8.wall_ms);
  ctx.extra("speedup_vs_single_w4", speedup_w4);
  ctx.extra("speedup_vs_single_w8", speedup_w8);
  // The diffable median tracks the widest fan-out configuration.
  ctx.set_work([pods, pairs, generations, rounds] {
    PodFleet fleet(pods, pairs, 8);
    std::uint64_t completed = 0;
    run_storm(fleet, generations, rounds, &completed);
  });
}

}  // namespace
}  // namespace droute::bench

int main(int argc, char** argv) {
  return droute::bench::bench_main(argc, argv, "BENCH_shard.json");
}
