// Table IV: mean and standard deviation of upload times from Purdue
// (Dropbox + OneDrive, 60 and 100 MB) with the paper's error-bar-overlap
// significance analysis (Sec III-B).
#include <cstdio>

#include "common.h"
#include "stats/overlap.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace droute;
  std::printf("=== Table IV: Purdue mean/stddev and overlap analysis ===\n\n");

  const std::vector<std::uint64_t> sizes{60 * util::kMB, 100 * util::kMB};
  util::TextTable table({"File size (MB)", "Type", "Mean (s)", "Std dev"});
  struct Cell {
    std::string label;
    stats::Interval interval;
    bool is_direct;
    std::uint64_t bytes;
    std::string provider;
  };
  std::vector<Cell> cells;

  for (const auto provider :
       {cloud::ProviderKind::kDropbox, cloud::ProviderKind::kOneDrive}) {
    const auto series =
        bench::measure_figure(scenario::Client::kPurdue, provider, sizes);
    for (const std::uint64_t bytes : sizes) {
      for (const auto& s : series) {
        const auto& kept = s.by_size.at(bytes).kept;
        const std::string label = cloud::provider_name(provider) + " (" +
                                  scenario::route_name(s.route) + ")";
        table.add_row({util::fmt_mb(bytes), label,
                       util::fmt_seconds(kept.mean),
                       util::fmt_seconds(kept.stddev)});
        cells.push_back({label,
                         {kept.mean, kept.stddev},
                         s.route == scenario::RouteChoice::kDirect,
                         bytes,
                         cloud::provider_name(provider)});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Error-bar overlap analysis (Sec III-B):\n");
  for (const Cell& direct : cells) {
    if (!direct.is_direct) continue;
    for (const Cell& detour : cells) {
      if (detour.is_direct || detour.bytes != direct.bytes ||
          detour.provider != direct.provider) {
        continue;
      }
      const bool overlap =
          stats::error_bars_overlap(direct.interval, detour.interval);
      std::printf("  %3llu MB %-28s vs direct: [%7.2f, %7.2f] vs "
                  "[%7.2f, %7.2f] -> %s\n",
                  static_cast<unsigned long long>(direct.bytes / util::kMB),
                  detour.label.c_str(), detour.interval.low(),
                  detour.interval.high(), direct.interval.low(),
                  direct.interval.high(),
                  overlap ? "OVERLAP (prefer direct)" : "separated");
    }
  }
  std::printf("\nPaper's worked example: Dropbox 100 MB direct 177.89+/-36.03\n"
              "overlaps both detours (237.78+/-56.1, 226.43+/-50.48), so no\n"
              "detour is trustworthy there.\n");
  return 0;
}
