// Table V: geographical summary of the fastest routes per client — the
// overlay table the full campaign induces, rendered per client with the
// paper's captions.
#include <cstdio>

#include "common.h"
#include "core/advisor.h"
#include "core/overlay.h"
#include "util/units.h"

int main() {
  using namespace droute;
  std::printf("=== Table V: geographic summary of fastest routes ===\n\n");

  core::OverlayTable overlay;
  for (const auto client : scenario::all_clients()) {
    for (const auto provider : cloud::all_providers()) {
      const auto series = bench::measure_figure(
          client, provider, {100 * util::kMB});
      std::vector<core::RouteStats> stats;
      for (const auto& s : series) {
        core::RouteStats rs;
        rs.key = scenario::route_name(s.route);
        rs.summary = s.by_size.at(100 * util::kMB).kept;
        rs.is_direct = s.route == scenario::RouteChoice::kDirect;
        stats.push_back(rs);
      }
      const auto decision = core::RouteAdvisor().recommend(stats);
      core::OverlayEntry entry;
      entry.client = scenario::client_name(client);
      entry.provider = cloud::provider_name(provider);
      entry.route_key = decision.route_key;
      entry.expected_s = decision.expected_s;
      entry.confidence = decision.confidence;
      entry.decided_for_bytes = 100 * util::kMB;
      overlay.install(entry);
    }
  }
  std::printf("%s\n", overlay.render().c_str());
  std::printf(
      "Paper's Table V captions:\n"
      "  UBC   : Google Drive detours via UAlberta (dashed); Dropbox and\n"
      "          OneDrive go direct (solid).\n"
      "  Purdue: Google Drive via UAlberta or UMich; Dropbox and OneDrive\n"
      "          direct.\n"
      "  UCLA  : everything direct.\n");
  return 0;
}
