// Fabric hot-path perf cases -> BENCH_fabric.json.
//
// Micro: water-filling cost at fixed fleet sizes, raw event-queue ops.
// Macro: the churn storm — a 100x-paper fleet of short flows arriving and
// draining across many independent pods, the workload the incremental
// allocator (DESIGN.md §12) exists for. The storm runs in both allocation
// modes and reports `speedup_vs_full`; the rewrite was accepted at >= 5x.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "harness.h"
#include "net/fabric.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/units.h"

namespace droute::bench {
namespace {

// A fleet of independent dumbbell pods: pod p is a_i[p] .. left[p] ==
// shared[p] == right[p] .. b_i[p]. Pods never share links, so every pod is
// its own max-min component — the structure real fleets have (distinct
// client sites x provider ingress paths) and the locality the incremental
// allocator exploits.
struct PodFleet {
  net::Topology topo;
  net::RouteTable routes{nullptr};
  sim::Simulator simulator;
  std::unique_ptr<net::Fabric> fabric;
  std::vector<net::NodeId> a, b;  // hosts_per_pod entries per pod

  PodFleet(int pods, int hosts_per_pod, net::Fabric::AllocMode mode) {
    net::Topology::Builder builder;
    const net::AsId as = builder.add_as("BENCH");
    for (int p = 0; p < pods; ++p) {
      const std::string tag = std::to_string(p);
      const net::NodeId left = builder.add_router(as, "l" + tag, {40, -100});
      const net::NodeId right = builder.add_router(as, "r" + tag, {40, -99});
      for (int h = 0; h < hosts_per_pod; ++h) {
        const std::string host_tag = tag + "_" + std::to_string(h);
        const net::NodeId ah = builder.add_host(as, "a" + host_tag, {40, -100});
        const net::NodeId bh = builder.add_host(as, "b" + host_tag, {40, -99});
        builder.add_duplex(ah, left, 10000, 0.0005);
        builder.add_duplex(right, bh, 10000, 0.0005);
        a.push_back(ah);
        b.push_back(bh);
      }
      builder.add_duplex(left, right, 1000, 0.01);
    }
    auto built = std::move(builder).build();
    if (!built.ok()) {
      std::fprintf(stderr, "pod fleet build failed: %s\n",
                   built.error().message.c_str());
      std::exit(1);
    }
    topo = std::move(built).value();
    routes = net::RouteTable(&topo);
    fabric = std::make_unique<net::Fabric>(&simulator, &topo, &routes);
    fabric->set_alloc_mode(mode);
  }
};

// Closed-loop storm: every host pair keeps exactly one flow in flight and
// starts the next generation the instant the previous one completes, so the
// live fleet stays at pair-count flows while arrivals/departures churn the
// allocation continuously. Returns an FNV-1a digest over completion times so
// the two allocation modes can be cross-checked for exact agreement.
struct Storm {
  PodFleet* fleet = nullptr;
  int generations = 0;
  std::uint64_t digest = 0xcbf29ce484222325ull;
  std::uint64_t done = 0;
  std::vector<util::Rng> pair_rng;  // per-pair size stream, mode-independent

  void start_next(std::size_t pair, int generation) {
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(pair_rng[pair].uniform_int(10, 40)) *
        util::kMB;
    net::FlowOptions options;
    options.charge_slow_start = false;
    auto flow = fleet->fabric->start_flow(
        fleet->a[pair], fleet->b[pair], bytes,
        [this, pair, generation](const net::FlowStats& stats) {
          const double duration = stats.duration_s();
          const unsigned char* raw =
              reinterpret_cast<const unsigned char*>(&duration);
          for (std::size_t i = 0; i < sizeof duration; ++i) {
            digest ^= raw[i];
            digest *= 0x100000001b3ull;
          }
          ++done;
          if (generation + 1 < generations) start_next(pair, generation + 1);
        },
        options);
    if (!flow.ok()) {
      std::fprintf(stderr, "storm start_flow failed: %s\n",
                   flow.error().message.c_str());
      std::exit(1);
    }
  }
};

std::uint64_t run_storm(PodFleet& fleet, int generations,
                        std::uint64_t* completed) {
  util::Rng rng(7);
  Storm storm;
  storm.fleet = &fleet;
  storm.generations = generations;
  storm.pair_rng.reserve(fleet.a.size());
  for (std::size_t pair = 0; pair < fleet.a.size(); ++pair) {
    storm.pair_rng.push_back(rng.fork(pair));
    // Stagger generation 0 so pods never start in lockstep.
    fleet.simulator.schedule_at(rng.uniform(0.0, 2.0), [&storm, pair] {
      storm.start_next(pair, 0);
    });
  }
  fleet.simulator.run();
  *completed = storm.done;
  return storm.digest;
}

double wall_ms(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

DROUTE_BENCH(realloc_flows_100, "ms") {
  const int kRepeatsPerSample = ctx.quick() ? 1 : 20;
  // One pod, 100 flows sharing one bottleneck: the densest component the
  // full water-fill has to chew through per event at paper scale.
  auto fleet = std::make_shared<PodFleet>(1, 100,
                                          net::Fabric::AllocMode::kIncremental);
  net::FlowOptions options;
  options.charge_slow_start = false;
  for (std::size_t i = 0; i < fleet->a.size(); ++i) {
    auto flow = fleet->fabric->start_flow(fleet->a[i], fleet->b[i],
                                          1000 * util::kMB, {}, options);
    if (!flow.ok()) std::exit(1);
  }
  ctx.set_events(kRepeatsPerSample);
  ctx.extra("flows", static_cast<double>(fleet->a.size()));
  ctx.set_work([fleet, kRepeatsPerSample] {
    for (int i = 0; i < kRepeatsPerSample; ++i) {
      fleet->fabric->reallocate_now();
    }
  });
}

DROUTE_BENCH(realloc_flows_1000, "ms") {
  const int kRepeatsPerSample = ctx.quick() ? 1 : 5;
  auto fleet = std::make_shared<PodFleet>(1, 1000,
                                          net::Fabric::AllocMode::kIncremental);
  net::FlowOptions options;
  options.charge_slow_start = false;
  for (std::size_t i = 0; i < fleet->a.size(); ++i) {
    auto flow = fleet->fabric->start_flow(fleet->a[i], fleet->b[i],
                                          1000 * util::kMB, {}, options);
    if (!flow.ok()) std::exit(1);
  }
  ctx.set_events(kRepeatsPerSample);
  ctx.extra("flows", static_cast<double>(fleet->a.size()));
  ctx.set_work([fleet, kRepeatsPerSample] {
    for (int i = 0; i < kRepeatsPerSample; ++i) {
      fleet->fabric->reallocate_now();
    }
  });
}

DROUTE_BENCH(event_queue_ops, "ms") {
  const int kEvents = ctx.quick() ? 1000 : 100000;
  ctx.set_events(kEvents);
  ctx.set_work([kEvents] {
    sim::Simulator simulator;
    util::Rng rng(11);
    std::vector<sim::EventId> cancellable;
    cancellable.reserve(static_cast<std::size_t>(kEvents) / 4);
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < kEvents; ++i) {
      const sim::EventId id = simulator.schedule_at(
          rng.uniform(0.0, 1000.0), [&sink] { sink = sink + 1; });
      if (i % 4 == 0) cancellable.push_back(id);
    }
    for (const sim::EventId id : cancellable) simulator.cancel(id);
    simulator.run();
  });
}

DROUTE_BENCH(churn_storm_100x, "ms") {
  // Paper scale is ~6 concurrent flows (one foreground + five cross-traffic
  // sources); 100x = 600 concurrent across 60 independent pods. The storm is
  // closed-loop, so all 600 stay in flight for the whole run.
  const int pods = ctx.quick() ? 6 : 60;
  const int hosts_per_pod = 10;
  const int generations = ctx.quick() ? 2 : 8;

  // Full-recompute baseline (the retained reference allocator), untimed by
  // the harness: one storm, wall-clocked here for the speedup ratio.
  auto t0 = std::chrono::steady_clock::now();
  PodFleet full(pods, hosts_per_pod, net::Fabric::AllocMode::kFullRecompute);
  std::uint64_t full_completed = 0;
  const std::uint64_t full_digest = run_storm(full, generations, &full_completed);
  const double full_ms = wall_ms(t0);

  t0 = std::chrono::steady_clock::now();
  PodFleet probe(pods, hosts_per_pod, net::Fabric::AllocMode::kIncremental);
  std::uint64_t probe_completed = 0;
  const std::uint64_t probe_digest = run_storm(probe, generations, &probe_completed);
  const double incremental_ms = wall_ms(t0);

  // A storm that diverges across modes would be benchmarking a bug.
  if (probe_digest != full_digest || probe_completed != full_completed) {
    std::fprintf(stderr,
                 "churn storm diverged across alloc modes "
                 "(digest %016llx vs %016llx)\n",
                 static_cast<unsigned long long>(probe_digest),
                 static_cast<unsigned long long>(full_digest));
    std::exit(1);
  }

  ctx.set_events(static_cast<double>(probe_completed));
  ctx.extra("fleet_flows", static_cast<double>(pods * hosts_per_pod));
  ctx.extra("full_recompute_ms", full_ms);
  ctx.extra("speedup_vs_full",
            incremental_ms > 0.0 ? full_ms / incremental_ms : 0.0);
  ctx.set_work([pods, hosts_per_pod, generations] {
    PodFleet fleet(pods, hosts_per_pod, net::Fabric::AllocMode::kIncremental);
    std::uint64_t completed = 0;
    run_storm(fleet, generations, &completed);
  });
}

}  // namespace
}  // namespace droute::bench

int main(int argc, char** argv) {
  return droute::bench::bench_main(argc, argv, "BENCH_fabric.json");
}
