// Ablation: store-and-forward (the paper's detour) vs pipelined relay (our
// extension) on UBC -> UAlberta -> Google Drive.
#include <cstdio>

#include "common.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace droute;
  std::printf("=== Ablation: store-and-forward vs pipelined detour ===\n");
  std::printf("UBC -> UAlberta -> Google Drive, single deterministic run\n\n");

  util::TextTable table({"File size (MB)", "store-and-forward (s)",
                         "pipelined (s)", "improvement"});
  for (const std::uint64_t bytes : scenario::paper_file_sizes_bytes()) {
    scenario::WorldConfig config;
    config.cross_traffic = false;
    auto saf_world = scenario::World::create(config);
    const auto saf = saf_world->run_upload(
        scenario::Client::kUBC, cloud::ProviderKind::kGoogleDrive,
        scenario::RouteChoice::kViaUAlberta, bytes,
        transfer::DetourMode::kStoreAndForward);
    auto pipe_world = scenario::World::create(config);
    const auto pipe = pipe_world->run_upload(
        scenario::Client::kUBC, cloud::ProviderKind::kGoogleDrive,
        scenario::RouteChoice::kViaUAlberta, bytes,
        transfer::DetourMode::kPipelined);
    if (!saf.ok() || !pipe.ok()) {
      std::fprintf(stderr, "run failed\n");
      return 1;
    }
    table.add_row({util::fmt_mb(bytes), util::fmt_seconds(saf.value()),
                   util::fmt_seconds(pipe.value()),
                   util::fmt_percent((saf.value() - pipe.value()) /
                                     saf.value())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Pipelining overlaps the rsync leg with the API leg; the total\n"
              "approaches max(leg1, leg2) instead of leg1 + leg2.\n");
  return 0;
}
