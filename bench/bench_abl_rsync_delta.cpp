// Ablation: what if the DTN kept a stale copy? The paper deletes files
// before each run (no delta benefit, Sec II); this bench quantifies what
// that choice leaves on the table, using the real rsync algorithm on real
// buffers across overlap levels.
#include <cstdio>

#include "rsyncx/session.h"
#include "util/blob.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace droute;
  std::printf("=== Ablation: rsync delta vs full send (stale DTN copy) ===\n");
  std::printf("Real rsync algorithm on 8 MB random files; mutations flip\n"
              "whole regions to emulate partial re-uploads.\n\n");

  constexpr std::size_t kFile = 8 * 1000 * 1000;
  util::Rng rng(7);
  const util::Blob target = util::make_random_blob(rng, kFile);

  util::TextTable table({"basis state", "forward bytes", "reverse bytes",
                         "bytes saved", "delta ops"});
  const struct {
    const char* label;
    double stale_fraction;  // fraction of the basis that differs
    bool has_basis;
  } cases[] = {
      {"no basis (paper's runs)", 1.0, false},
      {"identical basis", 0.0, true},
      {"1% changed", 0.01, true},
      {"10% changed", 0.10, true},
      {"50% changed", 0.50, true},
  };

  for (const auto& c : cases) {
    std::optional<util::Blob> basis;
    if (c.has_basis) {
      basis = target;
      util::Rng mut(99);
      const auto damaged =
          static_cast<std::size_t>(c.stale_fraction * kFile);
      // Damage contiguous regions (worst case spreads damage over every
      // block; contiguous matches a partially re-written file).
      for (std::size_t i = 0; i < damaged; ++i) {
        (*basis)[i] = static_cast<std::uint8_t>(mut.next_u64());
      }
    }
    const auto plan = rsyncx::plan_session(
        target, basis ? std::optional<std::span<const std::uint8_t>>(
                            std::span<const std::uint8_t>(*basis))
                      : std::nullopt);
    const double saved =
        1.0 - static_cast<double>(plan.forward_wire_bytes) /
                  static_cast<double>(kFile);
    table.add_row({c.label, std::to_string(plan.forward_wire_bytes),
                   std::to_string(plan.reverse_wire_bytes),
                   util::fmt_percent(saved),
                   std::to_string(plan.delta.ops.size())});
    // Prove the plan actually reconstructs.
    auto rebuilt = rsyncx::execute_plan(
        plan, basis ? std::optional<std::span<const std::uint8_t>>(
                          std::span<const std::uint8_t>(*basis))
                    : std::nullopt);
    if (!rebuilt.ok() || rebuilt.value() != target) {
      std::fprintf(stderr, "reconstruction failed for %s\n", c.label);
      return 1;
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("With the paper's delete-before-run methodology the detour\n"
              "pays full freight on leg 1; a persistent DTN cache would\n"
              "amortize repeat uploads dramatically.\n");
  return 0;
}
