// Fig 6: traceroute from UAlberta to the Google Drive server — shares
// vncv1rtr2.canarie.ca with Fig 5 but exits via the direct peering
// (the unresponsive "* * *" hop), skipping PacificWave.
#include <cstdio>

#include "common.h"
#include "trace/traceroute.h"

int main() {
  using namespace droute;
  scenario::WorldConfig config;
  config.cross_traffic = false;
  auto world = scenario::World::create(config);

  std::printf("=== Fig 6: UAlberta -> Google Drive traceroute ===\n\n");
  auto fig6 = world->tracer().trace(
      world->node("cluster.cs.ualberta.ca"),
      world->node("sea15s01-in-f138.1e100.net"));
  if (!fig6.ok()) {
    std::fprintf(stderr, "traceroute failed: %s\n",
                 fig6.error().message.c_str());
    return 1;
  }
  std::printf("%s\n", fig6.value().render(world->topology()).c_str());

  // The Sec III-A comparison: where do Figs 5 and 6 diverge?
  auto fig5 = world->tracer().trace(
      world->node("planetlab1.cs.ubc.ca"),
      world->node("sea15s01-in-f138.1e100.net"));
  const auto diff = trace::Tracer::diff(fig5.value(), fig6.value());
  std::printf("Route comparison against Fig 5 (UBC -> Google Drive):\n");
  if (diff.divergence_point) {
    std::printf("  divergence after : %s\n",
                world->topology().node(*diff.divergence_point).name.c_str());
  }
  std::printf("  UBC-only hops    :");
  for (auto node : diff.only_first) {
    std::printf(" %s", world->topology().node(node).name.c_str());
  }
  std::printf("\n  UAlberta-only    :");
  for (auto node : diff.only_second) {
    std::printf(" %s", world->topology().node(node).name.c_str());
  }
  std::printf("\n");
  return 0;
}
