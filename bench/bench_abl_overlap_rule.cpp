// Ablation: is the paper's conservatism rule (Sec III-B — when a detour's
// error bars overlap direct's, keep direct) actually a good decision rule?
//
// Protocol: an operator measures each route with a SHORT campaign (3 runs —
// cheap but noisy), then commits to a route with and without the overlap
// rule. Ground truth is the long campaign (7 runs, keep 5). Repeated over
// many operator seeds, the mean regret (seconds lost vs the true best
// route) quantifies what the rule buys on the noisy Purdue paths.
#include <cstdio>

#include "common.h"
#include "core/advisor.h"
#include "stats/descriptive.h"
#include "util/table.h"
#include "util/units.h"

namespace {
using namespace droute;

struct Cell {
  cloud::ProviderKind provider;
  std::uint64_t bytes;
};

struct RuleScore {
  double total_regret = 0.0;
  int decisions = 0;
  int picked_detour = 0;
};
}  // namespace

int main() {
  std::printf("=== Ablation: the Sec III-B overlap-conservatism rule ===\n");
  std::printf("Noisy 3-run operator campaigns vs a 7-run oracle, Purdue,\n"
              "20 operator seeds per cell.\n\n");

  const std::vector<Cell> cells = {
      {cloud::ProviderKind::kDropbox, 60 * util::kMB},
      {cloud::ProviderKind::kDropbox, 100 * util::kMB},
      {cloud::ProviderKind::kOneDrive, 60 * util::kMB},
      {cloud::ProviderKind::kOneDrive, 100 * util::kMB},
  };

  util::TextTable table({"cell", "oracle best", "regret w/ rule (s)",
                         "regret w/o rule (s)", "detours w/", "detours w/o"});
  measure::Protocol noisy_protocol;
  noisy_protocol.total_runs = 3;
  noisy_protocol.keep_last = 3;

  for (const Cell& cell : cells) {
    // Oracle: long campaign per route.
    measure::Campaign oracle(droute::bench::bench_seed());
    for (const auto route : scenario::all_routes()) {
      oracle.add_route(scenario::route_name(route),
                       scenario::make_transfer_fn(scenario::Client::kPurdue,
                                                  cell.provider, route));
    }
    std::map<std::string, double> truth;
    std::string best_route;
    double best_time = 1e18;
    for (const auto route : scenario::all_routes()) {
      const auto m = oracle.measure(scenario::route_name(route), cell.bytes);
      truth[scenario::route_name(route)] = m.kept.mean;
      if (m.kept.mean < best_time) {
        best_time = m.kept.mean;
        best_route = scenario::route_name(route);
      }
    }

    RuleScore with_rule, without_rule;
    for (std::uint64_t operator_seed = 1; operator_seed <= 20;
         ++operator_seed) {
      measure::Campaign campaign(operator_seed * 7919);
      for (const auto route : scenario::all_routes()) {
        campaign.add_route(scenario::route_name(route),
                           scenario::make_transfer_fn(scenario::Client::kPurdue,
                                                      cell.provider, route));
      }
      std::vector<core::RouteStats> stats;
      for (const auto route : scenario::all_routes()) {
        core::RouteStats rs;
        rs.key = scenario::route_name(route);
        rs.is_direct = route == scenario::RouteChoice::kDirect;
        rs.summary =
            campaign.measure(rs.key, cell.bytes, noisy_protocol).kept;
        stats.push_back(rs);
      }
      for (bool conservative : {true, false}) {
        core::RouteAdvisor::Options options;
        options.prefer_direct_on_overlap = conservative;
        const auto decision = core::RouteAdvisor(options).recommend(stats);
        RuleScore& score = conservative ? with_rule : without_rule;
        score.total_regret += truth.at(decision.route_key) - best_time;
        ++score.decisions;
        if (decision.route_key != "Direct") ++score.picked_detour;
      }
    }

    table.add_row(
        {cloud::provider_name(cell.provider) + " " +
             util::fmt_mb(cell.bytes) + "MB",
         best_route,
         util::fmt_seconds(with_rule.total_regret / with_rule.decisions),
         util::fmt_seconds(without_rule.total_regret /
                           without_rule.decisions),
         std::to_string(with_rule.picked_detour) + "/20",
         std::to_string(without_rule.picked_detour) + "/20"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: on routes where detours genuinely win (OneDrive), both\n"
      "policies find them; on statistical ties (Dropbox), the overlap rule\n"
      "suppresses flaky detour picks from noisy 3-run campaigns — the\n"
      "paper's \"unsure benefits of the detours\" conservatism, quantified.\n");
  return 0;
}
