// Extension experiment: the download direction (the paper's clients also
// download, Sec II, but its evaluation only reports uploads). With the
// rate-limited-middlebox hypothesis applied symmetrically, the detour
// benefit mirrors Fig 2 — and an asymmetry emerges: via-UMich is viable for
// downloads because the policed CANARIE->Internet2 direction is not crossed.
#include <cstdio>

#include "common.h"
#include "measure/campaign.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/units.h"

int main() {
  using namespace droute;
  std::printf("=== Extension: UBC <- Google Drive downloads ===\n");
  std::printf("Object staged per run; paper protocol (7 runs, keep 5).\n\n");

  measure::Campaign campaign(bench::bench_seed());
  for (const auto route : scenario::all_routes()) {
    campaign.add_route(scenario::route_name(route),
                       scenario::make_download_fn(
                           scenario::Client::kUBC,
                           cloud::ProviderKind::kGoogleDrive, route));
  }
  util::ThreadPool pool;
  const auto grid = campaign.run_grid(scenario::paper_file_sizes_bytes(),
                                      bench::bench_protocol(), &pool);

  util::TextTable table({"File size (MB)", "Direct (s)", "via UAlberta (s)",
                         "via UMich (s)"});
  for (const std::uint64_t bytes : scenario::paper_file_sizes_bytes()) {
    std::vector<std::string> row{util::fmt_mb(bytes)};
    for (const auto route : scenario::all_routes()) {
      const auto& m = grid.at({scenario::route_name(route), bytes});
      row.push_back(util::fmt_seconds(m.kept.mean) + " +/- " +
                    util::fmt_seconds(m.kept.stddev));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: the direct download crosses the policed PacificWave hop in\n"
      "reverse (~85 s / 100 MB); both detours avoid it. Unlike uploads,\n"
      "via-UMich is competitive for downloads — the slow CANARIE->Internet2\n"
      "direction is never traversed toward UBC. Detour choice is\n"
      "direction-dependent, reinforcing the paper's point that it is\n"
      "multi-dimensional (Sec III-B).\n");
  return 0;
}
