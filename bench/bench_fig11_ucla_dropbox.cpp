// Fig 11: UCLA -> Dropbox — same last-mile story as Fig 10.
#include "common.h"

int main() {
  using namespace droute;
  const auto series =
      bench::measure_figure(scenario::Client::kUCLA,
                            cloud::ProviderKind::kDropbox,
                            scenario::paper_file_sizes_bytes());
  bench::print_figure("=== Fig 11: UCLA -> Dropbox ===",
                      scenario::Client::kUCLA, cloud::ProviderKind::kDropbox,
                      series);
  return 0;
}
