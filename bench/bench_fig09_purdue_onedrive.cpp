// Fig 9: Purdue -> OneDrive — detours bring more benefit at larger sizes.
#include "common.h"

int main() {
  using namespace droute;
  const auto series =
      bench::measure_figure(scenario::Client::kPurdue,
                            cloud::ProviderKind::kOneDrive,
                            scenario::paper_file_sizes_bytes());
  bench::print_figure("=== Fig 9: Purdue -> OneDrive ===",
                      scenario::Client::kPurdue,
                      cloud::ProviderKind::kOneDrive, series);
  std::printf("Paper's qualitative result: relative gain from detours grows\n"
              "with file size; direct crosses congested commodity transit.\n");
  return 0;
}
