#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "obs/export.h"
#include "obs/recorder.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace droute::bench {

namespace {

// Observability session shared by every bench that links this harness: when
// --trace-out/--metrics-out (or DROUTE_TRACE_OUT/DROUTE_METRICS_OUT) name an
// output path, a Recorder is installed for the binary's whole lifetime and
// the exports are written at exit. Bench mains ignore argv, so the flags are
// read from /proc/self/cmdline; the env vars work on every platform.
class TraceSession {
 public:
  TraceSession()
      : trace_path_(option_value("DROUTE_TRACE_OUT", "--trace-out")),
        metrics_path_(option_value("DROUTE_METRICS_OUT", "--metrics-out")) {
    if (trace_path_.empty() && metrics_path_.empty()) return;
    recorder_ = std::make_unique<obs::Recorder>();
    obs::set_recorder(recorder_.get());
  }

  ~TraceSession() {
    if (recorder_ == nullptr) return;
    obs::set_recorder(nullptr);
    if (!trace_path_.empty()) {
      report("trace", trace_path_,
             obs::write_file(trace_path_, obs::chrome_trace_json(*recorder_)));
    }
    if (!metrics_path_.empty()) {
      report("metrics", metrics_path_,
             obs::write_file(metrics_path_,
                             obs::metrics_csv(recorder_->metrics())));
    }
  }

 private:
  static void report(const char* what, const std::string& path,
                     const util::Status& status) {
    if (status.ok()) {
      std::fprintf(stderr, "[obs] wrote %s to %s\n", what, path.c_str());
    } else {
      std::fprintf(stderr, "[obs] FAILED writing %s to %s: %s\n", what,
                   path.c_str(), status.error().message.c_str());
    }
  }

  // Env var wins; otherwise scan the command line for `--flag path` or
  // `--flag=path`.
  static std::string option_value(const char* env, const std::string& flag) {
    if (const char* value = std::getenv(env); value != nullptr && *value) {
      return value;
    }
#ifdef __linux__
    std::ifstream cmdline("/proc/self/cmdline", std::ios::binary);
    std::string raw((std::istreambuf_iterator<char>(cmdline)),
                    std::istreambuf_iterator<char>());
    std::vector<std::string> argv;
    for (std::size_t pos = 0; pos < raw.size();) {
      const std::size_t end = raw.find('\0', pos);
      argv.push_back(raw.substr(pos, end - pos));
      if (end == std::string::npos) break;
      pos = end + 1;
    }
    for (std::size_t i = 0; i < argv.size(); ++i) {
      if (argv[i] == flag && i + 1 < argv.size()) return argv[i + 1];
      const std::string prefix = flag + "=";
      if (argv[i].rfind(prefix, 0) == 0) return argv[i].substr(prefix.size());
    }
#endif
    return {};
  }

  std::string trace_path_;
  std::string metrics_path_;
  std::unique_ptr<obs::Recorder> recorder_;
};

TraceSession g_trace_session;

}  // namespace

std::uint64_t bench_seed() {
  if (const char* env = std::getenv("DROUTE_BENCH_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 2016;  // the paper's publication year, for flavour
}

measure::Protocol bench_protocol() {
  measure::Protocol protocol;  // 7 runs, keep last 5 (the paper's Sec II)
  if (const char* env = std::getenv("DROUTE_BENCH_RUNS")) {
    protocol.total_runs = std::atoi(env);
    protocol.keep_last = std::min(protocol.keep_last, protocol.total_runs);
  }
  return protocol;
}

std::vector<RouteSeries> measure_figure(
    scenario::Client client, cloud::ProviderKind provider,
    const std::vector<std::uint64_t>& sizes) {
  measure::Campaign campaign(bench_seed());
  for (const auto route : scenario::all_routes()) {
    campaign.add_route(scenario::route_name(route),
                       scenario::make_transfer_fn(client, provider, route));
  }
  util::ThreadPool pool;
  const auto grid = campaign.run_grid(sizes, bench_protocol(), &pool);

  // Pool execution stats as gauges (satisfies "how parallel was the
  // campaign?" without attaching a profiler).
  if (obs::enabled()) {
    const util::ThreadPool::Stats stats = pool.stats();
    obs::set(obs::gauge("measure.pool_threads"),
             static_cast<double>(pool.thread_count()));
    obs::set(obs::gauge("measure.pool_tasks_executed"),
             static_cast<double>(stats.executed));
    obs::set(obs::gauge("measure.pool_queue_peak"),
             static_cast<double>(stats.peak_queued));
  }

  std::vector<RouteSeries> out;
  for (const auto route : scenario::all_routes()) {
    RouteSeries series;
    series.route = route;
    for (const std::uint64_t bytes : sizes) {
      series.by_size[bytes] =
          grid.at({scenario::route_name(route), bytes});
    }
    out.push_back(std::move(series));
  }
  return out;
}

void print_figure(const std::string& title, scenario::Client client,
                  cloud::ProviderKind provider,
                  const std::vector<RouteSeries>& series) {
  std::printf("%s\n", title.c_str());
  std::printf("Upload from %s to %s — mean of last 5 of 7 runs, +/- 1 sd\n\n",
              scenario::client_name(client).c_str(),
              cloud::provider_name(provider).c_str());

  std::vector<std::string> header{"File size (MB)"};
  for (const auto& s : series) {
    header.push_back(scenario::route_name(s.route) + " (s)");
  }
  util::TextTable table(header);
  for (const auto& [bytes, unused] : series.front().by_size) {
    (void)unused;
    std::vector<std::string> row{util::fmt_mb(bytes)};
    for (const auto& s : series) {
      const auto& m = s.by_size.at(bytes);
      row.push_back(util::fmt_seconds(m.kept.mean) + " +/- " +
                    util::fmt_seconds(m.kept.stddev));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  // CSV block for plotting.
  util::TextTable csv(header);
  for (const auto& [bytes, unused] : series.front().by_size) {
    (void)unused;
    std::vector<std::string> row{util::fmt_mb(bytes)};
    for (const auto& s : series) {
      row.push_back(util::fmt_double(s.by_size.at(bytes).kept.mean, 4));
    }
    csv.add_row(std::move(row));
  }
  std::printf("CSV:\n%s\n", csv.render_csv().c_str());
}

void print_percent_table(const std::string& title,
                         const std::vector<RouteSeries>& series) {
  std::printf("%s\n\n", title.c_str());
  const RouteSeries* direct = nullptr;
  for (const auto& s : series) {
    if (s.route == scenario::RouteChoice::kDirect) direct = &s;
  }
  if (direct == nullptr) return;

  std::vector<std::string> header{"File size (MB)", "Direct (s)"};
  for (const auto& s : series) {
    if (s.route == scenario::RouteChoice::kDirect) continue;
    header.push_back(scenario::route_name(s.route) + " (s) [%]");
  }
  util::TextTable table(header);
  for (const auto& [bytes, m_direct] : direct->by_size) {
    std::vector<std::string> row{util::fmt_mb(bytes),
                                 util::fmt_seconds(m_direct.kept.mean)};
    for (const auto& s : series) {
      if (s.route == scenario::RouteChoice::kDirect) continue;
      const auto& m = s.by_size.at(bytes);
      const double gain =
          m_direct.kept.mean > 0
              ? (m.kept.mean - m_direct.kept.mean) / m_direct.kept.mean
              : 0.0;
      row.push_back(util::fmt_seconds(m.kept.mean) + " [" +
                    util::fmt_percent(gain) + "]");
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
}

void print_paper_comparison(const std::string& caption,
                            const std::vector<PaperRow>& paper,
                            const std::vector<RouteSeries>& series) {
  std::printf("%s\n\n", caption.c_str());
  auto series_for = [&](scenario::RouteChoice route) -> const RouteSeries* {
    for (const auto& s : series) {
      if (s.route == route) return &s;
    }
    return nullptr;
  };
  const RouteSeries* direct = series_for(scenario::RouteChoice::kDirect);
  const RouteSeries* via_ua = series_for(scenario::RouteChoice::kViaUAlberta);
  const RouteSeries* via_um = series_for(scenario::RouteChoice::kViaUMich);

  util::TextTable table({"MB", "paper direct", "ours direct", "paper via UA",
                         "ours via UA", "paper via UMich", "ours via UMich"});
  for (const PaperRow& row : paper) {
    const std::uint64_t bytes = row.mb * util::kMB;
    table.add_row({std::to_string(row.mb), util::fmt_seconds(row.direct_s),
                   util::fmt_seconds(direct->by_size.at(bytes).kept.mean),
                   util::fmt_seconds(row.via_ua_s),
                   util::fmt_seconds(via_ua->by_size.at(bytes).kept.mean),
                   util::fmt_seconds(row.via_umich_s),
                   util::fmt_seconds(via_um->by_size.at(bytes).kept.mean)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace droute::bench
