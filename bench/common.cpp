#include "common.h"

#include <cstdio>
#include <cstdlib>

#include "util/table.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace droute::bench {

std::uint64_t bench_seed() {
  if (const char* env = std::getenv("DROUTE_BENCH_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 2016;  // the paper's publication year, for flavour
}

measure::Protocol bench_protocol() {
  measure::Protocol protocol;  // 7 runs, keep last 5 (the paper's Sec II)
  if (const char* env = std::getenv("DROUTE_BENCH_RUNS")) {
    protocol.total_runs = std::atoi(env);
    protocol.keep_last = std::min(protocol.keep_last, protocol.total_runs);
  }
  return protocol;
}

std::vector<RouteSeries> measure_figure(
    scenario::Client client, cloud::ProviderKind provider,
    const std::vector<std::uint64_t>& sizes) {
  measure::Campaign campaign(bench_seed());
  for (const auto route : scenario::all_routes()) {
    campaign.add_route(scenario::route_name(route),
                       scenario::make_transfer_fn(client, provider, route));
  }
  util::ThreadPool pool;
  const auto grid = campaign.run_grid(sizes, bench_protocol(), &pool);

  std::vector<RouteSeries> out;
  for (const auto route : scenario::all_routes()) {
    RouteSeries series;
    series.route = route;
    for (const std::uint64_t bytes : sizes) {
      series.by_size[bytes] =
          grid.at({scenario::route_name(route), bytes});
    }
    out.push_back(std::move(series));
  }
  return out;
}

void print_figure(const std::string& title, scenario::Client client,
                  cloud::ProviderKind provider,
                  const std::vector<RouteSeries>& series) {
  std::printf("%s\n", title.c_str());
  std::printf("Upload from %s to %s — mean of last 5 of 7 runs, +/- 1 sd\n\n",
              scenario::client_name(client).c_str(),
              cloud::provider_name(provider).c_str());

  std::vector<std::string> header{"File size (MB)"};
  for (const auto& s : series) {
    header.push_back(scenario::route_name(s.route) + " (s)");
  }
  util::TextTable table(header);
  for (const auto& [bytes, unused] : series.front().by_size) {
    (void)unused;
    std::vector<std::string> row{util::fmt_mb(bytes)};
    for (const auto& s : series) {
      const auto& m = s.by_size.at(bytes);
      row.push_back(util::fmt_seconds(m.kept.mean) + " +/- " +
                    util::fmt_seconds(m.kept.stddev));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  // CSV block for plotting.
  util::TextTable csv(header);
  for (const auto& [bytes, unused] : series.front().by_size) {
    (void)unused;
    std::vector<std::string> row{util::fmt_mb(bytes)};
    for (const auto& s : series) {
      row.push_back(util::fmt_double(s.by_size.at(bytes).kept.mean, 4));
    }
    csv.add_row(std::move(row));
  }
  std::printf("CSV:\n%s\n", csv.render_csv().c_str());
}

void print_percent_table(const std::string& title,
                         const std::vector<RouteSeries>& series) {
  std::printf("%s\n\n", title.c_str());
  const RouteSeries* direct = nullptr;
  for (const auto& s : series) {
    if (s.route == scenario::RouteChoice::kDirect) direct = &s;
  }
  if (direct == nullptr) return;

  std::vector<std::string> header{"File size (MB)", "Direct (s)"};
  for (const auto& s : series) {
    if (s.route == scenario::RouteChoice::kDirect) continue;
    header.push_back(scenario::route_name(s.route) + " (s) [%]");
  }
  util::TextTable table(header);
  for (const auto& [bytes, m_direct] : direct->by_size) {
    std::vector<std::string> row{util::fmt_mb(bytes),
                                 util::fmt_seconds(m_direct.kept.mean)};
    for (const auto& s : series) {
      if (s.route == scenario::RouteChoice::kDirect) continue;
      const auto& m = s.by_size.at(bytes);
      const double gain =
          m_direct.kept.mean > 0
              ? (m.kept.mean - m_direct.kept.mean) / m_direct.kept.mean
              : 0.0;
      row.push_back(util::fmt_seconds(m.kept.mean) + " [" +
                    util::fmt_percent(gain) + "]");
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
}

void print_paper_comparison(const std::string& caption,
                            const std::vector<PaperRow>& paper,
                            const std::vector<RouteSeries>& series) {
  std::printf("%s\n\n", caption.c_str());
  auto series_for = [&](scenario::RouteChoice route) -> const RouteSeries* {
    for (const auto& s : series) {
      if (s.route == route) return &s;
    }
    return nullptr;
  };
  const RouteSeries* direct = series_for(scenario::RouteChoice::kDirect);
  const RouteSeries* via_ua = series_for(scenario::RouteChoice::kViaUAlberta);
  const RouteSeries* via_um = series_for(scenario::RouteChoice::kViaUMich);

  util::TextTable table({"MB", "paper direct", "ours direct", "paper via UA",
                         "ours via UA", "paper via UMich", "ours via UMich"});
  for (const PaperRow& row : paper) {
    const std::uint64_t bytes = row.mb * util::kMB;
    table.add_row({std::to_string(row.mb), util::fmt_seconds(row.direct_s),
                   util::fmt_seconds(direct->by_size.at(bytes).kept.mean),
                   util::fmt_seconds(row.via_ua_s),
                   util::fmt_seconds(via_ua->by_size.at(bytes).kept.mean),
                   util::fmt_seconds(row.via_umich_s),
                   util::fmt_seconds(via_um->by_size.at(bytes).kept.mean)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace droute::bench
