// Ablation: parallel streams vs the routing detour.
//
// The PacificWave bottleneck is a *per-flow* policer, so N parallel streams
// through it get ~N x the per-flow rate — the classic DTN/GridFTP
// mitigation. But the provider upload APIs are strictly sequential
// (server-enforced in-order chunks), so stream parallelism is only available
// on raw host-to-host legs, never on the final API leg. This bench measures
// both halves of that argument on the calibrated scenario.
#include <cstdio>

#include "common.h"
#include "transfer/parallel.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace droute;
  std::printf("=== Ablation: parallel streams vs routing detour ===\n");
  std::printf("100 MB from the UBC PlanetLab node, quiet world.\n\n");

  constexpr std::uint64_t kBytes = 100 * util::kMB;
  scenario::WorldConfig config;
  config.cross_traffic = false;

  // Raw host-to-host push straight through the policed PacificWave path
  // (UBC -> Google front end), with 1..8 streams.
  util::TextTable raw({"streams", "UBC->GDrive raw push (s)",
                       "effective Mbps", "note"});
  for (const int streams : {1, 2, 4, 8}) {
    auto world = scenario::World::create(config);
    transfer::ParallelPushEngine engine(&world->fabric());
    transfer::FileSpec file = transfer::make_file_mb(100, 1);
    transfer::ParallelPushResult result;
    engine.push(world->client_node(scenario::Client::kUBC),
                world->provider_node(cloud::ProviderKind::kGoogleDrive), file,
                streams,
                [&](const transfer::ParallelPushResult& r) { result = r; });
    world->simulator().run();
    if (!result.success) {
      std::fprintf(stderr, "push failed: %s\n", result.error.c_str());
      return 1;
    }
    raw.add_row({std::to_string(streams),
                 util::fmt_seconds(result.duration_s()),
                 util::fmt_double(kBytes * 8e-6 / result.duration_s(), 1),
                 streams == 1 ? "policer-bound (9.3 Mbps/flow)"
                              : "policer defeated per stream"});
  }
  std::printf("%s\n", raw.render().c_str());

  // The real workload must end at the provider *API*, which is sequential:
  // compare the actual alternatives for a 100 MB Google Drive upload.
  util::TextTable api({"strategy", "time (s)", "why"});
  {
    auto world = scenario::World::create(config);
    api.add_row({"direct API upload",
                 util::fmt_seconds(
                     world
                         ->run_upload(scenario::Client::kUBC,
                                      cloud::ProviderKind::kGoogleDrive,
                                      scenario::RouteChoice::kDirect, kBytes)
                         .value()),
                 "sequential chunks through the policer"});
  }
  {
    auto world = scenario::World::create(config);
    api.add_row(
        {"detour via UAlberta (paper)",
         util::fmt_seconds(
             world
                 ->run_upload(scenario::Client::kUBC,
                              cloud::ProviderKind::kGoogleDrive,
                              scenario::RouteChoice::kViaUAlberta, kBytes)
                 .value()),
         "both legs avoid the policer"});
  }
  std::printf("%s\n", api.render().c_str());
  std::printf(
      "Reading: parallel streams *would* defeat the per-flow policer on a\n"
      "raw path (row 2+ of the first table), but Google Drive's resumable\n"
      "upload enforces in-order chunks, so no API client can use them on\n"
      "the last leg. The detour moves the policed segment onto a leg where\n"
      "the client controls the protocol — the paper's mitigation survives\n"
      "the obvious counter-proposal.\n");
  return 0;
}
