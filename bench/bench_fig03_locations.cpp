// Fig 3: Locations of clients, intermediate nodes and cloud-storage servers
// — rendered as an ASCII map from the geolocation registry, plus the
// geographic-detour analysis of Sec III-A.
#include <cstdio>

#include "common.h"
#include "geo/geo.h"

int main() {
  using namespace droute;
  scenario::WorldConfig config;
  config.cross_traffic = false;
  auto world = scenario::World::create(config);

  std::printf("=== Fig 3: Locations of clients, intermediates and servers ===\n\n");

  // Plot only the actors of the study (hosts), not every router.
  geo::Registry actors;
  for (const auto& name :
       {"planetlab1.cs.ubc.ca", "cluster.cs.ualberta.ca",
        "planetlab01.eecs.umich.edu", "planetlab1.cs.purdue.edu",
        "planetlab1.ucla.edu", "sea15s01-in-f138.1e100.net",
        "content.dropboxapi.com", "onedrive-fe.wns.windows.com"}) {
    auto loc = world->registry().lookup(name);
    if (loc) actors.add(*loc);
  }
  std::printf("%s\n", actors.render_map(100, 24).c_str());

  // The Sec III-A geographic-detour numbers.
  const auto ubc = world->registry().lookup("planetlab1.cs.ubc.ca")->coord;
  const auto ua = world->registry().lookup("cluster.cs.ualberta.ca")->coord;
  const auto gd =
      world->registry().lookup("sea15s01-in-f138.1e100.net")->coord;
  std::printf("Geographic analysis (Sec III-A):\n");
  std::printf("  UBC -> Google Drive geodesic        : %7.0f km\n",
              geo::haversine_km(ubc, gd));
  std::printf("  UBC -> UAlberta -> Google Drive     : %7.0f km\n",
              geo::haversine_km(ubc, ua) + geo::haversine_km(ua, gd));
  std::printf("  detour ratio                        : %7.2fx\n",
              geo::detour_ratio(ubc, ua, gd));
  std::printf("  backtrack                           : %7.0f km\n",
              geo::backtrack_km(ubc, ua, gd));
  std::printf("\nYet the *faster* route is the geographic detour — the\n"
              "paper's throughput triangle-inequality violation.\n");
  return 0;
}
