// Real-socket demonstration: a policed direct path vs a relay detour on
// loopback — the mitigation as an actually-running system (DESIGN.md's
// "sockets fine" substitution).
#include <cstdio>

#include "util/blob.h"
#include "util/rng.h"
#include "util/table.h"
#include "wire/client.h"
#include "wire/relay.h"
#include "wire/sink.h"

int main() {
  using namespace droute;
  std::printf("=== Wire: policed direct vs relay detour (real sockets) ===\n");
  std::printf("Sink has two ingress ports: policed at 4 MB/s (the\n"
              "\"PacificWave\" path) and open (the peering path). The relay\n"
              "reaches the open port. Payloads are random (incompressible).\n\n");

  wire::Sink sink;
  auto policed = sink.add_ingress(4e6);
  auto open = sink.add_ingress(0.0);
  if (!policed.ok() || !open.ok() || !sink.start().ok()) {
    std::fprintf(stderr, "sink startup failed\n");
    return 1;
  }
  wire::RelayDaemon relay;  // store-and-forward, like the paper
  auto relay_port = relay.start();
  if (!relay_port.ok()) {
    std::fprintf(stderr, "relay startup failed\n");
    return 1;
  }

  util::TextTable table({"payload (MiB)", "direct policed (s)",
                         "via relay (s)", "speedup", "digest"});
  util::Rng rng(2016);
  for (const std::size_t mib : {8, 16, 32}) {
    const util::Blob payload = util::make_random_blob(rng, mib << 20);
    auto direct = wire::upload_direct(policed.value(), payload);
    auto detour =
        wire::upload_via_relay(relay_port.value(), open.value(), payload);
    if (!direct.ok() || !detour.ok()) {
      std::fprintf(stderr, "upload failed\n");
      return 1;
    }
    table.add_row({std::to_string(mib),
                   util::fmt_seconds(direct.value().seconds, 3),
                   util::fmt_seconds(detour.value().seconds, 3),
                   util::fmt_double(direct.value().seconds /
                                        detour.value().seconds,
                                    1) +
                       "x",
                   direct.value().digest_ok && detour.value().digest_ok
                       ? "ok"
                       : "FAIL"});
  }
  std::printf("%s\n", table.render().c_str());
  relay.stop();
  sink.stop();
  return 0;
}
