// Ablation: does a second detour hop ever pay? The paper restricts itself
// to "one extra hop" (Sec II); this bench measures the scenario's full leg
// matrix and runs the exact multi-hop search with realistic hand-off
// overheads.
#include <cstdio>

#include "common.h"
#include "core/multihop.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace droute;
  std::printf("=== Ablation: one-hop vs multi-hop detours ===\n");
  std::printf("Leg matrix measured at 50 MB (quiet world); hand-off "
              "overhead 0.5 s per relay.\n\n");

  constexpr std::uint64_t kBytes = 50 * util::kMB;
  scenario::WorldConfig config;
  config.cross_traffic = false;

  core::TimeMatrix matrix;
  auto rsync_leg = [&](const std::string& from, const std::string& to) {
    auto world = scenario::World::create(config);
    return world->run_rsync(from, to, kBytes).value();
  };
  const std::map<std::string, std::string> sites = {
      {"UBC", "planetlab1.cs.ubc.ca"},
      {"UAlberta", "cluster.cs.ualberta.ca"},
      {"UMich", "planetlab01.eecs.umich.edu"},
      {"Purdue", "planetlab1.cs.purdue.edu"},
      {"UCLA", "planetlab1.ucla.edu"},
  };
  for (const auto& [a, node_a] : sites) {
    for (const auto& [b, node_b] : sites) {
      if (a == b) continue;
      matrix.set(a, b, rsync_leg(node_a, node_b));
    }
  }
  // Legs into Google Drive from every site.
  for (const auto& [a, node_a] : sites) {
    auto world = scenario::World::create(config);
    bool done = false;
    double elapsed = 0.0;
    world->api_engine(cloud::ProviderKind::kGoogleDrive)
        .upload(world->node(node_a), transfer::make_file_mb(50, 1),
                [&](const transfer::UploadResult& r) {
                  done = true;
                  elapsed = r.success ? r.duration_s() : 1e9;
                });
    world->simulator().run();
    if (done) matrix.set(a, "GDrive", elapsed);
  }
  // Direct client->GDrive entries must use the measured *direct* route,
  // with cross traffic on: congestion is exactly what the direct paths
  // suffer from (quiet legs stay quiet — they ride research networks).
  for (const auto client : scenario::all_clients()) {
    scenario::WorldConfig noisy = config;
    noisy.cross_traffic = true;
    noisy.seed = bench::bench_seed();
    auto world = scenario::World::create(noisy);
    matrix.set(scenario::client_name(client), "GDrive",
               world
                   ->run_upload(client, cloud::ProviderKind::kGoogleDrive,
                                scenario::RouteChoice::kDirect, kBytes)
                   .value());
  }

  util::TextTable table({"Client", "direct (s)", "best 1-hop", "t (s)",
                         "best 2-hop", "t (s)", "2nd hop verdict"});
  for (const auto client : scenario::all_clients()) {
    const std::string src = scenario::client_name(client);
    core::MultiHopOptions o1{.max_extra_hops = 1, .per_hop_overhead_s = 0.5};
    core::MultiHopOptions o2{.max_extra_hops = 2, .per_hop_overhead_s = 0.5};
    const auto direct = matrix.get(src, "GDrive");
    const auto one = core::best_multihop_route(matrix, src, "GDrive", o1);
    const auto two = core::best_multihop_route(matrix, src, "GDrive", o2);
    if (!one.ok() || !two.ok()) continue;
    auto waypoint_str = [](const core::MultiHopRoute& r) {
      if (r.waypoints.empty()) return std::string("(direct)");
      std::string out;
      for (const auto& w : r.waypoints) out += (out.empty() ? "" : "+") + w;
      return out;
    };
    table.add_row({src, util::fmt_seconds(direct),
                   waypoint_str(one.value()),
                   util::fmt_seconds(one.value().total_s),
                   waypoint_str(two.value()),
                   util::fmt_seconds(two.value().total_s),
                   two.value().total_s < one.value().total_s - 1e-9
                       ? "second hop helps"
                       : "one hop suffices"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("The paper's one-extra-hop restriction costs nothing in this\n"
              "topology: every inefficiency is bypassable with one relay,\n"
              "and extra hops only add hand-off overhead.\n");
  return 0;
}
