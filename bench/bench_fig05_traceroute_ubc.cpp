// Fig 5: traceroute from the UBC PlanetLab node to the Google Drive server —
// the policed PacificWave egress is on the path.
#include <cstdio>

#include "common.h"

int main() {
  using namespace droute;
  scenario::WorldConfig config;
  config.cross_traffic = false;
  auto world = scenario::World::create(config);

  std::printf("=== Fig 5: UBC -> Google Drive traceroute ===\n\n");
  auto result = world->tracer().trace(
      world->node("planetlab1.cs.ubc.ca"),
      world->node("sea15s01-in-f138.1e100.net"));
  if (!result.ok()) {
    std::fprintf(stderr, "traceroute failed: %s\n",
                 result.error().message.c_str());
    return 1;
  }
  std::printf("%s\n", result.value().render(world->topology()).c_str());
  std::printf("Note the hop through google-1-lo-std-707.sttlwa.pacificwave.net\n"
              "— the rate-limited egress the paper identifies (Sec III-A).\n");
  return 0;
}
