// Batched TransferEngine perf cases -> BENCH_transfer.json.
//
// The azure-sdk perf-matrix shape (blob_size x num_blobs x concurrency) run
// through transfer::TransferEngine on both backends behind the same API:
//   * sim_*  — SimTransport over a dedicated dumbbell fabric; measures the
//     batch layer + fluid flow machinery end to end in simulated time.
//   * wire_* — WireTransport against a loopback wire::Sink; measures the
//     same submit/settle path with real sockets and per-op worker threads.
// Every case drives one full batch per timed iteration and hard-fails on
// any non-completed request — a bench that drops requests measures a bug.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "harness.h"
#include "net/fabric.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "transfer/batch.h"
#include "transfer/sim_transport.h"
#include "transfer/wire_transport.h"
#include "util/blob.h"
#include "util/rng.h"
#include "util/units.h"
#include "wire/sink.h"

namespace droute::bench {
namespace {

using transfer::BatchOptions;
using transfer::SegmentId;
using transfer::TransferEngine;
using transfer::TransferRequest;

// One dumbbell: src host -- left == right -- dst host. The shared 1 Gbps
// middle link is the bottleneck every stripe of a batch contends on, so
// concurrency caps actually change the flow schedule.
struct SimRig {
  net::Topology topo;
  net::RouteTable routes{nullptr};
  sim::Simulator simulator;
  std::unique_ptr<net::Fabric> fabric;
  std::unique_ptr<transfer::SimTransport> transport;
  std::unique_ptr<TransferEngine> engine;
  net::NodeId src = net::kInvalidNode;
  SegmentId dst = transfer::kInvalidSegment;

  SimRig() {
    net::Topology::Builder builder;
    const net::AsId as = builder.add_as("BENCH");
    const net::NodeId left = builder.add_router(as, "l", {40, -100});
    const net::NodeId right = builder.add_router(as, "r", {40, -99});
    const net::NodeId a = builder.add_host(as, "a", {40, -100});
    const net::NodeId b = builder.add_host(as, "b", {40, -99});
    builder.add_duplex(a, left, 10000, 0.0005);
    builder.add_duplex(right, b, 10000, 0.0005);
    builder.add_duplex(left, right, 1000, 0.01);
    auto built = std::move(builder).build();
    if (!built.ok()) {
      std::fprintf(stderr, "bench rig build failed: %s\n",
                   built.error().message.c_str());
      std::exit(1);
    }
    topo = std::move(built).value();
    routes = net::RouteTable(&topo);
    fabric = std::make_unique<net::Fabric>(&simulator, &topo, &routes);
    transport = std::make_unique<transfer::SimTransport>(fabric.get());
    engine = std::make_unique<TransferEngine>(transport.get());
    src = a;
    dst = engine->ensure_node_segment(b);
  }

  void run_batch(std::uint64_t blob_bytes, int num_blobs,
                 std::size_t concurrency) {
    std::vector<TransferRequest> requests(
        static_cast<std::size_t>(num_blobs));
    for (std::size_t i = 0; i < requests.size(); ++i) {
      requests[i].source_node = src;
      requests[i].target_id = dst;
      requests[i].target_offset = i * blob_bytes;
      requests[i].length = blob_bytes;
      requests[i].charge_slow_start = false;
      requests[i].label = "bench-batch";
    }
    BatchOptions options;
    options.concurrency = concurrency;
    auto batch = engine->submit_batch(std::move(requests), options);
    batch.start();
    simulator.run();
    if (!batch.ok()) {
      std::fprintf(stderr, "sim bench batch failed\n");
      std::exit(1);
    }
  }
};

void sim_case(BenchContext& ctx, std::uint64_t blob_bytes, int num_blobs,
              std::size_t concurrency) {
  const int blobs = ctx.quick() ? std::min(num_blobs, 2) : num_blobs;
  auto rig = std::make_shared<SimRig>();
  ctx.set_events(blobs);
  ctx.extra("blob_bytes", static_cast<double>(blob_bytes));
  ctx.extra("num_blobs", static_cast<double>(blobs));
  ctx.extra("concurrency", static_cast<double>(concurrency));
  ctx.set_work([rig, blob_bytes, blobs, concurrency] {
    rig->run_batch(blob_bytes, blobs, concurrency);
  });
}

// The blob_size axis.
DROUTE_BENCH(sim_blob64k_n32_c0, "ms") { sim_case(ctx, 64 * util::kKB, 32, 0); }
DROUTE_BENCH(sim_blob1m_n8_c0, "ms") { sim_case(ctx, util::kMB, 8, 0); }
DROUTE_BENCH(sim_blob8m_n4_c0, "ms") { sim_case(ctx, 8 * util::kMB, 4, 0); }
// The concurrency axis: same workloads under a stream cap, so settling
// requests start the next pending one inside their completion event.
DROUTE_BENCH(sim_blob64k_n32_c8, "ms") { sim_case(ctx, 64 * util::kKB, 32, 8); }
DROUTE_BENCH(sim_blob1m_n8_c4, "ms") { sim_case(ctx, util::kMB, 8, 4); }
DROUTE_BENCH(sim_blob8m_n4_c2, "ms") { sim_case(ctx, 8 * util::kMB, 4, 2); }

// Loopback wire plane: unpoliced sink ingress, one payload reused by every
// request in the batch (the sink drains and digests each upload).
struct WireRig {
  wire::Sink sink;
  transfer::WireTransport transport;
  std::unique_ptr<TransferEngine> engine;
  SegmentId dst = transfer::kInvalidSegment;
  util::Blob payload;

  explicit WireRig(std::size_t blob_bytes) {
    auto port = sink.add_ingress(0.0);
    if (!port.ok() || !sink.start().ok()) {
      std::fprintf(stderr, "bench sink start failed\n");
      std::exit(1);
    }
    engine = std::make_unique<TransferEngine>(&transport);
    transfer::Segment segment;
    segment.name = "bench-sink";
    segment.wire_port = port.value();
    dst = engine->register_segment(segment);
    util::Rng rng(21);
    payload = util::make_random_blob(rng, blob_bytes);
  }

  ~WireRig() { sink.stop(); }

  void run_batch(int num_blobs, std::size_t concurrency) {
    std::vector<TransferRequest> requests(
        static_cast<std::size_t>(num_blobs));
    for (std::size_t i = 0; i < requests.size(); ++i) {
      requests[i].source = payload.data();
      requests[i].target_id = dst;
      requests[i].target_offset = i * payload.size();
      requests[i].length = payload.size();
      requests[i].label = "bench-wire-batch";
    }
    BatchOptions options;
    options.concurrency = concurrency;
    auto batch = engine->submit_batch(std::move(requests), options);
    if (!batch.wait()) {
      std::fprintf(stderr, "wire bench batch failed\n");
      std::exit(1);
    }
  }
};

void wire_case(BenchContext& ctx, std::size_t blob_bytes, int num_blobs,
               std::size_t concurrency) {
  const int blobs = ctx.quick() ? std::min(num_blobs, 2) : num_blobs;
  auto rig = std::make_shared<WireRig>(blob_bytes);
  ctx.set_events(blobs);
  ctx.extra("blob_bytes", static_cast<double>(blob_bytes));
  ctx.extra("num_blobs", static_cast<double>(blobs));
  ctx.extra("concurrency", static_cast<double>(concurrency));
  ctx.set_work([rig, blobs, concurrency] {
    rig->run_batch(blobs, concurrency);
  });
}

DROUTE_BENCH(wire_blob64k_n8_c0, "ms") { wire_case(ctx, 64 * 1024, 8, 0); }
DROUTE_BENCH(wire_blob256k_n4_c2, "ms") { wire_case(ctx, 256 * 1024, 4, 2); }
DROUTE_BENCH(wire_blob1m_n2_c0, "ms") { wire_case(ctx, 1024 * 1024, 2, 0); }

}  // namespace
}  // namespace droute::bench

int main(int argc, char** argv) {
  return droute::bench::bench_main(argc, argv, "BENCH_transfer.json");
}
