// Fig 4: Upload performance from UBC to Dropbox — direct wins; detours lose.
#include "common.h"

int main() {
  using namespace droute;
  const auto series =
      bench::measure_figure(scenario::Client::kUBC,
                            cloud::ProviderKind::kDropbox,
                            scenario::paper_file_sizes_bytes());
  bench::print_figure("=== Fig 4: UBC -> Dropbox ===", scenario::Client::kUBC,
                      cloud::ProviderKind::kDropbox, series);
  std::printf("Paper's qualitative result: direct upload outperforms both\n"
              "indirect routes via UAlberta and UMich for every file size.\n");
  return 0;
}
