// droute::bench harness — a BenchCase registry with warmup/repeat timing,
// robust stats (median, p95, events/sec) and machine-readable JSON output,
// so the perf trajectory of the simulator accumulates across commits.
//
// Each perf binary registers cases with DROUTE_BENCH and delegates main()
// to bench_main():
//
//   DROUTE_BENCH(realloc_flows_1000, "ms") {
//     // build state once (untimed), then do one iteration of work
//     ctx.set_work([&] { fabric.reallocate_now(); });
//     ctx.set_events(1);                     // events per iteration
//     ctx.extra("flows", 1000.0);            // free-form extra metric
//   }
//
//   int main(int argc, char** argv) {
//     return droute::bench::bench_main(argc, argv, "BENCH_fabric.json");
//   }
//
// The case body runs ONCE per invocation to set everything up; only the
// closure handed to set_work() is timed (warmup + repeats executions).
// Every case must declare the unit of one timed sample ("ms", "ms/realloc",
// ...) — tools/lint.py rejects DROUTE_BENCH registrations without one.
//
// CLI (shared by every perf binary):
//   --list            print case names and units, run nothing
//   --filter SUBSTR   only run cases whose name contains SUBSTR
//   --quick           1 repeat, no warmup, ctx.quick() == true (cases are
//                     expected to shrink their workload) — the bench.smoke
//                     ctest entry uses this to catch harness bitrot
//   --repeats N / --warmup N
//   --json PATH       where to write the report (default: the name passed
//                     to bench_main, in the current directory)
//
// JSON schema "droute-bench-v1" (validated by tools/validate_bench.py):
//   { "schema": "droute-bench-v1", "binary": ..., "quick": bool,
//     "cases": [ { "name", "unit", "warmup", "repeats", "samples_ms": [...],
//                  "median_ms", "p95_ms", "mean_ms", "min_ms", "max_ms",
//                  "events", "events_per_sec", "extras": {...} } ] }
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace droute::bench {

/// Handed to each case body: configures what gets timed and what gets
/// reported. One BenchContext per case per invocation.
class BenchContext {
 public:
  explicit BenchContext(bool quick) : quick_(quick) {}

  /// True under --quick: shrink the workload to smoke-test size.
  bool quick() const { return quick_; }

  /// The closure the harness times (warmup + repeats executions). A case
  /// that never calls set_work() fails the run — an empty measurement is a
  /// harness bug, not a fast case.
  void set_work(std::function<void()> work) { work_ = std::move(work); }

  /// Simulated events (flow completions, realloc calls, scenario runs...)
  /// one execution of the work closure processes; events/sec is derived
  /// from the median sample. 0 (default) suppresses the rate.
  void set_events(double events_per_iteration) {
    events_ = events_per_iteration;
  }

  /// Attaches a named scalar to the case's JSON entry (fleet size, speedup
  /// ratios, ...). Last write per key wins.
  void extra(const std::string& key, double value) { extras_[key] = value; }

 private:
  friend int bench_main(int argc, char** argv,
                        const std::string& default_json);
  bool quick_ = false;
  std::function<void()> work_;
  double events_ = 0.0;
  std::map<std::string, double> extras_;
};

struct BenchCase {
  std::string name;
  std::string unit;  // unit of one timed sample; never empty (lint-enforced)
  void (*body)(BenchContext&) = nullptr;
};

/// Registry of every DROUTE_BENCH in the binary, in registration order.
std::vector<BenchCase>& registry();

/// Registers `c` and returns true (static-initializer hook for the macro).
bool register_case(BenchCase c);

struct BenchStats {
  std::vector<double> samples_ms;
  double median_ms = 0.0;
  double p95_ms = 0.0;
  double mean_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
};

/// Order statistics over `samples_ms` (nearest-rank p95; even-size median
/// averages the middle pair). Exposed for the harness's own tests.
BenchStats summarize(std::vector<double> samples_ms);

/// Runs the registered cases per the CLI and writes `default_json` (or
/// --json PATH). Returns a process exit status.
int bench_main(int argc, char** argv, const std::string& default_json);

}  // namespace droute::bench

/// Registers a bench case. `ident` names the case ("fabric.realloc_1000" is
/// spelled realloc_1000 in code, dots come from the binary's domain); `unit`
/// must be a non-empty string literal describing one timed sample.
#define DROUTE_BENCH(ident, unit)                                         \
  static void droute_bench_body_##ident(::droute::bench::BenchContext&);  \
  static const bool droute_bench_reg_##ident =                            \
      ::droute::bench::register_case(::droute::bench::BenchCase{          \
          #ident, unit, &droute_bench_body_##ident});                     \
  static void droute_bench_body_##ident(                                  \
      [[maybe_unused]] ::droute::bench::BenchContext& ctx)
