// Ablation: probe-based automatic detour selection (DetourPlanner) vs the
// oracle (full measurement). Reports per-cell agreement, the cost of
// probing, and the regret of wrong decisions.
#include <cstdio>

#include "common.h"
#include "core/planner.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace droute;
  std::printf("=== Ablation: automatic detour selection vs oracle ===\n\n");

  util::TextTable table({"Client", "Provider", "planner pick", "oracle pick",
                         "agree", "probe cost (s)", "regret (s)"});
  int agreements = 0, cells = 0;
  constexpr std::uint64_t kTarget = 100 * util::kMB;

  for (const auto client : scenario::all_clients()) {
    for (const auto provider : cloud::all_providers()) {
      // Planner: probes only (2 MB + 10 MB, once each).
      core::DetourPlanner::Options options;
      options.probes_per_size = 1;
      core::DetourPlanner planner(options);
      for (const auto route : scenario::all_routes()) {
        planner.add_candidate(
            scenario::route_name(route),
            scenario::make_transfer_fn(client, provider, route),
            route == scenario::RouteChoice::kDirect);
      }
      const auto report = planner.plan(kTarget);
      if (!report.ok()) {
        std::fprintf(stderr, "planner failed: %s\n",
                     report.error().message.c_str());
        return 1;
      }

      // Oracle: full 7-run measurement at the target size.
      const auto series = bench::measure_figure(client, provider, {kTarget});
      std::string oracle;
      double oracle_time = 1e18;
      std::map<std::string, double> actual;
      for (const auto& s : series) {
        const double mean = s.by_size.at(kTarget).kept.mean;
        actual[scenario::route_name(s.route)] = mean;
        if (mean < oracle_time) {
          oracle_time = mean;
          oracle = scenario::route_name(s.route);
        }
      }
      const bool agree = report.value().decision.route_key == oracle;
      agreements += agree ? 1 : 0;
      ++cells;
      const double regret =
          actual.at(report.value().decision.route_key) - oracle_time;
      table.add_row({scenario::client_name(client),
                     cloud::provider_name(provider),
                     report.value().decision.route_key, oracle,
                     agree ? "yes" : "NO",
                     util::fmt_seconds(report.value().probe_cost_s),
                     util::fmt_seconds(regret)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Agreement: %d/%d cells. The paper stopped at identifying the\n"
              "best detour by hand (Sec III-B); this is the missing selection\n"
              "algorithm, probe budget ~22 MB per (client, provider).\n",
              agreements, cells);
  return 0;
}
