// Extension experiment: an institutional DTN service. A realistic client
// workload (Drago-style sessions) uploads from Purdue to all three providers
// for two simulated hours, once with every job routed directly and once with
// the overlay table holding the paper's best routes. Reports completion-time
// percentiles and makespan — the aggregate value of detour routing, beyond
// single-transfer benchmarks.
#include <cstdio>

#include "common.h"
#include "core/scheduler.h"
#include "measure/workload.h"
#include "stats/histogram.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace droute;

struct PolicyRun {
  double makespan = 0.0;
  stats::Histogram completion{std::vector<double>{
      30.0, 60.0, 120.0, 300.0, 600.0, 1200.0, 2400.0}};
  int failures = 0;
  std::size_t jobs = 0;
};

PolicyRun run_policy(bool use_overlay, std::uint64_t seed) {
  scenario::WorldConfig config;
  config.seed = seed;
  config.cross_traffic = true;
  auto world = scenario::World::create(config);

  core::OverlayTable overlay;
  if (use_overlay) {
    // The paper's Table V conclusions for Purdue: Google Drive detours via
    // UAlberta; Dropbox and OneDrive go direct (Table I main cells).
    core::OverlayEntry entry;
    entry.client = "Purdue";
    entry.provider = "Google Drive";
    entry.route_key = "via UAlberta";
    overlay.install(entry);
  }

  auto launcher = [&world](const core::TransferJob& job,
                           const std::string& route,
                           std::function<void(bool, std::string)> done) {
    cloud::ProviderKind provider = cloud::ProviderKind::kGoogleDrive;
    if (job.provider == "Dropbox") provider = cloud::ProviderKind::kDropbox;
    if (job.provider == "OneDrive") provider = cloud::ProviderKind::kOneDrive;
    transfer::FileSpec file = transfer::make_file_mb(
        std::max<std::uint64_t>(1, job.bytes / util::kMB), 31);
    file.bytes = job.bytes;
    file.name = job.id;
    const auto client = world->client_node(scenario::Client::kPurdue);
    if (route == "Direct") {
      world->api_engine(provider).upload(
          client, file,
          [done](const transfer::UploadResult& r) { done(r.success, r.error); });
    } else {
      world->detour_engine(provider).transfer(
          client,
          world->intermediate_node(scenario::Intermediate::kUAlberta), file,
          [done](const transfer::DetourResult& r) {
            done(r.success, r.error);
          });
    }
  };

  core::BatchScheduler scheduler(
      {.max_concurrent = 2}, [&world] { return world->simulator().now(); },
      launcher);
  scheduler.use_overlay(&overlay);
  scheduler.start();

  // Generate the workload and schedule submissions on the simulator clock.
  measure::WorkloadProfile profile;
  profile.mean_session_interarrival_s = 420.0;
  profile.file_size_mean_mb = 15.0;
  profile.max_bytes = 100 * util::kMB;
  util::Rng rng(seed ^ 0xb47c4);
  const auto items = measure::generate_workload(rng, profile, 7200.0);
  const char* providers[] = {"Google Drive", "Dropbox", "OneDrive"};
  int counter = 0;
  for (const auto& item : items) {
    core::TransferJob job;
    job.id = "job" + std::to_string(counter);
    job.client = "Purdue";
    job.provider = providers[counter % 3];
    job.bytes = item.bytes;
    ++counter;
    world->simulator().schedule_at(
        world->simulator().now() + item.at_s,
        [&scheduler, job] { (void)scheduler.submit(job); });
  }

  // Drive until every job has completed (cross traffic never stops, so run
  // until the scheduler drains after the last submission).
  while (!(scheduler.idle() &&
           scheduler.outcomes().size() == items.size())) {
    if (!world->simulator().step()) break;
    if (world->simulator().now() > 80000.0) break;  // safety
  }

  PolicyRun run;
  run.jobs = scheduler.outcomes().size();
  run.makespan = scheduler.makespan_s();
  for (const auto& outcome : scheduler.outcomes()) {
    if (!outcome.success) {
      ++run.failures;
      continue;
    }
    run.completion.add(outcome.duration_s());
  }
  return run;
}

}  // namespace

int main() {
  std::printf("=== Extension: DTN batch service, direct vs overlay ===\n");
  std::printf("2 h Drago-style workload from Purdue to all providers,\n"
              "concurrency 2, same seed for both policies.\n\n");

  const PolicyRun direct = run_policy(false, droute::bench::bench_seed());
  const PolicyRun overlay = run_policy(true, droute::bench::bench_seed());

  droute::util::TextTable table(
      {"policy", "jobs", "failures", "p50 (s)", "p90 (s)", "p99 (s)",
       "makespan (s)"});
  auto add = [&](const char* name, const PolicyRun& run) {
    table.add_row({name, std::to_string(run.jobs),
                   std::to_string(run.failures),
                   droute::util::fmt_seconds(run.completion.percentile(50)),
                   droute::util::fmt_seconds(run.completion.percentile(90)),
                   droute::util::fmt_seconds(run.completion.percentile(99)),
                   droute::util::fmt_seconds(run.makespan)});
  };
  add("all-direct", direct);
  add("overlay (paper routes)", overlay);
  std::printf("%s\n", table.render().c_str());

  std::printf("completion-time distribution, all-direct:\n%s\n",
              direct.completion.render(40).c_str());
  std::printf("completion-time distribution, overlay:\n%s\n",
              overlay.completion.render(40).c_str());
  std::printf("The overlay's win concentrates in the tail: Google-bound jobs\n"
              "stop queueing behind the congested commodity transit.\n");
  return 0;
}
