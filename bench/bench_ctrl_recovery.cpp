// bench_ctrl_recovery: does the online control plane earn its keep when the
// network misbehaves? Four arms replay the SAME seeded chaos storm — a
// direct-link flap, a policer rewrite on one relay leg, diurnal cross
// traffic on the other — against an identical session schedule:
//
//   static-direct   every session pinned to the direct path (the paper's
//                   default-route baseline),
//   static-via-R1 / static-via-R2
//                   every session pinned to one DTN relay,
//   controller      ctrl::Controller probing, flagging TIVs and steering
//                   online.
//
// The omniscient oracle takes, per session, the best static arm — the
// throughput a scheduler with perfect foresight (but the same path menu)
// would have achieved. The acceptance gate, checked in-binary: controller
// mean throughput >= 70% of the oracle's, while static-direct lands
// materially lower. Emits BENCH_ctrl.json (droute-bench-v1), tracked
// against bench/baselines/BENCH_ctrl.json in nightly CI.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "chaos/injector.h"
#include "chaos/plan.h"
#include "ctrl/controller.h"
#include "ctrl/steering.h"
#include "harness.h"
#include "net/fabric.h"
#include "net/fabric_await.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "util/units.h"

namespace droute::bench {
namespace {

constexpr int kSessions = 24;
constexpr double kSessionSpacingS = 10.0;
constexpr double kFirstSessionS = 5.0;
constexpr std::uint64_t kSessionBytes = 32 * util::kMB;
constexpr double kHorizonS = 400.0;

/// Diamond world: the direct inter-router link is latency-best (so Dijkstra
/// routes onto it) but slow; two DTN relays each ride an independent pair
/// of fast, higher-delay legs. The miniature of the paper's throughput TIV.
struct RecoveryWorld {
  net::Topology topo;
  net::RouteTable routes{nullptr};
  sim::Simulator simulator;
  std::unique_ptr<net::Fabric> fabric;
  net::NodeId client, relay_a, relay_b, provider;
  net::LinkId direct_link, relay_a_leg, relay_b_leg;

  RecoveryWorld() {
    net::Topology::Builder builder;
    const net::AsId as = builder.add_as("AS");
    const net::NodeId rc = builder.add_router(as, "rc", {49, -123});
    const net::NodeId r1 = builder.add_router(as, "r1", {51, -114});
    const net::NodeId r2 = builder.add_router(as, "r2", {42, -83});
    const net::NodeId rp = builder.add_router(as, "rp", {47, -122});
    client = builder.add_host(as, "client", {49, -123});
    relay_a = builder.add_host(as, "relayA", {51, -114});
    relay_b = builder.add_host(as, "relayB", {42, -83});
    provider = builder.add_host(as, "provider", {47, -122});
    builder.add_duplex(client, rc, 10000, 0.0005);
    builder.add_duplex(relay_a, r1, 10000, 0.0005);
    builder.add_duplex(relay_b, r2, 10000, 0.0005);
    builder.add_duplex(provider, rp, 10000, 0.0005);
    direct_link = builder.add_duplex(rc, rp, 25, 0.004);
    builder.add_duplex(rc, r1, 1000, 0.01);
    relay_a_leg = builder.add_duplex(r1, rp, 1000, 0.01);
    builder.add_duplex(rc, r2, 1000, 0.012);
    relay_b_leg = builder.add_duplex(r2, rp, 1000, 0.012);
    auto built = std::move(builder).build();
    if (!built.ok()) {
      std::fprintf(stderr, "recovery topology failed: %s\n",
                   built.error().message.c_str());
      std::exit(1);
    }
    topo = std::move(built).value();
    routes = net::RouteTable(&topo);
    fabric = std::make_unique<net::Fabric>(&simulator, &topo, &routes);
  }
};

/// The seeded storm every arm replays: flap the direct link, police relay
/// A's egress leg, run diurnal cross traffic over relay B's.
chaos::Plan storm(const RecoveryWorld& world) {
  chaos::Plan plan;
  plan.seed = 2016;
  plan.events = {
      {40.0, chaos::EventKind::kLinkFail, world.direct_link, 0.0},
      {60.0, chaos::EventKind::kDiurnalTraffic, world.relay_b_leg, 0.5},
      {80.0, chaos::EventKind::kLinkRestore, world.direct_link, 0.0},
      {100.0, chaos::EventKind::kPolicerRewrite, world.relay_a_leg, 15.0},
      {160.0, chaos::EventKind::kPolicerRewrite, world.relay_a_leg, 0.0},
  };
  return plan;
}

/// One upload session: ask the steering source for a path at start_s, run
/// the legs store-and-forward, record end-to-end goodput (0 on any failed
/// leg) and feed the outcome back.
sim::Task<void> session(sim::Simulator& simulator, net::Fabric& fabric,
                        ctrl::Steering& steering, net::NodeId client,
                        net::NodeId provider, double start_s,
                        double* out_mbps) {
  auto wake = sim::delay_until(simulator, start_s);
  if (!co_await wake) co_return;
  const ctrl::Decision decision = steering.steer(client, kSessionBytes);
  const double start = simulator.now();
  std::vector<net::NodeId> hops;
  hops.push_back(client);
  hops.insert(hops.end(), decision.path.relays.begin(),
              decision.path.relays.end());
  hops.push_back(provider);
  bool ok = decision.routable;
  for (std::size_t i = 0; ok && i + 1 < hops.size(); ++i) {
    net::FlowOptions options;
    options.label = "bench.ctrl_session";
    auto leg =
        net::transfer(fabric, hops[i], hops[i + 1], kSessionBytes, options);
    const auto stats = co_await leg;
    if (!stats.ok() ||
        stats.value().outcome != net::FlowOutcome::kCompleted) {
      ok = false;
    }
  }
  const double elapsed = simulator.now() - start;
  *out_mbps = ok && elapsed > 0.0
                  ? static_cast<double>(kSessionBytes) * 8e-6 / elapsed
                  : 0.0;
  steering.observe_session(client, decision, kSessionBytes, elapsed, ok);
  co_return;
}

enum class Arm { kStaticDirect, kStaticViaA, kStaticViaB, kController };

std::vector<double> run_arm(Arm arm) {
  RecoveryWorld world;
  chaos::Injector injector({&world.simulator, world.fabric.get(), &world.topo,
                            &world.routes, {}});

  std::unique_ptr<ctrl::Controller> controller;
  std::unique_ptr<ctrl::StaticSteering> fixed;
  ctrl::Steering* steering = nullptr;
  switch (arm) {
    case Arm::kStaticDirect:
      fixed = std::make_unique<ctrl::StaticSteering>();
      break;
    case Arm::kStaticViaA:
      fixed = std::make_unique<ctrl::StaticSteering>(
          ctrl::PathSpec{{world.relay_a}});
      break;
    case Arm::kStaticViaB:
      fixed = std::make_unique<ctrl::StaticSteering>(
          ctrl::PathSpec{{world.relay_b}});
      break;
    case Arm::kController: {
      ctrl::ControllerConfig config;
      config.epoch_s = 5.0;
      config.probe_bytes = 2 * util::kMB;
      config.probe_budget_bytes = 16 * util::kMB;
      config.max_relay_hops = 1;
      controller = std::make_unique<ctrl::Controller>(
          world.simulator, *world.fabric, world.routes, config);
      controller->set_provider(world.provider);
      controller->add_client(world.client);
      controller->add_relay(world.relay_a);
      controller->add_relay(world.relay_b);
      injector.set_post_apply([&controller](const chaos::Event& event) {
        controller->on_network_event(chaos::event_kind_name(event.kind));
      });
      controller->start();
      break;
    }
  }
  steering = controller != nullptr
                 ? static_cast<ctrl::Steering*>(controller.get())
                 : fixed.get();

  injector.arm(storm(world));

  std::vector<double> mbps(kSessions, 0.0);
  std::vector<sim::Task<void>> sessions;
  sessions.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    sessions.push_back(session(world.simulator, *world.fabric, *steering,
                               world.client, world.provider,
                               kFirstSessionS + kSessionSpacingS * i,
                               &mbps[static_cast<std::size_t>(i)]));
  }
  world.simulator.run_until(kHorizonS);
  if (controller != nullptr) controller->stop();
  if (controller != nullptr &&
      std::getenv("DROUTE_BENCH_CTRL_DEBUG") != nullptr) {
    std::fprintf(stderr, "%s", controller->trace().serialize().c_str());
  }
  for (auto& task : sessions) {
    if (!task.done()) task.cancel();
  }
  world.simulator.run();
  return mbps;
}

double mean(const std::vector<double>& values) {
  double sum = 0.0;
  for (const double v : values) sum += v;
  return values.empty() ? 0.0 : sum / static_cast<double>(values.size());
}

DROUTE_BENCH(recovery_storm, "ms") {
  ctx.set_events(kSessions * 4);  // four arms replay the session schedule
  ctx.set_work([&ctx] {
    const std::vector<double> direct = run_arm(Arm::kStaticDirect);
    const std::vector<double> via_a = run_arm(Arm::kStaticViaA);
    const std::vector<double> via_b = run_arm(Arm::kStaticViaB);
    const std::vector<double> steered = run_arm(Arm::kController);

    // The omniscient oracle: per session, the best static arm.
    std::vector<double> oracle(kSessions, 0.0);
    for (int i = 0; i < kSessions; ++i) {
      const auto slot = static_cast<std::size_t>(i);
      oracle[slot] =
          std::max({direct[slot], via_a[slot], via_b[slot]});
    }

    if (std::getenv("DROUTE_BENCH_CTRL_DEBUG") != nullptr) {
      for (int i = 0; i < kSessions; ++i) {
        const auto slot = static_cast<std::size_t>(i);
        std::fprintf(stderr,
                     "session %2d t=%5.1f direct=%7.2f viaA=%7.2f "
                     "viaB=%7.2f ctrl=%7.2f\n",
                     i, kFirstSessionS + kSessionSpacingS * i, direct[slot],
                     via_a[slot], via_b[slot], steered[slot]);
      }
    }
    const double oracle_mean = mean(oracle);
    const double ctrl_ratio = mean(steered) / oracle_mean;
    const double direct_ratio = mean(direct) / oracle_mean;
    ctx.extra("sessions", kSessions);
    ctx.extra("oracle_mean_mbps", oracle_mean);
    ctx.extra("ctrl_mean_mbps", mean(steered));
    ctx.extra("direct_mean_mbps", mean(direct));
    ctx.extra("ctrl_vs_oracle_ratio", ctrl_ratio);
    ctx.extra("direct_vs_oracle_ratio", direct_ratio);

    // The acceptance gate: steering must recover >= 70% of what perfect
    // foresight gets, and the static default must be materially worse —
    // otherwise the whole control plane is dead weight.
    if (ctrl_ratio < 0.70) {
      std::fprintf(stderr,
                   "controller recovered only %.1f%% of oracle throughput "
                   "(gate: 70%%)\n",
                   100.0 * ctrl_ratio);
      std::exit(1);
    }
    if (direct_ratio > 0.60) {
      std::fprintf(stderr,
                   "static-direct at %.1f%% of oracle — the storm is not "
                   "punishing the default route (gate: <= 60%%)\n",
                   100.0 * direct_ratio);
      std::exit(1);
    }
  });
}

}  // namespace
}  // namespace droute::bench

int main(int argc, char** argv) {
  return droute::bench::bench_main(argc, argv, "BENCH_ctrl.json");
}
