// Shared harness for the per-figure/per-table bench binaries.
//
// Every bench runs the paper's measurement protocol (7 runs, mean of last 5,
// 1 stddev error bars) over the calibrated scenario and prints (a) the
// paper's reported numbers next to ours, and (b) a CSV block for plotting.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cloud/provider.h"
#include "measure/campaign.h"
#include "scenario/north_america.h"

namespace droute::bench {

/// Campaign seed shared by all benches (the "experiment was run once" view);
/// override with DROUTE_BENCH_SEED for replication studies.
std::uint64_t bench_seed();

/// Number of measurement runs (default: the paper's 7/5 protocol; override
/// with DROUTE_BENCH_RUNS for quick smoke runs).
measure::Protocol bench_protocol();

struct RouteSeries {
  scenario::RouteChoice route;
  std::map<std::uint64_t, measure::Measurement> by_size;  // keyed by bytes
};

/// Measures all three routes for one (client, provider) pair across the
/// paper's file sizes. Runs cells in parallel on a thread pool.
std::vector<RouteSeries> measure_figure(scenario::Client client,
                                        cloud::ProviderKind provider,
                                        const std::vector<std::uint64_t>& sizes);

/// Prints the Fig 2/4/7/8/9/10/11-style series: one row per size, one
/// mean+/-sd column per route, plus a CSV block.
void print_figure(const std::string& title, scenario::Client client,
                  cloud::ProviderKind provider,
                  const std::vector<RouteSeries>& series);

/// Prints the Table II/III format: direct mean plus detour means with
/// relative gain/loss percentages in brackets.
void print_percent_table(const std::string& title,
                         const std::vector<RouteSeries>& series);

/// Expected paper values for side-by-side comparison rows.
struct PaperRow {
  std::uint64_t mb;
  double direct_s;
  double via_ua_s;
  double via_umich_s;
};

void print_paper_comparison(const std::string& caption,
                            const std::vector<PaperRow>& paper,
                            const std::vector<RouteSeries>& series);

}  // namespace droute::bench
