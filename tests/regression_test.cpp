#include <gtest/gtest.h>

#include <vector>

#include "stats/regression.h"
#include "util/rng.h"

namespace droute::stats {
namespace {

TEST(LinearFit, ExactLineRecovered) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 + 0.75 * x);
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.75, 1e-12);
  EXPECT_NEAR(fit.intercept, 2.5, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(10.0), 10.0, 1e-12);
}

TEST(LinearFit, NoisyLineApproximatelyRecovered) {
  util::Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    xs.push_back(x);
    ys.push_back(1.0 + 0.5 * x + rng.normal(0.0, 0.5));
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 0.02);
  EXPECT_NEAR(fit.intercept, 1.0, 1.0);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(LinearFit, DegenerateCases) {
  EXPECT_EQ(fit_linear({}, {}).points, 0u);
  const std::vector<double> one_x{3.0}, one_y{7.0};
  const LinearFit single = fit_linear(one_x, one_y);
  EXPECT_DOUBLE_EQ(single.slope, 0.0);
  EXPECT_DOUBLE_EQ(single.intercept, 7.0);
  // Zero x-variance: flat fit through the mean.
  const std::vector<double> same_x{2.0, 2.0, 2.0}, ys{1.0, 2.0, 3.0};
  const LinearFit flat = fit_linear(same_x, ys);
  EXPECT_DOUBLE_EQ(flat.slope, 0.0);
  EXPECT_DOUBLE_EQ(flat.intercept, 2.0);
}

TEST(LinearFit, LowRSquaredFlagsNonAffineRoutes) {
  // A superlinear (congested-path-like) cost curve must show r^2 visibly
  // below an affine route's.
  std::vector<double> xs, ys_affine, ys_super;
  for (double x = 1.0; x <= 10.0; x += 1.0) {
    xs.push_back(x);
    ys_affine.push_back(2.0 * x);
    ys_super.push_back(0.2 * x * x * x);
  }
  EXPECT_GT(fit_linear(xs, ys_affine).r_squared,
            fit_linear(xs, ys_super).r_squared);
  EXPECT_NEAR(fit_linear(xs, ys_affine).r_squared, 1.0, 1e-12);
}

TEST(LinearFit, SizeMismatchIsLogicError) {
  const std::vector<double> xs{1.0, 2.0}, ys{1.0};
  EXPECT_THROW(fit_linear(xs, ys), std::logic_error);
}

}  // namespace
}  // namespace droute::stats
