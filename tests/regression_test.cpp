#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "measure/campaign.h"
#include "obs/export.h"
#include "obs/recorder.h"
#include "scenario/north_america.h"
#include "stats/regression.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace droute::stats {
namespace {

TEST(LinearFit, ExactLineRecovered) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 + 0.75 * x);
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.75, 1e-12);
  EXPECT_NEAR(fit.intercept, 2.5, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(10.0), 10.0, 1e-12);
}

TEST(LinearFit, NoisyLineApproximatelyRecovered) {
  util::Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    xs.push_back(x);
    ys.push_back(1.0 + 0.5 * x + rng.normal(0.0, 0.5));
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 0.02);
  EXPECT_NEAR(fit.intercept, 1.0, 1.0);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(LinearFit, DegenerateCases) {
  EXPECT_EQ(fit_linear({}, {}).points, 0u);
  const std::vector<double> one_x{3.0}, one_y{7.0};
  const LinearFit single = fit_linear(one_x, one_y);
  EXPECT_DOUBLE_EQ(single.slope, 0.0);
  EXPECT_DOUBLE_EQ(single.intercept, 7.0);
  // Zero x-variance: flat fit through the mean.
  const std::vector<double> same_x{2.0, 2.0, 2.0}, ys{1.0, 2.0, 3.0};
  const LinearFit flat = fit_linear(same_x, ys);
  EXPECT_DOUBLE_EQ(flat.slope, 0.0);
  EXPECT_DOUBLE_EQ(flat.intercept, 2.0);
}

TEST(LinearFit, LowRSquaredFlagsNonAffineRoutes) {
  // A superlinear (congested-path-like) cost curve must show r^2 visibly
  // below an affine route's.
  std::vector<double> xs, ys_affine, ys_super;
  for (double x = 1.0; x <= 10.0; x += 1.0) {
    xs.push_back(x);
    ys_affine.push_back(2.0 * x);
    ys_super.push_back(0.2 * x * x * x);
  }
  EXPECT_GT(fit_linear(xs, ys_affine).r_squared,
            fit_linear(xs, ys_super).r_squared);
  EXPECT_NEAR(fit_linear(xs, ys_affine).r_squared, 1.0, 1e-12);
}

TEST(LinearFit, SizeMismatchIsLogicError) {
  const std::vector<double> xs{1.0, 2.0}, ys{1.0};
  EXPECT_THROW(fit_linear(xs, ys), std::logic_error);
}

}  // namespace
}  // namespace droute::stats

// --- Golden same-seed campaign digests ---------------------------------------
//
// The paper-scale campaign (UBC -> Google Drive, all three routes, the
// paper's seven file sizes, the 7-runs-keep-5 protocol, bench seed 2016) is
// the repro's ground truth: every figure is a projection of this grid. The
// digests below pin the per-component max-min allocator (DESIGN.md §12) and
// must stay byte-identical forever — an allocator change that shifts any
// per-run transfer time by even one ulp invalidates the figure reproductions
// and must show up here, not in a reviewer's plot.
//
// One-time recapture at the incremental-allocator rewrite: the historical
// global water-fill summed its fill deltas across *independent* sharing
// components (the merged delta sequence interleaved UBC measurement flows
// with Purdue cross-traffic milestones), so its floating-point partial sums
// depended on unrelated components, and it eagerly advanced every flow's
// byte progress at every event (N small subtractions instead of one exact
// span per rate change). The per-component fill plus lazy per-flow advance
// — the properties the incremental/full-recompute equivalence suite rests
// on — reorder those sums, shifting per-run times by at most an ulp (all
// 490 tolerance-based figure/calibration tests were unaffected; CSV
// structure is unchanged, only last-digit %.17g digits moved).
//
// On mismatch the test prints the freshly computed digest; only commit an
// update when the behavior change is *intended* and documented (CHANGES.md).
namespace droute {
namespace {

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// Canonical full-precision serialization of a campaign grid: every run of
// every cell at %.17g (round-trip exact), plus the kept statistic. Any
// reordering or renaming of cells changes the bytes on purpose.
std::string campaign_csv(const measure::Campaign& campaign,
                         const measure::Campaign::Grid& grid) {
  std::string out = "route,bytes,runs,failures,mean,stddev\n";
  char buf[512];
  for (const std::string& key : campaign.route_keys()) {
    for (const auto& [cell, m] : grid) {
      if (cell.first != key) continue;
      std::snprintf(buf, sizeof buf, "%s,%" PRIu64 ",%d,%d,%.17g,%.17g\n",
                    key.c_str(), cell.second,
                    static_cast<int>(m.runs.size()), m.failures, m.kept.mean,
                    m.kept.stddev);
      out += buf;
      for (std::size_t i = 0; i < m.runs.size(); ++i) {
        std::snprintf(buf, sizeof buf, "%s,%" PRIu64 ",run%zu,%.17g\n",
                      key.c_str(), cell.second, i, m.runs[i]);
        out += buf;
      }
    }
  }
  return out;
}

measure::Campaign paper_campaign() {
  measure::Campaign campaign(2016);  // bench_seed() default
  for (const auto route : scenario::all_routes()) {
    campaign.add_route(scenario::route_name(route),
                       scenario::make_transfer_fn(
                           scenario::Client::kUBC,
                           cloud::ProviderKind::kGoogleDrive, route));
  }
  return campaign;
}

// Captured from the per-component allocator in its default incremental mode
// (byte-identical to AllocMode::kFullRecompute by the equivalence suite).
constexpr std::uint64_t kCampaignCsvDigest = 0xe14f6b9b82df52deull;
// Captured with the same allocator; covers every exported metric of the
// sequential single-cell campaign (counters, gauges, histograms).
// Recaptured once when fabric.realloc_skipped_total was renamed to
// net.realloc_skipped_total (the metric-prefix lint rule): same values,
// different name and sort position in the CSV.
// Recaptured once for the batched TransferEngine (DESIGN.md §15): every
// chunk PUT now rides a single-request batch, adding the
// transfer.batches_submitted_total / transfer.batch_requests_total counters
// and the transfer.batch_inflight gauge to the export. All pre-existing
// metric values are unchanged, and the campaign CSV digest above is
// untouched — the batch layer adds no sim events.
// Recaptured once for the sharded allocator (DESIGN.md §16): every fabric
// now exports the shard-boundary diagnostics net.shard_batches_total /
// net.shard_fills_total / net.shard_batch_components /
// net.shard_imbalance_ratio. Their values are derived from the fill-batch
// structure alone, so they — and therefore this digest — are identical in
// every AllocMode and at every DROUTE_SHARD_WORKERS worker count; the
// sharded CI leg re-runs this test to prove it. All pre-existing metric
// values and the campaign CSV digest above are untouched.
constexpr std::uint64_t kMetricsCsvDigest = 0x821bf530ef2e5c0full;

TEST(CampaignGolden, PaperScaleCampaignCsvIsByteIdentical) {
  const measure::Campaign campaign = paper_campaign();
  util::ThreadPool pool;
  const auto grid = campaign.run_grid(scenario::paper_file_sizes_bytes(),
                                      measure::Protocol{}, &pool);
  const std::string csv = campaign_csv(campaign, grid);
  const std::uint64_t digest = fnv1a(csv);
  EXPECT_EQ(digest, kCampaignCsvDigest)
      << "campaign CSV drifted; recomputed digest 0x" << std::hex << digest
      << " over " << std::dec << csv.size() << " bytes";
}

TEST(CampaignGolden, MetricsCsvIsByteIdentical) {
  obs::Recorder rec;
  {
    obs::ScopedRecorder install(&rec);
    measure::Campaign campaign(2016);
    campaign.add_route("direct",
                       scenario::make_transfer_fn(
                           scenario::Client::kUBC,
                           cloud::ProviderKind::kGoogleDrive,
                           scenario::RouteChoice::kDirect));
    measure::Protocol protocol;
    protocol.total_runs = 3;
    protocol.keep_last = 2;
    const auto grid =
        campaign.run_grid({10 * util::kMB}, protocol, /*pool=*/nullptr);
    ASSERT_EQ(grid.size(), 1u);
  }
  const std::string csv = obs::metrics_csv(rec.metrics());
  const std::uint64_t digest = fnv1a(csv);
  EXPECT_EQ(digest, kMetricsCsvDigest)
      << "metrics CSV drifted; recomputed digest 0x" << std::hex << digest
      << " over " << std::dec << csv.size() << " bytes";
}

}  // namespace
}  // namespace droute
