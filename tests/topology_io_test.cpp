#include <gtest/gtest.h>

#include "net/routing.h"
#include "net/topology_io.h"
#include "scenario/north_america.h"

#include <fstream>
#include <sstream>

#include "util/rng.h"

namespace droute::net {
namespace {

constexpr const char* kSmallWorld = R"(
# a tiny campus-to-cloud world
as Campus
as Backbone
as Cloud
relate Backbone customer Campus
relate Backbone peer Cloud

node host.campus.edu host Campus 49.26 -123.25 city="Vancouver, BC" tag=planetlab
node r1.backbone.net router Backbone 49.0 -120.0 middlebox=44
node edge.cloud.com router Cloud 47.6 -122.3
node fe.cloud.com host Cloud 37.4 -122.0 city="Mountain View, CA"

link host.campus.edu r1.backbone.net cap=1000 delay_ms=0.5 duplex
link r1.backbone.net edge.cloud.com cap=100 delay_ms=8 policer=9.3 duplex
link edge.cloud.com fe.cloud.com cap=10000 delay_ms=5 loss=0.001 duplex
)";

TEST(TopologyIo, ParsesSmallWorld) {
  auto topo = parse_topology(kSmallWorld);
  ASSERT_TRUE(topo.ok()) << topo.error().message;
  EXPECT_EQ(topo.value().as_count(), 3u);
  EXPECT_EQ(topo.value().node_count(), 4u);
  EXPECT_EQ(topo.value().link_count(), 6u);

  const auto host = topo.value().find_node("host.campus.edu");
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(topo.value().node(*host).tag, "planetlab");
  EXPECT_EQ(topo.value().node(*host).kind, NodeKind::kHost);
  const auto r1 = topo.value().find_node("r1.backbone.net");
  EXPECT_DOUBLE_EQ(topo.value().node(*r1).middlebox_per_flow_mbps, 44.0);
  EXPECT_EQ(topo.value().registry().lookup("host.campus.edu")->city,
            "Vancouver, BC");
}

TEST(TopologyIo, ParsedWorldRoutes) {
  auto topo_result = parse_topology(kSmallWorld);
  ASSERT_TRUE(topo_result.ok());
  Topology topo = std::move(topo_result).value();
  RouteTable routes(&topo);
  const auto host = topo.find_node("host.campus.edu").value();
  const auto fe = topo.find_node("fe.cloud.com").value();
  auto route = routes.route(host, fe);
  ASSERT_TRUE(route.ok()) << route.error().message;
  EXPECT_EQ(route.value().nodes.size(), 4u);
  EXPECT_NEAR(routes.min_policer_mbps(route.value()), 9.3, 1e-9);
  EXPECT_NEAR(routes.path_loss(route.value()), 0.001, 1e-9);
}

TEST(TopologyIo, LineNumberedErrors) {
  const struct {
    const char* doc;
    const char* needle;
  } cases[] = {
      {"frobnicate x\n", "unknown directive"},
      {"as A\nas A\n", "duplicate AS"},
      {"as A\nrelate A friend A\n", "unknown relation"},
      {"relate A customer B\n", "undeclared AS"},
      {"as A\nnode n host A notanumber 0\n", "bad coordinates"},
      {"as A\nnode n host A 0 0 sparkle=yes\n", "unknown node option"},
      {"as A\nnode a host A 0 0\nnode b host A 0 0\n"
       "link a b cap=0 delay_ms=1\n", "cap>0"},
      {"as A\nnode a host A 0 0\nlink a ghost cap=1 delay_ms=1\n",
       "undeclared node"},
      {"as A\nnode a host A 0 0\nnode a host A 0 0\n", "duplicate node"},
  };
  for (const auto& test_case : cases) {
    auto result = parse_topology(test_case.doc);
    ASSERT_FALSE(result.ok()) << test_case.doc;
    EXPECT_NE(result.error().message.find(test_case.needle),
              std::string::npos)
        << result.error().message;
    EXPECT_NE(result.error().message.find("line"), std::string::npos);
  }
}

TEST(TopologyIo, ValidationErrorsSurface) {
  // Inter-AS link without a declared relationship passes parsing but fails
  // Topology::validate().
  const char* doc =
      "as A\nas B\n"
      "node a host A 0 0\nnode b host B 1 1\n"
      "link a b cap=10 delay_ms=1\n";
  auto result = parse_topology(doc);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("validation"), std::string::npos);
}

TEST(TopologyIo, SerializeParseRoundTrip) {
  auto original = parse_topology(kSmallWorld);
  ASSERT_TRUE(original.ok());
  const std::string dumped = serialize_topology(original.value());
  auto reparsed = parse_topology(dumped);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message << "\n" << dumped;
  EXPECT_EQ(reparsed.value().as_count(), original.value().as_count());
  EXPECT_EQ(reparsed.value().node_count(), original.value().node_count());
  EXPECT_EQ(reparsed.value().link_count(), original.value().link_count());
  // Serialization is idempotent after one round trip.
  EXPECT_EQ(serialize_topology(reparsed.value()), dumped);
}

TEST(TopologyIo, ScenarioTopologyRoundTrips) {
  // The full North-America world survives dump + parse with identical
  // structure: the format covers everything the scenario uses.
  scenario::WorldConfig config;
  config.cross_traffic = false;
  config.rate_jitter_cv = 0.0;
  auto world = scenario::World::create(config);
  const std::string dumped = serialize_topology(world->topology());
  auto reparsed = parse_topology(dumped);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
  EXPECT_EQ(reparsed.value().node_count(), world->topology().node_count());
  EXPECT_EQ(reparsed.value().link_count(), world->topology().link_count());
  EXPECT_EQ(reparsed.value().as_count(), world->topology().as_count());

  // Spot-check that routing over the reparsed world matches: UBC -> Google
  // front end crosses PacificWave only with the override installed — here we
  // check the plain BGP route exists and is identical in both worlds.
  Topology reparsed_topo = std::move(reparsed).value();
  RouteTable fresh_routes(&reparsed_topo);
  RouteTable orig_routes(&world->topology());
  const auto src = reparsed_topo.find_node("planetlab1.cs.ubc.ca").value();
  const auto dst =
      reparsed_topo.find_node("sea15s01-in-f138.1e100.net").value();
  auto fresh = fresh_routes.route(src, dst);
  auto orig = orig_routes.route(world->node("planetlab1.cs.ubc.ca"),
                                world->node("sea15s01-in-f138.1e100.net"));
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(orig.ok());
  // Without the scenario's overrides, both take the direct peering; compare
  // hop names (ids may differ across worlds).
  ASSERT_EQ(fresh.value().nodes.size(), orig.value().nodes.size() + 0);
  SUCCEED();
}

TEST(TopologyIo, CommentsAndBlankLinesIgnored) {
  auto topo = parse_topology("# nothing\n\n   \n# more\n");
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo.value().node_count(), 0u);
}

}  // namespace
}  // namespace droute::net

namespace droute::net {
namespace {

TEST(TopologyIo, GoldenScenarioFileParses) {
  // data/north_america.topo is the committed serialization of the scenario
  // (jitter disabled). It must parse and match the live topology's shape —
  // a drift alarm between the code and the documented artifact.
  std::ifstream file(std::string(DROUTE_SOURCE_DIR) +
                     "/data/north_america.topo");
  ASSERT_TRUE(file) << "golden file missing: data/north_america.topo";
  std::ostringstream buffer;
  buffer << file.rdbuf();
  auto parsed = parse_topology(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;

  scenario::WorldConfig config;
  config.cross_traffic = false;
  config.rate_jitter_cv = 0.0;
  auto world = scenario::World::create(config);
  EXPECT_EQ(parsed.value().node_count(), world->topology().node_count());
  EXPECT_EQ(parsed.value().link_count(), world->topology().link_count());
  EXPECT_EQ(parsed.value().as_count(), world->topology().as_count());
  EXPECT_EQ(serialize_topology(parsed.value()),
            serialize_topology(world->topology()));
}

TEST(TopologyIo, FuzzRandomLinesNeverCrash) {
  util::Rng rng(404);
  const char* directives[] = {"as", "relate", "node", "link", "bogus", ""};
  const char* tokens[] = {"A",     "B",    "host",  "router",   "peer",
                          "1.5",   "-3",   "x=y",   "cap=10",   "\"q",
                          "dup",   "#c",   "node",  "delay_ms=1", "loss=2"};
  for (int doc = 0; doc < 200; ++doc) {
    std::string text;
    const int lines = static_cast<int>(rng.uniform_int(1, 12));
    for (int line = 0; line < lines; ++line) {
      text += directives[rng.uniform_int(0, 5)];
      const int n = static_cast<int>(rng.uniform_int(0, 6));
      for (int t = 0; t < n; ++t) {
        text += " ";
        text += tokens[rng.uniform_int(0, 14)];
      }
      text += "\n";
    }
    (void)parse_topology(text);  // must not crash or hang
  }
  SUCCEED();
}

}  // namespace
}  // namespace droute::net
