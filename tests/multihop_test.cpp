#include <gtest/gtest.h>

#include "core/multihop.h"
#include "scenario/north_america.h"
#include "util/units.h"

namespace droute::core {
namespace {

TimeMatrix paper_matrix() {
  // The intro's measured numbers plus extra legs for chain tests.
  TimeMatrix m;
  m.set("UBC", "GDrive", 87.0);
  m.set("UBC", "UAlberta", 19.0);
  m.set("UAlberta", "GDrive", 17.0);
  m.set("UBC", "UMich", 120.0);
  m.set("UMich", "GDrive", 12.0);
  m.set("UAlberta", "UMich", 25.0);
  return m;
}

TEST(MultiHop, ZeroBudgetIsDirect) {
  MultiHopOptions options;
  options.max_extra_hops = 0;
  auto route = best_multihop_route(paper_matrix(), "UBC", "GDrive", options);
  ASSERT_TRUE(route.ok());
  EXPECT_TRUE(route.value().waypoints.empty());
  EXPECT_DOUBLE_EQ(route.value().total_s, 87.0);
}

TEST(MultiHop, OneHopFindsUAlberta) {
  MultiHopOptions options;
  options.max_extra_hops = 1;
  auto route = best_multihop_route(paper_matrix(), "UBC", "GDrive", options);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route.value().waypoints,
            std::vector<std::string>{"UAlberta"});
  EXPECT_DOUBLE_EQ(route.value().total_s, 36.0);
}

TEST(MultiHop, SecondHopWinsWhenLegsJustify) {
  // UBC -> UAlberta (19) -> UMich (25) -> GDrive (12) = 56 > 36, so two hops
  // lose here; craft a matrix where they win.
  TimeMatrix m;
  m.set("A", "D", 100.0);
  m.set("A", "B", 10.0);
  m.set("B", "D", 60.0);
  m.set("B", "C", 10.0);
  m.set("C", "D", 10.0);
  MultiHopOptions options;
  options.max_extra_hops = 2;
  auto route = best_multihop_route(m, "A", "D", options);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route.value().waypoints, (std::vector<std::string>{"B", "C"}));
  EXPECT_DOUBLE_EQ(route.value().total_s, 30.0);
}

TEST(MultiHop, PerHopOverheadDiscouragesChains) {
  TimeMatrix m;
  m.set("A", "D", 35.0);
  m.set("A", "B", 10.0);
  m.set("B", "C", 10.0);
  m.set("C", "D", 10.0);
  MultiHopOptions options;
  options.max_extra_hops = 2;
  options.per_hop_overhead_s = 0.0;
  EXPECT_EQ(best_multihop_route(m, "A", "D", options).value().hops(), 2);
  options.per_hop_overhead_s = 5.0;  // 30 + 10 overhead > 35 direct
  EXPECT_EQ(best_multihop_route(m, "A", "D", options).value().hops(), 0);
}

TEST(MultiHop, FrontierIsMonotoneEnvelope) {
  const auto frontier =
      multihop_frontier(paper_matrix(), "UBC", "GDrive",
                        MultiHopOptions{.max_extra_hops = 2,
                                        .per_hop_overhead_s = 0.0});
  ASSERT_FALSE(frontier.empty());
  // Each entry on the envelope is at least as good as the previous.
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_LE(frontier[i].total_s, frontier[i - 1].total_s + 1e-9);
  }
  EXPECT_DOUBLE_EQ(frontier.front().total_s, 87.0);  // direct
}

TEST(MultiHop, UnreachableIsError) {
  TimeMatrix m;
  m.set("A", "B", 1.0);
  m.set("C", "D", 1.0);
  EXPECT_FALSE(best_multihop_route(m, "A", "D").ok());
}

TEST(MultiHop, NoRelayThroughDestination) {
  // The destination cannot be an intermediate of itself.
  TimeMatrix m;
  m.set("A", "D", 10.0);
  m.set("D", "E", 1.0);
  m.set("E", "D", 1.0);
  auto route = best_multihop_route(m, "A", "D",
                                   MultiHopOptions{.max_extra_hops = 2,
                                                   .per_hop_overhead_s = 0.0});
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route.value().hops(), 0);
  EXPECT_DOUBLE_EQ(route.value().total_s, 10.0);
}

TEST(MultiHop, ScenarioSecondHopNeverBeatsPaperDetour) {
  // Build the scenario's time matrix for 50 MB and confirm the paper's
  // restriction to one hop loses nothing for UBC -> Google Drive: the best
  // 2-hop chain is no better than via-UAlberta alone.
  constexpr std::uint64_t kBytes = 50 * util::kMB;
  scenario::WorldConfig config;
  config.cross_traffic = false;
  TimeMatrix m;
  auto leg = [&](const std::string& from, const std::string& to) {
    auto world = scenario::World::create(config);
    return world->run_rsync(from, to, kBytes).value();
  };
  {
    auto world = scenario::World::create(config);
    m.set("UBC", "GDrive",
          world
              ->run_upload(scenario::Client::kUBC,
                           cloud::ProviderKind::kGoogleDrive,
                           scenario::RouteChoice::kDirect, kBytes)
              .value());
  }
  m.set("UBC", "UAlberta",
        leg("planetlab1.cs.ubc.ca", "cluster.cs.ualberta.ca"));
  m.set("UBC", "UMich",
        leg("planetlab1.cs.ubc.ca", "planetlab01.eecs.umich.edu"));
  m.set("UAlberta", "UMich",
        leg("cluster.cs.ualberta.ca", "planetlab01.eecs.umich.edu"));
  for (const auto& [name, node] :
       std::map<std::string, scenario::Intermediate>{
           {"UAlberta", scenario::Intermediate::kUAlberta},
           {"UMich", scenario::Intermediate::kUMich}}) {
    auto world = scenario::World::create(config);
    bool done = false;
    double elapsed = 0.0;
    world->api_engine(cloud::ProviderKind::kGoogleDrive)
        .upload(world->intermediate_node(node),
                transfer::make_file_mb(50, 1),
                [&](const transfer::UploadResult& r) {
                  done = true;
                  elapsed = r.duration_s();
                });
    world->simulator().run();
    ASSERT_TRUE(done);
    m.set(name, "GDrive", elapsed);
  }

  const auto one_hop = best_multihop_route(
      m, "UBC", "GDrive", MultiHopOptions{.max_extra_hops = 1,
                                          .per_hop_overhead_s = 0.5});
  const auto two_hop = best_multihop_route(
      m, "UBC", "GDrive", MultiHopOptions{.max_extra_hops = 2,
                                          .per_hop_overhead_s = 0.5});
  ASSERT_TRUE(one_hop.ok() && two_hop.ok());
  EXPECT_EQ(one_hop.value().waypoints,
            std::vector<std::string>{"UAlberta"});
  EXPECT_DOUBLE_EQ(two_hop.value().total_s, one_hop.value().total_s);
}

}  // namespace
}  // namespace droute::core
