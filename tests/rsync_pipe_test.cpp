// Real rsync-over-TCP tests: the client -> DTN leg as an actual protocol.
#include <gtest/gtest.h>

#include "util/blob.h"
#include "util/rng.h"
#include "wire/rsync_pipe.h"

namespace droute::wire {
namespace {

util::Blob blob_of(std::uint64_t seed, std::size_t size) {
  util::Rng rng(seed);
  return util::make_random_blob(rng, size);
}

class RsyncPipe : public ::testing::Test {
 protected:
  void SetUp() override {
    auto port = server_.start();
    ASSERT_TRUE(port.ok()) << port.error().message;
    port_ = port.value();
  }
  void TearDown() override { server_.stop(); }

  RsyncServer server_;
  std::uint16_t port_ = 0;
};

TEST_F(RsyncPipe, ColdPushSendsFullContent) {
  const util::Blob data = blob_of(1, 3 * 1000 * 1000);
  auto stats = rsync_push(port_, "file.bin", data);
  ASSERT_TRUE(stats.ok()) << stats.error().message;
  EXPECT_TRUE(stats.value().digest_ok);
  // No basis: the delta is essentially the whole file.
  EXPECT_GT(stats.value().delta_bytes, data.size());
  EXPECT_LT(stats.value().delta_bytes, data.size() + 1000);
  EXPECT_LT(stats.value().signature_bytes, 100u);
  EXPECT_EQ(server_.lookup("file.bin").value(), data);
  EXPECT_EQ(server_.pushes_served(), 1u);
}

TEST_F(RsyncPipe, WarmPushSendsOnlyDelta) {
  util::Blob data = blob_of(2, 2 * 1000 * 1000);
  server_.preload("warm.bin", data);
  data[123456] ^= 0x5a;  // one byte changed since the DTN's copy
  auto stats = rsync_push(port_, "warm.bin", data);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats.value().digest_ok);
  EXPECT_LT(stats.value().delta_bytes, data.size() / 50);
  EXPECT_GT(stats.value().signature_bytes, 1000u);  // real block signatures
  EXPECT_EQ(server_.lookup("warm.bin").value(), data);
}

TEST_F(RsyncPipe, SecondPushReusesStoredBasis) {
  util::Blob v1 = blob_of(3, 1000 * 1000);
  auto first = rsync_push(port_, "doc.bin", v1);
  ASSERT_TRUE(first.ok());
  util::Blob v2 = v1;
  v2.insert(v2.begin() + 500, 99, 0x42);
  auto second = rsync_push(port_, "doc.bin", v2);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().digest_ok);
  EXPECT_LT(second.value().delta_bytes, first.value().delta_bytes / 10);
  EXPECT_EQ(server_.lookup("doc.bin").value(), v2);
}

TEST_F(RsyncPipe, DistinctNamesAreIndependent) {
  const util::Blob a = blob_of(4, 100000);
  const util::Blob b = blob_of(5, 150000);
  ASSERT_TRUE(rsync_push(port_, "a", a).ok());
  ASSERT_TRUE(rsync_push(port_, "b", b).ok());
  EXPECT_EQ(server_.lookup("a").value(), a);
  EXPECT_EQ(server_.lookup("b").value(), b);
  EXPECT_FALSE(server_.lookup("c").has_value());
}

TEST_F(RsyncPipe, ThrottledPushRespectsRate) {
  const util::Blob data = blob_of(6, 2 * 1000 * 1000);
  auto fast = rsync_push(port_, "fast.bin", data);
  auto slow = rsync_push(port_, "slow.bin", data, /*rate=*/2e6);  // 2 MB/s
  ASSERT_TRUE(fast.ok() && slow.ok());
  // 2 MB at 2 MB/s ~= 1 s; loopback is near-instant.
  EXPECT_GT(slow.value().seconds, 0.5);
  EXPECT_LT(fast.value().seconds, slow.value().seconds / 3);
}

TEST_F(RsyncPipe, ConnectToDeadServerFails) {
  RsyncServer other;
  auto port = other.start();
  ASSERT_TRUE(port.ok());
  other.stop();
  const util::Blob data = blob_of(7, 1000);
  EXPECT_FALSE(rsync_push(port.value(), "x", data).ok());
}

}  // namespace
}  // namespace droute::wire
