#include <gtest/gtest.h>

#include "cloud/oauth.h"
#include "cloud/provider.h"
#include "cloud/storage_server.h"
#include "util/units.h"

namespace droute::cloud {
namespace {

// ---------------------------------------------------------------- provider ----

TEST(Provider, NamesAndCatalogue) {
  EXPECT_EQ(all_providers().size(), 3u);
  EXPECT_EQ(provider_name(ProviderKind::kGoogleDrive), "Google Drive");
  EXPECT_EQ(provider_name(ProviderKind::kDropbox), "Dropbox");
  EXPECT_EQ(provider_name(ProviderKind::kOneDrive), "OneDrive");
}

TEST(Provider, ProfilesMatchRealApiShapes) {
  EXPECT_EQ(default_profile(ProviderKind::kGoogleDrive).chunk_bytes,
            8ull * util::kMiB);
  EXPECT_EQ(default_profile(ProviderKind::kOneDrive).chunk_bytes,
            10ull * util::kMiB);
  EXPECT_EQ(default_profile(ProviderKind::kOneDrive).chunk_alignment_bytes,
            320ull * util::kKiB);
  // Dropbox's commit costs an extra round trip.
  EXPECT_GT(default_profile(ProviderKind::kDropbox).finalize_rtts,
            default_profile(ProviderKind::kGoogleDrive).finalize_rtts);
}

TEST(Provider, ChunkSizesCoverFileExactly) {
  for (ProviderKind kind : all_providers()) {
    const ApiProfile profile = default_profile(kind);
    for (std::uint64_t size :
         {std::uint64_t{1}, profile.chunk_bytes - 1, profile.chunk_bytes,
          profile.chunk_bytes + 1, 100 * util::kMB}) {
      auto chunks = chunk_sizes(profile, size);
      ASSERT_TRUE(chunks.ok());
      std::uint64_t total = 0;
      for (std::size_t i = 0; i < chunks.value().size(); ++i) {
        total += chunks.value()[i];
        if (i + 1 < chunks.value().size()) {
          EXPECT_EQ(chunks.value()[i], profile.chunk_bytes);
        }
      }
      EXPECT_EQ(total, size);
    }
  }
}

TEST(Provider, ZeroByteUploadRejected) {
  EXPECT_FALSE(
      chunk_sizes(default_profile(ProviderKind::kDropbox), 0).ok());
}

TEST(Provider, RttUnitsGrowWithFileSize) {
  const ApiProfile profile = default_profile(ProviderKind::kGoogleDrive);
  EXPECT_LT(total_rtt_units(profile, util::kMB),
            total_rtt_units(profile, 100 * util::kMB));
  // 100 MB (decimal) / 8 MiB chunks = 11 full + 1 tail = 12 chunks.
  const auto n_chunks =
      static_cast<double>(chunk_sizes(profile, 100 * util::kMB).value().size());
  EXPECT_DOUBLE_EQ(n_chunks, 12.0);
  EXPECT_DOUBLE_EQ(total_rtt_units(profile, 100 * util::kMB),
                   profile.session_init_rtts +
                       n_chunks * profile.per_chunk_rtts +
                       profile.finalize_rtts);
}

// ------------------------------------------------------------------ oauth ----

TEST(OAuth, TokenRefreshOnlyWhenExpired) {
  OAuthSession session("client-1", 3600.0, 42);
  bool refreshed = false;
  const AccessToken token1 = session.ensure_token(0.0, &refreshed);
  EXPECT_TRUE(refreshed);  // first use mints a token
  const AccessToken token2 = session.ensure_token(100.0, &refreshed);
  EXPECT_FALSE(refreshed);
  EXPECT_EQ(token1.value, token2.value);
  const AccessToken token3 = session.ensure_token(3700.0, &refreshed);
  EXPECT_TRUE(refreshed);
  EXPECT_NE(token1.value, token3.value);
  EXPECT_EQ(session.refresh_count(), 2u);
}

TEST(OAuth, ServerValidatesBearerTokens) {
  OAuthSession session("client-2", 100.0, 7);
  const AccessToken token = session.ensure_token(0.0);
  EXPECT_TRUE(session.validate(token, 50.0).ok());
  EXPECT_FALSE(session.validate(token, 150.0).ok());  // expired
  AccessToken forged = token;
  forged.value = "ya29.forged";
  const auto status = session.validate(forged, 50.0);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, 401);
}

// ---------------------------------------------------------- storage server ----

class StorageServerTest : public ::testing::Test {
 protected:
  StorageServerTest()
      : server_(ProviderKind::kGoogleDrive,
                default_profile(ProviderKind::kGoogleDrive)) {}

  rsyncx::Md5Digest digest_of(std::uint64_t tag) {
    std::array<std::uint8_t, 8> bytes{};
    for (int i = 0; i < 8; ++i) {
      bytes[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(tag >> (8 * i));
    }
    return rsyncx::Md5::hash(bytes);
  }

  StorageServer server_;
};

TEST_F(StorageServerTest, HappyPathUpload) {
  const std::uint64_t chunk = server_.profile().chunk_bytes;
  const std::uint64_t total = 2 * chunk + 1000;
  auto session = server_.create_session("file.bin", total);
  ASSERT_TRUE(session.ok());

  ChunkDigester digester;
  std::uint64_t offset = 0;
  for (const std::uint64_t size : {chunk, chunk, std::uint64_t{1000}}) {
    const auto d = digest_of(offset);
    ASSERT_TRUE(server_.append_chunk(session.value(), offset, size, d).ok());
    digester.add_chunk(d);
    offset += size;
  }
  auto object = server_.finalize(session.value(), digester.finish());
  ASSERT_TRUE(object.ok()) << object.error().message;
  EXPECT_EQ(object.value().size, total);
  EXPECT_TRUE(server_.lookup("file.bin").has_value());
  EXPECT_EQ(server_.open_sessions(), 0u);
}

TEST_F(StorageServerTest, RejectsOutOfOrderChunk) {
  const std::uint64_t chunk = server_.profile().chunk_bytes;
  auto session = server_.create_session("f", 3 * chunk);
  ASSERT_TRUE(session.ok());
  const auto status =
      server_.append_chunk(session.value(), chunk, chunk, digest_of(1));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, 409);
}

TEST_F(StorageServerTest, RejectsUndersizedMiddleChunk) {
  const std::uint64_t chunk = server_.profile().chunk_bytes;
  auto session = server_.create_session("f", 3 * chunk);
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(
      server_.append_chunk(session.value(), 0, chunk / 2, digest_of(1)).ok());
}

TEST_F(StorageServerTest, RejectsOverrun) {
  auto session = server_.create_session("f", 1000);
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(
      server_.append_chunk(session.value(), 0, 2000, digest_of(1)).ok());
}

TEST_F(StorageServerTest, FinalizeRequiresAllBytes) {
  const std::uint64_t chunk = server_.profile().chunk_bytes;
  auto session = server_.create_session("f", 2 * chunk);
  ASSERT_TRUE(session.ok());
  ChunkDigester digester;
  const auto d = digest_of(0);
  ASSERT_TRUE(server_.append_chunk(session.value(), 0, chunk, d).ok());
  digester.add_chunk(d);
  EXPECT_FALSE(server_.finalize(session.value(), digester.finish()).ok());
}

TEST_F(StorageServerTest, FinalizeDetectsCorruption) {
  auto session = server_.create_session("f", 1000);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(
      server_.append_chunk(session.value(), 0, 1000, digest_of(7)).ok());
  // Declare a digest computed from different chunk hashes.
  ChunkDigester wrong;
  wrong.add_chunk(digest_of(8));
  const auto object = server_.finalize(session.value(), wrong.finish());
  ASSERT_FALSE(object.ok());
  EXPECT_EQ(object.error().code, 412);
  EXPECT_EQ(server_.open_sessions(), 0u);  // poisoned session dropped
}

TEST_F(StorageServerTest, UnknownSessionErrors) {
  EXPECT_FALSE(server_.append_chunk(999, 0, 100, digest_of(0)).ok());
  EXPECT_FALSE(server_.finalize(999, digest_of(0)).ok());
}

TEST_F(StorageServerTest, AbandonDropsSession) {
  auto session = server_.create_session("f", 1000);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(server_.open_sessions(), 1u);
  server_.abandon(session.value());
  EXPECT_EQ(server_.open_sessions(), 0u);
}

TEST_F(StorageServerTest, OneDriveAlignmentEnforced) {
  StorageServer onedrive(ProviderKind::kOneDrive,
                         default_profile(ProviderKind::kOneDrive));
  const std::uint64_t chunk = onedrive.profile().chunk_bytes;
  auto session = onedrive.create_session("f", 2 * chunk);
  ASSERT_TRUE(session.ok());
  // A non-final chunk that is full-sized but misaligned cannot exist (chunk
  // size is enforced); verify the full-size requirement itself.
  EXPECT_FALSE(onedrive
                   .append_chunk(session.value(), 0,
                                 chunk - 320ull * util::kKiB, digest_of(0))
                   .ok());
  EXPECT_TRUE(
      onedrive.append_chunk(session.value(), 0, chunk, digest_of(0)).ok());
}

TEST_F(StorageServerTest, RejectsBadSessionParams) {
  EXPECT_FALSE(server_.create_session("", 100).ok());
  EXPECT_FALSE(server_.create_session("f", 0).ok());
}

}  // namespace
}  // namespace droute::cloud
