#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/injector.h"
#include "chaos/plan.h"
#include "chaos/topology_gen.h"
#include "check/fabric_audit.h"
#include "cloud/provider.h"
#include "cloud/storage_server.h"
#include "net/fabric.h"
#include "net/routing.h"
#include "util/rng.h"
#include "util/units.h"

namespace droute::chaos {
namespace {

// ------------------------------------------------------------------ plan ----

TEST(Plan, EventKindNamesRoundTrip) {
  const std::vector<EventKind> kinds{
      EventKind::kLinkFail,         EventKind::kLinkRestore,
      EventKind::kRouteWithdraw,    EventKind::kRouteAnnounce,
      EventKind::kCapacityRewrite,  EventKind::kPolicerRewrite,
      EventKind::kMiddleboxRewrite, EventKind::kFlowAbort,
      EventKind::kThrottleStorm,    EventKind::kThrottleCalm,
      EventKind::kNodeCrash,        EventKind::kNodeRecover,
      EventKind::kDiurnalTraffic,
  };
  for (EventKind kind : kinds) {
    const std::string name = event_kind_name(kind);
    EXPECT_NE(name, "unknown");
    auto parsed = parse_event_kind(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(parse_event_kind("bogus").ok());
}

TEST(Plan, SerializationRoundTripsByteIdentical) {
  util::Rng rng(2024);
  PlanSpec spec;
  spec.links = 12;
  spec.nodes = 8;
  spec.max_events = 10;
  for (int i = 0; i < 20; ++i) {
    const Plan plan = random_plan(rng, spec);
    const std::string text = format_plan(plan);
    auto parsed = parse_plan(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed.value(), plan);
    // Reformatting the parsed plan reproduces the exact bytes — the
    // invariant the replay corpus depends on.
    EXPECT_EQ(format_plan(parsed.value()), text);
  }
}

TEST(Plan, AwkwardDoublesSurviveRoundTrip) {
  Plan plan;
  plan.seed = 7;
  plan.events.push_back({0.1, EventKind::kLinkFail, 3, 1.0 / 3.0});
  plan.events.push_back({1e-17, EventKind::kCapacityRewrite, 0, 123456.789012345});
  plan.events.push_back({86399.999999999993, EventKind::kThrottleStorm, 0, 2.0});
  auto parsed = parse_plan(format_plan(plan));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), plan);
}

TEST(Plan, RandomPlanIsDeterministicAndSorted) {
  PlanSpec spec;
  spec.links = 6;
  spec.nodes = 5;
  util::Rng a(99);
  util::Rng b(99);
  const Plan first = random_plan(a, spec);
  const Plan second = random_plan(b, spec);
  EXPECT_EQ(first, second);
  for (std::size_t i = 1; i < first.events.size(); ++i) {
    EXPECT_LE(first.events[i - 1].at_s, first.events[i].at_s);
  }
}

TEST(Plan, ParseRejectsMalformedLines) {
  EXPECT_FALSE(parse_plan("event 1.0 link_fail").ok());       // arity
  EXPECT_FALSE(parse_plan("event 1.0 nonsense 0 0").ok());    // kind
  EXPECT_FALSE(parse_plan("gibberish 1 2 3").ok());           // keyword
  EXPECT_TRUE(parse_plan("# comment only\n\n").ok());         // empty ok
}

TEST(Plan, KindClassifiersAgreeWithInjectorSemantics) {
  EXPECT_TRUE(event_targets_link(EventKind::kLinkFail));
  EXPECT_TRUE(event_targets_link(EventKind::kPolicerRewrite));
  EXPECT_TRUE(event_targets_link(EventKind::kDiurnalTraffic));
  EXPECT_FALSE(event_churns_routes(EventKind::kDiurnalTraffic));
  EXPECT_FALSE(event_targets_link(EventKind::kNodeCrash));
  EXPECT_FALSE(event_targets_link(EventKind::kFlowAbort));
  EXPECT_TRUE(event_churns_routes(EventKind::kRouteWithdraw));
  EXPECT_TRUE(event_churns_routes(EventKind::kNodeCrash));
  EXPECT_FALSE(event_churns_routes(EventKind::kCapacityRewrite));
  EXPECT_FALSE(event_churns_routes(EventKind::kThrottleStorm));
}

// -------------------------------------------------------------- injector ----

/// Two-AS world: host -- r0 ==(link pair)== r1 -- host, provider relation.
struct SmallWorld {
  net::Topology topo;
  net::RouteTable routes{nullptr};
  sim::Simulator simulator;
  std::unique_ptr<net::Fabric> fabric;
  cloud::StorageServer server{
      cloud::ProviderKind::kGoogleDrive,
      cloud::default_profile(cloud::ProviderKind::kGoogleDrive)};
  net::NodeId h0, h1, r0, r1;
  net::LinkId forward;  // r0 -> r1

  SmallWorld() {
    net::Topology::Builder builder;
    const net::AsId as0 = builder.add_as("as0");
    const net::AsId as1 = builder.add_as("as1");
    builder.relate(as0, as1, net::AsRelation::kCustomer);
    r0 = builder.add_router(as0, "r0", {49, -123});
    r1 = builder.add_router(as1, "r1", {47, -122});
    h0 = builder.add_host(as0, "h0", {49, -123});
    h1 = builder.add_host(as1, "h1", {47, -122});
    builder.add_duplex(h0, r0, 10000, 0.0005);
    builder.add_duplex(h1, r1, 10000, 0.0005);
    forward = builder.add_duplex(r0, r1, 100, 0.005);
    auto built = std::move(builder).build();
    EXPECT_TRUE(built.ok());
    topo = std::move(built).value();
    routes = net::RouteTable(&topo);
    fabric = std::make_unique<net::Fabric>(&simulator, &topo, &routes);
    server.set_clock([this] { return simulator.now(); });
  }

  Injector make_injector() {
    return Injector({&simulator, fabric.get(), &topo, &routes, {&server}});
  }
};

TEST(Injector, OutOfRangeTargetsAreSkippedNotFatal) {
  SmallWorld world;
  Injector injector = world.make_injector();
  injector.apply({0.0, EventKind::kLinkFail, 999, 0.0});
  injector.apply({0.0, EventKind::kNodeCrash, -1, 0.0});
  injector.apply({0.0, EventKind::kThrottleStorm, 5, 2.0});
  EXPECT_EQ(injector.injected(), 0u);
  EXPECT_EQ(injector.skipped(), 3u);
}

TEST(Injector, RouteWithdrawKeepsFlowsButLinkFailKillsThem) {
  SmallWorld world;
  Injector injector = world.make_injector();
  net::FlowOutcome outcome = net::FlowOutcome::kCompleted;
  auto flow = world.fabric->start_flow(
      world.h0, world.h1, 100 * util::kMB,
      [&](const net::FlowStats& s) { outcome = s.outcome; });
  ASSERT_TRUE(flow.ok());
  world.simulator.run_until(0.5);

  // BGP withdraw: the flow keeps flowing, new routes are denied.
  injector.apply({0.5, EventKind::kRouteWithdraw, world.forward, 0.0});
  EXPECT_EQ(world.fabric->active_flow_count(), 1u);
  EXPECT_FALSE(world.routes.route(world.h0, world.h1).ok());

  // Re-announce: routable again, flow still alive.
  injector.apply({0.5, EventKind::kRouteAnnounce, world.forward, 0.0});
  EXPECT_TRUE(world.routes.route(world.h0, world.h1).ok());
  EXPECT_EQ(world.fabric->active_flow_count(), 1u);

  // Physical failure: the flow dies with kLinkFailed.
  injector.apply({0.5, EventKind::kLinkFail, world.forward, 0.0});
  EXPECT_EQ(world.fabric->active_flow_count(), 0u);
  EXPECT_EQ(outcome, net::FlowOutcome::kLinkFailed);
  EXPECT_EQ(injector.injected(), 3u);
}

TEST(Injector, CapacityRewriteReallocatesLiveFlows) {
  SmallWorld world;
  Injector injector = world.make_injector();
  net::FlowOptions options;
  options.charge_slow_start = false;
  auto flow = world.fabric->start_flow(world.h0, world.h1, 100 * util::kMB,
                                       nullptr, options);
  ASSERT_TRUE(flow.ok());
  world.simulator.run_until(0.5);
  EXPECT_NEAR(world.fabric->current_rate_mbps(flow.value()), 100.0, 1.0);
  injector.apply({0.5, EventKind::kCapacityRewrite, world.forward, 40.0});
  EXPECT_NEAR(world.fabric->current_rate_mbps(flow.value()), 40.0, 0.5);
  const auto audit = check::audit_fabric(*world.fabric);
  EXPECT_TRUE(audit.ok()) << audit.error().message;
  injector.apply({0.5, EventKind::kCapacityRewrite, world.forward, 0.0});
  EXPECT_EQ(injector.skipped(), 1u);  // non-positive capacity refused
}

TEST(Injector, NodeCrashFailsAdjacentLinksAndRecoverRestores) {
  SmallWorld world;
  Injector injector = world.make_injector();
  injector.apply({0.0, EventKind::kNodeCrash, world.r1, 0.0});
  EXPECT_FALSE(world.routes.route(world.h0, world.h1).ok());
  injector.apply({0.0, EventKind::kNodeRecover, world.r1, 0.0});
  EXPECT_TRUE(world.routes.route(world.h0, world.h1).ok());
}

TEST(Injector, ThrottleStormTightensServerBudgetAndCalmClears) {
  SmallWorld world;
  Injector injector = world.make_injector();
  injector.apply({0.0, EventKind::kThrottleStorm, 0, 2.0});
  EXPECT_EQ(world.server.profile().max_requests_per_window, 2);
  injector.apply({0.0, EventKind::kThrottleCalm, 0, 0.0});
  EXPECT_EQ(world.server.profile().max_requests_per_window, 0);
}

TEST(Injector, DiurnalTrafficModulatesCapacityAndRestoresBase) {
  SmallWorld world;
  Injector injector = world.make_injector();
  const double base = world.topo.link(world.forward).capacity_mbps;
  injector.apply({0.25, EventKind::kDiurnalTraffic, world.forward, 0.5});
  EXPECT_EQ(injector.injected(), 1u);
  // The sinusoidal schedule must actually dip capacity (depth 0.5 takes at
  // least half the swing somewhere across two full cycles)...
  double min_seen = base;
  while (world.simulator.pending() > 0) {
    world.simulator.step();
    min_seen =
        std::min(min_seen, world.topo.link(world.forward).capacity_mbps);
  }
  EXPECT_LT(min_seen, 0.8 * base);
  // ...and the final step restores the base rate exactly (quiescence).
  EXPECT_DOUBLE_EQ(world.topo.link(world.forward).capacity_mbps, base);
}

TEST(Injector, DiurnalTrafficRejectsBadDepthAndTarget) {
  SmallWorld world;
  Injector injector = world.make_injector();
  injector.apply({0.0, EventKind::kDiurnalTraffic, world.forward, 1.5});
  injector.apply({0.0, EventKind::kDiurnalTraffic, world.forward, 0.0});
  injector.apply({0.0, EventKind::kDiurnalTraffic, 999, 0.4});
  EXPECT_EQ(injector.injected(), 0u);
  EXPECT_EQ(injector.skipped(), 3u);
  EXPECT_EQ(world.simulator.pending(), 0u);  // nothing scheduled
}

TEST(Injector, DiurnalTrafficPhaseIsSeededByEventTime) {
  // Two events with different at_s draw different phases; same at_s, same
  // phase — the modulation schedule is a pure function of the event.
  SmallWorld first;
  SmallWorld second;
  Injector a = first.make_injector();
  Injector b = second.make_injector();
  a.apply({1.5, EventKind::kDiurnalTraffic, first.forward, 0.5});
  b.apply({1.5, EventKind::kDiurnalTraffic, second.forward, 0.5});
  std::vector<double> trace_a;
  std::vector<double> trace_b;
  while (first.simulator.pending() > 0) {
    first.simulator.step();
    trace_a.push_back(first.topo.link(first.forward).capacity_mbps);
  }
  while (second.simulator.pending() > 0) {
    second.simulator.step();
    trace_b.push_back(second.topo.link(second.forward).capacity_mbps);
  }
  EXPECT_EQ(trace_a, trace_b);
}

TEST(Injector, ArmedPlanFiresInSimTimeWithPostApplyHook) {
  SmallWorld world;
  Injector injector = world.make_injector();
  Plan plan;
  plan.events.push_back({1.0, EventKind::kPolicerRewrite, world.forward, 25.0});
  plan.events.push_back({2.0, EventKind::kMiddleboxRewrite, world.r1, 50.0});
  std::vector<double> hook_times;
  injector.set_post_apply([&](const Event&) {
    hook_times.push_back(world.simulator.now());
  });
  injector.arm(plan);
  world.simulator.run();
  ASSERT_EQ(hook_times.size(), 2u);
  EXPECT_NEAR(hook_times[0], 1.0, 1e-9);
  EXPECT_NEAR(hook_times[1], 2.0, 1e-9);
  EXPECT_NEAR(world.topo.link(world.forward).policer_per_flow_mbps, 25.0, 1e-12);
  EXPECT_NEAR(world.topo.node(world.r1).middlebox_per_flow_mbps, 50.0, 1e-12);
}

// ---------------------------------------------------------- topology gen ----

TEST(TopologyGen, GeneratedTopologiesAlwaysBuild) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    util::Rng rng(seed);
    const GenTopology description = random_topology(rng, {});
    auto built = description.build();
    ASSERT_TRUE(built.ok()) << "seed " << seed << ": "
                            << built.error().message;
    EXPECT_EQ(built.value().node_count(), description.nodes.size());
    EXPECT_EQ(built.value().link_count(), description.links.size());
    EXPECT_GE(description.hosts().size(), 2u);
  }
}

TEST(TopologyGen, DeterministicPerStream) {
  util::Rng a(5);
  util::Rng b(5);
  EXPECT_EQ(random_topology(a, {}), random_topology(b, {}));
}

}  // namespace
}  // namespace droute::chaos
