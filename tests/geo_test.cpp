#include <gtest/gtest.h>

#include "geo/geo.h"
#include "geo/registry.h"

namespace droute::geo {
namespace {

const Coord kVancouver{49.26, -123.25};
const Coord kEdmonton{53.52, -113.52};
const Coord kMountainView{37.42, -122.08};
const Coord kSeattle{47.61, -122.33};

TEST(Haversine, ZeroForSamePoint) {
  EXPECT_NEAR(haversine_km(kVancouver, kVancouver), 0.0, 1e-9);
}

TEST(Haversine, Symmetric) {
  EXPECT_NEAR(haversine_km(kVancouver, kEdmonton),
              haversine_km(kEdmonton, kVancouver), 1e-9);
}

TEST(Haversine, KnownDistances) {
  // Vancouver–Edmonton ~820 km; Vancouver–Mountain View ~1300 km.
  EXPECT_NEAR(haversine_km(kVancouver, kEdmonton), 820.0, 40.0);
  EXPECT_NEAR(haversine_km(kVancouver, kMountainView), 1320.0, 60.0);
}

TEST(Haversine, TriangleInequalityHolds) {
  // Geometry obeys the triangle inequality — the paper's point is that
  // *throughput* does not.
  const double direct = haversine_km(kVancouver, kMountainView);
  const double detour = haversine_km(kVancouver, kEdmonton) +
                        haversine_km(kEdmonton, kMountainView);
  EXPECT_LE(direct, detour + 1e-9);
}

TEST(PropagationDelay, ScalesWithDistanceAndInflation) {
  const double base = propagation_delay_s(kVancouver, kSeattle, 1.0);
  const double inflated = propagation_delay_s(kVancouver, kSeattle, 1.6);
  EXPECT_NEAR(inflated / base, 1.6, 1e-9);
  // Vancouver–Seattle ~190 km of fiber at 204000 km/s => ~1 ms one way.
  EXPECT_NEAR(base, 190.0 / 204000.0, 3e-4);
}

TEST(DetourRatio, UnityForStraightLine) {
  const Coord mid{(kVancouver.lat_deg + kEdmonton.lat_deg) / 2,
                  (kVancouver.lon_deg + kEdmonton.lon_deg) / 2};
  EXPECT_NEAR(detour_ratio(kVancouver, mid, kEdmonton), 1.0, 0.01);
}

TEST(DetourRatio, UbcUalbertaGoogleIsLargeGeographicDetour) {
  // The paper's Fig 3 observation: routing Vancouver->Mountain View through
  // Edmonton is a significant geographic backtrack.
  const double ratio = detour_ratio(kVancouver, kEdmonton, kMountainView);
  EXPECT_GT(ratio, 1.8);
  EXPECT_GT(backtrack_km(kVancouver, kEdmonton, kMountainView), 1000.0);
}

TEST(CoordToString, Rendering) {
  EXPECT_EQ(to_string(Coord{49.26, -123.25}), "49.26N 123.25W");
  EXPECT_EQ(to_string(Coord{-33.87, 151.21}), "33.87S 151.21E");
}

// ---------------------------------------------------------------- registry ----

TEST(Ipv4, ParsePrintRoundTrip) {
  const auto ip = Ipv4::parse("199.212.24.64");
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip.value().to_string(), "199.212.24.64");
}

TEST(Ipv4, RejectsGarbage) {
  EXPECT_FALSE(Ipv4::parse("not-an-ip").ok());
  EXPECT_FALSE(Ipv4::parse("1.2.3").ok());
  EXPECT_FALSE(Ipv4::parse("300.1.1.1").ok());
  EXPECT_FALSE(Ipv4::parse("1.2.3.4.5").ok());
}

TEST(Registry, AddLookup) {
  Registry registry;
  registry.add({"vncv1rtr2.canarie.ca", "Vancouver, BC", kVancouver,
                "router"});
  const auto hit = registry.lookup("vncv1rtr2.canarie.ca");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->city, "Vancouver, BC");
  EXPECT_FALSE(registry.lookup("missing").has_value());
}

TEST(Registry, IpBinding) {
  Registry registry;
  registry.add({"host-a", "Edmonton, AB", kEdmonton, "client"});
  const auto ip = Ipv4::parse("10.0.0.1").value();
  ASSERT_TRUE(registry.bind_ip(ip, "host-a").ok());
  const auto hit = registry.lookup_ip(ip);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->name, "host-a");
  EXPECT_FALSE(registry.bind_ip(ip, "unknown").ok());
}

TEST(Registry, ReplacementKeepsSingleEntry) {
  Registry registry;
  registry.add({"x", "Old City", kVancouver, "client"});
  registry.add({"x", "New City", kVancouver, "client"});
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.lookup("x")->city, "New City");
}

TEST(Registry, MapRendersMarkersAndLegend) {
  Registry registry;
  registry.add({"ubc", "Vancouver", kVancouver, "client"});
  registry.add({"gdrive", "Mountain View", kMountainView, "cloud"});
  const std::string map = registry.render_map(40, 12);
  EXPECT_NE(map.find("A = ubc"), std::string::npos);
  EXPECT_NE(map.find("B = gdrive"), std::string::npos);
  EXPECT_NE(map.find('A'), std::string::npos);
}

TEST(Registry, RoutersExcludedFromMapMarkers) {
  Registry registry;
  registry.add({"r1", "Somewhere", kSeattle, "router"});
  const std::string map = registry.render_map(40, 12);
  EXPECT_EQ(map.find("r1"), std::string::npos);
}

}  // namespace
}  // namespace droute::geo
