#include <gtest/gtest.h>

#include "rsyncx/delta.h"
#include "rsyncx/patch.h"
#include "rsyncx/signature.h"
#include "rsyncx/wire_format.h"
#include "util/blob.h"
#include "util/rng.h"

namespace droute::rsyncx {
namespace {

using util::Blob;

Blob blob_of(std::uint64_t seed, std::size_t size) {
  util::Rng rng(seed);
  return util::make_random_blob(rng, size);
}

TEST(SignatureWire, RoundTrip) {
  const Blob basis = blob_of(1, 70 * 700 + 123);
  const Signature sig = compute_signature(basis, 700);
  const Blob encoded = encode_signature(sig);
  EXPECT_EQ(encoded.size(), sig.wire_bytes());
  auto decoded = decode_signature(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().block_size, sig.block_size);
  EXPECT_EQ(decoded.value().basis_size, sig.basis_size);
  ASSERT_EQ(decoded.value().blocks.size(), sig.blocks.size());
  for (std::size_t i = 0; i < sig.blocks.size(); ++i) {
    EXPECT_EQ(decoded.value().blocks[i].weak, sig.blocks[i].weak);
    EXPECT_EQ(decoded.value().blocks[i].strong, sig.blocks[i].strong);
    EXPECT_EQ(decoded.value().blocks[i].index, sig.blocks[i].index);
  }
}

TEST(SignatureWire, EmptySignatureRoundTrip) {
  Signature sig;
  sig.block_size = 700;
  sig.basis_size = 0;
  auto decoded = decode_signature(encode_signature(sig));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().blocks.empty());
}

TEST(SignatureWire, RejectsCorruption) {
  const Blob basis = blob_of(2, 7000);
  Blob encoded = encode_signature(compute_signature(basis, 700));
  // Bad magic.
  Blob bad_magic = encoded;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(decode_signature(bad_magic).ok());
  // Truncations at every boundary class.
  for (std::size_t cut : {1u, 8u, 15u, 17u, 30u}) {
    ASSERT_LT(cut, encoded.size());
    EXPECT_FALSE(decode_signature(
                     std::span(encoded.data(), encoded.size() - cut))
                     .ok())
        << "cut=" << cut;
  }
  // Zero block size.
  Blob zero_block = encoded;
  zero_block[4] = zero_block[5] = zero_block[6] = zero_block[7] = 0;
  EXPECT_FALSE(decode_signature(zero_block).ok());
}

TEST(DeltaWire, RoundTripMixedOps) {
  util::Rng rng(3);
  Blob basis = util::make_random_blob(rng, 100000);
  Blob target = basis;
  target.insert(target.begin() + 5000, 333, 0xab);  // force literals
  const Signature sig = compute_signature(basis, 700);
  const SignatureIndex index(sig);
  const Delta delta = compute_delta(target, index);
  ASSERT_GT(delta.ops.size(), 1u);

  const Blob encoded = encode_delta(delta);
  EXPECT_EQ(encoded.size(), delta.wire_bytes());
  auto decoded = decode_delta(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;

  // The decoded delta must reconstruct the identical file.
  auto rebuilt = apply_delta(basis, decoded.value());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt.value(), target);
}

TEST(DeltaWire, RejectsCorruption) {
  const Blob target = blob_of(4, 5000);
  Signature empty;
  empty.block_size = 700;
  const SignatureIndex index(empty);
  const Delta delta = compute_delta(target, index);
  Blob encoded = encode_delta(delta);

  Blob bad_magic = encoded;
  bad_magic[0] ^= 1;
  EXPECT_FALSE(decode_delta(bad_magic).ok());

  Blob bad_version = encoded;
  bad_version[4] = 99;
  EXPECT_FALSE(decode_delta(bad_version).ok());

  // Truncated literal payload.
  EXPECT_FALSE(
      decode_delta(std::span(encoded.data(), encoded.size() - 100)).ok());

  // Trailing garbage.
  Blob trailing = encoded;
  trailing.push_back(0);
  EXPECT_FALSE(decode_delta(trailing).ok());

  // Unknown op tag.
  Blob bad_tag = encoded;
  bad_tag[24] = 7;  // first op's tag byte
  EXPECT_FALSE(decode_delta(bad_tag).ok());
}

TEST(DeltaWire, RejectsSizeLies) {
  const Blob target = blob_of(5, 2000);
  Signature empty;
  empty.block_size = 700;
  const SignatureIndex index(empty);
  Delta delta = compute_delta(target, index);
  // Claim a larger target than the ops produce.
  delta.target_size += 1;
  const Blob encoded = encode_delta(delta);
  EXPECT_FALSE(decode_delta(encoded).ok());
}

TEST(DeltaWire, FuzzRandomBuffersNeverCrash) {
  // Decoders must reject arbitrary garbage gracefully.
  util::Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const Blob junk = util::make_random_blob(
        rng, static_cast<std::size_t>(rng.uniform_int(0, 512)));
    (void)decode_delta(junk);
    (void)decode_signature(junk);
  }
  SUCCEED();
}

TEST(DeltaWire, FuzzBitflipsEitherFailOrReconstruct) {
  // A single bit flip in literal payload changes the reconstruction but must
  // never crash; flips in the framing must be rejected or keep sizes
  // consistent (apply_delta re-validates everything).
  util::Rng rng(7);
  Blob basis = util::make_random_blob(rng, 30000);
  Blob target = basis;
  target[100] ^= 0xff;
  const Signature sig = compute_signature(basis, 700);
  const SignatureIndex index(sig);
  const Blob encoded = encode_delta(compute_delta(target, index));

  for (int i = 0; i < 300; ++i) {
    Blob mutated = encoded;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(mutated.size() - 1)));
    mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    auto decoded = decode_delta(mutated);
    if (!decoded.ok()) continue;
    auto rebuilt = apply_delta(basis, decoded.value());
    if (!rebuilt.ok()) continue;
    EXPECT_EQ(rebuilt.value().size(), decoded.value().target_size);
  }
}

}  // namespace
}  // namespace droute::rsyncx
