#include <gtest/gtest.h>

#include "scenario/north_america.h"
#include "trace/traceroute.h"

namespace droute::trace {
namespace {

class ScenarioTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario::WorldConfig config;
    config.cross_traffic = false;
    world_ = scenario::World::create(config);
  }
  std::unique_ptr<scenario::World> world_;
};

TEST_F(ScenarioTrace, UbcToGoogleCrossesPacificWave) {
  // Reproduces Fig 5: UBC's PlanetLab traffic to Google goes through
  // vncv1rtr2.canarie.ca and then the PacificWave hop.
  auto result = world_->tracer().trace(
      world_->node("planetlab1.cs.ubc.ca"),
      world_->node("sea15s01-in-f138.1e100.net"));
  ASSERT_TRUE(result.ok()) << result.error().message;
  const std::string text = result.value().render(world_->topology());
  EXPECT_NE(text.find("vncv1rtr2.canarie.ca"), std::string::npos);
  EXPECT_NE(text.find("pacificwave.net"), std::string::npos);
  EXPECT_NE(text.find("traceroute to sea15s01-in-f138.1e100.net"),
            std::string::npos);
}

TEST_F(ScenarioTrace, UalbertaToGoogleSkipsPacificWaveAndHasSilentHop) {
  // Reproduces Fig 6: UAlberta's traffic shares vncv1rtr2 but exits via the
  // direct (unresponsive, "* * *") Google peering edge.
  auto result = world_->tracer().trace(
      world_->node("cluster.cs.ualberta.ca"),
      world_->node("sea15s01-in-f138.1e100.net"));
  ASSERT_TRUE(result.ok());
  const std::string text = result.value().render(world_->topology());
  EXPECT_NE(text.find("vncv1rtr2.canarie.ca"), std::string::npos);
  EXPECT_NE(text.find("edmn1rtr2.canarie.ca"), std::string::npos);
  EXPECT_EQ(text.find("pacificwave.net"), std::string::npos);
  EXPECT_NE(text.find("* * *"), std::string::npos);
}

TEST_F(ScenarioTrace, DiffFindsDivergenceAtCanarie) {
  // The paper's Sec III-A observation: both paths cross vncv1rtr2 once and
  // diverge right after it (pacificwave vs the unknown peering hop).
  const auto fig5 = world_->tracer()
                        .trace(world_->node("planetlab1.cs.ubc.ca"),
                               world_->node("sea15s01-in-f138.1e100.net"))
                        .value();
  const auto fig6 = world_->tracer()
                        .trace(world_->node("cluster.cs.ualberta.ca"),
                               world_->node("sea15s01-in-f138.1e100.net"))
                        .value();
  const RouteDiff diff = Tracer::diff(fig5, fig6);
  const net::NodeId vncv1 = world_->node("vncv1rtr2.canarie.ca");
  EXPECT_NE(std::find(diff.shared_nodes.begin(), diff.shared_nodes.end(),
                      vncv1),
            diff.shared_nodes.end());
  ASSERT_TRUE(diff.divergence_point.has_value());
  EXPECT_EQ(diff.divergence_point.value(), vncv1);
  // The PacificWave hop is unique to the UBC path.
  const net::NodeId pwave =
      world_->node("google-1-lo-std-707.sttlwa.pacificwave.net");
  EXPECT_NE(std::find(diff.only_first.begin(), diff.only_first.end(), pwave),
            diff.only_first.end());
}

TEST_F(ScenarioTrace, HopRttsAreMonotonic) {
  const auto result = world_->tracer()
                          .trace(world_->node("planetlab1.cs.purdue.edu"),
                                 world_->node("content.dropboxapi.com"))
                          .value();
  double last = 0.0;
  for (const Hop& hop : result.hops) {
    EXPECT_GE(hop.rtt_s, last);
    last = hop.rtt_s;
  }
  EXPECT_GE(result.hops.size(), 4u);
}

TEST_F(ScenarioTrace, SilentHopsHideNameAndIp) {
  const auto result = world_->tracer()
                          .trace(world_->node("cluster.cs.ualberta.ca"),
                                 world_->node("sea15s01-in-f138.1e100.net"))
                          .value();
  bool found_silent = false;
  for (const Hop& hop : result.hops) {
    if (hop.silent) {
      found_silent = true;
      EXPECT_TRUE(hop.name.empty());
      EXPECT_TRUE(hop.ip.empty());
    }
  }
  EXPECT_TRUE(found_silent);
  // Silent hops are excluded from the responsive list.
  for (net::NodeId node : result.responsive_nodes()) {
    EXPECT_NE(node, world_->node("172-26-244-22.priv.ualberta.ca"));
  }
}

TEST_F(ScenarioTrace, UnroutablePairReportsError) {
  // xgen host has no route to an unpeered island? All nodes are connected in
  // the scenario, so synthesize unreachability by failing a cut link.
  world_->fabric().fail_link(
      world_->topology().find_link(world_->node("planetlab1.ucla.edu"),
                                   world_->node("pl-gw.ucla.edu"))
          .value());
  auto result = world_->tracer().trace(
      world_->node("planetlab1.ucla.edu"),
      world_->node("sea15s01-in-f138.1e100.net"));
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace droute::trace

namespace droute::trace {
namespace {

TEST_F(ScenarioTrace, SymmetricPairsReportNoAsymmetry) {
  // With symmetric policy modelling, research-network pairs traverse the
  // same routers in both directions; the detector must stay quiet.
  auto ubc_ua = world_->tracer().round_trip_asymmetry(
      world_->node("planetlab1.cs.ubc.ca"),
      world_->node("cluster.cs.ualberta.ca"));
  ASSERT_TRUE(ubc_ua.ok());
  EXPECT_FALSE(ubc_ua.value().asymmetric);

  auto ua_google = world_->tracer().round_trip_asymmetry(
      world_->node("cluster.cs.ualberta.ca"),
      world_->node("sea15s01-in-f138.1e100.net"));
  ASSERT_TRUE(ua_google.ok());
  EXPECT_FALSE(ua_google.value().asymmetric);
}

TEST_F(ScenarioTrace, PurdueOneDriveRoundTripAsymmetryDetected) {
  // Purdue -> OneDrive rides the CommodityM override; OneDrive -> Purdue
  // rides its own "cloud"-tag override through the same AS but entering at
  // the same router — still the same node set. Break symmetry explicitly:
  // drop the return-path override's link so the reverse route re-routes via
  // Internet2 while the forward keeps commodity transit.
  const auto forward_link = world_->topology().find_link(
      world_->node("ae-7.cr2.commodity-m.net"),
      world_->node("msedge1.sea.microsoft.com"));
  ASSERT_TRUE(forward_link.has_value());
  // Fail only the commodity->microsoft direction: forward Purdue->OneDrive
  // now re-routes (override link still up but next AS unreachable?) — use
  // the reverse instead: fail microsoft->commodity.
  const auto reverse_link = world_->topology().find_link(
      world_->node("msedge1.sea.microsoft.com"),
      world_->node("ae-7.cr2.commodity-m.net"));
  ASSERT_TRUE(reverse_link.has_value());
  world_->fabric().fail_link(reverse_link.value());

  auto asymmetry = world_->tracer().round_trip_asymmetry(
      world_->node("planetlab1.cs.purdue.edu"),
      world_->node("onedrive-fe.wns.windows.com"));
  ASSERT_TRUE(asymmetry.ok());
  EXPECT_TRUE(asymmetry.value().asymmetric);
  // The commodity router appears only on the forward path now.
  const auto cm = world_->node("ae-7.cr2.commodity-m.net");
  EXPECT_NE(std::find(asymmetry.value().forward_only.begin(),
                      asymmetry.value().forward_only.end(), cm),
            asymmetry.value().forward_only.end());
}

}  // namespace
}  // namespace droute::trace
