#include <gtest/gtest.h>

#include "scenario/north_america.h"
#include "transfer/api_upload.h"
#include "transfer/detour.h"
#include "transfer/file_spec.h"
#include "transfer/parallel.h"
#include "transfer/rsync_engine.h"
#include "util/units.h"

namespace droute::transfer {
namespace {

using cloud::ProviderKind;
using scenario::World;
using scenario::WorldConfig;

std::unique_ptr<World> quiet_world(std::uint64_t seed = 1) {
  WorldConfig config;
  config.seed = seed;
  config.cross_traffic = false;
  return World::create(config);
}

// --------------------------------------------------------------- file spec ----

TEST(FileSpec, DigestsAreDeterministicAndPositional) {
  const FileSpec file = make_file_mb(10, 42);
  EXPECT_EQ(file.bytes, 10 * util::kMB);
  EXPECT_EQ(file.chunk_digest(0, 1000), file.chunk_digest(0, 1000));
  EXPECT_NE(file.chunk_digest(0, 1000), file.chunk_digest(1000, 1000));
  EXPECT_NE(file.chunk_digest(0, 1000), file.chunk_digest(0, 2000));
  const FileSpec other = make_file_mb(10, 43);
  EXPECT_NE(file.chunk_digest(0, 1000), other.chunk_digest(0, 1000));
}

// -------------------------------------------------------------- api upload ----

TEST(ApiUpload, DeliversAndCommitsObject) {
  auto world = quiet_world();
  const FileSpec file = make_file_mb(10, 1);
  UploadResult result;
  world->api_engine(ProviderKind::kGoogleDrive)
      .upload(world->intermediate_node(scenario::Intermediate::kUAlberta),
              file, [&](const UploadResult& r) { result = r; });
  world->simulator().run();
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_GT(result.duration_s(), 0.0);
  // 10 MB / 8 MiB chunks = 2 chunks.
  EXPECT_EQ(result.chunks, 2);
  EXPECT_GT(result.wire_bytes, file.bytes);  // headers included
  const auto object =
      world->server(ProviderKind::kGoogleDrive).lookup(file.name);
  ASSERT_TRUE(object.has_value());
  EXPECT_EQ(object->size, file.bytes);
}

TEST(ApiUpload, TimeScalesWithSize) {
  auto world = quiet_world();
  double t10 = 0.0, t50 = 0.0;
  for (auto [mb, out] : {std::pair<int, double*>{10, &t10}, {50, &t50}}) {
    UploadResult result;
    world->api_engine(ProviderKind::kDropbox)
        .upload(world->intermediate_node(scenario::Intermediate::kUAlberta),
                make_file_mb(static_cast<std::uint64_t>(mb),
                             static_cast<std::uint64_t>(mb)),
                [&](const UploadResult& r) { result = r; });
    world->simulator().run();
    ASSERT_TRUE(result.success);
    *out = result.duration_s();
  }
  EXPECT_GT(t50, t10 * 3.5);
  EXPECT_LT(t50, t10 * 6.5);
}

TEST(ApiUpload, OAuthRefreshChargedOnce) {
  auto world = quiet_world();
  cloud::OAuthSession oauth("test-client", 3600.0, 5);
  ApiUploadOptions options;
  options.oauth = &oauth;

  UploadResult first, second;
  auto& engine = world->api_engine(ProviderKind::kGoogleDrive);
  const auto client =
      world->intermediate_node(scenario::Intermediate::kUAlberta);
  engine.upload(client, make_file_mb(10, 1),
                [&](const UploadResult& r) { first = r; }, options);
  world->simulator().run();
  engine.upload(client, make_file_mb(10, 2),
                [&](const UploadResult& r) { second = r; }, options);
  world->simulator().run();
  ASSERT_TRUE(first.success && second.success);
  EXPECT_TRUE(first.token_refreshed);
  EXPECT_FALSE(second.token_refreshed);  // token still fresh
  EXPECT_EQ(oauth.refresh_count(), 1u);
  EXPECT_GT(first.duration_s(), second.duration_s());
}

TEST(ApiUpload, FailsCleanlyWhenUnroutable) {
  auto world = quiet_world();
  const auto client = world->client_node(scenario::Client::kUCLA);
  // Cut UCLA off at its gateway.
  world->fabric().fail_link(
      world->topology()
          .find_link(client, world->node("pl-gw.ucla.edu"))
          .value());
  UploadResult result;
  result.success = true;
  world->api_engine(ProviderKind::kDropbox)
      .upload(client, make_file_mb(10, 1),
              [&](const UploadResult& r) { result = r; });
  world->simulator().run();
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.error.empty());
  EXPECT_EQ(world->server(ProviderKind::kDropbox).open_sessions(), 0u);
}

TEST(ApiUpload, LinkFailureMidTransferAbandonsSession) {
  auto world = quiet_world();
  const auto client = world->client_node(scenario::Client::kUBC);
  UploadResult result;
  result.success = true;
  world->api_engine(ProviderKind::kGoogleDrive)
      .upload(client, make_file_mb(100, 1),
              [&](const UploadResult& r) { result = r; });
  world->simulator().schedule_in(10.0, [&] {
    world->fabric().fail_link(
        world->topology()
            .find_link(world->node("planetlab1.cs.ubc.ca"),
                       world->node("cs-gw.net.ubc.ca"))
            .value());
  });
  world->simulator().run();
  EXPECT_FALSE(result.success);
  EXPECT_EQ(world->server(ProviderKind::kGoogleDrive).open_sessions(), 0u);
}

// ------------------------------------------------------------------ rsync ----

TEST(RsyncEngine, PushMovesPayloadPlusFraming) {
  auto world = quiet_world();
  RsyncEngine engine(&world->fabric());
  RsyncResult result;
  engine.push(world->client_node(scenario::Client::kUBC),
              world->intermediate_node(scenario::Intermediate::kUAlberta),
              make_file_mb(10, 3),
              [&](const RsyncResult& r) { result = r; });
  world->simulator().run();
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_GT(result.forward_wire_bytes, 10 * util::kMB);
  EXPECT_LT(result.forward_wire_bytes, 10 * util::kMB + 10000);
  EXPECT_LT(result.reverse_wire_bytes, 2000u);  // no basis: tiny signature
  EXPECT_GT(result.cpu_s, 0.0);
}

TEST(RsyncEngine, BasisOverlapShrinksForwardBytes) {
  auto world = quiet_world();
  RsyncEngine engine(&world->fabric());
  RsyncResult cold, warm;
  RsyncOptions warm_options;
  warm_options.basis_overlap = 0.9;
  engine.push(world->client_node(scenario::Client::kUBC),
              world->intermediate_node(scenario::Intermediate::kUAlberta),
              make_file_mb(10, 4), [&](const RsyncResult& r) { cold = r; });
  world->simulator().run();
  engine.push(world->client_node(scenario::Client::kUBC),
              world->intermediate_node(scenario::Intermediate::kUAlberta),
              make_file_mb(10, 4), [&](const RsyncResult& r) { warm = r; },
              warm_options);
  world->simulator().run();
  ASSERT_TRUE(cold.success && warm.success);
  EXPECT_LT(warm.forward_wire_bytes, cold.forward_wire_bytes / 5);
  EXPECT_GT(warm.reverse_wire_bytes, cold.reverse_wire_bytes);
  EXPECT_LT(warm.duration_s(), cold.duration_s());
}

// ----------------------------------------------------------------- detour ----

TEST(Detour, StoreAndForwardSumsLegs) {
  auto world = quiet_world();
  DetourResult result;
  world->detour_engine(ProviderKind::kGoogleDrive)
      .transfer(world->client_node(scenario::Client::kUBC),
                world->intermediate_node(scenario::Intermediate::kUAlberta),
                make_file_mb(20, 5),
                [&](const DetourResult& r) { result = r; });
  world->simulator().run();
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_GT(result.leg1_s, 0.0);
  EXPECT_GT(result.leg2_s, 0.0);
  EXPECT_NEAR(result.duration_s(), result.leg1_s + result.leg2_s, 1e-6);
}

TEST(Detour, PipelinedBeatsStoreAndForward) {
  auto run = [](DetourMode mode) {
    auto world = quiet_world();
    DetourResult result;
    DetourOptions options;
    options.mode = mode;
    world->detour_engine(ProviderKind::kGoogleDrive)
        .transfer(world->client_node(scenario::Client::kUBC),
                  world->intermediate_node(scenario::Intermediate::kUAlberta),
                  make_file_mb(60, 6),
                  [&](const DetourResult& r) { result = r; }, options);
    world->simulator().run();
    EXPECT_TRUE(result.success) << result.error;
    return result.duration_s();
  };
  const double saf = run(DetourMode::kStoreAndForward);
  const double pipe = run(DetourMode::kPipelined);
  EXPECT_LT(pipe, saf * 0.75);
  // Pipelining cannot beat the slower leg alone.
  EXPECT_GT(pipe, saf / 2.5);
}

TEST(Detour, PipelinedCommitsIntactObject) {
  auto world = quiet_world();
  const FileSpec file = make_file_mb(30, 7);
  DetourResult result;
  DetourOptions options;
  options.mode = DetourMode::kPipelined;
  world->detour_engine(ProviderKind::kOneDrive)
      .transfer(world->client_node(scenario::Client::kUBC),
                world->intermediate_node(scenario::Intermediate::kUAlberta),
                file, [&](const DetourResult& r) { result = r; }, options);
  world->simulator().run();
  ASSERT_TRUE(result.success) << result.error;
  const auto object = world->server(ProviderKind::kOneDrive).lookup(file.name);
  ASSERT_TRUE(object.has_value());
  EXPECT_EQ(object->size, file.bytes);
}

TEST(Detour, FailureInLegOneReported) {
  auto world = quiet_world();
  const auto client = world->client_node(scenario::Client::kUBC);
  world->fabric().fail_link(
      world->topology()
          .find_link(world->node("planetlab1.cs.ubc.ca"),
                     world->node("cs-gw.net.ubc.ca"))
          .value());
  DetourResult result;
  result.success = true;
  world->detour_engine(ProviderKind::kGoogleDrive)
      .transfer(client,
                world->intermediate_node(scenario::Intermediate::kUAlberta),
                make_file_mb(10, 8),
                [&](const DetourResult& r) { result = r; });
  world->simulator().run();
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.error.find("leg 1"), std::string::npos);
}

}  // namespace
}  // namespace droute::transfer

// ---------------------------------------------------------------- parallel ----

namespace droute::transfer {
namespace {

TEST(ParallelPush, StreamsDefeatPerFlowPolicer) {
  // UBC -> Google front end crosses the 9.3 Mbps per-flow PacificWave
  // policer; N stripes each get their own allowance.
  auto run = [](int streams) {
    scenario::WorldConfig config;
    config.cross_traffic = false;
    auto world = scenario::World::create(config);
    ParallelPushEngine engine(&world->fabric());
    ParallelPushResult result;
    engine.push(world->client_node(scenario::Client::kUBC),
                world->provider_node(cloud::ProviderKind::kGoogleDrive),
                make_file_mb(40, 1), streams,
                [&](const ParallelPushResult& r) { result = r; });
    world->simulator().run();
    EXPECT_TRUE(result.success) << result.error;
    return result.duration_s();
  };
  const double one = run(1);
  const double four = run(4);
  EXPECT_NEAR(one / four, 4.0, 0.5);
}

TEST(ParallelPush, BoundedByLinkCapacityNotStreams) {
  // UBC -> UAlberta is capacity-bound (50 Mbps research uplink): extra
  // streams cannot exceed the shared link.
  auto run = [](int streams) {
    scenario::WorldConfig config;
    config.cross_traffic = false;
    auto world = scenario::World::create(config);
    ParallelPushEngine engine(&world->fabric());
    ParallelPushResult result;
    engine.push(world->client_node(scenario::Client::kUBC),
                world->intermediate_node(scenario::Intermediate::kUAlberta),
                make_file_mb(40, 2), streams,
                [&](const ParallelPushResult& r) { result = r; });
    world->simulator().run();
    EXPECT_TRUE(result.success);
    return result.duration_s();
  };
  const double two = run(2);
  const double eight = run(8);
  // 2 streams already saturate the 50 Mbps link; 8 gain little.
  EXPECT_GT(eight, two * 0.8);
}

TEST(ParallelPush, SingleStreamMatchesPlainFlow) {
  scenario::WorldConfig config;
  config.cross_traffic = false;
  auto world = scenario::World::create(config);
  ParallelPushEngine engine(&world->fabric());
  ParallelPushResult result;
  engine.push(world->client_node(scenario::Client::kUBC),
              world->intermediate_node(scenario::Intermediate::kUAlberta),
              make_file_mb(20, 3), 1,
              [&](const ParallelPushResult& r) { result = r; });
  world->simulator().run();
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.streams, 1);
  EXPECT_NEAR(result.slowest_stream_s, result.duration_s(), 1e-9);
}

TEST(ParallelPush, MoreStreamsThanBytesIsClamped) {
  scenario::WorldConfig config;
  config.cross_traffic = false;
  auto world = scenario::World::create(config);
  ParallelPushEngine engine(&world->fabric());
  FileSpec tiny;
  tiny.name = "tiny";
  tiny.bytes = 3;
  tiny.seed = 1;
  ParallelPushResult result;
  engine.push(world->client_node(scenario::Client::kUBC),
              world->intermediate_node(scenario::Intermediate::kUAlberta),
              tiny, 16, [&](const ParallelPushResult& r) { result = r; });
  world->simulator().run();
  EXPECT_TRUE(result.success);
}

TEST(ParallelPush, FailureReportedOnce) {
  scenario::WorldConfig config;
  config.cross_traffic = false;
  auto world = scenario::World::create(config);
  // Cut UBC off entirely: the first stripe is rejected synchronously.
  world->fabric().fail_link(
      world->topology()
          .find_link(world->node("planetlab1.cs.ubc.ca"),
                     world->node("cs-gw.net.ubc.ca"))
          .value());
  ParallelPushEngine engine(&world->fabric());
  int calls = 0;
  ParallelPushResult result;
  engine.push(world->client_node(scenario::Client::kUBC),
              world->intermediate_node(scenario::Intermediate::kUAlberta),
              make_file_mb(10, 4), 4, [&](const ParallelPushResult& r) {
                ++calls;
                result = r;
              });
  world->simulator().run();
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(result.success);
}

}  // namespace
}  // namespace droute::transfer
