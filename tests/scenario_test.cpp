#include <gtest/gtest.h>

#include "measure/campaign.h"
#include "scenario/north_america.h"
#include "util/units.h"

namespace droute::scenario {
namespace {

using cloud::ProviderKind;

constexpr std::uint64_t k100MB = 100 * util::kMB;
constexpr std::uint64_t k10MB = 10 * util::kMB;

double run_once(Client client, ProviderKind provider, RouteChoice route,
                std::uint64_t bytes, std::uint64_t seed = 1,
                bool cross_traffic = false) {
  WorldConfig config;
  config.seed = seed;
  config.cross_traffic = cross_traffic;
  auto world = World::create(config);
  auto elapsed = world->run_upload(client, provider, route, bytes);
  EXPECT_TRUE(elapsed.ok()) << elapsed.error().message;
  return elapsed.value_or(-1.0);
}

// ------------------------------------------------- headline calibrations ----

TEST(Calibration, UbcGoogleDirectMatchesTable2) {
  // Table II: 100 MB direct = 86.92 s. Accept +/- 10%.
  const double t = run_once(Client::kUBC, ProviderKind::kGoogleDrive,
                            RouteChoice::kDirect, k100MB);
  EXPECT_NEAR(t, 86.92, 8.7);
}

TEST(Calibration, UbcGoogleViaUAlbertaMatchesTable2) {
  // Table II: 100 MB via UAlberta = 35.79 s. Accept +/- 15%.
  const double t = run_once(Client::kUBC, ProviderKind::kGoogleDrive,
                            RouteChoice::kViaUAlberta, k100MB);
  EXPECT_NEAR(t, 35.79, 5.4);
}

TEST(Calibration, UbcGoogleViaUMichMatchesTable2) {
  // Table II: 100 MB via UMich = 132.17 s (worse than direct). +/- 15%.
  const double t = run_once(Client::kUBC, ProviderKind::kGoogleDrive,
                            RouteChoice::kViaUMich, k100MB);
  EXPECT_NEAR(t, 132.17, 19.8);
}

TEST(Calibration, IntroRsyncLegUbcToUAlberta) {
  // Sec I: 100 MB UBC -> UAlberta over CANARIE takes ~19 s.
  WorldConfig config;
  config.cross_traffic = false;
  auto world = World::create(config);
  auto t = world->run_rsync("planetlab1.cs.ubc.ca", "cluster.cs.ualberta.ca",
                            k100MB);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(t.value(), 19.0, 3.0);
}

TEST(Calibration, UAlbertaGoogleLegMatchesIntro) {
  // Sec I: UAlberta -> Google Drive ~17 s for 100 MB.
  WorldConfig config;
  config.cross_traffic = false;
  auto world = World::create(config);
  bool done = false;
  double elapsed = 0.0;
  world->api_engine(ProviderKind::kGoogleDrive)
      .upload(world->intermediate_node(Intermediate::kUAlberta),
              transfer::make_file_mb(100, 9),
              [&](const transfer::UploadResult& r) {
                done = true;
                EXPECT_TRUE(r.success);
                elapsed = r.duration_s();
              });
  world->simulator().run();
  ASSERT_TRUE(done);
  EXPECT_NEAR(elapsed, 17.0, 2.6);
}

TEST(TableOne, RowA_UbcOrderings) {
  // Table I row (A): GDrive fastest via UAlberta, direct fast, via UMich
  // slowest; Dropbox and OneDrive direct fastest, via UMich slowest.
  for (const auto provider : cloud::all_providers()) {
    const double direct = run_once(Client::kUBC, provider,
                                   RouteChoice::kDirect, k100MB);
    const double via_ua = run_once(Client::kUBC, provider,
                                   RouteChoice::kViaUAlberta, k100MB);
    const double via_um = run_once(Client::kUBC, provider,
                                   RouteChoice::kViaUMich, k100MB);
    if (provider == ProviderKind::kGoogleDrive) {
      EXPECT_LT(via_ua, direct);
      EXPECT_LT(direct, via_um);
      // The paper's headline: >50% saving for most sizes.
      EXPECT_LT(via_ua, direct * 0.5);
    } else {
      EXPECT_LT(direct, via_ua) << provider_name(provider);
      EXPECT_LT(via_ua, via_um) << provider_name(provider);
    }
  }
}

TEST(TableOne, RowB_PurdueGoogleDetoursWinBig) {
  // Table III: both detours beat direct by ~70-84%. The congested commodity
  // path is heavy-tailed, so judge by the paper's protocol (mean over runs),
  // not a single draw.
  measure::Campaign campaign(11);
  for (const auto route : all_routes()) {
    campaign.add_route(route_name(route),
                       make_transfer_fn(Client::kPurdue,
                                        ProviderKind::kGoogleDrive, route));
  }
  measure::Protocol protocol;
  protocol.total_runs = 5;
  protocol.keep_last = 5;
  const double direct =
      campaign.measure("Direct", k100MB, protocol).kept.mean;
  const double via_ua =
      campaign.measure("via UAlberta", k100MB, protocol).kept.mean;
  const double via_um =
      campaign.measure("via UMich", k100MB, protocol).kept.mean;
  EXPECT_GT(direct, via_ua * 2.0);
  EXPECT_GT(direct, via_um * 2.0);
  // The detours themselves stay in the paper's ballpark (184-196 s).
  EXPECT_NEAR(via_ua, 190.0, 60.0);
  EXPECT_NEAR(via_um, 185.0, 60.0);
}

TEST(TableOne, RowB_PurdueDropboxDirectCompetitive) {
  // Fig 8: direct is generally no worse than the detours for Dropbox.
  const double direct = run_once(Client::kPurdue, ProviderKind::kDropbox,
                                 RouteChoice::kDirect, k100MB, 4, true);
  const double via_ua = run_once(Client::kPurdue, ProviderKind::kDropbox,
                                 RouteChoice::kViaUAlberta, k100MB, 4, true);
  EXPECT_LT(direct, via_ua * 1.15);
}

TEST(TableOne, RowC_UclaLastMileDominatesEverything) {
  // Figs 10/11: every route from UCLA is slow; direct is fastest because a
  // detour only adds a second leg behind the same bottleneck.
  for (const auto provider :
       {ProviderKind::kGoogleDrive, ProviderKind::kDropbox}) {
    const double direct = run_once(Client::kUCLA, provider,
                                   RouteChoice::kDirect, k10MB);
    const double via_ua = run_once(Client::kUCLA, provider,
                                   RouteChoice::kViaUAlberta, k10MB);
    const double via_um = run_once(Client::kUCLA, provider,
                                   RouteChoice::kViaUMich, k10MB);
    EXPECT_LT(direct, via_ua);
    EXPECT_LT(direct, via_um);
    // Last-mile cap ~1.6 Mbps => 10 MB takes at least ~45 s on any route.
    EXPECT_GT(direct, 45.0);
    // The paper's Table V note for (C): via UMich is the slowest detour.
    EXPECT_LT(via_ua, via_um);
  }
}

TEST(Scenario, FileSizeScalingIsMonotonic) {
  double last = 0.0;
  for (const std::uint64_t bytes : paper_file_sizes_bytes()) {
    const double t = run_once(Client::kUBC, ProviderKind::kGoogleDrive,
                              RouteChoice::kDirect, bytes);
    EXPECT_GT(t, last);
    last = t;
  }
}

TEST(Scenario, DeterministicPerSeed) {
  const double a = run_once(Client::kPurdue, ProviderKind::kGoogleDrive,
                            RouteChoice::kDirect, k10MB, 77, true);
  const double b = run_once(Client::kPurdue, ProviderKind::kGoogleDrive,
                            RouteChoice::kDirect, k10MB, 77, true);
  const double c = run_once(Client::kPurdue, ProviderKind::kGoogleDrive,
                            RouteChoice::kDirect, k10MB, 78, true);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Scenario, CrossTrafficCreatesRunToRunVariance) {
  measure::Campaign campaign(123);
  campaign.add_route("purdue-gdrive-direct",
                     make_transfer_fn(Client::kPurdue,
                                      ProviderKind::kGoogleDrive,
                                      RouteChoice::kDirect));
  const auto m = campaign.measure("purdue-gdrive-direct", 30 * util::kMB);
  ASSERT_EQ(m.failures, 0);
  EXPECT_GT(m.kept.stddev / m.kept.mean, 0.02);  // visibly noisy
}

TEST(Scenario, QuietWorldJitterIsSmallAcrossSeeds) {
  // Without cross traffic the only seed dependence is the small shaper-rate
  // jitter: different seeds land within a few percent, same seed exactly.
  const double a = run_once(Client::kUBC, ProviderKind::kGoogleDrive,
                            RouteChoice::kDirect, k10MB, 1);
  const double b = run_once(Client::kUBC, ProviderKind::kGoogleDrive,
                            RouteChoice::kDirect, k10MB, 999);
  EXPECT_NEAR(a, b, a * 0.15);
  EXPECT_NE(a, b);  // jitter is applied
  const double a_again = run_once(Client::kUBC, ProviderKind::kGoogleDrive,
                                  RouteChoice::kDirect, k10MB, 1);
  EXPECT_DOUBLE_EQ(a, a_again);
}

TEST(Scenario, JitterCanBeDisabled) {
  WorldConfig config;
  config.cross_traffic = false;
  config.rate_jitter_cv = 0.0;
  auto run = [&](std::uint64_t seed) {
    config.seed = seed;
    auto world = World::create(config);
    return world
        ->run_upload(Client::kUBC, ProviderKind::kGoogleDrive,
                     RouteChoice::kDirect, k10MB)
        .value();
  };
  EXPECT_DOUBLE_EQ(run(1), run(999));
}

TEST(Scenario, UbcOutgoingBandwidthIsNotTheBottleneck) {
  // Sec III-A: "the outgoing bandwidth at UBC is not really the bottleneck"
  // — UBC pushes 100 MB to UAlberta ~4.5x faster than to Google directly.
  WorldConfig config;
  config.cross_traffic = false;
  auto world = World::create(config);
  const double to_ua =
      world->run_rsync("planetlab1.cs.ubc.ca", "cluster.cs.ualberta.ca",
                       k100MB)
          .value();
  const double to_google = run_once(Client::kUBC, ProviderKind::kGoogleDrive,
                                    RouteChoice::kDirect, k100MB);
  EXPECT_GT(to_google, to_ua * 3.0);
}

TEST(Scenario, ProviderFrontEndsAtPaperLocations) {
  WorldConfig config;
  config.cross_traffic = false;
  auto world = World::create(config);
  const auto& registry = world->registry();
  // Sec II: Ashburn VA (Dropbox), Mountain View CA (GDrive), Seattle WA
  // (OneDrive).
  EXPECT_EQ(registry.lookup("content.dropboxapi.com")->city, "Ashburn, VA");
  EXPECT_EQ(registry.lookup("sea15s01-in-f138.1e100.net")->city,
            "Mountain View, CA");
  EXPECT_EQ(registry.lookup("onedrive-fe.wns.windows.com")->city,
            "Seattle, WA");
}

TEST(Scenario, UploadsCommitToStorageServers) {
  WorldConfig config;
  config.cross_traffic = false;
  auto world = World::create(config);
  ASSERT_TRUE(world
                  ->run_upload(Client::kUBC, ProviderKind::kDropbox,
                               RouteChoice::kViaUAlberta, k10MB)
                  .ok());
  EXPECT_EQ(world->server(ProviderKind::kDropbox).object_count(), 1u);
  EXPECT_EQ(world->server(ProviderKind::kDropbox).open_sessions(), 0u);
}

TEST(Scenario, PipelinedDetourBeatsStoreAndForward) {
  WorldConfig config;
  config.cross_traffic = false;
  auto saf_world = World::create(config);
  const double saf =
      saf_world
          ->run_upload(Client::kUBC, ProviderKind::kGoogleDrive,
                       RouteChoice::kViaUAlberta, k100MB,
                       transfer::DetourMode::kStoreAndForward)
          .value();
  auto pipe_world = World::create(config);
  const double pipe =
      pipe_world
          ->run_upload(Client::kUBC, ProviderKind::kGoogleDrive,
                       RouteChoice::kViaUAlberta, k100MB,
                       transfer::DetourMode::kPipelined)
          .value();
  EXPECT_LT(pipe, saf * 0.8);
}

}  // namespace
}  // namespace droute::scenario
