#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "check/contract.h"
#include "util/blob.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace droute::util {
namespace {

// ---------------------------------------------------------------- units ----

TEST(Units, MbpsBytesRoundTrip) {
  EXPECT_DOUBLE_EQ(mbps_to_bytes_per_sec(8.0), 1e6);
  EXPECT_DOUBLE_EQ(bytes_per_sec_to_mbps(1e6), 8.0);
  for (double rate : {0.1, 1.0, 9.3, 44.0, 10000.0}) {
    EXPECT_NEAR(bytes_per_sec_to_mbps(mbps_to_bytes_per_sec(rate)), rate,
                1e-12);
  }
}

TEST(Units, SecondsAtRate) {
  // 100 MB at 8 Mbps = 100e6 bytes at 1e6 B/s = 100 s.
  EXPECT_DOUBLE_EQ(seconds_at_rate(100 * kMB, 8.0), 100.0);
}

TEST(Units, TimeHelpers) {
  EXPECT_DOUBLE_EQ(ms(250.0), 0.25);
  EXPECT_DOUBLE_EQ(us(1500.0), 0.0015);
}

// ------------------------------------------------------------------ rng ----

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 9);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / kN, 2.5, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  constexpr int kN = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.pareto(1.3, 1.0, 100.0);
    ASSERT_GE(x, 1.0 - 1e-9);
    ASSERT_LE(x, 100.0 + 1e-9);
  }
}

TEST(Rng, LognormalMeanCv) {
  Rng rng(19);
  constexpr int kN = 40000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.lognormal_mean_cv(5.0, 0.4);
  EXPECT_NEAR(sum / kN, 5.0, 0.12);
}

TEST(Rng, LognormalZeroCvIsExact) {
  Rng rng(21);
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cv(7.5, 0.0), 7.5);
}

TEST(Rng, ForkIndependence) {
  Rng parent(23);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  EXPECT_NE(child1.next_u64(), child2.next_u64());
}

TEST(Rng, SplitIsDeterministicPerKey) {
  const Rng parent(23);
  Rng first = parent.split(1);
  Rng second = parent.split(1);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(first.next_u64(), second.next_u64());
  }
}

TEST(Rng, SplitKeysGiveIndependentStreams) {
  const Rng parent(23);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int collisions = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, SplitDoesNotPerturbParent) {
  Rng witness(23);
  Rng parent(23);
  // The whole point of split vs fork: derive as many children as you like
  // and the parent's own stream is untouched.
  (void)parent.split(7);
  (void)parent.split(8);
  (void)parent.split(9);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(parent.next_u64(), witness.next_u64());
  }
}

TEST(Rng, SplitDependsOnParentState) {
  Rng early(23);
  Rng late(23);
  (void)late.next_u64();  // advance: split must key off current state
  Rng from_early = early.split(1);
  Rng from_late = late.split(1);
  EXPECT_NE(from_early.next_u64(), from_late.next_u64());
}

// ---------------------------------------------------------------- result ----

TEST(Result, SuccessAndError) {
  Result<int> ok(5);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  EXPECT_EQ(ok.value_or(9), 5);

  Result<int> err(Error::make("boom", 3));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().message, "boom");
  EXPECT_EQ(err.error().code, 3);
  EXPECT_EQ(err.value_or(9), 9);
}

TEST(Result, StatusVariants) {
  EXPECT_TRUE(Status::success().ok());
  const Status failure = Status::failure("nope", 7);
  EXPECT_FALSE(failure.ok());
  EXPECT_EQ(failure.error().code, 7);
}

TEST(Result, CheckThrowsOnViolation) {
  EXPECT_THROW(
      { DROUTE_CHECK(false, "expected failure"); }, std::logic_error);
}

// ----------------------------------------------------------------- table ----

TEST(Table, RendersAlignedColumns) {
  TextTable table({"a", "long-header"});
  table.add_row({"xxxx", "1"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| a    "), std::string::npos);
  EXPECT_NE(out.find("| long-header |"), std::string::npos);
  EXPECT_NE(out.find("| xxxx "), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  TextTable table({"k", "v"});
  table.add_row({"with,comma", "with\"quote"});
  const std::string csv = table.render_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_seconds(86.917), "86.92");
  EXPECT_EQ(fmt_percent(-0.5555), "-55.55%");
  EXPECT_EQ(fmt_percent(0.6295), "+62.95%");
  EXPECT_EQ(fmt_mb(100 * kMB), "100");
  EXPECT_EQ(fmt_mbps(9.3), "9.3 Mbps");
}

// ------------------------------------------------------------ thread pool ----

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.parallel_for(100, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [](std::size_t i) {
                          if (i == 2) throw std::runtime_error("task failed");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForRunsEveryIndexEvenWhenOneThrows) {
  // Regression: a throwing body used to abandon the rest of the batch —
  // the caller rethrew off the first future and the still-queued tasks ran
  // (or dangled) behind its back. Every index must execute exactly once
  // before the exception surfaces.
  ThreadPool pool(4);
  std::array<std::atomic<int>, 8> ran{};
  try {
    pool.parallel_for(ran.size(), [&](std::size_t i) {
      ran[i].fetch_add(1);
      if (i == 3) throw std::runtime_error("index 3");
    });
    FAIL() << "parallel_for swallowed the exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 3");
  }
  for (std::size_t i = 0; i < ran.size(); ++i) {
    EXPECT_EQ(ran[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForRethrowsLowestFailingIndex) {
  // With several failures the *lowest* index wins — a deterministic pick,
  // unlike "whichever task a worker finished first".
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    try {
      pool.parallel_for(16, [](std::size_t i) {
        if (i % 2 == 1) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "parallel_for swallowed the exceptions";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "1");
    }
  }
}

TEST(ThreadPool, ParallelForReduceFoldsInIndexOrder) {
  // The fold must be the serial left fold regardless of pool size: string
  // concatenation is order-sensitive, so any scheduling leak shows up.
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    const std::string folded = pool.parallel_for_reduce(
        10, std::string{},
        [](std::size_t i) { return std::to_string(i); },
        [](std::string acc, std::string r) { return acc + r; });
    EXPECT_EQ(folded, "0123456789") << threads << " threads";
  }
}

TEST(ThreadPool, ParallelForReduceFloatingPointIsPoolSizeInvariant) {
  // Left-fold summation of values at wildly different magnitudes is not
  // associative in floating point; bit-identical results across pool sizes
  // prove the reduction tree depends on the count alone.
  const auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    return pool.parallel_for_reduce(
        1000, 0.0,
        [](std::size_t i) {
          return std::ldexp(1.0, static_cast<int>(i % 64) - 32);
        },
        [](double acc, double r) { return acc + r; });
  };
  const double reference = run(1);
  for (std::size_t threads : {2u, 3u, 4u, 8u}) {
    EXPECT_EQ(reference, run(threads)) << threads << " threads";
  }
}

TEST(ThreadPool, NestedParallelForFromWorkerRunsInline) {
  // A worker of the pool re-entering parallel_for must not deadlock waiting
  // on tasks only it could drain; the batch runs inline instead.
  ThreadPool pool(1);
  std::atomic<int> inner{0};
  auto outer = pool.submit([&] {
    pool.parallel_for(5, [&](std::size_t) { inner.fetch_add(1); });
    return inner.load();
  });
  EXPECT_EQ(outer.get(), 5);
}

// ------------------------------------------------------------------ blob ----

TEST(Blob, DeterministicContent) {
  Rng a(99), b(99);
  EXPECT_EQ(make_random_blob(a, 1000), make_random_blob(b, 1000));
}

TEST(Blob, OddSizesFilled) {
  Rng rng(1);
  for (std::size_t size : {0u, 1u, 7u, 8u, 9u, 1023u}) {
    EXPECT_EQ(make_random_blob(rng, size).size(), size);
  }
}

}  // namespace
}  // namespace droute::util

// --------------------------------------------------------------- logging ----

namespace droute::util {
namespace {

TEST(Logging, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::kWarn);  // safe default
}

TEST(Logging, ThresholdRoundTrip) {
  const LogLevel before = log_threshold();
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  // Suppressed statements must not evaluate their stream arguments.
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return "x";
  };
  DROUTE_LOG(kDebug) << count();
  EXPECT_EQ(evaluations, 0);
  set_log_threshold(LogLevel::kDebug);
  DROUTE_LOG(kDebug) << count();
  EXPECT_EQ(evaluations, 1);
  set_log_threshold(before);
}

}  // namespace
}  // namespace droute::util
