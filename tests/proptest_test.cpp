#include <gtest/gtest.h>

#include <string>

#include "chaos/case_io.h"
#include "chaos/scenario.h"
#include "chaos/shrink.h"

namespace droute::chaos {
namespace {

// ----------------------------------------------------------- generation ----

TEST(RandomCase, DeterministicPerSeed) {
  for (std::uint64_t seed : {1ull, 42ull, 31337ull}) {
    EXPECT_EQ(random_case(seed), random_case(seed));
  }
}

TEST(RandomCase, SplitStreamsIsolateComponents) {
  // Chaos draws come from an independent substream (split key 3), so
  // changing the plan budget must not perturb the topology or workload.
  CaseSpec quiet;
  quiet.max_chaos_events = 0;
  const Case with_chaos = random_case(7);
  const Case without_chaos = random_case(7, quiet);
  EXPECT_EQ(with_chaos.topology, without_chaos.topology);
  EXPECT_EQ(with_chaos.server_node, without_chaos.server_node);
  EXPECT_TRUE(with_chaos.work == without_chaos.work);
  EXPECT_TRUE(without_chaos.plan.events.empty());
}

TEST(RandomCase, WorkItemsReferenceValidHosts) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const Case c = random_case(seed);
    const auto hosts = c.topology.hosts();
    auto is_host = [&hosts](int node) {
      for (int h : hosts) {
        if (h == node) return true;
      }
      return false;
    };
    EXPECT_TRUE(is_host(c.server_node)) << "seed " << seed;
    for (const WorkItem& item : c.work) {
      EXPECT_TRUE(is_host(item.client)) << "seed " << seed;
      EXPECT_NE(item.client, c.server_node) << "seed " << seed;
      // Steered items carry no via (the controller picks the path online);
      // batched items stripe straight to the server, also via-less.
      if (item.kind != WorkKind::kApiUpload && item.kind != WorkKind::kSteered &&
          item.kind != WorkKind::kBatched) {
        EXPECT_TRUE(is_host(item.via)) << "seed " << seed;
        EXPECT_NE(item.via, item.client) << "seed " << seed;
      }
      EXPECT_GT(item.bytes, 0u);
    }
  }
}

// --------------------------------------------------------- serialization ----

TEST(CaseIo, RoundTripsByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const Case original = random_case(seed);
    const std::string text = format_case(original, "detour_identity");
    auto parsed = parse_case(text);
    ASSERT_TRUE(parsed.ok()) << "seed " << seed << ": "
                             << parsed.error().message;
    EXPECT_EQ(parsed.value(), original) << "seed " << seed;
    EXPECT_EQ(format_case(parsed.value(), "detour_identity"), text)
        << "seed " << seed;
  }
}

TEST(CaseIo, HeadersCarrySeedAndViolatedProperty) {
  const Case c = random_case(99);
  const std::string text = format_case(c, "session_leak");
  EXPECT_NE(text.find("# droute proptest case v1"), std::string::npos);
  EXPECT_NE(text.find("# seed: 99"), std::string::npos);
  EXPECT_NE(text.find("# violated: session_leak"), std::string::npos);
  // Empty property name serializes as "none" (hand-written corpus entries).
  EXPECT_NE(format_case(c, "").find("# violated: none"), std::string::npos);
}

TEST(CaseIo, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_case("work 1.0 teleport 0 1 5 5").ok());
  EXPECT_FALSE(parse_case("topo_rel 0 1 frenemy").ok());
  EXPECT_FALSE(parse_case("quux").ok());
}

TEST(WorkKind, NamesRoundTrip) {
  for (WorkKind kind :
       {WorkKind::kApiUpload, WorkKind::kDetour, WorkKind::kDetourPipelined,
        WorkKind::kRsyncPush, WorkKind::kSteered, WorkKind::kBatched}) {
    auto parsed = parse_work_kind(work_kind_name(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(parse_work_kind("teleport").ok());
}

// -------------------------------------------------------------- run_case ----

TEST(RunCase, PropertiesHoldOnRandomScenarios) {
  // The gtest-resident smoke slice of the fuzzer; CI's fuzz-smoke job runs
  // hundreds more through the proptest binary.
  std::size_t successes = 0;
  std::size_t injected = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RunReport report = run_case(random_case(seed));
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": '" << report.violated
                             << "' — " << report.detail;
    injected += report.injected;
    for (const WorkOutcome& outcome : report.outcomes) {
      if (outcome.success) ++successes;
    }
  }
  // The harness only means something if scenarios genuinely exercise the
  // stack: across 8 seeds some transfers must succeed end-to-end and some
  // chaos must actually land.
  EXPECT_GT(successes, 0u);
  EXPECT_GT(injected, 0u);
}

TEST(RunCase, DigestIsReproducible) {
  for (std::uint64_t seed : {3ull, 11ull}) {
    const Case c = random_case(seed);
    const RunReport first = run_case(c);
    const RunReport second = run_case(c);
    EXPECT_EQ(first.digest, second.digest) << "seed " << seed;
    EXPECT_EQ(first.violated, second.violated) << "seed " << seed;
    EXPECT_EQ(first.injected, second.injected) << "seed " << seed;
  }
}

TEST(RunCase, SurvivesSerializationRoundTrip) {
  const Case c = random_case(5);
  auto parsed = parse_case(format_case(c, "none"));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(run_case(c).digest, run_case(parsed.value()).digest);
}

// ---------------------------------------------------------------- shrink ----

TEST(Shrink, DropLinkRemapsEventTargets) {
  Case c = random_case(1);
  c.plan.events.clear();
  const auto links = static_cast<std::int32_t>(c.topology.links.size());
  ASSERT_GE(links, 3);
  c.plan.events.push_back({1.0, EventKind::kLinkFail, 0, 0.0});
  c.plan.events.push_back({2.0, EventKind::kCapacityRewrite, 1, 500.0});
  c.plan.events.push_back({3.0, EventKind::kPolicerRewrite, 2, 10.0});
  c.plan.events.push_back({4.0, EventKind::kNodeCrash, 2, 0.0});  // node id
  const Case after = drop_link(c, 1);
  ASSERT_EQ(after.topology.links.size(),
            static_cast<std::size_t>(links - 1));
  ASSERT_EQ(after.plan.events.size(), 3u);  // the capacity event went away
  EXPECT_EQ(after.plan.events[0].target, 0);  // below: untouched
  EXPECT_EQ(after.plan.events[1].target, 1);  // above: shifted down
  EXPECT_EQ(after.plan.events[2].target, 2);  // node target: untouched
}

TEST(Shrink, GreedyShrinkReachesStructuralMinimum) {
  Case c = random_case(2);
  c.plan.events.clear();
  c.plan.events.push_back({1.0, EventKind::kLinkFail, 0, 0.0});
  c.plan.events.push_back({2.0, EventKind::kThrottleStorm, 0, 2.0});
  c.plan.events.push_back({3.0, EventKind::kFlowAbort, 1, 0.0});
  // Synthetic oracle: the "bug" reproduces whenever a link_fail survives.
  auto oracle = [](const Case& candidate) {
    for (const Event& event : candidate.plan.events) {
      if (event.kind == EventKind::kLinkFail) return true;
    }
    return false;
  };
  ShrinkStats stats;
  const Case minimal = shrink(c, oracle, 500, &stats);
  ASSERT_EQ(minimal.plan.events.size(), 1u);
  EXPECT_EQ(minimal.plan.events[0].kind, EventKind::kLinkFail);
  EXPECT_TRUE(minimal.work.empty());
  EXPECT_GT(stats.oracle_calls, 0u);
  EXPECT_GT(stats.links_dropped, 0u);  // unneeded links shaken out too
}

TEST(Shrink, IsIdempotent) {
  Case c = random_case(4);
  c.plan.events.push_back({1.0, EventKind::kLinkFail, 0, 0.0});
  auto oracle = [](const Case& candidate) {
    for (const Event& event : candidate.plan.events) {
      if (event.kind == EventKind::kLinkFail) return true;
    }
    return false;
  };
  const Case once = shrink(c, oracle, 500);
  ShrinkStats again_stats;
  const Case twice = shrink(once, oracle, 500, &again_stats);
  EXPECT_EQ(once, twice);
  EXPECT_EQ(again_stats.events_dropped, 0u);
  EXPECT_EQ(again_stats.links_dropped, 0u);
  EXPECT_EQ(again_stats.work_dropped, 0u);
}

TEST(Shrink, RespectsAttemptBudget) {
  Case c = random_case(6);
  std::size_t calls = 0;
  auto oracle = [&calls](const Case&) {
    ++calls;
    return false;  // nothing reproduces: every deletion is rejected
  };
  ShrinkStats stats;
  const Case result = shrink(c, oracle, 10, &stats);
  EXPECT_EQ(result, c);
  EXPECT_LE(stats.oracle_calls, 10u);
  EXPECT_EQ(calls, stats.oracle_calls);
}

}  // namespace
}  // namespace droute::chaos
