#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/blob.h"
#include "util/rng.h"
#include "wire/client.h"
#include "wire/rate_limiter.h"
#include "wire/relay.h"
#include "wire/sink.h"
#include "wire/socket.h"

namespace droute::wire {
namespace {

TEST(RateLimiter, UnlimitedNeverBlocks) {
  RateLimiter limiter(0.0);
  EXPECT_TRUE(limiter.unlimited());
  const auto start = std::chrono::steady_clock::now();
  limiter.acquire(100 * 1000 * 1000);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 0.05);
}

TEST(RateLimiter, SustainedRateIsAccurate) {
  // 8 MB/s, push 2 MB in 64 KiB chunks: should take ~0.25 s (burst credit
  // shaves the first bucket).
  RateLimiter limiter(8e6);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 32; ++i) limiter.acquire(64 * 1024);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GT(elapsed, 0.1);
  EXPECT_LT(elapsed, 0.5);
}

TEST(RateLimiter, PeekDoesNotConsume) {
  RateLimiter limiter(1e6, 1000);
  limiter.acquire(1000);  // drain the bucket
  const auto delay1 = limiter.peek_delay(500);
  const auto delay2 = limiter.peek_delay(500);
  EXPECT_GT(delay1.count(), 0);
  // Peeks must not consume tokens (second peek not larger than ~first).
  EXPECT_LE(delay2.count(), delay1.count() + 1000000);
}

TEST(Socket, U64FramingRoundTrip) {
  auto listener = Listener::bind(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto stream = listener.value().accept();
    ASSERT_TRUE(stream.ok());
    auto value = stream.value().recv_u64();
    ASSERT_TRUE(value.ok());
    EXPECT_TRUE(stream.value().send_u64(value.value() * 2).ok());
  });
  auto client = connect_local(listener.value().port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().send_u64(0x1234567890abcdefull).ok());
  auto doubled = client.value().recv_u64();
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 0x1234567890abcdefull * 2);
  server.join();
}

TEST(Socket, ConnectToClosedPortFails) {
  // Bind-then-close to find a port that is (very likely) not listening.
  auto listener = Listener::bind(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value().port();
  listener.value().shutdown();
  EXPECT_FALSE(connect_local(port).ok());
}

class WirePlane : public ::testing::Test {
 protected:
  void SetUp() override {
    // One sink, two ingress ports: a policed one (1 MB/s) standing in for
    // the PacificWave path, and an open one for the peering path.
    auto slow = sink_.add_ingress(1e6);
    auto fast = sink_.add_ingress(0.0);
    ASSERT_TRUE(slow.ok());
    ASSERT_TRUE(fast.ok());
    slow_port_ = slow.value();
    fast_port_ = fast.value();
    ASSERT_TRUE(sink_.start().ok());

    util::Rng rng(42);
    payload_ = util::make_random_blob(rng, 4 * 1000 * 1000);
  }

  void TearDown() override { sink_.stop(); }

  Sink sink_;
  std::uint16_t slow_port_ = 0;
  std::uint16_t fast_port_ = 0;
  util::Blob payload_;
};

TEST_F(WirePlane, DirectUploadVerifiesDigest) {
  auto timing = upload_direct(fast_port_, payload_);
  ASSERT_TRUE(timing.ok()) << timing.error().message;
  EXPECT_TRUE(timing.value().digest_ok);
  EXPECT_EQ(sink_.objects_received(), 1u);
  EXPECT_EQ(sink_.bytes_received(), payload_.size());
}

TEST_F(WirePlane, PolicedIngressIsSlower) {
  auto fast = upload_direct(fast_port_, payload_);
  auto slow = upload_direct(slow_port_, payload_);
  ASSERT_TRUE(fast.ok() && slow.ok());
  EXPECT_TRUE(slow.value().digest_ok);
  // 4 MB at 1 MB/s ~= 4 s vs loopback-speed upload.
  EXPECT_GT(slow.value().seconds, fast.value().seconds * 5);
}

TEST_F(WirePlane, RelayDetourBeatsPolicedDirect) {
  // The paper's mitigation, on real sockets: direct is policed at 1 MB/s;
  // the relay reaches the open ingress and is itself unthrottled.
  RelayDaemon relay;
  auto relay_port = relay.start();
  ASSERT_TRUE(relay_port.ok());

  auto direct = upload_direct(slow_port_, payload_);
  auto detour = upload_via_relay(relay_port.value(), fast_port_, payload_);
  ASSERT_TRUE(direct.ok() && detour.ok());
  EXPECT_TRUE(detour.value().digest_ok);
  EXPECT_GT(direct.value().seconds, detour.value().seconds * 3);
  EXPECT_EQ(relay.objects_relayed(), 1u);
  relay.stop();
}

TEST_F(WirePlane, StreamingRelayNotSlowerThanStoreAndForward) {
  RelayDaemon::Options saf_options;
  saf_options.mode = RelayMode::kStoreAndForward;
  saf_options.ingress_rate_bytes_per_s = 8e6;
  saf_options.egress_rate_bytes_per_s = 8e6;
  RelayDaemon saf(saf_options);
  auto saf_port = saf.start();
  ASSERT_TRUE(saf_port.ok());

  RelayDaemon::Options stream_options = saf_options;
  stream_options.mode = RelayMode::kStreaming;
  RelayDaemon streaming(stream_options);
  auto stream_port = streaming.start();
  ASSERT_TRUE(stream_port.ok());

  auto t_saf = upload_via_relay(saf_port.value(), fast_port_, payload_);
  auto t_stream = upload_via_relay(stream_port.value(), fast_port_, payload_);
  ASSERT_TRUE(t_saf.ok() && t_stream.ok());
  EXPECT_TRUE(t_saf.value().digest_ok);
  EXPECT_TRUE(t_stream.value().digest_ok);
  // Store-and-forward pays both legs in sequence (~1 s); streaming overlaps
  // them (~0.5 s). Generous margin for CI jitter.
  EXPECT_LT(t_stream.value().seconds, t_saf.value().seconds * 0.85);
}

TEST_F(WirePlane, RelayToDeadSinkDropsConnection) {
  RelayDaemon relay;
  auto relay_port = relay.start();
  ASSERT_TRUE(relay_port.ok());
  // Find a dead port.
  auto probe = Listener::bind(0);
  ASSERT_TRUE(probe.ok());
  const std::uint16_t dead = probe.value().port();
  probe.value().shutdown();

  auto result = upload_via_relay(relay_port.value(), dead, payload_);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(relay.objects_relayed(), 0u);
  relay.stop();
}

TEST_F(WirePlane, ConcurrentClientsAllVerified) {
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> verified{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      util::Rng rng(100 + static_cast<std::uint64_t>(i));
      const util::Blob data = util::make_random_blob(rng, 500 * 1000);
      auto timing = upload_direct(fast_port_, data);
      if (timing.ok() && timing.value().digest_ok) verified.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(verified.load(), kClients);
}

}  // namespace
}  // namespace droute::wire
