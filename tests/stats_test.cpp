#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "stats/overlap.h"

namespace droute::stats {
namespace {

TEST(Descriptive, BasicMoments) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  // Sample stddev with n-1: variance = 32/7.
  EXPECT_NEAR(sample_stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, EdgeCases) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(sample_stddev({}), 0.0);
  const std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(sample_stddev(one), 0.0);
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Descriptive, SummaryFields) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(summarize(even).median, 2.5);
}

TEST(Descriptive, CoefficientOfVariation) {
  const std::vector<double> xs{10.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 0.0);
  EXPECT_DOUBLE_EQ(coefficient_of_variation({}), 0.0);
}

TEST(Descriptive, KeepLastImplementsPaperProtocol) {
  // "mean of the last five runs among a total of seven runs" (Sec II):
  // the first two warm-up runs are dropped.
  const std::vector<double> runs{100.0, 90.0, 10.0, 10.0, 10.0, 10.0, 10.0};
  const Summary s = keep_last_summary(runs, 5);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 10.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  // Fewer samples than keep_last: keep everything.
  const Summary all = keep_last_summary(std::vector<double>{5.0, 7.0}, 5);
  EXPECT_EQ(all.count, 2u);
}

// ---------------------------------------------------------------- overlap ----

TEST(Overlap, PaperTableIVExample) {
  // Sec III-B worked example: Dropbox direct 177.89 +/- 36.03 vs detours
  // 237.78 +/- 56.1 and 226.43 +/- 50.48 — all overlapping.
  const Interval direct{177.89, 36.03};
  const Interval via_ua{237.78, 56.10};
  const Interval via_umich{226.43, 50.48};
  EXPECT_TRUE(error_bars_overlap(direct, via_ua));
  EXPECT_TRUE(error_bars_overlap(direct, via_umich));
  EXPECT_FALSE(clearly_faster(via_ua, direct));
  EXPECT_FALSE(clearly_faster(direct, via_ua));
}

TEST(Overlap, ClearSeparation) {
  // Table II-style case: UBC direct 86.92 vs via UAlberta 35.79 with small
  // error bars — clearly separated.
  const Interval direct{86.92, 2.0};
  const Interval detour{35.79, 2.0};
  EXPECT_FALSE(error_bars_overlap(direct, detour));
  EXPECT_TRUE(clearly_faster(detour, direct));
  EXPECT_FALSE(clearly_faster(direct, detour));
}

TEST(Overlap, TouchingBarsCountAsOverlap) {
  const Interval a{10.0, 2.0};
  const Interval b{14.0, 2.0};  // a.high == b.low == 12
  EXPECT_TRUE(error_bars_overlap(a, b));
}

TEST(Overlap, WelchTDetectsDifference) {
  const Interval fast{35.79, 2.0};
  const Interval slow{86.92, 2.0};
  const double t = welch_t(slow, 5, fast, 5);
  EXPECT_GT(t, 10.0);  // wildly significant
  const double df = welch_df(slow, 5, fast, 5);
  EXPECT_NEAR(df, 8.0, 0.1);  // equal variances -> ~n1+n2-2
}

TEST(Judge, LowerBetterPicksClearWinnerAndKeepsBaselineOnOverlap) {
  // Transfer times: the detour finishes in 36 s vs 87 s direct, bars clear.
  const SignificanceDecision clear =
      judge_lower_better({35.79, 2.0}, {86.92, 2.0});
  EXPECT_EQ(clear.significance, Significance::kCandidateBetter);
  EXPECT_TRUE(clear.choose_candidate);
  EXPECT_FALSE(clear.overlap);
  EXPECT_GT(clear.gain, 0.5);
  // Overlapping bars: Sec III-B conservatism keeps the baseline even though
  // the candidate mean is better.
  const SignificanceDecision fuzzy =
      judge_lower_better({80.0, 10.0}, {86.92, 10.0});
  EXPECT_EQ(fuzzy.significance, Significance::kIndistinguishable);
  EXPECT_FALSE(fuzzy.choose_candidate);
  EXPECT_TRUE(fuzzy.overlap);
}

TEST(Judge, LowerBetterOverlapPreferenceIsConfigurable) {
  SignificanceOptions options;
  options.prefer_baseline_on_overlap = false;
  const SignificanceDecision verdict =
      judge_lower_better({80.0, 10.0}, {86.92, 10.0}, options);
  EXPECT_EQ(verdict.significance, Significance::kIndistinguishable);
  EXPECT_TRUE(verdict.choose_candidate);  // better mean wins when allowed
}

TEST(Judge, HigherBetterMirrorsForThroughput) {
  // Throughputs: candidate 100 Mbps vs baseline 20 Mbps, bars clear.
  const SignificanceDecision clear =
      judge_higher_better({100.0, 5.0}, {20.0, 5.0});
  EXPECT_EQ(clear.significance, Significance::kCandidateBetter);
  EXPECT_TRUE(clear.choose_candidate);
  EXPECT_NEAR(clear.gain, 4.0, 1e-9);  // (100 - 20) / 20
  // A worse candidate never wins regardless of options.
  const SignificanceDecision worse =
      judge_higher_better({10.0, 1.0}, {20.0, 1.0});
  EXPECT_EQ(worse.significance, Significance::kBaselineBetter);
  EXPECT_FALSE(worse.choose_candidate);
}

TEST(Judge, MinGainThresholdFiltersMarginalWins) {
  SignificanceOptions options;
  options.min_gain = 0.25;
  // 10% better and clear of overlap, but below the 25% gain floor.
  const SignificanceDecision verdict =
      judge_higher_better({110.0, 1.0}, {100.0, 1.0}, options);
  EXPECT_EQ(verdict.significance, Significance::kCandidateBetter);
  EXPECT_FALSE(verdict.choose_candidate);
}

TEST(Overlap, WelchTEdgeCases) {
  const Interval a{5.0, 0.0};
  EXPECT_DOUBLE_EQ(welch_t(a, 0, a, 5), 0.0);
  EXPECT_DOUBLE_EQ(welch_t(a, 5, a, 5), 0.0);  // zero variance, equal means
  EXPECT_DOUBLE_EQ(welch_df(a, 1, a, 5), 0.0);
}

}  // namespace
}  // namespace droute::stats
