// Cross-module integration: the full pipeline the paper implies —
// measure -> catalogue TIVs -> plan detours -> install overlay routes ->
// monitor and react to dynamic bottlenecks.
#include <gtest/gtest.h>

#include "core/monitor.h"
#include "core/overlay.h"
#include "core/planner.h"
#include "core/tiv.h"
#include "measure/campaign.h"
#include "scenario/north_america.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace droute {
namespace {

using cloud::ProviderKind;
using scenario::Client;
using scenario::RouteChoice;
using scenario::World;
using scenario::WorldConfig;

WorldConfig quiet() {
  WorldConfig config;
  config.cross_traffic = false;
  return config;
}

TEST(Integration, TivCatalogueFindsUAlbertaDetourForUbcGoogle) {
  // Build the intro's time matrix from simulated transfers, then run the
  // TIV detector: the UBC->(UAlberta)->GDrive violation must be found and
  // the UBC->(UMich)->GDrive non-violation must not.
  constexpr std::uint64_t kBytes = 100 * util::kMB;
  auto world1 = World::create(quiet());
  core::TimeMatrix matrix;
  matrix.set("UBC", "GDrive",
             world1
                 ->run_upload(Client::kUBC, ProviderKind::kGoogleDrive,
                              RouteChoice::kDirect, kBytes)
                 .value());
  auto world2 = World::create(quiet());
  matrix.set("UBC", "UAlberta",
             world2
                 ->run_rsync("planetlab1.cs.ubc.ca", "cluster.cs.ualberta.ca",
                             kBytes)
                 .value());
  auto world3 = World::create(quiet());
  matrix.set("UBC", "UMich",
             world3
                 ->run_rsync("planetlab1.cs.ubc.ca",
                             "planetlab01.eecs.umich.edu", kBytes)
                 .value());
  auto world4 = World::create(quiet());
  bool done = false;
  world4->api_engine(ProviderKind::kGoogleDrive)
      .upload(world4->intermediate_node(scenario::Intermediate::kUAlberta),
              transfer::make_file_mb(100, 1),
              [&](const transfer::UploadResult& r) {
                done = true;
                matrix.set("UAlberta", "GDrive", r.duration_s());
              });
  world4->simulator().run();
  ASSERT_TRUE(done);
  auto world5 = World::create(quiet());
  done = false;
  world5->api_engine(ProviderKind::kGoogleDrive)
      .upload(world5->intermediate_node(scenario::Intermediate::kUMich),
              transfer::make_file_mb(100, 2),
              [&](const transfer::UploadResult& r) {
                done = true;
                matrix.set("UMich", "GDrive", r.duration_s());
              });
  world5->simulator().run();
  ASSERT_TRUE(done);

  const auto violations = core::find_violations(matrix);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].via, "UAlberta");
  EXPECT_EQ(violations[0].dst, "GDrive");
  EXPECT_GT(violations[0].speedup, 2.0);
}

TEST(Integration, PlannerSelectsPaperRoutesPerClient) {
  // Automatic detour selection over the real scenario: UBC->GDrive should
  // pick via UAlberta; UBC->Dropbox should stay direct.
  auto plan_for = [](ProviderKind provider) {
    core::DetourPlanner::Options options;
    options.probes_per_size = 1;
    core::DetourPlanner planner(options);
    planner.add_candidate("Direct",
                          scenario::make_transfer_fn(Client::kUBC, provider,
                                                     RouteChoice::kDirect,
                                                     quiet()),
                          true);
    planner.add_candidate("via UAlberta",
                          scenario::make_transfer_fn(
                              Client::kUBC, provider,
                              RouteChoice::kViaUAlberta, quiet()),
                          false);
    planner.add_candidate("via UMich",
                          scenario::make_transfer_fn(Client::kUBC, provider,
                                                     RouteChoice::kViaUMich,
                                                     quiet()),
                          false);
    auto report = planner.plan(100 * util::kMB);
    EXPECT_TRUE(report.ok());
    return report.value();
  };

  const auto gdrive = plan_for(ProviderKind::kGoogleDrive);
  EXPECT_EQ(gdrive.decision.route_key, "via UAlberta");
  const auto dropbox = plan_for(ProviderKind::kDropbox);
  EXPECT_EQ(dropbox.decision.route_key, "Direct");

  // Probe cost is charged and is much cheaper than one bad 100 MB transfer.
  EXPECT_GT(gdrive.probe_cost_s, 0.0);
  EXPECT_LT(gdrive.probe_bytes, 100 * util::kMB);
}

TEST(Integration, OverlayWorkflowInstallsPlannerDecisions) {
  core::OverlayTable overlay;
  core::DetourPlanner::Options options;
  options.probes_per_size = 1;
  core::DetourPlanner planner(options);
  planner.add_candidate(
      "Direct",
      scenario::make_transfer_fn(Client::kUBC, ProviderKind::kGoogleDrive,
                                 RouteChoice::kDirect, quiet()),
      true);
  planner.add_candidate(
      "via UAlberta",
      scenario::make_transfer_fn(Client::kUBC, ProviderKind::kGoogleDrive,
                                 RouteChoice::kViaUAlberta, quiet()),
      false);
  const auto report = planner.plan(60 * util::kMB).value();

  core::OverlayEntry entry;
  entry.client = "UBC";
  entry.provider = "Google Drive";
  entry.route_key = report.decision.route_key;
  entry.expected_s = report.decision.expected_s;
  entry.confidence = report.decision.confidence;
  entry.decided_for_bytes = 60 * util::kMB;
  overlay.install(entry);

  const auto installed = overlay.lookup("UBC", "Google Drive");
  ASSERT_TRUE(installed.has_value());
  EXPECT_EQ(installed->route_key, "via UAlberta");
  EXPECT_GT(installed->expected_s, 0.0);
}

TEST(Integration, MonitorDetectsInjectedBottleneckShift) {
  // Probe UBC->UAlberta repeatedly; then cut the UAlberta research uplink
  // to a crawl by failing the wide path (link failure forces re-route or
  // collapse) and verify the monitor flags the route.
  core::DynamicMonitor monitor;
  constexpr std::uint64_t kProbe = 5 * util::kMB;

  for (int i = 0; i < 4; ++i) {
    auto world = World::create(quiet());
    const double t =
        world->run_rsync("planetlab1.cs.ubc.ca", "cluster.cs.ualberta.ca",
                         kProbe)
            .value();
    monitor.observe("ubc->ualberta", kProbe * 8e-6 / t);
  }
  ASSERT_FALSE(monitor.is_degraded("ubc->ualberta"));
  const double healthy = monitor.baseline_mbps("ubc->ualberta").value();
  // Effective probe throughput sits below the 44 Mbps slice cap because a
  // 5 MB probe amortizes handshakes and slow start poorly.
  EXPECT_GT(healthy, 28.0);
  EXPECT_LT(healthy, 46.0);

  // Degraded worlds: tighten the UBC PlanetLab shaping to a crawl (a new
  // bottleneck appearing on the path) and feed real probe observations.
  for (int i = 0; i < 3; ++i) {
    auto world = World::create(quiet());
    ASSERT_TRUE(world->topology()
                    .set_middlebox(world->node("cs-gw.net.ubc.ca"), 4.0)
                    .ok());
    const double t =
        world->run_rsync("planetlab1.cs.ubc.ca", "cluster.cs.ualberta.ca",
                         kProbe)
            .value();
    monitor.observe("ubc->ualberta", kProbe * 8e-6 / t);
  }
  EXPECT_TRUE(monitor.is_degraded("ubc->ualberta"));
}

TEST(Integration, CampaignGridRunsInParallelDeterministically) {
  measure::Campaign campaign(2026);
  campaign.add_route("ubc-gdrive-direct",
                     scenario::make_transfer_fn(Client::kUBC,
                                                ProviderKind::kGoogleDrive,
                                                RouteChoice::kDirect));
  campaign.add_route("ubc-gdrive-via-ua",
                     scenario::make_transfer_fn(Client::kUBC,
                                                ProviderKind::kGoogleDrive,
                                                RouteChoice::kViaUAlberta));
  measure::Protocol fast_protocol;
  fast_protocol.total_runs = 3;
  fast_protocol.keep_last = 2;

  util::ThreadPool pool(4);
  const auto parallel = campaign.run_grid({10 * util::kMB}, fast_protocol,
                                          &pool);
  const auto sequential = campaign.run_grid({10 * util::kMB}, fast_protocol);
  ASSERT_EQ(parallel.size(), 2u);
  for (const auto& [key, m] : parallel) {
    const auto& other = sequential.at(key);
    ASSERT_EQ(m.runs.size(), other.runs.size());
    for (std::size_t i = 0; i < m.runs.size(); ++i) {
      EXPECT_DOUBLE_EQ(m.runs[i], other.runs[i]);
    }
  }
  EXPECT_LT(parallel.at({"ubc-gdrive-via-ua", 10 * util::kMB}).kept.mean,
            parallel.at({"ubc-gdrive-direct", 10 * util::kMB}).kept.mean);
}

TEST(Integration, MiddleboxAblationScienceDmz) {
  // Science-DMZ hypothesis: adding a per-flow firewall ceiling at the
  // UAlberta campus firewall slows the detour; removing it restores the
  // paper's numbers. (The ww-fw hop exists in Fig 6's traceroute.)
  auto baseline_world = World::create(quiet());
  const double baseline =
      baseline_world
          ->run_upload(Client::kUBC, ProviderKind::kGoogleDrive,
                       RouteChoice::kViaUAlberta, 50 * util::kMB)
          .value();

  auto firewalled_world = World::create(quiet());
  // Throttle the UAlberta firewall node to 10 Mbps per flow.
  ASSERT_TRUE(firewalled_world->topology()
                  .set_middlebox(firewalled_world->node("ww-fw.cs.ualberta.ca"),
                                 10.0)
                  .ok());
  const double firewalled =
      firewalled_world
          ->run_upload(Client::kUBC, ProviderKind::kGoogleDrive,
                       RouteChoice::kViaUAlberta, 50 * util::kMB)
          .value();
  EXPECT_GT(firewalled, baseline * 1.5);
}

}  // namespace
}  // namespace droute
