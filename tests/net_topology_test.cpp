#include <gtest/gtest.h>

#include <cmath>

#include "net/tcp_model.h"
#include "net/topology.h"
#include "util/units.h"

namespace droute::net {
namespace {

geo::Coord here() { return {50.0, -100.0}; }

TEST(TopologyBuilder, BuildsValidTwoAsWorld) {
  Topology::Builder b;
  const AsId a = b.add_as("A");
  const AsId g = b.add_as("G");
  b.relate(a, g, AsRelation::kPeer);
  const NodeId host = b.add_host(a, "host.a", here(), "Nowhere");
  const NodeId rtr = b.add_router(g, "rtr.g", here());
  b.add_duplex(host, rtr, 100.0, 0.001);
  auto topo = std::move(b).build();
  ASSERT_TRUE(topo.ok()) << topo.error().message;
  EXPECT_EQ(topo.value().node_count(), 2u);
  EXPECT_EQ(topo.value().link_count(), 2u);
  EXPECT_EQ(topo.value().as_count(), 2u);
}

TEST(TopologyBuilder, AssignsUniqueIps) {
  Topology::Builder b;
  const AsId a = b.add_as("A");
  const NodeId n1 = b.add_host(a, "h1", here());
  const NodeId n2 = b.add_host(a, "h2", here());
  auto topo = std::move(b).build();
  ASSERT_TRUE(topo.ok());
  EXPECT_NE(topo.value().node(n1).ip.value, topo.value().node(n2).ip.value);
  // Registry can resolve both names and IPs.
  EXPECT_TRUE(topo.value().registry().lookup("h1").has_value());
  EXPECT_TRUE(
      topo.value().registry().lookup_ip(topo.value().node(n2).ip).has_value());
}

TEST(TopologyBuilder, RejectsInterAsLinkWithoutRelation) {
  Topology::Builder b;
  const AsId a = b.add_as("A");
  const AsId c = b.add_as("C");
  const NodeId n1 = b.add_host(a, "h1", here());
  const NodeId n2 = b.add_host(c, "h2", here());
  b.add_duplex(n1, n2, 100.0, 0.001);
  EXPECT_FALSE(std::move(b).build().ok());
}

TEST(TopologyBuilder, RejectsDuplicateNames) {
  Topology::Builder b;
  const AsId a = b.add_as("A");
  b.add_host(a, "same", here());
  b.add_host(a, "same", here());
  EXPECT_FALSE(std::move(b).build().ok());
}

TEST(TopologyBuilder, RejectsBadLinkParams) {
  {
    Topology::Builder b;
    const AsId a = b.add_as("A");
    const NodeId n1 = b.add_host(a, "h1", here());
    const NodeId n2 = b.add_host(a, "h2", here());
    b.add_duplex(n1, n2, 0.0, 0.001);  // zero capacity
    EXPECT_FALSE(std::move(b).build().ok());
  }
  {
    Topology::Builder b;
    const AsId a = b.add_as("A");
    const NodeId n1 = b.add_host(a, "h1", here());
    const NodeId n2 = b.add_host(a, "h2", here());
    b.add_duplex(n1, n2, 10.0, 0.001, {.loss_rate = 1.5});  // loss >= 1
    EXPECT_FALSE(std::move(b).build().ok());
  }
}

TEST(Topology, RelationConverseIsRecorded) {
  Topology::Builder b;
  const AsId cust = b.add_as("Campus");
  const AsId prov = b.add_as("Transit");
  b.relate(prov, cust, AsRelation::kCustomer);  // campus is transit's customer
  const NodeId n1 = b.add_host(cust, "h", here());
  const NodeId n2 = b.add_router(prov, "r", here());
  b.add_duplex(n1, n2, 10.0, 0.001);
  auto topo = std::move(b).build();
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo.value().relation(prov, cust), AsRelation::kCustomer);
  EXPECT_EQ(topo.value().relation(cust, prov), AsRelation::kProvider);
}

TEST(Topology, FindLinkHonorsEnabledFlag) {
  Topology::Builder b;
  const AsId a = b.add_as("A");
  const NodeId n1 = b.add_host(a, "h1", here());
  const NodeId n2 = b.add_host(a, "h2", here());
  const LinkId forward = b.add_duplex(n1, n2, 10.0, 0.001);
  auto built = std::move(b).build();
  ASSERT_TRUE(built.ok());
  Topology topo = std::move(built).value();
  EXPECT_TRUE(topo.find_link(n1, n2).has_value());
  ASSERT_TRUE(topo.set_link_enabled(forward, false).ok());
  EXPECT_FALSE(topo.find_link(n1, n2).has_value());
  EXPECT_FALSE(topo.set_link_enabled(999, false).ok());
}

// ------------------------------------------------------------- tcp model ----

TEST(TcpModel, WindowLimit) {
  TcpParams params;
  params.rwnd_bytes = 1e6;
  // 1 MB window at 100 ms RTT = 10 MB/s = 80 Mbps.
  EXPECT_NEAR(window_limit_mbps(0.1, params), 80.0, 1e-9);
}

TEST(TcpModel, MathisDecreasesWithLossAndRtt) {
  TcpParams params;
  const double fast = mathis_limit_mbps(0.02, 0.0001, params);
  const double lossy = mathis_limit_mbps(0.02, 0.01, params);
  const double far = mathis_limit_mbps(0.2, 0.0001, params);
  EXPECT_GT(fast, lossy);
  EXPECT_GT(fast, far);
  EXPECT_TRUE(std::isinf(mathis_limit_mbps(0.02, 0.0, params)));
}

TEST(TcpModel, FlowCapTakesMinimum) {
  TcpParams params;
  params.rwnd_bytes = 1e9;  // window not limiting
  const double cap = flow_cap_mbps(0.05, 0.0, 9.3, 0.0, params);
  EXPECT_NEAR(cap, 9.3, 1e-9);
  const double mb = flow_cap_mbps(0.05, 0.0, 9.3, 4.0, params);
  EXPECT_NEAR(mb, 4.0, 1e-9);
}

TEST(TcpModel, SlowStartDelayGrowsWithTarget) {
  TcpParams params;
  const double slow = slow_start_delay_s(0.05, 5.0, params);
  const double fast = slow_start_delay_s(0.05, 500.0, params);
  EXPECT_LT(slow, fast);
  EXPECT_DOUBLE_EQ(slow_start_delay_s(0.05, 0.0, params), 0.0);
  // Tiny target below the initial window: no ramp at all.
  EXPECT_DOUBLE_EQ(slow_start_delay_s(0.05, 0.1, params), 0.0);
}

}  // namespace
}  // namespace droute::net
