#include <gtest/gtest.h>

#include "scenario/north_america.h"
#include "trace/route_monitor.h"

namespace droute::trace {
namespace {

class RouteMonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario::WorldConfig config;
    config.cross_traffic = false;
    world_ = scenario::World::create(config);
    monitor_ = std::make_unique<RouteMonitor>(&world_->tracer(),
                                              &world_->topology());
    src_ = world_->node("planetlab1.cs.ubc.ca");
    dst_ = world_->node("sea15s01-in-f138.1e100.net");
    monitor_->watch(src_, dst_);
  }

  std::unique_ptr<scenario::World> world_;
  std::unique_ptr<RouteMonitor> monitor_;
  net::NodeId src_{}, dst_{};
};

TEST_F(RouteMonitorTest, StableRouteProducesNoEvents) {
  EXPECT_TRUE(monitor_->snapshot().empty());  // first snapshot: baseline
  EXPECT_TRUE(monitor_->snapshot().empty());
  EXPECT_TRUE(monitor_->snapshot().empty());
  EXPECT_EQ(monitor_->snapshots_taken(), 3);
  EXPECT_TRUE(monitor_->history().empty());
}

TEST_F(RouteMonitorTest, DetectsRerouteAfterLinkFailure) {
  monitor_->snapshot();
  // Kill the PacificWave egress: UBC's Google traffic falls back to the
  // direct peering (the override link is disabled, so the override no
  // longer fires).
  const auto pwave_link =
      world_->topology().find_link(
          world_->node("vncv1rtr2.canarie.ca"),
          world_->node("google-1-lo-std-707.sttlwa.pacificwave.net"));
  ASSERT_TRUE(pwave_link.has_value());
  world_->fabric().fail_link(pwave_link.value());

  const auto changes = monitor_->snapshot();
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_FALSE(changes[0].became_unreachable);
  EXPECT_EQ(changes[0].src, src_);
  // The PacificWave hop left the path.
  const auto pwave_node =
      world_->node("google-1-lo-std-707.sttlwa.pacificwave.net");
  EXPECT_NE(std::find(changes[0].old_only.begin(), changes[0].old_only.end(),
                      pwave_node),
            changes[0].old_only.end());
  ASSERT_TRUE(changes[0].divergence_point.has_value());
  EXPECT_EQ(changes[0].divergence_point.value(),
            world_->node("vncv1rtr2.canarie.ca"));

  // And the new route is faster (the policer is gone) — the exact situation
  // DynamicMonitor + RouteMonitor exist to surface.
  EXPECT_TRUE(monitor_->snapshot().empty());  // stable again
  EXPECT_EQ(monitor_->history().size(), 1u);
}

TEST_F(RouteMonitorTest, DetectsUnreachabilityAndRecovery) {
  monitor_->snapshot();
  const auto uplink = world_->topology().find_link(
      src_, world_->node("cs-gw.net.ubc.ca"));
  ASSERT_TRUE(uplink.has_value());
  world_->fabric().fail_link(uplink.value());
  auto down = monitor_->snapshot();
  ASSERT_EQ(down.size(), 1u);
  EXPECT_TRUE(down[0].became_unreachable);

  world_->fabric().restore_link(uplink.value());
  auto up = monitor_->snapshot();
  ASSERT_EQ(up.size(), 1u);
  EXPECT_TRUE(up[0].became_reachable);
  EXPECT_EQ(monitor_->history().size(), 2u);
}

TEST_F(RouteMonitorTest, CurrentPathTracksLatest) {
  monitor_->snapshot();
  auto path = monitor_->current_path(src_, dst_);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->back(), dst_);
  EXPECT_FALSE(monitor_->current_path(dst_, src_).has_value());  // unwatched
}

TEST_F(RouteMonitorTest, RenderHistoryMentionsEvents) {
  monitor_->snapshot();
  const auto pwave_link =
      world_->topology().find_link(
          world_->node("vncv1rtr2.canarie.ca"),
          world_->node("google-1-lo-std-707.sttlwa.pacificwave.net"));
  world_->fabric().fail_link(pwave_link.value());
  monitor_->snapshot();
  const std::string text = monitor_->render_history();
  EXPECT_NE(text.find("re-routed"), std::string::npos);
  EXPECT_NE(text.find("vncv1rtr2.canarie.ca"), std::string::npos);
}

TEST_F(RouteMonitorTest, DuplicateWatchIsIdempotent) {
  monitor_->watch(src_, dst_);
  monitor_->watch(src_, dst_);
  monitor_->snapshot();
  EXPECT_TRUE(monitor_->snapshot().empty());
}

}  // namespace
}  // namespace droute::trace
