// Concurrency stress for util::ThreadPool, util::logging, the
// check::contract globals, the obs recorder, and the sim::Task coroutine
// layer. These tests are value-light on purpose: their job is to give TSan
// (the `tsan` preset) enough real contention to flag any data race in the
// shared state. They still assert the visible results so they earn their
// keep in uninstrumented runs too.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "check/contract.h"
#include "net/fabric.h"
#include "net/routing.h"
#include "net/topology.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace droute::util {
namespace {

TEST(ThreadPoolStress, ParallelForCountsEveryIndex) {
  ThreadPool pool(8);
  std::atomic<std::size_t> sum{0};
  constexpr std::size_t kCount = 10'000;
  pool.parallel_for(kCount, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kCount * (kCount - 1) / 2);
}

TEST(ThreadPoolStress, ConcurrentSubmittersShareOnePool) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 500;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksEach);
      for (int i = 0; i < kTasksEach; ++i) {
        futures.push_back(pool.submit(
            [&] { executed.fetch_add(1, std::memory_order_relaxed); }));
      }
      for (auto& future : futures) future.get();
    });
  }
  for (auto& thread : submitters) thread.join();
  EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolStress, ExceptionPropagatesUnderLoad) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(1000,
                                 [](std::size_t i) {
                                   if (i == 777) {
                                     throw std::runtime_error("task 777");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolStress, StatsTrackSubmissionAndExecution) {
  constexpr std::size_t kTasks = 2'000;
  ThreadPool pool(4);
  pool.parallel_for(kTasks, [](std::size_t) {});
  const ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.submitted, kTasks);
  EXPECT_EQ(stats.executed, kTasks);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_GE(stats.peak_queued, 1u);
  EXPECT_LE(stats.peak_queued, kTasks);
  EXPECT_EQ(pool.tasks_executed(), kTasks);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolStress, RepeatedConstructionAndTeardown) {
  // Races between worker startup, a short burst of work and the draining
  // destructor are the classic pool lifecycle bugs.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(3);
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(LoggingStress, ConcurrentWritersAndThresholdFlips) {
  const LogLevel saved = log_threshold();
  // Writers log below threshold (dropped: exercises the fast path) while a
  // flipper toggles the global threshold — the atomic every DROUTE_LOG
  // statement reads.
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      set_log_threshold(LogLevel::kError);
      set_log_threshold(LogLevel::kOff);
    }
  });
  ThreadPool pool(6);
  pool.parallel_for(600, [](std::size_t i) {
    DROUTE_LOG(kDebug) << "stress line " << i;  // dropped at kWarn+
  });
  stop.store(true);
  flipper.join();
  set_log_threshold(saved);
  SUCCEED();  // no crash / no TSan report is the assertion
}

TEST(ContractStress, TogglesAndHandlerSwapsAreRaceFree) {
  const bool saved = check::debug_checks_enabled();
  ThreadPool pool(6);
  pool.parallel_for(600, [](std::size_t i) {
    if (i % 3 == 0) {
      check::set_debug_checks(i % 2 == 0);
    } else {
      (void)check::debug_checks_enabled();
      (void)check::failure_handler();
    }
  });
  check::set_debug_checks(saved);
  EXPECT_EQ(check::debug_checks_enabled(), saved);
}

TEST(ContractStress, ConcurrentFailuresEachThrow) {
  ThreadPool pool(6);
  std::atomic<int> caught{0};
  pool.parallel_for(200, [&](std::size_t) {
    try {
      DROUTE_CHECK(false, "stress violation");
    } catch (const check::CheckError&) {
      caught.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(caught.load(), 200);
}

TEST(RecorderStress, ConcurrentWritersAndSnapshotReaders) {
  // Writers hammer every instrument kind and the span buffer while a reader
  // repeatedly exports the full CSV — the exact contention pattern of a
  // parallel campaign being dumped mid-flight.
  obs::Recorder recorder;
  obs::ScopedRecorder install(&recorder);
  constexpr int kWriters = 6;
  constexpr int kOpsEach = 2'000;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)obs::metrics_csv(recorder.metrics());
      (void)recorder.spans();
    }
  });

  ThreadPool pool(kWriters);
  pool.parallel_for(kWriters, [&](std::size_t w) {
    obs::Counter* hits = obs::counter("stress.hits_total");
    obs::Gauge* depth = obs::gauge("stress.depth");
    obs::Histogram* wait = obs::histogram("stress.wait_s");
    obs::ScopedTrack scoped(0, static_cast<std::uint32_t>(w));
    for (int i = 0; i < kOpsEach; ++i) {
      obs::add(hits);
      obs::set(depth, static_cast<double>(i));
      obs::observe(wait, 1e-3 * static_cast<double>(i % 100));
      obs::count("stress.named_total");
      if (i % 10 == 0) {
        obs::emit_span("stress.op", obs::Clock::kWall, 0.0,
                       1e-3 * static_cast<double>(i));
      }
    }
  });
  stop.store(true);
  reader.join();

  EXPECT_EQ(recorder.metrics().counter("stress.hits_total")->value(),
            static_cast<std::uint64_t>(kWriters) * kOpsEach);
  EXPECT_EQ(recorder.metrics().counter("stress.named_total")->value(),
            static_cast<std::uint64_t>(kWriters) * kOpsEach);
  const auto snap = recorder.metrics().histogram("stress.wait_s")->snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kWriters) * kOpsEach);
  EXPECT_EQ(recorder.span_count() + recorder.dropped_spans(),
            static_cast<std::uint64_t>(kWriters) * (kOpsEach / 10));
}

TEST(RecorderStress, InstallUninstallRacesWithOneShotCounts) {
  // obs::count() resolves the global recorder on every call; flipping the
  // installation concurrently exercises the acquire/release handoff. Bumps
  // land in the recorder or vanish — either is fine, racing is not.
  obs::Recorder recorder;
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      obs::set_recorder(&recorder);
      obs::set_recorder(nullptr);
    }
  });
  ThreadPool pool(4);
  pool.parallel_for(400, [](std::size_t) {
    obs::count("stress.flicker_total");
    (void)obs::enabled();
  });
  stop.store(true);
  flipper.join();
  obs::set_recorder(nullptr);
  SUCCEED();  // no crash / no TSan report is the assertion
}

}  // namespace
}  // namespace droute::util

namespace droute::net {
namespace {

std::uint64_t fnv1a_mix(std::uint64_t hash, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xff;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// One self-contained run of the shard storm: `kPods` disconnected
/// mini-dumbbells (each pod is its own sharing component, so every
/// fabric-wide event produces a multi-component fill batch that
/// AllocMode::kSharded fans out across workers), hammered by link flaps,
/// capacity rewrites, app-throttled flow churn and out-of-band reallocations
/// from a seeded script. Returns an FNV-1a digest over every flow outcome —
/// byte-identical digests across repeat runs are the determinism assertion;
/// the concurrent component refills inside are what TSan watches.
std::uint64_t run_shard_storm(int workers, std::uint64_t seed) {
  constexpr int kPods = 24;
  constexpr int kRounds = 40;

  Topology::Builder builder;
  const AsId as = builder.add_as("AS");
  NodeId src[kPods], dst[kPods];
  LinkId shared[kPods];
  for (int p = 0; p < kPods; ++p) {
    const NodeId left = builder.add_router(as, "l" + std::to_string(p),
                                           {50, -100});
    const NodeId right = builder.add_router(as, "r" + std::to_string(p),
                                            {50, -99});
    src[p] = builder.add_host(as, "s" + std::to_string(p), {50, -100});
    dst[p] = builder.add_host(as, "d" + std::to_string(p), {50, -99});
    builder.add_duplex(src[p], left, 10000, 0.0005);
    builder.add_duplex(right, dst[p], 10000, 0.0005);
    shared[p] = builder.add_duplex(left, right, 100.0, 0.005);
  }
  auto built = std::move(builder).build();
  EXPECT_TRUE(built.ok());
  Topology topo = std::move(built).value();
  RouteTable routes(&topo);
  sim::Simulator simulator;
  Fabric fabric(&simulator, &topo, &routes);
  fabric.set_alloc_mode(Fabric::AllocMode::kSharded);
  fabric.set_shard_workers(workers);

  std::uint64_t digest = 0xcbf29ce484222325ull;
  util::Rng rng(seed);
  std::vector<LinkId> failed;
  for (int round = 0; round < kRounds; ++round) {
    // Start a throttled flow in most pods — one start_flow event dirties one
    // component, but the storm keeps *every* pod live, so the flap/rewrite
    // events below each produce a dense multi-component batch.
    for (int p = 0; p < kPods; ++p) {
      if (rng.uniform() < 0.2) continue;
      FlowOptions options;
      options.charge_slow_start = false;
      options.app_cap_mbps = rng.uniform() < 0.5 ? rng.uniform(5.0, 60.0) : 0.0;
      const std::uint64_t bytes =
          static_cast<std::uint64_t>(rng.uniform_int(1, 8)) * util::kMB;
      auto flow = fabric.start_flow(
          src[p], dst[p], bytes,
          [&digest](const FlowStats& stats) {
            std::uint64_t end_bits;
            static_assert(sizeof end_bits == sizeof stats.end_time);
            std::memcpy(&end_bits, &stats.end_time, sizeof end_bits);
            digest = fnv1a_mix(digest, stats.id);
            digest = fnv1a_mix(digest, end_bits);
            digest = fnv1a_mix(digest,
                               static_cast<std::uint64_t>(stats.outcome));
          },
          options);
      // Flows into a pod whose shared link is down are unroutable — that
      // rejection must be deterministic too.
      digest = fnv1a_mix(digest, flow.ok() ? flow.value() : ~0ull);
    }
    // Link flap storm: fail a couple of pod bottlenecks, restore the oldest.
    for (int flap = 0; flap < 2; ++flap) {
      const LinkId link = shared[rng.uniform_int(0, kPods - 1)];
      fabric.fail_link(link);
      failed.push_back(link);
    }
    while (failed.size() > 3) {
      fabric.restore_link(failed.front());
      failed.erase(failed.begin());
    }
    // Capacity storm: rewrite several bottlenecks, then one fabric-wide
    // reallocation — the full-recompute path collects every live component
    // into a single batch (the widest parallel section this fabric has).
    for (int rewrite = 0; rewrite < 4; ++rewrite) {
      const LinkId link = shared[rng.uniform_int(0, kPods - 1)];
      EXPECT_TRUE(
          topo.set_link_capacity(link, rng.uniform(20.0, 500.0)).ok());
    }
    fabric.reallocate_now();
    simulator.run_until(simulator.now() + rng.uniform(0.05, 0.6));
  }
  simulator.run();
  EXPECT_EQ(simulator.pending(), 0u)
      << "events leaked after drain (workers " << workers << ")";
  EXPECT_EQ(fabric.active_flow_count(), 0u);
  digest = fnv1a_mix(digest, fabric.delivered_bytes());
  return digest;
}

TEST(ShardStress, ConcurrentComponentRefillsAreRaceFreeAndDeterministic) {
  // The TSan target for DESIGN.md §16: four workers water-filling disjoint
  // components concurrently while link flaps and capacity storms churn the
  // batches. A data race, a worker touching the simulator, or any
  // scheduling-order leak shows up as a TSan report or a digest mismatch.
  obs::Recorder recorder;
  obs::ScopedRecorder install(&recorder);
  const std::uint64_t first = run_shard_storm(/*workers=*/4, /*seed=*/17);
  const std::uint64_t again = run_shard_storm(/*workers=*/4, /*seed=*/17);
  EXPECT_EQ(first, again) << "same-seed sharded storm diverged";
  // And worker count must not matter either — inline execution is the oracle.
  const std::uint64_t inline_run = run_shard_storm(/*workers=*/1, /*seed=*/17);
  EXPECT_EQ(first, inline_run) << "worker count changed results";
  // Prove the storm actually exercised multi-component parallel batches
  // (shard fills strictly exceeding batches means components > 1 occurred).
  const auto* batches =
      recorder.metrics().counter("net.shard_batches_total");
  const auto* fills = recorder.metrics().counter("net.shard_fills_total");
  ASSERT_NE(batches, nullptr);
  ASSERT_NE(fills, nullptr);
  EXPECT_GT(batches->value(), 0u);
  EXPECT_GT(fills->value(), batches->value());
}

}  // namespace
}  // namespace droute::net

namespace droute::sim {
namespace {

Task<int> stress_sleeper(Simulator& simulator, double dt, int value) {
  auto nap = delay(simulator, dt);
  if (!co_await nap) {
    co_return util::Error::make("cancelled", kErrCancelled);
  }
  co_return value;
}

/// A binary spawn tree: leaves sleep concurrently, inner nodes join their
/// two children via all_of and sum. tree(3, 1) yields 8+...+15 = 92.
Task<int> stress_tree(Simulator& simulator, int depth, int value) {
  if (depth == 0) {
    auto leaf = stress_sleeper(simulator, 0.5, value);
    co_return co_await leaf;
  }
  std::vector<Task<int>> children;
  children.push_back(stress_tree(simulator, depth - 1, value * 2));
  children.push_back(stress_tree(simulator, depth - 1, value * 2 + 1));
  auto joined = all_of(std::move(children));
  const auto results = co_await joined;
  if (!results.ok()) co_return util::Error{results.error()};
  int sum = 0;
  for (const auto& result : results.value()) {
    if (!result.ok()) co_return util::Error{result.error()};
    sum += result.value();
  }
  co_return sum;
}

TEST(TaskStress, PerThreadSimulatorsRunTaskTreesConcurrently) {
  // Tasks are single-simulator-affine by design, so the concurrency
  // contract is "one simulator per thread, zero shared state". Hammering
  // spawn/join/cancel/timeout trees on many threads at once gives ASan and
  // TSan real coverage of the frame lifecycle — a hidden global or a
  // use-after-destroy in the Task machinery shows up here.
  constexpr int kThreads = 8;
  constexpr int kRounds = 30;
  std::atomic<int> good{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&good] {
      for (int round = 0; round < kRounds; ++round) {
        Simulator simulator;
        auto deep = stress_tree(simulator, 3, 1);
        auto guarded = with_timeout(
            simulator, stress_sleeper(simulator, 100.0, 5), 1.0);
        std::vector<Task<int>> racers;
        racers.push_back(stress_sleeper(simulator, 3.0, 30));
        racers.push_back(stress_sleeper(simulator, 2.0, 20));
        auto race = any_of(std::move(racers));
        auto doomed = stress_sleeper(simulator, 50.0, 7);
        simulator.run_until(0.25);
        doomed.cancel();
        simulator.run();
        const bool round_ok =
            deep.done() && deep.result().ok() && deep.result().value() == 92 &&
            guarded.done() && !guarded.result().ok() &&
            guarded.result().error().code == kErrTimeout && race.done() &&
            race.result().ok() && race.result().value().index == 1 &&
            race.result().value().result.value() == 20 && doomed.done() &&
            !doomed.result().ok() &&
            doomed.result().error().code == kErrCancelled &&
            simulator.pending() == 0;
        if (round_ok) good.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(good.load(), kThreads * kRounds);
}

}  // namespace
}  // namespace droute::sim
