// Concurrency stress for util::ThreadPool, util::logging and the
// check::contract globals. These tests are value-light on purpose: their
// job is to give TSan (the `tsan` preset) enough real contention to flag
// any data race in the shared state. They still assert the visible
// results so they earn their keep in uninstrumented runs too.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "check/contract.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace droute::util {
namespace {

TEST(ThreadPoolStress, ParallelForCountsEveryIndex) {
  ThreadPool pool(8);
  std::atomic<std::size_t> sum{0};
  constexpr std::size_t kCount = 10'000;
  pool.parallel_for(kCount, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kCount * (kCount - 1) / 2);
}

TEST(ThreadPoolStress, ConcurrentSubmittersShareOnePool) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 500;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksEach);
      for (int i = 0; i < kTasksEach; ++i) {
        futures.push_back(pool.submit(
            [&] { executed.fetch_add(1, std::memory_order_relaxed); }));
      }
      for (auto& future : futures) future.get();
    });
  }
  for (auto& thread : submitters) thread.join();
  EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolStress, ExceptionPropagatesUnderLoad) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(1000,
                                 [](std::size_t i) {
                                   if (i == 777) {
                                     throw std::runtime_error("task 777");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolStress, RepeatedConstructionAndTeardown) {
  // Races between worker startup, a short burst of work and the draining
  // destructor are the classic pool lifecycle bugs.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(3);
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(LoggingStress, ConcurrentWritersAndThresholdFlips) {
  const LogLevel saved = log_threshold();
  // Writers log below threshold (dropped: exercises the fast path) while a
  // flipper toggles the global threshold — the atomic every DROUTE_LOG
  // statement reads.
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      set_log_threshold(LogLevel::kError);
      set_log_threshold(LogLevel::kOff);
    }
  });
  ThreadPool pool(6);
  pool.parallel_for(600, [](std::size_t i) {
    DROUTE_LOG(kDebug) << "stress line " << i;  // dropped at kWarn+
  });
  stop.store(true);
  flipper.join();
  set_log_threshold(saved);
  SUCCEED();  // no crash / no TSan report is the assertion
}

TEST(ContractStress, TogglesAndHandlerSwapsAreRaceFree) {
  const bool saved = check::debug_checks_enabled();
  ThreadPool pool(6);
  pool.parallel_for(600, [](std::size_t i) {
    if (i % 3 == 0) {
      check::set_debug_checks(i % 2 == 0);
    } else {
      (void)check::debug_checks_enabled();
      (void)check::failure_handler();
    }
  });
  check::set_debug_checks(saved);
  EXPECT_EQ(check::debug_checks_enabled(), saved);
}

TEST(ContractStress, ConcurrentFailuresEachThrow) {
  ThreadPool pool(6);
  std::atomic<int> caught{0};
  pool.parallel_for(200, [&](std::size_t) {
    try {
      DROUTE_CHECK(false, "stress violation");
    } catch (const check::CheckError&) {
      caught.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(caught.load(), 200);
}

}  // namespace
}  // namespace droute::util
