#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ctrl/controller.h"
#include "ctrl/cost.h"
#include "ctrl/estimator.h"
#include "ctrl/policy.h"
#include "ctrl/steering.h"
#include "ctrl/trace.h"
#include "net/fabric.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace droute::ctrl {
namespace {

// ------------------------------------------------------------- PathSpec ----

TEST(PathSpec, LabelsAndOrdering) {
  EXPECT_EQ(PathSpec{}.label(), "direct");
  EXPECT_TRUE(PathSpec{}.direct());
  EXPECT_EQ(PathSpec{}.relay_hops(), 0);
  const PathSpec one{{4}};
  const PathSpec chain{{4, 7}};
  EXPECT_EQ(one.label(), "via 4");
  EXPECT_EQ(chain.label(), "via 4>7");
  EXPECT_EQ(chain.relay_hops(), 2);
  EXPECT_FALSE(one == chain);
  EXPECT_TRUE(PathSpec{} < one);
  EXPECT_TRUE(one < chain);
}

// ------------------------------------------------------------ estimator ----

TEST(Estimator, FirstSampleInitializesWithoutSmearing) {
  PathEstimator est;
  const PathSpec direct;
  EXPECT_EQ(est.lookup(1, 2, direct), nullptr);
  est.observe(1, 2, direct, 40.0, 2.5, 3);
  const PathStats* st = est.lookup(1, 2, direct);
  ASSERT_NE(st, nullptr);
  EXPECT_DOUBLE_EQ(st->mean_mbps, 40.0);
  EXPECT_DOUBLE_EQ(st->var_mbps2, 0.0);
  EXPECT_DOUBLE_EQ(st->mean_elapsed_s, 2.5);
  EXPECT_EQ(st->samples, 1u);
  EXPECT_EQ(st->last_epoch, 3u);
  EXPECT_EQ(est.tracked_paths(), 1u);
}

TEST(Estimator, EwRecurrenceMatchesHandComputation) {
  // West (1979) with alpha = 0.5:
  //   x=10 -> mean 10, var 0
  //   x=20 -> diff 10, incr 5, mean 15, var 0.5*(0 + 10*5) = 25
  //   x=30 -> diff 15, incr 7.5, mean 22.5, var 0.5*(25 + 15*7.5) = 68.75
  PathEstimator est(EstimatorConfig{0.5});
  const PathSpec path{{9}};
  est.observe(1, 2, path, 10.0, 1.0, 1);
  est.observe(1, 2, path, 20.0, 2.0, 2);
  est.observe(1, 2, path, 30.0, 3.0, 3);
  const PathStats* st = est.lookup(1, 2, path);
  ASSERT_NE(st, nullptr);
  EXPECT_DOUBLE_EQ(st->mean_mbps, 22.5);
  EXPECT_DOUBLE_EQ(st->var_mbps2, 68.75);
  // EWMA elapsed: 1 -> 1.5 -> 2.25.
  EXPECT_DOUBLE_EQ(st->mean_elapsed_s, 2.25);
  EXPECT_EQ(st->samples, 3u);
  EXPECT_EQ(st->last_epoch, 3u);
}

TEST(Estimator, FlagTivsRequiresClearSeparation) {
  PathEstimator est(EstimatorConfig{0.3});
  const PathSpec relay{{9}};
  // Direct 20 Mbps, relay 100 Mbps, both with tight bars: a throughput TIV.
  for (int i = 0; i < 4; ++i) {
    est.observe(1, 2, PathSpec{}, 20.0, 4.0, i + 1);
    est.observe(1, 2, relay, 100.0, 1.0, i + 1);
  }
  const auto flags = est.flag_tivs();
  ASSERT_EQ(flags.size(), 1u);
  EXPECT_EQ(flags[0].client, 1);
  EXPECT_EQ(flags[0].provider, 2);
  EXPECT_EQ(flags[0].path, relay);
  EXPECT_GT(flags[0].path_mbps, flags[0].direct_mbps);
}

TEST(Estimator, FlagTivsStaysQuietOnOverlapOrMissingDirect) {
  PathEstimator est(EstimatorConfig{0.5});
  const PathSpec relay{{9}};
  // Relay sampled but direct never measured: no baseline, no flag.
  est.observe(1, 2, relay, 100.0, 1.0, 1);
  EXPECT_TRUE(est.flag_tivs().empty());
  // Direct with bars wide enough to overlap the relay: Sec III-B says the
  // benefit is unsure, so no TIV either.
  est.observe(1, 2, PathSpec{}, 40.0, 2.0, 1);
  est.observe(1, 2, PathSpec{}, 160.0, 2.0, 2);  // huge spread
  EXPECT_TRUE(est.flag_tivs().empty());
}

// ----------------------------------------------------------- cost model ----

TEST(Cost, DirectPathCarriesNoPremium) {
  const CostModel model;
  EXPECT_DOUBLE_EQ(extra_path_cost_usd(model, 0, util::kGB, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(session_cost_usd(model, 0, util::kGB, 100.0),
                   model.egress_usd_per_gb);
}

TEST(Cost, PremiumScalesWithHopsBytesAndOccupancy) {
  CostModel model;
  model.relay_usd_per_gb = 0.02;
  model.relay_rental_usd_per_hour = 0.50;
  // 1 GB over one relay hop occupying the chain for one hour:
  // 0.02 * 1 * 1 + 0.50 * 1 * 1 = 0.52.
  EXPECT_DOUBLE_EQ(extra_path_cost_usd(model, 1, 1'000'000'000ull, 3600.0),
                   0.52);
  // Two hops double both terms.
  EXPECT_DOUBLE_EQ(extra_path_cost_usd(model, 2, 1'000'000'000ull, 3600.0),
                   1.04);
}

TEST(Cost, NetBenefitWeighsTimeSavedAgainstPremium) {
  CostModel model;
  model.relay_usd_per_gb = 0.02;
  model.relay_rental_usd_per_hour = 0.50;
  model.value_usd_per_hour_saved = 10.0;
  // Saving half an hour on 1 GB via one hop: 10*0.5 - (0.02 + 0.50*0.25) = 4.855.
  EXPECT_NEAR(net_benefit_usd(model, 1, 1'000'000'000ull, 2700.0, 900.0),
              4.855, 1e-12);
  // A slower detour has strictly negative benefit: you pay AND lose time.
  EXPECT_LT(net_benefit_usd(model, 1, 1'000'000'000ull, 900.0, 2700.0), 0.0);
  // Direct against itself scores zero.
  EXPECT_DOUBLE_EQ(net_benefit_usd(model, 0, util::kGB, 900.0, 900.0), 0.0);
}

// --------------------------------------------------------------- policy ----

PathStats make_stats(double mean_mbps, double var_mbps2) {
  PathStats st;
  st.mean_mbps = mean_mbps;
  st.var_mbps2 = var_mbps2;
  st.samples = 5;
  return st;
}

TEST(Policy, OverlapKeepsDirectEvenWithBetterRelayMean) {
  SteeringPolicy policy(PolicyConfig{}, CostModel{});
  const PathStats direct = make_stats(50.0, 100.0);  // 50 +/- 10
  const PathStats relay = make_stats(55.0, 100.0);   // 55 +/- 10: overlap
  const std::vector<SteeringPolicy::Candidate> candidates = {
      {PathSpec{}, true, &direct},
      {PathSpec{{9}}, true, &relay},
  };
  const Decision decision = policy.decide(1, 100 * util::kMB, candidates, 1, 0.0);
  EXPECT_TRUE(decision.path.direct());
  EXPECT_TRUE(decision.routable);
  EXPECT_DOUBLE_EQ(decision.benefit_usd, 0.0);
}

TEST(Policy, SignificantCostPositiveRelayAdoptedImmediatelyOnFirstDecision) {
  SteeringPolicy policy(PolicyConfig{}, CostModel{});
  const PathStats direct = make_stats(20.0, 1.0);
  const PathStats relay = make_stats(200.0, 1.0);
  const std::vector<SteeringPolicy::Candidate> candidates = {
      {PathSpec{}, true, &direct},
      {PathSpec{{9}}, true, &relay},
  };
  const Decision decision = policy.decide(1, util::kGB, candidates, 1, 2.0);
  EXPECT_EQ(decision.path, PathSpec{{9}});
  EXPECT_GT(decision.benefit_usd, 0.0);
  EXPECT_DOUBLE_EQ(decision.expected_mbps, 200.0);
  EXPECT_EQ(policy.incumbent(1), PathSpec{{9}});
  EXPECT_NE(decision.reason.find("first decision"), std::string::npos);
}

TEST(Policy, DwellThenMarginGateSwitches) {
  PolicyConfig config;
  config.min_dwell_epochs = 2;
  config.switch_margin = 0.10;
  SteeringPolicy policy(config, CostModel{});
  const PathStats direct = make_stats(20.0, 1.0);
  const PathStats slow_relay = make_stats(100.0, 1.0);
  const PathStats fast_relay = make_stats(105.0, 1.0);  // < 10% over slow
  const PathSpec a{{8}};
  const PathSpec b{{9}};
  // Epoch 1: only relay A is known; adopted.
  const std::vector<SteeringPolicy::Candidate> only_a = {
      {PathSpec{}, true, &direct},
      {a, true, &slow_relay},
  };
  EXPECT_EQ(policy.decide(1, util::kGB, only_a, 1, 0.0).path, a);
  // Epoch 2: B shows up with the best benefit, but the dwell holds A.
  const std::vector<SteeringPolicy::Candidate> both = {
      {PathSpec{}, true, &direct},
      {a, true, &slow_relay},
      {b, true, &fast_relay},
  };
  const Decision dwell = policy.decide(1, util::kGB, both, 2, 10.0);
  EXPECT_EQ(dwell.path, a);
  EXPECT_FALSE(dwell.switched);
  EXPECT_NE(dwell.reason.find("dwell"), std::string::npos);
  // Epoch 3: dwell expired, but B is only ~5% faster — under the 10%
  // margin, so the incumbent still holds (no thrash on noise).
  const Decision margin = policy.decide(1, util::kGB, both, 3, 20.0);
  EXPECT_EQ(margin.path, a);
  EXPECT_NE(margin.reason.find("margin"), std::string::npos);
  // A genuinely faster B clears the margin and takes over.
  const PathStats much_faster = make_stats(200.0, 1.0);
  const std::vector<SteeringPolicy::Candidate> upgraded = {
      {PathSpec{}, true, &direct},
      {a, true, &slow_relay},
      {b, true, &much_faster},
  };
  const Decision switched = policy.decide(1, util::kGB, upgraded, 4, 30.0);
  EXPECT_EQ(switched.path, b);
  EXPECT_TRUE(switched.switched);
}

TEST(Policy, RelayIncumbentReturnsToDirectWhenNoLongerJustified) {
  PolicyConfig config;
  config.min_dwell_epochs = 1;
  SteeringPolicy policy(config, CostModel{});
  const PathStats direct = make_stats(20.0, 1.0);
  const PathStats relay = make_stats(200.0, 1.0);
  const PathSpec a{{8}};
  const std::vector<SteeringPolicy::Candidate> tiv = {
      {PathSpec{}, true, &direct},
      {a, true, &relay},
  };
  EXPECT_EQ(policy.decide(1, util::kGB, tiv, 1, 0.0).path, a);
  // The relay collapses into the direct path's error bars: conservatism
  // sends the client back to direct once the dwell expires.
  const PathStats collapsed = make_stats(22.0, 100.0);
  const std::vector<SteeringPolicy::Candidate> faded = {
      {PathSpec{}, true, &direct},
      {a, true, &collapsed},
  };
  const Decision decision = policy.decide(1, util::kGB, faded, 3, 20.0);
  EXPECT_TRUE(decision.path.direct());
  EXPECT_TRUE(decision.switched);
  EXPECT_NE(decision.reason.find("returning to direct"), std::string::npos);
}

TEST(Policy, EmergencyRerouteSkipsSignificanceWhenDirectIsDead) {
  SteeringPolicy policy(PolicyConfig{}, CostModel{});
  const PathStats relay = make_stats(30.0, 400.0);  // noisy, never "significant"
  const std::vector<SteeringPolicy::Candidate> candidates = {
      {PathSpec{}, false, nullptr},  // direct unroutable
      {PathSpec{{9}}, true, &relay},
  };
  const Decision decision = policy.decide(1, util::kGB, candidates, 1, 0.0);
  EXPECT_EQ(decision.path, PathSpec{{9}});
  EXPECT_TRUE(decision.routable);
  EXPECT_NE(decision.reason.find("emergency"), std::string::npos);
}

TEST(Policy, UnroutableIncumbentIsReplacedImmediately) {
  PolicyConfig config;
  config.min_dwell_epochs = 100;  // dwell must NOT protect a dead path
  SteeringPolicy policy(config, CostModel{});
  const PathStats direct = make_stats(20.0, 1.0);
  const PathStats relay = make_stats(200.0, 1.0);
  const PathSpec a{{8}};
  const std::vector<SteeringPolicy::Candidate> tiv = {
      {PathSpec{}, true, &direct},
      {a, true, &relay},
  };
  EXPECT_EQ(policy.decide(1, util::kGB, tiv, 1, 0.0).path, a);
  const std::vector<SteeringPolicy::Candidate> relay_dead = {
      {PathSpec{}, true, &direct},
      {a, false, &relay},
  };
  const Decision decision = policy.decide(1, util::kGB, relay_dead, 2, 10.0);
  EXPECT_TRUE(decision.path.direct());
  EXPECT_TRUE(decision.switched);
  EXPECT_NE(decision.reason.find("incumbent unroutable"), std::string::npos);
}

TEST(Policy, NothingRoutableFallsBackToDirectUnroutable) {
  SteeringPolicy policy(PolicyConfig{}, CostModel{});
  const std::vector<SteeringPolicy::Candidate> candidates = {
      {PathSpec{}, false, nullptr},
      {PathSpec{{9}}, false, nullptr},
  };
  const Decision decision = policy.decide(1, util::kGB, candidates, 4, 1.5);
  EXPECT_FALSE(decision.routable);
  EXPECT_TRUE(decision.path.direct());
  EXPECT_EQ(decision.reason, "no live path; direct fallback");
}

TEST(Policy, ResetClientForgetsTheIncumbent) {
  SteeringPolicy policy(PolicyConfig{}, CostModel{});
  const PathStats direct = make_stats(20.0, 1.0);
  const PathStats relay = make_stats(200.0, 1.0);
  const std::vector<SteeringPolicy::Candidate> candidates = {
      {PathSpec{}, true, &direct},
      {PathSpec{{9}}, true, &relay},
  };
  policy.decide(1, util::kGB, candidates, 1, 0.0);
  EXPECT_EQ(policy.incumbent(1), PathSpec{{9}});
  policy.reset_client(1);
  EXPECT_EQ(policy.incumbent(1), PathSpec{});
}

// ---------------------------------------------------------------- trace ----

TEST(Trace, SerializesDeterministicallyAndDigestsByteIdentity) {
  auto fill = [](DecisionTrace& trace) {
    trace.note_epoch(1, 0.0, 3, 786432);
    trace.note_probe(1, PathSpec{{9}}, true, 87.5, 0.125, 1);
    trace.note_tiv(1, 2, PathSpec{{9}}, 87.5, 20.0, 1);
    Decision decision;
    decision.path = PathSpec{{9}};
    decision.epoch = 1;
    decision.at_s = 2.5;
    decision.expected_mbps = 87.5;
    decision.benefit_usd = 0.25;
    decision.switched = true;
    decision.reason = "relay significant and cost-positive; first decision";
    trace.note_steer(1, 64 * util::kMB, decision);
    trace.note_session(1, PathSpec{{9}}, true, 80.0, 6.7);
    trace.note_event(3.25, "link_fail");
  };
  DecisionTrace a;
  DecisionTrace b;
  fill(a);
  fill(b);
  EXPECT_EQ(a.lines(), 6u);
  EXPECT_EQ(a.serialize(), b.serialize());
  EXPECT_EQ(a.fnv1a(), b.fnv1a());
  const std::string text = a.serialize();
  EXPECT_NE(text.find("# droute ctrl trace v1"), std::string::npos);
  EXPECT_NE(text.find("path=via 9"), std::string::npos);
  EXPECT_NE(text.find("switched"), std::string::npos);
  // One diverging note changes the digest.
  b.note_event(4.0, "policer_rewrite");
  EXPECT_NE(a.fnv1a(), b.fnv1a());
}

// ----------------------------------------------------------- controller ----

/// Triangle world: client and provider joined by a slow direct inter-router
/// link (20 Mbps) while a relay host hangs off a fast (1000 Mbps) two-leg
/// path — the classic throughput TIV the controller is supposed to find.
struct TriWorld {
  net::Topology topo;
  net::RouteTable routes{nullptr};
  sim::Simulator simulator;
  std::unique_ptr<net::Fabric> fabric;
  net::NodeId client, relay, relay2, provider, rc, rr, rp;
  net::LinkId direct_link, access;

  explicit TriWorld(double direct_mbps = 20.0) {
    net::Topology::Builder builder;
    const net::AsId as = builder.add_as("AS");
    rc = builder.add_router(as, "rc", {49, -123});
    rr = builder.add_router(as, "rr", {51, -114});
    rp = builder.add_router(as, "rp", {47, -122});
    client = builder.add_host(as, "client", {49, -123});
    relay = builder.add_host(as, "relay", {51, -114});
    relay2 = builder.add_host(as, "relay2", {51, -114});
    provider = builder.add_host(as, "provider", {47, -122});
    access = builder.add_duplex(client, rc, 10000, 0.0005);
    builder.add_duplex(relay, rr, 10000, 0.0005);
    builder.add_duplex(relay2, rr, 10000, 0.0005);
    builder.add_duplex(provider, rp, 10000, 0.0005);
    // Intra-AS routing is Dijkstra over delay: the direct link is the
    // latency-best route (so routing picks it) but throughput-poor, while
    // the relay detour rides two fast, higher-delay legs — the paper's
    // throughput TIV in miniature.
    direct_link = builder.add_duplex(rc, rp, direct_mbps, 0.004);
    builder.add_duplex(rc, rr, 1000, 0.01);
    builder.add_duplex(rr, rp, 1000, 0.01);
    auto built = std::move(builder).build();
    EXPECT_TRUE(built.ok());
    topo = std::move(built).value();
    routes = net::RouteTable(&topo);
    fabric = std::make_unique<net::Fabric>(&simulator, &topo, &routes);
  }

  ControllerConfig fast_config() const {
    ControllerConfig config;
    config.epoch_s = 5.0;
    // Probes big enough that slow start does not drown the capacity signal
    // (a 256 KB probe over a 1000 Mbps leg measures mostly RTT).
    config.probe_bytes = 2 * util::kMB;
    config.probe_budget_bytes = 16 * util::kMB;
    return config;
  }
};

TEST(Controller, EnumeratesCandidatePathsDeterministically) {
  TriWorld world;
  Controller controller(world.simulator, *world.fabric, world.routes,
                        world.fast_config());
  controller.set_provider(world.provider);
  controller.add_client(world.client);
  controller.add_relay(world.relay);
  controller.add_relay(world.relay2);
  const auto paths = controller.candidate_paths(world.client);
  const std::vector<PathSpec> expected = {
      PathSpec{},
      PathSpec{{world.relay}},
      PathSpec{{world.relay2}},
      PathSpec{{world.relay, world.relay2}},
      PathSpec{{world.relay2, world.relay}},
  };
  EXPECT_EQ(paths, expected);
  EXPECT_TRUE(controller.path_routable(world.client, PathSpec{}));
  EXPECT_TRUE(
      controller.path_routable(world.client, PathSpec{{world.relay}}));
}

TEST(Controller, LearnsTheTivAndSteersOntoTheRelay) {
  TriWorld world;
  Controller controller(world.simulator, *world.fabric, world.routes,
                        world.fast_config());
  controller.set_provider(world.provider);
  controller.add_client(world.client);
  controller.add_relay(world.relay);
  controller.start();
  world.simulator.run_until(26.0);
  EXPECT_GE(controller.epoch(), 4u);

  // Estimates exist for both paths and the relay is flagged as a TIV.
  const PathStats* direct =
      controller.estimator().lookup(world.client, world.provider, PathSpec{});
  const PathStats* relayed = controller.estimator().lookup(
      world.client, world.provider, PathSpec{{world.relay}});
  ASSERT_NE(direct, nullptr);
  ASSERT_NE(relayed, nullptr);
  EXPECT_GT(relayed->mean_mbps, direct->mean_mbps);
  EXPECT_FALSE(controller.estimator().flag_tivs().empty());

  // A big session gets steered onto the relay with positive net benefit.
  const Decision decision = controller.steer(world.client, 200 * util::kMB);
  EXPECT_TRUE(decision.routable);
  EXPECT_EQ(decision.path, PathSpec{{world.relay}});
  EXPECT_GT(decision.benefit_usd, 0.0);
  EXPECT_GT(decision.expected_mbps, direct->mean_mbps);

  controller.stop();
  world.simulator.run();
  EXPECT_EQ(world.simulator.cancelled_backlog(), 0u);
}

TEST(Controller, NetworkEventForcesAnImmediateEpoch) {
  TriWorld world;
  Controller controller(world.simulator, *world.fabric, world.routes,
                        world.fast_config());
  controller.set_provider(world.provider);
  controller.add_client(world.client);
  controller.add_relay(world.relay);
  controller.start();
  world.simulator.run_until(1.0);
  const std::uint64_t before = controller.epoch();
  controller.on_network_event("link_fail");
  EXPECT_EQ(controller.epoch(), before + 1);
  EXPECT_NE(controller.trace().serialize().find("link_fail"),
            std::string::npos);
  controller.stop();
  world.simulator.run();
}

TEST(Controller, DeadAccessLinkYieldsUnroutableDecision) {
  TriWorld world;
  Controller controller(world.simulator, *world.fabric, world.routes,
                        world.fast_config());
  controller.set_provider(world.provider);
  controller.add_client(world.client);
  controller.add_relay(world.relay);
  controller.start();
  world.simulator.run_until(11.0);
  // Sever the client's only access link: every candidate dies at leg one.
  world.fabric->fail_link(world.access);
  EXPECT_FALSE(controller.path_routable(world.client, PathSpec{}));
  EXPECT_FALSE(
      controller.path_routable(world.client, PathSpec{{world.relay}}));
  const Decision decision = controller.steer(world.client, 64 * util::kMB);
  EXPECT_FALSE(decision.routable);
  EXPECT_TRUE(decision.path.direct());
  controller.stop();
  world.simulator.run();
}

TEST(Controller, SameSeedRunsProduceByteIdenticalTraces) {
  auto run_stack = []() {
    TriWorld world;
    Controller controller(world.simulator, *world.fabric, world.routes,
                          world.fast_config());
    controller.set_provider(world.provider);
    controller.add_client(world.client);
    controller.add_relay(world.relay);
    controller.add_relay(world.relay2);
    controller.start();
    world.simulator.run_until(16.0);
    const Decision first = controller.steer(world.client, 64 * util::kMB);
    controller.observe_session(world.client, first, 64 * util::kMB, 3.0,
                               true);
    world.simulator.run_until(27.0);
    controller.steer(world.client, 256 * util::kMB);
    controller.stop();
    world.simulator.run();
    return controller.trace().serialize();
  };
  const std::string first = run_stack();
  const std::string second = run_stack();
  EXPECT_GT(first.size(), 100u);
  EXPECT_EQ(first, second);  // byte-identical, the determinism contract
}

TEST(Controller, DecisionHookSeesEverySteerForDeadSteerAuditing) {
  TriWorld world;
  Controller controller(world.simulator, *world.fabric, world.routes,
                        world.fast_config());
  controller.set_provider(world.provider);
  controller.add_client(world.client);
  controller.add_relay(world.relay);
  std::size_t hooked = 0;
  controller.set_decision_hook(
      [&](net::NodeId client, const Decision& decision) {
        ++hooked;
        EXPECT_EQ(client, world.client);
        // The live re-validation the chaos harness performs: routable
        // decisions must name a path whose every leg still routes.
        if (decision.routable) {
          EXPECT_TRUE(controller.path_routable(client, decision.path));
        }
      });
  controller.start();
  world.simulator.run_until(11.0);
  controller.steer(world.client, 32 * util::kMB);
  controller.steer(world.client, 32 * util::kMB);
  EXPECT_EQ(hooked, 2u);
  controller.stop();
  world.simulator.run();
}

TEST(StaticSteering, PinsItsPath) {
  StaticSteering direct;
  EXPECT_TRUE(direct.steer(1, util::kMB).path.direct());
  StaticSteering pinned(PathSpec{{7}});
  const Decision decision = pinned.steer(1, util::kMB);
  EXPECT_EQ(decision.path, PathSpec{{7}});
  EXPECT_EQ(decision.reason, "static");
}

}  // namespace
}  // namespace droute::ctrl
