#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "check/contract.h"
#include "check/sim_audit.h"
#include "sim/simulator.h"

namespace droute::sim {
namespace {

/// Attaches a clock/quiescence auditor when debug checks are on (the
/// default; DROUTE_DEBUG_CHECKS=0 disables). The auditor's step observer
/// raises on any clock regression for the rest of the test.
struct MaybeAuditor {
  std::optional<check::SimAuditor> auditor;

  explicit MaybeAuditor(Simulator* simulator) {
    if (check::debug_checks_enabled()) auditor.emplace(simulator);
  }

  void expect_drained() const {
    if (!auditor.has_value()) return;
    const auto status = auditor->audit_quiescent();
    EXPECT_TRUE(status.ok()) << status.error().message;
  }
};

TEST(Simulator, StartsAtZero) {
  Simulator simulator;
  EXPECT_DOUBLE_EQ(simulator.now(), 0.0);
  EXPECT_EQ(simulator.pending(), 0u);
  EXPECT_FALSE(simulator.step());
}

TEST(Simulator, FiresInTimeOrder) {
  Simulator simulator;
  MaybeAuditor audit(&simulator);
  std::vector<int> order;
  simulator.schedule_at(3.0, [&] { order.push_back(3); });
  simulator.schedule_at(1.0, [&] { order.push_back(1); });
  simulator.schedule_at(2.0, [&] { order.push_back(2); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(simulator.now(), 3.0);
  audit.expect_drained();
}

TEST(Simulator, TiesFireInSchedulingOrder) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  simulator.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator simulator;
  double fired_at = -1.0;
  simulator.schedule_at(2.0, [&] {
    simulator.schedule_in(3.0, [&] { fired_at = simulator.now(); });
  });
  simulator.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, RejectsPastEvents) {
  Simulator simulator;
  simulator.schedule_at(10.0, [] {});
  simulator.run();
  EXPECT_THROW(simulator.schedule_at(5.0, [] {}), std::logic_error);
  EXPECT_THROW(simulator.schedule_in(-1.0, [] {}), std::logic_error);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator simulator;
  MaybeAuditor audit(&simulator);
  bool fired = false;
  const EventId id = simulator.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(simulator.cancel(id));
  simulator.run();
  EXPECT_FALSE(fired);
  audit.expect_drained();  // the cancelled entry must be reclaimed by run()
}

TEST(Simulator, CancelTwiceIsNoop) {
  Simulator simulator;
  const EventId id = simulator.schedule_at(1.0, [] {});
  EXPECT_TRUE(simulator.cancel(id));
  EXPECT_FALSE(simulator.cancel(id));
  EXPECT_FALSE(simulator.cancel(EventId{}));
}

TEST(Simulator, CancelledEventsDoNotBlockNextEventTime) {
  Simulator simulator;
  const EventId early = simulator.schedule_at(1.0, [] {});
  simulator.schedule_at(2.0, [] {});
  simulator.cancel(early);
  EXPECT_DOUBLE_EQ(simulator.next_event_time(), 2.0);
}

TEST(Simulator, RunUntilAdvancesClock) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_at(1.0, [&] { ++fired; });
  simulator.schedule_at(5.0, [&] { ++fired; });
  simulator.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(simulator.now(), 3.0);
  simulator.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, HandlersCanScheduleMore) {
  Simulator simulator;
  MaybeAuditor audit(&simulator);
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) simulator.schedule_in(0.5, chain);
  };
  simulator.schedule_in(0.5, chain);
  simulator.run();
  EXPECT_EQ(count, 100);
  EXPECT_NEAR(simulator.now(), 50.0, 1e-9);
  audit.expect_drained();
}

TEST(Simulator, EventBudgetGuardsRunaway) {
  Simulator simulator;
  std::function<void()> forever = [&] { simulator.schedule_in(0.1, forever); };
  simulator.schedule_in(0.1, forever);
  EXPECT_THROW(simulator.run(/*max_events=*/1000), std::logic_error);
}

TEST(Simulator, ExecutedEventsCount) {
  Simulator simulator;
  for (int i = 0; i < 25; ++i) simulator.schedule_in(i, [] {});
  simulator.run();
  EXPECT_EQ(simulator.executed_events(), 25u);
}

TEST(Simulator, NextEventTimeInfinityWhenEmpty) {
  Simulator simulator;
  EXPECT_EQ(simulator.next_event_time(), kTimeInfinity);
}

TEST(Simulator, CancelFromWithinHandler) {
  Simulator simulator;
  bool second_fired = false;
  EventId second;
  simulator.schedule_at(1.0, [&] { simulator.cancel(second); });
  second = simulator.schedule_at(2.0, [&] { second_fired = true; });
  simulator.run();
  EXPECT_FALSE(second_fired);
}

TEST(Simulator, PendingCountsExactlyTheLiveEvents) {
  // pending() must stay exact through every cancel/fire interleaving — it
  // counts registered handlers, not heap entries, so lazily-skimmed
  // cancelled twins never inflate it.
  Simulator simulator;
  const EventId a = simulator.schedule_in(1.0, [] {});
  const EventId b = simulator.schedule_in(2.0, [] {});
  const EventId c = simulator.schedule_in(3.0, [] {});
  EXPECT_EQ(simulator.pending(), 3u);

  // Cancel the middle event: its heap twin is still enqueued (skimmed only
  // when it reaches the top), but it is no longer pending.
  EXPECT_TRUE(simulator.cancel(b));
  EXPECT_EQ(simulator.pending(), 2u);

  ASSERT_TRUE(simulator.step());  // fires a
  EXPECT_EQ(simulator.pending(), 1u);

  // Cancelling an already-fired or already-cancelled id changes nothing.
  EXPECT_FALSE(simulator.cancel(a));
  EXPECT_FALSE(simulator.cancel(b));
  EXPECT_EQ(simulator.pending(), 1u);

  EXPECT_TRUE(simulator.cancel(c));
  EXPECT_EQ(simulator.pending(), 0u);
  EXPECT_FALSE(simulator.step());  // only cancelled twins left in the heap
  EXPECT_EQ(simulator.pending(), 0u);
}

TEST(Simulator, PendingTracksHandlersThatScheduleMore) {
  Simulator simulator;
  simulator.schedule_in(1.0, [&simulator] {
    simulator.schedule_in(1.0, [] {});
    simulator.schedule_in(2.0, [] {});
  });
  EXPECT_EQ(simulator.pending(), 1u);
  ASSERT_TRUE(simulator.step());
  EXPECT_EQ(simulator.pending(), 2u);
  simulator.run();
  EXPECT_EQ(simulator.pending(), 0u);
}

}  // namespace
}  // namespace droute::sim
