#include <gtest/gtest.h>

#include "net/routing.h"
#include "scenario/science_dmz.h"
#include "util/units.h"

namespace droute::scenario {
namespace {

TEST(ScienceDmz, DirectPathCrossesTheFirewall) {
  auto world = ScienceDmzWorld::create();
  net::RouteTable routes(&world->topology());
  const auto front = world->topology().find_node("fe.cloud.example").value();
  const auto route = routes.route(world->lab_host(), front).value();
  EXPECT_NE(std::find(route.nodes.begin(), route.nodes.end(),
                      world->firewall()),
            route.nodes.end());
  EXPECT_NEAR(routes.min_middlebox_mbps(route), 6.0, 1e-9);
}

TEST(ScienceDmz, DtnLegAvoidsTheFirewall) {
  auto world = ScienceDmzWorld::create();
  net::RouteTable routes(&world->topology());
  // Leg 1: lab -> DTN rides the research VLAN.
  const auto leg1 = routes.route(world->lab_host(), world->dtn()).value();
  EXPECT_EQ(std::find(leg1.nodes.begin(), leg1.nodes.end(),
                      world->firewall()),
            leg1.nodes.end());
  // Leg 2: DTN -> cloud goes straight out the border.
  const auto front = world->topology().find_node("fe.cloud.example").value();
  const auto leg2 = routes.route(world->dtn(), front).value();
  EXPECT_EQ(std::find(leg2.nodes.begin(), leg2.nodes.end(),
                      world->firewall()),
            leg2.nodes.end());
  EXPECT_DOUBLE_EQ(routes.min_middlebox_mbps(leg2), 0.0);
}

TEST(ScienceDmz, OrdinaryTrafficDoesNotShortcutThroughTheDtn) {
  // Shortest-path routing must not turn the DTN host into a transit router
  // for firewalled traffic.
  auto world = ScienceDmzWorld::create();
  net::RouteTable routes(&world->topology());
  const auto front = world->topology().find_node("fe.cloud.example").value();
  const auto route = routes.route(world->lab_host(), front).value();
  EXPECT_EQ(std::find(route.nodes.begin(), route.nodes.end(), world->dtn()),
            route.nodes.end());
}

TEST(ScienceDmz, DtnDetourDemolishesTheFirewallBottleneck) {
  auto direct_world = ScienceDmzWorld::create();
  const auto direct = direct_world->run_upload(
      ScienceDmzWorld::Path::kThroughFirewall, 100 * util::kMB);
  auto dtn_world = ScienceDmzWorld::create();
  const auto detour =
      dtn_world->run_upload(ScienceDmzWorld::Path::kViaDtn, 100 * util::kMB);
  ASSERT_TRUE(direct.ok() && detour.ok());
  // 100 MB at ~6 Mbps ≈ 133 s vs ~2 s through the DMZ.
  EXPECT_NEAR(direct.value(), 133.0, 10.0);
  EXPECT_GT(direct.value(), detour.value() * 20.0);
  EXPECT_EQ(dtn_world->server().object_count(), 1u);
}

TEST(ScienceDmz, GainScalesWithFirewallCeiling) {
  double previous_direct = 1e18;
  for (const double mbps : {2.0, 8.0, 32.0}) {
    ScienceDmzConfig config;
    config.firewall_per_flow_mbps = mbps;
    auto world = ScienceDmzWorld::create(config);
    const auto direct = world->run_upload(
        ScienceDmzWorld::Path::kThroughFirewall, 50 * util::kMB);
    ASSERT_TRUE(direct.ok());
    EXPECT_LT(direct.value(), previous_direct);
    previous_direct = direct.value();
  }
}

TEST(ScienceDmz, FirewallCanBeOpenedAtRuntime) {
  // The Topology::set_middlebox ablation hook: removing the inspection
  // ceiling makes the direct path competitive again.
  auto world = ScienceDmzWorld::create();
  ASSERT_TRUE(world->topology().set_middlebox(world->firewall(), 0.0).ok());
  const auto direct = world->run_upload(
      ScienceDmzWorld::Path::kThroughFirewall, 100 * util::kMB);
  ASSERT_TRUE(direct.ok());
  EXPECT_LT(direct.value(), 5.0);
}

}  // namespace
}  // namespace droute::scenario
