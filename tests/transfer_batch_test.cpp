// Batch-layer semantics (DESIGN.md §15): partial failure, cancellation
// exactness, 429 pressure, and the wire backend behind the same API.
#include <gtest/gtest.h>

#include <vector>

#include "cloud/storage_server.h"
#include "scenario/north_america.h"
#include "sim/task.h"
#include "transfer/api_upload.h"
#include "transfer/batch.h"
#include "transfer/file_spec.h"
#include "transfer/parallel.h"
#include "transfer/sim_transport.h"
#include "transfer/wire_transport.h"
#include "util/blob.h"
#include "util/rng.h"
#include "util/units.h"
#include "wire/sink.h"

namespace droute::transfer {
namespace {

using cloud::ProviderKind;
using scenario::World;
using scenario::WorldConfig;

std::unique_ptr<World> quiet_world(std::uint64_t seed = 1) {
  WorldConfig config;
  config.seed = seed;
  config.cross_traffic = false;
  return World::create(config);
}

// ---------------------------------------------------------- partial failure ----

TEST(Batch, PartialFailureSettlesEveryRequestIndependently) {
  auto world = quiet_world();
  SimTransport transport(&world->fabric());
  TransferEngine xfer(&transport);

  const auto ubc = world->client_node(scenario::Client::kUBC);
  Segment unmapped;
  unmapped.name = "unmapped";  // no fabric node: rejected at launch
  const SegmentId bad = xfer.register_segment(unmapped);
  const SegmentId ualberta = xfer.ensure_node_segment(
      world->intermediate_node(scenario::Intermediate::kUAlberta));
  const SegmentId provider =
      xfer.ensure_node_segment(world->provider_node(ProviderKind::kGoogleDrive));

  std::vector<TransferRequest> requests(3);
  requests[0].source_node = ubc;
  requests[0].target_id = bad;
  requests[0].length = util::kMB;
  requests[1].source_node = ubc;
  requests[1].target_id = ualberta;  // killed mid-flight at t = 10 s
  requests[1].length = 100 * util::kMB;
  requests[2].source_node = ubc;
  requests[2].target_id = provider;  // small enough to finish before the cut
  requests[2].length = 100 * 1000;

  auto batch = xfer.submit_batch(std::move(requests));
  bool all_ok = true;
  auto driver = [](TransferEngine&, BatchHandle& b,
                   bool* ok) -> sim::Task<void> {
    *ok = co_await b;
  }(xfer, batch, &all_ok);

  world->simulator().schedule_in(10.0, [&] {
    world->fabric().fail_link(
        world->topology()
            .find_link(world->node("planetlab1.cs.ubc.ca"),
                       world->node("cs-gw.net.ubc.ca"))
            .value());
  });
  world->simulator().run();

  ASSERT_TRUE(driver.done());
  EXPECT_FALSE(all_ok);
  EXPECT_TRUE(batch.done());
  EXPECT_EQ(batch.status(0).state, RequestState::kRejected);
  EXPECT_EQ(batch.status(0).error, "segment has no fabric node");
  EXPECT_EQ(batch.status(1).state, RequestState::kLinkFailed);
  EXPECT_EQ(batch.status(2).state, RequestState::kCompleted);
  EXPECT_EQ(batch.status(2).bytes, 100 * 1000u);
  EXPECT_GT(batch.status(2).duration_s(), 0.0);
  EXPECT_EQ(xfer.batches_inflight(), 0u);
  EXPECT_EQ(world->fabric().active_flow_count(), 0u);
}

TEST(Batch, ThrottledUploadGivesUpAndReleasesBatches) {
  auto world = quiet_world();
  // A provider whose budget is one request per (effectively infinite)
  // window: create_session spends it, so every append 429s until the
  // engine's retry depth is exhausted.
  cloud::ApiProfile profile =
      cloud::default_profile(ProviderKind::kGoogleDrive);
  profile.max_requests_per_window = 1;
  profile.throttle_window_s = 1e9;
  cloud::StorageServer server(ProviderKind::kGoogleDrive, profile);
  server.set_clock([&world] { return world->simulator().now(); });
  ApiUploadEngine engine(&world->fabric(), &server,
                         world->provider_node(ProviderKind::kGoogleDrive));

  UploadResult result;
  result.success = true;
  engine.upload(world->client_node(scenario::Client::kUBC),
                make_file_mb(10, 1), [&](const UploadResult& r) { result = r; });
  world->simulator().run();

  EXPECT_FALSE(result.success);
  EXPECT_NE(result.error.find("rate limited"), std::string::npos)
      << result.error;
  EXPECT_GT(result.throttle_retries, 0);
  EXPECT_GT(server.throttled_requests(), 0u);
  // Every chunk PUT batch settled despite the 429 storm above it.
  EXPECT_EQ(engine.batch_engine().batches_inflight(), 0u);
  EXPECT_EQ(world->fabric().active_flow_count(), 0u);
}

// ------------------------------------------------------------- cancellation ----

TEST(Batch, CancelMidFlightReleasesEverySimEvent) {
  auto world = quiet_world();
  ParallelPushEngine engine(&world->fabric());
  auto task = engine.push_task(
      world->client_node(scenario::Client::kUBC),
      world->intermediate_node(scenario::Intermediate::kUAlberta),
      make_file_mb(100, 11), 4);
  world->simulator().schedule_in(5.0, [&] { task.cancel(); });
  world->simulator().run();

  ASSERT_TRUE(task.done());
  // Cancellation surfaces as a domain failure: the engine sees the batch
  // cancelled and reports the stripe failure through its normal result.
  ASSERT_TRUE(task.result().ok());
  EXPECT_FALSE(task.result().value().success);
  // Exactness: the aborted stripes' completion events are cancelled, not
  // abandoned — nothing remains to advance the clock past the cancel point
  // (the full transfer would have run ~16 s).
  EXPECT_LT(world->simulator().now(), 6.0);
  EXPECT_EQ(world->simulator().pending(), 0u);
  EXPECT_EQ(world->fabric().active_flow_count(), 0u);
  EXPECT_EQ(engine.batch_engine().batches_inflight(), 0u);
}

TEST(Batch, WithTimeoutMidBatchCancelsAndSettles) {
  auto world = quiet_world();
  ParallelPushEngine engine(&world->fabric());
  auto timed = sim::with_timeout(
      world->simulator(),
      engine.push_task(
          world->client_node(scenario::Client::kUBC),
          world->intermediate_node(scenario::Intermediate::kUAlberta),
          make_file_mb(200, 12), 4),
      5.0);
  world->simulator().run();

  ASSERT_TRUE(timed.done());
  ASSERT_FALSE(timed.result().ok());
  EXPECT_EQ(timed.result().error().code, sim::kErrTimeout);
  EXPECT_LT(world->simulator().now(), 6.0);
  EXPECT_EQ(world->fabric().active_flow_count(), 0u);
  EXPECT_EQ(engine.batch_engine().batches_inflight(), 0u);
}

TEST(Batch, CancelBeforeStartNeverTouchesTheFabric) {
  auto world = quiet_world();
  SimTransport transport(&world->fabric());
  TransferEngine xfer(&transport);
  std::vector<TransferRequest> requests(2);
  for (auto& request : requests) {
    request.source_node = world->client_node(scenario::Client::kUBC);
    request.target_id = xfer.ensure_node_segment(
        world->intermediate_node(scenario::Intermediate::kUAlberta));
    request.length = util::kMB;
  }
  auto batch = xfer.submit_batch(std::move(requests));
  batch.cancel();
  EXPECT_TRUE(batch.done());
  EXPECT_FALSE(batch.ok());
  EXPECT_TRUE(batch.cancelled());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch.status(i).state, RequestState::kCancelled);
    EXPECT_EQ(batch.status(i).error, "transfer cancelled before start");
    EXPECT_TRUE(batch.status(i).rejected());
  }
  EXPECT_EQ(xfer.batches_inflight(), 0u);
  EXPECT_EQ(world->simulator().pending(), 0u);
  EXPECT_EQ(world->fabric().active_flow_count(), 0u);
}

// ------------------------------------------------------------ wire transport ----

TEST(Batch, WireTransportRunsTheSameBatchApi) {
  wire::Sink sink;
  auto port = sink.add_ingress(0.0);
  ASSERT_TRUE(port.ok());
  ASSERT_TRUE(sink.start().ok());

  WireTransport transport;
  TransferEngine xfer(&transport);
  Segment segment;
  segment.name = "loopback-sink";
  segment.wire_port = port.value();
  const SegmentId sink_id = xfer.register_segment(segment);

  util::Rng rng(7);
  const util::Blob payload = util::make_random_blob(rng, 256 * 1024);
  std::vector<TransferRequest> requests(3);
  for (auto& request : requests) {
    request.source = payload.data();
    request.target_id = sink_id;
    request.length = payload.size();
    request.label = "wire-batch";
  }
  auto batch = xfer.submit_batch(std::move(requests));
  EXPECT_TRUE(batch.wait());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch.status(i).state, RequestState::kCompleted);
    EXPECT_EQ(batch.status(i).bytes, payload.size());
  }
  EXPECT_EQ(sink.objects_received(), 3u);
  EXPECT_EQ(sink.bytes_received(), 3 * payload.size());
  EXPECT_EQ(xfer.batches_inflight(), 0u);
  sink.stop();
}

TEST(Batch, WireTransportRejectsReads) {
  wire::Sink sink;
  auto port = sink.add_ingress(0.0);
  ASSERT_TRUE(port.ok());
  ASSERT_TRUE(sink.start().ok());

  WireTransport transport;
  TransferEngine xfer(&transport);
  Segment segment;
  segment.wire_port = port.value();
  const SegmentId sink_id = xfer.register_segment(segment);

  util::Rng rng(8);
  const util::Blob payload = util::make_random_blob(rng, 1024);
  TransferRequest request;
  request.opcode = Opcode::kRead;
  request.source = payload.data();
  request.target_id = sink_id;
  request.length = payload.size();
  auto batch = xfer.submit(std::move(request));
  EXPECT_FALSE(batch.wait());
  EXPECT_EQ(batch.status(0).state, RequestState::kRejected);
  EXPECT_EQ(batch.status(0).error, "wire transport only supports WRITE");
  EXPECT_EQ(sink.objects_received(), 0u);
  sink.stop();
}

}  // namespace
}  // namespace droute::transfer
