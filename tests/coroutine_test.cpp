// C++20 coroutine layer tests: sim::Task<T> (values, errors, cancellation,
// combinators), sim::Process compatibility, and the net::transfer awaitable.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/fabric_await.h"
#include "scenario/north_america.h"
#include "sim/process.h"
#include "sim/task.h"
#include "transfer/detour.h"
#include "transfer/rsync_engine.h"
#include "util/units.h"

namespace droute::sim {
namespace {

Process two_step(Simulator& simulator, std::vector<double>& timestamps) {
  timestamps.push_back(simulator.now());
  co_await delay(simulator, 2.0);
  timestamps.push_back(simulator.now());
  co_await delay(simulator, 3.0);
  timestamps.push_back(simulator.now());
}

TEST(Process, DelaysAdvanceSimulatedTime) {
  Simulator simulator;
  std::vector<double> timestamps;
  Process process = two_step(simulator, timestamps);
  // Body ran eagerly to the first co_await.
  ASSERT_EQ(timestamps.size(), 1u);
  EXPECT_FALSE(process.done());
  simulator.run();
  ASSERT_EQ(timestamps.size(), 3u);
  EXPECT_DOUBLE_EQ(timestamps[0], 0.0);
  EXPECT_DOUBLE_EQ(timestamps[1], 2.0);
  EXPECT_DOUBLE_EQ(timestamps[2], 5.0);
  EXPECT_TRUE(process.done());
}

Process ticker(Simulator& simulator, int& count, int limit) {
  for (int i = 0; i < limit; ++i) {
    co_await delay(simulator, 1.0);
    ++count;
  }
}

TEST(Process, LoopsInterleaveDeterministically) {
  Simulator simulator;
  int fast = 0, slow = 0;
  ticker(simulator, fast, 10);
  ticker(simulator, slow, 5);
  simulator.run_until(4.5);
  EXPECT_EQ(fast, 4);
  EXPECT_EQ(slow, 4);
  simulator.run();
  EXPECT_EQ(fast, 10);
  EXPECT_EQ(slow, 5);
}

TEST(Process, ZeroDelayDoesNotSuspend) {
  Simulator simulator;
  std::vector<double> timestamps;
  auto proc = [](Simulator& s, std::vector<double>& ts) -> Process {
    co_await delay(s, 0.0);
    ts.push_back(s.now());
    co_await delay_until(s, -5.0);  // already past: no-op
    ts.push_back(s.now());
  }(simulator, timestamps);
  EXPECT_TRUE(proc.done());  // ran to completion without any events
  EXPECT_EQ(timestamps.size(), 2u);
  EXPECT_EQ(simulator.pending(), 0u);
}

TEST(Process, DelayUntilAbsoluteTime) {
  Simulator simulator;
  double fired_at = -1.0;
  [](Simulator& s, double& at) -> Process {
    co_await delay_until(s, 7.5);
    at = s.now();
  }(simulator, fired_at);
  simulator.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

// ---------------------------------------------------------------------------
// sim::Task<T>: values, exceptions, joins, cancellation.

Task<int> answer_after(Simulator& simulator, double dt, int value) {
  co_await delay(simulator, dt);
  co_return value;
}

/// Honors cancellation: a cancelled sleep folds into a kErrCancelled error.
Task<int> patient(Simulator& simulator, double dt, int value) {
  auto nap = delay(simulator, dt);
  if (!co_await nap) {
    co_return util::Error::make("patient cancelled", kErrCancelled);
  }
  co_return value;
}

Task<int> immediate(int value) { co_return value; }

Task<int> throwing(Simulator& simulator) {
  co_await delay(simulator, 1.0);
  throw std::runtime_error("boom");
  co_return 0;  // unreachable: a value coroutine must not fall off the end
}

/// Awaits the child and forwards its whole Result (value or error).
Task<int> relay(Simulator& simulator) {
  auto child = patient(simulator, 50.0, 9);
  co_return co_await child;
}

/// Swallows the cancel signal at the sleep, then bails via the probe.
Task<int> stubborn(Simulator& simulator) {
  auto nap = delay(simulator, 5.0);
  co_await nap;
  if (co_await cancellation_requested()) {
    co_return util::Error::make("late bail", kErrCancelled);
  }
  co_return 1;
}

TEST(Task, ReturnsValueThroughJoin) {
  Simulator simulator;
  auto task = answer_after(simulator, 2.0, 42);
  EXPECT_FALSE(task.done());
  simulator.run();
  ASSERT_TRUE(task.done());
  ASSERT_TRUE(task.result().ok());
  EXPECT_EQ(task.result().value(), 42);
}

TEST(Task, EagerBodyCompletesWithoutEvents) {
  Simulator simulator;
  auto task = immediate(11);
  ASSERT_TRUE(task.done());
  EXPECT_EQ(task.result().value(), 11);
  EXPECT_EQ(simulator.pending(), 0u);
}

TEST(Task, CoAwaitJoinPropagatesValue) {
  Simulator simulator;
  int got = 0;
  auto parent = [](Simulator& s, int& out) -> Task<void> {
    auto child = answer_after(s, 1.0, 7);
    auto joined = co_await child;
    if (joined.ok()) out = joined.value();
  }(simulator, got);
  simulator.run();
  EXPECT_TRUE(parent.done());
  EXPECT_EQ(got, 7);
}

TEST(Task, ExceptionBecomesResultError) {
  Simulator simulator;
  auto task = throwing(simulator);
  simulator.run();
  ASSERT_TRUE(task.done());
  ASSERT_FALSE(task.result().ok());
  EXPECT_NE(task.result().error().message.find("boom"), std::string::npos);
}

TEST(Task, ResultBeforeCompletionIsContractViolation) {
  Simulator simulator;
  auto task = patient(simulator, 10.0, 1);
  EXPECT_THROW(task.result(), std::logic_error);
  task.cancel();  // unwind the frame before the simulator goes away
  ASSERT_TRUE(task.done());
}

TEST(Task, CancelMidDelayCancelsThePendingEvent) {
  Simulator simulator;
  auto task = patient(simulator, 100.0, 1);
  EXPECT_EQ(simulator.pending(), 1u);
  task.cancel();
  ASSERT_TRUE(task.done());
  ASSERT_FALSE(task.result().ok());
  EXPECT_EQ(task.result().error().code, kErrCancelled);
  // The sleep's sim event was cancelled, not abandoned: the queue is empty.
  EXPECT_EQ(simulator.pending(), 0u);
  EXPECT_FALSE(simulator.step());
}

TEST(Task, CancelCascadesIntoAwaitedChild) {
  Simulator simulator;
  auto parent = relay(simulator);
  EXPECT_FALSE(parent.done());
  parent.cancel();
  ASSERT_TRUE(parent.done());
  ASSERT_FALSE(parent.result().ok());
  EXPECT_EQ(parent.result().error().code, kErrCancelled);
  EXPECT_EQ(simulator.pending(), 0u);
}

TEST(Task, CancellationProbeCatchesSwallowedCancel) {
  Simulator simulator;
  auto task = stubborn(simulator);
  task.cancel();
  ASSERT_TRUE(task.done());
  ASSERT_FALSE(task.result().ok());
  EXPECT_EQ(task.result().error().code, kErrCancelled);
  EXPECT_EQ(simulator.pending(), 0u);
}

TEST(Task, OnDoneFiresWithTheResult) {
  Simulator simulator;
  auto task = answer_after(simulator, 2.0, 5);
  int seen = 0;
  task.on_done([&seen](const util::Result<int>& joined) {
    seen = joined.ok() ? joined.value() : -1;
  });
  simulator.run();
  EXPECT_EQ(seen, 5);
}

TEST(Notify, NotifyAllWakesWaitersInParkOrder) {
  Notify gate;
  std::vector<int> order;
  auto waiter = [](Notify& n, std::vector<int>& out, int id) -> Task<void> {
    auto parked = n.wait();
    if (co_await parked) out.push_back(id);
  };
  auto a = waiter(gate, order, 1);
  auto b = waiter(gate, order, 2);
  EXPECT_FALSE(a.done());
  EXPECT_FALSE(b.done());
  gate.notify_all();
  ASSERT_TRUE(a.done());
  ASSERT_TRUE(b.done());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Notify, CancelledWaiterResumesWithFalse) {
  Notify gate;
  bool notified = true;
  auto task = [](Notify& n, bool& out) -> Task<void> {
    auto parked = n.wait();
    out = co_await parked;
  }(gate, notified);
  task.cancel();
  ASSERT_TRUE(task.done());
  EXPECT_FALSE(notified);
  gate.notify_all();  // the stale waiter entry must be a consumed no-op
}

TEST(Combinators, AllOfJoinsEveryChildInInputOrder) {
  Simulator simulator;
  std::vector<Task<int>> children;
  children.push_back(answer_after(simulator, 1.0, 10));
  children.push_back(answer_after(simulator, 3.0, 20));
  children.push_back(answer_after(simulator, 2.0, 30));
  auto joined = all_of(std::move(children));
  simulator.run();
  ASSERT_TRUE(joined.done());
  ASSERT_TRUE(joined.result().ok());
  const auto& results = joined.result().value();
  ASSERT_EQ(results.size(), 3u);
  for (const auto& result : results) ASSERT_TRUE(result.ok());
  EXPECT_EQ(results[0].value(), 10);
  EXPECT_EQ(results[1].value(), 20);
  EXPECT_EQ(results[2].value(), 30);
  EXPECT_DOUBLE_EQ(simulator.now(), 3.0);  // gated by the slowest child
}

TEST(Combinators, AnyOfYieldsWinnerAndCancelsLosers) {
  Simulator simulator;
  std::vector<Task<int>> racers;
  racers.push_back(patient(simulator, 5.0, 1));
  racers.push_back(patient(simulator, 1.0, 2));
  auto race = any_of(std::move(racers));
  simulator.run();
  ASSERT_TRUE(race.done());
  ASSERT_TRUE(race.result().ok());
  EXPECT_EQ(race.result().value().index, 1u);
  ASSERT_TRUE(race.result().value().result.ok());
  EXPECT_EQ(race.result().value().result.value(), 2);
  // The loser's sleep was cancelled, not left to burn simulated time.
  EXPECT_EQ(simulator.pending(), 0u);
  EXPECT_DOUBLE_EQ(simulator.now(), 1.0);
}

TEST(Combinators, WithTimeoutExpiryCancelsAndReportsTimeout) {
  Simulator simulator;
  auto guarded = with_timeout(simulator, patient(simulator, 100.0, 1), 5.0);
  simulator.run();
  ASSERT_TRUE(guarded.done());
  ASSERT_FALSE(guarded.result().ok());
  EXPECT_EQ(guarded.result().error().code, kErrTimeout);
  EXPECT_DOUBLE_EQ(simulator.now(), 5.0);
  EXPECT_EQ(simulator.pending(), 0u);
}

TEST(Combinators, WithTimeoutPassesInnerResultThrough) {
  Simulator simulator;
  auto guarded = with_timeout(simulator, patient(simulator, 2.0, 7), 5.0);
  simulator.run();
  ASSERT_TRUE(guarded.done());
  ASSERT_TRUE(guarded.result().ok());
  EXPECT_EQ(guarded.result().value(), 7);
  EXPECT_DOUBLE_EQ(simulator.now(), 2.0);  // the timer was cancelled
  EXPECT_EQ(simulator.pending(), 0u);
}

}  // namespace
}  // namespace droute::sim

namespace droute::net {
namespace {

using scenario::World;
using scenario::WorldConfig;

sim::Process detour_script(World& world, double& leg1_s, double& leg2_s,
                           bool& ok) {
  // The paper's store-and-forward detour as a straight-line script:
  // UBC -> UAlberta, then UAlberta -> Google front end.
  const auto ubc = world.client_node(scenario::Client::kUBC);
  const auto ua = world.intermediate_node(scenario::Intermediate::kUAlberta);
  const auto fe = world.provider_node(cloud::ProviderKind::kGoogleDrive);

  auto leg1_awaitable = transfer(world.fabric(), ubc, ua, 50 * util::kMB);
  auto leg1 = co_await leg1_awaitable;
  if (!leg1.ok()) {
    ok = false;
    co_return;
  }
  leg1_s = leg1.value().duration_s();
  auto leg2_awaitable = transfer(world.fabric(), ua, fe, 50 * util::kMB);
  auto leg2 = co_await leg2_awaitable;
  if (!leg2.ok()) {
    ok = false;
    co_return;
  }
  leg2_s = leg2.value().duration_s();
  ok = true;
}

TEST(TransferAwait, SequentialDetourScript) {
  WorldConfig config;
  config.cross_traffic = false;
  auto world = World::create(config);
  double leg1_s = 0.0, leg2_s = 0.0;
  bool ok = false;
  sim::Process script = detour_script(*world, leg1_s, leg2_s, ok);
  world->simulator().run();
  ASSERT_TRUE(script.done());
  ASSERT_TRUE(ok);
  // Raw flows: 50 MB at 44 Mbps slice ~ 9.5 s, at 50 Mbps uplink ~ 8.3 s.
  EXPECT_NEAR(leg1_s, 9.5, 2.0);
  EXPECT_NEAR(leg2_s, 8.3, 2.0);
  // Sequential: the world clock advanced by both legs plus slow start.
  EXPECT_GT(world->simulator().now(), leg1_s + leg2_s - 0.5);
}

TEST(TransferAwait, RejectedFlowResumesWithError) {
  WorldConfig config;
  config.cross_traffic = false;
  auto world = World::create(config);
  // Cut UCLA off so the flow is rejected synchronously.
  world->fabric().fail_link(
      world->topology()
          .find_link(world->node("planetlab1.ucla.edu"),
                     world->node("pl-gw.ucla.edu"))
          .value());
  bool reached_end = false;
  bool got_stats = true;
  std::string error;
  [](World& w, bool& end, bool& stats, std::string& err) -> sim::Process {
    auto awaitable = transfer(
        w.fabric(), w.client_node(scenario::Client::kUCLA),
        w.provider_node(cloud::ProviderKind::kDropbox), util::kMB);
    auto result = co_await awaitable;
    stats = result.ok();
    if (!result.ok()) err = result.error().message;
    end = true;
  }(*world, reached_end, got_stats, error);
  // The rejection path never suspends, so the script is already finished.
  EXPECT_TRUE(reached_end);
  EXPECT_FALSE(got_stats);
  EXPECT_FALSE(error.empty());
}

TEST(TransferAwait, ConcurrentScriptsShareTheFabric) {
  WorldConfig config;
  config.cross_traffic = false;
  auto world = World::create(config);
  // Two concurrent scripts pushing UBC -> UAlberta share the 44 Mbps slice
  // fairly: each takes about twice the solo time... the slice cap is
  // per-flow (middlebox), so the real constraint is the shared 50 Mbps
  // uplink: each flow gets ~25 Mbps.
  std::vector<double> durations;
  auto script = [](World& w, std::vector<double>& out) -> sim::Process {
    auto awaitable = transfer(
        w.fabric(), w.client_node(scenario::Client::kUBC),
        w.intermediate_node(scenario::Intermediate::kUAlberta),
        25 * util::kMB);
    auto stats = co_await awaitable;
    if (stats.ok()) out.push_back(stats.value().duration_s());
  };
  script(*world, durations);
  script(*world, durations);
  world->simulator().run();
  ASSERT_EQ(durations.size(), 2u);
  // 25 MB at ~25 Mbps each: ~8 s, clearly slower than solo (~4.7 s).
  for (double d : durations) EXPECT_GT(d, 6.5);
}

}  // namespace
}  // namespace droute::net

// ---------------------------------------------------------------------------
// Engine coroutines under contract violations, fault injection and budgets.

namespace droute::transfer {
namespace {

using scenario::World;
using scenario::WorldConfig;

std::unique_ptr<World> quiet_world() {
  WorldConfig config;
  config.cross_traffic = false;
  return World::create(config);
}

TEST(DetourTask, ThrowingLegSurfacesAsFailedResult) {
  auto world = quiet_world();
  const auto ubc = world->client_node(scenario::Client::kUBC);
  const auto ua = world->intermediate_node(scenario::Intermediate::kUAlberta);
  DetourOptions options;
  options.rsync.basis_overlap = 1.5;  // violates the rsync engine contract

  auto task = world->detour_engine(cloud::ProviderKind::kGoogleDrive)
                  .transfer_task(ubc, ua, make_file_mb(10, 7), options);
  world->simulator().run();
  ASSERT_TRUE(task.done());
  // The leg's exception was folded into a failed result, not rethrown.
  ASSERT_TRUE(task.result().ok());
  const DetourResult& result = task.result().value();
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.error.find("detour leg 1 (rsync)"), std::string::npos);
  EXPECT_NE(result.error.find("basis_overlap"), std::string::npos);
}

TEST(DetourTask, ThrowingLegSurfacesThroughCallbackShim) {
  auto world = quiet_world();
  const auto ubc = world->client_node(scenario::Client::kUBC);
  const auto ua = world->intermediate_node(scenario::Intermediate::kUAlberta);
  DetourOptions options;
  options.rsync.basis_overlap = 1.5;

  DetourResult seen;
  bool fired = false;
  world->detour_engine(cloud::ProviderKind::kGoogleDrive)
      .transfer(ubc, ua, make_file_mb(10, 7),
                [&](const DetourResult& result) {
                  fired = true;
                  seen = result;
                },
                options);
  world->simulator().run();
  ASSERT_TRUE(fired);
  EXPECT_FALSE(seen.success);
  EXPECT_NE(seen.error.find("detour leg 1 (rsync)"), std::string::npos);
}

TEST(RsyncTask, AbortFlowMidTransferFailsTheLeg) {
  auto world = quiet_world();
  RsyncEngine engine(&world->fabric());
  auto task = engine.push_task(world->node("planetlab1.cs.ubc.ca"),
                               world->node("cluster.cs.ualberta.ca"),
                               make_file_mb(40, 3));
  world->simulator().run_until(3.0);
  ASSERT_FALSE(task.done());
  // Whichever rsync flow is in flight (signature or delta) dies; aborting
  // an already-finished id is a no-op.
  world->fabric().abort_flow(1);
  world->fabric().abort_flow(2);
  world->simulator().run();
  ASSERT_TRUE(task.done());
  ASSERT_TRUE(task.result().ok());
  EXPECT_FALSE(task.result().value().success);
  EXPECT_FALSE(task.result().value().error.empty());
}

TEST(DetourTask, FailLinkMidLeg1FailsTheDetour) {
  auto world = quiet_world();
  const auto ubc = world->client_node(scenario::Client::kUBC);
  const auto ua = world->intermediate_node(scenario::Intermediate::kUAlberta);
  auto task = world->detour_engine(cloud::ProviderKind::kGoogleDrive)
                  .transfer_task(ubc, ua, make_file_mb(50, 5));
  world->simulator().run_until(4.0);
  ASSERT_FALSE(task.done());
  world->fabric().fail_link(world->topology()
                                .find_link(world->node("planetlab1.cs.ubc.ca"),
                                           world->node("cs-gw.net.ubc.ca"))
                                .value());
  world->simulator().run();
  ASSERT_TRUE(task.done());
  ASSERT_TRUE(task.result().ok());
  EXPECT_FALSE(task.result().value().success);
  EXPECT_NE(task.result().value().error.find("detour leg 1"),
            std::string::npos);
}

TEST(DetourTask, TimeoutDuringLeg2AbandonsTheApiSession) {
  auto world = quiet_world();
  const auto ubc = world->client_node(scenario::Client::kUBC);
  const auto ua = world->intermediate_node(scenario::Intermediate::kUAlberta);
  // Leg 1 (rsync, ~9.5 s) finishes; the 15 s budget expires mid-upload.
  auto guarded = sim::with_timeout(
      world->simulator(),
      world->detour_engine(cloud::ProviderKind::kGoogleDrive)
          .transfer_task(ubc, ua, make_file_mb(50, 9)),
      15.0);
  world->simulator().run();
  ASSERT_TRUE(guarded.done());
  ASSERT_FALSE(guarded.result().ok());
  EXPECT_EQ(guarded.result().error().code, sim::kErrTimeout);
  EXPECT_DOUBLE_EQ(world->simulator().now(), 15.0);
  // The cancelled upload abandoned its API session on the way out.
  EXPECT_EQ(world->server(cloud::ProviderKind::kGoogleDrive).open_sessions(),
            0u);
}

}  // namespace
}  // namespace droute::transfer
