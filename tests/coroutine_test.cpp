// C++20 coroutine layer tests: sim::Process + net::transfer awaitables.
#include <gtest/gtest.h>

#include <vector>

#include "net/fabric_await.h"
#include "scenario/north_america.h"
#include "sim/process.h"
#include "util/units.h"

namespace droute::sim {
namespace {

Process two_step(Simulator& simulator, std::vector<double>& timestamps) {
  timestamps.push_back(simulator.now());
  co_await delay(simulator, 2.0);
  timestamps.push_back(simulator.now());
  co_await delay(simulator, 3.0);
  timestamps.push_back(simulator.now());
}

TEST(Process, DelaysAdvanceSimulatedTime) {
  Simulator simulator;
  std::vector<double> timestamps;
  Process process = two_step(simulator, timestamps);
  // Body ran eagerly to the first co_await.
  ASSERT_EQ(timestamps.size(), 1u);
  EXPECT_FALSE(process.done());
  simulator.run();
  ASSERT_EQ(timestamps.size(), 3u);
  EXPECT_DOUBLE_EQ(timestamps[0], 0.0);
  EXPECT_DOUBLE_EQ(timestamps[1], 2.0);
  EXPECT_DOUBLE_EQ(timestamps[2], 5.0);
  EXPECT_TRUE(process.done());
}

Process ticker(Simulator& simulator, int& count, int limit) {
  for (int i = 0; i < limit; ++i) {
    co_await delay(simulator, 1.0);
    ++count;
  }
}

TEST(Process, LoopsInterleaveDeterministically) {
  Simulator simulator;
  int fast = 0, slow = 0;
  ticker(simulator, fast, 10);
  ticker(simulator, slow, 5);
  simulator.run_until(4.5);
  EXPECT_EQ(fast, 4);
  EXPECT_EQ(slow, 4);
  simulator.run();
  EXPECT_EQ(fast, 10);
  EXPECT_EQ(slow, 5);
}

TEST(Process, ZeroDelayDoesNotSuspend) {
  Simulator simulator;
  std::vector<double> timestamps;
  auto proc = [](Simulator& s, std::vector<double>& ts) -> Process {
    co_await delay(s, 0.0);
    ts.push_back(s.now());
    co_await delay_until(s, -5.0);  // already past: no-op
    ts.push_back(s.now());
  }(simulator, timestamps);
  EXPECT_TRUE(proc.done());  // ran to completion without any events
  EXPECT_EQ(timestamps.size(), 2u);
  EXPECT_EQ(simulator.pending(), 0u);
}

TEST(Process, DelayUntilAbsoluteTime) {
  Simulator simulator;
  double fired_at = -1.0;
  [](Simulator& s, double& at) -> Process {
    co_await delay_until(s, 7.5);
    at = s.now();
  }(simulator, fired_at);
  simulator.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

}  // namespace
}  // namespace droute::sim

namespace droute::net {
namespace {

using scenario::World;
using scenario::WorldConfig;

sim::Process detour_script(World& world, double& leg1_s, double& leg2_s,
                           bool& ok) {
  // The paper's store-and-forward detour as a straight-line script:
  // UBC -> UAlberta, then UAlberta -> Google front end.
  const auto ubc = world.client_node(scenario::Client::kUBC);
  const auto ua = world.intermediate_node(scenario::Intermediate::kUAlberta);
  const auto fe = world.provider_node(cloud::ProviderKind::kGoogleDrive);

  auto leg1_awaitable = transfer(world.fabric(), ubc, ua, 50 * util::kMB);
  auto leg1 = co_await leg1_awaitable;
  if (!leg1) {
    ok = false;
    co_return;
  }
  leg1_s = leg1->duration_s();
  auto leg2_awaitable = transfer(world.fabric(), ua, fe, 50 * util::kMB);
  auto leg2 = co_await leg2_awaitable;
  if (!leg2) {
    ok = false;
    co_return;
  }
  leg2_s = leg2->duration_s();
  ok = true;
}

TEST(TransferAwait, SequentialDetourScript) {
  WorldConfig config;
  config.cross_traffic = false;
  auto world = World::create(config);
  double leg1_s = 0.0, leg2_s = 0.0;
  bool ok = false;
  sim::Process script = detour_script(*world, leg1_s, leg2_s, ok);
  world->simulator().run();
  ASSERT_TRUE(script.done());
  ASSERT_TRUE(ok);
  // Raw flows: 50 MB at 44 Mbps slice ~ 9.5 s, at 50 Mbps uplink ~ 8.3 s.
  EXPECT_NEAR(leg1_s, 9.5, 2.0);
  EXPECT_NEAR(leg2_s, 8.3, 2.0);
  // Sequential: the world clock advanced by both legs plus slow start.
  EXPECT_GT(world->simulator().now(), leg1_s + leg2_s - 0.5);
}

TEST(TransferAwait, RejectedFlowResumesWithNullopt) {
  WorldConfig config;
  config.cross_traffic = false;
  auto world = World::create(config);
  // Cut UCLA off so the flow is rejected synchronously.
  world->fabric().fail_link(
      world->topology()
          .find_link(world->node("planetlab1.ucla.edu"),
                     world->node("pl-gw.ucla.edu"))
          .value());
  bool reached_end = false;
  bool got_stats = true;
  [](World& w, bool& end, bool& stats) -> sim::Process {
    auto awaitable = transfer(
        w.fabric(), w.client_node(scenario::Client::kUCLA),
        w.provider_node(cloud::ProviderKind::kDropbox), util::kMB);
    auto result = co_await awaitable;
    stats = result.has_value();
    end = true;
  }(*world, reached_end, got_stats);
  // The rejection path never suspends, so the script is already finished.
  EXPECT_TRUE(reached_end);
  EXPECT_FALSE(got_stats);
}

TEST(TransferAwait, ConcurrentScriptsShareTheFabric) {
  WorldConfig config;
  config.cross_traffic = false;
  auto world = World::create(config);
  // Two concurrent scripts pushing UBC -> UAlberta share the 44 Mbps slice
  // fairly: each takes about twice the solo time... the slice cap is
  // per-flow (middlebox), so the real constraint is the shared 50 Mbps
  // uplink: each flow gets ~25 Mbps.
  std::vector<double> durations;
  auto script = [](World& w, std::vector<double>& out) -> sim::Process {
    auto awaitable = transfer(
        w.fabric(), w.client_node(scenario::Client::kUBC),
        w.intermediate_node(scenario::Intermediate::kUAlberta),
        25 * util::kMB);
    auto stats = co_await awaitable;
    if (stats) out.push_back(stats->duration_s());
  };
  script(*world, durations);
  script(*world, durations);
  world->simulator().run();
  ASSERT_EQ(durations.size(), 2u);
  // 25 MB at ~25 Mbps each: ~8 s, clearly slower than solo (~4.7 s).
  for (double d : durations) EXPECT_GT(d, 6.5);
}

}  // namespace
}  // namespace droute::net
