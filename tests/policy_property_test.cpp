// Property tests of BGP-lite over randomized topologies: every computed AS
// path must be valley-free and loop-free; the fabric's max-min allocation
// must satisfy feasibility, cap-respect and water-filling optimality on
// randomized flow sets.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "net/fabric.h"
#include "net/routing.h"
#include "net/topology.h"
#include "util/rng.h"
#include "util/units.h"

namespace droute::net {
namespace {

/// Random AS hierarchy: tier-1 clique of peers, tier-2 customers of tier-1
/// (plus occasional tier-2 peering), tier-3 stubs customers of tier-2.
/// One router per AS, links along every declared relationship.
struct RandomInternet {
  Topology topo;
  std::vector<NodeId> routers;
  std::map<std::pair<AsId, AsId>, AsRelation> declared;  // b's role to a

  static RandomInternet build(std::uint64_t seed, int tier1 = 3, int tier2 = 5,
                              int tier3 = 8) {
    util::Rng rng(seed);
    RandomInternet world;
    Topology::Builder b;
    std::vector<AsId> t1, t2, t3;
    auto declare = [&](AsId a, AsId bb, AsRelation rel) {
      b.relate(a, bb, rel);
      world.declared[{a, bb}] = rel;
    };
    for (int i = 0; i < tier1; ++i) t1.push_back(b.add_as("T1-" + std::to_string(i)));
    for (int i = 0; i < tier2; ++i) t2.push_back(b.add_as("T2-" + std::to_string(i)));
    for (int i = 0; i < tier3; ++i) t3.push_back(b.add_as("T3-" + std::to_string(i)));
    // Tier-1 full peer mesh.
    for (std::size_t i = 0; i < t1.size(); ++i) {
      for (std::size_t j = i + 1; j < t1.size(); ++j) {
        declare(t1[i], t1[j], AsRelation::kPeer);
      }
    }
    // Tier-2: customer of 1-2 tier-1s; some tier-2 peering.
    for (AsId as : t2) {
      const auto providers = 1 + rng.uniform_int(0, 1);
      std::set<AsId> used;
      for (int p = 0; p < providers; ++p) {
        const AsId up = t1[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(t1.size() - 1)))];
        if (used.insert(up).second) declare(up, as, AsRelation::kCustomer);
      }
    }
    for (std::size_t i = 0; i < t2.size(); ++i) {
      for (std::size_t j = i + 1; j < t2.size(); ++j) {
        if (rng.chance(0.3)) declare(t2[i], t2[j], AsRelation::kPeer);
      }
    }
    // Tier-3 stubs: customer of 1-2 tier-2s.
    for (AsId as : t3) {
      const auto providers = 1 + rng.uniform_int(0, 1);
      std::set<AsId> used;
      for (int p = 0; p < providers; ++p) {
        const AsId up = t2[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(t2.size() - 1)))];
        if (used.insert(up).second) declare(up, as, AsRelation::kCustomer);
      }
    }
    // One router per AS; links along relationships.
    const int total = tier1 + tier2 + tier3;
    for (int i = 0; i < total; ++i) {
      world.routers.push_back(
          b.add_router(static_cast<AsId>(i), "r" + std::to_string(i),
                       {40.0 + i, -100.0 + i}));
    }
    for (const auto& [pair, rel] : world.declared) {
      b.add_duplex(world.routers[static_cast<std::size_t>(pair.first)],
                   world.routers[static_cast<std::size_t>(pair.second)],
                   1000.0,
                   util::ms(static_cast<double>(1 + rng.uniform_int(0, 20))));
    }
    auto built = std::move(b).build();
    EXPECT_TRUE(built.ok()) << (built.ok() ? "" : built.error().message);
    world.topo = std::move(built).value();
    return world;
  }

  /// Edge classification from x's perspective: +1 up (to provider), 0 peer,
  /// -1 down (to customer).
  int edge_direction(AsId x, AsId y) const {
    const auto it = declared.find({x, y});
    if (it != declared.end()) {
      switch (it->second) {
        case AsRelation::kCustomer: return -1;
        case AsRelation::kPeer: return 0;
        case AsRelation::kProvider: return +1;
      }
    }
    const auto rit = declared.find({y, x});
    EXPECT_TRUE(rit != declared.end()) << "undeclared edge";
    switch (rit->second) {
      case AsRelation::kCustomer: return +1;  // x is y's customer: up
      case AsRelation::kPeer: return 0;
      case AsRelation::kProvider: return -1;
    }
    return 0;
  }
};

class BgpProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BgpProperty, AllPathsValleyFreeAndLoopFree) {
  RandomInternet world = RandomInternet::build(GetParam());
  RouteTable routes(&world.topo);
  const auto n = static_cast<AsId>(world.topo.as_count());
  int reachable_pairs = 0;
  for (AsId src = 0; src < n; ++src) {
    for (AsId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      auto path = routes.as_path(src, dst);
      if (!path.ok()) continue;  // policy can legitimately isolate pairs
      ++reachable_pairs;
      const auto& hops = path.value();
      // Loop-free.
      std::set<AsId> seen(hops.begin(), hops.end());
      EXPECT_EQ(seen.size(), hops.size()) << "AS loop";
      // Valley-free: direction sequence matches up* peer? down*.
      int phase = 0;  // 0=climbing, 1=peered, 2=descending
      for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
        const int dir = world.edge_direction(hops[i], hops[i + 1]);
        if (dir == +1) {
          EXPECT_EQ(phase, 0) << "up edge after peak (valley!)";
        } else if (dir == 0) {
          EXPECT_LT(phase, 2) << "peer edge while descending";
          EXPECT_NE(phase, 1) << "two peer edges on one path";
          phase = 1;
        } else {
          phase = 2;
        }
      }
    }
  }
  // The hierarchy is connected upward, so most pairs must be reachable.
  EXPECT_GT(reachable_pairs, static_cast<int>(n) * (n - 1) / 2);
}

TEST_P(BgpProperty, NodeRoutesMatchAsPaths) {
  RandomInternet world = RandomInternet::build(GetParam());
  RouteTable routes(&world.topo);
  const auto n = static_cast<AsId>(world.topo.as_count());
  for (AsId src = 0; src < n; ++src) {
    for (AsId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      auto as_path = routes.as_path(src, dst);
      auto node_route =
          routes.route(world.routers[static_cast<std::size_t>(src)],
                       world.routers[static_cast<std::size_t>(dst)]);
      ASSERT_EQ(as_path.ok(), node_route.ok());
      if (!as_path.ok()) continue;
      // The node path's AS sequence (deduplicated) equals the BGP path.
      std::vector<AsId> seen;
      for (NodeId node : node_route.value().nodes) {
        const AsId as = world.topo.node(node).as_id;
        if (seen.empty() || seen.back() != as) seen.push_back(as);
      }
      EXPECT_EQ(seen, as_path.value());
    }
  }
}

TEST_P(BgpProperty, DeterministicAcrossRebuilds) {
  RandomInternet w1 = RandomInternet::build(GetParam());
  RandomInternet w2 = RandomInternet::build(GetParam());
  RouteTable r1(&w1.topo), r2(&w2.topo);
  const auto n = static_cast<AsId>(w1.topo.as_count());
  for (AsId src = 0; src < n; ++src) {
    for (AsId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      auto p1 = r1.as_path(src, dst);
      auto p2 = r2.as_path(src, dst);
      ASSERT_EQ(p1.ok(), p2.ok());
      if (p1.ok()) {
        EXPECT_EQ(p1.value(), p2.value());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, BgpProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Max-min allocation properties on random flow sets over a shared path.

class MaxMinProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxMinProperty, FeasibleCapRespectingAndSaturating) {
  util::Rng rng(GetParam());
  // Chain topology: h0 - r0 - r1 - r2 - h1, with random link capacities.
  Topology::Builder b;
  const AsId as = b.add_as("AS");
  std::vector<NodeId> chain;
  chain.push_back(b.add_host(as, "h0", {50, -100}));
  for (int i = 0; i < 3; ++i) {
    chain.push_back(b.add_router(as, "r" + std::to_string(i),
                                 {50, -99.0 + i}));
  }
  chain.push_back(b.add_host(as, "h1", {50, -95}));
  std::vector<double> capacities;
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const double cap = rng.uniform(20.0, 200.0);
    capacities.push_back(cap);
    b.add_duplex(chain[i], chain[i + 1], cap, util::ms(1));
  }
  auto built = std::move(b).build();
  ASSERT_TRUE(built.ok());
  Topology topo = std::move(built).value();
  RouteTable routes(&topo);
  sim::Simulator simulator;
  Fabric fabric(&simulator, &topo, &routes);

  const int flows = 1 + static_cast<int>(rng.uniform_int(1, 7));
  std::vector<FlowId> ids;
  std::vector<double> caps;
  for (int i = 0; i < flows; ++i) {
    FlowOptions options;
    options.charge_slow_start = false;
    options.app_cap_mbps = rng.chance(0.5) ? rng.uniform(5.0, 60.0) : 0.0;
    caps.push_back(options.app_cap_mbps);
    auto id = fabric.start_flow(chain.front(), chain.back(),
                                1000 * util::kMB, nullptr, options);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }

  double total = 0.0;
  double min_uncapped_rate = 1e18;
  bool any_uncapped = false;
  for (int i = 0; i < flows; ++i) {
    const double rate = fabric.current_rate_mbps(ids[static_cast<std::size_t>(i)]);
    EXPECT_GT(rate, 0.0);
    if (caps[static_cast<std::size_t>(i)] > 0.0) {
      EXPECT_LE(rate, caps[static_cast<std::size_t>(i)] + 1e-6);
    } else {
      any_uncapped = true;
      min_uncapped_rate = std::min(min_uncapped_rate, rate);
    }
    total += rate;
  }
  const double bottleneck =
      *std::min_element(capacities.begin(), capacities.end());
  // Feasibility: never exceed the bottleneck.
  EXPECT_LE(total, bottleneck + 1e-6);
  // Saturation / optimality: either the bottleneck is full, or every flow
  // sits at its own cap (and at least TCP-window limits don't bind here).
  if (any_uncapped) {
    EXPECT_NEAR(total, bottleneck, bottleneck * 0.02);
    // Max-min fairness: all uncapped flows share one water level.
    for (int i = 0; i < flows; ++i) {
      if (caps[static_cast<std::size_t>(i)] == 0.0) {
        EXPECT_NEAR(fabric.current_rate_mbps(ids[static_cast<std::size_t>(i)]),
                    min_uncapped_rate, min_uncapped_rate * 0.01);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFlowSets, MaxMinProperty,
                         ::testing::Range<std::uint64_t>(100, 116));

}  // namespace
}  // namespace droute::net
