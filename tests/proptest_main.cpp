// proptest — property-based scenario fuzzer over droute::chaos.
//
// Modes:
//   proptest --seed N --iters K        run K random cases from seeds N..N+K-1
//   proptest ... --selfcheck           run every case twice, require
//                                      byte-identical outcome digests
//   proptest --replay FILE...          replay committed .case files; every
//                                      property must hold (regression corpus)
//
// On a violated property the failing case is minimized (chaos::shrink) and
// written to --out-dir (default ".") as proptest-<seed>.case with `# seed:`
// and `# violated:` provenance headers; exit status 1. Fully deterministic:
// the same command line always produces the same verdicts and digests.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/case_io.h"
#include "chaos/scenario.h"
#include "chaos/shrink.h"

namespace {

using droute::chaos::Case;
using droute::chaos::RunReport;

struct Options {
  std::uint64_t seed = 1;
  int iters = 50;
  bool selfcheck = false;
  std::string out_dir = ".";
  std::vector<std::string> replay_files;
  std::size_t shrink_attempts = 300;
  droute::chaos::CaseSpec spec;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--iters K] [--selfcheck]\n"
               "          [--out-dir DIR] [--shrink-attempts N]\n"
               "          [--max-events N] [--max-work N] [--max-ases N]\n"
               "          [--replay FILE...]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      options->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--iters") {
      const char* v = next();
      if (v == nullptr) return false;
      options->iters = std::atoi(v);
    } else if (arg == "--selfcheck") {
      options->selfcheck = true;
    } else if (arg == "--out-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      options->out_dir = v;
    } else if (arg == "--shrink-attempts") {
      const char* v = next();
      if (v == nullptr) return false;
      options->shrink_attempts =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--max-events") {
      const char* v = next();
      if (v == nullptr) return false;
      options->spec.max_chaos_events = std::atoi(v);
    } else if (arg == "--max-work") {
      const char* v = next();
      if (v == nullptr) return false;
      options->spec.max_work = std::atoi(v);
    } else if (arg == "--max-ases") {
      const char* v = next();
      if (v == nullptr) return false;
      options->spec.topology.max_ases = std::atoi(v);
    } else if (arg == "--replay") {
      while (i + 1 < argc && argv[i + 1][0] != '-') {
        options->replay_files.emplace_back(argv[++i]);
      }
      if (options->replay_files.empty()) return false;
    } else {
      return false;
    }
  }
  return true;
}

int replay(const Options& options) {
  int failures = 0;
  for (const std::string& path : options.replay_files) {
    auto loaded = droute::chaos::load_case_file(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                   loaded.error().message.c_str());
      ++failures;
      continue;
    }
    const RunReport report = droute::chaos::run_case(loaded.value());
    if (report.ok()) {
      // fabric_equivalence: the incremental allocator must reproduce the
      // full-recompute reference digest on every corpus case, forever.
      const RunReport reference = droute::chaos::run_case(
          loaded.value(), droute::chaos::RunOptions{.full_recompute = true});
      if (reference.digest != report.digest) {
        std::fprintf(stderr,
                     "FAIL %s: property 'fabric_equivalence' violated: "
                     "incremental digest %016llx != full-recompute %016llx\n",
                     path.c_str(),
                     static_cast<unsigned long long>(report.digest),
                     static_cast<unsigned long long>(reference.digest));
        ++failures;
        continue;
      }
      // sharded_equivalence: the parallel sharded allocator (DESIGN.md §16)
      // must reproduce the same digest with workers fanned out.
      const RunReport sharded = droute::chaos::run_case(
          loaded.value(), droute::chaos::RunOptions{.shard_workers = 2});
      if (sharded.digest != report.digest) {
        std::fprintf(stderr,
                     "FAIL %s: property 'sharded_equivalence' violated: "
                     "incremental digest %016llx != sharded %016llx\n",
                     path.c_str(),
                     static_cast<unsigned long long>(report.digest),
                     static_cast<unsigned long long>(sharded.digest));
        ++failures;
        continue;
      }
      std::printf("ok   %s digest=%016llx\n", path.c_str(),
                  static_cast<unsigned long long>(report.digest));
    } else {
      std::fprintf(stderr, "FAIL %s: property '%s' violated: %s\n",
                   path.c_str(), report.violated.c_str(),
                   report.detail.c_str());
      ++failures;
    }
  }
  std::printf("replayed %zu case(s), %d failure(s)\n",
              options.replay_files.size(), failures);
  return failures == 0 ? 0 : 1;
}

int fuzz(const Options& options) {
  for (int i = 0; i < options.iters; ++i) {
    const std::uint64_t seed = options.seed + static_cast<std::uint64_t>(i);
    const Case c = droute::chaos::random_case(seed, options.spec);
    RunReport report = droute::chaos::run_case(c);
    std::string violated = report.violated;
    std::string detail = report.detail;
    if (report.ok()) {
      // fabric_equivalence: re-run against the retained full-recompute
      // allocator; any digest drift means a stale incremental rate.
      const RunReport reference = droute::chaos::run_case(
          c, droute::chaos::RunOptions{.full_recompute = true});
      if (reference.digest != report.digest) {
        violated = "fabric_equivalence";
        detail = "incremental and full-recompute digests differ";
      }
    }
    if (violated.empty()) {
      // sharded_equivalence: the parallel sharded allocator must agree too
      // (a divergence here with fabric_equivalence green points straight at
      // the collect/merge discipline, not the water-fill arithmetic).
      const RunReport sharded = droute::chaos::run_case(
          c, droute::chaos::RunOptions{.shard_workers = 2});
      if (sharded.digest != report.digest) {
        violated = "sharded_equivalence";
        detail = "incremental and sharded digests differ";
      }
    }
    if (violated.empty() && options.selfcheck) {
      const RunReport second = droute::chaos::run_case(c);
      if (second.digest != report.digest) {
        violated = "replay_divergence";
        detail = "digests differ across identical runs";
      }
    }
    if (violated.empty()) {
      std::printf("ok   seed=%llu digest=%016llx injected=%zu work=%zu\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(report.digest),
                  report.injected, report.completed_work);
      continue;
    }
    std::fprintf(stderr, "FAIL seed=%llu property '%s': %s\n",
                 static_cast<unsigned long long>(seed), violated.c_str(),
                 detail.c_str());
    droute::chaos::ShrinkStats stats;
    const Case minimal = droute::chaos::shrink(
        c,
        [&violated](const Case& candidate) {
          const RunReport run = droute::chaos::run_case(candidate);
          if (violated == "fabric_equivalence") {
            if (!run.ok()) return false;
            const RunReport reference = droute::chaos::run_case(
                candidate, droute::chaos::RunOptions{.full_recompute = true});
            return reference.digest != run.digest;
          }
          if (violated == "sharded_equivalence") {
            if (!run.ok()) return false;
            const RunReport sharded = droute::chaos::run_case(
                candidate, droute::chaos::RunOptions{.shard_workers = 2});
            return sharded.digest != run.digest;
          }
          return run.violated == violated;
        },
        options.shrink_attempts, &stats);
    const std::string out_path =
        options.out_dir + "/proptest-" + std::to_string(seed) + ".case";
    auto saved = droute::chaos::save_case_file(out_path, minimal, violated);
    std::fprintf(stderr,
                 "     shrunk: -%zu events -%zu links -%zu work "
                 "(%zu reruns); %s\n",
                 stats.events_dropped, stats.links_dropped, stats.work_dropped,
                 stats.oracle_calls,
                 saved.ok() ? ("wrote " + out_path).c_str()
                            : saved.error().message.c_str());
    return 1;
  }
  std::printf("all %d case(s) passed (seeds %llu..%llu)%s\n", options.iters,
              static_cast<unsigned long long>(options.seed),
              static_cast<unsigned long long>(
                  options.seed + static_cast<std::uint64_t>(options.iters) - 1),
              options.selfcheck ? " with determinism selfcheck" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, &options)) return usage(argv[0]);
  if (!options.replay_files.empty()) return replay(options);
  if (options.iters <= 0) return usage(argv[0]);
  return fuzz(options);
}
