#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <optional>

#include "check/contract.h"
#include "check/fabric_audit.h"
#include "check/sim_audit.h"
#include "net/cross_traffic.h"
#include "net/fabric.h"
#include "util/units.h"

namespace droute::net {
namespace {

/// Dumbbell: a1,a2,a3 -- left -- (shared 100 Mbps) -- right -- b1,b2,b3.
struct Dumbbell {
  Topology topo;
  RouteTable routes{nullptr};
  sim::Simulator simulator;
  std::unique_ptr<Fabric> fabric;
  // Watches the clock on every event when debug checks are on (the default;
  // DROUTE_DEBUG_CHECKS=0 disables for profiling runs).
  std::optional<check::SimAuditor> auditor;
  NodeId a[3], b[3], left, right;
  LinkId shared;

  /// Asserts the fabric conservation laws (capacity + byte ledger).
  void audit() const {
    if (!check::debug_checks_enabled()) return;
    const auto status = check::audit_fabric(*fabric);
    EXPECT_TRUE(status.ok()) << status.error().message;
  }

  /// Asserts the simulator drained without leaking events.
  void audit_drained() const {
    if (!check::debug_checks_enabled() || !auditor.has_value()) return;
    const auto status = auditor->audit_quiescent();
    EXPECT_TRUE(status.ok()) << status.error().message;
  }

  Dumbbell(double shared_mbps = 100.0, double loss = 0.0) {
    Topology::Builder builder;
    const AsId as = builder.add_as("AS");
    left = builder.add_router(as, "left", {50, -100});
    right = builder.add_router(as, "right", {50, -99});
    for (int i = 0; i < 3; ++i) {
      a[i] = builder.add_host(as, "a" + std::to_string(i), {50, -100});
      b[i] = builder.add_host(as, "b" + std::to_string(i), {50, -99});
      builder.add_duplex(a[i], left, 10000, 0.0005);
      builder.add_duplex(right, b[i], 10000, 0.0005);
    }
    shared = builder.add_duplex(left, right, shared_mbps, 0.005,
                                {.loss_rate = loss});
    auto built = std::move(builder).build();
    EXPECT_TRUE(built.ok());
    topo = std::move(built).value();
    routes = RouteTable(&topo);
    fabric = std::make_unique<Fabric>(&simulator, &topo, &routes);
    if (check::debug_checks_enabled()) auditor.emplace(&simulator);
  }
};

TEST(Fabric, SingleFlowGetsBottleneckRate) {
  Dumbbell world(100.0);
  FlowStats finished;
  FlowOptions options;
  options.charge_slow_start = false;
  auto flow = world.fabric->start_flow(
      world.a[0], world.b[0], 100 * util::kMB,
      [&](const FlowStats& stats) { finished = stats; }, options);
  ASSERT_TRUE(flow.ok());
  world.simulator.run();
  EXPECT_EQ(finished.outcome, FlowOutcome::kCompleted);
  // 100 MB at 100 Mbps = 8 s.
  EXPECT_NEAR(finished.duration_s(), 8.0, 0.05);
  EXPECT_NEAR(finished.achieved_mbps(), 100.0, 1.0);
  world.audit();
  world.audit_drained();
}

TEST(Fabric, TwoFlowsShareFairly) {
  Dumbbell world(100.0);
  std::map<FlowId, FlowStats> done;
  FlowOptions options;
  options.charge_slow_start = false;
  for (int i = 0; i < 2; ++i) {
    auto flow = world.fabric->start_flow(
        world.a[i], world.b[i], 50 * util::kMB,
        [&](const FlowStats& stats) { done[stats.id] = stats; }, options);
    ASSERT_TRUE(flow.ok());
  }
  world.simulator.run();
  ASSERT_EQ(done.size(), 2u);
  // Two equal flows at 50 Mbps each: both finish ~8 s.
  for (const auto& [id, stats] : done) {
    EXPECT_NEAR(stats.duration_s(), 8.0, 0.1);
  }
  world.audit();
  world.audit_drained();
}

TEST(Fabric, ShortFlowDepartureSpeedsUpSurvivor) {
  Dumbbell world(100.0);
  FlowStats long_flow{}, short_flow{};
  FlowOptions options;
  options.charge_slow_start = false;
  ASSERT_TRUE(world.fabric
                  ->start_flow(world.a[0], world.b[0], 100 * util::kMB,
                               [&](const FlowStats& s) { long_flow = s; },
                               options)
                  .ok());
  ASSERT_TRUE(world.fabric
                  ->start_flow(world.a[1], world.b[1], 25 * util::kMB,
                               [&](const FlowStats& s) { short_flow = s; },
                               options)
                  .ok());
  world.simulator.run();
  // Short: 25 MB at 50 Mbps = 4 s. Long: 4 s at 50 + remaining 75 MB at
  // 100 Mbps = 4 + 6 = 10 s.
  EXPECT_NEAR(short_flow.duration_s(), 4.0, 0.1);
  EXPECT_NEAR(long_flow.duration_s(), 10.0, 0.1);
}

TEST(Fabric, PerFlowCapLeavesHeadroomForOthers) {
  Dumbbell world(100.0);
  // Flow 0 is app-capped at 20 Mbps; flow 1 should get the remaining 80.
  FlowOptions capped;
  capped.charge_slow_start = false;
  capped.app_cap_mbps = 20.0;
  FlowOptions open;
  open.charge_slow_start = false;
  FlowStats f0{}, f1{};
  ASSERT_TRUE(world.fabric
                  ->start_flow(world.a[0], world.b[0], 10 * util::kMB,
                               [&](const FlowStats& s) { f0 = s; }, capped)
                  .ok());
  ASSERT_TRUE(world.fabric
                  ->start_flow(world.a[1], world.b[1], 40 * util::kMB,
                               [&](const FlowStats& s) { f1 = s; }, open)
                  .ok());
  world.simulator.run();
  EXPECT_NEAR(f0.duration_s(), 4.0, 0.1);   // 10 MB at 20 Mbps
  EXPECT_NEAR(f1.duration_s(), 4.0, 0.1);   // 40 MB at 80 Mbps
}

TEST(Fabric, MaxMinWaterFillingInvariants) {
  // Three concurrent flows with caps 10/50/uncapped on a 90 Mbps link:
  // allocation must be 10 / 40 / 40 (water level 40).
  Dumbbell world(90.0);
  FlowOptions o1, o2, o3;
  o1.charge_slow_start = o2.charge_slow_start = o3.charge_slow_start = false;
  o1.app_cap_mbps = 10.0;
  o2.app_cap_mbps = 50.0;
  auto f1 = world.fabric->start_flow(world.a[0], world.b[0],
                                     1000 * util::kMB, nullptr, o1);
  auto f2 = world.fabric->start_flow(world.a[1], world.b[1],
                                     1000 * util::kMB, nullptr, o2);
  auto f3 = world.fabric->start_flow(world.a[2], world.b[2],
                                     1000 * util::kMB, nullptr, o3);
  ASSERT_TRUE(f1.ok() && f2.ok() && f3.ok());
  EXPECT_NEAR(world.fabric->current_rate_mbps(f1.value()), 10.0, 0.01);
  EXPECT_NEAR(world.fabric->current_rate_mbps(f2.value()), 40.0, 0.01);
  EXPECT_NEAR(world.fabric->current_rate_mbps(f3.value()), 40.0, 0.01);
  world.audit();  // live allocation must respect the capacity law
}

TEST(Fabric, LossyLinkCapsThroughputViaMathis) {
  Dumbbell lossless(10000.0, 0.0);
  Dumbbell lossy(10000.0, 0.01);
  FlowOptions options;
  options.charge_slow_start = false;
  FlowStats clean{}, degraded{};
  ASSERT_TRUE(lossless.fabric
                  ->start_flow(lossless.a[0], lossless.b[0], 10 * util::kMB,
                               [&](const FlowStats& s) { clean = s; }, options)
                  .ok());
  ASSERT_TRUE(lossy.fabric
                  ->start_flow(lossy.a[0], lossy.b[0], 10 * util::kMB,
                               [&](const FlowStats& s) { degraded = s; },
                               options)
                  .ok());
  lossless.simulator.run();
  lossy.simulator.run();
  EXPECT_GT(degraded.duration_s(), clean.duration_s() * 2);
}

TEST(Fabric, SlowStartChargesRampTime) {
  Dumbbell world(100.0);
  FlowOptions with_ss, without_ss;
  with_ss.charge_slow_start = true;
  without_ss.charge_slow_start = false;
  FlowStats ramped{}, instant{};
  ASSERT_TRUE(world.fabric
                  ->start_flow(world.a[0], world.b[0], util::kMB,
                               [&](const FlowStats& s) { ramped = s; },
                               with_ss)
                  .ok());
  world.simulator.run();
  ASSERT_TRUE(world.fabric
                  ->start_flow(world.a[1], world.b[1], util::kMB,
                               [&](const FlowStats& s) { instant = s; },
                               without_ss)
                  .ok());
  world.simulator.run();
  EXPECT_GT(ramped.duration_s(), instant.duration_s());
}

TEST(Fabric, AbortFiresCallbackOnce) {
  Dumbbell world(100.0);
  int calls = 0;
  FlowOutcome outcome = FlowOutcome::kCompleted;
  auto flow = world.fabric->start_flow(world.a[0], world.b[0], 100 * util::kMB,
                                       [&](const FlowStats& s) {
                                         ++calls;
                                         outcome = s.outcome;
                                       });
  ASSERT_TRUE(flow.ok());
  world.simulator.schedule_in(1.0,
                              [&] { world.fabric->abort_flow(flow.value()); });
  world.simulator.run();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(outcome, FlowOutcome::kAborted);
  EXPECT_EQ(world.fabric->active_flow_count(), 0u);
}

TEST(Fabric, LinkFailureKillsFlowsAndReroutes) {
  Dumbbell world(100.0);
  FlowOutcome outcome = FlowOutcome::kCompleted;
  auto flow = world.fabric->start_flow(
      world.a[0], world.b[0], 100 * util::kMB,
      [&](const FlowStats& s) { outcome = s.outcome; });
  ASSERT_TRUE(flow.ok());
  world.simulator.schedule_in(0.5,
                              [&] { world.fabric->fail_link(world.shared); });
  world.simulator.run();
  EXPECT_EQ(outcome, FlowOutcome::kLinkFailed);
  // With the only shared link down, a new flow is unroutable.
  EXPECT_FALSE(world.fabric
                   ->start_flow(world.a[0], world.b[0], util::kMB, nullptr)
                   .ok());
  world.fabric->restore_link(world.shared);
  EXPECT_TRUE(world.fabric
                  ->start_flow(world.a[0], world.b[0], util::kMB, nullptr)
                  .ok());
}

TEST(Fabric, ByteConservation) {
  Dumbbell world(100.0);
  constexpr std::uint64_t kBytes = 10 * util::kMB;
  int completions = 0;
  FlowOptions options;
  options.charge_slow_start = false;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(world.fabric
                    ->start_flow(world.a[i], world.b[i], kBytes,
                                 [&](const FlowStats&) { ++completions; },
                                 options)
                    .ok());
  }
  world.simulator.run();
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(world.fabric->delivered_bytes(), 3 * kBytes);
  EXPECT_NEAR(world.fabric->moved_bytes(), 3.0 * kBytes, 3.0);
  world.audit();
  world.audit_drained();
}

TEST(Fabric, RttAccountsBothDirections) {
  Dumbbell world(100.0);
  auto rtt = world.fabric->rtt_s(world.a[0], world.b[0]);
  ASSERT_TRUE(rtt.ok());
  // 2 * (0.0005 + 0.005 + 0.0005) + base 0.003.
  EXPECT_NEAR(rtt.value(), 0.012 + 0.003, 1e-9);
}

TEST(Fabric, RejectsZeroByteFlow) {
  Dumbbell world(100.0);
  EXPECT_FALSE(
      world.fabric->start_flow(world.a[0], world.b[0], 0, nullptr).ok());
}

TEST(CrossTraffic, GeneratesAndDrainsFlows) {
  Dumbbell world(100.0);
  CrossTrafficProfile profile;
  profile.mean_interarrival_s = 0.5;
  profile.min_bytes = 100 * util::kKB;
  profile.max_bytes = util::kMB;
  CrossTrafficSource source(world.fabric.get(), world.a[0], world.b[0],
                            profile, util::Rng(7));
  source.start();
  world.simulator.run_until(30.0);
  source.stop();
  world.simulator.run();  // drain in-flight flows
  EXPECT_GT(source.flows_started(), 20u);
  EXPECT_EQ(source.flows_started(), source.flows_completed());
  world.audit();
  world.audit_drained();
}

TEST(CrossTraffic, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    Dumbbell world(100.0);
    CrossTrafficProfile profile;
    profile.mean_interarrival_s = 0.5;
    CrossTrafficSource source(world.fabric.get(), world.a[0], world.b[0],
                              profile, util::Rng(seed));
    source.start();
    world.simulator.run_until(20.0);
    source.stop();
    world.simulator.run();
    return std::make_pair(source.flows_started(),
                          world.fabric->delivered_bytes());
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(CrossTraffic, SlowsForegroundFlow) {
  Dumbbell quiet(50.0);
  Dumbbell busy(50.0);
  CrossTrafficProfile profile;
  profile.mean_interarrival_s = 0.4;
  profile.min_bytes = util::kMB;
  profile.max_bytes = 8 * util::kMB;
  CrossTrafficSource source(busy.fabric.get(), busy.a[1], busy.b[1], profile,
                            util::Rng(3));
  source.start();
  busy.simulator.run_until(10.0);

  FlowOptions options;
  options.charge_slow_start = false;
  FlowStats quiet_stats{}, busy_stats{};
  ASSERT_TRUE(quiet.fabric
                  ->start_flow(quiet.a[0], quiet.b[0], 20 * util::kMB,
                               [&](const FlowStats& s) { quiet_stats = s; },
                               options)
                  .ok());
  quiet.simulator.run();
  ASSERT_TRUE(busy.fabric
                  ->start_flow(busy.a[0], busy.b[0], 20 * util::kMB,
                               [&](const FlowStats& s) { busy_stats = s; },
                               options)
                  .ok());
  while (busy_stats.bytes == 0 && busy.simulator.step()) {
  }
  source.stop();
  EXPECT_GT(busy_stats.duration_s(), quiet_stats.duration_s() * 1.2);
}

}  // namespace
}  // namespace droute::net

namespace droute::net {
namespace {

TEST(Fabric, LinkLoadsReportAllocationAndUtilization) {
  Dumbbell world(100.0);
  FlowOptions options;
  options.charge_slow_start = false;
  ASSERT_TRUE(world.fabric
                  ->start_flow(world.a[0], world.b[0], 1000 * util::kMB,
                               nullptr, options)
                  .ok());
  ASSERT_TRUE(world.fabric
                  ->start_flow(world.a[1], world.b[1], 1000 * util::kMB,
                               nullptr, options)
                  .ok());
  const auto loads = world.fabric->link_loads();
  ASSERT_FALSE(loads.empty());
  bool found_shared = false;
  for (const auto& load : loads) {
    EXPECT_LE(load.allocated_mbps, load.capacity_mbps + 1e-6);
    if (load.flows == 2) {
      found_shared = true;
      EXPECT_NEAR(load.allocated_mbps, 100.0, 0.1);
      EXPECT_NEAR(load.utilization(), 1.0, 0.01);
    }
  }
  EXPECT_TRUE(found_shared);
}

TEST(Fabric, LinkLoadsEmptyWhenIdle) {
  Dumbbell world(100.0);
  EXPECT_TRUE(world.fabric->link_loads().empty());
}

// --- fault-hook edges (chaos::Injector leans on these being total) ---------

TEST(Fabric, FailLinkWithZeroActiveFlowsIsSafe) {
  Dumbbell world(100.0);
  world.fabric->fail_link(world.shared);  // nothing riding it
  EXPECT_EQ(world.fabric->active_flow_count(), 0u);
  EXPECT_FALSE(world.fabric
                   ->start_flow(world.a[0], world.b[0], util::kMB, nullptr)
                   .ok());
  world.fabric->restore_link(world.shared);
  FlowOutcome outcome = FlowOutcome::kAborted;
  ASSERT_TRUE(world.fabric
                  ->start_flow(world.a[0], world.b[0], util::kMB,
                               [&](const FlowStats& s) { outcome = s.outcome; })
                  .ok());
  world.simulator.run();
  EXPECT_EQ(outcome, FlowOutcome::kCompleted);
  world.audit();
  world.audit_drained();
}

TEST(Fabric, DoubleAbortFiresCallbackOnce) {
  Dumbbell world(100.0);
  int calls = 0;
  auto flow = world.fabric->start_flow(
      world.a[0], world.b[0], 100 * util::kMB,
      [&](const FlowStats& s) {
        ++calls;
        EXPECT_EQ(s.outcome, FlowOutcome::kAborted);
      });
  ASSERT_TRUE(flow.ok());
  world.simulator.run_until(1.0);
  world.fabric->abort_flow(flow.value());
  world.fabric->abort_flow(flow.value());  // finished flow: documented no-op
  world.fabric->abort_flow(99999);         // unknown id: also a no-op
  world.simulator.run();
  EXPECT_EQ(calls, 1);
  world.audit();
  world.audit_drained();
}

TEST(Fabric, RestoreBeforeFailIsANoOp) {
  Dumbbell world(100.0);
  world.fabric->restore_link(world.shared);  // never failed
  FlowOutcome outcome = FlowOutcome::kAborted;
  ASSERT_TRUE(world.fabric
                  ->start_flow(world.a[0], world.b[0], util::kMB,
                               [&](const FlowStats& s) { outcome = s.outcome; })
                  .ok());
  world.simulator.run();
  EXPECT_EQ(outcome, FlowOutcome::kCompleted);
  world.audit();
  world.audit_drained();
}

TEST(Fabric, ReallocateNowOnIdleFabricIsSkipped) {
  Dumbbell world(100.0);
  EXPECT_EQ(world.fabric->realloc_skipped(), 0u);
  // Capacity/policer rewrite hooks fire between campaign runs when nothing
  // is in flight; the recompute must early-out instead of walking state.
  world.fabric->reallocate_now();
  world.fabric->reallocate_now();
  EXPECT_EQ(world.fabric->realloc_skipped(), 2u);

  // With a flow in flight the recompute is real again.
  FlowOutcome outcome = FlowOutcome::kAborted;
  ASSERT_TRUE(world.fabric
                  ->start_flow(world.a[0], world.b[0], util::kMB,
                               [&](const FlowStats& s) { outcome = s.outcome; })
                  .ok());
  world.fabric->reallocate_now();
  EXPECT_EQ(world.fabric->realloc_skipped(), 2u);
  world.simulator.run();
  EXPECT_EQ(outcome, FlowOutcome::kCompleted);

  // Idle again after the flow drains: back to skipping.
  world.fabric->reallocate_now();
  EXPECT_EQ(world.fabric->realloc_skipped(), 3u);
  world.audit();
  world.audit_drained();
}

TEST(Fabric, FullRecomputeModeMatchesIncrementalRates) {
  // Two independent dumbbells driven by the same event script, one per
  // allocation mode: every observable rate must match bit-for-bit (the
  // broad version of this check lives in fabric_equivalence_test.cpp).
  Dumbbell inc(100.0), full(100.0);
  full.fabric->set_alloc_mode(Fabric::AllocMode::kFullRecompute);
  // The default is incremental unless the DROUTE_SHARD_WORKERS env override
  // picked sharded (the sharded CI leg) — either way, not full recompute,
  // and either way bit-identical to it.
  EXPECT_NE(inc.fabric->alloc_mode(), Fabric::AllocMode::kFullRecompute);
  if (std::getenv("DROUTE_SHARD_WORKERS") == nullptr) {
    EXPECT_EQ(inc.fabric->alloc_mode(), Fabric::AllocMode::kIncremental);
  }

  FlowOptions options;
  options.charge_slow_start = false;
  std::vector<FlowId> inc_ids, full_ids;
  for (Dumbbell* world : {&inc, &full}) {
    auto& ids = world == &inc ? inc_ids : full_ids;
    for (int i = 0; i < 3; ++i) {
      auto flow = world->fabric->start_flow(world->a[i], world->b[i],
                                            50 * util::kMB, {}, options);
      ASSERT_TRUE(flow.ok());
      ids.push_back(flow.value());
    }
    world->simulator.run_until(1.0);
  }
  for (std::size_t i = 0; i < inc_ids.size(); ++i) {
    EXPECT_EQ(inc.fabric->current_rate_mbps(inc_ids[i]),
              full.fabric->current_rate_mbps(full_ids[i]));
  }
  inc.fabric->abort_flow(inc_ids[0]);
  full.fabric->abort_flow(full_ids[0]);
  for (std::size_t i = 1; i < inc_ids.size(); ++i) {
    EXPECT_EQ(inc.fabric->current_rate_mbps(inc_ids[i]),
              full.fabric->current_rate_mbps(full_ids[i]));
  }
  inc.audit();
  full.audit();
}

TEST(Fabric, CapacityRewriteMidFlowConverges) {
  Dumbbell world(100.0);
  FlowStats finished;
  FlowOptions options;
  options.charge_slow_start = false;
  auto flow = world.fabric->start_flow(
      world.a[0], world.b[0], 100 * util::kMB,
      [&](const FlowStats& s) { finished = s; }, options);
  ASSERT_TRUE(flow.ok());
  world.simulator.run_until(4.0);  // halfway through the 8 s transfer
  const auto status = world.topo.set_link_capacity(world.shared, 50.0);
  ASSERT_TRUE(status.ok());
  world.fabric->reallocate_now();
  EXPECT_NEAR(world.fabric->current_rate_mbps(flow.value()), 50.0, 0.5);
  world.simulator.run();
  // First half at 100 Mbps (4 s in), remaining 50 MB at 50 Mbps = 8 s.
  EXPECT_EQ(finished.outcome, FlowOutcome::kCompleted);
  EXPECT_NEAR(finished.duration_s(), 12.0, 0.1);
  world.audit();
  world.audit_drained();
}

}  // namespace
}  // namespace droute::net
