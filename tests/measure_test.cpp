#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "measure/campaign.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace droute::measure {
namespace {

TEST(DeriveSeed, StableAndDistinct) {
  const std::uint64_t a = derive_seed(1, "route-a", 1000, 0);
  EXPECT_EQ(a, derive_seed(1, "route-a", 1000, 0));
  EXPECT_NE(a, derive_seed(1, "route-a", 1000, 1));
  EXPECT_NE(a, derive_seed(1, "route-b", 1000, 0));
  EXPECT_NE(a, derive_seed(1, "route-a", 2000, 0));
  EXPECT_NE(a, derive_seed(2, "route-a", 1000, 0));
}

TEST(Campaign, ImplementsSevenRunKeepFiveProtocol) {
  Campaign campaign(7);
  std::atomic<int> calls{0};
  campaign.add_route("synthetic",
                     [&](std::uint64_t, std::uint64_t) -> util::Result<double> {
                       // Warm-up runs (first two) are slow; steady state 10 s.
                       const int run = calls.fetch_add(1);
                       return run < 2 ? 50.0 : 10.0;
                     });
  const Measurement m = campaign.measure("synthetic", 1000);
  EXPECT_EQ(calls.load(), 7);
  EXPECT_EQ(m.runs.size(), 7u);
  EXPECT_EQ(m.kept.count, 5u);
  EXPECT_DOUBLE_EQ(m.kept.mean, 10.0);
  EXPECT_DOUBLE_EQ(m.kept.stddev, 0.0);
  EXPECT_EQ(m.failures, 0);
}

TEST(Campaign, FailuresCountedAndExcluded) {
  Campaign campaign;
  int run = 0;
  campaign.add_route("flaky",
                     [&](std::uint64_t, std::uint64_t) -> util::Result<double> {
                       if (run++ % 2 == 0) {
                         return util::Error::make("injected failure");
                       }
                       return 5.0;
                     });
  const Measurement m = campaign.measure("flaky", 1000);
  EXPECT_EQ(m.failures, 4);  // runs 0,2,4,6 of 7
  EXPECT_EQ(m.runs.size(), 3u);
  EXPECT_DOUBLE_EQ(m.kept.mean, 5.0);
}

TEST(Campaign, SeedsFlowToTransferFn) {
  Campaign campaign(99);
  std::vector<std::uint64_t> seeds;
  campaign.add_route("probe",
                     [&](std::uint64_t, std::uint64_t seed)
                         -> util::Result<double> {
                       seeds.push_back(seed);
                       return 1.0;
                     });
  campaign.measure("probe", 123);
  ASSERT_EQ(seeds.size(), 7u);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], derive_seed(99, "probe", 123, static_cast<int>(i)));
  }
}

TEST(Campaign, GridCoversRoutesTimesSizes) {
  Campaign campaign;
  campaign.add_route("r1", [](std::uint64_t bytes, std::uint64_t)
                               -> util::Result<double> {
    return static_cast<double>(bytes) / 1e6;
  });
  campaign.add_route("r2", [](std::uint64_t bytes, std::uint64_t)
                               -> util::Result<double> {
    return static_cast<double>(bytes) / 2e6;
  });
  const auto grid = campaign.run_grid({1000000, 2000000});
  EXPECT_EQ(grid.size(), 4u);
  EXPECT_DOUBLE_EQ(grid.at({"r1", 2000000}).kept.mean, 2.0);
  EXPECT_DOUBLE_EQ(grid.at({"r2", 2000000}).kept.mean, 1.0);
}

TEST(Campaign, ParallelGridMatchesSequential) {
  // Determinism requirement: thread-pool execution must produce the exact
  // same statistics as sequential execution (per-run seeds are order-free).
  auto build = [] {
    Campaign campaign(5);
    for (const std::string key : {"a", "b", "c"}) {
      campaign.add_route(
          key, [key](std::uint64_t bytes,
                     std::uint64_t seed) -> util::Result<double> {
            util::Rng rng(seed);
            return static_cast<double>(bytes) / 1e6 *
                   rng.lognormal_mean_cv(1.0, 0.3);
          });
    }
    return campaign;
  };
  const Campaign sequential = build();
  const Campaign parallel = build();
  util::ThreadPool pool(4);
  const auto grid_seq = sequential.run_grid({1000000, 5000000});
  const auto grid_par = parallel.run_grid({1000000, 5000000}, {}, &pool);
  ASSERT_EQ(grid_seq.size(), grid_par.size());
  for (const auto& [key, m] : grid_seq) {
    const auto& other = grid_par.at(key);
    ASSERT_EQ(m.runs.size(), other.runs.size());
    for (std::size_t i = 0; i < m.runs.size(); ++i) {
      EXPECT_DOUBLE_EQ(m.runs[i], other.runs[i]);
    }
  }
}

TEST(Campaign, DuplicateRouteKeyRejected) {
  Campaign campaign;
  campaign.add_route("dup", [](std::uint64_t, std::uint64_t)
                                -> util::Result<double> { return 1.0; });
  EXPECT_THROW(campaign.add_route("dup",
                                  [](std::uint64_t, std::uint64_t)
                                      -> util::Result<double> { return 1.0; }),
               std::logic_error);
}

}  // namespace
}  // namespace droute::measure
