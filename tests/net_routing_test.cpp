#include <gtest/gtest.h>

#include "check/contract.h"
#include "check/valley_free.h"
#include "net/routing.h"
#include "net/topology.h"

namespace droute::net {
namespace {

geo::Coord at(double lat, double lon) { return {lat, lon}; }

/// Audits a BGP-selected AS path against Gao–Rexford. Every path the route
/// table selects must pass; only EgressOverride-shaped routes are exempt.
void expect_valley_free(const Topology& topo, const std::vector<AsId>& path) {
  if (!check::debug_checks_enabled()) return;
  const auto status = check::validate_as_path(topo, path);
  EXPECT_TRUE(status.ok()) << status.error().message;
}

/// A small policy world:
///
///   Campus1 -> RegionalA -> Backbone <-peer-> Cloud
///   Campus2 -> RegionalA
///   Campus3 -> TransitB (provider), TransitB <-peer-> Cloud, Backbone
///
struct PolicyWorld {
  Topology topo;
  AsId campus1, campus2, campus3, regional, backbone, transit, cloud;
  NodeId h1, h2, h3, r_reg, r_bb, r_tr, r_cloud, cloud_fe;

  static PolicyWorld build() {
    PolicyWorld w;
    Topology::Builder b;
    w.campus1 = b.add_as("Campus1");
    w.campus2 = b.add_as("Campus2");
    w.campus3 = b.add_as("Campus3");
    w.regional = b.add_as("RegionalA");
    w.backbone = b.add_as("Backbone");
    w.transit = b.add_as("TransitB");
    w.cloud = b.add_as("Cloud");

    b.relate(w.regional, w.campus1, AsRelation::kCustomer);
    b.relate(w.regional, w.campus2, AsRelation::kCustomer);
    b.relate(w.backbone, w.regional, AsRelation::kCustomer);
    b.relate(w.transit, w.campus3, AsRelation::kCustomer);
    b.relate(w.backbone, w.cloud, AsRelation::kPeer);
    b.relate(w.transit, w.cloud, AsRelation::kPeer);
    b.relate(w.transit, w.backbone, AsRelation::kPeer);

    w.h1 = b.add_host(w.campus1, "h1", at(50, -120));
    w.h2 = b.add_host(w.campus2, "h2", at(51, -114));
    w.h3 = b.add_host(w.campus3, "h3", at(34, -118));
    w.r_reg = b.add_router(w.regional, "r-reg", at(50, -119));
    w.r_bb = b.add_router(w.backbone, "r-bb", at(49, -117));
    w.r_tr = b.add_router(w.transit, "r-tr", at(36, -115));
    w.r_cloud = b.add_router(w.cloud, "r-cloud", at(47, -122));
    w.cloud_fe = b.add_host(w.cloud, "cloud-fe", at(37, -122));

    b.add_duplex(w.h1, w.r_reg, 1000, 0.001);
    b.add_duplex(w.h2, w.r_reg, 1000, 0.001);
    b.add_duplex(w.h3, w.r_tr, 1000, 0.002);
    b.add_duplex(w.r_reg, w.r_bb, 1000, 0.002);
    b.add_duplex(w.r_bb, w.r_cloud, 1000, 0.003);
    b.add_duplex(w.r_tr, w.r_cloud, 1000, 0.004);
    b.add_duplex(w.r_tr, w.r_bb, 1000, 0.005);
    b.add_duplex(w.r_cloud, w.cloud_fe, 1000, 0.001);

    auto built = std::move(b).build();
    EXPECT_TRUE(built.ok()) << (built.ok() ? "" : built.error().message);
    w.topo = std::move(built).value();
    return w;
  }
};

TEST(BgpLite, CustomerChainReachesDestination) {
  PolicyWorld w = PolicyWorld::build();
  RouteTable routes(&w.topo);
  auto path = routes.as_path(w.campus1, w.cloud);
  ASSERT_TRUE(path.ok()) << path.error().message;
  EXPECT_EQ(path.value(),
            (std::vector<AsId>{w.campus1, w.regional, w.backbone, w.cloud}));
  expect_valley_free(w.topo, path.value());
}

TEST(BgpLite, ValleyFreePreventsCampusTransit) {
  // Campus2 -> Campus1 must route through their shared provider, never
  // through another campus; and Campus1 -> Campus3 must climb to the peer
  // link between Backbone and TransitB.
  PolicyWorld w = PolicyWorld::build();
  RouteTable routes(&w.topo);
  auto path = routes.as_path(w.campus1, w.campus3);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value(), (std::vector<AsId>{w.campus1, w.regional,
                                             w.backbone, w.transit,
                                             w.campus3}));
  expect_valley_free(w.topo, path.value());
}

TEST(BgpLite, PeerRoutesNotExportedToPeers) {
  // Cloud's route to Campus3 exists via TransitB (customer chain at
  // TransitB exported to peer Cloud). But Backbone must NOT be used to reach
  // Campus3 from Cloud: Backbone's route to Campus3 is via peer TransitB and
  // peer routes are not exported to peers.
  PolicyWorld w = PolicyWorld::build();
  RouteTable routes(&w.topo);
  auto path = routes.as_path(w.cloud, w.campus3);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value(),
            (std::vector<AsId>{w.cloud, w.transit, w.campus3}));
  expect_valley_free(w.topo, path.value());
}

TEST(BgpLite, RouteOriginClassification) {
  PolicyWorld w = PolicyWorld::build();
  RouteTable routes(&w.topo);
  EXPECT_EQ(routes.route_origin(w.backbone, w.campus1).value(),
            RouteOrigin::kCustomer);
  EXPECT_EQ(routes.route_origin(w.backbone, w.cloud).value(),
            RouteOrigin::kPeer);
  EXPECT_EQ(routes.route_origin(w.campus1, w.cloud).value(),
            RouteOrigin::kProvider);
  EXPECT_EQ(routes.route_origin(w.cloud, w.cloud).value(), RouteOrigin::kSelf);
}

TEST(NodeRouting, ExpandsToConcreteLinks) {
  PolicyWorld w = PolicyWorld::build();
  RouteTable routes(&w.topo);
  auto route = routes.route(w.h1, w.cloud_fe);
  ASSERT_TRUE(route.ok()) << route.error().message;
  ASSERT_TRUE(route.value().valid());
  EXPECT_EQ(route.value().nodes.front(), w.h1);
  EXPECT_EQ(route.value().nodes.back(), w.cloud_fe);
  // h1 -> r-reg -> r-bb -> r-cloud -> cloud-fe
  EXPECT_EQ(route.value().nodes.size(), 5u);
  if (check::debug_checks_enabled()) {
    const auto status = check::validate_route(w.topo, route.value());
    EXPECT_TRUE(status.ok()) << status.error().message;
  }
}

TEST(NodeRouting, PathMetricsAccumulate) {
  PolicyWorld w = PolicyWorld::build();
  RouteTable routes(&w.topo);
  const Route route = routes.route(w.h1, w.cloud_fe).value();
  EXPECT_NEAR(routes.one_way_delay_s(route), 0.001 + 0.002 + 0.003 + 0.001,
              1e-12);
  EXPECT_DOUBLE_EQ(routes.path_loss(route), 0.0);
  EXPECT_DOUBLE_EQ(routes.min_policer_mbps(route), 0.0);
  EXPECT_DOUBLE_EQ(routes.bottleneck_capacity_mbps(route), 1000.0);
}

TEST(NodeRouting, ReroutesAroundDisabledLink) {
  PolicyWorld w = PolicyWorld::build();
  RouteTable routes(&w.topo);
  // Kill the backbone->cloud peering; campus1's cloud traffic must now fail
  // (no alternative valley-free path exists via regional).
  const auto link = w.topo.find_link(w.r_bb, w.r_cloud);
  ASSERT_TRUE(link.has_value());
  ASSERT_TRUE(w.topo.set_link_enabled(link.value(), false).ok());
  routes.invalidate();
  auto route = routes.route(w.h1, w.cloud_fe);
  // The AS path Backbone->Cloud still exists in policy but has no enabled
  // gateway; expansion must report an error, not loop.
  EXPECT_FALSE(route.ok());
}

TEST(NodeRouting, EgressOverrideDivertsTaggedSource) {
  // Tag h1 as "planetlab" and force its cloud-bound traffic through the
  // transit router instead of the default backbone->cloud peering.
  PolicyWorld w = PolicyWorld::build();

  // Rebuild with a tagged host (tags are set at construction).
  Topology::Builder b;
  const AsId campus = b.add_as("Campus");
  const AsId backbone = b.add_as("Backbone");
  const AsId pwave = b.add_as("PWave");
  const AsId cloud = b.add_as("Cloud");
  b.relate(backbone, campus, AsRelation::kCustomer);
  b.relate(backbone, cloud, AsRelation::kPeer);
  b.relate(backbone, pwave, AsRelation::kPeer);
  b.relate(pwave, cloud, AsRelation::kPeer);
  const NodeId tagged = b.add_host(campus, "pl.host", at(49, -123), "",
                                   "planetlab");
  const NodeId plain = b.add_host(campus, "plain.host", at(49, -123));
  const NodeId r_bb = b.add_router(backbone, "r-bb", at(49, -122));
  const NodeId r_pw = b.add_router(pwave, "r-pw", at(47, -122));
  const NodeId r_cl = b.add_router(cloud, "r-cl", at(47, -121));
  const NodeId fe = b.add_host(cloud, "fe", at(37, -122));
  b.add_duplex(tagged, r_bb, 1000, 0.001);
  b.add_duplex(plain, r_bb, 1000, 0.001);
  const LinkId to_pwave = b.add_duplex(r_bb, r_pw, 1000, 0.002);
  b.add_duplex(r_pw, r_cl, 1000, 0.002);
  b.add_duplex(r_bb, r_cl, 1000, 0.001);
  b.add_duplex(r_cl, fe, 1000, 0.001);
  auto built = std::move(b).build();
  ASSERT_TRUE(built.ok()) << built.error().message;
  Topology topo = std::move(built).value();

  RouteTable routes(&topo);
  EgressOverride ov;
  ov.at = r_bb;
  ov.src_tag = "planetlab";
  ov.dst_as = cloud;
  ov.use_link = to_pwave;
  routes.add_override(ov);

  const Route tagged_route = routes.route(tagged, fe).value();
  const Route plain_route = routes.route(plain, fe).value();
  auto contains = [](const Route& r, NodeId n) {
    return std::find(r.nodes.begin(), r.nodes.end(), n) != r.nodes.end();
  };
  EXPECT_TRUE(contains(tagged_route, r_pw));   // diverted via PWave
  EXPECT_FALSE(contains(plain_route, r_pw));   // default peering
  EXPECT_TRUE(plain_route.nodes.size() < tagged_route.nodes.size());

  if (check::debug_checks_enabled()) {
    // The default route is valley-free; the override route is, by design,
    // NOT — it crosses two peer edges (backbone -> pwave -> cloud), which is
    // exactly the routing artifact the paper studies. The validator must
    // accept the former and reject the latter.
    const auto plain_status = check::validate_route(topo, plain_route);
    EXPECT_TRUE(plain_status.ok()) << plain_status.error().message;
    const auto tagged_status = check::validate_route(topo, tagged_route);
    EXPECT_FALSE(tagged_status.ok())
        << "override route unexpectedly valley-free";
  }
}

TEST(NodeRouting, CacheInvalidationChangesRoutes) {
  // Two parallel peering links between Backbone and Cloud: killing the
  // cheap one must re-route (after invalidate()) onto the backup.
  Topology::Builder b;
  const AsId campus = b.add_as("Campus");
  const AsId backbone = b.add_as("Backbone");
  const AsId cloud = b.add_as("Cloud");
  b.relate(backbone, campus, AsRelation::kCustomer);
  b.relate(backbone, cloud, AsRelation::kPeer);
  const NodeId host = b.add_host(campus, "host", at(50, -120));
  const NodeId r_bb = b.add_router(backbone, "r-bb", at(50, -119));
  const NodeId r_cl_a = b.add_router(cloud, "r-cl-a", at(49, -118));
  const NodeId r_cl_b = b.add_router(cloud, "r-cl-b", at(48, -118));
  const NodeId fe = b.add_host(cloud, "fe", at(47, -117));
  b.add_duplex(host, r_bb, 1000, 0.001);
  const LinkId cheap = b.add_duplex(r_bb, r_cl_a, 1000, 0.001);
  b.add_duplex(r_bb, r_cl_b, 1000, 0.005);  // backup, higher delay
  b.add_duplex(r_cl_a, fe, 1000, 0.001);
  b.add_duplex(r_cl_b, fe, 1000, 0.001);
  auto built = std::move(b).build();
  ASSERT_TRUE(built.ok());
  Topology topo = std::move(built).value();

  RouteTable routes(&topo);
  const Route before = routes.route(host, fe).value();
  EXPECT_NE(std::find(before.nodes.begin(), before.nodes.end(), r_cl_a),
            before.nodes.end());
  ASSERT_TRUE(topo.set_link_enabled(cheap, false).ok());
  routes.invalidate();
  const Route after = routes.route(host, fe).value();
  EXPECT_NE(before.nodes, after.nodes);
  EXPECT_NE(std::find(after.nodes.begin(), after.nodes.end(), r_cl_b),
            after.nodes.end());
}

TEST(NodeRouting, UnreachableDestinationIsError) {
  Topology::Builder b;
  const AsId a = b.add_as("A");
  const AsId z = b.add_as("Z");
  b.relate(a, z, AsRelation::kPeer);
  const NodeId h1 = b.add_host(a, "h1", at(0, 0));
  const NodeId h2 = b.add_host(z, "h2", at(1, 1));
  // No links at all between the ASes.
  (void)h2;
  auto built = std::move(b).build();
  ASSERT_TRUE(built.ok());
  Topology topo = std::move(built).value();
  RouteTable routes(&topo);
  EXPECT_FALSE(routes.route(h1, h2).ok());
  (void)h1;
}

}  // namespace
}  // namespace droute::net

namespace droute::net {
namespace {

TEST(NodeRouting, PrefixBasedOverrideMatchesSubnet) {
  // Same world as the tag-based override test, but match on the source's
  // 10.<as>.0.0/16 prefix instead of a tag — real policy routing matches
  // prefixes, not labels.
  Topology::Builder b;
  const AsId campus = b.add_as("Campus");
  const AsId backbone = b.add_as("Backbone");
  const AsId pwave = b.add_as("PWave");
  const AsId cloud = b.add_as("Cloud");
  b.relate(backbone, campus, AsRelation::kCustomer);
  b.relate(backbone, cloud, AsRelation::kPeer);
  b.relate(backbone, pwave, AsRelation::kPeer);
  b.relate(pwave, cloud, AsRelation::kPeer);
  const NodeId host = b.add_host(campus, "pl.host", at(49, -123));
  const NodeId r_bb = b.add_router(backbone, "r-bb", at(49, -122));
  const NodeId r_pw = b.add_router(pwave, "r-pw", at(47, -122));
  const NodeId r_cl = b.add_router(cloud, "r-cl", at(47, -121));
  const NodeId fe = b.add_host(cloud, "fe", at(37, -122));
  b.add_duplex(host, r_bb, 1000, 0.001);
  const LinkId to_pwave = b.add_duplex(r_bb, r_pw, 1000, 0.002);
  b.add_duplex(r_pw, r_cl, 1000, 0.002);
  b.add_duplex(r_bb, r_cl, 1000, 0.001);
  b.add_duplex(r_cl, fe, 1000, 0.001);
  auto built = std::move(b).build();
  ASSERT_TRUE(built.ok());
  Topology topo = std::move(built).value();

  auto contains = [](const Route& r, NodeId n) {
    return std::find(r.nodes.begin(), r.nodes.end(), n) != r.nodes.end();
  };

  // Prefix covering the campus AS (10.<campus>.0.0/16): diverted.
  {
    RouteTable routes(&topo);
    EgressOverride ov;
    ov.at = r_bb;
    ov.src_prefix = topo.node(host).ip;
    ov.src_prefix_bits = 16;
    ov.dst_as = cloud;
    ov.use_link = to_pwave;
    routes.add_override(ov);
    EXPECT_TRUE(contains(routes.route(host, fe).value(), r_pw));
  }
  // Prefix for a different /16: not diverted.
  {
    RouteTable routes(&topo);
    EgressOverride ov;
    ov.at = r_bb;
    ov.src_prefix = geo::Ipv4::parse("10.99.0.0").value();
    ov.src_prefix_bits = 16;
    ov.dst_as = cloud;
    ov.use_link = to_pwave;
    routes.add_override(ov);
    EXPECT_FALSE(contains(routes.route(host, fe).value(), r_pw));
  }
  // /32 exact-host match.
  {
    RouteTable routes(&topo);
    EgressOverride ov;
    ov.at = r_bb;
    ov.src_prefix = topo.node(host).ip;
    ov.src_prefix_bits = 32;
    ov.dst_as = cloud;
    ov.use_link = to_pwave;
    routes.add_override(ov);
    EXPECT_TRUE(contains(routes.route(host, fe).value(), r_pw));
  }
}

TEST(NodeRouting, OverrideMatcherSemantics) {
  Node source;
  source.tag = "planetlab";
  source.ip = geo::Ipv4::parse("10.3.0.7").value();

  EgressOverride by_tag;
  by_tag.src_tag = "planetlab";
  EXPECT_TRUE(by_tag.matches_source(source));
  by_tag.src_tag = "campus";
  EXPECT_FALSE(by_tag.matches_source(source));

  EgressOverride by_prefix;
  by_prefix.src_prefix = geo::Ipv4::parse("10.3.0.0").value();
  by_prefix.src_prefix_bits = 16;
  EXPECT_TRUE(by_prefix.matches_source(source));
  by_prefix.src_prefix_bits = 32;
  EXPECT_FALSE(by_prefix.matches_source(source));

  // Either matcher suffices.
  EgressOverride both;
  both.src_tag = "wrong";
  both.src_prefix = geo::Ipv4::parse("10.3.0.0").value();
  both.src_prefix_bits = 16;
  EXPECT_TRUE(both.matches_source(source));

  // Disabled matchers never match.
  EgressOverride none;
  EXPECT_FALSE(none.matches_source(source));
}

}  // namespace
}  // namespace droute::net
