#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "rsyncx/checksum.h"
#include "rsyncx/delta.h"
#include "rsyncx/md5.h"
#include "rsyncx/patch.h"
#include "rsyncx/session.h"
#include "rsyncx/signature.h"
#include "util/blob.h"
#include "util/rng.h"

namespace droute::rsyncx {
namespace {

using util::Blob;

Blob blob_of(std::uint64_t seed, std::size_t size) {
  util::Rng rng(seed);
  return util::make_random_blob(rng, size);
}

// ------------------------------------------------------- rolling checksum ----

TEST(RollingChecksum, RollMatchesRecompute) {
  const Blob data = blob_of(1, 4096);
  constexpr std::size_t kWindow = 512;
  RollingChecksum rolling(
      std::span<const std::uint8_t>(data).subspan(0, kWindow));
  for (std::size_t i = 0; i + kWindow < data.size(); ++i) {
    rolling.roll(data[i], data[i + kWindow]);
    const std::uint32_t direct =
        weak_checksum(std::span(data).subspan(i + 1, kWindow));
    ASSERT_EQ(rolling.digest(), direct) << "offset " << i;
  }
}

TEST(RollingChecksum, SensitiveToContent) {
  Blob a = blob_of(2, 700);
  Blob b = a;
  b[350] ^= 0xff;
  EXPECT_NE(weak_checksum(a), weak_checksum(b));
}

TEST(RollingChecksum, WindowSizeTracked) {
  const Blob data = blob_of(3, 128);
  RollingChecksum rc{std::span<const std::uint8_t>(data)};
  EXPECT_EQ(rc.window_size(), 128u);
}

// ------------------------------------------------------------------- md5 ----

TEST(Md5, Rfc1321TestVectors) {
  auto hex = [](const std::string& s) {
    return to_hex(Md5::hash(std::span(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size())));
  };
  EXPECT_EQ(hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(hex("1234567890123456789012345678901234567890123456789012345678"
                "9012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, StreamingEqualsOneShot) {
  const Blob data = blob_of(4, 100000);
  for (std::size_t piece : {1u, 7u, 64u, 1000u, 4096u}) {
    Md5 streaming;
    for (std::size_t off = 0; off < data.size(); off += piece) {
      const std::size_t take = std::min(piece, data.size() - off);
      streaming.update(std::span(data).subspan(off, take));
    }
    EXPECT_EQ(streaming.finalize(), Md5::hash(data)) << "piece=" << piece;
  }
}

TEST(Md5, PaddingBoundaries) {
  // Lengths around the 56-byte padding threshold and the 64-byte block.
  for (std::size_t size : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Blob data = blob_of(5, size);
    Md5 streaming;
    streaming.update(data);
    EXPECT_EQ(streaming.finalize(), Md5::hash(data)) << "size=" << size;
  }
}

// -------------------------------------------------------------- signature ----

TEST(Signature, BlockCountAndTail) {
  const Blob basis = blob_of(6, 10 * 700 + 123);
  const Signature sig = compute_signature(basis, 700);
  EXPECT_EQ(sig.blocks.size(), 11u);
  EXPECT_EQ(sig.basis_size, basis.size());
  EXPECT_EQ(sig.block_size, 700u);
}

TEST(Signature, RecommendedBlockSizeClampsAndScales) {
  EXPECT_EQ(recommended_block_size(0), 700u);
  EXPECT_EQ(recommended_block_size(1000), 700u);          // floor
  EXPECT_EQ(recommended_block_size(100 * 1000 * 1000) % 8, 0u);
  EXPECT_GE(recommended_block_size(100 * 1000 * 1000), 700u);
  EXPECT_LE(recommended_block_size(1ull << 60), 128u * 1024);  // ceiling
}

TEST(Signature, WireBytesAccounting) {
  const Blob basis = blob_of(7, 7000);
  const Signature sig = compute_signature(basis, 700);
  EXPECT_EQ(sig.wire_bytes(), 16 + 10 * 24u);
}

TEST(SignatureIndex, FindsOwnBlocks) {
  const Blob basis = blob_of(8, 7000);
  const Signature sig = compute_signature(basis, 700);
  const SignatureIndex index(sig);
  for (const BlockSignature& block : sig.blocks) {
    const auto candidates = index.candidates(block.weak);
    EXPECT_FALSE(candidates.empty());
  }
  EXPECT_TRUE(index.candidates(0xdeadbeef).empty() ||
              !index.candidates(0xdeadbeef).empty());  // just must not crash
}

// ------------------------------------------------------------------ delta ----

TEST(Delta, IdenticalFileIsAllCopies) {
  const Blob file = blob_of(9, 50000);
  const Signature sig = compute_signature(file, 700);
  const SignatureIndex index(sig);
  const Delta delta = compute_delta(file, index);
  EXPECT_EQ(delta.literal_bytes(), 0u);
  EXPECT_EQ(delta.copied_bytes(), file.size());
  // Contiguous runs merge: an identical file should be a single Copy op.
  EXPECT_EQ(delta.ops.size(), 1u);
}

TEST(Delta, EmptyBasisIsOneLiteral) {
  // The paper's benchmark case: files are deleted before each run, so rsync
  // degenerates to a full-content send.
  const Blob file = blob_of(10, 30000);
  Signature empty;
  empty.block_size = 700;
  empty.basis_size = 0;
  const SignatureIndex index(empty);
  const Delta delta = compute_delta(file, index);
  EXPECT_EQ(delta.copied_bytes(), 0u);
  EXPECT_EQ(delta.literal_bytes(), file.size());
  EXPECT_EQ(delta.ops.size(), 1u);
  EXPECT_GE(delta.wire_bytes(), file.size());
}

TEST(Delta, WireBytesReflectLiterals) {
  const Blob file = blob_of(11, 10000);
  Signature empty;
  empty.block_size = 700;
  const SignatureIndex index(empty);
  const Delta delta = compute_delta(file, index);
  EXPECT_EQ(delta.wire_bytes(), 24 + 8 + file.size());
}

// Property suite: random edits against a random basis always reconstruct.
struct MutationCase {
  std::uint64_t seed;
  std::size_t basis_size;
  int edits;
};

class DeltaPatchProperty : public ::testing::TestWithParam<MutationCase> {};

TEST_P(DeltaPatchProperty, RoundTripReconstructsExactly) {
  const auto& param = GetParam();
  util::Rng rng(param.seed);
  Blob basis = util::make_random_blob(rng, param.basis_size);
  Blob target = basis;

  for (int edit = 0; edit < param.edits; ++edit) {
    const int kind = static_cast<int>(rng.uniform_int(0, 2));
    const std::size_t pos = target.empty()
                                ? 0
                                : static_cast<std::size_t>(rng.uniform_int(
                                      0, static_cast<std::int64_t>(
                                             target.size() - 1)));
    const std::size_t span = static_cast<std::size_t>(rng.uniform_int(1, 900));
    switch (kind) {
      case 0: {  // overwrite
        for (std::size_t i = pos; i < std::min(target.size(), pos + span); ++i)
          target[i] = static_cast<std::uint8_t>(rng.next_u64());
        break;
      }
      case 1: {  // insert
        Blob chunk = util::make_random_blob(rng, span);
        target.insert(target.begin() + static_cast<std::ptrdiff_t>(pos),
                      chunk.begin(), chunk.end());
        break;
      }
      default: {  // delete
        const std::size_t end = std::min(target.size(), pos + span);
        target.erase(target.begin() + static_cast<std::ptrdiff_t>(pos),
                     target.begin() + static_cast<std::ptrdiff_t>(end));
        break;
      }
    }
  }

  const std::uint32_t block = recommended_block_size(basis.size());
  auto rebuilt = round_trip(basis, target, block);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.error().message;
  EXPECT_EQ(rebuilt.value(), target);
}

INSTANTIATE_TEST_SUITE_P(
    RandomMutations, DeltaPatchProperty,
    ::testing::Values(MutationCase{101, 0, 3}, MutationCase{102, 1, 2},
                      MutationCase{103, 699, 4}, MutationCase{104, 700, 4},
                      MutationCase{105, 701, 4}, MutationCase{106, 5000, 1},
                      MutationCase{107, 5000, 10}, MutationCase{108, 50000, 5},
                      MutationCase{109, 50000, 25},
                      MutationCase{110, 200000, 8},
                      MutationCase{111, 200000, 40},
                      MutationCase{112, 1 << 20, 12}));

TEST(Delta, MostlyUnchangedFileSendsFewLiterals) {
  util::Rng rng(200);
  Blob basis = util::make_random_blob(rng, 1 << 20);
  Blob target = basis;
  target[123456] ^= 0x5a;  // single-byte edit
  const std::uint32_t block = recommended_block_size(basis.size());
  const Signature sig = compute_signature(basis, block);
  const SignatureIndex index(sig);
  const Delta delta = compute_delta(target, index);
  // One damaged block worth of literals at most (plus alignment slack).
  EXPECT_LE(delta.literal_bytes(), 2ull * block);
  EXPECT_GE(delta.copied_bytes(), target.size() - 2ull * block);
}

// ------------------------------------------------------------------ patch ----

TEST(Patch, RejectsOutOfRangeCopy) {
  Delta delta;
  delta.block_size = 700;
  delta.target_size = 700;
  delta.ops.emplace_back(CopyOp{99, 700});
  const Blob basis = blob_of(12, 1400);
  EXPECT_FALSE(apply_delta(basis, delta).ok());
}

TEST(Patch, RejectsCopyRunPastBasisEnd) {
  Delta delta;
  delta.block_size = 700;
  delta.target_size = 1400;
  delta.ops.emplace_back(CopyOp{1, 1400});  // block 1 + 1400 > basis end
  const Blob basis = blob_of(13, 1400);
  EXPECT_FALSE(apply_delta(basis, delta).ok());
}

TEST(Patch, RejectsSizeMismatch) {
  Delta delta;
  delta.block_size = 700;
  delta.target_size = 10;
  delta.ops.emplace_back(LiteralOp{Blob(5, 0xab)});
  EXPECT_FALSE(apply_delta({}, delta).ok());
}

TEST(Patch, RejectsZeroBlockSize) {
  Delta delta;
  delta.block_size = 0;
  EXPECT_FALSE(apply_delta({}, delta).ok());
}

// ---------------------------------------------------------------- session ----

TEST(Session, NoBasisPlanIsFullLiteral) {
  const Blob target = blob_of(14, 100000);
  const SessionPlan plan = plan_session(target, std::nullopt);
  EXPECT_EQ(plan.delta.literal_bytes(), target.size());
  EXPECT_EQ(plan.delta.copied_bytes(), 0u);
  EXPECT_GT(plan.forward_wire_bytes, target.size());
  EXPECT_LT(plan.reverse_wire_bytes, 1000u);  // empty signature + framing

  auto rebuilt = execute_plan(plan, std::nullopt);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt.value(), target);
}

TEST(Session, WarmBasisShrinksForwardBytes) {
  util::Rng rng(15);
  Blob basis = util::make_random_blob(rng, 500000);
  Blob target = basis;
  target[1000] ^= 1;
  const SessionPlan plan =
      plan_session(target, std::span<const std::uint8_t>(basis));
  EXPECT_LT(plan.forward_wire_bytes, target.size() / 10);
  EXPECT_GT(plan.reverse_wire_bytes, 1000u);  // real signature crossed back

  auto rebuilt = execute_plan(plan, std::span<const std::uint8_t>(basis));
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt.value(), target);
}

TEST(Session, CpuCostsScaleWithBytes) {
  const Blob small = blob_of(16, 10000);
  const Blob large = blob_of(17, 1000000);
  const auto plan_small = plan_session(small, std::nullopt);
  const auto plan_large = plan_session(large, std::nullopt);
  EXPECT_GT(plan_large.sender_cpu_s, plan_small.sender_cpu_s * 50);
}

}  // namespace
}  // namespace droute::rsyncx
