// Download-direction tests: server ranged reads, the ApiDownloadEngine and
// DetourDownloadEngine, and the scenario-level download shapes.
#include <gtest/gtest.h>

#include "cloud/content.h"
#include "scenario/north_america.h"
#include "transfer/api_download.h"
#include "transfer/detour_download.h"
#include "util/units.h"

namespace droute::transfer {
namespace {

using cloud::ProviderKind;
using scenario::World;
using scenario::WorldConfig;

std::unique_ptr<World> quiet_world(std::uint64_t seed = 1) {
  WorldConfig config;
  config.seed = seed;
  config.cross_traffic = false;
  return World::create(config);
}

// ------------------------------------------------------- server-side API ----

TEST(StorageDownload, StatAndRangedReads) {
  auto world = quiet_world();
  auto name = world->stage_object(ProviderKind::kDropbox, 10 * util::kMB);
  ASSERT_TRUE(name.ok());
  auto& server = world->server(ProviderKind::kDropbox);

  auto object = server.stat(name.value());
  ASSERT_TRUE(object.ok());
  EXPECT_EQ(object.value().size, 10 * util::kMB);

  // Valid range returns the deterministic digest.
  auto digest = server.read_range(name.value(), 0, 1000);
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(digest.value(),
            cloud::synthetic_range_digest(object.value().content_seed, 0,
                                          1000));

  // Invalid ranges behave like HTTP 416.
  EXPECT_EQ(server.read_range(name.value(), 10 * util::kMB, 1).error().code,
            416);
  EXPECT_EQ(server.read_range(name.value(), 0, 0).error().code, 416);
  EXPECT_EQ(
      server.read_range(name.value(), 10 * util::kMB - 1, 2).error().code,
      416);
  EXPECT_EQ(server.read_range("missing", 0, 1).error().code, 404);
  EXPECT_EQ(server.stat("missing").error().code, 404);
}

// ---------------------------------------------------------- api download ----

TEST(ApiDownload, FetchesAndVerifiesIntegrity) {
  auto world = quiet_world();
  auto name = world->stage_object(ProviderKind::kGoogleDrive, 20 * util::kMB);
  ASSERT_TRUE(name.ok());

  DownloadResult result;
  world->download_engine(ProviderKind::kGoogleDrive)
      .download(world->intermediate_node(scenario::Intermediate::kUAlberta),
                name.value(),
                [&](const DownloadResult& r) { result = r; });
  world->simulator().run();
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_TRUE(result.integrity_ok);
  EXPECT_EQ(result.payload_bytes, 20 * util::kMB);
  EXPECT_EQ(result.chunks, 3);  // 20 MB / 8 MiB = 2 full + tail
  EXPECT_GT(result.duration_s(), 0.0);
}

TEST(ApiDownload, MissingObjectFailsCleanly) {
  auto world = quiet_world();
  DownloadResult result;
  result.success = true;
  world->download_engine(ProviderKind::kDropbox)
      .download(world->client_node(scenario::Client::kUBC), "no-such-file",
                [&](const DownloadResult& r) { result = r; });
  world->simulator().run();
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.error.find("metadata"), std::string::npos);
}

TEST(ApiDownload, OAuthRefreshCharged) {
  auto world = quiet_world();
  auto name = world->stage_object(ProviderKind::kOneDrive, 10 * util::kMB);
  ASSERT_TRUE(name.ok());
  cloud::OAuthSession oauth("dl-client", 3600.0, 3);
  ApiDownloadOptions options;
  options.oauth = &oauth;
  DownloadResult with_auth, without_auth;
  const auto client =
      world->intermediate_node(scenario::Intermediate::kUAlberta);
  world->download_engine(ProviderKind::kOneDrive)
      .download(client, name.value(),
                [&](const DownloadResult& r) { with_auth = r; }, options);
  world->simulator().run();
  world->download_engine(ProviderKind::kOneDrive)
      .download(client, name.value(),
                [&](const DownloadResult& r) { without_auth = r; }, options);
  world->simulator().run();
  ASSERT_TRUE(with_auth.success && without_auth.success);
  EXPECT_GT(with_auth.duration_s(), without_auth.duration_s());
  EXPECT_EQ(oauth.refresh_count(), 1u);
}

// --------------------------------------------------------- detour download ----

TEST(DetourDownload, SumsLegsAndDelivers) {
  auto world = quiet_world();
  auto name = world->stage_object(ProviderKind::kGoogleDrive, 30 * util::kMB);
  ASSERT_TRUE(name.ok());
  DownloadDetourResult result;
  world->detour_download_engine(ProviderKind::kGoogleDrive)
      .download(world->client_node(scenario::Client::kUBC),
                world->intermediate_node(scenario::Intermediate::kUAlberta),
                name.value(),
                [&](const DownloadDetourResult& r) { result = r; });
  world->simulator().run();
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_GT(result.leg1_s, 0.0);
  EXPECT_GT(result.leg2_s, 0.0);
  EXPECT_NEAR(result.duration_s(), result.leg1_s + result.leg2_s, 1e-6);
  EXPECT_EQ(result.payload_bytes, 30 * util::kMB);
}

TEST(DetourDownload, MissingObjectReportsLegOne) {
  auto world = quiet_world();
  DownloadDetourResult result;
  result.success = true;
  world->detour_download_engine(ProviderKind::kDropbox)
      .download(world->client_node(scenario::Client::kUBC),
                world->intermediate_node(scenario::Intermediate::kUAlberta),
                "ghost", [&](const DownloadDetourResult& r) { result = r; });
  world->simulator().run();
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.error.find("leg 1"), std::string::npos);
}

// ------------------------------------------------------- scenario shapes ----

TEST(DownloadScenario, UbcGoogleDetourBeatsPolicedDirect) {
  // The PacificWave policing is modelled symmetrically, so the download
  // mirror of Fig 2 holds: direct ~85 s, via UAlberta ~35 s for 100 MB.
  auto direct_world = quiet_world(1);
  auto name = direct_world->stage_object(ProviderKind::kGoogleDrive,
                                         100 * util::kMB);
  ASSERT_TRUE(name.ok());
  const double direct =
      direct_world
          ->run_download(scenario::Client::kUBC, ProviderKind::kGoogleDrive,
                         scenario::RouteChoice::kDirect, name.value())
          .value();

  auto detour_world = quiet_world(1);
  auto name2 = detour_world->stage_object(ProviderKind::kGoogleDrive,
                                          100 * util::kMB);
  const double detour =
      detour_world
          ->run_download(scenario::Client::kUBC, ProviderKind::kGoogleDrive,
                         scenario::RouteChoice::kViaUAlberta, name2.value())
          .value();
  EXPECT_GT(direct, 70.0);
  EXPECT_LT(detour, direct * 0.55);
}

TEST(DownloadScenario, UclaLastMileHurtsDownloadsToo) {
  auto world = quiet_world();
  auto name = world->stage_object(ProviderKind::kDropbox, 10 * util::kMB);
  ASSERT_TRUE(name.ok());
  const double direct =
      world
          ->run_download(scenario::Client::kUCLA, ProviderKind::kDropbox,
                         scenario::RouteChoice::kDirect, name.value())
          .value();
  // The 1.6 Mbps last-mile cap applies inbound as well: >= ~45 s for 10 MB.
  EXPECT_GT(direct, 45.0);
}

TEST(DownloadScenario, TransferFnStagesPerRun) {
  measure::Campaign campaign(99);
  scenario::WorldConfig config;
  config.cross_traffic = false;
  campaign.add_route(
      "ubc-gdrive-dl",
      scenario::make_download_fn(scenario::Client::kUBC,
                                 ProviderKind::kGoogleDrive,
                                 scenario::RouteChoice::kViaUAlberta, config));
  measure::Protocol protocol;
  protocol.total_runs = 3;
  protocol.keep_last = 3;
  const auto m = campaign.measure("ubc-gdrive-dl", 10 * util::kMB, protocol);
  EXPECT_EQ(m.failures, 0);
  EXPECT_EQ(m.runs.size(), 3u);
  EXPECT_GT(m.kept.mean, 1.0);
  EXPECT_LT(m.kept.mean, 30.0);
}

}  // namespace
}  // namespace droute::transfer
