// Provider request-throttling (HTTP 429) and client backoff tests.
#include <gtest/gtest.h>

#include "cloud/provider.h"
#include "cloud/storage_server.h"
#include "scenario/north_america.h"
#include "transfer/api_upload.h"
#include "util/units.h"

namespace droute::cloud {
namespace {

rsyncx::Md5Digest digest_of(std::uint64_t tag) {
  std::array<std::uint8_t, 8> bytes{};
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(tag >> (8 * i));
  }
  return rsyncx::Md5::hash(bytes);
}

TEST(Throttle, InactiveWithoutClock) {
  ApiProfile profile = default_profile(ProviderKind::kDropbox);
  profile.max_requests_per_window = 1;
  StorageServer server(ProviderKind::kDropbox, profile);
  // No clock attached: throttle never fires.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(server.create_session("f" + std::to_string(i), 100).ok());
  }
  EXPECT_EQ(server.throttled_requests(), 0u);
}

TEST(Throttle, SlidingWindowEnforced) {
  ApiProfile profile = default_profile(ProviderKind::kDropbox);
  profile.max_requests_per_window = 2;
  profile.throttle_window_s = 10.0;
  StorageServer server(ProviderKind::kDropbox, profile);
  double now = 0.0;
  server.set_clock([&now] { return now; });

  EXPECT_TRUE(server.create_session("a", 100).ok());
  EXPECT_TRUE(server.create_session("b", 100).ok());
  const auto third = server.create_session("c", 100);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.error().code, 429);
  EXPECT_EQ(server.throttled_requests(), 1u);

  // After the window slides, requests are admitted again.
  now = 11.0;
  EXPECT_TRUE(server.create_session("c", 100).ok());
}

TEST(Throttle, RejectedRequestsDoNotConsumeBudget) {
  ApiProfile profile = default_profile(ProviderKind::kDropbox);
  profile.max_requests_per_window = 1;
  profile.throttle_window_s = 10.0;
  StorageServer server(ProviderKind::kDropbox, profile);
  double now = 0.0;
  server.set_clock([&now] { return now; });
  EXPECT_TRUE(server.create_session("a", 100).ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(server.create_session("spam", 100).ok());
  }
  // The one admitted request expires on schedule despite the spam.
  now = 10.5;
  EXPECT_TRUE(server.create_session("b", 100).ok());
}

TEST(Throttle, AppendsAreThrottledToo) {
  ApiProfile profile = default_profile(ProviderKind::kGoogleDrive);
  profile.max_requests_per_window = 3;
  profile.throttle_window_s = 60.0;
  StorageServer server(ProviderKind::kGoogleDrive, profile);
  double now = 0.0;
  server.set_clock([&now] { return now; });

  auto session =
      server.create_session("f", 3 * profile.chunk_bytes);  // request 1
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(server
                  .append_chunk(session.value(), 0, profile.chunk_bytes,
                                digest_of(0))
                  .ok());  // request 2
  EXPECT_TRUE(server
                  .append_chunk(session.value(), profile.chunk_bytes,
                                profile.chunk_bytes, digest_of(1))
                  .ok());  // request 3
  const auto status = server.append_chunk(
      session.value(), 2 * profile.chunk_bytes, profile.chunk_bytes,
      digest_of(2));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, 429);
  // The session state is untouched by the rejected append: retrying at the
  // same offset later succeeds.
  now = 61.0;
  EXPECT_TRUE(server
                  .append_chunk(session.value(), 2 * profile.chunk_bytes,
                                profile.chunk_bytes, digest_of(2))
                  .ok());
}

}  // namespace
}  // namespace droute::cloud

namespace droute::transfer {
namespace {

TEST(ThrottleBackoff, UploadRetriesAndSucceeds) {
  // Throttle Google Drive hard: 2 requests/20 s. A 40 MB upload (session +
  // 5 chunks = 6 requests) must back off repeatedly yet still commit.
  scenario::WorldConfig config;
  config.cross_traffic = false;
  auto world = scenario::World::create(config);

  cloud::ApiProfile profile =
      cloud::default_profile(cloud::ProviderKind::kGoogleDrive);
  profile.max_requests_per_window = 2;
  profile.throttle_window_s = 20.0;
  profile.retry_after_s = 2.0;
  cloud::StorageServer throttled(cloud::ProviderKind::kGoogleDrive, profile);
  throttled.set_clock(
      [&world] { return world->simulator().now(); });
  ApiUploadEngine engine(&world->fabric(), &throttled,
                         world->provider_node(
                             cloud::ProviderKind::kGoogleDrive));

  UploadResult result;
  engine.upload(world->intermediate_node(scenario::Intermediate::kUAlberta),
                make_file_mb(40, 1),
                [&](const UploadResult& r) { result = r; });
  world->simulator().run();

  ASSERT_TRUE(result.success) << result.error;
  EXPECT_GT(result.throttle_retries, 0);
  EXPECT_GT(throttled.throttled_requests(), 0u);
  EXPECT_EQ(throttled.object_count(), 1u);

  // An unthrottled upload of the same file is strictly faster.
  UploadResult free_result;
  world->api_engine(cloud::ProviderKind::kGoogleDrive)
      .upload(world->intermediate_node(scenario::Intermediate::kUAlberta),
              make_file_mb(40, 2),
              [&](const UploadResult& r) { free_result = r; });
  world->simulator().run();
  ASSERT_TRUE(free_result.success);
  EXPECT_GT(result.duration_s(), free_result.duration_s() * 1.5);
}

TEST(ThrottleBackoff, GivesUpAfterMaxRetries) {
  // A absurdly tight throttle (1 request per hour) exhausts the backoff
  // budget; the upload fails cleanly instead of spinning forever.
  scenario::WorldConfig config;
  config.cross_traffic = false;
  auto world = scenario::World::create(config);

  cloud::ApiProfile profile =
      cloud::default_profile(cloud::ProviderKind::kDropbox);
  profile.max_requests_per_window = 1;
  profile.throttle_window_s = 3600.0;
  profile.retry_after_s = 0.5;
  cloud::StorageServer throttled(cloud::ProviderKind::kDropbox, profile);
  throttled.set_clock([&world] { return world->simulator().now(); });
  ApiUploadEngine engine(&world->fabric(), &throttled,
                         world->provider_node(cloud::ProviderKind::kDropbox));

  UploadResult result;
  result.success = true;
  engine.upload(world->intermediate_node(scenario::Intermediate::kUAlberta),
                make_file_mb(20, 1),
                [&](const UploadResult& r) { result = r; });
  world->simulator().run();
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.error.find("rate limited"), std::string::npos);
  EXPECT_EQ(throttled.object_count(), 0u);
  EXPECT_EQ(throttled.open_sessions(), 0u);  // abandoned cleanly
}

}  // namespace
}  // namespace droute::transfer
