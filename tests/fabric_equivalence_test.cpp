// Differential equivalence suite for the incremental fabric allocator.
//
// The incremental max-min allocator (DESIGN.md §12) water-fills only the
// connected component(s) dirtied by each event; AllocMode::kFullRecompute is
// the retained reference that re-fills every component on every event. The
// two must agree *bit-for-bit* — one ulp of divergence means a retained rate
// was stale and every figure reproduction is suspect. Two layers:
//
//   * Lockstep: twin stacks driven by an identical random op script
//     (starts, aborts, link failures/restores, capacity rewrites), with
//     every live flow's rate compared for exact equality after every op.
//   * End-to-end: chaos::random_case scenarios run to quiescence in both
//     modes; the outcome digests (FNV-1a over every observable transfer
//     time) must be byte-identical.
//
// Together with the proptest property `fabric_equivalence` this covers the
// ≥200 seeded scenarios the rewrite was accepted under.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "chaos/scenario.h"
#include "chaos/topology_gen.h"
#include "net/fabric.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/units.h"

namespace droute::net {
namespace {

// One self-contained stack over a generated topology. Twin instances are
// built from the same GenTopology so node/link ids line up exactly.
struct Stack {
  Topology topo;
  sim::Simulator simulator;
  RouteTable routes{nullptr};
  std::unique_ptr<Fabric> fabric;

  explicit Stack(const chaos::GenTopology& gen, Fabric::AllocMode mode) {
    auto built = gen.build();
    EXPECT_TRUE(built.ok());
    topo = std::move(built).value();
    routes = RouteTable(&topo);
    fabric = std::make_unique<Fabric>(&simulator, &topo, &routes);
    fabric->set_alloc_mode(mode);
  }
};

// Drives both stacks through one op drawn from `rng` (the draw happens once;
// both stacks see the same op). Returns flow ids started so far.
class LockstepDriver {
 public:
  LockstepDriver(Stack* inc, Stack* full, const std::vector<int>& hosts,
                 int link_count)
      : inc_(inc), full_(full), hosts_(hosts), link_count_(link_count) {}

  void step(util::Rng& rng) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    switch (op) {
      case 0:
      case 1:
      case 2:
      case 3: {  // start a flow (most common op)
        const int src = pick_host(rng);
        int dst = pick_host(rng);
        while (dst == src) dst = pick_host(rng);  // self-flows are rejected
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(rng.uniform_int(1, 64)) * util::kMB;
        FlowOptions options;
        options.charge_slow_start = rng.uniform() < 0.5;
        auto a = inc_->fabric->start_flow(src, dst, bytes, {}, options);
        auto b = full_->fabric->start_flow(src, dst, bytes, {}, options);
        ASSERT_EQ(a.ok(), b.ok());
        if (a.ok()) {
          ASSERT_EQ(a.value(), b.value());
          flows_.push_back(a.value());
        }
        break;
      }
      case 4: {  // advance simulated time
        const double dt = rng.uniform(0.05, 5.0);
        inc_->simulator.run_until(inc_->simulator.now() + dt);
        full_->simulator.run_until(full_->simulator.now() + dt);
        break;
      }
      case 5: {  // abort a (possibly finished) flow
        if (flows_.empty()) break;
        const FlowId id = flows_[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(flows_.size()) - 1))];
        inc_->fabric->abort_flow(id);
        full_->fabric->abort_flow(id);
        break;
      }
      case 6: {  // fail a link
        const LinkId link = pick_link(rng);
        inc_->fabric->fail_link(link);
        full_->fabric->fail_link(link);
        failed_.push_back(link);
        break;
      }
      case 7: {  // restore the oldest failed link
        if (failed_.empty()) break;
        const LinkId link = failed_.front();
        failed_.erase(failed_.begin());
        inc_->fabric->restore_link(link);
        full_->fabric->restore_link(link);
        break;
      }
      case 8: {  // rewrite a link capacity, then converge
        const LinkId link = pick_link(rng);
        const double capacity = rng.uniform(5.0, 2000.0);
        ASSERT_TRUE(inc_->topo.set_link_capacity(link, capacity).ok());
        ASSERT_TRUE(full_->topo.set_link_capacity(link, capacity).ok());
        inc_->fabric->reallocate_now();
        full_->fabric->reallocate_now();
        break;
      }
      case 9: {  // out-of-band reallocate (exercises the idle early-out too)
        inc_->fabric->reallocate_now();
        full_->fabric->reallocate_now();
        break;
      }
    }
  }

  // The heart of the suite: every flow either lives in both fabrics with the
  // exact same rate, or in neither.
  void expect_equivalent() const {
    ASSERT_EQ(inc_->fabric->active_flow_count(),
              full_->fabric->active_flow_count());
    for (const FlowId id : flows_) {
      const double inc_rate = inc_->fabric->current_rate_mbps(id);
      const double full_rate = full_->fabric->current_rate_mbps(id);
      EXPECT_EQ(inc_rate, full_rate) << "flow " << id << " rate diverged";
    }
    EXPECT_EQ(inc_->fabric->moved_bytes(), full_->fabric->moved_bytes());
    EXPECT_EQ(inc_->fabric->delivered_bytes(),
              full_->fabric->delivered_bytes());
  }

  void drain() {
    inc_->simulator.run();
    full_->simulator.run();
  }

 private:
  int pick_host(util::Rng& rng) const {
    return hosts_[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts_.size()) - 1))];
  }
  LinkId pick_link(util::Rng& rng) const {
    return static_cast<LinkId>(rng.uniform_int(0, link_count_ - 1));
  }

  Stack* inc_;
  Stack* full_;
  std::vector<int> hosts_;
  int link_count_;
  std::vector<FlowId> flows_;
  std::vector<LinkId> failed_;
};

TEST(FabricEquivalence, LockstepRandomOpsBitIdenticalRates) {
  constexpr std::uint64_t kSeeds = 64;
  constexpr int kOpsPerSeed = 60;
  std::uint64_t exercised = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    util::Rng rng(seed);
    util::Rng topo_rng = rng.split(1);
    const chaos::GenTopology gen = chaos::random_topology(topo_rng);
    const std::vector<int> hosts = gen.hosts();
    if (hosts.size() < 2 || gen.links.empty()) continue;
    ++exercised;

    Stack inc(gen, Fabric::AllocMode::kIncremental);
    Stack full(gen, Fabric::AllocMode::kFullRecompute);
    LockstepDriver driver(&inc, &full, hosts,
                          static_cast<int>(gen.links.size()));
    util::Rng ops = rng.split(2);
    for (int op = 0; op < kOpsPerSeed; ++op) {
      driver.step(ops);
      if (::testing::Test::HasFatalFailure()) return;
      driver.expect_equivalent();
      ASSERT_FALSE(::testing::Test::HasFailure())
          << "first divergence at seed " << seed << " op " << op;
    }
    driver.drain();
    driver.expect_equivalent();
  }
  // The generator must yield usable topologies for most seeds; a vacuous
  // sweep (everything skipped) would pass silently otherwise.
  EXPECT_GT(exercised, kSeeds / 2);
}

TEST(FabricEquivalence, ChaosScenarioDigestsBitIdentical) {
  constexpr std::uint64_t kSeeds = 160;
  std::size_t nontrivial = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const chaos::Case c = chaos::random_case(seed);
    const chaos::RunReport incremental = chaos::run_case(c);
    const chaos::RunReport reference =
        chaos::run_case(c, chaos::RunOptions{.full_recompute = true});
    EXPECT_EQ(incremental.digest, reference.digest) << "seed " << seed;
    EXPECT_EQ(incremental.violated, reference.violated) << "seed " << seed;
    EXPECT_EQ(incremental.completed_work, reference.completed_work)
        << "seed " << seed;
    ASSERT_EQ(incremental.outcomes.size(), reference.outcomes.size());
    for (std::size_t i = 0; i < incremental.outcomes.size(); ++i) {
      EXPECT_EQ(incremental.outcomes[i].end_s, reference.outcomes[i].end_s)
          << "seed " << seed << " work item " << i;
    }
    if (incremental.completed_work > 0) ++nontrivial;
  }
  // The sweep must actually exercise transfers, not vacuous empty runs.
  EXPECT_GT(nontrivial, kSeeds / 2);
}

}  // namespace
}  // namespace droute::net
