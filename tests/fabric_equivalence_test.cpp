// Differential equivalence suite for the incremental + sharded fabric
// allocators.
//
// The incremental max-min allocator (DESIGN.md §12) water-fills only the
// connected component(s) dirtied by each event; AllocMode::kFullRecompute is
// the retained reference that re-fills every component on every event; and
// AllocMode::kSharded (DESIGN.md §16) fans the per-component fills out to a
// thread pool behind a serial collect/merge discipline. All three must agree
// *bit-for-bit* at every worker count — one ulp of divergence means a
// retained rate was stale (or a worker leaked scheduling order into the
// event queue) and every figure reproduction is suspect. Three layers:
//
//   * Lockstep: triplet stacks driven by an identical random op script
//     (starts, aborts, link failures/restores, capacity rewrites), with
//     every live flow's rate compared for exact equality after every op.
//     The sharded stack's worker count cycles 1/2/4/8 across seeds.
//   * End-to-end: chaos::random_case scenarios run to quiescence in all
//     three modes; the outcome digests (FNV-1a over every observable
//     transfer time) must be byte-identical.
//   * Metrics: the full exported metrics CSV of a sharded scenario must be
//     byte-identical at workers 1, 2, 4 and 8 (shard diagnostics included).
//
// Together with the proptest properties `fabric_equivalence` and
// `sharded_equivalence` this covers the ≥200 seeded scenarios the rewrites
// were accepted under.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chaos/scenario.h"
#include "chaos/topology_gen.h"
#include "net/fabric.h"
#include "net/routing.h"
#include "net/topology.h"
#include "obs/export.h"
#include "obs/recorder.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/units.h"

namespace droute::net {
namespace {

// Worker counts the sharded mode is exercised at, cycled by seed so the
// whole sweep covers inline (1), the CI leg (2) and oversubscribed (4/8).
constexpr int kWorkerCycle[] = {1, 2, 4, 8};

int workers_for_seed(std::uint64_t seed) {
  return kWorkerCycle[seed % (sizeof(kWorkerCycle) / sizeof(int))];
}

// One self-contained stack over a generated topology. Sibling instances are
// built from the same GenTopology so node/link ids line up exactly.
struct Stack {
  Topology topo;
  sim::Simulator simulator;
  RouteTable routes{nullptr};
  std::unique_ptr<Fabric> fabric;

  explicit Stack(const chaos::GenTopology& gen, Fabric::AllocMode mode,
                 int shard_workers = 1) {
    auto built = gen.build();
    EXPECT_TRUE(built.ok());
    topo = std::move(built).value();
    routes = RouteTable(&topo);
    fabric = std::make_unique<Fabric>(&simulator, &topo, &routes);
    fabric->set_alloc_mode(mode);
    fabric->set_shard_workers(shard_workers);
  }
};

// Drives all stacks through one op drawn from `rng` (the draw happens once;
// every stack sees the same op). Returns flow ids started so far.
class LockstepDriver {
 public:
  LockstepDriver(std::vector<Stack*> stacks, const std::vector<int>& hosts,
                 int link_count)
      : stacks_(std::move(stacks)), hosts_(hosts), link_count_(link_count) {}

  void step(util::Rng& rng) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    switch (op) {
      case 0:
      case 1:
      case 2:
      case 3: {  // start a flow (most common op)
        const int src = pick_host(rng);
        int dst = pick_host(rng);
        while (dst == src) dst = pick_host(rng);  // self-flows are rejected
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(rng.uniform_int(1, 64)) * util::kMB;
        FlowOptions options;
        options.charge_slow_start = rng.uniform() < 0.5;
        std::optional<FlowId> started;
        for (Stack* stack : stacks_) {
          auto flow = stack->fabric->start_flow(src, dst, bytes, {}, options);
          if (stack == stacks_.front()) {
            if (flow.ok()) started = flow.value();
          } else {
            ASSERT_EQ(flow.ok(), started.has_value());
            if (flow.ok()) {
              ASSERT_EQ(flow.value(), *started);
            }
          }
        }
        if (started) flows_.push_back(*started);
        break;
      }
      case 4: {  // advance simulated time
        const double dt = rng.uniform(0.05, 5.0);
        for (Stack* stack : stacks_) {
          stack->simulator.run_until(stack->simulator.now() + dt);
        }
        break;
      }
      case 5: {  // abort a (possibly finished) flow
        if (flows_.empty()) break;
        const FlowId id = flows_[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(flows_.size()) - 1))];
        for (Stack* stack : stacks_) stack->fabric->abort_flow(id);
        break;
      }
      case 6: {  // fail a link
        const LinkId link = pick_link(rng);
        for (Stack* stack : stacks_) stack->fabric->fail_link(link);
        failed_.push_back(link);
        break;
      }
      case 7: {  // restore the oldest failed link
        if (failed_.empty()) break;
        const LinkId link = failed_.front();
        failed_.erase(failed_.begin());
        for (Stack* stack : stacks_) stack->fabric->restore_link(link);
        break;
      }
      case 8: {  // rewrite a link capacity, then converge
        const LinkId link = pick_link(rng);
        const double capacity = rng.uniform(5.0, 2000.0);
        for (Stack* stack : stacks_) {
          ASSERT_TRUE(stack->topo.set_link_capacity(link, capacity).ok());
          stack->fabric->reallocate_now();
        }
        break;
      }
      case 9: {  // out-of-band reallocate (exercises the idle early-out too)
        for (Stack* stack : stacks_) stack->fabric->reallocate_now();
        break;
      }
    }
  }

  // The heart of the suite: every flow either lives in every fabric with the
  // exact same rate, or in none.
  void expect_equivalent() const {
    const Stack* reference = stacks_.front();
    for (std::size_t s = 1; s < stacks_.size(); ++s) {
      const Stack* other = stacks_[s];
      ASSERT_EQ(reference->fabric->active_flow_count(),
                other->fabric->active_flow_count());
      for (const FlowId id : flows_) {
        const double ref_rate = reference->fabric->current_rate_mbps(id);
        const double other_rate = other->fabric->current_rate_mbps(id);
        EXPECT_EQ(ref_rate, other_rate)
            << "flow " << id << " rate diverged in stack " << s;
      }
      EXPECT_EQ(reference->fabric->moved_bytes(), other->fabric->moved_bytes());
      EXPECT_EQ(reference->fabric->delivered_bytes(),
                other->fabric->delivered_bytes());
    }
  }

  void drain() {
    for (Stack* stack : stacks_) stack->simulator.run();
  }

 private:
  int pick_host(util::Rng& rng) const {
    return hosts_[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts_.size()) - 1))];
  }
  LinkId pick_link(util::Rng& rng) const {
    return static_cast<LinkId>(rng.uniform_int(0, link_count_ - 1));
  }

  std::vector<Stack*> stacks_;
  std::vector<int> hosts_;
  int link_count_;
  std::vector<FlowId> flows_;
  std::vector<LinkId> failed_;
};

TEST(FabricEquivalence, LockstepRandomOpsBitIdenticalRates) {
  constexpr std::uint64_t kSeeds = 64;
  constexpr int kOpsPerSeed = 60;
  std::uint64_t exercised = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    util::Rng rng(seed);
    util::Rng topo_rng = rng.split(1);
    const chaos::GenTopology gen = chaos::random_topology(topo_rng);
    const std::vector<int> hosts = gen.hosts();
    if (hosts.size() < 2 || gen.links.empty()) continue;
    ++exercised;

    Stack inc(gen, Fabric::AllocMode::kIncremental);
    Stack full(gen, Fabric::AllocMode::kFullRecompute);
    Stack sharded(gen, Fabric::AllocMode::kSharded, workers_for_seed(seed));
    LockstepDriver driver({&inc, &full, &sharded}, hosts,
                          static_cast<int>(gen.links.size()));
    util::Rng ops = rng.split(2);
    for (int op = 0; op < kOpsPerSeed; ++op) {
      driver.step(ops);
      if (::testing::Test::HasFatalFailure()) return;
      driver.expect_equivalent();
      ASSERT_FALSE(::testing::Test::HasFailure())
          << "first divergence at seed " << seed << " op " << op
          << " (sharded workers " << workers_for_seed(seed) << ")";
    }
    driver.drain();
    driver.expect_equivalent();
  }
  // The generator must yield usable topologies for most seeds; a vacuous
  // sweep (everything skipped) would pass silently otherwise.
  EXPECT_GT(exercised, kSeeds / 2);
}

TEST(FabricEquivalence, ChaosScenarioDigestsBitIdentical) {
  constexpr std::uint64_t kSeeds = 160;
  std::size_t nontrivial = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const chaos::Case c = chaos::random_case(seed);
    const chaos::RunReport incremental = chaos::run_case(c);
    const chaos::RunReport reference =
        chaos::run_case(c, chaos::RunOptions{.full_recompute = true});
    const chaos::RunReport sharded = chaos::run_case(
        c, chaos::RunOptions{.shard_workers = workers_for_seed(seed)});
    EXPECT_EQ(incremental.digest, reference.digest) << "seed " << seed;
    EXPECT_EQ(incremental.digest, sharded.digest)
        << "seed " << seed << " (sharded workers " << workers_for_seed(seed)
        << ")";
    EXPECT_EQ(incremental.violated, reference.violated) << "seed " << seed;
    EXPECT_EQ(incremental.violated, sharded.violated) << "seed " << seed;
    EXPECT_EQ(incremental.completed_work, reference.completed_work)
        << "seed " << seed;
    EXPECT_EQ(incremental.completed_work, sharded.completed_work)
        << "seed " << seed;
    ASSERT_EQ(incremental.outcomes.size(), reference.outcomes.size());
    ASSERT_EQ(incremental.outcomes.size(), sharded.outcomes.size());
    for (std::size_t i = 0; i < incremental.outcomes.size(); ++i) {
      EXPECT_EQ(incremental.outcomes[i].end_s, reference.outcomes[i].end_s)
          << "seed " << seed << " work item " << i;
      EXPECT_EQ(incremental.outcomes[i].end_s, sharded.outcomes[i].end_s)
          << "seed " << seed << " work item " << i << " (sharded)";
    }
    if (incremental.completed_work > 0) ++nontrivial;
  }
  // The sweep must actually exercise transfers, not vacuous empty runs.
  EXPECT_GT(nontrivial, kSeeds / 2);
}

TEST(FabricEquivalence, ShardedDigestsStableAcrossAllWorkerCounts) {
  // The per-seed cycle above gives every worker count broad coverage; this
  // holds one fixed scenario to *all* counts side by side, the most direct
  // statement of "worker count can never change results".
  constexpr std::uint64_t kSeeds = 8;
  for (std::uint64_t seed = 11; seed < 11 + kSeeds; ++seed) {
    const chaos::Case c = chaos::random_case(seed);
    const chaos::RunReport reference =
        chaos::run_case(c, chaos::RunOptions{.shard_workers = 1});
    for (const int workers : kWorkerCycle) {
      const chaos::RunReport run =
          chaos::run_case(c, chaos::RunOptions{.shard_workers = workers});
      EXPECT_EQ(reference.digest, run.digest)
          << "seed " << seed << " workers " << workers;
      EXPECT_EQ(reference.violated, run.violated)
          << "seed " << seed << " workers " << workers;
    }
  }
}

TEST(FabricEquivalence, MetricsCsvByteIdenticalAcrossWorkerCounts) {
  // Beyond event schedules: the entire exported metrics CSV — including the
  // net.shard_* diagnostics — must be byte-identical at every worker count
  // (the shard metrics are functions of the batch structure alone).
  const chaos::Case c = chaos::random_case(7);
  std::string reference_csv;
  for (const int workers : kWorkerCycle) {
    obs::Recorder rec;
    std::uint64_t digest = 0;
    {
      obs::ScopedRecorder install(&rec);
      digest =
          chaos::run_case(c, chaos::RunOptions{.shard_workers = workers})
              .digest;
    }
    const std::string csv = obs::metrics_csv(rec.metrics());
    if (workers == 1) {
      reference_csv = csv;
      ASSERT_FALSE(reference_csv.empty());
      ASSERT_NE(reference_csv.find("net.shard_batches_total"),
                std::string::npos);
    } else {
      EXPECT_EQ(reference_csv, csv) << "workers " << workers;
    }
    EXPECT_NE(digest, 0u);
  }
}

}  // namespace
}  // namespace droute::net
