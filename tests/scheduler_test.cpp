// BatchScheduler, workload generator and histogram tests, including the
// scheduler driving real transfers through the scenario world.
#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "measure/workload.h"
#include "scenario/north_america.h"
#include "stats/histogram.h"
#include "util/units.h"

namespace droute::core {
namespace {

// ------------------------------------------------------- pure scheduler ----

/// Launcher driven by a simulator: jobs "run" for bytes/rate seconds.
struct FakeExecutor {
  sim::Simulator simulator;
  double rate_bytes_per_s = 1e6;
  std::vector<std::string> launch_order;

  BatchScheduler::Launcher launcher() {
    return [this](const TransferJob& job, const std::string& route,
                  std::function<void(bool, std::string)> done) {
      launch_order.push_back(job.id + "@" + route);
      simulator.schedule_in(
          static_cast<double>(job.bytes) / rate_bytes_per_s,
          [done = std::move(done)] { done(true, ""); });
    };
  }
  std::function<double()> clock() {
    return [this] { return simulator.now(); };
  }
};

TEST(Scheduler, RunsJobsAndReportsOutcomes) {
  FakeExecutor exec;
  BatchScheduler scheduler({.max_concurrent = 2}, exec.clock(),
                           exec.launcher());
  for (int i = 0; i < 5; ++i) {
    TransferJob job;
    job.id = "job" + std::to_string(i);
    job.client = "UBC";
    job.provider = "Google Drive";
    job.bytes = 1000000;
    ASSERT_TRUE(scheduler.submit(job));
  }
  scheduler.start();
  exec.simulator.run();
  EXPECT_TRUE(scheduler.idle());
  EXPECT_EQ(scheduler.outcomes().size(), 5u);
  for (const auto& outcome : scheduler.outcomes()) {
    EXPECT_TRUE(outcome.success);
    EXPECT_NEAR(outcome.duration_s(), 1.0, 1e-9);
  }
  // 5 jobs x 1 s at concurrency 2 => ceil(5/2) = 3 s makespan.
  EXPECT_NEAR(scheduler.makespan_s(), 3.0, 1e-9);
}

TEST(Scheduler, ConcurrencyBoundHeld) {
  FakeExecutor exec;
  int peak = 0;
  BatchScheduler scheduler(
      {.max_concurrent = 3}, exec.clock(),
      [&](const TransferJob& job, const std::string&,
          std::function<void(bool, std::string)> done) {
        exec.simulator.schedule_in(
            static_cast<double>(job.bytes) / 1e6,
            [done = std::move(done)] { done(true, ""); });
      });
  for (int i = 0; i < 10; ++i) {
    scheduler.submit({"j" + std::to_string(i), "c", "p", 500000, 0});
  }
  scheduler.start();
  while (exec.simulator.step()) {
    peak = std::max(peak, scheduler.in_flight());
  }
  EXPECT_EQ(peak, 3);
  EXPECT_TRUE(scheduler.idle());
}

TEST(Scheduler, PriorityOrderWithFifoTies) {
  FakeExecutor exec;
  BatchScheduler scheduler({.max_concurrent = 1}, exec.clock(),
                           exec.launcher());
  scheduler.submit({"low1", "c", "p", 1000, 0});
  scheduler.submit({"high", "c", "p", 1000, 5});
  scheduler.submit({"low2", "c", "p", 1000, 0});
  scheduler.start();
  exec.simulator.run();
  ASSERT_EQ(exec.launch_order.size(), 3u);
  EXPECT_EQ(exec.launch_order[0], "high@Direct");
  EXPECT_EQ(exec.launch_order[1], "low1@Direct");
  EXPECT_EQ(exec.launch_order[2], "low2@Direct");
}

TEST(Scheduler, OverlayRoutesJobs) {
  FakeExecutor exec;
  OverlayTable overlay;
  OverlayEntry entry;
  entry.client = "UBC";
  entry.provider = "Google Drive";
  entry.route_key = "via UAlberta";
  overlay.install(entry);

  BatchScheduler scheduler({.max_concurrent = 1}, exec.clock(),
                           exec.launcher());
  scheduler.use_overlay(&overlay);
  scheduler.submit({"a", "UBC", "Google Drive", 1000, 0});
  scheduler.submit({"b", "UBC", "Dropbox", 1000, 0});  // no entry -> direct
  scheduler.start();
  exec.simulator.run();
  EXPECT_EQ(exec.launch_order[0], "a@via UAlberta");
  EXPECT_EQ(exec.launch_order[1], "b@Direct");
}

TEST(Scheduler, RejectsBadSubmissions) {
  FakeExecutor exec;
  BatchScheduler scheduler({.max_concurrent = 1}, exec.clock(),
                           exec.launcher());
  EXPECT_TRUE(scheduler.submit({"x", "c", "p", 10, 0}));
  EXPECT_FALSE(scheduler.submit({"x", "c", "p", 10, 0}));  // duplicate id
  EXPECT_FALSE(scheduler.submit({"y", "c", "p", 0, 0}));   // zero bytes
  EXPECT_FALSE(scheduler.submit({"", "c", "p", 10, 0}));   // empty id
}

TEST(Scheduler, LateSubmissionsRunWhileActive) {
  FakeExecutor exec;
  BatchScheduler scheduler({.max_concurrent = 1}, exec.clock(),
                           exec.launcher());
  scheduler.start();
  scheduler.submit({"first", "c", "p", 1000000, 0});
  exec.simulator.schedule_in(
      0.5, [&] { scheduler.submit({"late", "c", "p", 1000000, 0}); });
  exec.simulator.run();
  EXPECT_EQ(scheduler.outcomes().size(), 2u);
  EXPECT_TRUE(scheduler.idle());
}

TEST(Scheduler, FailuresRecorded) {
  FakeExecutor exec;
  BatchScheduler scheduler(
      {.max_concurrent = 1}, exec.clock(),
      [&](const TransferJob&, const std::string&,
          std::function<void(bool, std::string)> done) {
        exec.simulator.schedule_in(1.0, [done = std::move(done)] {
          done(false, "link exploded");
        });
      });
  scheduler.submit({"doomed", "c", "p", 10, 0});
  scheduler.start();
  exec.simulator.run();
  ASSERT_EQ(scheduler.outcomes().size(), 1u);
  EXPECT_FALSE(scheduler.outcomes()[0].success);
  EXPECT_EQ(scheduler.outcomes()[0].error, "link exploded");
}

// -------------------------------------------- scheduler over the scenario ----

TEST(Scheduler, DrivesRealTransfersThroughTheWorld) {
  scenario::WorldConfig config;
  config.cross_traffic = false;
  auto world = scenario::World::create(config);

  OverlayTable overlay;
  OverlayEntry entry;
  entry.client = "UBC";
  entry.provider = "Google Drive";
  entry.route_key = "via UAlberta";
  overlay.install(entry);

  auto launcher = [&](const TransferJob& job, const std::string& route,
                      std::function<void(bool, std::string)> done) {
    const auto client = world->client_node(scenario::Client::kUBC);
    const auto provider = job.provider == "Google Drive"
                              ? cloud::ProviderKind::kGoogleDrive
                              : cloud::ProviderKind::kDropbox;
    transfer::FileSpec file = transfer::make_file_mb(
        std::max<std::uint64_t>(1, job.bytes / util::kMB), 77);
    file.bytes = job.bytes;
    file.name = job.id;
    if (route == "Direct") {
      world->api_engine(provider).upload(
          client, file, [done](const transfer::UploadResult& r) {
            done(r.success, r.error);
          });
    } else {
      world->detour_engine(provider).transfer(
          client,
          world->intermediate_node(scenario::Intermediate::kUAlberta), file,
          [done](const transfer::DetourResult& r) {
            done(r.success, r.error);
          });
    }
  };

  BatchScheduler scheduler({.max_concurrent = 2},
                           [&] { return world->simulator().now(); },
                           launcher);
  scheduler.use_overlay(&overlay);
  scheduler.submit({"gdrive-20mb", "UBC", "Google Drive", 20 * util::kMB, 0});
  scheduler.submit({"dropbox-20mb", "UBC", "Dropbox", 20 * util::kMB, 0});
  scheduler.start();
  world->simulator().run();

  ASSERT_EQ(scheduler.outcomes().size(), 2u);
  for (const auto& outcome : scheduler.outcomes()) {
    EXPECT_TRUE(outcome.success) << outcome.error;
  }
  EXPECT_EQ(world->server(cloud::ProviderKind::kGoogleDrive).object_count(),
            1u);
  EXPECT_EQ(world->server(cloud::ProviderKind::kDropbox).object_count(), 1u);
  EXPECT_GT(scheduler.makespan_s(), 0.0);
}

}  // namespace
}  // namespace droute::core

// ---------------------------------------------------------------- workload ----
namespace droute::measure {
namespace {

TEST(Workload, DeterministicAndOrdered) {
  WorkloadProfile profile;
  util::Rng rng_a(9), rng_b(9);
  const auto a = generate_workload(rng_a, profile, 3600.0);
  const auto b = generate_workload(rng_b, profile, 3600.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].at_s, b[i].at_s);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    if (i > 0) {
      EXPECT_GE(a[i].at_s, a[i - 1].at_s);
    }
  }
}

TEST(Workload, RespectsBoundsAndHorizon) {
  WorkloadProfile profile;
  profile.min_bytes = 500000;
  profile.max_bytes = 5000000;
  util::Rng rng(11);
  const auto items = generate_workload(rng, profile, 7200.0);
  ASSERT_FALSE(items.empty());
  for (const auto& item : items) {
    EXPECT_GE(item.bytes, profile.min_bytes);
    EXPECT_LE(item.bytes, profile.max_bytes);
    EXPECT_LT(item.at_s, 7200.0);
    EXPECT_GE(item.at_s, 0.0);
  }
}

TEST(Workload, MeanArrivalRateApproximatelyRight) {
  WorkloadProfile profile;
  profile.mean_session_interarrival_s = 100.0;
  profile.mean_files_per_session = 2.0;
  util::Rng rng(13);
  const double horizon = 200000.0;
  const auto items = generate_workload(rng, profile, horizon);
  // Expected ~ horizon/100 sessions x 2 files = 4000 items.
  EXPECT_NEAR(static_cast<double>(items.size()), 4000.0, 500.0);
}

TEST(Workload, InvalidProfileIsLogicError) {
  WorkloadProfile profile;
  profile.mean_files_per_session = 0.5;
  util::Rng rng(1);
  EXPECT_THROW(generate_workload(rng, profile, 100.0), std::logic_error);
}

}  // namespace
}  // namespace droute::measure

// --------------------------------------------------------------- histogram ----
namespace droute::stats {
namespace {

TEST(Histogram, BinsAndOverflow) {
  Histogram histogram({1.0, 10.0, 100.0});
  for (double v : {0.5, 0.9, 5.0, 50.0, 500.0, 5000.0}) histogram.add(v);
  EXPECT_EQ(histogram.total(), 6u);
  EXPECT_EQ(histogram.bin_count(0), 2u);
  EXPECT_EQ(histogram.bin_count(1), 1u);
  EXPECT_EQ(histogram.bin_count(2), 1u);
  EXPECT_EQ(histogram.overflow(), 2u);
}

TEST(Histogram, PercentilesExact) {
  Histogram histogram({1000.0});
  for (int i = 1; i <= 100; ++i) histogram.add(static_cast<double>(i));
  EXPECT_NEAR(histogram.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(histogram.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(histogram.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(histogram.percentile(95), 95.05, 0.2);
  EXPECT_DOUBLE_EQ(Histogram({1.0}).percentile(50), 0.0);  // empty
}

TEST(Histogram, RenderShowsBars) {
  Histogram histogram({10.0, 20.0});
  histogram.add(5.0);
  histogram.add(5.0);
  histogram.add(15.0);
  const std::string out = histogram.render(10);
  EXPECT_NE(out.find("##"), std::string::npos);
  EXPECT_NE(out.find(" 2"), std::string::npos);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::logic_error);
  EXPECT_THROW(Histogram({5.0, 1.0}), std::logic_error);
}

}  // namespace
}  // namespace droute::stats
