#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/contract.h"
#include "check/fabric_audit.h"
#include "check/sim_audit.h"
#include "check/valley_free.h"
#include "net/fabric.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "util/result.h"

namespace droute::check {
namespace {

// ------------------------------------------------------------ contract ----

TEST(Contract, CheckPassesSilently) {
  DROUTE_CHECK(1 + 1 == 2, "arithmetic still works");
}

TEST(Contract, CheckThrowsCheckError) {
  EXPECT_THROW({ DROUTE_CHECK(false, "boom"); }, CheckError);
  // CheckError IS-A logic_error: legacy assertions keep working.
  EXPECT_THROW({ DROUTE_CHECK(false, "boom"); }, std::logic_error);
}

TEST(Contract, MessageStreamsAllParts) {
  const int flows = 7;
  try {
    DROUTE_CHECK(false, "expected ", 3, " flows, saw ", flows);
    FAIL() << "check did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("expected 3 flows, saw 7"), std::string::npos) << what;
    EXPECT_NE(what.find("[false]"), std::string::npos) << what;
  }
}

TEST(Contract, MessagelessCheckStillNamesCondition) {
  try {
    DROUTE_CHECK(2 < 1);
    FAIL() << "check did not throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("[2 < 1]"), std::string::npos);
  }
}

// The handler is a plain function pointer (so it can live in an atomic);
// tests capture through a static.
Violation g_last_violation;  // NOLINT
int g_violation_count = 0;   // NOLINT

void recording_handler(const Violation& violation) {
  g_last_violation = violation;
  ++g_violation_count;
}

TEST(Contract, FailureHandlerObservesViolation) {
  g_violation_count = 0;
  {
    ScopedFailureHandler scoped(&recording_handler);
    EXPECT_THROW({ DROUTE_CHECK(false, "observed ", 42); }, CheckError);
  }
  EXPECT_EQ(g_violation_count, 1);
  EXPECT_EQ(g_last_violation.message, "observed 42");
  EXPECT_STREQ(g_last_violation.condition, "false");
  EXPECT_NE(std::string(g_last_violation.file).find("check_test.cpp"),
            std::string::npos);
  EXPECT_GT(g_last_violation.line, 0);
  // Restored on scope exit.
  EXPECT_EQ(failure_handler(), nullptr);
}

TEST(Contract, HandlerUninstalledOutsideScope) {
  g_violation_count = 0;
  EXPECT_THROW({ DROUTE_CHECK(false, "unobserved"); }, CheckError);
  EXPECT_EQ(g_violation_count, 0);
}

TEST(Contract, DcheckCompiledPerBuildMode) {
#if DROUTE_ENABLE_DCHECKS
  EXPECT_THROW({ DROUTE_DCHECK(false, "debug check fires"); }, CheckError);
#else
  DROUTE_DCHECK(false, "debug check compiled out");  // must not throw
#endif
}

TEST(Contract, DebugChecksToggleRoundTrips) {
  const bool initial = debug_checks_enabled();
  set_debug_checks(!initial);
  EXPECT_EQ(debug_checks_enabled(), !initial);
  set_debug_checks(initial);
  EXPECT_EQ(debug_checks_enabled(), initial);
}

// ----------------------------------------------------------- sim audit ----

TEST(SimAudit, CleanRunPassesQuiescenceAudit) {
  sim::Simulator simulator;
  SimAuditor auditor(&simulator);
  for (int i = 0; i < 10; ++i) {
    simulator.schedule_at(static_cast<double>(i) * 0.5, [] {});
  }
  simulator.run();
  EXPECT_EQ(auditor.observed_events(), 10u);
  const auto status = auditor.audit_quiescent();
  EXPECT_TRUE(status.ok()) << status.error().message;
}

TEST(SimAudit, DetectsLeakedPendingEvent) {
  sim::Simulator simulator;
  SimAuditor auditor(&simulator);
  simulator.schedule_at(1.0, [] {});
  simulator.schedule_at(100.0, [] {});  // never fires: leaked
  simulator.run_until(10.0);
  const auto status = auditor.audit_quiescent();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("leaked"), std::string::npos);
}

TEST(SimAudit, DetectsCancelledBacklog) {
  sim::Simulator simulator;
  SimAuditor auditor(&simulator);
  const sim::EventId id = simulator.schedule_at(5.0, [] {});
  ASSERT_TRUE(simulator.cancel(id));
  // The heap still holds the cancelled entry (lazy reclamation) and nothing
  // will ever pop it: quiescence audit flags it.
  const auto status = auditor.audit_quiescent();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("cancelled"), std::string::npos);
}

TEST(SimAudit, ObserverSeesMonotonicClock) {
  sim::Simulator simulator;
  SimAuditor auditor(&simulator);
  // Self-rescheduling chain: each event schedules the next.
  int remaining = 50;
  std::function<void()> chain = [&] {
    if (--remaining > 0) simulator.schedule_in(0.01, chain);
  };
  simulator.schedule_in(0.01, chain);
  simulator.run();
  EXPECT_EQ(auditor.observed_events(), 50u);
  EXPECT_TRUE(auditor.audit_quiescent().ok());
}

// -------------------------------------------------------- fabric audit ----

struct FabricWorld {
  net::Topology topo;
  net::NodeId src = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;

  static FabricWorld build() {
    FabricWorld w;
    net::Topology::Builder b;
    const net::AsId as = b.add_as("A");
    w.src = b.add_host(as, "src", {0, 0});
    w.dst = b.add_host(as, "dst", {1, 1});
    b.add_duplex(w.src, w.dst, 100.0, 0.005);
    auto built = std::move(b).build();
    EXPECT_TRUE(built.ok());
    w.topo = std::move(built).value();
    return w;
  }
};

TEST(FabricAudit, LiveFabricPassesMidTransfer) {
  FabricWorld w = FabricWorld::build();
  sim::Simulator simulator;
  net::RouteTable routes(&w.topo);
  net::Fabric fabric(&simulator, &w.topo, &routes);

  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    auto flow = fabric.start_flow(w.src, w.dst, 10'000'000,
                                  [&](const net::FlowStats&) { ++completed; });
    ASSERT_TRUE(flow.ok());
  }
  // Audit while flows are in flight, several times as the sim advances.
  for (int i = 0; i < 5; ++i) {
    simulator.run_until(simulator.now() + 0.2);
    const auto status = audit_fabric(fabric);
    EXPECT_TRUE(status.ok()) << status.error().message;
  }
  simulator.run();
  EXPECT_EQ(completed, 4);
  const auto status = audit_fabric(fabric);
  EXPECT_TRUE(status.ok()) << status.error().message;
}

TEST(FabricAudit, RejectsInjectedOverCapacityLoad) {
  std::vector<net::Fabric::LinkLoad> loads(1);
  loads[0].link = 0;
  loads[0].capacity_mbps = 100.0;
  loads[0].allocated_mbps = 150.0;  // oversubscribed
  loads[0].flows = 3;
  const auto status = audit_link_loads(loads);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("capacity exceeded"),
            std::string::npos);
}

TEST(FabricAudit, ToleratesRoundingSlackButNotMore) {
  std::vector<net::Fabric::LinkLoad> loads(1);
  loads[0].link = 0;
  loads[0].capacity_mbps = 100.0;
  loads[0].flows = 1;
  loads[0].allocated_mbps = 100.0 * (1.0 + 0.5e-6);  // inside slack
  EXPECT_TRUE(audit_link_loads(loads).ok());
  loads[0].allocated_mbps = 100.0 * (1.0 + 5e-6);    // outside slack
  EXPECT_FALSE(audit_link_loads(loads).ok());
}

TEST(FabricAudit, RejectsMalformedLoadEntries) {
  std::vector<net::Fabric::LinkLoad> loads(1);
  loads[0].link = net::kInvalidLink;
  loads[0].capacity_mbps = 100.0;
  loads[0].flows = 1;
  EXPECT_FALSE(audit_link_loads(loads).ok());

  loads[0].link = 0;
  loads[0].flows = 0;  // loaded link with no flows
  loads[0].allocated_mbps = 1.0;
  EXPECT_FALSE(audit_link_loads(loads).ok());

  loads[0].flows = 1;
  loads[0].capacity_mbps = 0.0;  // zero-capacity link carrying traffic
  EXPECT_FALSE(audit_link_loads(loads).ok());
}

TEST(FabricAudit, ConservationHoldsThroughAbortAndFailure) {
  FabricWorld w = FabricWorld::build();
  sim::Simulator simulator;
  net::RouteTable routes(&w.topo);
  net::Fabric fabric(&simulator, &w.topo, &routes);

  auto f1 = fabric.start_flow(w.src, w.dst, 50'000'000,
                              [](const net::FlowStats&) {});
  auto f2 = fabric.start_flow(w.src, w.dst, 50'000'000,
                              [](const net::FlowStats&) {});
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  simulator.run_until(0.5);
  fabric.abort_flow(f1.value());
  EXPECT_TRUE(audit_flow_conservation(fabric).ok());
  simulator.run();
  const auto status = audit_flow_conservation(fabric);
  EXPECT_TRUE(status.ok()) << status.error().message;
  EXPECT_LE(fabric.delivered_bytes(), fabric.submitted_bytes());
}

// --------------------------------------------------------- valley-free ----

/// Stub + two tier-1 peers + stub: A -> P1 <-peer-> P2 -> B, plus a direct
/// peering between the stubs' providers and each other.
struct PolicyWorld {
  net::Topology topo;
  net::AsId a, p1, p2, b;
  net::NodeId ha, r1, r2, hb;

  static PolicyWorld build() {
    PolicyWorld w;
    net::Topology::Builder builder;
    w.a = builder.add_as("StubA");
    w.p1 = builder.add_as("Provider1");
    w.p2 = builder.add_as("Provider2");
    w.b = builder.add_as("StubB");
    builder.relate(w.p1, w.a, net::AsRelation::kCustomer);
    builder.relate(w.p2, w.b, net::AsRelation::kCustomer);
    builder.relate(w.p1, w.p2, net::AsRelation::kPeer);
    w.ha = builder.add_host(w.a, "ha", {0, 0});
    w.r1 = builder.add_router(w.p1, "r1", {1, 1});
    w.r2 = builder.add_router(w.p2, "r2", {2, 2});
    w.hb = builder.add_host(w.b, "hb", {3, 3});
    builder.add_duplex(w.ha, w.r1, 1000, 0.001);
    builder.add_duplex(w.r1, w.r2, 1000, 0.002);
    builder.add_duplex(w.r2, w.hb, 1000, 0.001);
    auto built = std::move(builder).build();
    EXPECT_TRUE(built.ok());
    w.topo = std::move(built).value();
    return w;
  }
};

TEST(ValleyFree, AcceptsUpPeerDownPath) {
  PolicyWorld w = PolicyWorld::build();
  const std::vector<net::AsId> path{w.a, w.p1, w.p2, w.b};
  const auto status = validate_as_path(w.topo, path);
  EXPECT_TRUE(status.ok()) << status.error().message;
}

TEST(ValleyFree, AcceptsPureUphillAndDownhill) {
  PolicyWorld w = PolicyWorld::build();
  EXPECT_TRUE(validate_as_path(w.topo, {w.a, w.p1}).ok());
  EXPECT_TRUE(validate_as_path(w.topo, {w.p1, w.a}).ok());
  EXPECT_TRUE(validate_as_path(w.topo, {w.a}).ok());
}

TEST(ValleyFree, RejectsValley) {
  // The canonical valley: a stub with two providers gives free transit
  // between them (down edge then up edge).
  net::Topology::Builder builder;
  const net::AsId c = builder.add_as("Customer");
  const net::AsId p = builder.add_as("ProviderLeft");
  const net::AsId q = builder.add_as("ProviderRight");
  builder.relate(p, c, net::AsRelation::kCustomer);
  builder.relate(q, c, net::AsRelation::kCustomer);
  builder.add_host(c, "hc", {0, 0});
  builder.add_router(p, "rp", {1, 1});
  builder.add_router(q, "rq", {2, 2});
  auto built = std::move(builder).build();
  ASSERT_TRUE(built.ok());
  const net::Topology topo = std::move(built).value();

  // ProviderLeft -> Customer -> ProviderRight: the customer would be giving
  // free transit between its two providers. Must be rejected.
  const auto status = validate_as_path(topo, {p, c, q});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("valley"), std::string::npos);
}

TEST(ValleyFree, RejectsSecondPeerEdge) {
  net::Topology::Builder builder;
  const net::AsId a = builder.add_as("A");
  const net::AsId b = builder.add_as("B");
  const net::AsId c = builder.add_as("C");
  builder.relate(a, b, net::AsRelation::kPeer);
  builder.relate(b, c, net::AsRelation::kPeer);
  builder.add_router(a, "ra", {0, 0});
  builder.add_router(b, "rb", {1, 1});
  builder.add_router(c, "rc", {2, 2});
  auto built = std::move(builder).build();
  ASSERT_TRUE(built.ok());
  const net::Topology topo = std::move(built).value();

  // Two consecutive peer edges: B exports a peer route to a peer.
  const auto status = validate_as_path(topo, {a, b, c});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("peer"), std::string::npos);
}

TEST(ValleyFree, RejectsLoopAndUndeclaredAdjacency) {
  PolicyWorld w = PolicyWorld::build();
  EXPECT_FALSE(validate_as_path(w.topo, {w.a, w.p1, w.a}).ok());
  // a and p2 have no declared relationship.
  const auto status = validate_as_path(w.topo, {w.a, w.p2});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("undeclared"), std::string::npos);
}

TEST(ValleyFree, ValidatesExpandedNodeRoute) {
  PolicyWorld w = PolicyWorld::build();
  net::RouteTable routes(&w.topo);
  auto route = routes.route(w.ha, w.hb);
  ASSERT_TRUE(route.ok()) << route.error().message;
  const auto status = validate_route(w.topo, route.value());
  EXPECT_TRUE(status.ok()) << status.error().message;
  EXPECT_EQ(as_path_of_route(w.topo, route.value()),
            (std::vector<net::AsId>{w.a, w.p1, w.p2, w.b}));
}

TEST(ValleyFree, RejectsMalformedRoute) {
  PolicyWorld w = PolicyWorld::build();
  net::Route route;  // empty: invalid shape
  EXPECT_FALSE(validate_route(w.topo, route).ok());
}

}  // namespace
}  // namespace droute::check
