// droute::obs — metrics registry, recorder/span layer and exporters.
//
// The determinism test at the bottom is the load-bearing one: it runs the
// same seeded campaign twice under fresh recorders and requires the metrics
// CSV to be byte-identical, which is what makes obs dumps diffable across
// replication runs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/monitor.h"
#include "measure/campaign.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "scenario/north_america.h"
#include "util/units.h"

namespace droute::obs {
namespace {

// --- Histogram ---------------------------------------------------------------

TEST(Histogram, BucketsByUpperEdgeWithOverflow) {
  Histogram h("test.values_s", {1.0, 2.0, 4.0});
  for (const double v : {0.5, 1.0, 1.5, 3.0, 100.0}) h.observe(v);

  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 edges + overflow
  EXPECT_EQ(snap.counts[0], 2u);      // 0.5, 1.0 (edges are inclusive)
  EXPECT_EQ(snap.counts[1], 1u);      // 1.5
  EXPECT_EQ(snap.counts[2], 1u);      // 3.0
  EXPECT_EQ(snap.counts[3], 1u);      // 100.0 overflows
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 106.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 21.2);
}

TEST(Histogram, PercentilesInterpolateAndClampToExtremes) {
  Histogram h("test.uniform_s", {10.0, 20.0, 30.0});
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i % 30) + 1.0);

  const HistogramSnapshot snap = h.snapshot();
  // All mass sits in [1, 30]; percentiles may not escape the observed range.
  EXPECT_GE(snap.percentile(0.0), snap.min);
  EXPECT_LE(snap.percentile(100.0), snap.max);
  EXPECT_LE(snap.p50(), snap.p95());
  EXPECT_LE(snap.p95(), snap.p99());
}

TEST(Histogram, SingleObservationPinsEveryPercentile) {
  Histogram h("test.single_s", duration_bounds_s());
  h.observe(0.25);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.p50(), 0.25);
  EXPECT_DOUBLE_EQ(snap.p99(), 0.25);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram h("test.empty_s", {1.0});
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
}

// --- Registry ----------------------------------------------------------------

TEST(Registry, ReturnsStablePointersPerName) {
  Registry registry;
  Counter* c1 = registry.counter("a.hits_total");
  Counter* c2 = registry.counter("a.hits_total");
  EXPECT_EQ(c1, c2);
  c1->add(3);
  EXPECT_EQ(c2->value(), 3u);
  EXPECT_NE(registry.counter("a.misses_total"), c1);
}

TEST(Registry, EnumerationIsSortedByName) {
  Registry registry;
  registry.counter("z.last_total");
  registry.counter("a.first_total");
  registry.counter("m.middle_total");
  const auto counters = registry.counters();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0]->name(), "a.first_total");
  EXPECT_EQ(counters[1]->name(), "m.middle_total");
  EXPECT_EQ(counters[2]->name(), "z.last_total");
}

TEST(Registry, PrefixQueryMatchesOnlyDottedChildren) {
  Registry registry;
  registry.histogram("probe.route_mbps.direct", rate_bounds_mbps());
  registry.histogram("probe.route_mbps.via_ua", rate_bounds_mbps());
  registry.histogram("probe.route_mbps_other.x", rate_bounds_mbps());
  registry.histogram("probe.route_mbps", rate_bounds_mbps());

  const auto matched = registry.histograms_with_prefix("probe.route_mbps");
  ASSERT_EQ(matched.size(), 2u);
  EXPECT_EQ(matched[0]->name(), "probe.route_mbps.direct");
  EXPECT_EQ(matched[1]->name(), "probe.route_mbps.via_ua");
}

// --- Recorder / global installation ------------------------------------------

TEST(RecorderGlobal, DisabledPathIsANoOp) {
  ASSERT_EQ(recorder(), nullptr) << "another test leaked an installed recorder";
  EXPECT_FALSE(enabled());
  EXPECT_EQ(counter("x.y_total"), nullptr);
  EXPECT_EQ(gauge("x.y"), nullptr);
  EXPECT_EQ(histogram("x.y_s"), nullptr);
  add(nullptr);                         // must not crash
  set(nullptr, 1.0);
  observe(nullptr, 1.0);
  count("x.y_total");                   // swallowed
  emit_span("x.span", Clock::kSim, 0.0, 1.0);
  ScopedWallSpan span("x.wall_span");   // zero work when disabled
}

TEST(RecorderGlobal, ScopedRecorderInstallsAndRestores) {
  Recorder outer;
  ScopedRecorder install_outer(&outer);
  EXPECT_EQ(recorder(), &outer);
  {
    Recorder inner;
    ScopedRecorder install_inner(&inner);
    EXPECT_EQ(recorder(), &inner);
    count("scope.hits_total", 2);
    EXPECT_EQ(inner.metrics().counter("scope.hits_total")->value(), 2u);
  }
  EXPECT_EQ(recorder(), &outer);
  EXPECT_EQ(outer.metrics().counters().size(), 0u);
}

TEST(Recorder, SpansCarryTrackContextAndArgs) {
  Recorder rec;
  ScopedRecorder install(&rec);
  const std::uint32_t track = rec.new_track("cell A");
  {
    ScopedTrack scoped(track, 3);
    emit_span("test.run", Clock::kSim, 1.0, 2.5, {{"run", "3"}});
  }
  emit_span("test.outside", Clock::kWall, 0.0, 0.1);

  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "test.run");
  EXPECT_EQ(spans[0].track, track);
  EXPECT_EQ(spans[0].lane, 3u);
  EXPECT_DOUBLE_EQ(spans[0].duration_s(), 1.5);
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].first, "run");
  EXPECT_EQ(spans[1].track, 0u) << "context must restore after ScopedTrack";
  const auto tracks = rec.track_names();
  ASSERT_EQ(tracks.size(), 2u);
  EXPECT_EQ(tracks[0], "main");
  EXPECT_EQ(tracks[1], "cell A");
}

TEST(Recorder, WallSpansNestByContainment) {
  Recorder rec;
  ScopedRecorder install(&rec);
  {
    ScopedWallSpan outer("test.outer");
    { ScopedWallSpan inner("test.inner"); }
  }
  auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Inner destructs first, so it is recorded first.
  const Span& inner = spans[0];
  const Span& outer = spans[1];
  EXPECT_EQ(inner.name, "test.inner");
  EXPECT_EQ(outer.name, "test.outer");
  EXPECT_GE(inner.start_s, outer.start_s);
  EXPECT_LE(inner.end_s, outer.end_s);
  EXPECT_EQ(inner.clock, Clock::kWall);
}

TEST(Recorder, DropsSpansBeyondCapacityAndCountsThem) {
  Recorder rec(/*span_capacity=*/4);
  ScopedRecorder install(&rec);
  for (int i = 0; i < 10; ++i) {
    emit_span("test.burst", Clock::kSim, 0.0, 1.0);
  }
  EXPECT_EQ(rec.span_count(), 4u);
  EXPECT_EQ(rec.dropped_spans(), 6u);
}

// --- Exporters ----------------------------------------------------------------

TEST(Export, ChromeTraceContainsMetadataAndCompleteEvents) {
  Recorder rec;
  ScopedRecorder install(&rec);
  const std::uint32_t track = rec.new_track("route \"X\"");
  {
    ScopedTrack scoped(track, 1);
    emit_span("test.span", Clock::kSim, 0.001, 0.002, {{"k", "v"}});
  }
  const std::string json = chrome_trace_json(rec);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("route \\\"X\\\""), std::string::npos) << "JSON escaping";
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000.000"), std::string::npos) << "µs timestamps";
  EXPECT_NE(json.find("\"dur\":1000.000"), std::string::npos);
  EXPECT_NE(json.find("\"k\":\"v\""), std::string::npos);
}

TEST(Export, MetricsCsvListsEveryInstrumentKind) {
  Registry registry;
  registry.counter("a.events_total")->add(7);
  registry.gauge("a.depth")->set(2.5);
  registry.histogram("a.wait_s", {1.0, 2.0})->observe(0.5);

  const std::string csv = metrics_csv(registry);
  EXPECT_NE(csv.find("kind,name,field,value\n"), std::string::npos);
  EXPECT_NE(csv.find("counter,a.events_total,value,7\n"), std::string::npos);
  EXPECT_NE(csv.find("gauge,a.depth,value,2.5\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,a.wait_s,count,1\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,a.wait_s,bucket_le_1,1\n"), std::string::npos);
}

TEST(Export, PrometheusBucketsAreCumulative) {
  Registry registry;
  Histogram* h = registry.histogram("a.wait_s", {1.0, 2.0});
  h->observe(0.5);
  h->observe(1.5);
  h->observe(99.0);

  const std::string text = prometheus_text(registry);
  EXPECT_NE(text.find("# TYPE droute_a_wait_s histogram"), std::string::npos);
  EXPECT_NE(text.find("droute_a_wait_s_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("droute_a_wait_s_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("droute_a_wait_s_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("droute_a_wait_s_count 3\n"), std::string::npos);
}

TEST(Export, WriteFileRejectsUnwritablePath) {
  const auto status = write_file("/nonexistent-dir/trace.json", "x");
  EXPECT_FALSE(status.ok());
}

// --- DynamicMonitor fed from an obs registry -----------------------------------

TEST(MonitorIntegration, PollFeedsDeltaMeansPerRoute) {
  Registry registry;
  Histogram* direct =
      registry.histogram("probe.route_mbps.direct", rate_bounds_mbps());
  core::DynamicMonitor::Options options;
  options.min_observations = 2;
  options.strikes_to_degrade = 2;
  core::DynamicMonitor monitor(options, &registry, "probe.route_mbps");

  // Healthy baseline: three windows around 100 Mbps.
  for (const double mbps : {100.0, 102.0, 98.0}) {
    direct->observe(mbps);
    EXPECT_EQ(monitor.poll(), 1);
  }
  EXPECT_EQ(monitor.poll(), 0) << "no new samples, nothing to feed";
  ASSERT_TRUE(monitor.baseline_mbps("direct").has_value());
  EXPECT_NEAR(*monitor.baseline_mbps("direct"), 100.0, 5.0);
  EXPECT_FALSE(monitor.is_degraded("direct"));

  // Collapse: two consecutive windows far below the baseline.
  direct->observe(10.0);
  monitor.poll();
  direct->observe(10.0);
  monitor.poll();
  EXPECT_TRUE(monitor.is_degraded("direct"));
}

TEST(MonitorIntegration, PollBatchesMultipleSamplesIntoOneObservation) {
  Registry registry;
  Histogram* h = registry.histogram("probe.route_mbps.r", rate_bounds_mbps());
  core::DynamicMonitor monitor({}, &registry, "probe.route_mbps");

  h->observe(80.0);
  h->observe(120.0);
  EXPECT_EQ(monitor.poll(), 1) << "one window -> one observation";
  EXPECT_DOUBLE_EQ(*monitor.baseline_mbps("r"), 100.0) << "mean of the window";
}

// --- Determinism ---------------------------------------------------------------

// The same seeded campaign, run sequentially under two fresh recorders, must
// produce byte-identical metrics CSVs. Guards both simulator determinism and
// exporter formatting (%.17g, sorted enumeration).
TEST(Determinism, SameSeedCampaignYieldsIdenticalMetricsCsv) {
  const auto run_once = [] {
    Recorder rec;
    ScopedRecorder install(&rec);
    measure::Campaign campaign(2016);
    campaign.add_route("direct",
                       scenario::make_transfer_fn(
                           scenario::Client::kUBC,
                           cloud::ProviderKind::kGoogleDrive,
                           scenario::RouteChoice::kDirect));
    measure::Protocol protocol;
    protocol.total_runs = 3;
    protocol.keep_last = 2;
    const auto grid = campaign.run_grid({10 * util::kMB}, protocol,
                                        /*pool=*/nullptr);
    EXPECT_EQ(grid.size(), 1u);
    return metrics_csv(rec.metrics());
  };

  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_NE(first.find("sim.events_executed_total"), std::string::npos);
  EXPECT_NE(first.find("net.flow_duration_s"), std::string::npos);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace droute::obs
