#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/monitor.h"
#include "core/overlay.h"
#include "core/planner.h"
#include "core/tiv.h"
#include "util/rng.h"

namespace droute::core {
namespace {

// -------------------------------------------------------------------- tiv ----

TEST(Tiv, DetectsPaperIntroViolation) {
  // The intro's numbers: UBC->GDrive 87 s, UBC->UAlberta 19 s,
  // UAlberta->GDrive 17 s => detour 36 s, speedup ~2.4.
  TimeMatrix matrix;
  matrix.set("UBC", "GDrive", 87.0);
  matrix.set("UBC", "UAlberta", 19.0);
  matrix.set("UAlberta", "GDrive", 17.0);
  const auto violations = find_violations(matrix);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].via, "UAlberta");
  EXPECT_NEAR(violations[0].speedup, 87.0 / 36.0, 1e-9);
}

TEST(Tiv, NoViolationWhenTriangleHolds) {
  TimeMatrix matrix;
  matrix.set("A", "C", 10.0);
  matrix.set("A", "B", 8.0);
  matrix.set("B", "C", 8.0);
  EXPECT_TRUE(find_violations(matrix).empty());
}

TEST(Tiv, OverheadShiftsDecision) {
  TimeMatrix matrix;
  matrix.set("A", "C", 20.0);
  matrix.set("A", "B", 9.0);
  matrix.set("B", "C", 9.0);
  EXPECT_EQ(find_violations(matrix, 1.0, 0.0).size(), 1u);
  // 3 s of hand-off overhead erases the 2 s advantage.
  EXPECT_TRUE(find_violations(matrix, 1.0, 3.0).empty());
}

TEST(Tiv, MinSpeedupFilters) {
  TimeMatrix matrix;
  matrix.set("A", "C", 100.0);
  matrix.set("A", "B", 30.0);
  matrix.set("B", "C", 30.0);  // speedup 1.67
  EXPECT_EQ(find_violations(matrix, 1.5).size(), 1u);
  EXPECT_TRUE(find_violations(matrix, 2.0).empty());
}

TEST(Tiv, SortedByStrength) {
  TimeMatrix matrix;
  matrix.set("A", "C", 100.0);
  matrix.set("A", "B", 30.0);
  matrix.set("B", "C", 30.0);   // via B: 60, speedup 1.67
  matrix.set("A", "D", 10.0);
  matrix.set("D", "C", 10.0);   // via D: 20, speedup 5
  const auto violations = find_violations(matrix);
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].via, "D");
  EXPECT_EQ(violations[1].via, "B");
}

TEST(Tiv, MissingPairsIgnored) {
  TimeMatrix matrix;
  matrix.set("A", "C", 100.0);
  matrix.set("A", "B", 10.0);
  // no B->C measurement
  EXPECT_TRUE(find_violations(matrix).empty());
  EXPECT_FALSE(matrix.has("B", "C"));
}

// ---------------------------------------------------------------- advisor ----

RouteStats make_stats(const std::string& key, double mean, double sd,
                      bool direct = false) {
  RouteStats stats;
  stats.key = key;
  stats.summary.mean = mean;
  stats.summary.stddev = sd;
  stats.summary.count = 5;
  stats.is_direct = direct;
  return stats;
}

TEST(Advisor, PicksClearWinnerDetour) {
  // Table II shape: detour clearly faster.
  const RouteAdvisor advisor;
  const Decision decision = advisor.recommend({
      make_stats("Direct", 86.92, 1.5, true),
      make_stats("via UAlberta", 35.79, 1.2),
      make_stats("via UMich", 132.17, 2.0),
  });
  EXPECT_EQ(decision.route_key, "via UAlberta");
  EXPECT_EQ(decision.confidence, Confidence::kClear);
}

TEST(Advisor, FallsBackToDirectOnOverlap) {
  // Table IV shape: detour mean lower but error bars overlap => direct.
  const RouteAdvisor advisor;
  const Decision decision = advisor.recommend({
      make_stats("Direct", 179.44, 51.49, true),
      make_stats("via UAlberta", 145.93, 50.12),
  });
  EXPECT_EQ(decision.route_key, "Direct");
  EXPECT_EQ(decision.confidence, Confidence::kOverlapping);
}

TEST(Advisor, OverlapToleranceCanBeDisabled) {
  RouteAdvisor::Options options;
  options.prefer_direct_on_overlap = false;
  const RouteAdvisor advisor(options);
  const Decision decision = advisor.recommend({
      make_stats("Direct", 179.44, 51.49, true),
      make_stats("via UAlberta", 145.93, 50.12),
  });
  EXPECT_EQ(decision.route_key, "via UAlberta");
  EXPECT_EQ(decision.confidence, Confidence::kOverlapping);
}

TEST(Advisor, MinGainThreshold) {
  RouteAdvisor::Options options;
  options.min_detour_gain = 0.30;
  const RouteAdvisor advisor(options);
  // Clear separation but only ~20% gain: below threshold => direct.
  const Decision decision = advisor.recommend({
      make_stats("Direct", 100.0, 1.0, true),
      make_stats("via X", 80.0, 1.0),
  });
  EXPECT_EQ(decision.route_key, "Direct");
}

TEST(Advisor, DirectWinnerIsAlwaysClear) {
  const RouteAdvisor advisor;
  const Decision decision = advisor.recommend({
      make_stats("Direct", 20.0, 5.0, true),
      make_stats("via X", 50.0, 30.0),
  });
  EXPECT_EQ(decision.route_key, "Direct");
  EXPECT_EQ(decision.confidence, Confidence::kClear);
}

TEST(Advisor, RequiresDirectCandidate) {
  const RouteAdvisor advisor;
  EXPECT_THROW(advisor.recommend({make_stats("via X", 10.0, 1.0)}),
               std::logic_error);
  EXPECT_THROW(advisor.recommend({}), std::logic_error);
}

TEST(SizeTable, DominantRouteAndExceptions) {
  SizeTable table;
  for (std::uint64_t mb : {10, 20, 30, 50, 100}) {
    Decision d;
    d.route_key = "Direct";
    table.by_size[mb * 1000000] = d;
  }
  Decision detour;
  detour.route_key = "via UAlberta";
  table.by_size[40 * 1000000] = detour;
  table.by_size[60 * 1000000] = detour;
  EXPECT_EQ(table.dominant_route(), "Direct");
  EXPECT_EQ(table.exceptions(),
            (std::vector<std::uint64_t>{40000000, 60000000}));
}

// ---------------------------------------------------------------- planner ----

measure::TransferFn affine_route(double overhead_s, double mbps,
                                 double noise_cv = 0.0) {
  return [=](std::uint64_t bytes, std::uint64_t seed) -> util::Result<double> {
    util::Rng rng(seed);
    const double base = overhead_s + static_cast<double>(bytes) * 8e-6 / mbps;
    return noise_cv > 0.0 ? base * rng.lognormal_mean_cv(1.0, noise_cv) : base;
  };
}

TEST(Planner, RecoversAffineModel) {
  DetourPlanner::Options options;
  DetourPlanner planner(options);
  planner.add_candidate("direct", affine_route(1.0, 9.3), true);
  planner.add_candidate("via ua", affine_route(2.0, 44.0), false);
  auto report = planner.plan(100 * 1000 * 1000);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_EQ(report.value().decision.route_key, "via ua");
  ASSERT_EQ(report.value().models.size(), 2u);
  const RouteModel& direct = report.value().models[0];
  EXPECT_NEAR(direct.rate_bytes_per_s, 9.3e6 / 8, 9.3e6 / 8 * 0.02);
  EXPECT_NEAR(direct.overhead_s, 1.0, 0.05);
  EXPECT_GT(report.value().probe_cost_s, 0.0);
}

TEST(Planner, PrefersDirectForSmallGainsUnderNoise) {
  DetourPlanner::Options options;
  options.probes_per_size = 3;
  DetourPlanner planner(options);
  planner.add_candidate("direct", affine_route(0.5, 20.0, 0.25), true);
  planner.add_candidate("via x", affine_route(0.5, 22.0, 0.25), false);
  auto report = planner.plan(50 * 1000 * 1000);
  ASSERT_TRUE(report.ok());
  // With 25% noise and a ~9% gap, error bars overlap => conservative direct.
  EXPECT_EQ(report.value().decision.route_key, "direct");
}

TEST(Planner, RequiresExactlyOneDirect) {
  DetourPlanner planner{DetourPlanner::Options{}};
  planner.add_candidate("a", affine_route(1, 10), false);
  EXPECT_FALSE(planner.plan(1000).ok());
  planner.add_candidate("b", affine_route(1, 10), true);
  planner.add_candidate("c", affine_route(1, 10), true);
  EXPECT_FALSE(planner.plan(1000).ok());
}

TEST(Planner, PropagatesProbeFailures) {
  DetourPlanner planner{DetourPlanner::Options{}};
  planner.add_candidate("direct",
                        [](std::uint64_t, std::uint64_t)
                            -> util::Result<double> {
                          return util::Error::make("probe exploded");
                        },
                        true);
  auto report = planner.plan(1000);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().message.find("probe exploded"), std::string::npos);
}

// ---------------------------------------------------------------- monitor ----

TEST(Monitor, LearnsBaselineAndDetectsCollapse) {
  DynamicMonitor monitor;
  for (int i = 0; i < 5; ++i) monitor.observe("ubc->gdrive", 40.0);
  ASSERT_TRUE(monitor.baseline_mbps("ubc->gdrive").has_value());
  EXPECT_NEAR(monitor.baseline_mbps("ubc->gdrive").value(), 40.0, 1e-9);
  EXPECT_FALSE(monitor.is_degraded("ubc->gdrive"));

  monitor.observe("ubc->gdrive", 10.0);
  EXPECT_FALSE(monitor.is_degraded("ubc->gdrive"));  // 1 strike
  monitor.observe("ubc->gdrive", 10.0);
  monitor.observe("ubc->gdrive", 10.0);
  EXPECT_TRUE(monitor.is_degraded("ubc->gdrive"));   // 3 strikes
}

TEST(Monitor, SingleBlipDoesNotFlap) {
  DynamicMonitor monitor;
  for (int i = 0; i < 5; ++i) monitor.observe("r", 40.0);
  monitor.observe("r", 5.0);    // blip
  monitor.observe("r", 40.0);   // recovery resets strikes
  monitor.observe("r", 5.0);
  monitor.observe("r", 40.0);
  EXPECT_FALSE(monitor.is_degraded("r"));
}

TEST(Monitor, BaselineFrozenWhileDegraded) {
  DynamicMonitor monitor;
  for (int i = 0; i < 5; ++i) monitor.observe("r", 40.0);
  for (int i = 0; i < 4; ++i) monitor.observe("r", 2.0);
  ASSERT_TRUE(monitor.is_degraded("r"));
  // The baseline must not have been dragged down to the failure level.
  EXPECT_GT(monitor.baseline_mbps("r").value(), 20.0);
}

TEST(Monitor, ResetClearsDegradation) {
  DynamicMonitor monitor;
  for (int i = 0; i < 5; ++i) monitor.observe("r", 40.0);
  for (int i = 0; i < 4; ++i) monitor.observe("r", 2.0);
  ASSERT_TRUE(monitor.is_degraded("r"));
  EXPECT_EQ(monitor.degraded_routes(), std::vector<std::string>{"r"});
  monitor.reset("r");
  EXPECT_FALSE(monitor.is_degraded("r"));
  EXPECT_TRUE(monitor.degraded_routes().empty());
}

TEST(Monitor, WarmupGracePeriod) {
  DynamicMonitor monitor;
  // Low samples during warm-up must not immediately degrade.
  monitor.observe("r", 40.0);
  monitor.observe("r", 4.0);
  monitor.observe("r", 4.0);
  EXPECT_FALSE(monitor.is_degraded("r"));
}

// ---------------------------------------------------------------- overlay ----

TEST(Overlay, InstallLookupEvict) {
  OverlayTable table;
  OverlayEntry entry;
  entry.client = "UBC";
  entry.provider = "Google Drive";
  entry.route_key = "via UAlberta";
  entry.expected_s = 35.79;
  table.install(entry);
  ASSERT_TRUE(table.lookup("UBC", "Google Drive").has_value());
  EXPECT_EQ(table.lookup("UBC", "Google Drive")->route_key, "via UAlberta");
  EXPECT_FALSE(table.lookup("UBC", "Dropbox").has_value());
  EXPECT_TRUE(table.evict("UBC", "Google Drive"));
  EXPECT_FALSE(table.evict("UBC", "Google Drive"));
  EXPECT_EQ(table.size(), 0u);
}

TEST(Overlay, InstallReplaces) {
  OverlayTable table;
  OverlayEntry entry;
  entry.client = "Purdue";
  entry.provider = "Dropbox";
  entry.route_key = "Direct";
  table.install(entry);
  entry.route_key = "via UMich";
  table.install(entry);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup("Purdue", "Dropbox")->route_key, "via UMich");
}

TEST(Overlay, RenderMentionsRoutes) {
  OverlayTable table;
  OverlayEntry entry;
  entry.client = "UBC";
  entry.provider = "Google Drive";
  entry.route_key = "via UAlberta";
  entry.expected_s = 35.79;
  table.install(entry);
  const std::string text = table.render();
  EXPECT_NE(text.find("UBC -> Google Drive : via UAlberta"),
            std::string::npos);
}

}  // namespace
}  // namespace droute::core
