// Automatic detour selection end to end: probe candidate routes with small
// payloads, fit per-route cost models, recommend a route with the paper's
// overlap-conservatism, and install the decisions in an overlay table.
//
//   $ ./detour_advisor [client: ubc|purdue|ucla]
#include <cstdio>
#include <cstring>

#include "core/overlay.h"
#include "core/planner.h"
#include "scenario/north_america.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace droute;
  scenario::Client client = scenario::Client::kUBC;
  if (argc > 1) {
    if (std::strcmp(argv[1], "purdue") == 0) client = scenario::Client::kPurdue;
    else if (std::strcmp(argv[1], "ucla") == 0) client = scenario::Client::kUCLA;
  }
  std::printf("Automatic detour selection for client %s (100 MB target)\n\n",
              scenario::client_name(client).c_str());

  core::OverlayTable overlay;
  for (const auto provider : cloud::all_providers()) {
    core::DetourPlanner::Options options;
    options.probes_per_size = 2;
    core::DetourPlanner planner(options);
    for (const auto route : scenario::all_routes()) {
      planner.add_candidate(
          scenario::route_name(route),
          scenario::make_transfer_fn(client, provider, route),
          route == scenario::RouteChoice::kDirect);
    }
    auto report = planner.plan(100 * util::kMB);
    if (!report.ok()) {
      std::fprintf(stderr, "planning failed: %s\n",
                   report.error().message.c_str());
      return 1;
    }

    std::printf("%s:\n", cloud::provider_name(provider).c_str());
    for (const auto& model : report.value().models) {
      std::printf("  %-14s overhead %5.2f s, rate %6.1f Mbps, "
                  "predicted %7.2f s\n",
                  model.key.c_str(), model.overhead_s,
                  model.rate_bytes_per_s * 8e-6,
                  model.predict_s(100 * util::kMB));
    }
    std::printf("  -> decision: %s (%s)\n     probe cost: %.1f simulated "
                "seconds, %.0f MB\n\n",
                report.value().decision.route_key.c_str(),
                report.value().decision.reason.c_str(),
                report.value().probe_cost_s,
                static_cast<double>(report.value().probe_bytes) / 1e6);

    core::OverlayEntry entry;
    entry.client = scenario::client_name(client);
    entry.provider = cloud::provider_name(provider);
    entry.route_key = report.value().decision.route_key;
    entry.expected_s = report.value().decision.expected_s;
    entry.confidence = report.value().decision.confidence;
    entry.decided_for_bytes = 100 * util::kMB;
    overlay.install(entry);
  }

  std::printf("Installed overlay routes:\n%s", overlay.render().c_str());
  return 0;
}
