// Dynamic-bottleneck story, end to end (the paper's future work: "monitor
// and bypass dynamic bottlenecks on the WAN"):
//   1. steady state: probes confirm the UAlberta detour is healthy;
//   2. a mid-campaign failure (the CANARIE inter-city link dies) collapses
//      detour throughput;
//   3. DynamicMonitor flags the route, RouteMonitor shows what changed,
//      RouteAdvisor re-recommends, and the overlay table is updated.
#include <cstdio>

#include "core/advisor.h"
#include "core/monitor.h"
#include "core/overlay.h"
#include "scenario/north_america.h"
#include "sim/task.h"
#include "trace/route_monitor.h"
#include "transfer/file_spec.h"
#include "transfer/rsync_engine.h"
#include "util/units.h"

namespace {

// The probe, written against the coroutine API directly: push 5 MB across
// the detour leg and yield the achieved goodput in Mbps (0 on failure).
// Top-to-bottom control flow — no callback plumbing.
droute::sim::Task<double> probe_leg(droute::scenario::World& world) {
  using namespace droute;
  transfer::RsyncEngine engine(&world.fabric());
  const transfer::FileSpec file = transfer::make_file_mb(5, 42);
  auto push = engine.push_task(world.node("planetlab1.cs.ubc.ca"),
                               world.node("cluster.cs.ualberta.ca"), file);
  const auto result = co_await push;
  if (!result.ok() || !result.value().success) co_return 0.0;
  co_return static_cast<double>(file.bytes) * 8e-6 /
      result.value().duration_s();
}

}  // namespace

int main() {
  using namespace droute;
  scenario::WorldConfig config;
  config.cross_traffic = false;
  auto world = scenario::World::create(config);

  const auto ubc = world->node("planetlab1.cs.ubc.ca");
  const auto ua = world->node("cluster.cs.ualberta.ca");

  core::DynamicMonitor health;
  trace::RouteMonitor routes(&world->tracer(), &world->topology());
  routes.watch(ubc, ua);

  auto probe = [&]() -> double {
    auto task = probe_leg(*world);
    while (!task.done() && world->simulator().step()) {
    }
    if (!task.done()) task.cancel();  // starved: unwind the frame
    if (!task.result().ok()) return 0.0;
    return task.result().value();
  };

  std::printf("phase 1: steady state probes of the UBC->UAlberta leg\n");
  for (int i = 0; i < 5; ++i) {
    const double mbps = probe();
    health.observe("ubc->ualberta", mbps);
    routes.snapshot();
    std::printf("  probe %d: %.1f Mbps\n", i + 1, mbps);
  }
  std::printf("  baseline: %.1f Mbps, degraded=%s\n\n",
              health.baseline_mbps("ubc->ualberta").value_or(0.0),
              health.is_degraded("ubc->ualberta") ? "yes" : "no");

  std::printf("phase 2: the Edmonton<->Vancouver CANARIE link fails\n");
  const auto canarie_link = world->topology().find_link(
      world->node("vncv1rtr2.canarie.ca"),
      world->node("edmn1rtr2.canarie.ca"));
  if (canarie_link) world->fabric().fail_link(canarie_link.value());

  for (int i = 0; i < 4; ++i) {
    const double mbps = probe();
    health.observe("ubc->ualberta", mbps);
    const auto changes = routes.snapshot();
    std::printf("  probe %d: %.1f Mbps%s\n", i + 1, mbps,
                changes.empty() ? "" : "  [route change detected]");
  }
  std::printf("  degraded=%s\n\n",
              health.is_degraded("ubc->ualberta") ? "YES" : "no");
  std::printf("route monitor history:\n%s\n",
              routes.render_history().c_str());

  std::printf("phase 3: re-advise UBC -> Google Drive with the leg down\n");
  // Measure the surviving candidates with small transfers.
  auto measure_route = [&](scenario::RouteChoice route) -> core::RouteStats {
    core::RouteStats stats;
    stats.key = scenario::route_name(route);
    stats.is_direct = route == scenario::RouteChoice::kDirect;
    auto t = world->run_upload(scenario::Client::kUBC,
                               cloud::ProviderKind::kGoogleDrive, route,
                               10 * util::kMB);
    stats.summary.mean = t.ok() ? t.value() : 1e9;  // unreachable = infinite
    stats.summary.count = 1;
    return stats;
  };
  std::vector<core::RouteStats> candidates;
  for (const auto route : scenario::all_routes()) {
    candidates.push_back(measure_route(route));
    std::printf("  %-14s : %s\n", candidates.back().key.c_str(),
                candidates.back().summary.mean >= 1e9
                    ? "unreachable"
                    : (std::to_string(candidates.back().summary.mean) + " s")
                          .c_str());
  }
  const auto decision = core::RouteAdvisor().recommend(candidates);

  core::OverlayTable overlay;
  core::OverlayEntry entry;
  entry.client = "UBC";
  entry.provider = "Google Drive";
  entry.route_key = decision.route_key;
  entry.expected_s = decision.expected_s;
  overlay.install(entry);
  std::printf("\nnew overlay route: %s", overlay.render().c_str());
  std::printf("(was: via UAlberta before the failure)\n");
  return 0;
}
