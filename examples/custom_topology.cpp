// Define your own WAN in the droute topology text format, then probe it:
// writes a sample two-path world to a temp file, loads it, routes through
// it, runs a transfer both ways and a traceroute — the starter kit for
// modelling your institution's own routing inefficiencies.
//
//   $ ./custom_topology [path/to/topology.txt]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "net/fabric.h"
#include "net/topology_io.h"
#include "trace/traceroute.h"
#include "util/units.h"

namespace {
constexpr const char* kSampleWorld = R"(# sample: a campus with a policed
# commodity path and a clean research path to one cloud front end
as Campus
as Commodity
as Research
as Cloud
relate Commodity customer Campus
relate Research customer Campus
relate Commodity peer Cloud
relate Research peer Cloud

node desktop.campus.edu host Campus 53.5 -113.5 city="Edmonton, AB"
node border.campus.edu router Campus 53.5 -113.5
node cr1.commodity.net router Commodity 51.0 -114.0
node rr1.research.net router Research 49.3 -123.1
node edge.cloud.com router Cloud 47.6 -122.3
node fe.cloud.com host Cloud 47.6 -122.3 city="Seattle, WA"

link desktop.campus.edu border.campus.edu cap=1000 delay_ms=0.3 duplex
link border.campus.edu cr1.commodity.net cap=200 delay_ms=3 policer=8 duplex
link border.campus.edu rr1.research.net cap=200 delay_ms=6 duplex
link cr1.commodity.net edge.cloud.com cap=1000 delay_ms=5 duplex
link rr1.research.net edge.cloud.com cap=1000 delay_ms=4 duplex
link edge.cloud.com fe.cloud.com cap=10000 delay_ms=0.2 duplex
)";
}  // namespace

int main(int argc, char** argv) {
  using namespace droute;

  std::string text;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
    std::printf("loaded topology from %s\n\n", argv[1]);
  } else {
    text = kSampleWorld;
    std::printf("using the built-in sample topology (pass a file to load "
                "your own)\n\n%s\n", kSampleWorld);
  }

  auto parsed = net::parse_topology(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error().message.c_str());
    return 1;
  }
  net::Topology topo = std::move(parsed).value();
  net::RouteTable routes(&topo);
  sim::Simulator simulator;
  net::Fabric fabric(&simulator, &topo, &routes);

  const auto src = topo.find_node("desktop.campus.edu");
  const auto dst = topo.find_node("fe.cloud.com");
  if (!src || !dst) {
    std::fprintf(stderr, "sample expects desktop.campus.edu / fe.cloud.com; "
                         "adapt the node names below for your file\n");
    return 1;
  }

  trace::Tracer tracer(&topo, &routes);
  auto traced = tracer.trace(*src, *dst);
  if (traced.ok()) {
    std::printf("current route:\n%s\n",
                traced.value().render(topo).c_str());
  }

  // Time a 50 MB flow along the default route.
  bool done = false;
  double elapsed = 0.0;
  auto flow = fabric.start_flow(*src, *dst, 50 * util::kMB,
                                [&](const net::FlowStats& stats) {
                                  done = true;
                                  elapsed = stats.duration_s();
                                });
  if (!flow.ok()) {
    std::fprintf(stderr, "no route: %s\n", flow.error().message.c_str());
    return 1;
  }
  simulator.run();
  std::printf("50 MB along the default route: %.2f s (%.1f Mbps)\n", elapsed,
              done ? 50.0 * 8.0 / elapsed : 0.0);

  // Show what the path metrics say about it.
  const auto route = routes.route(*src, *dst).value();
  std::printf("  bottleneck capacity : %.1f Mbps\n",
              routes.bottleneck_capacity_mbps(route));
  const double policer = routes.min_policer_mbps(route);
  if (policer > 0) {
    std::printf("  per-flow policer    : %.1f Mbps  <- your inefficiency\n",
                policer);
  }
  std::printf("  one-way delay       : %.1f ms\n",
              routes.one_way_delay_s(route) * 1e3);
  return 0;
}
