// A persistent DTN cache over real sockets: the rsync algorithm running as
// an actual TCP protocol (wire/rsync_pipe). Shows what the paper's
// delete-before-each-run methodology deliberately gives up: repeat uploads
// of a lightly-edited file move only the delta.
//
//   $ ./dtn_cache [file_mib]
#include <cstdio>
#include <cstdlib>

#include "util/blob.h"
#include "util/rng.h"
#include "wire/rsync_pipe.h"

int main(int argc, char** argv) {
  using namespace droute;
  const std::size_t mib =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;

  wire::RsyncServer dtn;
  auto port = dtn.start();
  if (!port.ok()) {
    std::fprintf(stderr, "DTN startup failed: %s\n",
                 port.error().message.c_str());
    return 1;
  }
  std::printf("DTN rsync daemon on 127.0.0.1:%u\n\n", port.value());

  util::Rng rng(7);
  util::Blob file = util::make_random_blob(rng, mib << 20);

  std::printf("push 1: cold (DTN has no copy)\n");
  auto cold = wire::rsync_push(port.value(), "dataset.bin", file);
  if (!cold.ok()) {
    std::fprintf(stderr, "push failed: %s\n", cold.error().message.c_str());
    return 1;
  }
  std::printf("  sent %.2f MB delta, %.2f KB signatures, %.3f s, digest %s\n\n",
              static_cast<double>(cold.value().delta_bytes) / 1e6,
              static_cast<double>(cold.value().signature_bytes) / 1e3,
              cold.value().seconds,
              cold.value().digest_ok ? "ok" : "MISMATCH");

  // Edit 0.1% of the file, as a day's work on a dataset might.
  for (int i = 0; i < 1000; ++i) {
    file[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(file.size() - 1)))] ^= 0xa5;
  }
  std::printf("push 2: warm (DTN holds yesterday's copy; ~0.1%% edited)\n");
  auto warm = wire::rsync_push(port.value(), "dataset.bin", file);
  if (!warm.ok()) {
    std::fprintf(stderr, "push failed: %s\n", warm.error().message.c_str());
    return 1;
  }
  std::printf("  sent %.2f MB delta, %.2f KB signatures, %.3f s, digest %s\n\n",
              static_cast<double>(warm.value().delta_bytes) / 1e6,
              static_cast<double>(warm.value().signature_bytes) / 1e3,
              warm.value().seconds,
              warm.value().digest_ok ? "ok" : "MISMATCH");

  std::printf("bytes saved by the cache: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(warm.value().delta_bytes) /
                                 static_cast<double>(
                                     cold.value().delta_bytes)));
  std::printf("(the paper deletes files before each run precisely so its\n"
              " benchmarks measure the network, not this cache effect)\n");
  dtn.stop();
  return 0;
}
