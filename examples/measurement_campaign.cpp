// Run a full measurement campaign with the paper's protocol and emit a CSV
// suitable for plotting every figure — the "reproduce my thesis chapter"
// entry point.
//
//   $ ./measurement_campaign [runs] > campaign.csv
//
// Set DROUTE_METRICS_OUT=<path> to also dump the campaign's internal metrics
// (sim events, throttle retries, flow durations, ...) as obs CSV.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "measure/campaign.h"
#include "obs/export.h"
#include "obs/recorder.h"
#include "scenario/north_america.h"
#include "util/thread_pool.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace droute;
  measure::Protocol protocol;
  if (argc > 1) {
    protocol.total_runs = std::atoi(argv[1]);
    protocol.keep_last = std::min(protocol.keep_last, protocol.total_runs);
  }

  std::unique_ptr<obs::Recorder> recorder;
  const char* metrics_out = std::getenv("DROUTE_METRICS_OUT");
  if (metrics_out != nullptr && *metrics_out) {
    recorder = std::make_unique<obs::Recorder>();
    obs::set_recorder(recorder.get());
  }

  measure::Campaign campaign(2016);
  for (const auto client : scenario::all_clients()) {
    for (const auto provider : cloud::all_providers()) {
      for (const auto route : scenario::all_routes()) {
        const std::string key = scenario::client_name(client) + "," +
                                cloud::provider_name(provider) + "," +
                                scenario::route_name(route);
        campaign.add_route(key,
                           scenario::make_transfer_fn(client, provider, route));
      }
    }
  }

  std::fprintf(stderr,
               "measuring %zu routes x %zu sizes x %d runs in parallel...\n",
               campaign.route_keys().size(),
               scenario::paper_file_sizes_bytes().size(),
               protocol.total_runs);
  util::ThreadPool pool;
  const auto grid =
      campaign.run_grid(scenario::paper_file_sizes_bytes(), protocol, &pool);

  std::printf("client,provider,route,size_mb,mean_s,stddev_s,runs,failures\n");
  for (const auto& [key, measurement] : grid) {
    std::printf("%s,%llu,%.3f,%.3f,%zu,%d\n", key.first.c_str(),
                static_cast<unsigned long long>(key.second / util::kMB),
                measurement.kept.mean, measurement.kept.stddev,
                measurement.runs.size(), measurement.failures);
  }

  if (recorder != nullptr) {
    obs::set_recorder(nullptr);
    const auto status = obs::write_file(
        metrics_out, obs::metrics_csv(recorder->metrics()));
    if (status.ok()) {
      std::fprintf(stderr, "wrote metrics to %s\n", metrics_out);
    } else {
      std::fprintf(stderr, "FAILED writing metrics: %s\n",
                   status.error().message.c_str());
      return 1;
    }
  }
  return 0;
}
