// Quickstart: build the paper's measurement world, upload one file directly
// and via a detour, and print the comparison — the intro's 87 s vs 36 s
// observation in a dozen lines of API.
//
//   $ ./quickstart [size_mb]
#include <cstdio>
#include <cstdlib>

#include "scenario/north_america.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace droute;
  const std::uint64_t size_mb =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100;
  const std::uint64_t bytes = size_mb * util::kMB;

  std::printf("droute quickstart: uploading a %llu MB random file from the\n"
              "UBC PlanetLab node to Google Drive.\n\n",
              static_cast<unsigned long long>(size_mb));

  // Each World is an independent simulation universe. Direct upload:
  scenario::WorldConfig config;
  config.cross_traffic = false;
  auto direct_world = scenario::World::create(config);
  auto direct = direct_world->run_upload(
      scenario::Client::kUBC, cloud::ProviderKind::kGoogleDrive,
      scenario::RouteChoice::kDirect, bytes);
  if (!direct.ok()) {
    std::fprintf(stderr, "direct upload failed: %s\n",
                 direct.error().message.c_str());
    return 1;
  }

  // Detoured upload via the UAlberta DTN (rsync leg + API leg):
  auto detour_world = scenario::World::create(config);
  auto detour = detour_world->run_upload(
      scenario::Client::kUBC, cloud::ProviderKind::kGoogleDrive,
      scenario::RouteChoice::kViaUAlberta, bytes);
  if (!detour.ok()) {
    std::fprintf(stderr, "detoured upload failed: %s\n",
                 detour.error().message.c_str());
    return 1;
  }

  std::printf("  direct        UBC -> Google Drive          : %7.2f s\n",
              direct.value());
  std::printf("  detour        UBC -> UAlberta -> GDrive    : %7.2f s\n",
              detour.value());
  std::printf("  speedup                                    : %7.2fx\n\n",
              direct.value() / detour.value());
  std::printf("The detour wins despite the geographic backtrack through\n"
              "Edmonton — a throughput triangle-inequality violation caused\n"
              "by the policed PacificWave egress on the direct path.\n");
  return 0;
}
