// Real-socket demo of the routing-detour mitigation on loopback:
// a cloud "sink" with a policed ingress (the bad path) and an open ingress
// (the good path), plus a relay daemon acting as the DTN.
//
//   $ ./socket_relay [payload_mib]
#include <cstdio>
#include <cstdlib>

#include "util/blob.h"
#include "util/rng.h"
#include "wire/client.h"
#include "wire/relay.h"
#include "wire/sink.h"

int main(int argc, char** argv) {
  using namespace droute;
  const std::size_t mib =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;

  wire::Sink sink;
  auto policed_port = sink.add_ingress(4e6);  // 4 MB/s policed path
  auto open_port = sink.add_ingress(0.0);     // unthrottled peering path
  if (!policed_port.ok() || !open_port.ok() || !sink.start().ok()) {
    std::fprintf(stderr, "sink startup failed\n");
    return 1;
  }

  wire::RelayDaemon::Options relay_options;
  relay_options.mode = wire::RelayMode::kStoreAndForward;
  wire::RelayDaemon relay(relay_options);
  auto relay_port = relay.start();
  if (!relay_port.ok()) {
    std::fprintf(stderr, "relay startup failed: %s\n",
                 relay_port.error().message.c_str());
    return 1;
  }

  std::printf("sink: policed ingress :%u (4 MB/s), open ingress :%u\n",
              policed_port.value(), open_port.value());
  std::printf("relay (DTN): :%u, store-and-forward\n\n", relay_port.value());

  util::Rng rng(1);
  const util::Blob payload = util::make_random_blob(rng, mib << 20);
  std::printf("uploading %zu MiB of random data...\n\n", mib);

  auto direct = wire::upload_direct(policed_port.value(), payload);
  if (!direct.ok()) {
    std::fprintf(stderr, "direct upload failed: %s\n",
                 direct.error().message.c_str());
    return 1;
  }
  std::printf("  direct (policed path) : %6.2f s  %6.1f MB/s  digest %s\n",
              direct.value().seconds, direct.value().mbytes_per_s,
              direct.value().digest_ok ? "ok" : "MISMATCH");

  auto detour = wire::upload_via_relay(relay_port.value(), open_port.value(),
                                       payload);
  if (!detour.ok()) {
    std::fprintf(stderr, "detoured upload failed: %s\n",
                 detour.error().message.c_str());
    return 1;
  }
  std::printf("  detour (via relay)    : %6.2f s  %6.1f MB/s  digest %s\n\n",
              detour.value().seconds, detour.value().mbytes_per_s,
              detour.value().digest_ok ? "ok" : "MISMATCH");
  std::printf("  speedup: %.1fx — same server, different ingress treatment;\n"
              "  exactly the paper's PacificWave-vs-peering asymmetry.\n",
              direct.value().seconds / detour.value().seconds);

  relay.stop();
  sink.stop();
  return 0;
}
