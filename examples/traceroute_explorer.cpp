// Interactive-ish traceroute explorer over the simulated WAN: print the
// route between any two named nodes, with per-hop RTT and geolocation —
// the tooling behind Figs 5/6.
//
//   $ ./traceroute_explorer                 # list nodes
//   $ ./traceroute_explorer <src> <dst>     # trace
#include <cstdio>

#include "scenario/north_america.h"

int main(int argc, char** argv) {
  using namespace droute;
  scenario::WorldConfig config;
  config.cross_traffic = false;
  auto world = scenario::World::create(config);

  if (argc < 3) {
    std::printf("usage: traceroute_explorer <src-node> <dst-node>\n\n");
    std::printf("known nodes:\n");
    for (const auto& loc : world->registry().all()) {
      std::printf("  %-45s %-20s %s\n", loc.name.c_str(), loc.city.c_str(),
                  geo::to_string(loc.coord).c_str());
    }
    return 0;
  }

  const auto src = world->topology().find_node(argv[1]);
  const auto dst = world->topology().find_node(argv[2]);
  if (!src || !dst) {
    std::fprintf(stderr, "unknown node name (run without args to list)\n");
    return 1;
  }

  auto result = world->tracer().trace(*src, *dst);
  if (!result.ok()) {
    std::fprintf(stderr, "trace failed: %s\n", result.error().message.c_str());
    return 1;
  }
  std::printf("%s", result.value().render(world->topology()).c_str());

  // Annotate hops with geolocation, like feeding traceroute into the
  // paper's "IP Location Finder".
  std::printf("\ngeolocated hops:\n");
  for (const auto& hop : result.value().hops) {
    if (hop.silent) {
      std::printf("  %2d  (unresponsive)\n", hop.ttl);
      continue;
    }
    const auto loc = world->registry().lookup(hop.name);
    std::printf("  %2d  %-45s %s\n", hop.ttl, hop.name.c_str(),
                loc ? (loc->city + " " + geo::to_string(loc->coord)).c_str()
                    : "?");
  }
  return 0;
}
