// The online control plane, end to end: ctrl::Controller learns the
// paper's UBC -> Google Drive throughput TIV from its own probes, steers
// upload sessions onto the UAlberta relay, rides out a chaos link failure
// on the CANARIE detour leg (the estimator resets, an out-of-band epoch
// re-learns the new regime), and walks back onto the relay once the link
// is restored. Every decision lands in a deterministic DecisionTrace.
#include <cstdio>
#include <string>

#include "chaos/injector.h"
#include "chaos/plan.h"
#include "ctrl/controller.h"
#include "scenario/north_america.h"
#include "util/units.h"

namespace {

using namespace droute;

void print_estimates(const ctrl::Controller& controller,
                     const scenario::World& world, net::NodeId client,
                     net::NodeId provider) {
  for (const ctrl::PathSpec& path : controller.candidate_paths(client)) {
    const ctrl::PathStats* stats =
        controller.estimator().lookup(client, provider, path);
    if (stats == nullptr) {
      std::printf("    %-16s : (no estimate yet)\n", path.label().c_str());
    } else {
      std::printf("    %-16s : %7.2f Mbps  (+/- %.2f, %zu samples)\n",
                  path.label().c_str(), stats->mean_mbps,
                  stats->interval().stddev, stats->samples);
    }
  }
  (void)world;
}

void steered_session(scenario::World& world, ctrl::Controller& controller,
                     std::uint64_t bytes) {
  const auto elapsed = world.run_steered_upload(
      cloud::ProviderKind::kGoogleDrive, controller, scenario::Client::kUBC,
      bytes);
  if (elapsed.ok()) {
    std::printf("  session: %llu MB in %.1f s (%.1f Mbps goodput)\n",
                static_cast<unsigned long long>(bytes / util::kMB),
                elapsed.value(),
                static_cast<double>(bytes) * 8e-6 / elapsed.value());
  } else {
    std::printf("  session: FAILED (%s)\n", elapsed.error().message.c_str());
  }
}

}  // namespace

int main() {
  scenario::WorldConfig config;
  config.cross_traffic = false;
  auto world = scenario::World::create(config);

  const net::NodeId ubc = world->client_node(scenario::Client::kUBC);
  const net::NodeId gdrive =
      world->provider_node(cloud::ProviderKind::kGoogleDrive);

  // A controller wired to every paper client with UAlberta and UMich as
  // candidate DTN relays. Short epochs and a generous probe budget so the
  // demo converges in a few simulated seconds.
  ctrl::ControllerConfig ctrl_config;
  ctrl_config.epoch_s = 5.0;
  ctrl_config.probe_budget_bytes = 8 * util::kMB;
  ctrl_config.max_relay_hops = 1;
  ctrl::Controller& controller =
      world->make_controller(cloud::ProviderKind::kGoogleDrive, ctrl_config);

  // Chaos wiring: every injected event tells the controller its measured
  // picture is stale (it cancels probes, forgets estimates and incumbents,
  // and re-probes immediately).
  chaos::Injector injector({&world->simulator(), &world->fabric(),
                            &world->topology(), &world->routes(), {}});
  injector.set_post_apply([&controller](const chaos::Event& event) {
    controller.on_network_event(chaos::event_kind_name(event.kind));
  });

  std::printf("phase 1: the controller probes and finds the TIV\n");
  controller.start();
  world->simulator().run_until(world->simulator().now() + 12.0);
  print_estimates(controller, *world, ubc, gdrive);
  for (const ctrl::TivFlag& flag :
       controller.estimator().flag_tivs()) {
    if (flag.client != ubc) continue;
    std::printf("  TIV flagged: %s at %.1f Mbps vs direct %.1f Mbps\n",
                flag.path.label().c_str(), flag.path_mbps, flag.direct_mbps);
  }
  steered_session(*world, controller, 50 * util::kMB);

  std::printf("\nphase 2: the Vancouver<->Edmonton CANARIE link fails\n");
  const auto canarie_link = world->topology().find_link(
      world->node("vncv1rtr2.canarie.ca"), world->node("edmn1rtr2.canarie.ca"));
  if (!canarie_link) {
    std::printf("  (link not found; topology changed?)\n");
    return 1;
  }
  injector.apply({world->simulator().now(), chaos::EventKind::kLinkFail,
                  canarie_link.value(), 0.0});
  world->simulator().run_until(world->simulator().now() + 12.0);
  print_estimates(controller, *world, ubc, gdrive);
  steered_session(*world, controller, 50 * util::kMB);

  std::printf("\nphase 3: the link is repaired\n");
  injector.apply({world->simulator().now(), chaos::EventKind::kLinkRestore,
                  canarie_link.value(), 0.0});
  world->simulator().run_until(world->simulator().now() + 12.0);
  print_estimates(controller, *world, ubc, gdrive);
  steered_session(*world, controller, 50 * util::kMB);

  controller.stop();
  std::printf("\ndecision trace (deterministic; same seed => same bytes):\n");
  const std::string trace = controller.trace().serialize();
  // The full trace logs every probe; print just the steer/event lines.
  std::size_t start = 0;
  while (start < trace.size()) {
    std::size_t end = trace.find('\n', start);
    if (end == std::string::npos) end = trace.size();
    const std::string line = trace.substr(start, end - start);
    if (line.find("steer") != std::string::npos ||
        line.find("event") != std::string::npos) {
      std::printf("  %s\n", line.c_str());
    }
    start = end + 1;
  }
  std::printf("trace digest: %016llx\n",
              static_cast<unsigned long long>(controller.trace().fnv1a()));
  return 0;
}
