#include "scenario/science_dmz.h"

#include "check/contract.h"
#include "transfer/file_spec.h"
#include "util/units.h"

namespace droute::scenario {

ScienceDmzWorld::ScienceDmzWorld(const ScienceDmzConfig& config)
    : config_(config), routes_(&topo_) {}

std::unique_ptr<ScienceDmzWorld> ScienceDmzWorld::create(
    const ScienceDmzConfig& config) {
  std::unique_ptr<ScienceDmzWorld> world(
      new ScienceDmzWorld(config));  // lint: allow(raw-new) private ctor
  world->build();
  return world;
}

void ScienceDmzWorld::build() {
  net::Topology::Builder b;
  const net::AsId campus = b.add_as("Campus");
  const net::AsId wan = b.add_as("RegionalWAN");
  const net::AsId cloud_as = b.add_as("Cloud");
  b.relate(wan, campus, net::AsRelation::kCustomer);
  b.relate(wan, cloud_as, net::AsRelation::kPeer);

  const geo::Coord here{44.97, -93.23};   // Minneapolis, for flavour
  const geo::Coord there{41.88, -87.63};  // Chicago

  lab_host_ = b.add_host(campus, "lab-host.campus.edu", here, "Campus");
  firewall_ = b.add_router(campus, "fw1.campus.edu", here, "Campus");
  const auto core = b.add_router(campus, "core1.campus.edu", here, "Campus");
  const auto border = b.add_router(campus, "border.campus.edu", here,
                                   "Campus");
  dtn_ = b.add_host(campus, "dtn1.dmz.campus.edu", here, "Campus (DMZ)");
  const auto wan_rtr = b.add_router(wan, "cr1.regional-wan.net", there,
                                    "Chicago, IL");
  const auto cloud_edge = b.add_router(cloud_as, "edge.cloud.example", there,
                                       "Chicago, IL");
  front_ = b.add_host(cloud_as, "fe.cloud.example", there, "Chicago, IL",
                      "cloud");

  // The stateful firewall: every flow through it is inspection-limited.
  b.middlebox(firewall_, config_.firewall_per_flow_mbps);

  // Default path (min delay): lab -> fw -> core -> border at 0.15 ms total,
  // so ordinary traffic to the border never shortcuts through the DTN
  // (0.3 ms via the VLAN). The VLAN is still the cheapest way to reach the
  // DTN itself (0.2 ms direct vs 0.25 ms through the firewall), so the
  // detour's first leg is firewall-free — the whole point of the DMZ.
  b.add_duplex(lab_host_, firewall_, 1000, util::ms(0.05));
  b.add_duplex(firewall_, core, 1000, util::ms(0.05));
  b.add_duplex(core, border, 1000, util::ms(0.05));
  b.add_duplex(lab_host_, dtn_, config_.vlan_mbps, util::ms(0.2));
  b.add_duplex(dtn_, border, 1000, util::ms(0.1));
  // Campus uplink and cloud peering.
  b.add_duplex(border, wan_rtr, config_.uplink_mbps,
               geo::propagation_delay_s(here, there));
  b.add_duplex(wan_rtr, cloud_edge, 10000, util::ms(0.5));
  b.add_duplex(cloud_edge, front_, 10000, util::ms(0.2));

  auto built = std::move(b).build();
  DROUTE_CHECK(built.ok(), "science DMZ topology invalid");
  topo_ = std::move(built).value();
  routes_.invalidate();

  fabric_ = std::make_unique<net::Fabric>(&simulator_, &topo_, &routes_);
  server_ = std::make_unique<cloud::StorageServer>(
      cloud::ProviderKind::kGoogleDrive,
      cloud::default_profile(cloud::ProviderKind::kGoogleDrive));
  server_->set_clock([this] { return simulator_.now(); });
  api_ = std::make_unique<transfer::ApiUploadEngine>(fabric_.get(),
                                                     server_.get(), front_);
  detour_ = std::make_unique<transfer::DetourEngine>(fabric_.get(),
                                                     api_.get());
}

util::Result<double> ScienceDmzWorld::run_upload(Path path,
                                                 std::uint64_t bytes) {
  transfer::FileSpec file = transfer::make_file_mb(
      std::max<std::uint64_t>(1, bytes / util::kMB), ++upload_counter_);
  file.bytes = bytes;

  bool done = false;
  bool ok = false;
  std::string error;
  double elapsed = 0.0;
  if (path == Path::kThroughFirewall) {
    api_->upload(lab_host_, file, [&](const transfer::UploadResult& result) {
      done = true;
      ok = result.success;
      error = result.error;
      elapsed = result.duration_s();
    });
  } else {
    detour_->transfer(lab_host_, dtn_, file,
                      [&](const transfer::DetourResult& result) {
                        done = true;
                        ok = result.success;
                        error = result.error;
                        elapsed = result.duration_s();
                      });
  }
  while (!done && simulator_.step()) {
  }
  if (!done) return util::Error::make("upload did not finish");
  if (!ok) return util::Error::make(error);
  return elapsed;
}

}  // namespace droute::scenario
