// The calibrated North-America scenario: the paper's measurement world.
//
// Sites (Sec II): PlanetLab nodes at UBC (Vancouver), UMich (Ann Arbor),
// Purdue (West Lafayette), UCLA (Los Angeles); a non-PlanetLab cluster at
// UAlberta (Edmonton). Providers: Dropbox (Ashburn VA), Google Drive
// (Mountain View CA), OneDrive (Seattle WA).
//
// Calibration targets and the network causes behind them are documented in
// DESIGN.md §5; the headline artifacts are
//   * a per-flow policed PacificWave egress that PlanetLab-tagged traffic
//     from UBC is policy-routed onto toward Google (Figs 5/6),
//   * PlanetLab slice shaping at each PlanetLab site,
//   * congested commodity transit that Purdue's Google/OneDrive traffic is
//     policy-routed onto, with heavy-tailed cross traffic (Figs 7-9),
//   * a last-mile cap at UCLA (Figs 10/11).
//
// Every World is an independent simulation universe (own simulator, fabric,
// servers, cross-traffic RNG); measurement campaigns create one per run.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/provider.h"
#include "cloud/storage_server.h"
#include "ctrl/controller.h"
#include "measure/campaign.h"
#include "net/cross_traffic.h"
#include "net/fabric.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "trace/traceroute.h"
#include "transfer/api_download.h"
#include "transfer/api_upload.h"
#include "transfer/detour.h"
#include "transfer/detour_download.h"
#include "util/result.h"

namespace droute::scenario {

enum class Client { kUBC, kPurdue, kUCLA };
enum class Intermediate { kUAlberta, kUMich };
enum class RouteChoice { kDirect, kViaUAlberta, kViaUMich };

std::string client_name(Client client);
std::string intermediate_name(Intermediate node);
std::string route_name(RouteChoice route);
std::vector<Client> all_clients();
std::vector<RouteChoice> all_routes();

/// The paper's file sizes: 10, 20, 30, 40, 50, 60, 100 MB (decimal), Sec II.
std::vector<std::uint64_t> paper_file_sizes_bytes();

struct WorldConfig {
  std::uint64_t seed = 1;
  bool cross_traffic = true;
  /// Simulated seconds of cross-traffic warm-up before foreground transfers
  /// start, so congested links are in steady state.
  double warmup_s = 90.0;
  /// Coefficient of variation for per-run perturbation of shaper/policer
  /// rates (real rate limiters and slice shapers are never exact). Gives
  /// otherwise-deterministic routes (e.g. everything from UBC) the small
  /// run-to-run error bars the paper's figures show. 0 disables.
  double rate_jitter_cv = 0.02;
};

class World {
 public:
  /// Builds the full scenario. Never fails for the built-in topology
  /// (DROUTE_CHECKed); returned by pointer because internal components hold
  /// stable cross-references.
  static std::unique_ptr<World> create(const WorldConfig& config = {});

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  sim::Simulator& simulator() { return simulator_; }
  net::Topology& topology() { return topo_; }
  net::RouteTable& routes() { return routes_; }
  net::Fabric& fabric() { return *fabric_; }
  trace::Tracer& tracer() { return *tracer_; }
  const geo::Registry& registry() const { return topo_.registry(); }

  net::NodeId client_node(Client client) const;
  net::NodeId intermediate_node(Intermediate node) const;
  net::NodeId provider_node(cloud::ProviderKind kind) const;
  net::NodeId node(const std::string& name) const;

  cloud::StorageServer& server(cloud::ProviderKind kind);
  transfer::ApiUploadEngine& api_engine(cloud::ProviderKind kind);
  transfer::DetourEngine& detour_engine(cloud::ProviderKind kind);
  transfer::ApiDownloadEngine& download_engine(cloud::ProviderKind kind);
  transfer::DetourDownloadEngine& detour_download_engine(
      cloud::ProviderKind kind);

  /// Runs one complete upload (direct or detoured) of `bytes` from `client`
  /// to `provider`, including cross-traffic warm-up, and returns the elapsed
  /// transfer time in simulated seconds (excluding warm-up).
  [[nodiscard]] util::Result<double> run_upload(
      Client client, cloud::ProviderKind provider, RouteChoice route,
      std::uint64_t bytes,
      transfer::DetourMode mode = transfer::DetourMode::kStoreAndForward);

  /// Runs one complete *download* of an object already stored at the
  /// provider (staged beforehand by stage_object()), direct or detoured.
  /// Returns the download's elapsed simulated seconds.
  [[nodiscard]] util::Result<double> run_download(Client client,
                                    cloud::ProviderKind provider,
                                    RouteChoice route,
                                    const std::string& name);

  /// Stages an object at a provider without touching the measured client's
  /// paths (uploads from the UAlberta cluster); returns the object name.
  [[nodiscard]]
  util::Result<std::string> stage_object(cloud::ProviderKind provider,
                                         std::uint64_t bytes);

  /// Point-to-point file push via rsync only (used for TIV matrices and the
  /// intro's UBC->UAlberta measurement).
  [[nodiscard]] util::Result<double> run_rsync(const std::string& src_node,
                                 const std::string& dst_node,
                                 std::uint64_t bytes);

  /// Builds (and owns) an online controller wired to this world: the
  /// provider's front-end, every paper client, and both intermediates as
  /// candidate DTN relays. Call start() on the result to begin probing.
  ctrl::Controller& make_controller(cloud::ProviderKind provider,
                                    ctrl::ControllerConfig config = {});

  /// Runs one upload whose path is chosen by `steering` (a controller from
  /// make_controller, or a StaticSteering baseline). Unlike run_upload,
  /// cross-traffic sources keep running afterwards so a session sequence
  /// sees a live network.
  [[nodiscard]] util::Result<double> run_steered_upload(
      cloud::ProviderKind provider, ctrl::Steering& steering, Client client,
      std::uint64_t bytes);

 private:
  explicit World(const WorldConfig& config);
  void build_topology();
  void wire_services();
  void start_cross_traffic();
  void warm_up();

  WorldConfig config_;
  sim::Simulator simulator_;
  net::Topology topo_;
  net::RouteTable routes_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<trace::Tracer> tracer_;

  struct ProviderStack {
    std::unique_ptr<cloud::StorageServer> server;
    std::unique_ptr<transfer::ApiUploadEngine> api;
    std::unique_ptr<transfer::DetourEngine> detour;
    std::unique_ptr<transfer::ApiDownloadEngine> download;
    std::unique_ptr<transfer::DetourDownloadEngine> detour_download;
    net::NodeId front_node = net::kInvalidNode;
  };
  std::map<cloud::ProviderKind, ProviderStack> providers_;
  std::vector<std::unique_ptr<net::CrossTrafficSource>> cross_;
  // Declared after the fabric: controllers stop() (cancelling probe flows)
  // before the fabric and simulator are torn down.
  std::vector<std::unique_ptr<ctrl::Controller>> controllers_;
  std::map<std::string, net::NodeId> names_;
  bool warmed_up_ = false;
  std::uint64_t upload_counter_ = 0;
};

/// A measure::TransferFn that builds a fresh World per run (seeded by the
/// run seed) and executes the given combination.
measure::TransferFn make_transfer_fn(Client client,
                                     cloud::ProviderKind provider,
                                     RouteChoice route,
                                     WorldConfig base = {});

/// TransferFn for a raw point-to-point rsync between two named nodes.
measure::TransferFn make_rsync_fn(std::string src_node, std::string dst_node,
                                  WorldConfig base = {});

/// TransferFn measuring a *download* (object staged per run, then fetched
/// over the given route). The paper's protocol applies unchanged.
measure::TransferFn make_download_fn(Client client,
                                     cloud::ProviderKind provider,
                                     RouteChoice route, WorldConfig base = {});

}  // namespace droute::scenario
