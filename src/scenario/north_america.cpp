#include "scenario/north_america.h"

#include <utility>

#include "check/contract.h"
#include "cloud/oauth.h"
#include "geo/geo.h"
#include "sim/task.h"
#include "transfer/rsync_engine.h"
#include "transfer/steered.h"
#include "util/logging.h"
#include "util/units.h"

namespace droute::scenario {

namespace {

// --- Calibration constants (DESIGN.md §5 maps each to a paper number). ---

// PlanetLab per-slice shaping at each site (per-flow middlebox ceiling).
constexpr double kUbcSliceMbps = 44.0;     // UBC->UAlberta ~19 s / 100 MB
constexpr double kUmichSliceMbps = 75.0;   // UMich->GDrive fastest (~11.5 s)
constexpr double kPurdueSliceMbps = 4.9;   // Purdue->Dropbox ~178 s / 100 MB
constexpr double kUclaSliceMbps = 1.6;     // UCLA last mile (Figs 10/11)

// The policed PacificWave egress UBC's Google traffic is forced onto.
constexpr double kPacificWavePolicerMbps = 9.3;  // UBC->GDrive ~87 s / 100 MB

// The CANARIE -> Internet2 peering policer (PlanetLab-to-PlanetLab traffic
// from UBC toward Michigan crawls; Sec III-A "uploads from UBC to UMich are
// too slow").
constexpr double kCanarieI2PolicerMbps = 6.9;

// UAlberta research uplink (gsb-asr <-> Cybera).
constexpr double kUAlbertaUplinkMbps = 50.0;  // UAlberta->GDrive ~17 s

// Purdue's congested commodity links (Google, OneDrive) and campus egress.
// The Google transit runs near saturation under heavy-tailed cross traffic
// (foreground fair share ~1-1.5 Mbps -> Table III's ~750 s / 100 MB); the
// Microsoft transit is moderately loaded (~2-3 Mbps -> Fig 9's ~390 s).
constexpr double kPurdueGoogleTransitMbps = 6.0;
constexpr double kPurdueMsftTransitMbps = 7.5;
constexpr double kPurdueI2EgressMbps = 9.5;

// UCLA's commodity peering toward Internet2 is lossy (via-UMich drag).
constexpr double kCwI2Loss = 0.03;

constexpr double kWide = 10000.0;   // effectively-unconstrained backbone Mbps
constexpr double kCampus = 1000.0;  // campus LAN Mbps

constexpr double kForegroundDeadlineS = 36000.0;  // simulated-time safety cap

// Drives `task` to completion, bounded by `deadline_s` of simulated time.
// Returns false when the deadline (or event starvation) hit first; in that
// case the task is cancelled and the cancellation drained, so its frame has
// unwound (flows aborted, sessions released) before the caller returns.
template <typename R>
bool drive(sim::Simulator& simulator, sim::Task<R>& task, double deadline_s) {
  const double start = simulator.now();
  while (!task.done() && simulator.now() - start < deadline_s) {
    if (!simulator.step()) break;
  }
  if (task.done()) return true;
  task.cancel();
  while (!task.done() && simulator.step()) {
  }
  return false;
}

// Folds an engine task's join result into the campaign's Result<double>:
// Task-level errors (escaped exceptions, cancellation) and domain failures
// both surface as errors; success yields the transfer's elapsed seconds.
template <typename R>
util::Result<double> fold_elapsed(const util::Result<R>& joined) {
  if (!joined.ok()) return util::Error{joined.error()};
  if (!joined.value().success) return util::Error::make(joined.value().error);
  return joined.value().duration_s();
}

}  // namespace

std::string client_name(Client client) {
  switch (client) {
    case Client::kUBC:    return "UBC";
    case Client::kPurdue: return "Purdue";
    case Client::kUCLA:   return "UCLA";
  }
  return "?";
}

std::string intermediate_name(Intermediate node) {
  switch (node) {
    case Intermediate::kUAlberta: return "UAlberta";
    case Intermediate::kUMich:    return "UMich";
  }
  return "?";
}

std::string route_name(RouteChoice route) {
  switch (route) {
    case RouteChoice::kDirect:      return "Direct";
    case RouteChoice::kViaUAlberta: return "via UAlberta";
    case RouteChoice::kViaUMich:    return "via UMich";
  }
  return "?";
}

std::vector<Client> all_clients() {
  return {Client::kUBC, Client::kPurdue, Client::kUCLA};
}

std::vector<RouteChoice> all_routes() {
  return {RouteChoice::kDirect, RouteChoice::kViaUAlberta,
          RouteChoice::kViaUMich};
}

std::vector<std::uint64_t> paper_file_sizes_bytes() {
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t mb : {10, 20, 30, 40, 50, 60, 100}) {
    sizes.push_back(mb * util::kMB);
  }
  return sizes;
}

// ---------------------------------------------------------------------------

World::World(const WorldConfig& config)
    : config_(config), routes_(&topo_) {}

std::unique_ptr<World> World::create(const WorldConfig& config) {
  // Not make_unique: the constructor is private.
  std::unique_ptr<World> world(new World(config));  // lint: allow(raw-new)
  world->build_topology();
  world->wire_services();
  if (config.cross_traffic) world->start_cross_traffic();
  return world;
}

void World::build_topology() {
  using geo::Coord;
  net::Topology::Builder b;

  // Per-run perturbation of shaper/policer rates (see WorldConfig). Draws
  // happen in a fixed order, so a given seed always builds the same world.
  util::Rng jitter_rng(config_.seed * 0x9e3779b97f4a7c15ull + 0xfeedbeef);
  auto jit = [&](double rate_mbps) {
    return rate_mbps *
           jitter_rng.lognormal_mean_cv(1.0, config_.rate_jitter_cv);
  };

  // --- Autonomous systems -------------------------------------------------
  const net::AsId as_ubc = b.add_as("UBC");
  const net::AsId as_ua = b.add_as("UAlberta");
  const net::AsId as_umich = b.add_as("UMich");
  const net::AsId as_purdue = b.add_as("Purdue");
  const net::AsId as_ucla = b.add_as("UCLA");
  const net::AsId as_bcnet = b.add_as("BCnet");
  const net::AsId as_cybera = b.add_as("Cybera");
  const net::AsId as_canarie = b.add_as("CANARIE");
  const net::AsId as_pwave = b.add_as("PacificWave");
  const net::AsId as_i2 = b.add_as("Internet2");
  const net::AsId as_cw = b.add_as("CommodityWest");
  const net::AsId as_cg = b.add_as("CommodityG");
  const net::AsId as_cm = b.add_as("CommodityM");
  const net::AsId as_google = b.add_as("Google");
  const net::AsId as_dropbox = b.add_as("Dropbox");
  const net::AsId as_msft = b.add_as("Microsoft");

  // Gao-Rexford relationships. relate(a, b, rel) declares what b is to a.
  b.relate(as_bcnet, as_ubc, net::AsRelation::kCustomer);
  b.relate(as_canarie, as_bcnet, net::AsRelation::kCustomer);
  b.relate(as_cybera, as_ua, net::AsRelation::kCustomer);
  b.relate(as_canarie, as_cybera, net::AsRelation::kCustomer);
  b.relate(as_i2, as_umich, net::AsRelation::kCustomer);
  b.relate(as_i2, as_purdue, net::AsRelation::kCustomer);
  b.relate(as_cg, as_purdue, net::AsRelation::kCustomer);
  b.relate(as_cm, as_purdue, net::AsRelation::kCustomer);
  b.relate(as_cw, as_ucla, net::AsRelation::kCustomer);
  b.relate(as_canarie, as_i2, net::AsRelation::kPeer);
  b.relate(as_canarie, as_pwave, net::AsRelation::kPeer);
  b.relate(as_pwave, as_google, net::AsRelation::kPeer);
  b.relate(as_canarie, as_google, net::AsRelation::kPeer);
  b.relate(as_canarie, as_dropbox, net::AsRelation::kPeer);
  b.relate(as_canarie, as_msft, net::AsRelation::kPeer);
  b.relate(as_i2, as_google, net::AsRelation::kPeer);
  b.relate(as_i2, as_dropbox, net::AsRelation::kPeer);
  b.relate(as_i2, as_msft, net::AsRelation::kPeer);
  b.relate(as_cw, as_google, net::AsRelation::kPeer);
  b.relate(as_cw, as_dropbox, net::AsRelation::kPeer);
  b.relate(as_cw, as_msft, net::AsRelation::kPeer);
  b.relate(as_cw, as_i2, net::AsRelation::kPeer);
  b.relate(as_cw, as_canarie, net::AsRelation::kPeer);
  b.relate(as_cg, as_google, net::AsRelation::kPeer);
  b.relate(as_cm, as_msft, net::AsRelation::kPeer);

  // --- Locations ----------------------------------------------------------
  const Coord vancouver{49.26, -123.25};
  const Coord edmonton{53.52, -113.52};
  const Coord ann_arbor{42.29, -83.72};
  const Coord west_lafayette{40.43, -86.92};
  const Coord los_angeles{34.07, -118.44};
  const Coord seattle{47.61, -122.33};
  const Coord mountain_view{37.42, -122.08};
  const Coord ashburn{39.04, -77.49};
  const Coord chicago{41.88, -87.63};
  const Coord denver{39.74, -104.99};

  // --- UBC (Fig 5's hop names) --------------------------------------------
  const auto ubc_pl = b.add_host(as_ubc, "planetlab1.cs.ubc.ca", vancouver,
                                 "Vancouver, BC", "planetlab");
  const auto ubc_gw = b.add_router(as_ubc, "cs-gw.net.ubc.ca", vancouver,
                                   "Vancouver, BC");
  const auto ubc_a0 = b.add_router(as_ubc, "a0-a1.net.ubc.ca", vancouver,
                                   "Vancouver, BC");
  const auto ubc_border = b.add_router(as_ubc, "anguborder-a0.net.ubc.ca",
                                       vancouver, "Vancouver, BC");
  b.middlebox(ubc_gw, jit(kUbcSliceMbps));  // PlanetLab slice shaping
  b.add_duplex(ubc_pl, ubc_gw, kCampus, util::ms(0.2));
  b.add_duplex(ubc_gw, ubc_a0, kWide, util::ms(0.2));
  b.add_duplex(ubc_a0, ubc_border, kWide, util::ms(0.2));

  // --- BCnet --------------------------------------------------------------
  const auto bcnet = b.add_router(as_bcnet, "345-IX-cr1-UBCAb.vncv1.BC.net",
                                  vancouver, "Vancouver, BC");
  b.add_duplex(ubc_border, bcnet, kWide, util::ms(0.3));

  // --- CANARIE ------------------------------------------------------------
  const auto vncv1 = b.add_router(as_canarie, "vncv1rtr2.canarie.ca",
                                  vancouver, "Vancouver, BC");
  const auto edmn1 = b.add_router(as_canarie, "edmn1rtr2.canarie.ca",
                                  edmonton, "Edmonton, AB");
  b.add_duplex(bcnet, vncv1, kWide, util::ms(0.4));
  b.add_duplex_geo(vncv1, edmn1, kWide);

  // --- UAlberta + Cybera (Fig 6's hop names) -------------------------------
  const auto ua_cluster = b.add_host(as_ua, "cluster.cs.ualberta.ca",
                                     edmonton, "Edmonton, AB");
  const auto ua_fw = b.add_router(as_ua, "ww-fw.cs.ualberta.ca", edmonton,
                                  "Edmonton, AB");
  const auto ua_priv = b.add_router(as_ua, "172-26-244-22.priv.ualberta.ca",
                                    edmonton, "Edmonton, AB");
  const auto ua_core = b.add_router(as_ua, "core1-sc.backbone.ualberta.ca",
                                    edmonton, "Edmonton, AB");
  const auto ua_gsb = b.add_router(as_ua, "gsb-asr-core1.backbone.ualberta.ca",
                                   edmonton, "Edmonton, AB");
  const auto cybera = b.add_router(as_cybera, "uofa-p-1-edm.cybera.ca",
                                   edmonton, "Edmonton, AB");
  b.add_duplex(ua_cluster, ua_fw, kCampus, util::ms(0.1));
  b.add_duplex(ua_fw, ua_priv, kWide, util::ms(0.1));
  b.add_duplex(ua_priv, ua_core, kWide, util::ms(0.1));
  b.add_duplex(ua_core, ua_gsb, kWide, util::ms(0.1));
  b.add_duplex(ua_gsb, cybera, jit(kUAlbertaUplinkMbps), util::ms(0.3));
  b.add_duplex(cybera, edmn1, kWide, util::ms(0.2));

  // --- Internet2 ----------------------------------------------------------
  const auto i2_chi = b.add_router(as_i2, "et-1-1-5.4079.core1.chic.net.internet2.edu",
                                   chicago, "Chicago, IL");
  // CANARIE <-> Internet2 peering; the CANARIE->I2 direction carries the
  // per-flow policer behind the UBC->UMich crawl.
  b.add_link(vncv1, i2_chi, kWide,
             geo::propagation_delay_s(vancouver, chicago),
             {.loss_rate = 0.0,
              .policer_per_flow_mbps = jit(kCanarieI2PolicerMbps)});
  b.add_link(i2_chi, vncv1, kWide,
             geo::propagation_delay_s(vancouver, chicago));

  // --- UMich --------------------------------------------------------------
  const auto umich_pl = b.add_host(as_umich, "planetlab01.eecs.umich.edu",
                                   ann_arbor, "Ann Arbor, MI", "planetlab");
  const auto umich_gw = b.add_router(as_umich, "pl-gw.umich.edu", ann_arbor,
                                     "Ann Arbor, MI");
  const auto umich_border = b.add_router(as_umich, "bin-arb.umich.edu",
                                         ann_arbor, "Ann Arbor, MI");
  b.middlebox(umich_gw, jit(kUmichSliceMbps));
  b.add_duplex(umich_pl, umich_gw, kCampus, util::ms(0.2));
  b.add_duplex(umich_gw, umich_border, kWide, util::ms(0.2));
  b.add_duplex_geo(umich_border, i2_chi, kWide);

  // --- Purdue -------------------------------------------------------------
  const auto purdue_pl = b.add_host(as_purdue, "planetlab1.cs.purdue.edu",
                                    west_lafayette, "West Lafayette, IN",
                                    "planetlab");
  const auto purdue_gw = b.add_router(as_purdue, "pl-gw.purdue.edu",
                                      west_lafayette, "West Lafayette, IN");
  const auto purdue_border = b.add_router(as_purdue, "tel-210.purdue.edu",
                                          west_lafayette, "West Lafayette, IN");
  b.middlebox(purdue_gw, jit(kPurdueSliceMbps));
  b.add_duplex(purdue_pl, purdue_gw, kCampus, util::ms(0.2));
  b.add_duplex(purdue_gw, purdue_border, kWide, util::ms(0.2));
  // Campus egress to Internet2: modest capacity shared with cross traffic.
  b.add_duplex(purdue_border, i2_chi, jit(kPurdueI2EgressMbps),
               geo::propagation_delay_s(west_lafayette, chicago));

  // --- Purdue's commodity transits (congested; Figs 7-9) -------------------
  const auto cg_rtr = b.add_router(as_cg, "ae-3.cr1.commodity-g.net", chicago,
                                   "Chicago, IL");
  const auto cm_rtr = b.add_router(as_cm, "ae-7.cr2.commodity-m.net", denver,
                                   "Denver, CO");
  b.add_duplex(purdue_border, cg_rtr, jit(kPurdueGoogleTransitMbps),
               geo::propagation_delay_s(west_lafayette, chicago));
  b.add_duplex(purdue_border, cm_rtr, jit(kPurdueMsftTransitMbps),
               geo::propagation_delay_s(west_lafayette, denver));

  // --- UCLA + CommodityWest ------------------------------------------------
  const auto ucla_pl = b.add_host(as_ucla, "planetlab1.ucla.edu", los_angeles,
                                  "Los Angeles, CA", "planetlab");
  const auto ucla_gw = b.add_router(as_ucla, "pl-gw.ucla.edu", los_angeles,
                                    "Los Angeles, CA");
  const auto ucla_border = b.add_router(as_ucla, "border.ucla.edu",
                                        los_angeles, "Los Angeles, CA");
  const auto cw_rtr = b.add_router(as_cw, "lax1.cr1.commodity-west.net",
                                   los_angeles, "Los Angeles, CA");
  b.middlebox(ucla_gw, jit(kUclaSliceMbps));
  b.add_duplex(ucla_pl, ucla_gw, kCampus, util::ms(0.2));
  b.add_duplex(ucla_gw, ucla_border, kWide, util::ms(0.2));
  b.add_duplex(ucla_border, cw_rtr, kWide, util::ms(0.3));
  // Lossy commodity<->research peering (drags UCLA's via-UMich detour).
  b.add_link(cw_rtr, i2_chi, kWide,
             geo::propagation_delay_s(los_angeles, chicago),
             {.loss_rate = kCwI2Loss, .policer_per_flow_mbps = 0.0});
  b.add_link(i2_chi, cw_rtr, kWide,
             geo::propagation_delay_s(los_angeles, chicago));
  b.add_duplex(cw_rtr, vncv1, kWide,
               geo::propagation_delay_s(los_angeles, vancouver));

  // --- PacificWave + Google (Figs 5/6) -------------------------------------
  const auto pwave = b.add_router(
      as_pwave, "google-1-lo-std-707.sttlwa.pacificwave.net", seattle,
      "Seattle, WA");
  const auto g_unknown = b.add_router(as_google, "peering-edge.google.com",
                                      seattle, "Seattle, WA");
  const auto g_bb1 = b.add_router(as_google, "209-85-249-32.google.com",
                                  seattle, "Seattle, WA");
  const auto g_bb2 = b.add_router(as_google, "216-239-51-159.google.com",
                                  mountain_view, "Mountain View, CA");
  const auto g_fe = b.add_host(as_google, "sea15s01-in-f138.1e100.net",
                               mountain_view, "Mountain View, CA", "cloud");
  // The policed PacificWave egress (per-flow rate limit).
  b.add_link(vncv1, pwave, kWide,
             geo::propagation_delay_s(vancouver, seattle),
             {.loss_rate = 0.0,
              .policer_per_flow_mbps = jit(kPacificWavePolicerMbps)});
  // The return direction is policed symmetrically: the paper measured
  // uploads only, but the rate-limited-middlebox hypothesis (Sec III-D)
  // applies to the hop, not a direction, so downloads suffer equally.
  b.add_link(pwave, vncv1, kWide,
             geo::propagation_delay_s(vancouver, seattle),
             {.loss_rate = 0.0,
              .policer_per_flow_mbps = jit(kPacificWavePolicerMbps)});
  b.add_duplex(pwave, g_bb1, kWide, util::ms(0.3));
  // The direct CANARIE<->Google peering (Fig 6's "* * *" hop).
  b.add_duplex(vncv1, g_unknown, kWide,
               geo::propagation_delay_s(vancouver, seattle));
  b.add_duplex(g_unknown, g_bb1, kWide, util::ms(0.2));
  b.add_duplex_geo(g_bb1, g_bb2, kWide);
  b.add_duplex(g_bb2, g_fe, kWide, util::ms(0.2));
  // Internet2 and CommodityWest / CommodityG peer with Google in Seattle.
  b.add_duplex_geo(i2_chi, g_bb1, kWide);
  b.add_duplex_geo(cw_rtr, g_bb1, kWide);
  b.add_duplex_geo(cg_rtr, g_bb1, kWide);

  // --- Dropbox (Ashburn, VA) ------------------------------------------------
  const auto db_edge = b.add_router(as_dropbox, "edge1.iad.dropbox.com",
                                    ashburn, "Ashburn, VA");
  const auto db_fe = b.add_host(as_dropbox, "content.dropboxapi.com", ashburn,
                                "Ashburn, VA", "cloud");
  b.add_duplex(db_edge, db_fe, kWide, util::ms(0.2));
  b.add_duplex_geo(vncv1, db_edge, kWide);
  b.add_duplex_geo(i2_chi, db_edge, kWide);
  b.add_duplex_geo(cw_rtr, db_edge, kWide);

  // --- Microsoft / OneDrive (Seattle, WA) ------------------------------------
  const auto ms_edge = b.add_router(as_msft, "msedge1.sea.microsoft.com",
                                    seattle, "Seattle, WA");
  const auto ms_fe = b.add_host(as_msft, "onedrive-fe.wns.windows.com",
                                seattle, "Seattle, WA", "cloud");
  b.add_duplex(ms_edge, ms_fe, kWide, util::ms(0.2));
  b.add_duplex_geo(vncv1, ms_edge, kWide);
  b.add_duplex_geo(i2_chi, ms_edge, kWide);
  b.add_duplex_geo(cw_rtr, ms_edge, kWide);
  b.add_duplex_geo(cm_rtr, ms_edge, kWide);

  // --- Cross-traffic endpoints ----------------------------------------------
  const auto xgen = b.add_host(as_purdue, "xgen.cc.purdue.edu",
                               west_lafayette, "West Lafayette, IN",
                               "xtraffic");
  const auto xsink_g = b.add_host(as_cg, "xsink.commodity-g.net", chicago,
                                  "Chicago, IL", "xtraffic");
  const auto xsink_m = b.add_host(as_cm, "xsink.commodity-m.net", denver,
                                  "Denver, CO", "xtraffic");
  const auto xsink_i2 = b.add_host(as_i2, "xsink.internet2.edu", chicago,
                                   "Chicago, IL", "xtraffic");
  b.add_duplex(xgen, purdue_border, kCampus, util::ms(0.1));
  b.add_duplex(xsink_g, cg_rtr, kCampus, util::ms(0.1));
  b.add_duplex(xsink_m, cm_rtr, kCampus, util::ms(0.1));
  b.add_duplex(xsink_i2, i2_chi, kCampus, util::ms(0.1));

  auto built = std::move(b).build();
  DROUTE_CHECK(built.ok(), "scenario topology invalid: " +
                               (built.ok() ? "" : built.error().message));
  topo_ = std::move(built).value();
  routes_.invalidate();

  for (std::size_t i = 0; i < topo_.node_count(); ++i) {
    names_[topo_.node(static_cast<net::NodeId>(i)).name] =
        static_cast<net::NodeId>(i);
  }

  // --- Policy-routing overrides (the paper's central artifact) -------------
  // PlanetLab traffic from UBC toward Google leaves CANARIE via the policed
  // PacificWave hop instead of the direct peering (Fig 5 vs Fig 6).
  {
    net::EgressOverride ov;
    ov.at = vncv1;
    ov.src_tag = "planetlab";
    ov.dst_as = as_google;
    ov.use_link = topo_.find_link(vncv1, pwave).value();
    routes_.add_override(ov);
  }
  // Purdue's PlanetLab traffic to Google and OneDrive rides congested
  // commodity transit rather than Internet2.
  {
    net::EgressOverride ov;
    ov.at = purdue_border;
    ov.src_tag = "planetlab";
    ov.dst_as = as_google;
    ov.use_link = topo_.find_link(purdue_border, cg_rtr).value();
    routes_.add_override(ov);
  }
  {
    net::EgressOverride ov;
    ov.at = purdue_border;
    ov.src_tag = "planetlab";
    ov.dst_as = as_msft;
    ov.use_link = topo_.find_link(purdue_border, cm_rtr).value();
    routes_.add_override(ov);
  }
  // Return-path symmetry for downloads: PlanetLab-prefix-destined traffic
  // leaving the providers takes the mirror-image of the problem paths.
  {
    net::EgressOverride ov;
    ov.at = node("209-85-249-32.google.com");
    ov.src_tag = "cloud";
    ov.dst_as = as_ubc;
    ov.use_link =
        topo_.find_link(node("209-85-249-32.google.com"),
                        node("google-1-lo-std-707.sttlwa.pacificwave.net"))
            .value();
    routes_.add_override(ov);
  }
  {
    net::EgressOverride ov;
    ov.at = node("209-85-249-32.google.com");
    ov.src_tag = "cloud";
    ov.dst_as = as_purdue;
    ov.use_link = topo_.find_link(node("209-85-249-32.google.com"),
                                  node("ae-3.cr1.commodity-g.net"))
                      .value();
    routes_.add_override(ov);
  }
  {
    net::EgressOverride ov;
    ov.at = node("msedge1.sea.microsoft.com");
    ov.src_tag = "cloud";
    ov.dst_as = as_purdue;
    ov.use_link = topo_.find_link(node("msedge1.sea.microsoft.com"),
                                  node("ae-7.cr2.commodity-m.net"))
                      .value();
    routes_.add_override(ov);
  }
}

void World::wire_services() {
  fabric_ = std::make_unique<net::Fabric>(&simulator_, &topo_, &routes_);
  tracer_ = std::make_unique<trace::Tracer>(&topo_, &routes_);
  // The unknown hops of Figs 5/6: Google's peering edge and UAlberta's
  // private middle hop do not answer traceroute probes.
  tracer_->set_silent(node("peering-edge.google.com"));
  tracer_->set_silent(node("172-26-244-22.priv.ualberta.ca"));

  const std::map<cloud::ProviderKind, std::string> fronts = {
      {cloud::ProviderKind::kGoogleDrive, "sea15s01-in-f138.1e100.net"},
      {cloud::ProviderKind::kDropbox, "content.dropboxapi.com"},
      {cloud::ProviderKind::kOneDrive, "onedrive-fe.wns.windows.com"},
  };
  for (const auto& [kind, front] : fronts) {
    ProviderStack stack;
    stack.front_node = node(front);
    stack.server = std::make_unique<cloud::StorageServer>(
        kind, cloud::default_profile(kind));
    stack.server->set_clock([this] { return simulator_.now(); });
    stack.api = std::make_unique<transfer::ApiUploadEngine>(
        fabric_.get(), stack.server.get(), stack.front_node);
    stack.detour = std::make_unique<transfer::DetourEngine>(fabric_.get(),
                                                            stack.api.get());
    stack.download = std::make_unique<transfer::ApiDownloadEngine>(
        fabric_.get(), stack.server.get(), stack.front_node);
    stack.detour_download = std::make_unique<transfer::DetourDownloadEngine>(
        fabric_.get(), stack.download.get());
    providers_.emplace(kind, std::move(stack));
  }
}

void World::start_cross_traffic() {
  util::Rng rng(config_.seed);
  const net::NodeId xgen = node("xgen.cc.purdue.edu");

  // Heavy: saturates the Purdue->Google commodity transit (Fig 7).
  {
    net::CrossTrafficProfile profile;
    profile.mean_interarrival_s = 2.6;
    profile.pareto_alpha = 1.2;
    profile.min_bytes = 400 * util::kKB;
    profile.max_bytes = 48 * util::kMB;
    cross_.push_back(std::make_unique<net::CrossTrafficSource>(
        fabric_.get(), xgen, node("xsink.commodity-g.net"), profile,
        rng.fork(1)));
  }
  // Medium: Purdue->OneDrive transit (Fig 9).
  {
    net::CrossTrafficProfile profile;
    profile.mean_interarrival_s = 2.4;
    profile.pareto_alpha = 1.25;
    profile.min_bytes = 400 * util::kKB;
    profile.max_bytes = 40 * util::kMB;
    cross_.push_back(std::make_unique<net::CrossTrafficSource>(
        fabric_.get(), xgen, node("xsink.commodity-m.net"), profile,
        rng.fork(2)));
  }
  // Light: Purdue campus egress to Internet2 (Fig 8's jitter and the
  // detour legs' variance).
  {
    net::CrossTrafficProfile profile;
    profile.mean_interarrival_s = 2.6;
    profile.pareto_alpha = 1.25;
    profile.min_bytes = 250 * util::kKB;
    profile.max_bytes = 32 * util::kMB;
    cross_.push_back(std::make_unique<net::CrossTrafficSource>(
        fabric_.get(), xgen, node("xsink.internet2.edu"), profile,
        rng.fork(3)));
  }
  // Downloads cross the commodity links in the opposite direction; give
  // those directions their own (lighter) background load.
  {
    net::CrossTrafficProfile profile;
    profile.mean_interarrival_s = 3.2;
    profile.pareto_alpha = 1.2;
    profile.min_bytes = 400 * util::kKB;
    profile.max_bytes = 48 * util::kMB;
    cross_.push_back(std::make_unique<net::CrossTrafficSource>(
        fabric_.get(), node("xsink.commodity-g.net"), xgen, profile,
        rng.fork(4)));
  }
  {
    net::CrossTrafficProfile profile;
    profile.mean_interarrival_s = 3.2;
    profile.pareto_alpha = 1.25;
    profile.min_bytes = 400 * util::kKB;
    profile.max_bytes = 40 * util::kMB;
    cross_.push_back(std::make_unique<net::CrossTrafficSource>(
        fabric_.get(), node("xsink.commodity-m.net"), xgen, profile,
        rng.fork(5)));
  }
  for (auto& source : cross_) source->start();
}

void World::warm_up() {
  if (warmed_up_) return;
  warmed_up_ = true;
  if (config_.cross_traffic && config_.warmup_s > 0.0) {
    simulator_.run_until(simulator_.now() + config_.warmup_s);
  }
}

net::NodeId World::node(const std::string& name) const {
  const auto it = names_.find(name);
  DROUTE_CHECK(it != names_.end(), "unknown scenario node: " + name);
  return it->second;
}

net::NodeId World::client_node(Client client) const {
  switch (client) {
    case Client::kUBC:    return node("planetlab1.cs.ubc.ca");
    case Client::kPurdue: return node("planetlab1.cs.purdue.edu");
    case Client::kUCLA:   return node("planetlab1.ucla.edu");
  }
  DROUTE_CHECK(false, "bad client");
  return net::kInvalidNode;
}

net::NodeId World::intermediate_node(Intermediate inter) const {
  switch (inter) {
    case Intermediate::kUAlberta: return node("cluster.cs.ualberta.ca");
    case Intermediate::kUMich:    return node("planetlab01.eecs.umich.edu");
  }
  DROUTE_CHECK(false, "bad intermediate");
  return net::kInvalidNode;
}

net::NodeId World::provider_node(cloud::ProviderKind kind) const {
  return providers_.at(kind).front_node;
}

cloud::StorageServer& World::server(cloud::ProviderKind kind) {
  return *providers_.at(kind).server;
}

transfer::ApiUploadEngine& World::api_engine(cloud::ProviderKind kind) {
  return *providers_.at(kind).api;
}

transfer::DetourEngine& World::detour_engine(cloud::ProviderKind kind) {
  return *providers_.at(kind).detour;
}

transfer::ApiDownloadEngine& World::download_engine(cloud::ProviderKind kind) {
  return *providers_.at(kind).download;
}

transfer::DetourDownloadEngine& World::detour_download_engine(
    cloud::ProviderKind kind) {
  return *providers_.at(kind).detour_download;
}

util::Result<std::string> World::stage_object(cloud::ProviderKind provider,
                                              std::uint64_t bytes) {
  warm_up();
  transfer::FileSpec file = transfer::make_file_mb(
      std::max<std::uint64_t>(1, bytes / util::kMB),
      config_.seed ^ ++upload_counter_ ^ 0x57a6e);
  file.bytes = bytes;

  auto task = api_engine(provider).upload_task(
      intermediate_node(Intermediate::kUAlberta), file);
  if (!drive(simulator_, task, kForegroundDeadlineS)) {
    return util::Error::make("stage_object failed: ");
  }
  const auto& joined = task.result();
  if (!joined.ok()) {
    return util::Error::make("stage_object failed: " + joined.error().message);
  }
  if (!joined.value().success) {
    return util::Error::make("stage_object failed: " + joined.value().error);
  }
  return file.name;
}

util::Result<double> World::run_download(Client client,
                                         cloud::ProviderKind provider,
                                         RouteChoice route,
                                         const std::string& name) {
  warm_up();
  const net::NodeId dst = client_node(client);
  util::Result<double> elapsed =
      util::Error::make("download did not finish (deadline)");

  if (route == RouteChoice::kDirect) {
    auto task = download_engine(provider).download_task(dst, name);
    if (drive(simulator_, task, kForegroundDeadlineS)) {
      elapsed = fold_elapsed(task.result());
    }
  } else {
    const net::NodeId via = intermediate_node(
        route == RouteChoice::kViaUAlberta ? Intermediate::kUAlberta
                                           : Intermediate::kUMich);
    auto task = detour_download_engine(provider).download_task(dst, via, name);
    if (drive(simulator_, task, kForegroundDeadlineS)) {
      elapsed = fold_elapsed(task.result());
    }
  }
  for (auto& source : cross_) source->stop();
  return elapsed;
}

util::Result<double> World::run_upload(Client client,
                                       cloud::ProviderKind provider,
                                       RouteChoice route, std::uint64_t bytes,
                                       transfer::DetourMode mode) {
  warm_up();
  const net::NodeId src = client_node(client);
  const transfer::FileSpec file = transfer::make_file_mb(
      bytes / util::kMB == 0 ? 1 : bytes / util::kMB,
      config_.seed ^ ++upload_counter_);
  transfer::FileSpec sized = file;
  sized.bytes = bytes;  // honor exact byte counts (not only whole MB)

  util::Result<double> elapsed =
      util::Error::make("transfer did not finish (deadline)");

  if (route == RouteChoice::kDirect) {
    auto task = api_engine(provider).upload_task(src, sized);
    if (drive(simulator_, task, kForegroundDeadlineS)) {
      elapsed = fold_elapsed(task.result());
    }
  } else {
    const net::NodeId via = intermediate_node(
        route == RouteChoice::kViaUAlberta ? Intermediate::kUAlberta
                                           : Intermediate::kUMich);
    transfer::DetourOptions options;
    options.mode = mode;
    auto task = detour_engine(provider).transfer_task(src, via, sized, options);
    if (drive(simulator_, task, kForegroundDeadlineS)) {
      elapsed = fold_elapsed(task.result());
    }
  }
  for (auto& source : cross_) source->stop();
  return elapsed;
}

util::Result<double> World::run_rsync(const std::string& src_node,
                                      const std::string& dst_node,
                                      std::uint64_t bytes) {
  warm_up();
  transfer::RsyncEngine engine(fabric_.get());
  transfer::FileSpec file = transfer::make_file_mb(1, config_.seed);
  file.bytes = bytes;

  util::Result<double> elapsed =
      util::Error::make("rsync did not finish (deadline)");
  auto task = engine.push_task(node(src_node), node(dst_node), file);
  if (drive(simulator_, task, kForegroundDeadlineS)) {
    elapsed = fold_elapsed(task.result());
  }
  for (auto& source : cross_) source->stop();
  return elapsed;
}

ctrl::Controller& World::make_controller(cloud::ProviderKind provider,
                                         ctrl::ControllerConfig config) {
  auto controller = std::make_unique<ctrl::Controller>(simulator_, *fabric_,
                                                       routes_, config);
  controller->set_provider(provider_node(provider));
  for (const Client client : all_clients()) {
    controller->add_client(client_node(client));
  }
  controller->add_relay(intermediate_node(Intermediate::kUAlberta));
  controller->add_relay(intermediate_node(Intermediate::kUMich));
  controllers_.push_back(std::move(controller));
  return *controllers_.back();
}

util::Result<double> World::run_steered_upload(cloud::ProviderKind provider,
                                               ctrl::Steering& steering,
                                               Client client,
                                               std::uint64_t bytes) {
  warm_up();
  const net::NodeId src = client_node(client);
  transfer::FileSpec file = transfer::make_file_mb(
      bytes / util::kMB == 0 ? 1 : bytes / util::kMB,
      config_.seed ^ ++upload_counter_);
  file.bytes = bytes;

  transfer::SteeredUploadEngine engine(fabric_.get(), &api_engine(provider),
                                       &steering);
  util::Result<double> elapsed =
      util::Error::make("steered upload did not finish (deadline)");
  auto task = engine.upload_task(src, file);
  if (drive(simulator_, task, kForegroundDeadlineS)) {
    elapsed = fold_elapsed(task.result());
  }
  return elapsed;
}

measure::TransferFn make_transfer_fn(Client client,
                                     cloud::ProviderKind provider,
                                     RouteChoice route, WorldConfig base) {
  return [=](std::uint64_t bytes, std::uint64_t run_seed)
             -> util::Result<double> {
    WorldConfig config = base;
    config.seed = run_seed;
    auto world = World::create(config);
    return world->run_upload(client, provider, route, bytes);
  };
}

measure::TransferFn make_download_fn(Client client,
                                     cloud::ProviderKind provider,
                                     RouteChoice route, WorldConfig base) {
  return [=](std::uint64_t bytes, std::uint64_t run_seed)
             -> util::Result<double> {
    WorldConfig config = base;
    config.seed = run_seed;
    auto world = World::create(config);
    auto name = world->stage_object(provider, bytes);
    if (!name.ok()) return util::Error{name.error()};
    return world->run_download(client, provider, route, name.value());
  };
}

measure::TransferFn make_rsync_fn(std::string src_node, std::string dst_node,
                                  WorldConfig base) {
  return [src = std::move(src_node), dst = std::move(dst_node), base](
             std::uint64_t bytes,
             std::uint64_t run_seed) -> util::Result<double> {
    WorldConfig config = base;
    config.seed = run_seed;
    auto world = World::create(config);
    return world->run_rsync(src, dst, bytes);
  };
}

}  // namespace droute::scenario
