// The Science-DMZ scenario — the paper's other motivating design pattern
// (Dart et al. [2], cited in Sec I) and its stated future work: "expand the
// functionality of our routing detours to deal with firewall bottlenecks
// (like Science DMZ)".
//
// A campus where ordinary hosts sit behind a stateful firewall whose
// per-flow inspection throughput is far below the WAN capacity. The campus
// operates a DTN in a Science DMZ — a parallel enclave attached directly to
// the border router, bypassing the firewall. Bulk transfers therefore have
// two paths to the cloud front end:
//
//   direct:  lab host -> firewall (per-flow middlebox) -> border -> WAN
//   detour:  lab host -> (intra-campus, firewall-free research VLAN) -> DTN
//            -> border -> WAN     (the Science-DMZ pattern = a routing
//                                  detour whose intermediate is on-campus)
//
// Unlike the North-America scenario the inefficiency here is entirely
// self-inflicted and static — no policy overrides, no cross traffic — which
// isolates the middlebox mechanism for ablation.
#pragma once

#include <memory>
#include <string>

#include "cloud/provider.h"
#include "cloud/storage_server.h"
#include "net/fabric.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "transfer/api_upload.h"
#include "transfer/detour.h"
#include "util/result.h"

namespace droute::scenario {

struct ScienceDmzConfig {
  /// Stateful-inspection ceiling per flow (the firewall bottleneck).
  double firewall_per_flow_mbps = 6.0;
  /// Campus uplink capacity (shared by DMZ and firewalled traffic).
  double uplink_mbps = 1000.0;
  /// Research VLAN capacity between lab hosts and the DTN.
  double vlan_mbps = 1000.0;
};

class ScienceDmzWorld {
 public:
  static std::unique_ptr<ScienceDmzWorld> create(
      const ScienceDmzConfig& config = {});

  ScienceDmzWorld(const ScienceDmzWorld&) = delete;
  ScienceDmzWorld& operator=(const ScienceDmzWorld&) = delete;

  sim::Simulator& simulator() { return simulator_; }
  net::Topology& topology() { return topo_; }
  net::Fabric& fabric() { return *fabric_; }
  cloud::StorageServer& server() { return *server_; }

  net::NodeId lab_host() const { return lab_host_; }
  net::NodeId dtn() const { return dtn_; }
  net::NodeId firewall() const { return firewall_; }

  /// Uploads `bytes` from the lab host to the cloud front end, directly
  /// (through the firewall) or via the DMZ DTN.
  enum class Path { kThroughFirewall, kViaDtn };
  [[nodiscard]] util::Result<double> run_upload(Path path, std::uint64_t bytes);

 private:
  explicit ScienceDmzWorld(const ScienceDmzConfig& config);
  void build();

  ScienceDmzConfig config_;
  sim::Simulator simulator_;
  net::Topology topo_;
  net::RouteTable routes_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<cloud::StorageServer> server_;
  std::unique_ptr<transfer::ApiUploadEngine> api_;
  std::unique_ptr<transfer::DetourEngine> detour_;
  net::NodeId lab_host_ = net::kInvalidNode;
  net::NodeId dtn_ = net::kInvalidNode;
  net::NodeId firewall_ = net::kInvalidNode;
  net::NodeId front_ = net::kInvalidNode;
  std::uint64_t upload_counter_ = 0;
};

}  // namespace droute::scenario
