// Geographic primitives: WGS-84-ish coordinates, great-circle distance,
// fiber propagation delay, and detour/backtracking metrics.
//
// These back Fig 3 (the location map), the "geographic detour" analysis of
// Sec III-A, and the propagation-delay component of simulated links.
#pragma once

#include <string>

namespace droute::geo {

/// Latitude/longitude in degrees. North and east positive.
struct Coord {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Mean Earth radius (km), spherical model.
inline constexpr double kEarthRadiusKm = 6371.0;

/// Speed of light in fiber, km/s (refractive index ~1.47).
inline constexpr double kFiberKmPerSec = 204000.0;

/// Great-circle distance between two coordinates, in kilometres.
double haversine_km(const Coord& a, const Coord& b);

/// One-way propagation delay (seconds) along a great-circle fiber run with a
/// route-inflation factor (real fiber never follows the geodesic; 1.6 is a
/// conventional inflation for terrestrial paths).
double propagation_delay_s(const Coord& a, const Coord& b,
                           double inflation = 1.6);

/// Detour ratio of path a->via->b relative to the geodesic a->b.
/// 1.0 means no geographic detour; UBC->UAlberta->MountainView is ~1.9.
double detour_ratio(const Coord& a, const Coord& via, const Coord& b);

/// Extra kilometres travelled by a->via->b compared with a->b.
double backtrack_km(const Coord& a, const Coord& via, const Coord& b);

/// Compact "49.26N 123.25W" rendering for tables and maps.
std::string to_string(const Coord& coord);

}  // namespace droute::geo
