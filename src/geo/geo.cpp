#include "geo/geo.h"

#include <cmath>
#include <cstdio>

namespace droute::geo {

namespace {
constexpr double kPi = 3.14159265358979323846;
double deg2rad(double deg) { return deg * kPi / 180.0; }
}  // namespace

double haversine_km(const Coord& a, const Coord& b) {
  const double lat1 = deg2rad(a.lat_deg);
  const double lat2 = deg2rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) *
                       std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double propagation_delay_s(const Coord& a, const Coord& b, double inflation) {
  return haversine_km(a, b) * inflation / kFiberKmPerSec;
}

double detour_ratio(const Coord& a, const Coord& via, const Coord& b) {
  const double direct = haversine_km(a, b);
  if (direct <= 1e-9) return 1.0;
  return (haversine_km(a, via) + haversine_km(via, b)) / direct;
}

double backtrack_km(const Coord& a, const Coord& via, const Coord& b) {
  return haversine_km(a, via) + haversine_km(via, b) - haversine_km(a, b);
}

std::string to_string(const Coord& coord) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f%c %.2f%c",
                std::fabs(coord.lat_deg), coord.lat_deg >= 0 ? 'N' : 'S',
                std::fabs(coord.lon_deg), coord.lon_deg >= 0 ? 'E' : 'W');
  return buf;
}

}  // namespace droute::geo
