#include "geo/registry.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace droute::geo {

util::Result<Ipv4> Ipv4::parse(const std::string& dotted) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = 0;
  const int matched =
      std::sscanf(dotted.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail);
  if (matched != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    return util::Error::make("invalid IPv4 address: " + dotted);
  }
  return Ipv4{(a << 24) | (b << 16) | (c << 8) | d};
}

std::string Ipv4::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xff,
                (value >> 16) & 0xff, (value >> 8) & 0xff, value & 0xff);
  return buf;
}

void Registry::add(Location location) {
  const std::string name = location.name;
  auto [it, inserted] = by_name_.insert_or_assign(name, std::move(location));
  (void)it;
  if (inserted) insertion_order_.push_back(name);
}

util::Status Registry::bind_ip(const Ipv4& ip, const std::string& name) {
  if (!by_name_.contains(name)) {
    return util::Status::failure("bind_ip: unknown location name: " + name);
  }
  ip_to_name_[ip.value] = name;
  return util::Status::success();
}

std::optional<Location> Registry::lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<Location> Registry::lookup_ip(const Ipv4& ip) const {
  auto it = ip_to_name_.find(ip.value);
  if (it == ip_to_name_.end()) return std::nullopt;
  return lookup(it->second);
}

std::vector<Location> Registry::all() const {
  std::vector<Location> out;
  out.reserve(insertion_order_.size());
  for (const auto& name : insertion_order_) {
    auto it = by_name_.find(name);
    if (it != by_name_.end()) out.push_back(it->second);
  }
  return out;
}

std::string Registry::render_map(int width, int height) const {
  // Plot over the bounding box of registered points with a small margin.
  const auto locations = all();
  if (locations.empty()) return "(empty registry)\n";

  double min_lat = 1e9, max_lat = -1e9, min_lon = 1e9, max_lon = -1e9;
  for (const auto& loc : locations) {
    min_lat = std::min(min_lat, loc.coord.lat_deg);
    max_lat = std::max(max_lat, loc.coord.lat_deg);
    min_lon = std::min(min_lon, loc.coord.lon_deg);
    max_lon = std::max(max_lon, loc.coord.lon_deg);
  }
  const double lat_pad = std::max(1.0, (max_lat - min_lat) * 0.1);
  const double lon_pad = std::max(1.0, (max_lon - min_lon) * 0.1);
  min_lat -= lat_pad; max_lat += lat_pad;
  min_lon -= lon_pad; max_lon += lon_pad;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  std::vector<std::pair<char, const Location*>> legend;

  char next_marker = 'A';
  for (const auto& loc : locations) {
    if (loc.kind == "router") continue;  // keep the map readable
    const int col = static_cast<int>((loc.coord.lon_deg - min_lon) /
                                     (max_lon - min_lon) * (width - 1));
    const int row = static_cast<int>((max_lat - loc.coord.lat_deg) /
                                     (max_lat - min_lat) * (height - 1));
    if (row >= 0 && row < height && col >= 0 && col < width) {
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          next_marker;
    }
    legend.emplace_back(next_marker, &loc);
    if (next_marker == 'Z') next_marker = 'a';
    else ++next_marker;
  }

  std::ostringstream out;
  out << '+' << std::string(static_cast<std::size_t>(width), '-') << "+\n";
  for (const auto& row : grid) out << '|' << row << "|\n";
  out << '+' << std::string(static_cast<std::size_t>(width), '-') << "+\n";
  for (const auto& [marker, loc] : legend) {
    out << "  " << marker << " = " << loc->name << " (" << loc->city << ", "
        << to_string(loc->coord) << ") [" << loc->kind << "]\n";
  }
  return out.str();
}

}  // namespace droute::geo
