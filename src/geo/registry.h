// Geolocation registry: the stand-in for the paper's "IP Location Finder"
// service [7]. Maps names and IPv4 addresses to coordinates and descriptions,
// and renders the Fig 3 location map as ASCII.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/geo.h"
#include "util/result.h"

namespace droute::geo {

/// One located entity (host, router, or POP).
struct Location {
  std::string name;      // e.g. "vncv1rtr2.canarie.ca"
  std::string city;      // e.g. "Vancouver, BC"
  Coord coord;
  std::string kind;      // "client" | "intermediate" | "cloud" | "router"
};

/// IPv4 in host byte order with dotted-quad parsing/printing.
struct Ipv4 {
  std::uint32_t value = 0;

  [[nodiscard]] static util::Result<Ipv4> parse(const std::string& dotted);
  std::string to_string() const;
  bool operator==(const Ipv4&) const = default;
};

class Registry {
 public:
  /// Registers a location; a later registration with the same name replaces
  /// the earlier one (mirrors updating a geolocation DB).
  void add(Location location);

  /// Binds an IP address to a registered name.
  [[nodiscard]] util::Status bind_ip(const Ipv4& ip, const std::string& name);

  std::optional<Location> lookup(const std::string& name) const;
  std::optional<Location> lookup_ip(const Ipv4& ip) const;

  std::vector<Location> all() const;
  std::size_t size() const { return by_name_.size(); }

  /// Renders an ASCII map of North America with registered entities plotted
  /// by lat/lon (the Fig 3 reproduction). Width/height in characters.
  std::string render_map(int width = 96, int height = 28) const;

 private:
  // Determinism audit: both maps serve point lookups only. Anything that
  // enumerates the registry (all(), render_map()) walks insertion_order_,
  // which exists precisely so hash order never reaches output.
  std::unordered_map<std::string, Location> by_name_;
  std::unordered_map<std::uint32_t, std::string> ip_to_name_;
  std::vector<std::string> insertion_order_;
};

}  // namespace droute::geo
