// Exporters for droute::obs — three formats, all produced from snapshots so
// a live recorder can be dumped at any point:
//
//   chrome_trace_json  — Chrome trace_event "JSON Array Format" (loads in
//                        chrome://tracing and Perfetto). Spans become "X"
//                        (complete) events; tracks become processes, lanes
//                        become threads. Validated by tools/validate_trace.py.
//   metrics_csv        — flat `kind,name,field,value` rows sorted by name;
//                        byte-deterministic for a deterministic run (the
//                        determinism test in tests/obs_test.cpp relies on it).
//   prometheus_text    — Prometheus exposition format text dump; metric names
//                        are mangled `droute_<name with dots as underscores>`.
#pragma once

#include <string>
#include <string_view>

#include "obs/recorder.h"
#include "util/result.h"

namespace droute::obs {

std::string chrome_trace_json(const Recorder& recorder);
std::string metrics_csv(const Registry& registry);
std::string prometheus_text(const Registry& registry);

/// Writes `content` to `path` (truncating). Plain helper so bench/tooling
/// call sites don't each reinvent error handling.
[[nodiscard]] util::Status write_file(const std::string& path,
                                      std::string_view content);

}  // namespace droute::obs
