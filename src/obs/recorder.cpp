#include "obs/recorder.h"

#include <atomic>

namespace droute::obs {

namespace {
std::atomic<Recorder*> g_recorder{nullptr};
thread_local TrackContext g_track_context{};
}  // namespace

Recorder::Recorder(std::size_t span_capacity)
    : capacity_(span_capacity), epoch_(std::chrono::steady_clock::now()) {
  track_names_.emplace_back("main");
}

void Recorder::record_span(Span span) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(span));
}

std::vector<Span> Recorder::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::size_t Recorder::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::uint64_t Recorder::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::uint32_t Recorder::new_track(std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  track_names_.push_back(std::move(name));
  return static_cast<std::uint32_t>(track_names_.size() - 1);
}

std::vector<std::string> Recorder::track_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return track_names_;
}

double Recorder::wall_now_s() const {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - epoch_;
  return elapsed.count();
}

Recorder* set_recorder(Recorder* recorder) {
  return g_recorder.exchange(recorder, std::memory_order_acq_rel);
}

Recorder* recorder() { return g_recorder.load(std::memory_order_acquire); }

Counter* counter(std::string_view name) {
  Recorder* r = recorder();
  return r != nullptr ? r->metrics().counter(name) : nullptr;
}

Gauge* gauge(std::string_view name) {
  Recorder* r = recorder();
  return r != nullptr ? r->metrics().gauge(name) : nullptr;
}

Histogram* histogram(std::string_view name,
                     const std::vector<double>& bounds) {
  Recorder* r = recorder();
  return r != nullptr ? r->metrics().histogram(name, bounds) : nullptr;
}

void count(std::string_view name, std::uint64_t delta) {
  Recorder* r = recorder();
  if (r != nullptr) r->metrics().counter(name)->add(delta);
}

TrackContext track_context() { return g_track_context; }

void set_track_context(TrackContext context) { g_track_context = context; }

void emit_span(std::string_view name, Clock clock, double start_s,
               double end_s,
               std::vector<std::pair<std::string, std::string>> args) {
  Recorder* r = recorder();
  if (r == nullptr) return;
  const TrackContext context = g_track_context;
  Span span;
  span.name = std::string(name);
  span.clock = clock;
  span.track = context.track;
  span.lane = context.lane;
  span.start_s = start_s;
  span.end_s = end_s;
  span.args = std::move(args);
  r->record_span(std::move(span));
}

ScopedWallSpan::ScopedWallSpan(std::string_view name)
    : recorder_(recorder()) {
  if (recorder_ == nullptr) return;
  name_ = std::string(name);
  start_s_ = recorder_->wall_now_s();
}

ScopedWallSpan::~ScopedWallSpan() {
  if (recorder_ == nullptr) return;
  const TrackContext context = g_track_context;
  Span span;
  span.name = std::move(name_);
  span.clock = Clock::kWall;
  span.track = context.track;
  span.lane = context.lane;
  span.start_s = start_s_;
  span.end_s = recorder_->wall_now_s();
  recorder_->record_span(std::move(span));
}

}  // namespace droute::obs
