// Zero-dependency metrics substrate for droute::obs.
//
// Three instrument kinds, all safe for concurrent mutation:
//   Counter   — monotonically increasing u64 (events, bytes, retries).
//   Gauge     — last-write-wins double (queue depth, pool stats).
//   Histogram — fixed-bucket distribution with exact count/sum/min/max and
//               interpolated percentiles (p50/p95/p99) derived from buckets.
//
// A Registry owns every instrument and hands out stable raw pointers; call
// sites cache the handle once (typically at construction) and mutate through
// it lock-free afterwards. Instruments are never destroyed before their
// Registry, so a handle is valid for the Registry's whole lifetime.
//
// Naming convention (enforced by tools/lint.py, documented in DESIGN.md §9):
// keys are `subsystem.noun_verb` with lowercase dotted segments; counters
// end in `_total`, histograms end in a unit suffix (_s, _bytes, _mbps,
// _ratio), gauges carry neither.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace droute::obs {

class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of a histogram's state; percentiles interpolate
/// linearly inside the bucket the target rank falls into, clamped to the
/// exact observed [min, max].
struct HistogramSnapshot {
  std::vector<double> bounds;          // ascending upper edges
  std::vector<std::uint64_t> counts;   // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // meaningful only when count > 0
  double max = 0.0;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// p in [0, 100]; returns 0 when empty.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }
};

class Histogram {
 public:
  /// `bounds` are ascending upper bucket edges; values above the last edge
  /// land in an implicit overflow bucket.
  Histogram(std::string name, std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

  HistogramSnapshot snapshot() const;

 private:
  std::string name_;
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> bucket_counts_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Default bucket edges per unit family (geometric; see DESIGN.md §9).
const std::vector<double>& duration_bounds_s();   // 1 ms .. ~4200 s
const std::vector<double>& size_bounds_bytes();   // 1 KiB .. 16 GiB
const std::vector<double>& rate_bounds_mbps();    // 0.1 .. ~6554 Mbps
const std::vector<double>& ratio_bounds();        // 0.05 .. 1.00
const std::vector<double>& log_ratio_bounds();    // 1e-4 .. 1.00, log steps

/// Owns every instrument; lookups are keyed by full metric name and create
/// on first use. Returned pointers are stable until the Registry dies.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  /// `bounds` apply only on first creation; later lookups of the same name
  /// return the existing instrument regardless of the bounds argument.
  Histogram* histogram(std::string_view name,
                       const std::vector<double>& bounds = duration_bounds_s());

  /// Enumeration for exporters, sorted by name (deterministic dumps).
  std::vector<const Counter*> counters() const;
  std::vector<const Gauge*> gauges() const;
  std::vector<const Histogram*> histograms() const;
  /// Histograms whose name starts with `prefix` + '.', e.g. prefix
  /// "probe.throughput" matches "probe.throughput.direct". Consumed by
  /// core::DynamicMonitor::poll().
  std::vector<const Histogram*> histograms_with_prefix(
      std::string_view prefix) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace droute::obs
