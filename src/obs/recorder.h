// Recording front door for droute::obs.
//
// A Recorder bundles a metrics Registry with a span buffer. The process has
// at most one *installed* recorder (set_recorder / ScopedRecorder); when none
// is installed every obs operation degrades to a branch-plus-nothing, the
// same pattern as check::debug_checks_enabled(). An installed recorder must
// outlive every object that cached an instrument handle while it was
// installed — in practice: install at process/test start, uninstall at exit.
//
// Spans carry one of two clock domains:
//   Clock::kSim  — sim::Time seconds (each simulated world starts at 0);
//   Clock::kWall — seconds since the Recorder's construction (steady clock),
//                  used by the wire/ layer and other real-time code.
// Spans land on a (track, lane) pair — pid/tid in the exported Chrome trace.
// measure::Campaign allocates one track per (route, size) cell and one lane
// per run, so engine-level spans nest correctly without the engines knowing
// anything about campaigns: they read the thread-local track context.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace droute::obs {

enum class Clock : std::uint8_t { kSim = 0, kWall = 1 };

struct Span {
  std::string name;  // same `subsystem.noun_verb` convention as metrics
  Clock clock = Clock::kSim;
  std::uint32_t track = 0;  // Chrome trace pid
  std::uint32_t lane = 0;   // Chrome trace tid
  double start_s = 0.0;
  double end_s = 0.0;
  std::vector<std::pair<std::string, std::string>> args;

  double duration_s() const { return end_s - start_s; }
};

class Recorder {
 public:
  /// `span_capacity` bounds the buffer; spans beyond it are dropped and
  /// counted (a trace that silently eats memory is worse than a gap).
  explicit Recorder(std::size_t span_capacity = 1u << 20);
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  Registry& metrics() { return registry_; }
  const Registry& metrics() const { return registry_; }

  void record_span(Span span);
  std::vector<Span> spans() const;
  std::size_t span_count() const;
  std::uint64_t dropped_spans() const;

  /// Allocates a fresh track id and names it (Chrome trace process name).
  /// Track 0 is the implicit default track, named "main".
  std::uint32_t new_track(std::string name);
  std::vector<std::string> track_names() const;  // index == track id

  /// Wall-clock seconds since this recorder was constructed.
  double wall_now_s() const;

 private:
  Registry registry_;
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  std::vector<std::string> track_names_;
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

// --- Global installation (non-owning) --------------------------------------

/// Installs `recorder` as the process-wide sink (nullptr disables recording).
/// Returns the previously installed recorder.
Recorder* set_recorder(Recorder* recorder);
Recorder* recorder();
inline bool enabled() { return recorder() != nullptr; }

/// RAII install/restore for tests and scoped tooling.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(Recorder* r) : previous_(set_recorder(r)) {}
  ~ScopedRecorder() { set_recorder(previous_); }
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  Recorder* previous_;
};

// --- Instrument lookup ------------------------------------------------------

/// Resolve a handle against the installed recorder; nullptr when disabled.
/// Cache the result in a member whose lifetime sits inside the recorder's —
/// never in a function-local static (it would dangle across reinstalls).
Counter* counter(std::string_view name);
Gauge* gauge(std::string_view name);
Histogram* histogram(std::string_view name,
                     const std::vector<double>& bounds = duration_bounds_s());

/// Null-safe mutation helpers: the disabled path is one predictable branch.
inline void add(Counter* c, std::uint64_t delta = 1) {
  if (c != nullptr) c->add(delta);
}
inline void set(Gauge* g, double value) {
  if (g != nullptr) g->set(value);
}
inline void add(Gauge* g, double delta) {
  if (g != nullptr) g->add(delta);
}
inline void observe(Histogram* h, double value) {
  if (h != nullptr) h->observe(value);
}

/// One-shot counter bump by name, for call sites without a natural place to
/// cache a handle (e.g. free functions in wire/). Costs a registry lookup
/// when enabled, a single branch when disabled.
void count(std::string_view name, std::uint64_t delta = 1);

// --- Track context (thread-local) -------------------------------------------

struct TrackContext {
  std::uint32_t track = 0;
  std::uint32_t lane = 0;
};

TrackContext track_context();
void set_track_context(TrackContext context);

class ScopedTrack {
 public:
  ScopedTrack(std::uint32_t track, std::uint32_t lane)
      : previous_(track_context()) {
    set_track_context({track, lane});
  }
  ~ScopedTrack() { set_track_context(previous_); }
  ScopedTrack(const ScopedTrack&) = delete;
  ScopedTrack& operator=(const ScopedTrack&) = delete;

 private:
  TrackContext previous_;
};

// --- Span emission -----------------------------------------------------------

/// Records a completed span on the current track context. No-op when
/// disabled; call sites only need to have captured the start timestamp.
void emit_span(std::string_view name, Clock clock, double start_s,
               double end_s,
               std::vector<std::pair<std::string, std::string>> args = {});

/// RAII wall-clock span for synchronous sections. Captures the installed
/// recorder at construction; zero work when disabled.
class ScopedWallSpan {
 public:
  explicit ScopedWallSpan(std::string_view name);
  ~ScopedWallSpan();
  ScopedWallSpan(const ScopedWallSpan&) = delete;
  ScopedWallSpan& operator=(const ScopedWallSpan&) = delete;

 private:
  Recorder* recorder_;
  std::string name_;
  double start_s_ = 0.0;
};

}  // namespace droute::obs
