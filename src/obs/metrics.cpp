#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "check/contract.h"

namespace droute::obs {

namespace {

void update_extreme_min(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void update_extreme_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

std::vector<double> geometric(double first, double factor, int steps) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(steps));
  double edge = first;
  for (int i = 0; i < steps; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

}  // namespace

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t bucket = 0; bucket < counts.size(); ++bucket) {
    const std::uint64_t in_bucket = counts[bucket];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < target) {
      cumulative += in_bucket;
      continue;
    }
    // Interpolate within [lower, upper], clamped to the observed extremes so
    // sparse buckets don't report values no sample ever reached.
    double lower = bucket == 0 ? min : bounds[bucket - 1];
    double upper = bucket < bounds.size() ? bounds[bucket] : max;
    lower = std::max(lower, min);
    upper = std::min(upper, max);
    if (upper < lower) upper = lower;
    const double fraction =
        (target - static_cast<double>(cumulative)) /
        static_cast<double>(in_bucket);
    return lower + fraction * (upper - lower);
  }
  return max;
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)),
      bounds_(std::move(bounds)),
      bucket_counts_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  DROUTE_CHECK(!bounds_.empty(), "histogram needs at least one bucket edge: ",
               name_);
  DROUTE_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must ascend: ", name_);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  bucket_counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  update_extreme_min(min_, value);
  update_extreme_max(max_, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(bucket_counts_.size());
  for (const auto& bucket : bucket_counts_) {
    snap.counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
  snap.max = snap.count > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
  return snap;
}

const std::vector<double>& duration_bounds_s() {
  // 1 ms doubling up to ~4194 s: covers chunk acks through whole campaigns.
  static const std::vector<double> bounds = geometric(1e-3, 2.0, 23);
  return bounds;
}

const std::vector<double>& size_bounds_bytes() {
  // 1 KiB ×4 up to 16 GiB.
  static const std::vector<double> bounds = geometric(1024.0, 4.0, 13);
  return bounds;
}

const std::vector<double>& rate_bounds_mbps() {
  // 0.1 Mbps doubling up to ~6554 Mbps.
  static const std::vector<double> bounds = geometric(0.1, 2.0, 17);
  return bounds;
}

const std::vector<double>& ratio_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> edges;
    for (int i = 1; i <= 20; ++i) {
      edges.push_back(static_cast<double>(i) * 0.05);
    }
    return edges;
  }();
  return bounds;
}

const std::vector<double>& log_ratio_bounds() {
  // 1e-4 up to 1.0 in half-decade steps: ratio_bounds() starts at 0.05,
  // far too coarse for ratios that concentrate near 1/N (e.g. the largest
  // shard's share of a well-balanced thousand-component fill batch).
  static const std::vector<double> bounds = [] {
    std::vector<double> edges;
    double edge = 1e-4;
    while (edge < 1.0) {
      edges.push_back(edge);
      edges.push_back(edge * 3.0);
      edge *= 10.0;
    }
    edges.push_back(1.0);
    return edges;
  }();
  return bounds;
}

Counter* Registry::counter(std::string_view name) {
  DROUTE_CHECK(!name.empty(), "empty metric name");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name),
                           std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Gauge* Registry::gauge(std::string_view name) {
  DROUTE_CHECK(!name.empty(), "empty metric name");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name),
                         std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Histogram* Registry::histogram(std::string_view name,
                               const std::vector<double>& bounds) {
  DROUTE_CHECK(!name.empty(), "empty metric name");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name), bounds))
             .first;
  }
  return it->second.get();
}

std::vector<const Counter*> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Counter*> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) out.push_back(counter.get());
  return out;
}

std::vector<const Gauge*> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Gauge*> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) out.push_back(gauge.get());
  return out;
}

std::vector<const Histogram*> Registry::histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Histogram*> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.push_back(histogram.get());
  }
  return out;
}

std::vector<const Histogram*> Registry::histograms_with_prefix(
    std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Histogram*> out;
  for (const auto& [name, histogram] : histograms_) {
    if (name.size() > prefix.size() + 1 &&
        name.compare(0, prefix.size(), prefix) == 0 &&
        name[prefix.size()] == '.') {
      out.push_back(histogram.get());
    }
  }
  return out;
}

}  // namespace droute::obs
