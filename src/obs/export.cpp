#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace droute::obs {

namespace {

/// Round-trip-exact, locale-independent double formatting. Deterministic for
/// identical bit patterns, which is what the CSV determinism test asserts.
std::string fmt_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Fixed microsecond formatting for trace timestamps (Perfetto parses
/// fractional `ts`; three decimals keep sub-microsecond sim events distinct).
std::string fmt_us(double seconds) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", seconds * 1e6);
  return buffer;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prometheus metric name: `droute_` + name with '.' mangled to '_'.
std::string prom_name(std::string_view name) {
  std::string out = "droute_";
  for (const char c : name) out += c == '.' ? '_' : c;
  return out;
}

}  // namespace

std::string chrome_trace_json(const Recorder& recorder) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto append = [&](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += event;
  };

  // Track names become process_name metadata so Perfetto labels the rows.
  const auto tracks = recorder.track_names();
  for (std::size_t track = 0; track < tracks.size(); ++track) {
    append("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(track) + ",\"tid\":0,\"args\":{\"name\":\"" +
           json_escape(tracks[track]) + "\"}}");
  }

  auto spans = recorder.spans();
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.track != b.track) return a.track < b.track;
    if (a.lane != b.lane) return a.lane < b.lane;
    if (a.start_s != b.start_s) return a.start_s < b.start_s;
    if (a.end_s != b.end_s) return a.end_s > b.end_s;  // parents first
    return a.name < b.name;
  });
  for (const Span& span : spans) {
    std::string event = "{\"name\":\"" + json_escape(span.name) +
                        "\",\"cat\":\"" +
                        (span.clock == Clock::kSim ? "sim" : "wall") +
                        "\",\"ph\":\"X\",\"pid\":" +
                        std::to_string(span.track) +
                        ",\"tid\":" + std::to_string(span.lane) +
                        ",\"ts\":" + fmt_us(span.start_s) +
                        ",\"dur\":" + fmt_us(span.duration_s());
    if (!span.args.empty()) {
      event += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : span.args) {
        if (!first_arg) event += ',';
        first_arg = false;
        event += "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
      }
      event += '}';
    }
    event += '}';
    append(event);
  }
  out += "\n]}\n";
  return out;
}

std::string metrics_csv(const Registry& registry) {
  std::string out = "kind,name,field,value\n";
  for (const Counter* counter : registry.counters()) {
    out += "counter," + counter->name() + ",value," +
           std::to_string(counter->value()) + "\n";
  }
  for (const Gauge* gauge : registry.gauges()) {
    out += "gauge," + gauge->name() + ",value," + fmt_double(gauge->value()) +
           "\n";
  }
  for (const Histogram* histogram : registry.histograms()) {
    const HistogramSnapshot snap = histogram->snapshot();
    const std::string& name = histogram->name();
    out += "histogram," + name + ",count," + std::to_string(snap.count) + "\n";
    out += "histogram," + name + ",sum," + fmt_double(snap.sum) + "\n";
    out += "histogram," + name + ",min," + fmt_double(snap.min) + "\n";
    out += "histogram," + name + ",max," + fmt_double(snap.max) + "\n";
    out += "histogram," + name + ",p50," + fmt_double(snap.p50()) + "\n";
    out += "histogram," + name + ",p95," + fmt_double(snap.p95()) + "\n";
    out += "histogram," + name + ",p99," + fmt_double(snap.p99()) + "\n";
    for (std::size_t bucket = 0; bucket < snap.counts.size(); ++bucket) {
      if (snap.counts[bucket] == 0) continue;  // keep dumps compact
      const std::string edge = bucket < snap.bounds.size()
                                   ? fmt_double(snap.bounds[bucket])
                                   : "inf";
      out += "histogram," + name + ",bucket_le_" + edge + "," +
             std::to_string(snap.counts[bucket]) + "\n";
    }
  }
  return out;
}

std::string prometheus_text(const Registry& registry) {
  std::string out;
  for (const Counter* counter : registry.counters()) {
    const std::string name = prom_name(counter->name());
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(counter->value()) + "\n";
  }
  for (const Gauge* gauge : registry.gauges()) {
    const std::string name = prom_name(gauge->name());
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + fmt_double(gauge->value()) + "\n";
  }
  for (const Histogram* histogram : registry.histograms()) {
    const HistogramSnapshot snap = histogram->snapshot();
    const std::string name = prom_name(histogram->name());
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t bucket = 0; bucket < snap.counts.size(); ++bucket) {
      cumulative += snap.counts[bucket];
      const std::string edge = bucket < snap.bounds.size()
                                   ? fmt_double(snap.bounds[bucket])
                                   : "+Inf";
      out += name + "_bucket{le=\"" + edge + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_sum " + fmt_double(snap.sum) + "\n";
    out += name + "_count " + std::to_string(snap.count) + "\n";
  }
  return out;
}

util::Status write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::failure("obs: cannot open " + path + " for writing");
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) return util::Status::failure("obs: short write to " + path);
  return util::Status::success();
}

}  // namespace droute::obs
