// MD5 (RFC 1321) — the strong per-block checksum of the rsync algorithm.
//
// MD5 is cryptographically broken for adversarial collision resistance, but
// that is exactly the role it plays in real rsync: an accidental-collision
// guard behind the rolling checksum, not a security boundary. Implemented
// from the RFC so the library has no external dependencies.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace droute::rsyncx {

using Md5Digest = std::array<std::uint8_t, 16>;

class Md5 {
 public:
  Md5();

  /// Absorbs more input (streaming interface).
  void update(std::span<const std::uint8_t> data);

  /// Finalizes and returns the digest. The object must not be reused.
  Md5Digest finalize();

  /// One-shot convenience.
  static Md5Digest hash(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_;
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  bool finalized_ = false;
};

/// Lowercase hex rendering.
std::string to_hex(const Md5Digest& digest);

}  // namespace droute::rsyncx
