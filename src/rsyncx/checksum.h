// Rolling weak checksum — the rsync algorithm's first-pass filter.
//
// This is Tridgell's adaptation of Adler-32: two 16-bit sums (a = sum of
// bytes, b = sum of prefix sums) packed into 32 bits. Its defining property
// is O(1) *rolling*: the checksum of window [i+1, i+n] is computed from the
// checksum of [i, i+n] plus the entering/leaving bytes, which is what makes
// scanning every byte offset of a large file affordable.
#pragma once

#include <cstdint>
#include <span>

namespace droute::rsyncx {

class RollingChecksum {
 public:
  RollingChecksum() = default;

  /// Initializes over a full window.
  explicit RollingChecksum(std::span<const std::uint8_t> window);

  /// O(1) roll: remove `leaving`, append `entering`, window size constant.
  void roll(std::uint8_t leaving, std::uint8_t entering);

  /// Current 32-bit digest (b << 16 | a).
  std::uint32_t digest() const { return (b_ << 16) | a_; }

  std::uint32_t window_size() const { return n_; }

 private:
  std::uint32_t a_ = 0;  // mod 2^16 by masking
  std::uint32_t b_ = 0;
  std::uint32_t n_ = 0;
};

/// One-shot weak checksum of a buffer.
std::uint32_t weak_checksum(std::span<const std::uint8_t> data);

}  // namespace droute::rsyncx
