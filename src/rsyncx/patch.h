// Patch application: the rsync receiver rebuilds the target file from its
// basis plus the delta, then verifies the whole-file checksum.
#pragma once

#include <span>

#include "rsyncx/delta.h"
#include "util/blob.h"
#include "util/result.h"

namespace droute::rsyncx {

/// Applies `delta` to `basis`. Fails (without UB) on any malformed delta:
/// out-of-range block index, copy run past the basis end, or a reconstructed
/// size that contradicts the delta header.
[[nodiscard]]
util::Result<util::Blob> apply_delta(std::span<const std::uint8_t> basis,
                                     const Delta& delta);

/// End-to-end convenience used in tests: full sender+receiver round trip.
/// Returns the reconstruction of `target` against `basis`.
[[nodiscard]]
util::Result<util::Blob> round_trip(std::span<const std::uint8_t> basis,
                                    std::span<const std::uint8_t> target,
                                    std::uint32_t block_size);

}  // namespace droute::rsyncx
