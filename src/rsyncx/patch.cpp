#include "rsyncx/patch.h"

#include "rsyncx/signature.h"

namespace droute::rsyncx {

util::Result<util::Blob> apply_delta(std::span<const std::uint8_t> basis,
                                     const Delta& delta) {
  if (delta.block_size == 0) {
    return util::Error::make("delta: zero block size");
  }
  util::Blob out;
  out.reserve(delta.target_size);
  for (const DeltaOp& op : delta.ops) {
    if (const auto* copy = std::get_if<CopyOp>(&op)) {
      const std::uint64_t start =
          static_cast<std::uint64_t>(copy->block_index) * delta.block_size;
      if (start > basis.size() || copy->length > basis.size() - start) {
        return util::Error::make("delta: copy op out of basis range");
      }
      out.insert(out.end(), basis.begin() + static_cast<std::ptrdiff_t>(start),
                 basis.begin() + static_cast<std::ptrdiff_t>(start +
                                                             copy->length));
    } else {
      const auto& lit = std::get<LiteralOp>(op);
      out.insert(out.end(), lit.data.begin(), lit.data.end());
    }
  }
  if (out.size() != delta.target_size) {
    return util::Error::make("delta: reconstructed size mismatch");
  }
  return out;
}

util::Result<util::Blob> round_trip(std::span<const std::uint8_t> basis,
                                    std::span<const std::uint8_t> target,
                                    std::uint32_t block_size) {
  const Signature sig = compute_signature(basis, block_size);
  const SignatureIndex index(sig);
  const Delta delta = compute_delta(target, index);
  return apply_delta(basis, delta);
}

}  // namespace droute::rsyncx
