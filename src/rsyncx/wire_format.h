// Wire encoding of rsync signatures and deltas.
//
// Fixed little-endian layout, bounds-checked decode (a malformed or
// truncated stream yields an error, never UB). The byte counts produced
// here are exactly what Signature::wire_bytes() / Delta::wire_bytes()
// report, so the simulator's cost accounting and the real socket pipe
// (wire/rsync_pipe.h) agree byte-for-byte.
//
//   Signature: 'DRSG' u32 | block_size u32 | basis_size u64
//              then per block: weak u32 | strong 16B | index u32
//   Delta:     'DRSD' u32 | version u32 | target_size u64
//              | block_size u32 | op_count u32
//              then ops: tag u32 (1=copy, 2=literal)
//                copy:    block_index u32 | length u32
//                literal: length u32 | payload bytes
#pragma once

#include <span>

#include "rsyncx/delta.h"
#include "rsyncx/signature.h"
#include "util/blob.h"
#include "util/result.h"

namespace droute::rsyncx {

inline constexpr std::uint32_t kSignatureMagic = 0x44525347;  // 'DRSG'
inline constexpr std::uint32_t kDeltaMagic = 0x44525344;      // 'DRSD'
inline constexpr std::uint32_t kDeltaVersion = 1;

util::Blob encode_signature(const Signature& signature);
[[nodiscard]]
util::Result<Signature> decode_signature(std::span<const std::uint8_t> bytes);

util::Blob encode_delta(const Delta& delta);
[[nodiscard]]
util::Result<Delta> decode_delta(std::span<const std::uint8_t> bytes);

}  // namespace droute::rsyncx
