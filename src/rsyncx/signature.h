// Block signatures: what the rsync *receiver* (which owns a possibly-stale
// basis file) sends to the sender so the sender can find matching blocks.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "rsyncx/md5.h"
#include "util/result.h"

namespace droute::rsyncx {

struct BlockSignature {
  std::uint32_t weak = 0;   // rolling checksum of the block
  Md5Digest strong{};       // MD5 of the block
  std::uint32_t index = 0;  // block index in the basis file
};

struct Signature {
  std::uint32_t block_size = 0;
  std::uint64_t basis_size = 0;
  std::vector<BlockSignature> blocks;

  /// Bytes this signature occupies on the wire (weak 4B + strong 16B +
  /// index 4B per block, plus a 16B header) — charged to the reverse
  /// direction of the rsync session.
  std::uint64_t wire_bytes() const {
    return 16 + blocks.size() * (4 + 16 + 4);
  }
};

/// Computes the signature of a basis file. `block_size` must be positive;
/// rsync's default heuristic (~sqrt(size), rounded, clamped) is exposed as
/// recommended_block_size().
Signature compute_signature(std::span<const std::uint8_t> basis,
                            std::uint32_t block_size);

std::uint32_t recommended_block_size(std::uint64_t file_size);

/// Weak-checksum hash index over a signature, used by the delta scanner to
/// look up candidate blocks in O(1) per byte offset.
class SignatureIndex {
 public:
  explicit SignatureIndex(const Signature& signature);

  /// Candidate blocks whose weak checksum equals `weak`.
  std::span<const std::uint32_t> candidates(std::uint32_t weak) const;

  const Signature& signature() const { return *signature_; }

 private:
  const Signature* signature_;
  // weak digest -> indices into signature_->blocks. Determinism audit:
  // lookup-only via candidates(); each bucket's vector preserves block
  // order, so delta output is independent of hash order.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_weak_;
};

}  // namespace droute::rsyncx
