// Whole-session accounting for one rsync transfer: who computes what, and
// how many bytes cross the wire in each direction.
//
// The transfer engines (src/transfer) use this to charge the network and CPU
// costs of the client -> DTN leg of a detour. The paper's benchmark case —
// the receiver has no basis file — degenerates to a full-file literal send,
// which tests assert explicitly.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "rsyncx/delta.h"
#include "rsyncx/patch.h"
#include "util/blob.h"
#include "util/result.h"

namespace droute::rsyncx {

/// CPU throughput assumptions for cost modelling (bytes/second).
struct CpuModel {
  double signature_bytes_per_s = 350e6;  // receiver: rolling + MD5 pass
  double scan_bytes_per_s = 450e6;       // sender: rolling scan + MD5 on hits
  double patch_bytes_per_s = 1.5e9;      // receiver: memcpy-dominated rebuild
};

struct SessionPlan {
  Delta delta;                       // what the sender will transmit
  std::uint64_t forward_wire_bytes;  // sender -> receiver (delta + framing)
  std::uint64_t reverse_wire_bytes;  // receiver -> sender (signature)
  double sender_cpu_s;               // delta scan time
  double receiver_cpu_s;             // signature + patch time
  std::uint32_t block_size;
};

/// Protocol framing overhead per session (greeting, file list, trailer),
/// matching rsync's order of magnitude rather than its exact encoding.
inline constexpr std::uint64_t kSessionFramingBytes = 512;

/// Plans a session transferring `target` to a receiver holding `basis`
/// (nullopt = receiver has no file, the paper's benchmark configuration).
SessionPlan plan_session(std::span<const std::uint8_t> target,
                         std::optional<std::span<const std::uint8_t>> basis,
                         const CpuModel& cpu = {});

/// Executes the plan's data path for real (used by tests to prove the plan's
/// delta actually reconstructs the file): returns the receiver's rebuilt file.
[[nodiscard]] util::Result<util::Blob> execute_plan(
    const SessionPlan& plan,
    std::optional<std::span<const std::uint8_t>> basis);

}  // namespace droute::rsyncx
