#include "rsyncx/delta.h"

#include <algorithm>

#include "rsyncx/checksum.h"
#include "util/result.h"

namespace droute::rsyncx {

std::uint64_t Delta::wire_bytes() const {
  std::uint64_t bytes = 24;  // header: sizes, block size, op count
  for (const DeltaOp& op : ops) {
    if (std::holds_alternative<CopyOp>(op)) {
      bytes += 12;  // block index + run length
    } else {
      bytes += 8 + std::get<LiteralOp>(op).data.size();
    }
  }
  return bytes;
}

std::uint64_t Delta::copied_bytes() const {
  std::uint64_t bytes = 0;
  for (const DeltaOp& op : ops) {
    if (const auto* copy = std::get_if<CopyOp>(&op)) bytes += copy->length;
  }
  return bytes;
}

std::uint64_t Delta::literal_bytes() const {
  std::uint64_t bytes = 0;
  for (const DeltaOp& op : ops) {
    if (const auto* lit = std::get_if<LiteralOp>(&op)) {
      bytes += lit->data.size();
    }
  }
  return bytes;
}

namespace {

/// True when basis block `index` has exactly `len` bytes.
bool block_has_length(const Signature& sig, std::uint32_t index,
                      std::size_t len) {
  const std::uint64_t start =
      static_cast<std::uint64_t>(index) * sig.block_size;
  const std::uint64_t actual =
      std::min<std::uint64_t>(sig.block_size, sig.basis_size - start);
  return actual == len;
}

}  // namespace

Delta compute_delta(std::span<const std::uint8_t> target,
                    const SignatureIndex& index) {
  const Signature& sig = index.signature();
  const std::uint32_t block = sig.block_size;

  Delta delta;
  delta.target_size = target.size();
  delta.block_size = block;

  std::vector<std::uint8_t> pending;
  auto flush_literal = [&] {
    if (!pending.empty()) {
      delta.ops.emplace_back(LiteralOp{std::move(pending)});
      pending.clear();
    }
  };
  auto emit_copy = [&](std::uint32_t block_index, std::uint64_t length) {
    flush_literal();
    if (!delta.ops.empty()) {
      if (auto* prev = std::get_if<CopyOp>(&delta.ops.back())) {
        // Merge contiguous full-block runs into one Copy op.
        const bool contiguous =
            prev->length % block == 0 &&
            prev->block_index + prev->length / block == block_index;
        if (contiguous) {
          prev->length += length;
          return;
        }
      }
    }
    delta.ops.emplace_back(CopyOp{block_index, length});
  };

  // Finds a block of exactly `len` bytes matching target[p, p+len).
  auto find_match = [&](std::size_t p, std::size_t len,
                        std::uint32_t weak) -> std::optional<std::uint32_t> {
    std::optional<Md5Digest> strong;  // computed at most once per position
    for (std::uint32_t cand : index.candidates(weak)) {
      const BlockSignature& bs = sig.blocks[cand];
      if (!block_has_length(sig, bs.index, len)) continue;
      if (!strong) strong = Md5::hash(target.subspan(p, len));
      if (bs.strong == *strong) return bs.index;
    }
    return std::nullopt;
  };

  std::size_t p = 0;
  if (target.size() >= block) {
    RollingChecksum rc(target.subspan(0, block));
    while (p + block <= target.size()) {
      if (auto match = find_match(p, block, rc.digest())) {
        emit_copy(*match, block);
        p += block;
        if (p + block <= target.size()) {
          rc = RollingChecksum(target.subspan(p, block));
        }
      } else {
        pending.push_back(target[p]);
        if (p + block < target.size()) {
          rc.roll(target[p], target[p + block]);
        } else {
          ++p;
          break;  // window can no longer slide; tail handled below
        }
        ++p;
      }
    }
  }

  // Tail shorter than one block: it can only match the basis tail block.
  if (p < target.size()) {
    const std::size_t len = target.size() - p;
    const std::uint32_t weak = weak_checksum(target.subspan(p, len));
    if (auto match = find_match(p, len, weak)) {
      emit_copy(*match, len);
    } else {
      pending.insert(pending.end(), target.begin() + static_cast<std::ptrdiff_t>(p),
                     target.end());
    }
  }
  flush_literal();
  return delta;
}

}  // namespace droute::rsyncx
