#include "rsyncx/checksum.h"

namespace droute::rsyncx {

namespace {
constexpr std::uint32_t kMask = 0xffffu;
}

RollingChecksum::RollingChecksum(std::span<const std::uint8_t> window) {
  n_ = static_cast<std::uint32_t>(window.size());
  for (std::uint32_t i = 0; i < n_; ++i) {
    a_ = (a_ + window[i]) & kMask;
    b_ = (b_ + (n_ - i) * window[i]) & kMask;
  }
}

void RollingChecksum::roll(std::uint8_t leaving, std::uint8_t entering) {
  a_ = (a_ - leaving + entering) & kMask;
  b_ = (b_ - n_ * leaving + a_) & kMask;
}

std::uint32_t weak_checksum(std::span<const std::uint8_t> data) {
  return RollingChecksum(data).digest();
}

}  // namespace droute::rsyncx
