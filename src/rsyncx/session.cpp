#include "rsyncx/session.h"

#include "rsyncx/signature.h"

namespace droute::rsyncx {

SessionPlan plan_session(std::span<const std::uint8_t> target,
                         std::optional<std::span<const std::uint8_t>> basis,
                         const CpuModel& cpu) {
  SessionPlan plan;
  plan.block_size = recommended_block_size(
      basis ? basis->size() : target.size());

  Signature sig;
  if (basis && !basis->empty()) {
    sig = compute_signature(*basis, plan.block_size);
  } else {
    sig.block_size = plan.block_size;
    sig.basis_size = 0;
  }
  const SignatureIndex index(sig);
  plan.delta = compute_delta(target, index);

  plan.forward_wire_bytes = plan.delta.wire_bytes() + kSessionFramingBytes;
  plan.reverse_wire_bytes = sig.wire_bytes() + kSessionFramingBytes;

  const double basis_bytes =
      basis ? static_cast<double>(basis->size()) : 0.0;
  plan.receiver_cpu_s = basis_bytes / cpu.signature_bytes_per_s +
                        static_cast<double>(plan.delta.target_size) /
                            cpu.patch_bytes_per_s;
  plan.sender_cpu_s =
      static_cast<double>(target.size()) / cpu.scan_bytes_per_s;
  return plan;
}

util::Result<util::Blob> execute_plan(
    const SessionPlan& plan,
    std::optional<std::span<const std::uint8_t>> basis) {
  const std::span<const std::uint8_t> basis_span =
      basis.value_or(std::span<const std::uint8_t>{});
  return apply_delta(basis_span, plan.delta);
}

}  // namespace droute::rsyncx
