#include "rsyncx/md5.h"

#include <cstring>

#include "check/contract.h"
#include "util/result.h"

namespace droute::rsyncx {

namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr std::array<std::uint32_t, 64> kShift = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

constexpr std::uint32_t rotl(std::uint32_t x, std::uint32_t c) {
  return (x << c) | (x >> (32 - c));
}

}  // namespace

Md5::Md5() : state_{0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u} {}

void Md5::process_block(const std::uint8_t* block) {
  std::array<std::uint32_t, 16> m;
  for (int i = 0; i < 16; ++i) {
    m[static_cast<std::size_t>(i)] =
        static_cast<std::uint32_t>(block[i * 4]) |
        (static_cast<std::uint32_t>(block[i * 4 + 1]) << 8) |
        (static_cast<std::uint32_t>(block[i * 4 + 2]) << 16) |
        (static_cast<std::uint32_t>(block[i * 4 + 3]) << 24);
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (std::uint32_t i = 0; i < 64; ++i) {
    std::uint32_t f = 0, g = 0;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    f = f + a + kK[i] + m[g];
    a = d;
    d = c;
    c = b;
    b = b + rotl(f, kShift[i]);
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(std::span<const std::uint8_t> data) {
  DROUTE_CHECK(!finalized_, "Md5::update after finalize");
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Md5Digest Md5::finalize() {
  DROUTE_CHECK(!finalized_, "Md5::finalize called twice");
  finalized_ = true;
  const std::uint64_t bit_length = total_bytes_ * 8;

  // Padding: 0x80, zeros, then 64-bit little-endian length.
  std::array<std::uint8_t, 72> pad{};
  pad[0] = 0x80;
  const std::size_t pad_len =
      (buffered_ < 56) ? 56 - buffered_ : 120 - buffered_;
  // Feed padding and length through the block machinery manually.
  finalized_ = false;
  update(std::span<const std::uint8_t>(pad.data(), pad_len));
  std::array<std::uint8_t, 8> len_bytes;
  for (int i = 0; i < 8; ++i) {
    len_bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_length >> (8 * i));
  }
  update(len_bytes);
  finalized_ = true;
  DROUTE_CHECK(buffered_ == 0, "MD5 padding error");

  Md5Digest digest;
  for (int w = 0; w < 4; ++w) {
    for (int b = 0; b < 4; ++b) {
      digest[static_cast<std::size_t>(w * 4 + b)] =
          static_cast<std::uint8_t>(state_[static_cast<std::size_t>(w)] >>
                                    (8 * b));
    }
  }
  return digest;
}

Md5Digest Md5::hash(std::span<const std::uint8_t> data) {
  Md5 md5;
  md5.update(data);
  return md5.finalize();
}

std::string to_hex(const Md5Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

}  // namespace droute::rsyncx
