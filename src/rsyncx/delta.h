// Delta generation: the rsync sender scans its file with the rolling
// checksum, matching windows against the receiver's signature; matched
// blocks become Copy ops, unmatched bytes become Literal ops.
#pragma once

#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "rsyncx/signature.h"

namespace droute::rsyncx {

/// Copy `length` bytes starting at basis block `block_index` (length can
/// exceed one block when consecutive blocks match — run-length merging).
struct CopyOp {
  std::uint32_t block_index = 0;
  std::uint64_t length = 0;
};

struct LiteralOp {
  std::vector<std::uint8_t> data;
};

using DeltaOp = std::variant<CopyOp, LiteralOp>;

struct Delta {
  std::uint64_t target_size = 0;   // size of the file being encoded
  std::uint32_t block_size = 0;    // must match the signature's
  std::vector<DeltaOp> ops;

  /// Bytes on the wire: literals dominate; copies cost 12B, a header 24B.
  std::uint64_t wire_bytes() const;

  /// Total bytes produced by Copy ops (i.e. saved from transmission).
  std::uint64_t copied_bytes() const;

  /// Total literal payload bytes.
  std::uint64_t literal_bytes() const;
};

/// Computes the delta that rebuilds `target` from the basis described by
/// `index`. With an empty basis the delta degenerates to one big literal —
/// the paper's benchmarking case (files deleted before each run, Sec II).
Delta compute_delta(std::span<const std::uint8_t> target,
                    const SignatureIndex& index);

}  // namespace droute::rsyncx
