#include "rsyncx/wire_format.h"

#include <cstring>
#include <limits>

#include "check/contract.h"

namespace droute::rsyncx {

namespace {

class Writer {
 public:
  explicit Writer(util::Blob* out) : out_(out) {}
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void bytes(std::span<const std::uint8_t> data) {
    out_->insert(out_->end(), data.begin(), data.end());
  }

 private:
  util::Blob* out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  util::Result<std::uint32_t> u32() {
    if (pos_ + 4 > data_.size()) return util::Error::make("truncated u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  util::Result<std::uint64_t> u64() {
    if (pos_ + 8 > data_.size()) return util::Error::make("truncated u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  util::Result<std::span<const std::uint8_t>> bytes(std::size_t n) {
    if (pos_ + n > data_.size() || n > data_.size()) {
      return util::Error::make("truncated byte run");
    }
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace

util::Blob encode_signature(const Signature& signature) {
  util::Blob out;
  out.reserve(signature.wire_bytes());
  Writer w(&out);
  w.u32(kSignatureMagic);
  w.u32(signature.block_size);
  w.u64(signature.basis_size);
  for (const BlockSignature& block : signature.blocks) {
    w.u32(block.weak);
    w.bytes(block.strong);
    w.u32(block.index);
  }
  DROUTE_CHECK(out.size() == signature.wire_bytes(),
               "signature encoding size drifted from wire_bytes()");
  return out;
}

util::Result<Signature> decode_signature(
    std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  auto magic = r.u32();
  if (!magic.ok() || magic.value() != kSignatureMagic) {
    return util::Error::make("bad signature magic");
  }
  Signature sig;
  auto block_size = r.u32();
  if (!block_size.ok()) return util::Error{block_size.error()};
  if (block_size.value() == 0) {
    return util::Error::make("signature block size must be positive");
  }
  sig.block_size = block_size.value();
  auto basis_size = r.u64();
  if (!basis_size.ok()) return util::Error{basis_size.error()};
  sig.basis_size = basis_size.value();

  const std::uint64_t expected_blocks =
      (sig.basis_size + sig.block_size - 1) / sig.block_size;
  sig.blocks.reserve(expected_blocks);
  while (!r.exhausted()) {
    BlockSignature block;
    auto weak = r.u32();
    if (!weak.ok()) return util::Error{weak.error()};
    block.weak = weak.value();
    auto strong = r.bytes(block.strong.size());
    if (!strong.ok()) return util::Error{strong.error()};
    std::memcpy(block.strong.data(), strong.value().data(),
                block.strong.size());
    auto index = r.u32();
    if (!index.ok()) return util::Error{index.error()};
    block.index = index.value();
    if (block.index >= expected_blocks) {
      return util::Error::make("signature block index out of range");
    }
    sig.blocks.push_back(block);
  }
  if (sig.blocks.size() != expected_blocks) {
    return util::Error::make("signature block count mismatch");
  }
  return sig;
}

util::Blob encode_delta(const Delta& delta) {
  util::Blob out;
  out.reserve(delta.wire_bytes());
  Writer w(&out);
  w.u32(kDeltaMagic);
  w.u32(kDeltaVersion);
  w.u64(delta.target_size);
  w.u32(delta.block_size);
  w.u32(static_cast<std::uint32_t>(delta.ops.size()));
  for (const DeltaOp& op : delta.ops) {
    if (const auto* copy = std::get_if<CopyOp>(&op)) {
      DROUTE_CHECK(copy->length <= std::numeric_limits<std::uint32_t>::max(),
                   "copy run exceeds u32 length");
      w.u32(1);
      w.u32(copy->block_index);
      w.u32(static_cast<std::uint32_t>(copy->length));
    } else {
      const auto& lit = std::get<LiteralOp>(op);
      DROUTE_CHECK(lit.data.size() <= std::numeric_limits<std::uint32_t>::max(),
                   "literal exceeds u32 length");
      w.u32(2);
      w.u32(static_cast<std::uint32_t>(lit.data.size()));
      w.bytes(lit.data);
    }
  }
  DROUTE_CHECK(out.size() == delta.wire_bytes(),
               "delta encoding size drifted from wire_bytes()");
  return out;
}

util::Result<Delta> decode_delta(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  auto magic = r.u32();
  if (!magic.ok() || magic.value() != kDeltaMagic) {
    return util::Error::make("bad delta magic");
  }
  auto version = r.u32();
  if (!version.ok() || version.value() != kDeltaVersion) {
    return util::Error::make("unsupported delta version");
  }
  Delta delta;
  auto target_size = r.u64();
  if (!target_size.ok()) return util::Error{target_size.error()};
  delta.target_size = target_size.value();
  auto block_size = r.u32();
  if (!block_size.ok()) return util::Error{block_size.error()};
  if (block_size.value() == 0) {
    return util::Error::make("delta block size must be positive");
  }
  delta.block_size = block_size.value();
  auto op_count = r.u32();
  if (!op_count.ok()) return util::Error{op_count.error()};

  std::uint64_t produced = 0;
  for (std::uint32_t i = 0; i < op_count.value(); ++i) {
    auto tag = r.u32();
    if (!tag.ok()) return util::Error{tag.error()};
    if (tag.value() == 1) {
      auto index = r.u32();
      auto length = r.u32();
      if (!index.ok() || !length.ok()) {
        return util::Error::make("truncated copy op");
      }
      delta.ops.emplace_back(CopyOp{index.value(), length.value()});
      produced += length.value();
    } else if (tag.value() == 2) {
      auto length = r.u32();
      if (!length.ok()) return util::Error{length.error()};
      auto payload = r.bytes(length.value());
      if (!payload.ok()) return util::Error{payload.error()};
      delta.ops.emplace_back(
          LiteralOp{util::Blob(payload.value().begin(),
                               payload.value().end())});
      produced += length.value();
    } else {
      return util::Error::make("unknown delta op tag");
    }
    if (produced > delta.target_size) {
      return util::Error::make("delta ops overrun declared target size");
    }
  }
  if (!r.exhausted()) {
    return util::Error::make("trailing bytes after final delta op");
  }
  if (produced != delta.target_size) {
    return util::Error::make("delta ops do not cover target size");
  }
  return delta;
}

}  // namespace droute::rsyncx
