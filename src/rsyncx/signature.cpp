#include "rsyncx/signature.h"

#include <algorithm>
#include <cmath>

#include "check/contract.h"
#include "rsyncx/checksum.h"

namespace droute::rsyncx {

Signature compute_signature(std::span<const std::uint8_t> basis,
                            std::uint32_t block_size) {
  DROUTE_CHECK(block_size > 0, "block_size must be positive");
  Signature sig;
  sig.block_size = block_size;
  sig.basis_size = basis.size();
  const std::size_t full_blocks = basis.size() / block_size;
  const bool tail = basis.size() % block_size != 0;
  sig.blocks.reserve(full_blocks + (tail ? 1 : 0));
  std::uint32_t index = 0;
  for (std::size_t off = 0; off < basis.size(); off += block_size) {
    const std::size_t len = std::min<std::size_t>(block_size,
                                                  basis.size() - off);
    const auto block = basis.subspan(off, len);
    BlockSignature bs;
    bs.weak = weak_checksum(block);
    bs.strong = Md5::hash(block);
    bs.index = index++;
    sig.blocks.push_back(bs);
  }
  return sig;
}

std::uint32_t recommended_block_size(std::uint64_t file_size) {
  // rsync heuristic: roughly sqrt(size), rounded to a multiple of 8,
  // clamped to [700, 128 KiB] (700 is rsync's historical floor).
  if (file_size == 0) return 700;
  const double root = std::sqrt(static_cast<double>(file_size));
  auto size = static_cast<std::uint32_t>(root / 8.0) * 8;
  return std::clamp<std::uint32_t>(size, 700, 128 * 1024);
}

SignatureIndex::SignatureIndex(const Signature& signature)
    : signature_(&signature) {
  by_weak_.reserve(signature.blocks.size());
  for (std::uint32_t i = 0; i < signature.blocks.size(); ++i) {
    by_weak_[signature.blocks[i].weak].push_back(i);
  }
}

std::span<const std::uint32_t> SignatureIndex::candidates(
    std::uint32_t weak) const {
  auto it = by_weak_.find(weak);
  if (it == by_weak_.end()) return {};
  return it->second;
}

}  // namespace droute::rsyncx
