// Randomized end-to-end scenarios: a topology, a workload, a chaos plan —
// and the properties every run must satisfy.
//
// A chaos::Case is the unit the property harness generates, runs, shrinks
// and serializes. random_case derives three independent Rng substreams from
// one seed via util::Rng::split (keys 1/2/3 for topology/workload/chaos), so
// shrinking one component never perturbs the others' draws and a seed
// identifies the whole case.
//
// run_case builds the full stack (Simulator + SimAuditor + RouteTable +
// Fabric + StorageServer + upload/detour/rsync engines), arms a
// chaos::Injector, drives every work item as a sim::Task coroutine, and
// checks, during and after the run:
//   * fabric_audit     — flow conservation + link capacity (check::audit_fabric)
//     after every injected fault and at quiescence,
//   * gao_rexford      — every BGP-selected AS path valley-free, re-checked
//     after every routing-churning fault,
//   * task_completion  — every work task finishes (or is cancelled at the
//     deadline and then finishes),
//   * flow_leak / session_leak — no active flows, no open upload sessions
//     after the drain,
//   * quiescent        — simulator fully drained, no cancelled backlog,
//   * detour_identity  — successful store-and-forward detours satisfy
//     duration == leg1 + leg2 (within fluid rounding slack),
//   * ctrl_no_dead_steer — when steered work is present, every routable
//     steering decision's legs re-validate against the live route table at
//     decision time (the controller never steers onto a dead path).
// The report carries a digest of all observable outcomes; identical seeds
// must produce identical digests (the determinism property).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/plan.h"
#include "chaos/topology_gen.h"
#include "util/result.h"

namespace droute::chaos {

/// What one workload item does (which transfer engine it drives).
enum class WorkKind : std::uint8_t {
  kApiUpload,        // direct client -> provider API upload
  kDetour,           // store-and-forward via an intermediate DTN
  kDetourPipelined,  // pipelined detour (legs overlap)
  kRsyncPush,        // bare rsync push client -> DTN (no provider)
  kSteered,          // upload path chosen online by ctrl::Controller
  kBatched,          // striped multi-request batch via submit_batch()
};

/// Serialization token for a work kind (e.g. "api_upload").
std::string work_kind_name(WorkKind kind);

/// Inverse of work_kind_name.
[[nodiscard]] util::Result<WorkKind> parse_work_kind(const std::string& token);

struct WorkItem {
  double start_s = 0.0;
  WorkKind kind = WorkKind::kApiUpload;
  int client = 0;             // source host (node index)
  int via = -1;               // DTN host for detours, destination for rsync
  std::uint64_t bytes = 0;
  std::uint64_t file_seed = 0;

  friend bool operator==(const WorkItem& a, const WorkItem& b) {
    // Exact double equality on purpose: round-trip fidelity (see Event).
    return a.start_s == b.start_s && a.kind == b.kind &&
           a.client == b.client && a.via == b.via && a.bytes == b.bytes &&
           a.file_seed == b.file_seed;
  }
};

/// One self-contained scenario. Plain data: generated, shrunk, serialized.
struct Case {
  std::uint64_t seed = 0;
  GenTopology topology;
  int server_node = 0;  // host node acting as the provider front-end
  std::vector<WorkItem> work;
  Plan plan;

  friend bool operator==(const Case&, const Case&) = default;
};

struct CaseSpec {
  TopologySpec topology;
  double horizon_s = 90.0;  // work starts and chaos events land inside this
  int min_work = 1;
  int max_work = 4;
  int max_chaos_events = 8;
};

/// Draws a complete case from `seed`. Topology, workload and chaos plan use
/// split substreams (keys 1, 2, 3), so each is independently reproducible.
Case random_case(std::uint64_t seed, const CaseSpec& spec = {});

/// Per-work-item observable outcome (inputs to the run digest).
struct WorkOutcome {
  bool done = false;
  bool cancelled = false;  // cancelled at the deadline before starting/finishing
  bool success = false;
  std::string error;
  double start_s = 0.0;
  double end_s = 0.0;
  double leg1_s = 0.0;  // detours only
  double leg2_s = 0.0;  // store-and-forward detours only
};

struct RunReport {
  std::string violated;  // first violated property name; empty = all held
  std::string detail;    // human-readable description of the violation
  std::uint64_t digest = 0;  // FNV-1a over all observable outcomes
  std::size_t injected = 0;
  std::size_t skipped = 0;
  std::size_t completed_work = 0;
  std::size_t cancelled_work = 0;
  std::vector<WorkOutcome> outcomes;

  bool ok() const { return violated.empty(); }
};

/// Slack allowed on the detour duration == leg1 + leg2 identity (relative
/// to the duration, floored at 1 second's worth of 1e-6).
inline constexpr double kDetourIdentitySlack = 1e-6;

/// After the last scheduled stimulus (work start or chaos event), the run
/// gets this much more simulated time before stragglers are cancelled.
inline constexpr double kRunAllowanceS = 3600.0;

/// Knobs orthogonal to the case itself — never serialized, never shrunk, so
/// a seed still identifies the case under any options.
struct RunOptions {
  /// Drive the fabric in the retained full-recompute reference mode instead
  /// of the default incremental allocator. The differential equivalence
  /// suite runs every case both ways and holds the digests byte-equal.
  bool full_recompute = false;
  /// When > 0 (and full_recompute is off), drive the fabric in
  /// AllocMode::kSharded with this many fill workers (DESIGN.md §16). Any
  /// worker count must reproduce the incremental digest byte-for-byte — the
  /// `sharded_equivalence` property.
  int shard_workers = 0;
};

/// Builds the stack, runs the case to quiescence, checks every property.
/// Deterministic: same case + same options, same report (incl. the digest).
RunReport run_case(const Case& c, const RunOptions& options);
RunReport run_case(const Case& c);

}  // namespace droute::chaos
