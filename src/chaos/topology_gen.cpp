#include "chaos/topology_gen.h"

#include <cmath>
#include <string>
#include <utility>

namespace droute::chaos {

namespace {

double log_uniform(util::Rng& rng, double lo, double hi) {
  return std::exp(rng.uniform(std::log(lo), std::log(hi)));
}

}  // namespace

util::Result<net::Topology> GenTopology::build() const {
  net::Topology::Builder builder;
  for (int i = 0; i < ases; ++i) {
    builder.add_as("as" + std::to_string(i));
  }
  for (const GenRelation& rel : relations) {
    if (rel.a < 0 || rel.a >= ases || rel.b < 0 || rel.b >= ases) {
      return util::Error::make("relation references undeclared AS");
    }
    builder.relate(rel.a, rel.b, rel.b_is_to_a);
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const GenNode& n = nodes[i];
    if (n.as < 0 || n.as >= ases) {
      return util::Error::make("node references undeclared AS");
    }
    // Built via += to dodge GCC 12's -Wrestrict false positive on
    // `"literal" + std::to_string(...)` (libstdc++ PR 105651).
    std::string name = "n";
    name += std::to_string(i);
    name += ".as";
    name += std::to_string(n.as);
    const geo::Coord coord{n.lat, n.lon};
    if (n.host) {
      builder.add_host(n.as, name, coord);
    } else {
      builder.add_router(n.as, name, coord);
    }
  }
  for (const GenLink& l : links) {
    if (l.src < 0 || static_cast<std::size_t>(l.src) >= nodes.size() ||
        l.dst < 0 || static_cast<std::size_t>(l.dst) >= nodes.size()) {
      return util::Error::make("link references undeclared node");
    }
    net::LinkOpts opts;
    opts.policer_per_flow_mbps = l.policer_mbps;
    builder.add_link(l.src, l.dst, l.capacity_mbps, l.delay_s, opts);
  }
  return std::move(builder).build();
}

std::vector<int> GenTopology::hosts() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].host) out.push_back(static_cast<int>(i));
  }
  return out;
}

GenTopology random_topology(util::Rng& rng, const TopologySpec& spec) {
  GenTopology topo;
  topo.ases = static_cast<int>(
      rng.uniform_int(spec.min_ases, std::max(spec.min_ases, spec.max_ases)));

  // --- AS graph: provider tree + shortcuts + peers (acyclic by index). ---
  auto related = [&topo](int a, int b) {
    for (const GenRelation& rel : topo.relations) {
      if ((rel.a == a && rel.b == b) || (rel.a == b && rel.b == a)) {
        return true;
      }
    }
    return false;
  };
  for (int i = 1; i < topo.ases; ++i) {
    const int provider = static_cast<int>(rng.uniform_int(0, i - 1));
    // b_is_to_a seen from `provider`: AS i is its customer.
    topo.relations.push_back({provider, i, net::AsRelation::kCustomer});
  }
  const int extra = static_cast<int>(
      rng.uniform_int(0, std::max(0, spec.max_extra_provider_edges)));
  for (int e = 0; e < extra && topo.ases > 2; ++e) {
    const int customer = static_cast<int>(rng.uniform_int(2, topo.ases - 1));
    const int provider = static_cast<int>(rng.uniform_int(0, customer - 1));
    if (!related(provider, customer)) {
      topo.relations.push_back({provider, customer, net::AsRelation::kCustomer});
    }
  }
  const int peers =
      static_cast<int>(rng.uniform_int(0, std::max(0, spec.max_peer_edges)));
  for (int e = 0; e < peers && topo.ases > 1; ++e) {
    const int a = static_cast<int>(rng.uniform_int(0, topo.ases - 1));
    const int b = static_cast<int>(rng.uniform_int(0, topo.ases - 1));
    if (a != b && !related(a, b)) {
      topo.relations.push_back({a, b, net::AsRelation::kPeer});
    }
  }

  // --- Nodes: 1-2 routers per AS, hosts hanging off routers. ---
  std::vector<std::vector<int>> as_routers(
      static_cast<std::size_t>(topo.ases));
  auto random_coord = [&rng] {
    return std::pair<double, double>{rng.uniform(-55.0, 65.0),
                                     rng.uniform(-180.0, 180.0)};
  };
  for (int as = 0; as < topo.ases; ++as) {
    const int routers = static_cast<int>(rng.uniform_int(1, 2));
    const auto [lat, lon] = random_coord();
    for (int r = 0; r < routers; ++r) {
      as_routers[static_cast<std::size_t>(as)].push_back(
          static_cast<int>(topo.nodes.size()));
      topo.nodes.push_back(
          {as, false, lat + rng.uniform(-1.0, 1.0),
           lon + rng.uniform(-1.0, 1.0)});
    }
    const int hosts = static_cast<int>(rng.uniform_int(
        spec.min_hosts_per_as,
        std::max(spec.min_hosts_per_as, spec.max_hosts_per_as)));
    for (int h = 0; h < hosts; ++h) {
      topo.nodes.push_back(
          {as, true, lat + rng.uniform(-2.0, 2.0),
           lon + rng.uniform(-2.0, 2.0)});
    }
  }

  auto add_duplex = [&topo](int a, int b, double capacity, double delay,
                            double policer) {
    topo.links.push_back({a, b, capacity, delay, policer});
    topo.links.push_back({b, a, capacity, delay, policer});
  };

  // --- Intra-AS: router chain, hosts onto a random router. ---
  for (int as = 0; as < topo.ases; ++as) {
    const auto& routers = as_routers[static_cast<std::size_t>(as)];
    for (std::size_t r = 1; r < routers.size(); ++r) {
      add_duplex(routers[r - 1], routers[r],
                 log_uniform(rng, 1000.0, 40000.0),
                 rng.uniform(0.0001, 0.002), 0.0);
    }
  }
  for (std::size_t n = 0; n < topo.nodes.size(); ++n) {
    if (!topo.nodes[n].host) continue;
    const auto& routers =
        as_routers[static_cast<std::size_t>(topo.nodes[n].as)];
    const int attach = routers[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(routers.size()) - 1))];
    add_duplex(static_cast<int>(n), attach,
               log_uniform(rng, 100.0, 10000.0),
               rng.uniform(0.0002, 0.003), 0.0);
  }

  // --- Inter-AS: one duplex gateway link per declared adjacency. ---
  for (const GenRelation& rel : topo.relations) {
    const auto& ra = as_routers[static_cast<std::size_t>(rel.a)];
    const auto& rb = as_routers[static_cast<std::size_t>(rel.b)];
    const int ga = ra[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ra.size()) - 1))];
    const int gb = rb[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(rb.size()) - 1))];
    const double policer = rng.chance(spec.policer_probability)
                               ? rng.uniform(5.0, 50.0)
                               : 0.0;
    add_duplex(ga, gb, log_uniform(rng, 200.0, 20000.0),
               rng.uniform(0.001, 0.04), policer);
  }
  return topo;
}

}  // namespace droute::chaos
