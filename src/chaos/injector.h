// Applies a chaos::Plan to a live simulated stack, deterministically.
//
// The injector schedules one simulator event per plan event and applies the
// fault through the stack's existing mutation hooks (Fabric::fail_link /
// restore_link / abort_flow / reallocate_now, Topology::set_link_capacity /
// set_link_policer / set_middlebox / set_link_enabled,
// StorageServer::set_throttle). Injection is therefore bit-reproducible:
// the same plan against the same world produces the same event interleaving
// (simulator ties break by scheduling order, and the injector arms its
// events before the workload starts).
//
// Every applied event bumps `chaos.events_injected_total` and emits a
// zero-duration `chaos.event_inject` obs span carrying the event's kind,
// target and value, so chaos shows up in exported traces exactly where it
// struck. Events with out-of-range targets (possible after aggressive
// shrinking or hand edits) are counted as skipped, never fatal.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "chaos/plan.h"
#include "cloud/storage_server.h"
#include "net/fabric.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace droute::obs {
class Counter;
}  // namespace droute::obs

namespace droute::chaos {

/// The live stack a plan is applied to. Simulator, fabric, topology and
/// routes are required; servers may be empty (throttle events then skip).
struct Targets {
  sim::Simulator* simulator = nullptr;
  net::Fabric* fabric = nullptr;
  net::Topology* topo = nullptr;
  net::RouteTable* routes = nullptr;
  std::vector<cloud::StorageServer*> servers;
};

/// kDiurnalTraffic shape: the modulation runs kDiurnalCycles full sine
/// periods of kDiurnalPeriodS simulated seconds, stepped kDiurnalSteps times
/// per period, then restores the base capacity (bounded, so runs drain).
inline constexpr double kDiurnalPeriodS = 30.0;
inline constexpr int kDiurnalCycles = 2;
inline constexpr int kDiurnalSteps = 8;

class Injector {
 public:
  explicit Injector(Targets targets);

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Schedules every plan event (events not after now() fire immediately in
  /// scheduling order). The injector must outlive the simulation run.
  void arm(const Plan& plan);

  /// Applies one event right now (arm()'s handlers funnel through here;
  /// tests drive it directly).
  void apply(const Event& event);

  /// Hook running after every applied event — the property harness audits
  /// invariants here, immediately after each fault lands.
  void set_post_apply(std::function<void(const Event&)> hook) {
    post_apply_ = std::move(hook);
  }

  /// Events applied so far.
  std::size_t injected() const { return injected_; }

  /// Events dropped for out-of-range targets.
  std::size_t skipped() const { return skipped_; }

 private:
  // Returns false when the event's target is out of range.
  bool apply_impl(const Event& event);

  bool valid_link(std::int32_t id) const;
  bool valid_node(std::int32_t id) const;

  Targets targets_;
  std::vector<Event> armed_;  // stable storage for scheduled handlers
  std::function<void(const Event&)> post_apply_;
  std::size_t injected_ = 0;
  std::size_t skipped_ = 0;
  obs::Counter* obs_injected_ = nullptr;
  obs::Counter* obs_skipped_ = nullptr;
};

}  // namespace droute::chaos
