// Text serialization for chaos::Case — the `.case` replay-corpus format.
//
// A case file is line-oriented, one declaration per line:
//
//   # droute proptest case v1
//   # seed: 42
//   # violated: detour_identity
//   case 42
//   topo_ases 3
//   topo_rel 0 1 customer
//   topo_node 0 router 49.2 -123.1
//   topo_link 0 1 1000 0.002 0
//   server 4
//   work 1.5 api_upload 3 -1 8388608 17293822569102704640
//   event 12 link_fail 6 0
//
// `#` lines are comments; format_case always emits the `# seed:` and
// `# violated:` headers because the repo lint requires them on files under
// tests/corpus/ (the violated header names the property the case once
// broke — provenance for whoever reruns it). Doubles use format_double, so
// parse -> format reproduces the input byte-for-byte (round-trip tested).
#pragma once

#include <string>

#include "chaos/scenario.h"
#include "util/result.h"

namespace droute::chaos {

/// Serializes `c` with provenance headers. `violated` names the property
/// the case was minimized against ("none" for hand-written regressions).
std::string format_case(const Case& c, const std::string& violated);

/// Inverse of format_case (ignores comments and blank lines).
[[nodiscard]] util::Result<Case> parse_case(const std::string& text);

/// Reads and parses a case file.
[[nodiscard]] util::Result<Case> load_case_file(const std::string& path);

/// Writes format_case output to `path` (truncating).
[[nodiscard]] util::Status save_case_file(const std::string& path,
                                          const Case& c,
                                          const std::string& violated);

}  // namespace droute::chaos
