// Random valley-free topology generator for property-based testing.
//
// random_topology draws an explicit, serializable topology description
// (GenTopology) from a util::Rng substream. The AS graph is a provider
// tree (every AS above 0 picks a provider among lower-numbered ASes) plus
// optional extra customer-provider shortcuts and peer edges — always
// acyclic in the customer-provider relation, so BGP-lite always converges
// and every selected path is valley-free by construction (the property
// harness re-validates this after every routing churn, which is the point:
// a violation means a routing bug, not a generator bug).
//
// GenTopology is the shrinkable unit: links can be dropped one at a time
// (chaos::shrink) and the remainder rebuilt, so a minimal reproduction
// carries only the links that matter. Node and link ids equal their index
// in the description, which keeps chaos-event targets stable across
// serialization.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.h"
#include "util/result.h"
#include "util/rng.h"

namespace droute::chaos {

struct GenRelation {
  int a = 0;
  int b = 0;
  net::AsRelation b_is_to_a = net::AsRelation::kCustomer;

  friend bool operator==(const GenRelation&, const GenRelation&) = default;
};

struct GenNode {
  int as = 0;
  bool host = false;
  double lat = 0.0;
  double lon = 0.0;

  friend bool operator==(const GenNode&, const GenNode&) = default;
};

struct GenLink {
  int src = 0;  // node index
  int dst = 0;
  double capacity_mbps = 0.0;
  double delay_s = 0.0;
  double policer_mbps = 0.0;  // per-flow policer, 0 = none

  friend bool operator==(const GenLink&, const GenLink&) = default;
};

struct GenTopology {
  int ases = 0;
  std::vector<GenRelation> relations;
  std::vector<GenNode> nodes;  // node id == index
  std::vector<GenLink> links;  // link id == index (directed entries)

  /// Materializes a net::Topology (Builder + validate). Node and link ids
  /// in the result equal the description indices.
  [[nodiscard]] util::Result<net::Topology> build() const;

  /// Indices of host nodes (workload endpoints).
  std::vector<int> hosts() const;

  friend bool operator==(const GenTopology&, const GenTopology&) = default;
};

struct TopologySpec {
  int min_ases = 2;
  int max_ases = 5;
  int min_hosts_per_as = 1;
  int max_hosts_per_as = 3;
  int max_extra_provider_edges = 2;
  int max_peer_edges = 2;
  double policer_probability = 0.15;  // per inter-AS adjacency
};

/// Draws a topology; deterministic in `rng`'s state.
GenTopology random_topology(util::Rng& rng, const TopologySpec& spec = {});

}  // namespace droute::chaos
