#include "chaos/scenario.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "chaos/injector.h"
#include "ctrl/controller.h"
#include "check/fabric_audit.h"
#include "check/sim_audit.h"
#include "check/valley_free.h"
#include "cloud/provider.h"
#include "cloud/storage_server.h"
#include "net/fabric.h"
#include "net/routing.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "transfer/api_upload.h"
#include "transfer/detour.h"
#include "transfer/parallel.h"
#include "transfer/rsync_engine.h"
#include "transfer/steered.h"

namespace droute::chaos {

namespace {

struct WorkKindName {
  WorkKind kind;
  const char* name;
};

constexpr std::array<WorkKindName, 6> kWorkKindNames{{
    {WorkKind::kApiUpload, "api_upload"},
    {WorkKind::kDetour, "detour"},
    {WorkKind::kDetourPipelined, "detour_pipelined"},
    {WorkKind::kRsyncPush, "rsync_push"},
    {WorkKind::kSteered, "steered"},
    {WorkKind::kBatched, "batched"},
}};

double log_uniform(util::Rng& rng, double lo, double hi) {
  return std::exp(rng.uniform(std::log(lo), std::log(hi)));
}

void fnv_mix(std::uint64_t& hash, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (word >> (8 * byte)) & 0xffu;
    hash *= 0x100000001b3ull;
  }
}

void fnv_mix_double(std::uint64_t& hash, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  fnv_mix(hash, bits);
}

}  // namespace

std::string work_kind_name(WorkKind kind) {
  for (const WorkKindName& entry : kWorkKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

util::Result<WorkKind> parse_work_kind(const std::string& token) {
  for (const WorkKindName& entry : kWorkKindNames) {
    if (token == entry.name) return entry.kind;
  }
  return util::Error::make("unknown work kind: " + token);
}

Case random_case(std::uint64_t seed, const CaseSpec& spec) {
  const util::Rng root(seed);
  util::Rng topo_rng = root.split(1);
  util::Rng work_rng = root.split(2);
  util::Rng chaos_rng = root.split(3);

  Case c;
  c.seed = seed;
  c.topology = random_topology(topo_rng, spec.topology);

  const std::vector<int> hosts = c.topology.hosts();
  // The generator guarantees >= 2 ASes x >= 1 host, so hosts is never
  // smaller than 2; the server takes one, clients draw from the rest.
  c.server_node = hosts[static_cast<std::size_t>(work_rng.uniform_int(
      0, static_cast<std::int64_t>(hosts.size()) - 1))];
  std::vector<int> clients;
  for (int h : hosts) {
    if (h != c.server_node) clients.push_back(h);
  }

  const int items = static_cast<int>(work_rng.uniform_int(
      spec.min_work, std::max(spec.min_work, spec.max_work)));
  for (int i = 0; i < items && !clients.empty(); ++i) {
    WorkItem item;
    item.start_s = work_rng.uniform(0.0, 0.35 * spec.horizon_s);
    item.client = clients[static_cast<std::size_t>(work_rng.uniform_int(
        0, static_cast<std::int64_t>(clients.size()) - 1))];
    item.bytes = static_cast<std::uint64_t>(
        log_uniform(work_rng, 256.0 * 1024, 48.0 * 1024 * 1024));
    item.file_seed = work_rng.next_u64();
    const std::int64_t pick = work_rng.uniform_int(0, 9);
    // 40% direct upload, 20% detour, 10% pipelined detour, 10% rsync,
    // 10% controller-steered upload, 10% striped batch upload.
    WorkKind kind = WorkKind::kApiUpload;
    if (pick >= 4 && pick <= 5) kind = WorkKind::kDetour;
    if (pick == 6) kind = WorkKind::kDetourPipelined;
    if (pick == 7) kind = WorkKind::kRsyncPush;
    if (pick == 8) kind = WorkKind::kSteered;
    if (pick == 9) kind = WorkKind::kBatched;
    if (kind != WorkKind::kApiUpload && kind != WorkKind::kSteered &&
        kind != WorkKind::kBatched) {
      // Detours and rsync need a second endpoint distinct from the client.
      std::vector<int> vias;
      for (int h : clients) {
        if (h != item.client) vias.push_back(h);
      }
      if (vias.empty()) {
        kind = WorkKind::kApiUpload;
      } else {
        item.via = vias[static_cast<std::size_t>(work_rng.uniform_int(
            0, static_cast<std::int64_t>(vias.size()) - 1))];
      }
    }
    item.kind = kind;
    c.work.push_back(item);
  }

  PlanSpec plan_spec;
  plan_spec.horizon_s = spec.horizon_s;
  plan_spec.links = static_cast<int>(c.topology.links.size());
  plan_spec.nodes = static_cast<int>(c.topology.nodes.size());
  plan_spec.servers = 1;
  // Every work item opens a handful of flows (rsync runs two, uploads one
  // per chunk); over-approximating the id range keeps aborts interesting
  // while documented-no-op on ids that never materialize.
  plan_spec.max_flow_id = std::max(1, items * 6);
  plan_spec.max_events = spec.max_chaos_events;
  c.plan = random_plan(chaos_rng, plan_spec);
  c.plan.seed = seed;
  return c;
}

namespace {

/// Everything drive_item needs, stable for the whole run.
struct Stack {
  sim::Simulator* simulator = nullptr;
  transfer::ApiUploadEngine* api = nullptr;
  transfer::DetourEngine* detour = nullptr;
  transfer::RsyncEngine* rsync = nullptr;
  transfer::SteeredUploadEngine* steered = nullptr;  // only with kSteered work
  transfer::ParallelPushEngine* parallel = nullptr;  // kBatched striped pushes
  int server_node = 0;
};

// Stripe count for kBatched work: enough to exercise multi-request batch
// fan-out (launch order, partial failure, cancel cascade) without swamping
// the chaos plan's flow-id range.
constexpr int kBatchedStreams = 3;

sim::Task<void> drive_item(Stack stack, WorkItem item, WorkOutcome* out) {
  auto wake = sim::delay_until(*stack.simulator, item.start_s);
  if (!co_await wake) {
    out->done = true;
    out->cancelled = true;
    co_return;
  }
  out->start_s = stack.simulator->now();
  // Built via += to dodge GCC 12's -Wrestrict false positive on
  // `"literal" + std::to_string(...)` (libstdc++ PR 105651).
  std::string file_name = "w";
  file_name += std::to_string(item.file_seed);
  transfer::FileSpec file{file_name, item.bytes, item.file_seed};
  switch (item.kind) {
    case WorkKind::kApiUpload: {
      auto task = stack.api->upload_task(item.client, file);
      const auto result = co_await task;
      if (result.ok()) {
        out->success = result.value().success;
        out->error = result.value().error;
        out->end_s = result.value().end_time;
      } else {
        out->error = result.error().message;
        out->end_s = stack.simulator->now();
      }
      break;
    }
    case WorkKind::kDetour:
    case WorkKind::kDetourPipelined: {
      transfer::DetourOptions options;
      options.mode = item.kind == WorkKind::kDetour
                         ? transfer::DetourMode::kStoreAndForward
                         : transfer::DetourMode::kPipelined;
      auto task =
          stack.detour->transfer_task(item.client, item.via, file, options);
      const auto result = co_await task;
      if (result.ok()) {
        out->success = result.value().success;
        out->error = result.value().error;
        out->end_s = result.value().end_time;
        out->leg1_s = result.value().leg1_s;
        out->leg2_s = result.value().leg2_s;
      } else {
        out->error = result.error().message;
        out->end_s = stack.simulator->now();
      }
      break;
    }
    case WorkKind::kRsyncPush: {
      auto task = stack.rsync->push_task(item.client, item.via, file);
      const auto result = co_await task;
      if (result.ok()) {
        out->success = result.value().success;
        out->error = result.value().error;
        out->end_s = result.value().end_time;
      } else {
        out->error = result.error().message;
        out->end_s = stack.simulator->now();
      }
      break;
    }
    case WorkKind::kSteered: {
      auto task = stack.steered->upload_task(item.client, file);
      const auto result = co_await task;
      if (result.ok()) {
        out->success = result.value().success;
        out->error = result.value().error;
        out->end_s = result.value().end_time;
      } else {
        out->error = result.error().message;
        out->end_s = stack.simulator->now();
      }
      break;
    }
    case WorkKind::kBatched: {
      auto task = stack.parallel->push_task(item.client, stack.server_node,
                                            file, kBatchedStreams);
      const auto result = co_await task;
      if (result.ok()) {
        out->success = result.value().success;
        out->error = result.value().error;
        out->end_s = result.value().end_time;
      } else {
        out->error = result.error().message;
        out->end_s = stack.simulator->now();
      }
      break;
    }
  }
  out->done = true;
  co_return;
}

}  // namespace

RunReport run_case(const Case& c) { return run_case(c, RunOptions{}); }

RunReport run_case(const Case& c, const RunOptions& options) {
  RunReport report;
  auto fail = [&report](const std::string& property,
                        const std::string& detail) {
    if (report.violated.empty()) {
      report.violated = property;
      report.detail = detail;
    }
  };

  auto topo_result = c.topology.build();
  if (!topo_result.ok()) {
    fail("topology_build", topo_result.error().message);
    return report;
  }
  net::Topology topo = std::move(topo_result).value();

  sim::Simulator simulator;
  check::SimAuditor auditor(&simulator);
  net::RouteTable routes(&topo);
  net::Fabric fabric(&simulator, &topo, &routes);
  if (options.full_recompute) {
    fabric.set_alloc_mode(net::Fabric::AllocMode::kFullRecompute);
  } else if (options.shard_workers > 0) {
    fabric.set_alloc_mode(net::Fabric::AllocMode::kSharded);
    fabric.set_shard_workers(options.shard_workers);
  }
  cloud::StorageServer server(
      cloud::ProviderKind::kGoogleDrive,
      cloud::default_profile(cloud::ProviderKind::kGoogleDrive));
  server.set_clock([&simulator] { return simulator.now(); });
  transfer::ApiUploadEngine api(&fabric, &server, c.server_node);
  transfer::DetourEngine detour(&fabric, &api);
  transfer::RsyncEngine rsync(&fabric);
  transfer::ParallelPushEngine parallel(&fabric);

  // kSteered work brings up the online control plane: the controller probes
  // candidate paths (every non-server host is a potential relay) and the
  // steered engine consults it per session. The decision hook enforces
  // ctrl_no_dead_steer live: a routable decision must re-validate leg by
  // leg against the same route table the controller consulted.
  const bool has_steered =
      std::any_of(c.work.begin(), c.work.end(), [](const WorkItem& item) {
        return item.kind == WorkKind::kSteered;
      });
  std::unique_ptr<ctrl::Controller> controller;
  std::unique_ptr<transfer::SteeredUploadEngine> steered;
  if (has_steered) {
    controller = std::make_unique<ctrl::Controller>(simulator, fabric, routes);
    controller->set_provider(c.server_node);
    std::vector<int> steered_clients;
    for (const WorkItem& item : c.work) {
      if (item.kind != WorkKind::kSteered) continue;
      if (std::find(steered_clients.begin(), steered_clients.end(),
                    item.client) == steered_clients.end()) {
        steered_clients.push_back(item.client);
      }
    }
    for (const int client : steered_clients) controller->add_client(client);
    for (const int host : c.topology.hosts()) {
      if (host != c.server_node) controller->add_relay(host);
    }
    controller->set_decision_hook(
        [&fail, &routes, &c](net::NodeId client, const ctrl::Decision& d) {
          if (!d.routable) return;  // no live path existed; nothing steered
          net::NodeId prev = client;
          std::vector<net::NodeId> legs = d.path.relays;
          legs.push_back(c.server_node);
          for (const net::NodeId hop : legs) {
            if (!routes.route(prev, hop).ok()) {
              fail("ctrl_no_dead_steer",
                   "decision " + d.path.label() + " for client " +
                       std::to_string(client) + " has dead leg " +
                       std::to_string(prev) + " -> " + std::to_string(hop));
              return;
            }
            prev = hop;
          }
        });
    steered = std::make_unique<transfer::SteeredUploadEngine>(
        &fabric, &api, controller.get());
    controller->start();
  }

  // Gao–Rexford: every AS pair BGP can route must be valley-free.
  // Unreachable pairs are legitimate under policy routing (e.g. after a
  // shrinker dropped the only transit link), so as_path errors pass.
  auto gao_rexford = [&topo, &routes]() -> util::Status {
    const auto as_count = static_cast<net::AsId>(topo.as_count());
    for (net::AsId src = 0; src < as_count; ++src) {
      for (net::AsId dst = 0; dst < as_count; ++dst) {
        if (src == dst) continue;
        auto path = routes.as_path(src, dst);
        if (!path.ok()) continue;
        auto valid = check::validate_as_path(topo, path.value());
        if (!valid.ok()) return valid;
      }
    }
    return util::Status::success();
  };
  if (auto st = gao_rexford(); !st.ok()) {
    fail("gao_rexford", st.error().message);
  }

  Injector injector({&simulator, &fabric, &topo, &routes, {&server}});
  injector.set_post_apply([&](const Event& event) {
    if (auto st = check::audit_fabric(fabric); !st.ok()) {
      fail("fabric_audit", st.error().message);
    }
    if (event_churns_routes(event.kind)) {
      if (auto st = gao_rexford(); !st.ok()) {
        fail("gao_rexford", st.error().message);
      }
    }
    // The control plane reacts to every injected fault with an immediate
    // out-of-band epoch (re-probe + re-steer).
    if (controller != nullptr) {
      controller->on_network_event(event_kind_name(event.kind));
    }
  });
  injector.arm(c.plan);

  report.outcomes.resize(c.work.size());
  std::vector<sim::Task<void>> tasks;
  tasks.reserve(c.work.size());
  const Stack stack{&simulator, &api,      &detour,      &rsync,
                    steered.get(), &parallel, c.server_node};
  for (std::size_t i = 0; i < c.work.size(); ++i) {
    tasks.push_back(drive_item(stack, c.work[i], &report.outcomes[i]));
  }

  double last_stimulus = 0.0;
  for (const Event& event : c.plan.events) {
    last_stimulus = std::max(last_stimulus, event.at_s);
  }
  for (const WorkItem& item : c.work) {
    last_stimulus = std::max(last_stimulus, item.start_s);
  }
  simulator.run_until(last_stimulus + kRunAllowanceS);
  // Stop the controller's epoch loop (and any in-flight probes) before the
  // drain: its self-rescheduling tick would otherwise never quiesce.
  if (controller != nullptr) controller->stop();
  for (auto& task : tasks) {
    if (!task.done()) task.cancel();
  }
  simulator.run();  // drain cancellation fallout

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (!tasks[i].done()) {
      fail("task_completion",
           "work item " + std::to_string(i) + " never finished");
    }
  }
  for (const WorkOutcome& outcome : report.outcomes) {
    if (outcome.cancelled) {
      ++report.cancelled_work;
    } else if (outcome.done) {
      ++report.completed_work;
    }
  }
  if (fabric.active_flow_count() != 0) {
    fail("flow_leak", std::to_string(fabric.active_flow_count()) +
                          " flows still active after drain");
  }
  if (server.open_sessions() != 0) {
    fail("session_leak", std::to_string(server.open_sessions()) +
                             " upload sessions still open after drain");
  }
  // Every engine's batch layer must have settled every BatchHandle: a
  // cancelled or abandoned batch that failed to release its requests shows
  // up here as a stuck transfer.batch_inflight count.
  const std::size_t batch_leak =
      api.batch_engine().batches_inflight() +
      detour.batch_engine().batches_inflight() +
      detour.rsync().batch_engine().batches_inflight() +
      rsync.batch_engine().batches_inflight() +
      parallel.batch_engine().batches_inflight() +
      (steered ? steered->rsync().batch_engine().batches_inflight() : 0);
  if (batch_leak != 0) {
    fail("batch_leak", std::to_string(batch_leak) +
                           " transfer batches still inflight after drain");
  }
  if (auto st = auditor.audit_quiescent(); !st.ok()) {
    fail("quiescent", st.error().message);
  }
  if (auto st = check::audit_fabric(fabric); !st.ok()) {
    fail("fabric_audit", st.error().message);
  }

  // Store-and-forward detours run their legs back to back; the total must
  // be the sum of the legs (the paper's 19 s + 17 s = 36 s identity).
  for (std::size_t i = 0; i < c.work.size(); ++i) {
    if (c.work[i].kind != WorkKind::kDetour) continue;
    const WorkOutcome& outcome = report.outcomes[i];
    if (!outcome.done || !outcome.success) continue;
    const double duration = outcome.end_s - outcome.start_s;
    const double legs = outcome.leg1_s + outcome.leg2_s;
    const double slack = kDetourIdentitySlack * std::max(1.0, duration);
    if (std::fabs(duration - legs) > slack) {
      fail("detour_identity",
           "work item " + std::to_string(i) + ": duration " +
               format_double(duration) + " != leg1+leg2 " +
               format_double(legs));
    }
  }

  report.injected = injector.injected();
  report.skipped = injector.skipped();

  std::uint64_t digest = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  fnv_mix(digest, c.seed);
  for (const WorkOutcome& outcome : report.outcomes) {
    fnv_mix(digest, (outcome.done ? 1u : 0u) | (outcome.cancelled ? 2u : 0u) |
                        (outcome.success ? 4u : 0u));
    fnv_mix_double(digest, outcome.start_s);
    fnv_mix_double(digest, outcome.end_s);
    fnv_mix_double(digest, outcome.leg1_s);
    fnv_mix_double(digest, outcome.leg2_s);
  }
  fnv_mix(digest, report.injected);
  fnv_mix(digest, report.skipped);
  fnv_mix(digest, fabric.delivered_bytes());
  fnv_mix(digest, server.throttled_requests());
  fnv_mix(digest, simulator.executed_events());
  if (controller != nullptr) {
    // Steered runs also pin the full decision trace (mixed only when the
    // control plane ran, so plain cases keep their historical digests).
    fnv_mix(digest, controller->trace().fnv1a());
  }
  report.digest = digest;
  return report;
}

}  // namespace droute::chaos
