#include "chaos/plan.h"

#include <algorithm>
#include <array>
#include <sstream>
#include <utility>

#include "util/fmt.h"

namespace droute::chaos {

namespace {

struct KindName {
  EventKind kind;
  const char* name;
};

constexpr std::array<KindName, 13> kKindNames{{
    {EventKind::kLinkFail, "link_fail"},
    {EventKind::kLinkRestore, "link_restore"},
    {EventKind::kRouteWithdraw, "route_withdraw"},
    {EventKind::kRouteAnnounce, "route_announce"},
    {EventKind::kCapacityRewrite, "capacity_rewrite"},
    {EventKind::kPolicerRewrite, "policer_rewrite"},
    {EventKind::kMiddleboxRewrite, "middlebox_rewrite"},
    {EventKind::kFlowAbort, "flow_abort"},
    {EventKind::kThrottleStorm, "throttle_storm"},
    {EventKind::kThrottleCalm, "throttle_calm"},
    {EventKind::kNodeCrash, "node_crash"},
    {EventKind::kNodeRecover, "node_recover"},
    {EventKind::kDiurnalTraffic, "diurnal_traffic"},
}};

}  // namespace

std::string event_kind_name(EventKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

util::Result<EventKind> parse_event_kind(const std::string& token) {
  for (const KindName& entry : kKindNames) {
    if (token == entry.name) return entry.kind;
  }
  return util::Error::make("unknown chaos event kind: " + token);
}

bool event_targets_link(EventKind kind) {
  switch (kind) {
    case EventKind::kLinkFail:
    case EventKind::kLinkRestore:
    case EventKind::kRouteWithdraw:
    case EventKind::kRouteAnnounce:
    case EventKind::kCapacityRewrite:
    case EventKind::kPolicerRewrite:
    case EventKind::kDiurnalTraffic:
      return true;
    default:
      return false;
  }
}

bool event_churns_routes(EventKind kind) {
  switch (kind) {
    case EventKind::kLinkFail:
    case EventKind::kLinkRestore:
    case EventKind::kRouteWithdraw:
    case EventKind::kRouteAnnounce:
    case EventKind::kNodeCrash:
    case EventKind::kNodeRecover:
      return true;
    default:
      return false;
  }
}

std::string format_double(double value) { return util::format_double(value); }

std::string format_event(const Event& event) {
  return "event " + format_double(event.at_s) + " " +
         event_kind_name(event.kind) + " " + std::to_string(event.target) +
         " " + format_double(event.value);
}

util::Result<Event> parse_event_line(const std::string& line) {
  std::istringstream in(line);
  std::string keyword;
  std::string kind_token;
  Event event;
  if (!(in >> keyword >> event.at_s >> kind_token >> event.target >>
        event.value) ||
      keyword != "event") {
    return util::Error::make("malformed event line: " + line);
  }
  auto kind = parse_event_kind(kind_token);
  if (!kind.ok()) return kind.error();
  event.kind = kind.value();
  return event;
}

std::string format_plan(const Plan& plan) {
  std::string out = "# droute chaos plan v1\n";
  out += "seed " + std::to_string(plan.seed) + "\n";
  for (const Event& event : plan.events) {
    out += format_event(event) + "\n";
  }
  return out;
}

util::Result<Plan> parse_plan(const std::string& text) {
  Plan plan;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "seed") {
      if (!(fields >> plan.seed)) {
        return util::Error::make("malformed seed line: " + line);
      }
    } else if (keyword == "event") {
      auto event = parse_event_line(line);
      if (!event.ok()) return event.error();
      plan.events.push_back(event.value());
    } else {
      return util::Error::make("unknown plan line: " + line);
    }
  }
  return plan;
}

Plan random_plan(util::Rng& rng, const PlanSpec& spec) {
  Plan plan;
  if (spec.max_events <= 0) return plan;
  const int budget = static_cast<int>(rng.uniform_int(0, spec.max_events));
  auto draw_time = [&rng, &spec] {
    return rng.uniform(0.02 * spec.horizon_s, 0.95 * spec.horizon_s);
  };
  auto draw_link = [&rng, &spec] {
    return static_cast<std::int32_t>(rng.uniform_int(0, spec.links - 1));
  };
  auto draw_node = [&rng, &spec] {
    return static_cast<std::int32_t>(rng.uniform_int(0, spec.nodes - 1));
  };

  int emitted = 0;
  while (emitted < budget) {
    // Weighted pick over fault families; paired kinds emit both halves so
    // the world usually heals (persistent damage still happens when the
    // pair straddles the horizon or the restore draw lands early).
    const std::int64_t family = rng.uniform_int(0, 8);
    const double at = draw_time();
    switch (family) {
      case 0: {  // link flap: fail + restore
        if (spec.links == 0) break;
        const std::int32_t link = draw_link();
        const double down_for = rng.uniform(0.5, 0.25 * spec.horizon_s);
        plan.events.push_back({at, EventKind::kLinkFail, link, 0.0});
        plan.events.push_back(
            {at + down_for, EventKind::kLinkRestore, link, 0.0});
        emitted += 2;
        break;
      }
      case 1: {  // route withdraw + re-announce
        if (spec.links == 0) break;
        const std::int32_t link = draw_link();
        const double gone_for = rng.uniform(0.5, 0.25 * spec.horizon_s);
        plan.events.push_back({at, EventKind::kRouteWithdraw, link, 0.0});
        plan.events.push_back(
            {at + gone_for, EventKind::kRouteAnnounce, link, 0.0});
        emitted += 2;
        break;
      }
      case 2: {  // capacity brownout (0.2x..2x of a typical rate)
        if (spec.links == 0) break;
        const double mbps = rng.uniform(20.0, 4000.0);
        plan.events.push_back(
            {at, EventKind::kCapacityRewrite, draw_link(), mbps});
        emitted += 1;
        break;
      }
      case 3: {  // policer appears (or clears, 1 in 4)
        if (spec.links == 0) break;
        const double mbps = rng.chance(0.25) ? 0.0 : rng.uniform(5.0, 80.0);
        plan.events.push_back(
            {at, EventKind::kPolicerRewrite, draw_link(), mbps});
        emitted += 1;
        break;
      }
      case 4: {  // abort a (possibly finished — then a no-op) flow
        const std::int32_t flow = static_cast<std::int32_t>(
            rng.uniform_int(1, std::max(1, spec.max_flow_id)));
        plan.events.push_back({at, EventKind::kFlowAbort, flow, 0.0});
        emitted += 1;
        break;
      }
      case 5: {  // 429 storm: tiny request budget, then calm
        if (spec.servers == 0) break;
        const std::int32_t server = static_cast<std::int32_t>(
            rng.uniform_int(0, spec.servers - 1));
        const double budget_per_window =
            static_cast<double>(rng.uniform_int(1, 4));
        const double storm_for = rng.uniform(2.0, 0.3 * spec.horizon_s);
        plan.events.push_back(
            {at, EventKind::kThrottleStorm, server, budget_per_window});
        plan.events.push_back(
            {at + storm_for, EventKind::kThrottleCalm, server, 0.0});
        emitted += 2;
        break;
      }
      case 6: {  // DTN node crash mid-everything, later recovery
        if (spec.nodes == 0) break;
        const std::int32_t node = draw_node();
        const double down_for = rng.uniform(1.0, 0.3 * spec.horizon_s);
        plan.events.push_back({at, EventKind::kNodeCrash, node, 0.0});
        plan.events.push_back(
            {at + down_for, EventKind::kNodeRecover, node, 0.0});
        emitted += 2;
        break;
      }
      case 7: {  // middlebox ceiling appears/clears
        if (spec.nodes == 0) break;
        const double mbps = rng.chance(0.3) ? 0.0 : rng.uniform(10.0, 200.0);
        plan.events.push_back(
            {at, EventKind::kMiddleboxRewrite, draw_node(), mbps});
        emitted += 1;
        break;
      }
      default: {  // diurnal cross-traffic: sinusoidal capacity modulation
        if (spec.links == 0) break;
        const double depth = rng.uniform(0.2, 0.7);
        plan.events.push_back(
            {at, EventKind::kDiurnalTraffic, draw_link(), depth});
        emitted += 1;
        break;
      }
    }
    // A family can be unavailable (no links/nodes); the draw still consumed
    // stream values, so termination is guaranteed by bumping the count.
    if (spec.links == 0 && spec.nodes == 0 && spec.servers == 0 &&
        family != 4) {
      emitted += 1;
    }
  }

  std::stable_sort(
      plan.events.begin(), plan.events.end(),
      [](const Event& a, const Event& b) { return a.at_s < b.at_s; });
  return plan;
}

}  // namespace droute::chaos
