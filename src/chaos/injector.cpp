#include "chaos/injector.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>

#include "check/contract.h"
#include "obs/recorder.h"
#include "util/logging.h"

namespace droute::chaos {

Injector::Injector(Targets targets) : targets_(std::move(targets)) {
  DROUTE_CHECK(targets_.simulator != nullptr && targets_.fabric != nullptr &&
                   targets_.topo != nullptr && targets_.routes != nullptr,
               "Injector: null dependency");
  obs_injected_ = obs::counter("chaos.events_injected_total");
  obs_skipped_ = obs::counter("chaos.events_skipped_total");
}

void Injector::arm(const Plan& plan) {
  // Stable storage: handlers reference armed_ entries by index, so arm()
  // must not be called again while events are pending. Reserve exactly.
  const std::size_t base = armed_.size();
  armed_.reserve(base + plan.events.size());
  for (const Event& event : plan.events) {
    armed_.push_back(event);
  }
  sim::Simulator& simulator = *targets_.simulator;
  for (std::size_t i = base; i < armed_.size(); ++i) {
    const double at = std::max(armed_[i].at_s, simulator.now());
    simulator.schedule_at(at, [this, i] { apply(armed_[i]); });
  }
}

void Injector::apply(const Event& event) {
  if (apply_impl(event)) {
    ++injected_;
    obs::add(obs_injected_);
    if (obs::enabled()) {
      const double now = targets_.simulator->now();
      obs::emit_span("chaos.event_inject", obs::Clock::kSim, now, now,
                     {{"kind", event_kind_name(event.kind)},
                      {"target", std::to_string(event.target)},
                      {"value", format_double(event.value)}});
    }
    if (post_apply_) post_apply_(event);
  } else {
    ++skipped_;
    obs::add(obs_skipped_);
    DROUTE_LOG(kDebug) << "chaos: skipped " << event_kind_name(event.kind)
                       << " target=" << event.target << " (out of range)";
  }
}

bool Injector::valid_link(std::int32_t id) const {
  return id >= 0 &&
         static_cast<std::size_t>(id) < targets_.topo->link_count();
}

bool Injector::valid_node(std::int32_t id) const {
  return id >= 0 &&
         static_cast<std::size_t>(id) < targets_.topo->node_count();
}

bool Injector::apply_impl(const Event& event) {
  net::Fabric& fabric = *targets_.fabric;
  net::Topology& topo = *targets_.topo;
  switch (event.kind) {
    case EventKind::kLinkFail:
      if (!valid_link(event.target)) return false;
      fabric.fail_link(event.target);
      return true;
    case EventKind::kLinkRestore:
      if (!valid_link(event.target)) return false;
      fabric.restore_link(event.target);
      return true;
    case EventKind::kRouteWithdraw:
    case EventKind::kRouteAnnounce: {
      // Control-plane-only churn: new routes avoid (or regain) the link,
      // but flows already riding it keep flowing — the BGP-withdraw shape,
      // distinct from a physical link failure.
      if (!valid_link(event.target)) return false;
      const bool enable = event.kind == EventKind::kRouteAnnounce;
      const auto status = topo.set_link_enabled(event.target, enable);
      DROUTE_CHECK(status.ok(), "chaos: set_link_enabled on checked id");
      targets_.routes->invalidate();
      return true;
    }
    case EventKind::kCapacityRewrite: {
      if (!valid_link(event.target) || event.value <= 0.0) return false;
      const auto status = topo.set_link_capacity(event.target, event.value);
      DROUTE_CHECK(status.ok(), "chaos: set_link_capacity on checked id");
      fabric.reallocate_now();  // shares must converge before the audit hook
      return true;
    }
    case EventKind::kPolicerRewrite: {
      if (!valid_link(event.target) || event.value < 0.0) return false;
      const auto status = topo.set_link_policer(event.target, event.value);
      DROUTE_CHECK(status.ok(), "chaos: set_link_policer on checked id");
      return true;
    }
    case EventKind::kMiddleboxRewrite: {
      if (!valid_node(event.target) || event.value < 0.0) return false;
      const auto status = topo.set_middlebox(event.target, event.value);
      DROUTE_CHECK(status.ok(), "chaos: set_middlebox on checked id");
      return true;
    }
    case EventKind::kFlowAbort:
      // Aborting an unknown or finished flow is the documented no-op; the
      // plan generator deliberately over-approximates live flow ids.
      fabric.abort_flow(static_cast<net::FlowId>(event.target));
      return true;
    case EventKind::kThrottleStorm:
    case EventKind::kThrottleCalm: {
      if (event.target < 0 ||
          static_cast<std::size_t>(event.target) >= targets_.servers.size()) {
        return false;
      }
      cloud::StorageServer* server =
          targets_.servers[static_cast<std::size_t>(event.target)];
      const int budget = event.kind == EventKind::kThrottleStorm
                             ? std::max(1, static_cast<int>(event.value))
                             : 0;
      server->set_throttle(budget);
      return true;
    }
    case EventKind::kDiurnalTraffic: {
      // Diurnal cross-traffic, compressed to simulation scale: the link's
      // capacity follows base * (1 - depth * (0.5 + 0.5 * sin(...))) over
      // kDiurnalCycles periods, sampled every kDiurnalPeriodS / kDiurnalSteps
      // seconds, then returns to base. The whole schedule is laid out at
      // apply time, so the run still drains to quiescence. The phase is a
      // deterministic hash of the (seeded) event time, which is how the plan
      // generator's draw seeds it without widening the Event wire format.
      if (!valid_link(event.target) || event.value <= 0.0 ||
          event.value >= 1.0) {
        return false;
      }
      const double depth = std::min(event.value, 0.9);
      const net::Link& link = topo.link(event.target);
      const double base = link.capacity_mbps;
      std::uint64_t at_bits = 0;
      static_assert(sizeof(at_bits) == sizeof(event.at_s));
      std::memcpy(&at_bits, &event.at_s, sizeof(at_bits));
      // SplitMix64 finalizer; phase in [0, 2*pi).
      at_bits += 0x9e3779b97f4a7c15ull;
      at_bits = (at_bits ^ (at_bits >> 30)) * 0xbf58476d1ce4e5b9ull;
      at_bits = (at_bits ^ (at_bits >> 27)) * 0x94d049bb133111ebull;
      at_bits ^= at_bits >> 31;
      const double kTwoPi = 6.283185307179586476925286766559;
      const double phase =
          kTwoPi * (static_cast<double>(at_bits >> 11) * 0x1.0p-53);
      sim::Simulator& simulator = *targets_.simulator;
      const double now = simulator.now();
      const int total_steps = kDiurnalCycles * kDiurnalSteps;
      const double step_s =
          kDiurnalPeriodS / static_cast<double>(kDiurnalSteps);
      for (int step = 1; step <= total_steps; ++step) {
        const double offset = step_s * static_cast<double>(step);
        const double factor =
            step == total_steps
                ? 1.0  // last step restores the base capacity exactly
                : 1.0 - depth * (0.5 + 0.5 * std::sin(kTwoPi * offset /
                                                          kDiurnalPeriodS +
                                                      phase));
        const std::int32_t target = event.target;
        simulator.schedule_at(now + offset, [this, target, base, factor] {
          const auto status =
              targets_.topo->set_link_capacity(target, base * factor);
          DROUTE_CHECK(status.ok(), "chaos: diurnal set_link_capacity");
          targets_.fabric->reallocate_now();
        });
      }
      return true;
    }
    case EventKind::kNodeCrash:
    case EventKind::kNodeRecover: {
      if (!valid_node(event.target)) return false;
      const bool crash = event.kind == EventKind::kNodeCrash;
      for (std::size_t lid = 0; lid < topo.link_count(); ++lid) {
        const net::Link& link = topo.link(static_cast<net::LinkId>(lid));
        if (link.src != event.target && link.dst != event.target) continue;
        if (crash) {
          fabric.fail_link(link.id);
        } else {
          fabric.restore_link(link.id);
        }
      }
      return true;
    }
  }
  return false;
}

}  // namespace droute::chaos
