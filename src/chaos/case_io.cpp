#include "chaos/case_io.h"

#include <fstream>
#include <sstream>

namespace droute::chaos {

namespace {

const char* relation_name(net::AsRelation rel) {
  switch (rel) {
    case net::AsRelation::kCustomer: return "customer";
    case net::AsRelation::kPeer: return "peer";
    case net::AsRelation::kProvider: return "provider";
  }
  return "unknown";
}

util::Result<net::AsRelation> parse_relation(const std::string& token) {
  if (token == "customer") return net::AsRelation::kCustomer;
  if (token == "peer") return net::AsRelation::kPeer;
  if (token == "provider") return net::AsRelation::kProvider;
  return util::Error::make("unknown AS relation: " + token);
}

util::Error malformed(const std::string& line) {
  return util::Error::make("malformed case line: " + line);
}

}  // namespace

std::string format_case(const Case& c, const std::string& violated) {
  std::string out = "# droute proptest case v1\n";
  out += "# seed: " + std::to_string(c.seed) + "\n";
  out += "# violated: " + (violated.empty() ? std::string("none") : violated) +
         "\n";
  out += "case " + std::to_string(c.seed) + "\n";
  out += "topo_ases " + std::to_string(c.topology.ases) + "\n";
  for (const GenRelation& rel : c.topology.relations) {
    out += "topo_rel " + std::to_string(rel.a) + " " + std::to_string(rel.b) +
           " " + relation_name(rel.b_is_to_a) + "\n";
  }
  for (const GenNode& node : c.topology.nodes) {
    out += "topo_node " + std::to_string(node.as) + " " +
           (node.host ? "host" : "router") + " " + format_double(node.lat) +
           " " + format_double(node.lon) + "\n";
  }
  for (const GenLink& link : c.topology.links) {
    out += "topo_link " + std::to_string(link.src) + " " +
           std::to_string(link.dst) + " " + format_double(link.capacity_mbps) +
           " " + format_double(link.delay_s) + " " +
           format_double(link.policer_mbps) + "\n";
  }
  out += "server " + std::to_string(c.server_node) + "\n";
  for (const WorkItem& item : c.work) {
    out += "work " + format_double(item.start_s) + " " +
           work_kind_name(item.kind) + " " + std::to_string(item.client) +
           " " + std::to_string(item.via) + " " + std::to_string(item.bytes) +
           " " + std::to_string(item.file_seed) + "\n";
  }
  for (const Event& event : c.plan.events) {
    out += format_event(event) + "\n";
  }
  return out;
}

util::Result<Case> parse_case(const std::string& text) {
  Case c;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "case") {
      if (!(fields >> c.seed)) return malformed(line);
      c.plan.seed = c.seed;
    } else if (keyword == "topo_ases") {
      if (!(fields >> c.topology.ases)) return malformed(line);
    } else if (keyword == "topo_rel") {
      GenRelation rel;
      std::string token;
      if (!(fields >> rel.a >> rel.b >> token)) return malformed(line);
      auto parsed = parse_relation(token);
      if (!parsed.ok()) return parsed.error();
      rel.b_is_to_a = parsed.value();
      c.topology.relations.push_back(rel);
    } else if (keyword == "topo_node") {
      GenNode node;
      std::string role;
      if (!(fields >> node.as >> role >> node.lat >> node.lon)) {
        return malformed(line);
      }
      if (role != "host" && role != "router") return malformed(line);
      node.host = role == "host";
      c.topology.nodes.push_back(node);
    } else if (keyword == "topo_link") {
      GenLink link;
      if (!(fields >> link.src >> link.dst >> link.capacity_mbps >>
            link.delay_s >> link.policer_mbps)) {
        return malformed(line);
      }
      c.topology.links.push_back(link);
    } else if (keyword == "server") {
      if (!(fields >> c.server_node)) return malformed(line);
    } else if (keyword == "work") {
      WorkItem item;
      std::string token;
      if (!(fields >> item.start_s >> token >> item.client >> item.via >>
            item.bytes >> item.file_seed)) {
        return malformed(line);
      }
      auto kind = parse_work_kind(token);
      if (!kind.ok()) return kind.error();
      item.kind = kind.value();
      c.work.push_back(item);
    } else if (keyword == "event") {
      auto event = parse_event_line(line);
      if (!event.ok()) return event.error();
      c.plan.events.push_back(event.value());
    } else {
      return util::Error::make("unknown case line: " + line);
    }
  }
  return c;
}

util::Result<Case> load_case_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Error::make("cannot open case file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_case(buffer.str());
}

util::Status save_case_file(const std::string& path, const Case& c,
                            const std::string& violated) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return util::Status::failure("cannot write case file: " + path);
  out << format_case(c, violated);
  out.close();
  if (!out) return util::Status::failure("write failed: " + path);
  return util::Status::success();
}

}  // namespace droute::chaos
