// Greedy case minimization (ddmin-lite) for failing proptest cases.
//
// Given a failing Case and an oracle that reruns a candidate and reports
// whether it still fails, shrink() repeatedly tries structural deletions and
// keeps any that preserve the failure, in the order that minimizes the
// reproduction fastest:
//   1. chaos events  — drop one at a time (most cases need only one fault),
//   2. links         — drop one directed link at a time, remapping the
//                      surviving events' link targets (events aimed at a
//                      dropped link are dropped with it),
//   3. work items    — drop one at a time.
// Passes repeat until a full sweep makes no progress (a fixpoint), bounded
// by `max_attempts` oracle calls. The result is 1-minimal per pass: no
// single remaining deletion of that class preserves the failure.
//
// shrink() is deterministic (no randomness; order is structural), so
// shrinking the same case with the same oracle yields the same minimum —
// and shrinking an already-shrunk case is a no-op (idempotence, tested).
#pragma once

#include <cstddef>
#include <functional>

#include "chaos/scenario.h"

namespace droute::chaos {

/// Returns true when the candidate case still reproduces the failure.
/// Typically: [&](const Case& c) { return run_case(c).violated == prop; }.
using ShrinkOracle = std::function<bool(const Case&)>;

struct ShrinkStats {
  std::size_t oracle_calls = 0;
  std::size_t events_dropped = 0;
  std::size_t links_dropped = 0;
  std::size_t work_dropped = 0;
};

/// Removes directed link `index` from the topology and remaps/drops the
/// plan's link-targeted events accordingly. Exposed for tests.
Case drop_link(const Case& c, std::size_t index);

/// Minimizes `failing` against `still_fails`. `failing` itself is assumed
/// to fail (the oracle is not re-invoked on it).
Case shrink(const Case& failing, const ShrinkOracle& still_fails,
            std::size_t max_attempts = 500, ShrinkStats* stats = nullptr);

}  // namespace droute::chaos
