// Deterministic, schedule-driven fault plans (droute::chaos).
//
// A chaos::Plan is a list of timed fault events — link failures and flaps,
// route withdrawals, capacity/policer rewrites, cloud throttle storms, DTN
// node crashes — applied to a live net/cloud stack by chaos::Injector. A
// plan is plain data: generated from a single util::Rng substream
// (random_plan), serialized to the text `.case` format (format_plan /
// parse_plan) byte-identically, and shrunk event-by-event by chaos::shrink
// when a property-based test fails. Replaying the same plan against the
// same world is bit-reproducible because injection rides the simulator's
// deterministic event order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/rng.h"

namespace droute::chaos {

/// What a timed event does to the stack (see Injector for exact semantics).
enum class EventKind : std::uint8_t {
  kLinkFail,          // Fabric::fail_link — kills flows, reroutes
  kLinkRestore,       // Fabric::restore_link
  kRouteWithdraw,     // disable link WITHOUT killing flows (BGP withdraw)
  kRouteAnnounce,     // re-enable a withdrawn link
  kCapacityRewrite,   // Topology::set_link_capacity + Fabric::reallocate_now
  kPolicerRewrite,    // Topology::set_link_policer (0 clears)
  kMiddleboxRewrite,  // Topology::set_middlebox (target = node)
  kFlowAbort,         // Fabric::abort_flow (target = flow id; no-op if gone)
  kThrottleStorm,     // StorageServer::set_throttle(value) — 429 burst
  kThrottleCalm,      // StorageServer::set_throttle(0) — storm over
  kNodeCrash,         // fail every link adjacent to node (DTN crash)
  kNodeRecover,       // restore every link adjacent to node
  kDiurnalTraffic,    // sinusoidal capacity modulation (value = depth 0..1)
};

/// Serialization token for a kind (e.g. "link_fail").
std::string event_kind_name(EventKind kind);

/// Inverse of event_kind_name.
[[nodiscard]] util::Result<EventKind> parse_event_kind(const std::string& token);

/// True when `kind`'s target field names a link id (shrinking a link must
/// then drop or remap the event).
bool event_targets_link(EventKind kind);

/// True when `kind` changes which routes exist (the Gao–Rexford property
/// re-validates after these).
bool event_churns_routes(EventKind kind);

struct Event {
  double at_s = 0.0;        // absolute simulated time
  EventKind kind = EventKind::kLinkFail;
  std::int32_t target = 0;  // link / node / flow / server index per kind
  double value = 0.0;       // rate or budget for rewrite/storm kinds

  friend bool operator==(const Event& a, const Event& b) {
    // Exact double equality on purpose: serialization round trips must be
    // bit-faithful, approximate equality would mask format bugs.
    return a.at_s == b.at_s && a.kind == b.kind && a.target == b.target &&
           a.value == b.value;
  }
};

struct Plan {
  std::uint64_t seed = 0;  // provenance: the Rng seed that generated it
  std::vector<Event> events;

  friend bool operator==(const Plan& a, const Plan& b) {
    return a.seed == b.seed && a.events == b.events;
  }
};

/// Canonical shortest-round-trip text for a double (17 significant digits);
/// shared by plan and case serialization so reformatting parsed text is
/// byte-identical.
std::string format_double(double value);

/// One `event <at> <kind> <target> <value>` line (no newline).
std::string format_event(const Event& event);

/// Parses a format_event line (leading keyword included).
[[nodiscard]] util::Result<Event> parse_event_line(const std::string& line);

/// Whole-plan text: header comment, `seed` line, one `event` line each.
std::string format_plan(const Plan& plan);

/// Inverse of format_plan; ignores blank lines and `#` comments.
[[nodiscard]] util::Result<Plan> parse_plan(const std::string& text);

/// Bounds for random_plan: how big the world is (so targets are valid) and
/// how violent the plan may be.
struct PlanSpec {
  double horizon_s = 90.0;   // events land in (0, horizon_s)
  int links = 0;             // exclusive upper bound for link targets
  int nodes = 0;             // exclusive upper bound for node targets
  int servers = 1;           // exclusive upper bound for server targets
  int max_flow_id = 16;      // flow-abort targets drawn from [1, max_flow_id]
  int max_events = 8;        // total events (pairs count as 2)
};

/// Draws a plan from `rng`: flaps and crashes come as fail/restore pairs,
/// storms as storm/calm pairs; events are sorted by time (stable, so
/// generation order breaks ties deterministically).
Plan random_plan(util::Rng& rng, const PlanSpec& spec);

}  // namespace droute::chaos
