#include "chaos/shrink.h"

#include <utility>
#include <vector>

namespace droute::chaos {

namespace {

Case drop_event(const Case& c, std::size_t index) {
  Case out = c;
  out.plan.events.erase(out.plan.events.begin() +
                        static_cast<std::ptrdiff_t>(index));
  return out;
}

Case drop_work(const Case& c, std::size_t index) {
  Case out = c;
  out.work.erase(out.work.begin() + static_cast<std::ptrdiff_t>(index));
  return out;
}

/// One pass of "try deleting element i of a `count`-sized class"; restarts
/// the index after a successful deletion (the class shrank under it).
template <typename Count, typename Drop>
bool sweep(Case& current, const ShrinkOracle& still_fails,
           std::size_t max_attempts, std::size_t& attempts,
           std::size_t& dropped, Count count, Drop drop) {
  bool progressed = false;
  std::size_t i = 0;
  while (i < count(current) && attempts < max_attempts) {
    Case candidate = drop(current, i);
    ++attempts;
    if (still_fails(candidate)) {
      current = std::move(candidate);
      ++dropped;
      progressed = true;
      // Keep i: the next element slid into this slot.
    } else {
      ++i;
    }
  }
  return progressed;
}

}  // namespace

Case drop_link(const Case& c, std::size_t index) {
  Case out = c;
  out.topology.links.erase(out.topology.links.begin() +
                           static_cast<std::ptrdiff_t>(index));
  const auto dropped_id = static_cast<std::int32_t>(index);
  std::vector<Event> remapped;
  remapped.reserve(out.plan.events.size());
  for (Event event : out.plan.events) {
    if (event_targets_link(event.kind)) {
      if (event.target == dropped_id) continue;  // its link is gone
      if (event.target > dropped_id) --event.target;
    }
    remapped.push_back(event);
  }
  out.plan.events = std::move(remapped);
  return out;
}

Case shrink(const Case& failing, const ShrinkOracle& still_fails,
            std::size_t max_attempts, ShrinkStats* stats) {
  Case current = failing;
  ShrinkStats local;
  bool progressed = true;
  while (progressed && local.oracle_calls < max_attempts) {
    progressed = false;
    progressed |= sweep(
        current, still_fails, max_attempts, local.oracle_calls,
        local.events_dropped,
        [](const Case& c) { return c.plan.events.size(); }, drop_event);
    progressed |= sweep(
        current, still_fails, max_attempts, local.oracle_calls,
        local.links_dropped,
        [](const Case& c) { return c.topology.links.size(); },
        [](const Case& c, std::size_t i) { return drop_link(c, i); });
    progressed |= sweep(
        current, still_fails, max_attempts, local.oracle_calls,
        local.work_dropped, [](const Case& c) { return c.work.size(); },
        drop_work);
  }
  if (stats != nullptr) *stats = local;
  return current;
}

}  // namespace droute::chaos
