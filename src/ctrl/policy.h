// Steering policy: estimates + cost model + hysteresis -> one Decision.
//
// Selection logic per decision:
//   1. Candidates must be routable as of the decision epoch (no withdrawn
//      route or failed link on any leg) — the ctrl_no_dead_steer property.
//   2. A relay path must beat direct under the paper's online significance
//      test (stats::judge_higher_better on the EWMA intervals): overlapping
//      error bars keep direct, Sec III-B conservatism.
//   3. Among significant relays, the cost model picks the best net benefit
//      (value of projected time saved minus the relay premium); a positive
//      benefit above min_benefit_usd is required at all.
//   4. Hysteresis: each client has an incumbent path. The challenger only
//      displaces it after min_dwell_epochs AND (for relay challengers) a
//      switch_margin improvement in projected session time — so flapping
//      estimates don't thrash sessions. An unroutable incumbent is replaced
//      immediately; a relay incumbent that lost its significance case falls
//      back to direct once the dwell expires.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ctrl/cost.h"
#include "ctrl/estimator.h"
#include "ctrl/steering.h"
#include "stats/overlap.h"

namespace droute::ctrl {

struct PolicyConfig {
  /// Relative projected-time improvement a challenger must show over the
  /// incumbent before a switch (0.1 = 10% faster).
  double switch_margin = 0.10;
  /// Epochs an incumbent is kept before any switch is considered.
  std::uint64_t min_dwell_epochs = 2;
  /// Online Sec III-B options for the relay-vs-direct significance test.
  stats::SignificanceOptions significance;
  /// Minimum net benefit (USD) a relay must clear to be considered.
  double min_benefit_usd = 0.0;
};

class SteeringPolicy {
 public:
  /// One candidate path as seen at decision time.
  struct Candidate {
    PathSpec path;
    bool routable = false;
    const PathStats* stats = nullptr;  // nullptr = never sampled
  };

  SteeringPolicy(PolicyConfig config, CostModel cost)
      : config_(config), cost_(cost) {}

  /// Decides the path for a new session. `candidates` must contain the
  /// direct path; order is the deterministic enumeration order. `epoch` and
  /// `now_s` stamp the decision.
  Decision decide(net::NodeId client, std::uint64_t bytes,
                  const std::vector<Candidate>& candidates,
                  std::uint64_t epoch, double now_s);

  /// Forgets the client's incumbent (chaos hook: after a network event the
  /// next decision re-earns its path from scratch).
  void reset_client(net::NodeId client) { incumbents_.erase(client); }

  /// The client's current incumbent path (direct when none recorded).
  PathSpec incumbent(net::NodeId client) const;

 private:
  struct Incumbent {
    PathSpec path;
    std::uint64_t since_epoch = 0;
  };

  PolicyConfig config_;
  CostModel cost_;
  std::map<net::NodeId, Incumbent> incumbents_;
};

}  // namespace droute::ctrl
