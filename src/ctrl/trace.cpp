#include "ctrl/trace.h"

#include "util/fmt.h"

namespace droute::ctrl {

namespace {
constexpr char kHeader[] = "# droute ctrl trace v1";

std::string fd(double value) { return util::format_double(value); }
}  // namespace

void DecisionTrace::note_epoch(std::uint64_t epoch, double at_s,
                               int probes_launched,
                               std::uint64_t budget_spent_bytes) {
  lines_.push_back("epoch " + std::to_string(epoch) + " at=" + fd(at_s) +
                   " probes=" + std::to_string(probes_launched) +
                   " budget_spent=" + std::to_string(budget_spent_bytes));
}

void DecisionTrace::note_probe(net::NodeId client, const PathSpec& path,
                               bool ok, double mbps, double elapsed_s,
                               std::uint64_t epoch) {
  lines_.push_back("probe client=" + std::to_string(client) + " path=" +
                   path.label() + (ok ? " ok" : " fail") + " mbps=" +
                   fd(mbps) + " elapsed=" + fd(elapsed_s) + " epoch=" +
                   std::to_string(epoch));
}

void DecisionTrace::note_tiv(net::NodeId client, net::NodeId provider,
                             const PathSpec& path, double path_mbps,
                             double direct_mbps, std::uint64_t epoch) {
  lines_.push_back("tiv client=" + std::to_string(client) + " provider=" +
                   std::to_string(provider) + " path=" + path.label() +
                   " path_mbps=" + fd(path_mbps) + " direct_mbps=" +
                   fd(direct_mbps) + " epoch=" + std::to_string(epoch));
}

void DecisionTrace::note_steer(net::NodeId client, std::uint64_t bytes,
                               const Decision& decision) {
  lines_.push_back(
      "steer client=" + std::to_string(client) + " bytes=" +
      std::to_string(bytes) + " path=" + decision.path.label() + " epoch=" +
      std::to_string(decision.epoch) + " at=" + fd(decision.at_s) +
      " expected_mbps=" + fd(decision.expected_mbps) + " benefit_usd=" +
      fd(decision.benefit_usd) + (decision.routable ? "" : " unroutable") +
      (decision.switched ? " switched" : "") + " reason=\"" +
      decision.reason + "\"");
}

void DecisionTrace::note_session(net::NodeId client, const PathSpec& path,
                                 bool success, double mbps,
                                 double elapsed_s) {
  lines_.push_back("session client=" + std::to_string(client) + " path=" +
                   path.label() + (success ? " ok" : " fail") + " mbps=" +
                   fd(mbps) + " elapsed=" + fd(elapsed_s));
}

void DecisionTrace::note_event(double at_s, const std::string& what) {
  lines_.push_back("event at=" + fd(at_s) + " " + what);
}

std::string DecisionTrace::serialize() const {
  std::string out = kHeader;
  out += '\n';
  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

std::uint64_t DecisionTrace::fnv1a() const {
  const std::string text = serialize();
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace droute::ctrl
