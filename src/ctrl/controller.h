// ctrl::Controller — the online detour control plane.
//
// Runs an epoch loop on the simulator: every epoch_s it spends a byte
// budget on small probe transfers across the candidate paths of every
// registered client (direct, each 1-hop DTN relay, ordered relay chains up
// to max_relay_hops), feeds the results into a PathEstimator, flags
// throughput TIVs with the paper's Sec III-B significance test, and answers
// Steering::steer() for new upload sessions via the cost-aware
// SteeringPolicy. Completed sessions feed back passively through
// observe_session. chaos hooks call on_network_event() so link flaps and
// policer rewrites trigger an immediate out-of-band epoch.
//
// Determinism: the controller draws no randomness of its own — probe order
// is the stalest-first stable sort of a deterministic candidate
// enumeration, and every trace double goes through util::format_double —
// so two same-seed runs of the same scenario produce byte-identical
// DecisionTrace output (asserted by ctrl_test).
//
// Lifetime: probes are sim::Tasks; call stop() (cancelling the epoch timer
// and all in-flight probes) before the Simulator is torn down or before
// asserting quiescence. The destructor calls stop() as a backstop, which
// is only safe while the Simulator is still alive.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ctrl/cost.h"
#include "ctrl/estimator.h"
#include "ctrl/policy.h"
#include "ctrl/steering.h"
#include "ctrl/trace.h"
#include "net/fabric.h"
#include "net/routing.h"
#include "obs/recorder.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace droute::ctrl {

struct ControllerConfig {
  /// Seconds between scheduled epochs (network events force extra epochs).
  double epoch_s = 10.0;
  /// Probe bytes the controller may put on the wire per epoch. A k-leg
  /// probe costs probe_bytes * (k legs), so relay chains are charged for
  /// every hop they touch.
  std::uint64_t probe_budget_bytes = 2'000'000;
  /// Size of one probe leg (small measurement transfer).
  std::uint64_t probe_bytes = 262'144;
  /// Longest relay chain enumerated (1 = single DTN relay only).
  int max_relay_hops = 2;
  EstimatorConfig estimator;
  PolicyConfig policy;
  CostModel cost;
};

class Controller final : public Steering {
 public:
  Controller(sim::Simulator& simulator, net::Fabric& fabric,
             const net::RouteTable& routes, ControllerConfig config = {});
  ~Controller() override;
  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// World wiring; call before start().
  void set_provider(net::NodeId provider) { provider_ = provider; }
  void add_client(net::NodeId client) { clients_.push_back(client); }
  void add_relay(net::NodeId relay) { relays_.push_back(relay); }

  /// Schedules the first epoch (at the current sim time). Requires a
  /// provider and at least one client.
  void start();

  /// Cancels the epoch timer and every in-flight probe. Call before the
  /// final drain / quiescence assertion; idempotent.
  void stop();

  /// An external event (chaos link flap, policer rewrite, ...) invalidated
  /// the current picture: log it, cancel in-flight probes, forget every
  /// estimate and incumbent (pre/post-event samples must not share an
  /// EWMA), and re-learn from an immediate epoch.
  void on_network_event(const std::string& what);

  // Steering interface.
  Decision steer(net::NodeId client, std::uint64_t bytes) override;
  void observe_session(net::NodeId client, const Decision& decision,
                       std::uint64_t bytes, double elapsed_s,
                       bool success) override;

  /// Audit hook: fired for every steer() decision (after tracing). The
  /// chaos harness uses it to enforce ctrl_no_dead_steer live.
  void set_decision_hook(
      std::function<void(net::NodeId, const Decision&)> hook) {
    decision_hook_ = std::move(hook);
  }

  std::uint64_t epoch() const { return epoch_; }
  const DecisionTrace& trace() const { return trace_; }
  const PathEstimator& estimator() const { return estimator_; }

  /// Deterministic candidate enumeration for `client`: direct first, then
  /// 1-hop relays in registration order, then ordered distinct chains of
  /// increasing length up to max_relay_hops.
  std::vector<PathSpec> candidate_paths(net::NodeId client) const;

  /// True when every leg of client -> relays... -> provider has a live
  /// route (covers withdrawn routes and failed links).
  bool path_routable(net::NodeId client, const PathSpec& path) const;

 private:
  void tick();
  sim::Task<void> probe_path(net::NodeId client, PathSpec path);

  sim::Simulator* simulator_;
  net::Fabric* fabric_;
  const net::RouteTable* routes_;
  ControllerConfig config_;

  net::NodeId provider_ = net::kInvalidNode;
  std::vector<net::NodeId> clients_;
  std::vector<net::NodeId> relays_;

  PathEstimator estimator_;
  SteeringPolicy policy_;
  DecisionTrace trace_;
  std::function<void(net::NodeId, const Decision&)> decision_hook_;

  std::uint64_t epoch_ = 0;
  bool started_ = false;
  sim::EventId tick_event_;
  std::vector<sim::Task<void>> probes_;  // analyze: allow(coroutine-task-field) — stop() cancels all probes and every owner tears the controller down before its Simulator (header contract)

  obs::Counter* epochs_total_;
  obs::Counter* probes_launched_total_;
  obs::Counter* probes_failed_total_;
  obs::Histogram* probe_elapsed_s_;
  obs::Histogram* probe_budget_spent_bytes_;
  obs::Counter* tivs_flagged_total_;
  obs::Counter* decisions_made_total_;
  obs::Counter* switches_made_total_;
  obs::Counter* sessions_observed_total_;
  obs::Counter* events_seen_total_;
};

}  // namespace droute::ctrl
