// DecisionTrace: the controller's append-only audit log.
//
// Every epoch tick, probe result, TIV flag, steering decision, session
// completion, and network event lands here as one text line. All doubles go
// through util::format_double (%.17g round-trip), so two same-seed runs
// produce byte-identical serialize() output — the determinism contract
// ctrl_test and the proptest digest both assert.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ctrl/steering.h"
#include "net/topology.h"

namespace droute::ctrl {

class DecisionTrace {
 public:
  void note_epoch(std::uint64_t epoch, double at_s, int probes_launched,
                  std::uint64_t budget_spent_bytes);
  void note_probe(net::NodeId client, const PathSpec& path, bool ok,
                  double mbps, double elapsed_s, std::uint64_t epoch);
  void note_tiv(net::NodeId client, net::NodeId provider, const PathSpec& path,
                double path_mbps, double direct_mbps, std::uint64_t epoch);
  void note_steer(net::NodeId client, std::uint64_t bytes,
                  const Decision& decision);
  void note_session(net::NodeId client, const PathSpec& path, bool success,
                    double mbps, double elapsed_s);
  void note_event(double at_s, const std::string& what);

  std::size_t lines() const { return lines_.size(); }

  /// Full trace text: a version header plus one line per note.
  std::string serialize() const;

  /// FNV-1a over serialize() — cheap byte-identity check for tests.
  std::uint64_t fnv1a() const;

 private:
  std::vector<std::string> lines_;
};

}  // namespace droute::ctrl
