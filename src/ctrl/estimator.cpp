#include "ctrl/estimator.h"

#include <algorithm>
#include <cmath>

#include "check/contract.h"

namespace droute::ctrl {

stats::Interval PathStats::interval() const {
  return {mean_mbps, std::sqrt(std::max(0.0, var_mbps2))};
}

void PathEstimator::observe(net::NodeId client, net::NodeId provider,
                            const PathSpec& path, double mbps,
                            double elapsed_s, std::uint64_t epoch) {
  DROUTE_DCHECK(mbps >= 0.0 && elapsed_s >= 0.0,
                "PathEstimator: negative sample");
  PathStats& st = paths_[Key{client, provider, path}];
  if (st.samples == 0) {
    st.mean_mbps = mbps;
    st.var_mbps2 = 0.0;
    st.mean_elapsed_s = elapsed_s;
  } else {
    // Exponentially weighted mean and variance (West 1979): the variance
    // update uses the pre-update deviation times the post-update increment,
    // which keeps it unbiased under the EW weighting.
    const double alpha = config_.alpha;
    const double diff = mbps - st.mean_mbps;
    const double incr = alpha * diff;
    st.mean_mbps += incr;
    st.var_mbps2 = (1.0 - alpha) * (st.var_mbps2 + diff * incr);
    st.mean_elapsed_s += alpha * (elapsed_s - st.mean_elapsed_s);
  }
  ++st.samples;
  st.last_epoch = epoch;
}

const PathStats* PathEstimator::lookup(net::NodeId client,
                                       net::NodeId provider,
                                       const PathSpec& path) const {
  const auto it = paths_.find(Key{client, provider, path});
  return it == paths_.end() ? nullptr : &it->second;
}

std::vector<TivFlag> PathEstimator::flag_tivs(
    const stats::SignificanceOptions& options) const {
  std::vector<TivFlag> flags;
  for (const auto& [key, st] : paths_) {
    if (key.path.direct() || st.samples == 0) continue;
    const PathStats* direct =
        lookup(key.client, key.provider, PathSpec{});
    if (direct == nullptr || direct->samples == 0) continue;
    const auto verdict =
        stats::judge_higher_better(st.interval(), direct->interval(), options);
    if (verdict.significance != stats::Significance::kCandidateBetter) {
      continue;
    }
    flags.push_back({key.client, key.provider, key.path, st.mean_mbps,
                     direct->mean_mbps});
  }
  return flags;
}

}  // namespace droute::ctrl
