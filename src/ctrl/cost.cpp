#include "ctrl/cost.h"

namespace droute::ctrl {

namespace {
constexpr double kGb = 1e9;        // decimal GB, matching provider pricing
constexpr double kHourS = 3600.0;
}  // namespace

double extra_path_cost_usd(const CostModel& model, int relay_hops,
                           std::uint64_t bytes, double path_elapsed_s) {
  if (relay_hops <= 0) return 0.0;
  const double gb = static_cast<double>(bytes) / kGb;
  const double hops = static_cast<double>(relay_hops);
  return model.relay_usd_per_gb * gb * hops +
         model.relay_rental_usd_per_hour * (path_elapsed_s / kHourS) * hops;
}

double net_benefit_usd(const CostModel& model, int relay_hops,
                       std::uint64_t bytes, double direct_s, double path_s) {
  const double saved_usd =
      model.value_usd_per_hour_saved * (direct_s - path_s) / kHourS;
  return saved_usd - extra_path_cost_usd(model, relay_hops, bytes, path_s);
}

double session_cost_usd(const CostModel& model, int relay_hops,
                        std::uint64_t bytes, double path_elapsed_s) {
  const double gb = static_cast<double>(bytes) / kGb;
  return model.egress_usd_per_gb * gb +
         extra_path_cost_usd(model, relay_hops, bytes, path_elapsed_s);
}

}  // namespace droute::ctrl
