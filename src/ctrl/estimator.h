// Path-quality estimator: per-(client, provider, path) EWMA throughput and
// latency estimates, with the paper's Sec III-B error-bar-overlap
// significance heuristic (stats::judge_higher_better) applied online.
//
// Each probe or steered-session sample updates an exponentially weighted
// mean and variance; the sqrt of the EW variance plays the role of the
// per-run stddev in the paper's offline protocol, so "are these two paths
// distinguishable" is the same overlap test RouteAdvisor applies to
// campaign summaries. flag_tivs() lists the relay paths whose throughput is
// significantly ABOVE direct — online throughput triangle-inequality
// violations, the phenomenon the whole paper is about (Sec III).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ctrl/steering.h"
#include "net/topology.h"
#include "stats/overlap.h"

namespace droute::ctrl {

struct EstimatorConfig {
  /// EWMA weight of the newest sample (both mean and variance).
  double alpha = 0.3;
};

/// Rolling estimate for one (client, provider, path) triple.
struct PathStats {
  double mean_mbps = 0.0;
  double var_mbps2 = 0.0;      // EW variance of the throughput samples
  double mean_elapsed_s = 0.0; // EWMA of end-to-end sample latency
  std::size_t samples = 0;
  std::uint64_t last_epoch = 0;  // epoch of the newest sample

  stats::Interval interval() const;
};

/// One online throughput TIV: a relay path significantly faster than direct.
struct TivFlag {
  net::NodeId client = net::kInvalidNode;
  net::NodeId provider = net::kInvalidNode;
  PathSpec path;
  double path_mbps = 0.0;
  double direct_mbps = 0.0;
};

class PathEstimator {
 public:
  PathEstimator() = default;
  explicit PathEstimator(EstimatorConfig config) : config_(config) {}

  /// Folds one throughput/latency sample into the (client, provider, path)
  /// estimate. Deterministic: plain arithmetic, ordered storage.
  void observe(net::NodeId client, net::NodeId provider, const PathSpec& path,
               double mbps, double elapsed_s, std::uint64_t epoch);

  /// The current estimate, or nullptr when the path was never sampled.
  const PathStats* lookup(net::NodeId client, net::NodeId provider,
                          const PathSpec& path) const;

  /// All relay paths whose throughput estimate is significantly better than
  /// the same (client, provider)'s direct estimate under `options` — the
  /// per-epoch TIV scan. Deterministic order (sorted by key).
  std::vector<TivFlag> flag_tivs(
      const stats::SignificanceOptions& options = {}) const;

  /// Forgets every estimate. The controller calls this on network events:
  /// mixing pre- and post-event samples into one EWMA inflates the variance
  /// until the overlap test can no longer distinguish anything.
  void reset() { paths_.clear(); }

  std::size_t tracked_paths() const { return paths_.size(); }

 private:
  struct Key {
    net::NodeId client;
    net::NodeId provider;
    PathSpec path;

    friend bool operator<(const Key& a, const Key& b) {
      if (a.client != b.client) return a.client < b.client;
      if (a.provider != b.provider) return a.provider < b.provider;
      return a.path < b.path;
    }
  };

  EstimatorConfig config_;
  std::map<Key, PathStats> paths_;
};

}  // namespace droute::ctrl
