#include "ctrl/controller.h"

#include <algorithm>
#include <utility>

#include "check/contract.h"
#include "net/fabric_await.h"

namespace droute::ctrl {

Controller::Controller(sim::Simulator& simulator, net::Fabric& fabric,
                       const net::RouteTable& routes, ControllerConfig config)
    : simulator_(&simulator),
      fabric_(&fabric),
      routes_(&routes),
      config_(config),
      estimator_(config.estimator),
      policy_(config.policy, config.cost),
      epochs_total_(obs::counter("ctrl.epochs_total")),
      probes_launched_total_(obs::counter("ctrl.probes_launched_total")),
      probes_failed_total_(obs::counter("ctrl.probes_failed_total")),
      probe_elapsed_s_(obs::histogram("ctrl.probe_elapsed_s")),
      probe_budget_spent_bytes_(obs::histogram(
          "ctrl.probe_budget_spent_bytes", obs::size_bounds_bytes())),
      tivs_flagged_total_(obs::counter("ctrl.tivs_flagged_total")),
      decisions_made_total_(obs::counter("ctrl.decisions_made_total")),
      switches_made_total_(obs::counter("ctrl.switches_made_total")),
      sessions_observed_total_(obs::counter("ctrl.sessions_observed_total")),
      events_seen_total_(obs::counter("ctrl.events_seen_total")) {
  DROUTE_CHECK(config_.epoch_s > 0.0, "Controller: epoch_s must be positive");
  DROUTE_CHECK(config_.probe_bytes > 0,
               "Controller: probe_bytes must be positive");
  DROUTE_CHECK(config_.max_relay_hops >= 0,
               "Controller: max_relay_hops must be >= 0");
}

Controller::~Controller() { stop(); }

void Controller::start() {
  DROUTE_CHECK(provider_ != net::kInvalidNode,
               "Controller::start: set_provider first");
  DROUTE_CHECK(!clients_.empty(), "Controller::start: no clients registered");
  DROUTE_CHECK(!started_, "Controller::start: already started");
  started_ = true;
  tick_event_ = simulator_->schedule_in(0.0, [this] { tick(); });
}

void Controller::stop() {
  started_ = false;
  simulator_->cancel(tick_event_);
  tick_event_ = sim::EventId{};
  for (auto& probe : probes_) probe.cancel();
  probes_.clear();
}

void Controller::on_network_event(const std::string& what) {
  trace_.note_event(simulator_->now(), what);
  obs::add(events_seen_total_);
  // The event invalidated the measured picture. Blending pre- and
  // post-event samples into one EWMA inflates the variance so badly that
  // the Sec III-B overlap test goes blind for many epochs (every bar
  // overlaps every other), so instead: drop in-flight probes (their legs
  // straddle the change), forget every estimate and incumbent, and
  // re-learn the new regime from an immediate epoch of fresh probes.
  for (sim::Task<void>& probe : probes_) {
    if (!probe.done()) probe.cancel();
  }
  estimator_.reset();
  for (const net::NodeId client : clients_) {
    policy_.reset_client(client);
  }
  if (!started_) return;
  // Re-plan immediately: the scheduled epoch is folded into this one.
  simulator_->cancel(tick_event_);
  tick_event_ = sim::EventId{};
  tick();
}

std::vector<PathSpec> Controller::candidate_paths(net::NodeId client) const {
  std::vector<PathSpec> out;
  out.push_back(PathSpec{});
  std::vector<net::NodeId> usable;
  usable.reserve(relays_.size());
  for (const net::NodeId relay : relays_) {
    if (relay != client && relay != provider_) usable.push_back(relay);
  }
  // Ordered distinct chains by increasing length, lexicographic in
  // registration order within a length — a stable enumeration the probe
  // scheduler and the policy both see.
  std::vector<net::NodeId> prefix;
  const auto extend = [&](const auto& self, int target_len) -> void {
    if (static_cast<int>(prefix.size()) == target_len) {
      out.push_back(PathSpec{prefix});
      return;
    }
    for (const net::NodeId node : usable) {
      if (std::find(prefix.begin(), prefix.end(), node) != prefix.end()) {
        continue;
      }
      prefix.push_back(node);
      self(self, target_len);
      prefix.pop_back();
    }
  };
  for (int len = 1; len <= config_.max_relay_hops; ++len) {
    extend(extend, len);
  }
  return out;
}

bool Controller::path_routable(net::NodeId client, const PathSpec& path) const {
  net::NodeId prev = client;
  for (const net::NodeId hop : path.relays) {
    if (!routes_->route(prev, hop).ok()) return false;
    prev = hop;
  }
  return routes_->route(prev, provider_).ok();
}

void Controller::tick() {
  ++epoch_;
  obs::add(epochs_total_);

  // Reap probes that completed since the last epoch (their results already
  // landed in the estimator via on-completion code in probe_path).
  std::erase_if(probes_, [](const sim::Task<void>& t) { return t.done(); });

  // Flag throughput TIVs as of this epoch's estimates.
  for (const TivFlag& flag :
       estimator_.flag_tivs(config_.policy.significance)) {
    trace_.note_tiv(flag.client, flag.provider, flag.path, flag.path_mbps,
                    flag.direct_mbps, epoch_);
    obs::add(tivs_flagged_total_);
  }

  // Spend the probe budget, stalest estimate first.
  struct Work {
    net::NodeId client;
    PathSpec path;
    std::uint64_t last_epoch;
  };
  std::vector<Work> work;
  for (const net::NodeId client : clients_) {
    for (PathSpec& path : candidate_paths(client)) {
      if (!path_routable(client, path)) continue;
      const PathStats* stats = estimator_.lookup(client, provider_, path);
      work.push_back(
          {client, std::move(path), stats == nullptr ? 0 : stats->last_epoch});
    }
  }
  std::stable_sort(work.begin(), work.end(),
                   [](const Work& a, const Work& b) {
                     return a.last_epoch < b.last_epoch;
                   });

  std::uint64_t spent = 0;
  int launched = 0;
  for (Work& item : work) {
    const std::uint64_t cost =
        config_.probe_bytes *
        static_cast<std::uint64_t>(item.path.relay_hops() + 1);
    if (spent + cost > config_.probe_budget_bytes) break;
    spent += cost;
    ++launched;
    probes_.push_back(probe_path(item.client, std::move(item.path)));
  }
  obs::add(probes_launched_total_, static_cast<std::uint64_t>(launched));
  obs::observe(probe_budget_spent_bytes_, static_cast<double>(spent));
  trace_.note_epoch(epoch_, simulator_->now(), launched, spent);

  tick_event_ = simulator_->schedule_in(config_.epoch_s, [this] { tick(); });
}

sim::Task<void> Controller::probe_path(net::NodeId client, PathSpec path) {
  const double start = simulator_->now();
  const std::uint64_t launch_epoch = epoch_;
  std::vector<net::NodeId> hops;
  hops.push_back(client);
  hops.insert(hops.end(), path.relays.begin(), path.relays.end());
  hops.push_back(provider_);

  bool ok = true;
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    net::FlowOptions options;
    options.label = "ctrl.probe";
    // Probes estimate steady-state available bandwidth from a small
    // transfer; charging the TCP ramp would bias fast paths low (a 2 MB
    // probe over a Gbps leg measures mostly slow start) and the bias would
    // fight the session-goodput samples folded in by observe_session.
    options.charge_slow_start = false;
    auto leg = net::transfer(*fabric_, hops[i], hops[i + 1],
                             config_.probe_bytes, options);
    const auto stats = co_await leg;
    if (!stats.ok() ||
        stats.value().outcome != net::FlowOutcome::kCompleted) {
      ok = false;
      break;
    }
  }

  const double elapsed = simulator_->now() - start;
  // End-to-end store-and-forward throughput: probe_bytes delivered over the
  // sum of all leg durations.
  const double mbps =
      ok && elapsed > 0.0
          ? static_cast<double>(config_.probe_bytes) * 8e-6 / elapsed
          : 0.0;
  if (ok) {
    estimator_.observe(client, provider_, path, mbps, elapsed, launch_epoch);
    obs::observe(probe_elapsed_s_, elapsed);
  } else {
    obs::add(probes_failed_total_);
  }
  trace_.note_probe(client, path, ok, mbps, elapsed, launch_epoch);
  obs::emit_span("ctrl.probe_transfer", obs::Clock::kSim, start,
                 simulator_->now(),
                 {{"path", path.label()}, {"ok", ok ? "1" : "0"}});
  co_return;
}

Decision Controller::steer(net::NodeId client, std::uint64_t bytes) {
  std::vector<SteeringPolicy::Candidate> candidates;
  for (PathSpec& path : candidate_paths(client)) {
    SteeringPolicy::Candidate cand;
    cand.routable = path_routable(client, path);
    cand.stats = estimator_.lookup(client, provider_, path);
    cand.path = std::move(path);
    candidates.push_back(std::move(cand));
  }
  Decision decision = policy_.decide(client, bytes, candidates, epoch_,
                                     simulator_->now());
  trace_.note_steer(client, bytes, decision);
  obs::add(decisions_made_total_);
  if (decision.switched) obs::add(switches_made_total_);
  if (decision_hook_) decision_hook_(client, decision);
  return decision;
}

void Controller::observe_session(net::NodeId client, const Decision& decision,
                                 std::uint64_t bytes, double elapsed_s,
                                 bool success) {
  const double mbps = success && elapsed_s > 0.0
                          ? static_cast<double>(bytes) * 8e-6 / elapsed_s
                          : 0.0;
  if (success) {
    // Passive feedback: a real session is a free (and much larger) sample
    // for the path it rode.
    estimator_.observe(client, provider_, decision.path, mbps, elapsed_s,
                       epoch_);
  }
  trace_.note_session(client, decision.path, success, mbps, elapsed_s);
  obs::add(sessions_observed_total_);
}

}  // namespace droute::ctrl
