#include "ctrl/policy.h"

#include <limits>

#include "check/contract.h"

namespace droute::ctrl {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Projected session seconds for `bytes` at the candidate's EWMA mean.
double expected_s(const SteeringPolicy::Candidate* cand, std::uint64_t bytes) {
  if (cand == nullptr || cand->stats == nullptr ||
      cand->stats->samples == 0 || cand->stats->mean_mbps <= 0.0) {
    return kInf;
  }
  const double megabits = static_cast<double>(bytes) * 8.0 / 1e6;
  return megabits / cand->stats->mean_mbps;
}

const SteeringPolicy::Candidate* find_path(
    const std::vector<SteeringPolicy::Candidate>& candidates,
    const PathSpec& path) {
  for (const auto& cand : candidates) {
    if (cand.path == path) return &cand;
  }
  return nullptr;
}

}  // namespace

PathSpec SteeringPolicy::incumbent(net::NodeId client) const {
  const auto it = incumbents_.find(client);
  return it == incumbents_.end() ? PathSpec{} : it->second.path;
}

Decision SteeringPolicy::decide(net::NodeId client, std::uint64_t bytes,
                                const std::vector<Candidate>& candidates,
                                std::uint64_t epoch, double now_s) {
  const Candidate* direct = find_path(candidates, PathSpec{});
  DROUTE_CHECK(direct != nullptr,
               "SteeringPolicy: candidates must include the direct path");

  Decision decision;
  decision.epoch = epoch;
  decision.at_s = now_s;

  const double direct_s = expected_s(direct, bytes);
  const bool direct_known = direct->routable && direct->stats != nullptr &&
                            direct->stats->samples > 0;

  // Challenger selection (steps 1-3 of the header comment).
  const Candidate* challenger = direct->routable ? direct : nullptr;
  std::string gate_reason =
      direct->routable ? "direct default" : "direct unroutable";
  if (direct->routable && direct_known) {
    double best_benefit = config_.min_benefit_usd;
    for (const Candidate& cand : candidates) {
      if (cand.path.direct() || !cand.routable || cand.stats == nullptr ||
          cand.stats->samples == 0) {
        continue;
      }
      const auto verdict = stats::judge_higher_better(
          cand.stats->interval(), direct->stats->interval(),
          config_.significance);
      if (!verdict.choose_candidate) continue;
      const double benefit = net_benefit_usd(
          cost_, cand.path.relay_hops(), bytes, direct_s,
          expected_s(&cand, bytes));
      if (benefit > best_benefit) {
        best_benefit = benefit;
        challenger = &cand;
        gate_reason = "relay significant and cost-positive";
      }
    }
  } else if (!direct->routable) {
    // Emergency reroute: direct is dead, take the best live relay even
    // without a significance case (conservatism presumes a live baseline).
    for (const Candidate& cand : candidates) {
      if (cand.path.direct() || !cand.routable) continue;
      const double cur_mbps =
          challenger != nullptr && challenger->stats != nullptr
              ? challenger->stats->mean_mbps
              : -1.0;
      const double alt_mbps =
          cand.stats != nullptr ? cand.stats->mean_mbps : 0.0;
      if (challenger == nullptr || alt_mbps > cur_mbps) {
        challenger = &cand;
        gate_reason = "emergency reroute off dead direct";
      }
    }
  }

  if (challenger == nullptr) {
    // Nothing routable at all: fall back to direct and say so; the session
    // will fail on its own, and ctrl_no_dead_steer skips unroutable
    // decisions (there was no live path to steer onto).
    decision.routable = false;
    decision.reason = "no live path; direct fallback";
    incumbents_[client] = {PathSpec{}, epoch};
    return decision;
  }

  // Hysteresis (step 4).
  const auto [it, inserted] =
      incumbents_.try_emplace(client, Incumbent{PathSpec{}, epoch});
  Incumbent& inc = it->second;
  const PathSpec before = inc.path;
  if (inserted) {
    inc = {challenger->path, epoch};
    decision.reason = gate_reason + "; first decision";
  } else {
    const Candidate* inc_cand = find_path(candidates, inc.path);
    const bool inc_routable = inc_cand != nullptr && inc_cand->routable;
    if (!inc_routable) {
      inc = {challenger->path, epoch};
      decision.reason = gate_reason + "; incumbent unroutable";
    } else if (challenger->path == inc.path) {
      decision.reason = gate_reason + "; incumbent holds";
    } else if (epoch < inc.since_epoch + config_.min_dwell_epochs) {
      challenger = inc_cand;
      decision.reason = "dwell: keeping incumbent";
    } else if (challenger->path.direct()) {
      // The relay incumbent no longer has a significant, cost-positive
      // case; Sec III-B conservatism returns the client to direct.
      inc = {challenger->path, epoch};
      decision.reason = "relay no longer justified; returning to direct";
    } else if (expected_s(challenger, bytes) <
               (1.0 - config_.switch_margin) * expected_s(inc_cand, bytes)) {
      inc = {challenger->path, epoch};
      decision.reason = gate_reason + "; beats incumbent by margin";
    } else {
      challenger = inc_cand;
      decision.reason = "margin: keeping incumbent";
    }
  }

  decision.path = challenger->path;
  decision.routable = challenger->routable;
  decision.switched = !(challenger->path == before);
  if (challenger->stats != nullptr && challenger->stats->samples > 0) {
    decision.expected_mbps = challenger->stats->mean_mbps;
  }
  if (!challenger->path.direct() && direct_known &&
      challenger->stats != nullptr && challenger->stats->samples > 0) {
    decision.benefit_usd =
        net_benefit_usd(cost_, challenger->path.relay_hops(), bytes,
                        direct_s, expected_s(challenger, bytes));
  }
  return decision;
}

}  // namespace droute::ctrl
