// Cornifer-style cost model: steering is not free. A relayed session pays
// per-GB forwarding on every relay hop plus amortized relay rental for the
// time it occupies the chain; choosing it only makes sense when the
// projected time saved is worth more than that premium. The policy compares
// candidates by net benefit in dollars, so "faster but wildly expensive"
// loses to direct on purpose.
#pragma once

#include <cstdint>

namespace droute::ctrl {

struct CostModel {
  /// Transit/egress paid per GB on ANY path to the provider (identical for
  /// every candidate, so it cancels in net_benefit_usd; kept for absolute
  /// session cost accounting).
  double egress_usd_per_gb = 0.09;
  /// Extra forwarding cost per GB per relay hop (DTN bandwidth rental).
  double relay_usd_per_gb = 0.02;
  /// Amortized rental per relay-hop-hour while the session occupies it.
  double relay_rental_usd_per_hour = 0.50;
  /// What one hour of transfer time saved is worth to the user.
  double value_usd_per_hour_saved = 10.0;
};

/// Premium a `relay_hops`-hop path charges over direct for a session of
/// `bytes` that occupies the chain for `path_elapsed_s` seconds. Zero for
/// direct (0 hops).
double extra_path_cost_usd(const CostModel& model, int relay_hops,
                           std::uint64_t bytes, double path_elapsed_s);

/// Net dollar benefit of steering `bytes` onto a `relay_hops`-hop path with
/// projected duration `path_s` instead of direct's `direct_s`:
/// value of time saved minus the relay premium. Direct scores 0 against
/// itself; negative means the detour is not worth its cost.
double net_benefit_usd(const CostModel& model, int relay_hops,
                       std::uint64_t bytes, double direct_s, double path_s);

/// Absolute session cost on a path (egress + relay premium) — reporting.
double session_cost_usd(const CostModel& model, int relay_hops,
                        std::uint64_t bytes, double path_elapsed_s);

}  // namespace droute::ctrl
