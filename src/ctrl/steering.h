// The decision-source seam between the control plane and the data plane.
//
// ctrl::Steering is the interface transfer engines and scenario::World
// consult when a new upload session starts: given (client, bytes), it names
// the path — direct, one DTN relay, or a bounded relay chain — the session
// should ride. ctrl::Controller is the online implementation; StaticSteering
// pins a fixed path (the "what the paper hardcoded" baseline and the bench
// oracle's building block).
//
// This header is deliberately dependency-light (net ids only, everything
// inline) so the transfer layer can accept a Steering* without linking
// droute_ctrl — the control plane depends on the data plane, not the other
// way around.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/topology.h"

namespace droute::ctrl {

/// A candidate path from a client to the provider front-end: the ordered
/// DTN relays a session is staged through. Empty = the direct path.
struct PathSpec {
  std::vector<net::NodeId> relays;

  bool direct() const { return relays.empty(); }
  int relay_hops() const { return static_cast<int>(relays.size()); }

  /// Stable display/serialization label: "direct", "via 4", "via 4>7".
  std::string label() const {
    if (relays.empty()) return "direct";
    std::string out = "via ";
    for (std::size_t i = 0; i < relays.size(); ++i) {
      if (i > 0) out += ">";
      out += std::to_string(relays[i]);
    }
    return out;
  }

  friend bool operator==(const PathSpec& a, const PathSpec& b) {
    return a.relays == b.relays;
  }
  friend bool operator<(const PathSpec& a, const PathSpec& b) {
    return a.relays < b.relays;
  }
};

/// One steering decision, with enough context to audit it afterwards (the
/// ctrl_no_dead_steer property re-validates decisions against the live
/// topology, and DecisionTrace serializes them byte-identically).
struct Decision {
  PathSpec path;
  std::uint64_t epoch = 0;      // controller epoch the decision was made in
  double at_s = 0.0;            // simulated decision time
  double expected_mbps = 0.0;   // estimator mean for the chosen path (0 = none)
  double benefit_usd = 0.0;     // cost-model net benefit vs direct (0 for direct)
  bool routable = true;         // false: no live path existed; direct fallback
  bool switched = false;        // the client's incumbent path changed
  std::string reason;
};

/// Abstract decision source for new upload sessions.
class Steering {
 public:
  virtual ~Steering() = default;

  /// Chooses the path a new `bytes`-sized upload session from `client`
  /// should take to the provider front-end.
  virtual Decision steer(net::NodeId client, std::uint64_t bytes) = 0;

  /// Feedback channel: a steered session finished. Implementations may fold
  /// the observed goodput into their estimates; the default ignores it.
  virtual void observe_session(net::NodeId client, const Decision& decision,
                               std::uint64_t bytes, double elapsed_s,
                               bool success) {
    (void)client;
    (void)decision;
    (void)bytes;
    (void)elapsed_s;
    (void)success;
  }
};

/// Pins every session to one fixed path. The static-direct baseline of
/// bench_ctrl_recovery is StaticSteering{{}}; the oracle arms pin relays.
class StaticSteering final : public Steering {
 public:
  StaticSteering() = default;
  explicit StaticSteering(PathSpec path) : path_(std::move(path)) {}

  Decision steer(net::NodeId client, std::uint64_t bytes) override {
    (void)client;
    (void)bytes;
    Decision decision;
    decision.path = path_;
    decision.reason = "static";
    return decision;
  }

 private:
  PathSpec path_;
};

}  // namespace droute::ctrl
