#include "cloud/provider.h"

#include "check/contract.h"

namespace droute::cloud {

std::vector<ProviderKind> all_providers() {
  return {ProviderKind::kGoogleDrive, ProviderKind::kDropbox,
          ProviderKind::kOneDrive};
}

std::string provider_name(ProviderKind kind) {
  switch (kind) {
    case ProviderKind::kGoogleDrive: return "Google Drive";
    case ProviderKind::kDropbox:     return "Dropbox";
    case ProviderKind::kOneDrive:    return "OneDrive";
  }
  return "?";
}

ApiProfile default_profile(ProviderKind kind) {
  ApiProfile profile;
  switch (kind) {
    case ProviderKind::kGoogleDrive:
      profile.chunk_bytes = 8ull * 1024 * 1024;
      profile.session_init_rtts = 2.0;  // OAuth'd POST + 200 w/ session URI
      profile.per_chunk_rtts = 1.0;
      profile.finalize_rtts = 1.0;
      break;
    case ProviderKind::kDropbox:
      profile.chunk_bytes = 8ull * 1024 * 1024;
      profile.session_init_rtts = 1.0;  // upload_session/start
      profile.per_chunk_rtts = 1.0;     // append_v2
      profile.finalize_rtts = 2.0;      // finish + commit metadata
      break;
    case ProviderKind::kOneDrive:
      profile.chunk_bytes = 10ull * 1024 * 1024;
      profile.chunk_alignment_bytes = 320ull * 1024;
      profile.session_init_rtts = 2.0;  // createUploadSession
      profile.per_chunk_rtts = 1.0;
      profile.finalize_rtts = 1.0;      // final fragment metadata response
      break;
  }
  return profile;
}

util::Result<std::vector<std::uint64_t>> chunk_sizes(
    const ApiProfile& profile, std::uint64_t file_bytes) {
  if (file_bytes == 0) {
    return util::Error::make("cannot upload an empty file");
  }
  DROUTE_CHECK(profile.chunk_bytes > 0, "profile chunk size must be positive");
  DROUTE_CHECK(profile.chunk_bytes % profile.chunk_alignment_bytes == 0,
               "profile chunk size must respect its own alignment");
  std::vector<std::uint64_t> chunks;
  std::uint64_t remaining = file_bytes;
  while (remaining > profile.chunk_bytes) {
    chunks.push_back(profile.chunk_bytes);
    remaining -= profile.chunk_bytes;
  }
  chunks.push_back(remaining);
  return chunks;
}

double total_rtt_units(const ApiProfile& profile, std::uint64_t file_bytes) {
  auto chunks = chunk_sizes(profile, file_bytes);
  if (!chunks.ok()) return 0.0;
  return profile.session_init_rtts +
         profile.per_chunk_rtts * static_cast<double>(chunks.value().size()) +
         profile.finalize_rtts;
}

}  // namespace droute::cloud
