#include "cloud/oauth.h"

#include <cstdio>

#include "check/contract.h"
#include "obs/recorder.h"

namespace droute::cloud {

OAuthSession::OAuthSession(std::string client_id, double token_lifetime_s,
                           std::uint64_t seed)
    : client_id_(std::move(client_id)),
      token_lifetime_s_(token_lifetime_s),
      rng_(seed) {
  DROUTE_CHECK(token_lifetime_s_ > 0, "token lifetime must be positive");
  obs_token_refreshes_ = obs::counter("cloud.token_refreshes_total");
}

std::string OAuthSession::mint(sim::Time now) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "ya29.%s.%016llx.%010.3f",
                client_id_.c_str(),
                static_cast<unsigned long long>(rng_.next_u64()), now);
  return buf;
}

AccessToken OAuthSession::ensure_token(sim::Time now, bool* refreshed) {
  const bool need_refresh = !have_token_ || current_.expired_at(now);
  if (need_refresh) {
    current_.value = mint(now);
    current_.issued_at = now;
    current_.lifetime_s = token_lifetime_s_;
    have_token_ = true;
    ++refresh_count_;
    obs::add(obs_token_refreshes_);
  }
  if (refreshed) *refreshed = need_refresh;
  return current_;
}

util::Status OAuthSession::validate(const AccessToken& token,
                                    sim::Time now) const {
  if (!have_token_ || token.value != current_.value) {
    return util::Status::failure("invalid_grant: unknown bearer token", 401);
  }
  if (token.expired_at(now)) {
    return util::Status::failure("invalid_grant: token expired", 401);
  }
  return util::Status::success();
}

}  // namespace droute::cloud
