// Server-side state machine of a cloud-storage provider's upload API.
//
// Enforces what the real services enforce: sessions must exist, chunks must
// arrive in order at the expected offset, all chunks except the last must be
// full/aligned, and the committed object's size and MD5 must match what the
// client declared. Transfer engines drive this machine as their simulated
// chunks complete, so a protocol bug in an engine fails loudly in tests.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "cloud/provider.h"
#include "rsyncx/md5.h"
#include "util/result.h"

namespace droute::obs {
class Counter;
}  // namespace droute::obs

namespace droute::cloud {

struct StoredObject {
  std::string name;
  std::uint64_t size = 0;
  rsyncx::Md5Digest md5{};
  /// Synthetic content identity (see cloud/content.h); lets download
  /// clients verify ranges against the same digest chain uploads produced.
  std::uint64_t content_seed = 0;
};

using SessionId = std::uint64_t;

class StorageServer {
 public:
  StorageServer(ProviderKind kind, ApiProfile profile);

  /// Attaches a clock for request-throttle bookkeeping. Without a clock the
  /// throttle is inactive regardless of the profile (unlimited).
  void set_clock(std::function<double()> now_fn) {
    now_fn_ = std::move(now_fn);
  }

  /// Requests rejected with 429 so far (observability for tests/benches).
  std::uint64_t throttled_requests() const { return throttled_; }

  /// Rewrites the request-throttle budget at runtime (chaos injection: a
  /// 429 storm tightens it, calm restores it; 0 = unlimited). The sliding
  /// window and Retry-After of the profile are unchanged.
  void set_throttle(int max_requests_per_window) {
    profile_.max_requests_per_window = max_requests_per_window;
  }

  ProviderKind kind() const { return kind_; }
  const ApiProfile& profile() const { return profile_; }

  /// Opens an upload session for `name` totalling `total_bytes`.
  /// `content_seed` is the object's synthetic content identity.
  [[nodiscard]] util::Result<SessionId> create_session(const std::string& name,
                                         std::uint64_t total_bytes,
                                         std::uint64_t content_seed = 0);

  /// Appends a chunk at `offset`. Chunk content is summarized by its MD5
  /// (the simulator moves byte *counts*; the digest carries integrity).
  [[nodiscard]]
  util::Status append_chunk(SessionId session, std::uint64_t offset,
                            std::uint64_t length,
                            const rsyncx::Md5Digest& chunk_md5);

  /// Commits the session; `declared_md5` is the client's whole-file digest,
  /// checked against the digest accumulated from the chunks.
  [[nodiscard]] util::Result<StoredObject> finalize(SessionId session,
                                      const rsyncx::Md5Digest& declared_md5);

  /// Drops an in-progress session (client abort / failure injection).
  void abandon(SessionId session);

  std::optional<StoredObject> lookup(const std::string& name) const;
  std::size_t object_count() const { return objects_.size(); }
  std::size_t open_sessions() const { return sessions_.size(); }

  // --- Download API (ranged GET semantics) --------------------------------

  /// Metadata request ("files.get"): size + digest + content identity.
  [[nodiscard]] util::Result<StoredObject> stat(const std::string& name) const;

  /// Validates and serves a byte range; returns the range's digest (the
  /// body itself moves as a simulated flow). Rejects out-of-bounds and
  /// zero-length ranges like the real APIs' 416 responses.
  [[nodiscard]]
  util::Result<rsyncx::Md5Digest> read_range(const std::string& name,
                                             std::uint64_t offset,
                                             std::uint64_t length) const;

 private:
  struct Session {
    std::string name;
    std::uint64_t total_bytes = 0;
    std::uint64_t content_seed = 0;
    std::uint64_t received = 0;
    // Digest-of-digests: order-sensitive accumulation of chunk MD5s. Equality
    // with the client's same accumulation proves in-order intact delivery.
    rsyncx::Md5 rolling_digest;
  };

  // Sliding-window throttle; returns failure(429) when over budget.
  [[nodiscard]] util::Status check_throttle();

  ProviderKind kind_;
  ApiProfile profile_;
  std::function<double()> now_fn_;
  std::deque<double> request_times_;
  std::uint64_t throttled_ = 0;
  SessionId next_session_ = 1;
  std::map<SessionId, Session> sessions_;
  std::map<std::string, StoredObject> objects_;
  // obs handles (null when recording is disabled at construction).
  obs::Counter* obs_sessions_opened_ = nullptr;
  obs::Counter* obs_sessions_finalized_ = nullptr;
  obs::Counter* obs_requests_throttled_ = nullptr;
};

/// Client-side helper computing the same digest-of-digests the server
/// accumulates, so engines can produce the `declared_md5` for finalize().
class ChunkDigester {
 public:
  void add_chunk(const rsyncx::Md5Digest& chunk_md5) {
    digest_.update(chunk_md5);
  }
  rsyncx::Md5Digest finish() { return digest_.finalize(); }

 private:
  rsyncx::Md5 digest_;
};

}  // namespace droute::cloud
