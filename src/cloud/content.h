// Synthetic content identity shared by clients and servers.
//
// Simulated transfers move byte *counts*; integrity is carried by digests
// derived deterministically from (content seed, offset, length). Both sides
// of an exchange derive the same digest for the same range, so ordering and
// completeness bugs still fail loudly (see transfer/file_spec.h for the
// fidelity argument).
#pragma once

#include <array>
#include <cstdint>

#include "rsyncx/md5.h"

namespace droute::cloud {

/// Digest standing in for MD5(content[offset, offset+length)) of the file
/// identified by `content_seed`.
inline rsyncx::Md5Digest synthetic_range_digest(std::uint64_t content_seed,
                                                std::uint64_t offset,
                                                std::uint64_t length) {
  std::array<std::uint8_t, 24> key{};
  for (int i = 0; i < 8; ++i) {
    key[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(content_seed >> (8 * i));
    key[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(offset >> (8 * i));
    key[static_cast<std::size_t>(16 + i)] =
        static_cast<std::uint8_t>(length >> (8 * i));
  }
  return rsyncx::Md5::hash(key);
}

}  // namespace droute::cloud
