// OAuth2 (RFC 6749) emulation — the authorization layer all three providers
// share (Sec II). We model the refresh-token grant the paper's long-running
// measurement clients exercise: tokens expire, expired tokens are refreshed
// at the cost of one token-endpoint round trip before the upload can start.
#pragma once

#include <coroutine>
#include <cstdint>
#include <string>

#include "sim/simulator.h"
#include "sim/task.h"
#include "util/result.h"
#include "util/rng.h"

namespace droute::obs {
class Counter;
}  // namespace droute::obs

namespace droute::cloud {

struct AccessToken {
  std::string value;       // opaque bearer token
  sim::Time issued_at = 0;
  double lifetime_s = 3600.0;

  bool expired_at(sim::Time now) const {
    return now >= issued_at + lifetime_s;
  }
};

/// Token endpoint state for one (client, provider) pair.
class OAuthSession {
 public:
  OAuthSession(std::string client_id, double token_lifetime_s,
               std::uint64_t seed);

  /// Returns a valid token, refreshing if needed. `refreshed` (optional out)
  /// reports whether a token-endpoint round trip was required — the caller
  /// charges that RTT to the transfer timeline.
  AccessToken ensure_token(sim::Time now, bool* refreshed = nullptr);

  /// Validates a presented bearer token (the server side of the exchange).
  [[nodiscard]]
  util::Status validate(const AccessToken& token, sim::Time now) const;

  std::uint64_t refresh_count() const { return refresh_count_; }

 private:
  std::string mint(sim::Time now);

  std::string client_id_;
  double token_lifetime_s_;
  util::Rng rng_;
  AccessToken current_;
  bool have_token_ = false;
  std::uint64_t refresh_count_ = 0;
  // obs handle (null when recording is disabled at construction).
  obs::Counter* obs_token_refreshes_ = nullptr;
};

/// Awaitable form of the refresh wait: ensures a valid token and, when a
/// token-endpoint round trip was needed, suspends the awaiting sim::Task
/// for one `rtt_s`. Yields whether a refresh happened, or a kErrCancelled
/// error when the task was cancelled mid-wait. Bind to a local (lvalue-only
/// awaiting, like every awaitable in this codebase):
///
///   auto auth = cloud::ensure_token_await(oauth, simulator, rtt_s);
///   const auto refreshed = co_await auth;
///   if (!refreshed.ok()) co_return refreshed.error();
class TokenRefreshAwaitable {
 public:
  TokenRefreshAwaitable(OAuthSession& session, sim::Simulator& simulator,
                        double rtt_s)
      : delay_(simulator, refresh_cost(session, simulator, rtt_s,
                                       &refreshed_)) {}

  bool await_ready() const& noexcept { return delay_.await_ready(); }

  template <typename Promise>
  bool await_suspend(std::coroutine_handle<Promise> handle) & {
    return delay_.await_suspend(handle);
  }

  [[nodiscard]] util::Result<bool> await_resume() const& {
    if (!delay_.await_resume()) {
      return util::Error::make("token refresh cancelled", sim::kErrCancelled);
    }
    return refreshed_;
  }

 private:
  static sim::Time refresh_cost(OAuthSession& session,
                                sim::Simulator& simulator, double rtt_s,
                                bool* refreshed) {
    session.ensure_token(simulator.now(), refreshed);
    return *refreshed ? rtt_s : 0.0;
  }

  bool refreshed_ = false;  // must precede delay_: refresh_cost writes it
  sim::DelayAwaitable delay_;
};

inline TokenRefreshAwaitable ensure_token_await(OAuthSession& session,
                                                sim::Simulator& simulator,
                                                double rtt_s) {
  return TokenRefreshAwaitable(session, simulator, rtt_s);
}

}  // namespace droute::cloud
