// OAuth2 (RFC 6749) emulation — the authorization layer all three providers
// share (Sec II). We model the refresh-token grant the paper's long-running
// measurement clients exercise: tokens expire, expired tokens are refreshed
// at the cost of one token-endpoint round trip before the upload can start.
#pragma once

#include <cstdint>
#include <string>

#include "sim/simulator.h"
#include "util/result.h"
#include "util/rng.h"

namespace droute::obs {
class Counter;
}  // namespace droute::obs

namespace droute::cloud {

struct AccessToken {
  std::string value;       // opaque bearer token
  sim::Time issued_at = 0;
  double lifetime_s = 3600.0;

  bool expired_at(sim::Time now) const {
    return now >= issued_at + lifetime_s;
  }
};

/// Token endpoint state for one (client, provider) pair.
class OAuthSession {
 public:
  OAuthSession(std::string client_id, double token_lifetime_s,
               std::uint64_t seed);

  /// Returns a valid token, refreshing if needed. `refreshed` (optional out)
  /// reports whether a token-endpoint round trip was required — the caller
  /// charges that RTT to the transfer timeline.
  AccessToken ensure_token(sim::Time now, bool* refreshed = nullptr);

  /// Validates a presented bearer token (the server side of the exchange).
  [[nodiscard]]
  util::Status validate(const AccessToken& token, sim::Time now) const;

  std::uint64_t refresh_count() const { return refresh_count_; }

 private:
  std::string mint(sim::Time now);

  std::string client_id_;
  double token_lifetime_s_;
  util::Rng rng_;
  AccessToken current_;
  bool have_token_ = false;
  std::uint64_t refresh_count_ = 0;
  // obs handle (null when recording is disabled at construction).
  obs::Counter* obs_token_refreshes_ = nullptr;
};

}  // namespace droute::cloud
