#include "cloud/storage_server.h"

#include "cloud/content.h"
#include "obs/recorder.h"

namespace droute::cloud {

StorageServer::StorageServer(ProviderKind kind, ApiProfile profile)
    : kind_(kind), profile_(profile) {
  obs_sessions_opened_ = obs::counter("cloud.sessions_opened_total");
  obs_sessions_finalized_ = obs::counter("cloud.sessions_finalized_total");
  obs_requests_throttled_ = obs::counter("cloud.requests_throttled_total");
}

util::Status StorageServer::check_throttle() {
  if (!now_fn_ || profile_.max_requests_per_window <= 0) {
    return util::Status::success();
  }
  const double now = now_fn_();
  while (!request_times_.empty() &&
         request_times_.front() < now - profile_.throttle_window_s) {
    request_times_.pop_front();
  }
  if (static_cast<int>(request_times_.size()) >=
      profile_.max_requests_per_window) {
    ++throttled_;
    obs::add(obs_requests_throttled_);
    return util::Status::failure("rate limited (Retry-After)", 429);
  }
  request_times_.push_back(now);
  return util::Status::success();
}

util::Result<SessionId> StorageServer::create_session(
    const std::string& name, std::uint64_t total_bytes,
    std::uint64_t content_seed) {
  if (auto throttle = check_throttle(); !throttle.ok()) {
    return util::Error{throttle.error()};
  }
  if (name.empty()) return util::Error::make("object name must be non-empty");
  if (total_bytes == 0) return util::Error::make("zero-length upload");
  const SessionId id = next_session_++;
  Session session;
  session.name = name;
  session.total_bytes = total_bytes;
  session.content_seed = content_seed;
  sessions_.emplace(id, std::move(session));
  obs::add(obs_sessions_opened_);
  return id;
}

util::Status StorageServer::append_chunk(SessionId session,
                                         std::uint64_t offset,
                                         std::uint64_t length,
                                         const rsyncx::Md5Digest& chunk_md5) {
  if (auto throttle = check_throttle(); !throttle.ok()) return throttle;
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return util::Status::failure("unknown upload session", 404);
  }
  Session& s = it->second;
  if (offset != s.received) {
    return util::Status::failure("chunk offset mismatch (out of order?)", 409);
  }
  if (length == 0) return util::Status::failure("empty chunk", 400);
  if (s.received + length > s.total_bytes) {
    return util::Status::failure("chunk overruns declared size", 400);
  }
  const bool is_last = s.received + length == s.total_bytes;
  if (!is_last) {
    if (length % profile_.chunk_alignment_bytes != 0) {
      return util::Status::failure("non-final chunk violates alignment", 400);
    }
    if (length != profile_.chunk_bytes) {
      return util::Status::failure("non-final chunk must be full-sized", 400);
    }
  }
  s.received += length;
  s.rolling_digest.update(chunk_md5);
  return util::Status::success();
}

util::Result<StoredObject> StorageServer::finalize(
    SessionId session, const rsyncx::Md5Digest& declared_md5) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return util::Error::make("unknown upload session", 404);
  }
  Session& s = it->second;
  if (s.received != s.total_bytes) {
    return util::Error::make("finalize before all bytes received", 400);
  }
  const rsyncx::Md5Digest accumulated = s.rolling_digest.finalize();
  if (accumulated != declared_md5) {
    sessions_.erase(it);
    return util::Error::make("integrity check failed on commit", 412);
  }
  StoredObject object;
  object.name = s.name;
  object.size = s.total_bytes;
  object.md5 = accumulated;
  object.content_seed = s.content_seed;
  objects_[object.name] = object;
  sessions_.erase(it);
  obs::add(obs_sessions_finalized_);
  return object;
}

void StorageServer::abandon(SessionId session) { sessions_.erase(session); }

std::optional<StoredObject> StorageServer::lookup(
    const std::string& name) const {
  auto it = objects_.find(name);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

util::Result<StoredObject> StorageServer::stat(const std::string& name) const {
  auto it = objects_.find(name);
  if (it == objects_.end()) return util::Error::make("no such object", 404);
  return it->second;
}

util::Result<rsyncx::Md5Digest> StorageServer::read_range(
    const std::string& name, std::uint64_t offset,
    std::uint64_t length) const {
  auto it = objects_.find(name);
  if (it == objects_.end()) return util::Error::make("no such object", 404);
  const StoredObject& object = it->second;
  if (length == 0) return util::Error::make("zero-length range", 416);
  if (offset >= object.size || length > object.size - offset) {
    return util::Error::make("range not satisfiable", 416);
  }
  return synthetic_range_digest(object.content_seed, offset, length);
}

}  // namespace droute::cloud
