// Cloud-storage provider catalogue and REST-API cost profiles.
//
// The three providers the paper measures differ not in raw bandwidth but in
// *API shape*: session initiation handshakes, chunk sizes, per-chunk
// turnarounds and commit costs. These profiles mirror the public APIs the
// paper's Java clients used:
//   * Google Drive : resumable upload — initiate, 8 MiB PUT chunks, each
//                    acknowledged with a 308/200 turnaround.
//   * Dropbox      : upload_session/start, append_v2 with 8 MiB parts,
//                    upload_session/finish commit.
//   * OneDrive     : createUploadSession, 10 MiB fragments (320 KiB-aligned),
//                    completion implied by the final fragment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace droute::cloud {

enum class ProviderKind { kGoogleDrive, kDropbox, kOneDrive };

/// All ProviderKind values, in the paper's column order.
std::vector<ProviderKind> all_providers();

std::string provider_name(ProviderKind kind);

/// REST upload cost profile. RTT counts are request/response turnarounds
/// charged in addition to the payload's transfer time.
struct ApiProfile {
  std::uint64_t chunk_bytes = 8ull * 1024 * 1024;
  double session_init_rtts = 2.0;   // auth'd POST creating the session
  double per_chunk_rtts = 1.0;      // ack turnaround after each chunk
  double finalize_rtts = 1.0;       // commit / metadata response
  std::uint64_t per_chunk_header_bytes = 1200;  // HTTP + JSON overhead
  /// Alignment required for all but the final chunk (OneDrive: 320 KiB).
  std::uint64_t chunk_alignment_bytes = 1;
  /// Server-side request throttling: at most `max_requests_per_window`
  /// API calls per `throttle_window_s` sliding window (0 = unlimited).
  /// Over-limit requests get 429 + Retry-After, which clients honour with
  /// exponential backoff (all three real providers throttle this way).
  int max_requests_per_window = 0;
  double throttle_window_s = 60.0;
  double retry_after_s = 2.0;
};

/// Default profile for each provider.
ApiProfile default_profile(ProviderKind kind);

/// Splits `file_bytes` into API chunk sizes per `profile` (all chunks
/// aligned, last chunk carries the remainder). Fails on zero-size files.
[[nodiscard]] util::Result<std::vector<std::uint64_t>> chunk_sizes(
    const ApiProfile& profile, std::uint64_t file_bytes);

/// Total protocol turnarounds (in RTT units) for a file of `file_bytes`.
double total_rtt_units(const ApiProfile& profile, std::uint64_t file_bytes);

}  // namespace droute::cloud
