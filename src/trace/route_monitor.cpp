#include "trace/route_monitor.h"

#include <sstream>

namespace droute::trace {

void RouteMonitor::watch(net::NodeId src, net::NodeId dst) {
  watched_.try_emplace({src, dst});
}

std::vector<RouteMonitor::ChangeEvent> RouteMonitor::snapshot() {
  const int index = snapshots_++;
  std::vector<ChangeEvent> changes;
  for (auto& [pair, state] : watched_) {
    auto traced = tracer_->trace(pair.first, pair.second);
    std::optional<TracerouteResult> now;
    if (traced.ok()) now = std::move(traced).value();

    if (index > 0) {
      ChangeEvent event;
      event.src = pair.first;
      event.dst = pair.second;
      event.snapshot_index = index;
      bool changed = false;
      if (state.last.has_value() != now.has_value()) {
        changed = true;
        event.became_unreachable = state.last.has_value();
        event.became_reachable = now.has_value();
      } else if (state.last && now &&
                 state.last->responsive_nodes() != now->responsive_nodes()) {
        changed = true;
        const RouteDiff diff = Tracer::diff(*state.last, *now);
        event.divergence_point = diff.divergence_point;
        event.old_only = diff.only_first;
        event.new_only = diff.only_second;
      }
      if (changed) {
        changes.push_back(event);
        history_.push_back(std::move(event));
      }
    }
    state.last = std::move(now);
  }
  return changes;
}

std::optional<std::vector<net::NodeId>> RouteMonitor::current_path(
    net::NodeId src, net::NodeId dst) const {
  const auto it = watched_.find({src, dst});
  if (it == watched_.end() || !it->second.last) return std::nullopt;
  return it->second.last->responsive_nodes();
}

std::string RouteMonitor::render_history() const {
  std::ostringstream out;
  for (const ChangeEvent& event : history_) {
    out << "snapshot " << event.snapshot_index << ": "
        << topo_->node(event.src).name << " -> "
        << topo_->node(event.dst).name;
    if (event.became_unreachable) {
      out << " became UNREACHABLE";
    } else if (event.became_reachable) {
      out << " became reachable";
    } else {
      out << " re-routed";
      if (event.divergence_point) {
        out << " after " << topo_->node(*event.divergence_point).name;
      }
      out << " (-" << event.old_only.size() << " hops, +"
          << event.new_only.size() << " hops)";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace droute::trace
