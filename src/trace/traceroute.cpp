#include "trace/traceroute.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <unordered_set>

namespace droute::trace {

util::Result<TracerouteResult> Tracer::trace(net::NodeId src,
                                             net::NodeId dst) const {
  auto route = routes_->route(src, dst);
  if (!route.ok()) return util::Error{route.error()};

  TracerouteResult result;
  result.src = src;
  result.dst = dst;

  double cumulative_delay = 0.0;
  const auto& nodes = route.value().nodes;
  const auto& links = route.value().links;
  for (std::size_t i = 0; i < links.size(); ++i) {
    cumulative_delay += topo_->link(links[i]).prop_delay_s;
    const net::NodeId hop_node = nodes[i + 1];
    Hop hop;
    hop.ttl = static_cast<int>(i + 1);
    hop.node = hop_node;
    hop.rtt_s = 2.0 * cumulative_delay;
    if (silent_.contains(hop_node)) {
      hop.silent = true;
    } else {
      const net::Node& n = topo_->node(hop_node);
      hop.name = n.name;
      hop.ip = n.ip.to_string();
    }
    result.hops.push_back(std::move(hop));
  }
  return result;
}

std::string TracerouteResult::render(const net::Topology& topo) const {
  std::ostringstream out;
  const net::Node& dst_node = topo.node(dst);
  out << "traceroute to " << dst_node.name << " (" << dst_node.ip.to_string()
      << ")\n";
  for (const Hop& hop : hops) {
    char line[160];
    if (hop.silent) {
      std::snprintf(line, sizeof(line), "%2d  * * *", hop.ttl);
    } else {
      std::snprintf(line, sizeof(line), "%2d  %s (%s)  %.3f ms", hop.ttl,
                    hop.name.c_str(), hop.ip.c_str(), hop.rtt_s * 1e3);
    }
    out << line << "\n";
  }
  return out.str();
}

std::vector<net::NodeId> TracerouteResult::responsive_nodes() const {
  std::vector<net::NodeId> out;
  for (const Hop& hop : hops) {
    if (!hop.silent) out.push_back(hop.node);
  }
  return out;
}

util::Result<Tracer::Asymmetry> Tracer::round_trip_asymmetry(
    net::NodeId src, net::NodeId dst) const {
  auto forward = trace(src, dst);
  if (!forward.ok()) return util::Error{forward.error()};
  auto reverse = trace(dst, src);
  if (!reverse.ok()) return util::Error{reverse.error()};
  // Compare intermediate routers only (endpoints trivially differ in role).
  auto middles = [](const TracerouteResult& result, net::NodeId endpoint) {
    std::vector<net::NodeId> out;
    for (net::NodeId node : result.responsive_nodes()) {
      if (node != endpoint) out.push_back(node);
    }
    return out;
  };
  const auto fwd = middles(forward.value(), dst);
  const auto rev = middles(reverse.value(), src);
  // Determinism audit: both sets are membership probes only — iteration
  // below walks the order-stable `fwd`/`rev` vectors, never the sets.
  const std::unordered_set<net::NodeId> fwd_set(fwd.begin(), fwd.end());
  const std::unordered_set<net::NodeId> rev_set(rev.begin(), rev.end());
  Asymmetry result;
  for (net::NodeId node : fwd) {
    if (!rev_set.contains(node)) result.forward_only.push_back(node);
  }
  for (net::NodeId node : rev) {
    if (!fwd_set.contains(node)) result.reverse_only.push_back(node);
  }
  result.asymmetric =
      !result.forward_only.empty() || !result.reverse_only.empty();
  return result;
}

RouteDiff Tracer::diff(const TracerouteResult& first,
                       const TracerouteResult& second) {
  RouteDiff diff;
  const auto a = first.responsive_nodes();
  const auto b = second.responsive_nodes();
  // Determinism audit: membership probes only; the diff lists are built by
  // walking `a` and `b` in path order, so hash order never escapes.
  const std::unordered_set<net::NodeId> in_a(a.begin(), a.end());
  const std::unordered_set<net::NodeId> in_b(b.begin(), b.end());

  for (net::NodeId n : a) {
    if (in_b.contains(n)) diff.shared_nodes.push_back(n);
    else diff.only_first.push_back(n);
  }
  for (net::NodeId n : b) {
    if (!in_a.contains(n)) diff.only_second.push_back(n);
  }

  // Divergence: the first node both paths visit whose *successor* differs
  // between the paths (paths from different sources share a middle segment
  // — vncv1rtr2 in Figs 5/6 — then split; the split point is what matters).
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!in_b.contains(a[i])) continue;
    const auto it = std::find(b.begin(), b.end(), a[i]);
    const net::NodeId next_a =
        i + 1 < a.size() ? a[i + 1] : net::kInvalidNode;
    const net::NodeId next_b =
        it + 1 != b.end() ? *(it + 1) : net::kInvalidNode;
    if (next_a != next_b) {
      diff.divergence_point = a[i];
      break;
    }
  }
  return diff;
}

}  // namespace droute::trace
