// RouteMonitor — RouteViews-flavoured route-change tracking (Sec III-D
// suggests routing-table monitoring "might assist in our understanding";
// the paper stops at one-shot traceroute; we keep a history).
//
// Registered (src, dst) pairs are traced on every snapshot(); consecutive
// snapshots are diffed and changes recorded with the divergence point, so
// transient re-routes (the "dynamic bottlenecks" of the paper's future work)
// become visible events instead of silent measurement noise.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "trace/traceroute.h"

namespace droute::trace {

class RouteMonitor {
 public:
  RouteMonitor(const Tracer* tracer, const net::Topology* topo)
      : tracer_(tracer), topo_(topo) {}

  /// Starts tracking a pair. Duplicate registrations are ignored.
  void watch(net::NodeId src, net::NodeId dst);

  struct ChangeEvent {
    net::NodeId src;
    net::NodeId dst;
    int snapshot_index = 0;            // snapshot that observed the change
    std::optional<net::NodeId> divergence_point;
    std::vector<net::NodeId> old_only;  // hops dropped from the path
    std::vector<net::NodeId> new_only;  // hops added to the path
    bool became_unreachable = false;
    bool became_reachable = false;
  };

  /// Traces every watched pair; returns the changes relative to the previous
  /// snapshot (empty on the first snapshot or when all routes are stable).
  std::vector<ChangeEvent> snapshot();

  /// Full change history across all snapshots.
  const std::vector<ChangeEvent>& history() const { return history_; }

  int snapshots_taken() const { return snapshots_; }

  /// Latest known path for a pair (responsive hops), if reachable.
  std::optional<std::vector<net::NodeId>> current_path(net::NodeId src,
                                                       net::NodeId dst) const;

  /// Human-readable log of the change history.
  std::string render_history() const;

 private:
  struct PairState {
    std::optional<TracerouteResult> last;  // nullopt = unreachable
  };

  const Tracer* tracer_;
  const net::Topology* topo_;
  std::map<std::pair<net::NodeId, net::NodeId>, PairState> watched_;
  std::vector<ChangeEvent> history_;
  int snapshots_ = 0;
};

}  // namespace droute::trace
