// Traceroute emulation over the simulated routing tables, reproducing the
// Fig 5 / Fig 6 evidence: per-TTL hop discovery with RTTs, unresponsive
// ("* * *") hops, and route diffing to find where two paths diverge (the
// pacificwave-vs-peering observation of Sec III-A).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/routing.h"
#include "net/topology.h"
#include "util/result.h"

namespace droute::trace {

struct Hop {
  int ttl = 0;
  net::NodeId node = net::kInvalidNode;
  std::string name;       // empty when the hop is silent
  std::string ip;         // dotted quad, empty when silent
  double rtt_s = 0.0;     // round-trip to this hop
  bool silent = false;    // renders as "* * *"
};

struct TracerouteResult {
  net::NodeId src = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;
  std::vector<Hop> hops;

  /// Classic traceroute text rendering (one line per TTL).
  std::string render(const net::Topology& topo) const;

  /// Node ids of responsive hops, in order (for diffing).
  std::vector<net::NodeId> responsive_nodes() const;
};

/// Comparison of two traceroutes toward the same destination.
struct RouteDiff {
  std::vector<net::NodeId> shared_nodes;   // appear on both paths
  std::vector<net::NodeId> only_first;
  std::vector<net::NodeId> only_second;
  /// Last shared node after which the paths diverge, if they do.
  std::optional<net::NodeId> divergence_point;
};

class Tracer {
 public:
  Tracer(const net::Topology* topo, const net::RouteTable* routes)
      : topo_(topo), routes_(routes) {}

  /// Marks a node as ICMP-unresponsive; it shows as "* * *" in traces.
  void set_silent(net::NodeId node) { silent_.insert(node); }

  /// TTL-walks the current route from src to dst.
  [[nodiscard]]
  util::Result<TracerouteResult> trace(net::NodeId src, net::NodeId dst) const;

  /// Diffs two traceroutes (typically two sources toward one destination).
  static RouteDiff diff(const TracerouteResult& first,
                        const TracerouteResult& second);

  /// Forward/reverse path comparison between two nodes. Internet paths are
  /// routinely asymmetric (policy differs per direction); this is what makes
  /// detour choice direction-dependent (see bench_ext_download).
  struct Asymmetry {
    bool asymmetric = false;
    std::vector<net::NodeId> forward_only;  // routers only on src->dst
    std::vector<net::NodeId> reverse_only;  // routers only on dst->src
  };
  [[nodiscard]] util::Result<Asymmetry> round_trip_asymmetry(net::NodeId src,
                                               net::NodeId dst) const;

 private:
  const net::Topology* topo_;
  const net::RouteTable* routes_;
  std::set<net::NodeId> silent_;
};

}  // namespace droute::trace
