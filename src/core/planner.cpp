#include "core/planner.h"

#include <algorithm>
#include <cmath>

#include "check/contract.h"
#include "stats/regression.h"

namespace droute::core {

DetourPlanner::DetourPlanner(Options options) : options_(options) {
  DROUTE_CHECK(options_.small_probe_bytes > 0 &&
                   options_.large_probe_bytes > options_.small_probe_bytes,
               "probe sizes must be positive and increasing");
  DROUTE_CHECK(options_.probes_per_size >= 1, "need at least one probe");
}

void DetourPlanner::add_candidate(const std::string& key,
                                  measure::TransferFn fn, bool is_direct) {
  DROUTE_CHECK(fn != nullptr, "null candidate TransferFn");
  candidates_.push_back({key, std::move(fn), is_direct});
}

util::Result<PlannerReport> DetourPlanner::plan(
    std::uint64_t target_bytes) const {
  if (candidates_.empty()) {
    return util::Error::make("DetourPlanner: no candidates registered");
  }
  const auto direct_count =
      std::count_if(candidates_.begin(), candidates_.end(),
                    [](const Candidate& c) { return c.is_direct; });
  if (direct_count != 1) {
    return util::Error::make(
        "DetourPlanner: exactly one direct candidate required");
  }

  PlannerReport report;
  std::vector<RouteStats> stats_for_advisor;

  for (const Candidate& candidate : candidates_) {
    // Probe both sizes `probes_per_size` times each, collecting
    // (bytes, seconds) observations for the regression.
    std::vector<double> xs, ys, large_times;
    for (int probe = 0; probe < options_.probes_per_size; ++probe) {
      for (bool large : {false, true}) {
        const std::uint64_t bytes =
            large ? options_.large_probe_bytes : options_.small_probe_bytes;
        const std::uint64_t seed = measure::derive_seed(
            options_.probe_seed, candidate.key, bytes, probe);
        auto elapsed = candidate.fn(bytes, seed);
        if (!elapsed.ok()) {
          return util::Error::make("probe failed on " + candidate.key + ": " +
                                   elapsed.error().message);
        }
        xs.push_back(static_cast<double>(bytes));
        ys.push_back(elapsed.value());
        if (large) large_times.push_back(elapsed.value());
        report.probe_cost_s += elapsed.value();
        report.probe_bytes += bytes;
      }
    }

    // Affine fit by ordinary least squares over every probe observation.
    const stats::LinearFit fit = stats::fit_linear(xs, ys);
    const double slope_s_per_byte = std::max(1e-12, fit.slope);

    RouteModel model;
    model.key = candidate.key;
    model.rate_bytes_per_s = 1.0 / slope_s_per_byte;
    model.overhead_s = std::max(0.0, fit.intercept);
    model.r_squared = fit.r_squared;
    double residual = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      residual += std::abs(ys[i] - model.predict_s(
                                       static_cast<std::uint64_t>(xs[i])));
    }
    model.residual = residual / static_cast<double>(xs.size());
    report.models.push_back(model);

    RouteStats rs;
    rs.key = candidate.key;
    rs.is_direct = candidate.is_direct;
    rs.summary.count = xs.size();
    rs.summary.mean = model.predict_s(target_bytes);
    // Propagate probe dispersion as the prediction's uncertainty, scaled to
    // the target size (larger payloads average out short-term noise less
    // than proportionally; scaling by the time ratio is conservative).
    const double probe_sd = stats::sample_stddev(large_times);
    const double t_large = stats::mean(large_times);
    const double scale =
        t_large > 0.0 ? rs.summary.mean / t_large : 1.0;
    rs.summary.stddev = probe_sd * scale;
    stats_for_advisor.push_back(rs);
  }

  const RouteAdvisor advisor(options_.advisor);
  report.decision = advisor.recommend(stats_for_advisor);
  return report;
}

}  // namespace droute::core
