// OverlayTable — the deployed artifact of detour planning: for every
// (client, provider) pair, which route traffic should take right now.
// This is the "full-fledged overlay network" bookkeeping of Sec III-D,
// fed by DetourPlanner decisions and DynamicMonitor degradation events.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/advisor.h"

namespace droute::core {

/// A routing entry: direct, or via a named intermediate.
struct OverlayEntry {
  std::string client;
  std::string provider;
  std::string route_key;     // "direct" or "via <node>"
  double expected_s = 0.0;   // predicted transfer time when installed
  Confidence confidence = Confidence::kClear;
  std::uint64_t decided_for_bytes = 0;  // payload size the decision targeted
};

class OverlayTable {
 public:
  /// Installs/replaces the route for (client, provider).
  void install(OverlayEntry entry);

  std::optional<OverlayEntry> lookup(const std::string& client,
                                     const std::string& provider) const;

  /// Removes the entry, falling back to direct-by-default semantics.
  bool evict(const std::string& client, const std::string& provider);

  std::vector<OverlayEntry> entries() const;
  std::size_t size() const { return table_.size(); }

  /// Human-readable dump (used by the overlay example and Table V bench).
  std::string render() const;

 private:
  std::map<std::pair<std::string, std::string>, OverlayEntry> table_;
};

}  // namespace droute::core
